#!/usr/bin/env bash
# Tier-1 verification gate: configure, build everything (library, all 16 test
# suites, every bench and example target), then run the full ctest suite.
# Every PR must keep this green. Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"
