// Choosing the number of levels for a machine (§5, §7.2): the basic tuning
// parameter of the multi-level algorithms. This example sweeps k for a few
// cluster shapes and input sizes on the simulated machine and prints the
// winner, illustrating the paper's guidance: more levels pay off for small
// n/p on large p; one level suffices for huge n/p.

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "ams/level_config.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

int main(int argc, char** argv) {
  using namespace pmps;
  (void)argc;
  (void)argv;

  harness::Table table(
      {"p", "n/p", "k=1 [s]", "k=2 [s]", "k=3 [s]", "winner"});
  for (int p : {16, 64, 256}) {
    for (std::int64_t n : {std::int64_t{500}, std::int64_t{20000}}) {
      std::vector<std::string> row{std::to_string(p), std::to_string(n)};
      double best = std::numeric_limits<double>::infinity();
      int best_k = 0;
      for (int k = 1; k <= 3; ++k) {
        if (static_cast<std::size_t>(k) >
            ams::level_group_counts(p, k).size() + 1 && k > 1) {
          row.push_back("-");
          continue;
        }
        harness::RunConfig cfg;
        cfg.p = p;
        cfg.n_per_pe = n;
        cfg.algorithm = harness::Algorithm::kAms;
        cfg.ams.levels = k;
        cfg.seed = 1234;
        const auto res = harness::run_sort_experiment(cfg);
        if (!res.check.ok()) {
          std::fprintf(stderr, "verification failed\n");
          return 1;
        }
        row.push_back(harness::format_double(res.wall_time(), 5));
        if (res.wall_time() < best) {
          best = res.wall_time();
          best_k = k;
        }
      }
      row.push_back("k=" + std::to_string(best_k));
      table.add_row(std::move(row));
    }
  }
  table.print();
  std::printf(
      "\nGuidance (paper §5): pick r per level to match the machine "
      "hierarchy — e.g. the last level node-internal (16 PEs/node), and "
      "split the remaining factor as ᵏ⁻¹√(p/16) per level.\n");
  return 0;
}
