// Sort-Benchmark-style record sorting (§7.3): 100-byte records with 10-byte
// random keys, the format of sortbenchmark.org's MinuteSort won by
// Baidu-Sort/TritonSort. Demonstrates that the library is element-type
// generic (any trivially copyable type + comparator) and that bandwidth —
// not startups — dominates for fat elements.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ams/ams_sort.hpp"
#include "common/types.hpp"
#include "harness/verify.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"

int main(int argc, char** argv) {
  using namespace pmps;
  const int p = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t recs_per_pe = argc > 2 ? std::atoll(argv[2]) : 2000;

  net::Engine engine(p, net::MachineParams::supermuc_like(), 99);

  const auto host_t0 = std::chrono::steady_clock::now();
  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(99, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Record100> records(static_cast<std::size_t>(recs_per_pe));
    for (auto& rec : records) {
      for (auto& b : rec.key) b = static_cast<std::uint8_t>(rng.bounded(256));
      // Payload carries provenance (checked to survive the shuffle).
      rec.payload.fill(static_cast<std::uint8_t>(comm.rank() & 0xff));
    }
    const auto in_hash = harness::content_hash(
        std::span<const Record100>(records.data(), records.size()));

    ams::AmsConfig cfg;
    cfg.levels = 2;
    ams::ams_sort(comm, records, cfg);

    const auto check = harness::verify_sorted_output(
        comm, std::span<const Record100>(records.data(), records.size()),
        in_hash, recs_per_pe);
    if (comm.rank() == 0) {
      std::printf("sorted %lld x 100-byte records on %d PEs: %s\n",
                  static_cast<long long>(check.total), p,
                  check.ok() ? "OK" : "FAILED");
    }
  });

  const double host_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_t0)
          .count();

  const auto report = engine.report();
  const double total_recs =
      static_cast<double>(p) * static_cast<double>(recs_per_pe);
  const double gb = total_recs * 100.0 / 1e9;
  std::printf("virtual time: %.4f s for %.3f GB of records\n",
              report.wall_time, gb);
  std::printf("  data delivery:  %.4f s (bandwidth-bound for fat records)\n",
              report.phase(net::Phase::kDataDelivery));
  std::printf("  local sort:     %.4f s\n",
              report.phase(net::Phase::kLocalSort));
  // The MinuteSort figure of merit (§7.3): records the modelled cluster
  // sorts per wall-clock minute, plus what this host simulated per second.
  const double recs_per_sim_minute =
      report.wall_time > 0 ? total_recs * 60.0 / report.wall_time : 0;
  std::printf(
      "summary: %.3e records/simulated-minute (MinuteSort metric), "
      "%.3e records/s host throughput (%.2f s host)\n",
      recs_per_sim_minute, host_s > 0 ? total_recs / host_s : 0, host_s);
  return 0;
}
