// Sort-as-a-service quickstart: a persistent SortService running several
// independent sort jobs — different algorithms, PE counts, seeds and fault
// models — interleaved on one warm engine substrate.
//
// Each job is fully isolated (own virtual clocks, RNG streams, statistics,
// Comm namespace): its results are bit-identical to a standalone one-shot
// run of the same configuration, which this example demonstrates by
// re-running one job serially and comparing virtual times.
//
// Build & run:   ./examples/service_quickstart

#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "svc/service.hpp"

int main() {
  using namespace pmps;

  // 1. One service, one warm substrate: fiber workers, pooled stacks and
  //    mailbox pools are created once and shared by every job.
  svc::ServiceOptions opt;
  opt.max_in_flight = 4;   // jobs running concurrently
  opt.queue_capacity = 16; // submit() blocks when this many are queued
  svc::SortService service(opt);

  // 2. Submit a mixed batch of jobs. submit_sort_experiment wraps the same
  //    RunConfig the serial harness uses; jobs start as capacity allows.
  std::vector<harness::RunConfig> configs;
  {
    harness::RunConfig cfg;
    cfg.algorithm = harness::Algorithm::kAms;
    cfg.p = 64;
    cfg.n_per_pe = 2000;
    cfg.seed = 1;
    configs.push_back(cfg);

    cfg.algorithm = harness::Algorithm::kRlm;
    cfg.p = 32;
    cfg.seed = 2;
    configs.push_back(cfg);

    cfg.algorithm = harness::Algorithm::kGvSampleSort;
    cfg.p = 16;
    cfg.seed = 3;
    configs.push_back(cfg);

    // A job on a lossy network: faults are per-job too.
    cfg.algorithm = harness::Algorithm::kAms;
    cfg.p = 32;
    cfg.seed = 4;
    cfg.faults.loss = 0.01;
    configs.push_back(cfg);
  }

  std::vector<harness::SortJob> jobs;
  for (const auto& cfg : configs)
    jobs.push_back(harness::submit_sort_experiment(service, cfg));

  // 3. Collect results — each job's own phase-timed RunReport.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    harness::RunResult r = jobs[i].result();
    std::printf(
        "job %zu: %-14s p=%-3d seed=%llu  virtual %.4f s, sorted=%s, "
        "retransmits=%lld\n",
        i, std::string(harness::algorithm_name(configs[i].algorithm)).c_str(),
        configs[i].p, static_cast<unsigned long long>(configs[i].seed),
        r.wall_time(), r.check.ok() ? "yes" : "NO",
        static_cast<long long>(r.faults().retransmits));
  }

  // 4. Isolation check: the same config run serially, one-shot, lands on
  //    the exact same virtual time — concurrency never leaks into results.
  harness::RunResult serial = harness::run_sort_experiment(configs[0]);
  harness::RunResult service_run = jobs[0].result();
  std::printf("\nserial re-run of job 0: virtual %.4f s (%s)\n",
              serial.wall_time(),
              serial.wall_time() == service_run.wall_time()
                  ? "bit-identical to the service run"
                  : "MISMATCH — should never happen");

  // peak_in_flight / admission_batches depend on host scheduling (how many
  // submits landed before the dispatcher's first admission pass), so print
  // only their deterministic bounds.
  const svc::ServiceStats st = service.stats();
  std::printf(
      "service: %lld jobs submitted, %lld completed, peak in flight within "
      "[1, %d]: %s\n",
      static_cast<long long>(st.submitted),
      static_cast<long long>(st.completed), opt.max_in_flight,
      st.peak_in_flight >= 1 && st.peak_in_flight <= opt.max_in_flight
          ? "yes"
          : "NO");
  return 0;
}
