// Out-of-core quickstart: sort a workload whose per-PE data exceeds the
// memory budget — delivered pieces land in spill blocks on disk, base-case
// local sorts run as run formation + external merge, and the result is
// bit-identical to the in-memory path (docs/EM.md).
//
// Build & run:   ./examples/em_quickstart [p] [n_per_pe] [budget_kb]
// The default budget (64 KB) is ~1/5 of the default per-PE data (320 KB),
// so every PE goes out of core.

#include <cstdio>
#include <cstdlib>

#include "harness/runner.hpp"

int main(int argc, char** argv) {
  using namespace pmps;

  harness::RunConfig cfg;
  cfg.p = argc > 1 ? std::atoi(argv[1]) : 16;
  cfg.n_per_pe = argc > 2 ? std::atoll(argv[2]) : 40000;
  const std::int64_t budget_kb = argc > 3 ? std::atoll(argv[3]) : 64;
  cfg.budget.bytes = budget_kb * 1024;
  cfg.budget.block_bytes = 8192;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.seed = 42;

  const std::int64_t per_pe_bytes =
      cfg.n_per_pe * static_cast<std::int64_t>(sizeof(std::uint64_t));
  std::printf("per-PE data %lld KB, budget %lld KB → %s\n",
              static_cast<long long>(per_pe_bytes / 1024),
              static_cast<long long>(budget_kb),
              per_pe_bytes > cfg.budget.bytes ? "out-of-core" : "in-memory");

  const auto res = harness::run_sort_experiment(cfg);

  std::printf("sorted %lld elements on %d PEs: %s\n",
              static_cast<long long>(res.check.total), cfg.p,
              res.check.ok() ? "OK" : "FAILED");
  std::printf("virtual wall-time: %.6f s (spilling never appears here)\n",
              res.report.wall_time);
  std::printf(
      "spill I/O: %lld runs, %lld blocks / %lld KB written, %lld KB read, "
      "%lld external sorts, %lld external merges\n",
      static_cast<long long>(res.spill.runs_written),
      static_cast<long long>(res.spill.blocks_written),
      static_cast<long long>(res.spill.bytes_written / 1024),
      static_cast<long long>(res.spill.bytes_read / 1024),
      static_cast<long long>(res.spill.external_sorts),
      static_cast<long long>(res.spill.external_merges));
  return res.check.ok() ? 0 : 1;
}
