// Space-filling-curve load balancing — the paper's motivating application
// (§1): supercomputer load balancers sort (small) per-element keys along a
// space-filling curve; the sort runs "for the application", so it must be
// fast even when near-linear speedup is impossible.
//
// This example scatters 2-D particles over the PEs, computes their Morton
// (Z-order) codes, sorts the codes with AMS-sort, and shows that the
// resulting curve segments give every PE an (almost) equal, spatially
// coherent share of the domain.

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "ams/ams_sort.hpp"
#include "coll/collectives.hpp"
#include "common/random.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"

namespace {

/// Interleaves the bits of (x, y) into a 64-bit Morton code.
std::uint64_t morton2d(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0xffffffffull;
    v = (v | (v << 16)) & 0x0000ffff0000ffffull;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
    v = (v | (v << 2)) & 0x3333333333333333ull;
    v = (v | (v << 1)) & 0x5555555555555555ull;
    return v;
  };
  return (spread(y) << 1) | spread(x);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pmps;
  const int p = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::int64_t particles_per_pe = argc > 2 ? std::atoll(argv[2]) : 5000;

  net::Engine engine(p, net::MachineParams::supermuc_like(), 7);
  std::mutex mu;
  double max_imbalance = 0;

  engine.run([&](net::Comm& comm) {
    // Each PE owns particles clustered around a random hotspot — the usual
    // situation where static decomposition load-balances badly.
    Xoshiro256 rng(7, static_cast<std::uint64_t>(comm.rank()));
    const std::uint32_t cx = static_cast<std::uint32_t>(rng.bounded(1u << 20));
    const std::uint32_t cy = static_cast<std::uint32_t>(rng.bounded(1u << 20));
    std::vector<std::uint64_t> codes;
    codes.reserve(static_cast<std::size_t>(particles_per_pe));
    for (std::int64_t i = 0; i < particles_per_pe; ++i) {
      const auto dx = static_cast<std::uint32_t>(rng.bounded(1 << 14));
      const auto dy = static_cast<std::uint32_t>(rng.bounded(1 << 14));
      codes.push_back(morton2d(cx + dx, cy + dy));
    }

    // Sort the Morton codes: afterwards each PE owns a contiguous curve
    // segment — spatially coherent and balanced.
    ams::AmsConfig cfg;
    cfg.levels = 2;
    ams::ams_sort(comm, codes, cfg);

    const std::int64_t total = coll::allreduce_add_one(
        comm, static_cast<std::int64_t>(codes.size()));
    const std::int64_t max_local = coll::allreduce_one<std::int64_t>(
        comm, static_cast<std::int64_t>(codes.size()),
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    if (comm.rank() == 0) {
      const double imbalance =
          static_cast<double>(max_local) /
              (static_cast<double>(total) / comm.size()) -
          1.0;
      std::lock_guard lock(mu);
      max_imbalance = imbalance;
      std::printf("%lld particles over %d PEs sorted along the Z-curve\n",
                  static_cast<long long>(total), comm.size());
      std::printf("per-PE load imbalance after balancing: %.2f%%\n",
                  imbalance * 100);
    }
    // Each PE's segment is contiguous in curve order by construction:
    // boundary keys are globally monotone (sort invariant).
  });

  const auto report = engine.report();
  std::printf("virtual time for the load-balancing sort: %.6f s\n",
              report.wall_time);
  std::printf("(the sort is the load balancer's entire cost — why the paper "
              "wants sorting that scales at small n/p)\n");
  return max_imbalance < 0.6 ? 0 : 1;
}
