// Quickstart: sort 64-bit integers distributed over a simulated cluster
// with AMS-sort, verify the result, and inspect the phase-timed report.
//
// Build & run:   ./examples/quickstart [p] [n_per_pe]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ams/ams_sort.hpp"
#include "harness/verify.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"

int main(int argc, char** argv) {
  using namespace pmps;

  const int p = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::int64_t n_per_pe = argc > 2 ? std::atoll(argv[2]) : 10000;

  // 1. Describe the machine. supermuc_like() models the paper's cluster
  //    (16-core nodes, islands, 4:1 pruned inter-island tree).
  const auto machine = net::MachineParams::supermuc_like();

  // 2. Build the simulated cluster: p PEs, each an SPMD thread.
  net::Engine engine(p, machine, /*seed=*/42);

  // 3. Run the same program on every PE — exactly like an MPI rank.
  engine.run([&](net::Comm& comm) {
    // Generate this PE's local input.
    Xoshiro256 rng(42, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> data(static_cast<std::size_t>(n_per_pe));
    for (auto& v : data) v = rng();

    const auto in_hash = harness::content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));

    // Sort! Two levels of recursion; everything else defaults to the
    // paper's configuration (b = 16, a = 1.6 log10 n, simple delivery).
    ams::AmsConfig cfg;
    cfg.levels = 2;
    const auto stats = ams::ams_sort(comm, data, cfg);

    // Verify the global sort invariants (free of charge).
    const auto check = harness::verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()),
        in_hash, n_per_pe);
    if (comm.rank() == 0) {
      std::printf("sorted %lld elements on %d PEs: %s\n",
                  static_cast<long long>(check.total), p,
                  check.ok() ? "OK" : "FAILED");
      std::printf("output imbalance: %.3f%%\n", check.imbalance * 100);
      for (std::size_t lvl = 0; lvl < stats.sample_sizes.size(); ++lvl) {
        std::printf("level %zu: sample size %lld, max group load %lld\n",
                    lvl + 1,
                    static_cast<long long>(stats.sample_sizes[lvl]),
                    static_cast<long long>(stats.max_group_load[lvl]));
      }
    }
  });

  // 4. Inspect the virtual-time report (what the modelled cluster would
  //    have measured).
  const auto report = engine.report();
  std::printf("\nvirtual wall-time: %.6f s\n", report.wall_time);
  std::printf("  splitter selection: %.6f s\n",
              report.phase(net::Phase::kSplitterSelection));
  std::printf("  bucket processing:  %.6f s\n",
              report.phase(net::Phase::kBucketProcessing));
  std::printf("  data delivery:      %.6f s\n",
              report.phase(net::Phase::kDataDelivery));
  std::printf("  local sort:         %.6f s\n",
              report.phase(net::Phase::kLocalSort));
  std::printf("max messages sent by one PE: %lld\n",
              static_cast<long long>(report.max_messages_sent));
  return 0;
}
