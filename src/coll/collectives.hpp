// Collective operations on top of Comm point-to-point messages.
//
// Costs are *emergent*: every collective is built from p2p sends/recvs, so
// the virtual-time cost of, e.g., an allreduce is Θ(α log p + βℓ) — the
// bounds the paper quotes from [2, 30] — without any hand-inserted charges.
//
// Provided (all SPMD-collective over the communicator):
//   barrier                — dissemination barrier, Θ(α log p)
//   bcast / bcast_one      — binomial tree
//   reduce_add/allreduce_add, allreduce (generic op) — elementwise on vectors
//   exscan_add             — vector-valued exclusive prefix sum (dissemination)
//   gatherv / allgatherv   — binomial gather (+ broadcast)
//   allgather_merge        — gossip of *sorted* runs, merging at every
//                            combine step (the modified allGather of §4.2)
//   alltoallv              — dense irregular exchange; Schedule::kDirect posts
//                            every pair (p−1 startups, like mpich), Schedule::
//                            kOneFactor runs the 1-factor algorithm [31] and
//                            omits empty messages (§7.1)
//   sparse_exchange        — NBX-style sparse all-to-all: only actual
//                            messages are charged plus an α log p
//                            termination-detection barrier; used by the data
//                            delivery algorithms of §4.3 so that their O(r)
//                            startup guarantees are visible in virtual time.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "net/comm.hpp"

namespace pmps::coll {

using net::Comm;

// ---------------------------------------------------------------------------
// barrier
// ---------------------------------------------------------------------------

/// Dissemination barrier: ⌈log2 p⌉ rounds; also synchronises virtual clocks
/// (every PE ends no earlier than any other PE's entry time).
inline void barrier(Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  const std::uint64_t tag = comm.next_tag_block();
  const std::byte token{0};
  for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
    const int dest = (comm.rank() + step) % p;
    const int src = (comm.rank() - step % p + p) % p;
    comm.send<std::byte>(dest, tag + static_cast<std::uint64_t>(round),
                         std::span<const std::byte>(&token, 1));
    (void)comm.recv<std::byte>(src, tag + static_cast<std::uint64_t>(round));
  }
}

// ---------------------------------------------------------------------------
// broadcast
// ---------------------------------------------------------------------------

/// Binomial-tree broadcast of `data` from `root`: Θ(α log p + βℓ log p)
/// virtual time (each tree edge ships the whole vector).
template <Sortable T>
void bcast(Comm& comm, std::vector<T>& data, int root = 0) {
  const int p = comm.size();
  if (p == 1) return;
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;  // root becomes vrank 0

  const std::uint64_t top = next_pow2(static_cast<std::uint64_t>(p));
  const std::uint64_t lowbit =
      vrank == 0 ? top : static_cast<std::uint64_t>(vrank & -vrank);
  if (vrank != 0) {
    const int vparent = vrank - static_cast<int>(lowbit);
    const int parent = (vparent + root) % p;
    data = comm.recv<T>(parent, tag + static_cast<std::uint64_t>(vrank));
  }
  for (std::uint64_t m = lowbit >> 1; m >= 1; m >>= 1) {
    const int vchild = vrank + static_cast<int>(m);
    if (vchild < p) {
      comm.send<T>((vchild + root) % p, tag + static_cast<std::uint64_t>(vchild),
                   std::span<const T>(data));
    }
    if (m == 1) break;
  }
}

/// Broadcast of a single value from `root`.
template <Sortable T>
T bcast_one(Comm& comm, T value, int root = 0) {
  std::vector<T> v{value};
  bcast(comm, v, root);
  return v[0];
}

// ---------------------------------------------------------------------------
// reduce / allreduce (elementwise on equal-length vectors)
// ---------------------------------------------------------------------------

/// Binomial-tree reduction to `root`; `op(a, b)` combines elementwise.
template <Sortable T, typename Op>
std::vector<T> reduce(Comm& comm, std::vector<T> local, Op op, int root = 0) {
  const int p = comm.size();
  if (p == 1) return local;
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;

  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      const int vdest = vrank - step;
      comm.send<T>((vdest + root) % p, tag + static_cast<std::uint64_t>(vrank),
                   std::span<const T>(local));
      break;
    }
    const int vsrc = vrank + step;
    if (vsrc < p) {
      auto other = comm.recv<T>((vsrc + root) % p,
                                tag + static_cast<std::uint64_t>(vsrc));
      PMPS_CHECK(other.size() == local.size());
      comm.charge(comm.machine().compare_cost_n(
          static_cast<std::int64_t>(local.size())));
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = op(local[i], other[i]);
    }
  }
  return local;  // meaningful only on root
}

/// Elementwise allreduce over equal-length vectors: binomial reduce to
/// rank 0 followed by broadcast. `op` must be associative.
template <Sortable T, typename Op>
std::vector<T> allreduce(Comm& comm, std::vector<T> local, Op op) {
  auto result = reduce(comm, std::move(local), op, /*root=*/0);
  bcast(comm, result, /*root=*/0);
  return result;
}

/// Elementwise vector sum across all PEs.
inline std::vector<std::int64_t> allreduce_add(
    Comm& comm, std::vector<std::int64_t> local) {
  return allreduce(comm, std::move(local), std::plus<std::int64_t>{});
}

/// Allreduce of a single value with a generic associative `op`.
template <Sortable T>
T allreduce_one(Comm& comm, T value, auto op) {
  std::vector<T> v{value};
  v = allreduce(comm, std::move(v), op);
  return v[0];
}

/// Global sum of one int64 per PE.
inline std::int64_t allreduce_add_one(Comm& comm, std::int64_t v) {
  return allreduce_one(comm, v, std::plus<std::int64_t>{});
}

// ---------------------------------------------------------------------------
// exclusive prefix sums (vector-valued, addition)
// ---------------------------------------------------------------------------

/// Dissemination (Hillis–Steele) scan: ⌈log2 p⌉ rounds of length-ℓ messages,
/// i.e. Θ((α + βℓ) log p); the paper's vector-valued prefix sums.
/// Returns the *exclusive* prefix (sum over ranks < rank()).
inline std::vector<std::int64_t> exscan_add(
    Comm& comm, const std::vector<std::int64_t>& local) {
  const int p = comm.size();
  const std::size_t len = local.size();
  std::vector<std::int64_t> incl = local;
  if (p > 1) {
    const std::uint64_t tag = comm.next_tag_block();
    for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
      if (comm.rank() + step < p) {
        comm.send<std::int64_t>(comm.rank() + step,
                                tag + static_cast<std::uint64_t>(round),
                                std::span<const std::int64_t>(incl));
      }
      if (comm.rank() - step >= 0) {
        auto part = comm.recv<std::int64_t>(
            comm.rank() - step, tag + static_cast<std::uint64_t>(round));
        PMPS_CHECK(part.size() == len);
        for (std::size_t i = 0; i < len; ++i) incl[i] += part[i];
      }
    }
  }
  std::vector<std::int64_t> excl(len);
  for (std::size_t i = 0; i < len; ++i) excl[i] = incl[i] - local[i];
  return excl;
}

/// Exclusive prefix sum of one int64 per PE (rank 0 gets 0).
inline std::int64_t exscan_add_one(Comm& comm, std::int64_t v) {
  std::vector<std::int64_t> x{v};
  return exscan_add(comm, x)[0];
}

// ---------------------------------------------------------------------------
// gather / allgather
// ---------------------------------------------------------------------------

/// Binomial gather of variable-length contributions. On `root` the result
/// holds one entry per source rank (in rank order); elsewhere it is empty.
template <Sortable T>
std::vector<std::vector<T>> gatherv(Comm& comm, std::span<const T> local,
                                    int root = 0) {
  const int p = comm.size();
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;

  // Each PE accumulates (vrank, payload) pairs; serialise as
  // [count | vrank sizes... | data...] to keep it a single message per edge.
  std::vector<std::pair<int, std::vector<T>>> acc;
  acc.emplace_back(vrank, std::vector<T>(local.begin(), local.end()));

  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      // Serialise and send to parent.
      std::vector<std::int64_t> header;
      header.push_back(static_cast<std::int64_t>(acc.size()));
      for (auto& [r, v] : acc) {
        header.push_back(r);
        header.push_back(static_cast<std::int64_t>(v.size()));
      }
      std::vector<T> payload;
      for (auto& [r, v] : acc)
        payload.insert(payload.end(), v.begin(), v.end());
      const int vdest = vrank - step;
      comm.send<std::int64_t>(
          (vdest + root) % p, tag + 2 * static_cast<std::uint64_t>(vrank),
          std::span<const std::int64_t>(header));
      comm.send<T>((vdest + root) % p,
                   tag + 2 * static_cast<std::uint64_t>(vrank) + 1,
                   std::span<const T>(payload));
      break;
    }
    const int vsrc = vrank + step;
    if (vsrc < p) {
      auto header = comm.recv<std::int64_t>(
          (vsrc + root) % p, tag + 2 * static_cast<std::uint64_t>(vsrc));
      auto payload = comm.recv<T>(
          (vsrc + root) % p, tag + 2 * static_cast<std::uint64_t>(vsrc) + 1);
      std::size_t off = 0;
      const auto cnt = static_cast<std::size_t>(header[0]);
      for (std::size_t i = 0; i < cnt; ++i) {
        const int r = static_cast<int>(header[1 + 2 * i]);
        const auto sz = static_cast<std::size_t>(header[2 + 2 * i]);
        acc.emplace_back(r, std::vector<T>(payload.begin() + off,
                                           payload.begin() + off + sz));
        off += sz;
      }
    }
  }

  std::vector<std::vector<T>> out;
  if (comm.rank() == root) {
    out.resize(static_cast<std::size_t>(p));
    for (auto& [r, v] : acc) out[static_cast<std::size_t>(r)] = std::move(v);
  }
  return out;
}

/// allgatherv = gather to 0 + broadcast. Every PE gets all contributions in
/// rank order.
template <Sortable T>
std::vector<std::vector<T>> allgatherv(Comm& comm, std::span<const T> local) {
  const int p = comm.size();
  auto parts = gatherv(comm, local, /*root=*/0);

  // Broadcast flattened data + sizes.
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(p));
  std::vector<T> flat;
  if (comm.rank() == 0) {
    for (int i = 0; i < p; ++i) {
      sizes[static_cast<std::size_t>(i)] =
          static_cast<std::int64_t>(parts[static_cast<std::size_t>(i)].size());
      flat.insert(flat.end(), parts[static_cast<std::size_t>(i)].begin(),
                  parts[static_cast<std::size_t>(i)].end());
    }
  }
  bcast(comm, sizes, 0);
  bcast(comm, flat, 0);

  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  std::size_t off = 0;
  for (int i = 0; i < p; ++i) {
    const auto sz = static_cast<std::size_t>(sizes[static_cast<std::size_t>(i)]);
    out[static_cast<std::size_t>(i)].assign(flat.begin() + off,
                                            flat.begin() + off + sz);
    off += sz;
  }
  return out;
}

// ---------------------------------------------------------------------------
// allgather-merge (the gossip of §4.2)
// ---------------------------------------------------------------------------

/// All-gather of locally *sorted* runs where combining merges instead of
/// concatenating, so every intermediate and the final result are sorted.
/// Power-of-two sizes use the hypercube gossip the paper cites from [21];
/// other sizes fall back to a merging binomial gather plus broadcast
/// (footnote 3 of the paper).
template <Sortable T, typename Less = std::less<T>>
std::vector<T> allgather_merge(Comm& comm, std::span<const T> local_sorted,
                               Less less = {}) {
  const int p = comm.size();
  std::vector<T> cur(local_sorted.begin(), local_sorted.end());
  PMPS_ASSERT(std::is_sorted(cur.begin(), cur.end(), less));
  if (p == 1) return cur;

  auto merge2 = [&comm, &less](std::vector<T>& a, std::vector<T>& b) {
    std::vector<T> out(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), less);
    comm.charge(comm.machine().merge_cost(
        static_cast<std::int64_t>(out.size()), 2));
    return out;
  };

  if (is_pow2(p)) {
    const std::uint64_t tag = comm.next_tag_block();
    for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
      const int partner = comm.rank() ^ step;
      comm.send<T>(partner, tag + static_cast<std::uint64_t>(round),
                   std::span<const T>(cur));
      auto other =
          comm.recv<T>(partner, tag + static_cast<std::uint64_t>(round));
      cur = merge2(cur, other);
    }
    return cur;
  }

  // Non-power-of-two: binomial gather with merging, then broadcast.
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = comm.rank();
  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      comm.send<T>(vrank - step, tag + static_cast<std::uint64_t>(vrank),
                   std::span<const T>(cur));
      break;
    }
    if (vrank + step < p) {
      auto other = comm.recv<T>(
          vrank + step, tag + static_cast<std::uint64_t>(vrank + step));
      cur = merge2(cur, other);
    }
  }
  bcast(comm, cur, 0);
  return cur;
}

// ---------------------------------------------------------------------------
// dense all-to-all of counts (Bruck) and irregular all-to-all of payloads
// ---------------------------------------------------------------------------

/// Alltoall of one int64 per pair using Bruck's algorithm: ⌈log2 p⌉ rounds
/// of ≤ p/2 entries each, i.e. Θ((α + βp) log p) instead of p startups.
/// Returns recv[i] = the value rank i sent to us.
inline std::vector<std::int64_t> alltoall_counts(
    Comm& comm, const std::vector<std::int64_t>& send) {
  const int p = comm.size();
  PMPS_CHECK(static_cast<int>(send.size()) == p);
  if (p == 1) return send;
  const int me = comm.rank();
  const std::uint64_t tag = comm.next_tag_block();

  // Local rotation: tmp[j] = my value for dest (me + j) mod p. Position j
  // always holds data whose remaining travel distance has exactly the
  // not-yet-processed bits of j.
  std::vector<std::int64_t> tmp(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j)
    tmp[static_cast<std::size_t>(j)] =
        send[static_cast<std::size_t>((me + j) % p)];

  std::vector<std::int64_t> block;
  for (int k = 0, step = 1; step < p; ++k, step <<= 1) {
    block.clear();
    for (int j = 0; j < p; ++j)
      if ((j & step) != 0) block.push_back(tmp[static_cast<std::size_t>(j)]);
    const int to = (me + step) % p;
    const int from = (me - step + p) % p;
    comm.send<std::int64_t>(to, tag + static_cast<std::uint64_t>(k),
                            std::span<const std::int64_t>(block));
    auto in = comm.recv<std::int64_t>(from, tag + static_cast<std::uint64_t>(k));
    std::size_t idx = 0;
    for (int j = 0; j < p; ++j)
      if ((j & step) != 0) tmp[static_cast<std::size_t>(j)] = in[idx++];
  }

  // Position j now holds the value that travelled j hops, i.e. from rank
  // (me − j) mod p.
  std::vector<std::int64_t> recv(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j)
    recv[static_cast<std::size_t>((me - j + p) % p)] =
        tmp[static_cast<std::size_t>(j)];
  return recv;
}

enum class Schedule {
  kDirect,     ///< post all p−1 pairs, empty messages included (mpich-like)
  kOneFactor,  ///< 1-factor pairing [31], empty messages omitted (§7.1)
};

/// Dense alltoallv: `send[i]` goes to rank i; returns the received buffers
/// indexed by source rank. The self part is moved locally (copy cost only).
/// Receive sizes are known to both endpoints after a Bruck counts exchange
/// (charged), mirroring how MPI_Alltoallv callers first alltoall the counts.
template <Sortable T>
std::vector<std::vector<T>> alltoallv(Comm& comm,
                                      std::vector<std::vector<T>> send,
                                      Schedule sched = Schedule::kOneFactor) {
  const int p = comm.size();
  PMPS_CHECK(static_cast<int>(send.size()) == p);
  std::vector<std::vector<T>> recv(static_cast<std::size_t>(p));
  const int me = comm.rank();
  recv[static_cast<std::size_t>(me)] =
      std::move(send[static_cast<std::size_t>(me)]);
  send[static_cast<std::size_t>(me)].clear();
  comm.charge(comm.machine().copy_cost(
      recv[static_cast<std::size_t>(me)].size() * sizeof(T)));
  if (p == 1) return recv;

  if (sched == Schedule::kDirect) {
    const std::uint64_t tag = comm.next_tag_block();
    // Shifted order so PEs do not all start with the same destination.
    for (int i = 1; i < p; ++i) {
      const int dest = (me + i) % p;
      comm.send<T>(dest, tag + static_cast<std::uint64_t>(me),
                   std::span<const T>(send[static_cast<std::size_t>(dest)]));
    }
    for (int i = 1; i < p; ++i) {
      const int src = (me - i + p) % p;
      recv[static_cast<std::size_t>(src)] =
          comm.recv<T>(src, tag + static_cast<std::uint64_t>(src));
    }
    return recv;
  }

  // 1-factor algorithm [31]: p−1 (p even) or p (p odd) rounds of disjoint
  // pairs; rounds where both directions are empty cost nothing.
  std::vector<std::int64_t> out_counts(static_cast<std::size_t>(p), 0);
  for (int i = 0; i < p; ++i)
    out_counts[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(send[static_cast<std::size_t>(i)].size());
  const std::vector<std::int64_t> in_counts = alltoall_counts(comm, out_counts);

  const std::uint64_t tag = comm.next_tag_block();
  const bool even = (p % 2) == 0;
  const int rounds = even ? p - 1 : p;
  for (int r = 0; r < rounds; ++r) {
    int partner;
    if (even) {
      const int m = p - 1;
      if (me == p - 1) {
        partner =
            static_cast<int>((static_cast<std::int64_t>(r) * (p / 2)) % m);
      } else {
        const int q = ((r - me) % m + m) % m;
        partner = (q == me) ? p - 1 : q;
      }
    } else {
      partner = ((r - me) % p + p) % p;
      if (partner == me) continue;  // idle round
    }
    const auto& out = send[static_cast<std::size_t>(partner)];
    if (!out.empty()) {
      comm.send<T>(partner, tag + static_cast<std::uint64_t>(r),
                   std::span<const T>(out));
    }
    if (in_counts[static_cast<std::size_t>(partner)] > 0) {
      recv[static_cast<std::size_t>(partner)] =
          comm.recv<T>(partner, tag + static_cast<std::uint64_t>(r));
      PMPS_CHECK(static_cast<std::int64_t>(
                     recv[static_cast<std::size_t>(partner)].size()) ==
                 in_counts[static_cast<std::size_t>(partner)]);
    }
  }
  return recv;
}

// ---------------------------------------------------------------------------
// sparse exchange (NBX-style)
// ---------------------------------------------------------------------------

/// One outgoing message of a sparse exchange.
template <Sortable T>
struct OutMessage {
  int dest_rank;
  std::vector<T> data;
};

/// Sparse all-to-all: each PE sends an arbitrary set of messages; receivers
/// do not know the senders in advance. Mirrors the NBX algorithm (dynamic
/// sparse data exchange): only the actual messages are charged, plus a
/// Θ(α log p) termination-detection barrier. The sender/receiver sets are
/// resolved out of band (uncharged), which is what NBX's speculative
/// receive loop achieves on a real machine.
///
/// Returns (source rank, payload) pairs sorted by source rank; messages from
/// the same source keep their send order via an index.
template <Sortable T>
std::vector<std::pair<int, std::vector<T>>> sparse_exchange(
    Comm& comm, const std::vector<OutMessage<T>>& outgoing) {
  const int p = comm.size();
  const std::uint64_t tag = comm.next_tag_block();

  // --- out-of-band: who receives how many messages (uncharged) -------------
  std::vector<std::int64_t> in_count(static_cast<std::size_t>(p), 0);
  {
    net::FreeModeGuard free_guard(comm.ctx());
    std::vector<std::int64_t> out_count(static_cast<std::size_t>(p), 0);
    for (const auto& m : outgoing)
      out_count[static_cast<std::size_t>(m.dest_rank)] += 1;
    in_count = alltoall_counts(comm, out_count);
  }

  // --- charged: the real messages ------------------------------------------
  std::vector<std::int64_t> seq_per_dest(static_cast<std::size_t>(p), 0);
  for (const auto& m : outgoing) {
    const auto k = static_cast<std::uint64_t>(
        seq_per_dest[static_cast<std::size_t>(m.dest_rank)]++);
    comm.send<T>(m.dest_rank, tag + k, std::span<const T>(m.data));
  }

  std::vector<std::pair<int, std::vector<T>>> incoming;
  for (int src = 0; src < p; ++src) {
    for (std::int64_t k = 0; k < in_count[static_cast<std::size_t>(src)];
         ++k) {
      incoming.emplace_back(
          src, comm.recv<T>(src, tag + static_cast<std::uint64_t>(k)));
    }
  }

  // Termination detection (NBX ibarrier), charged.
  barrier(comm);
  return incoming;
}

}  // namespace pmps::coll
