// Collective operations on top of Comm point-to-point messages.
//
// Costs are *emergent*: every collective is built from p2p sends/recvs, so
// the virtual-time cost of, e.g., an allreduce is Θ(α log p + βℓ) — the
// bounds the paper quotes from [2, 30] — without any hand-inserted charges.
//
// The irregular collectives are *flat-buffer* APIs, the shape real MPI
// specifies them in (one contiguous buffer plus counts/displacements):
// gatherv/allgatherv return a FlatParts<T> view (flat.hpp), alltoallv takes
// (sendbuf, counts) spans, and sparse_exchange returns one flat buffer
// indexed by (message, offset). Internally each tree edge serialises its
// accumulated payload exactly once and every part lands at its offset in
// one result buffer, so a collective costs O(1) heap allocations per PE
// instead of one per rank per PE — that Θ(p²)-allocation host-time wall is
// what capped executed runs before; virtual-time costs are unchanged (see
// docs/DESIGN.md §7).
//
// Provided (all SPMD-collective over the communicator):
//   barrier                — dissemination barrier, Θ(α log p)
//   bcast / bcast_one      — binomial tree
//   reduce_add/allreduce_add, allreduce (generic op) — elementwise on vectors
//   exscan_add             — vector-valued exclusive prefix sum (dissemination)
//   *_one                  — scalar wrappers over the vector collectives,
//                            all through the same one-element adapter
//   gatherv / allgatherv   — binomial gather (+ broadcast) → FlatParts<T>
//   allgather_merge        — gossip of *sorted* runs, merging at every
//                            combine step (the modified allGather of §4.2)
//   alltoallv              — dense irregular exchange over (sendbuf, counts);
//                            Schedule::kDirect posts every pair (p−1
//                            startups, like mpich), Schedule::kOneFactor
//                            runs the 1-factor algorithm [31] and omits
//                            empty messages (§7.1)
//   sparse_exchange        — NBX-style sparse all-to-all: only actual
//                            messages are charged plus an α log p
//                            termination-detection barrier; used by the data
//                            delivery algorithms of §4.3 so that their O(r)
//                            startup guarantees are visible in virtual time.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "coll/flat.hpp"
#include "coll/send_plan.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "net/comm.hpp"

namespace pmps::coll {

using net::Comm;

// ---------------------------------------------------------------------------
// barrier
// ---------------------------------------------------------------------------

/// Dissemination barrier: ⌈log2 p⌉ rounds; also synchronises virtual clocks
/// (every PE ends no earlier than any other PE's entry time).
///
/// Under the default clean network the engine fast-forwards the barrier:
/// every runnable PE reaching it is by definition blocked on the same
/// collective, so instead of exchanging Θ(p log p) real 1-byte messages the
/// last arriver replays all clock/stats/noise effects in one step
/// (Comm::barrier_fast_forward, bit-identical — pinned by the hexfloat
/// goldens). PMPS_COLL_FF=0 restores the message-by-message execution.
inline void barrier(Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  if (comm.barrier_fast_forward()) return;
  const std::uint64_t tag = comm.next_tag_block();
  const std::byte token{0};
  std::byte got{0};
  for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
    const int dest = (comm.rank() + step) % p;
    const int src = (comm.rank() - step % p + p) % p;
    comm.send<std::byte>(dest, tag + static_cast<std::uint64_t>(round),
                         std::span<const std::byte>(&token, 1));
    comm.recv_into<std::byte>(src, tag + static_cast<std::uint64_t>(round),
                              std::span<std::byte>(&got, 1));
  }
}

namespace detail {

/// The shared shape of every scalar ("*_one") collective: wrap the value in
/// a one-element vector, run the vector-valued collective, unwrap.
template <Sortable T, typename VecOp>
T one(T value, VecOp&& op) {
  std::vector<T> v{std::move(value)};
  std::forward<VecOp>(op)(v);
  PMPS_ASSERT(v.size() == 1);
  return v[0];
}

}  // namespace detail

// ---------------------------------------------------------------------------
// broadcast
// ---------------------------------------------------------------------------

/// Binomial-tree broadcast of `data` from `root`: Θ(α log p + βℓ log p)
/// virtual time (each tree edge ships the whole vector).
template <Sortable T>
void bcast(Comm& comm, std::vector<T>& data, int root = 0) {
  const int p = comm.size();
  if (p == 1) return;
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;  // root becomes vrank 0

  const std::uint64_t top = next_pow2(static_cast<std::uint64_t>(p));
  const std::uint64_t lowbit =
      vrank == 0 ? top : static_cast<std::uint64_t>(vrank & -vrank);
  if (vrank != 0) {
    const int vparent = vrank - static_cast<int>(lowbit);
    const int parent = (vparent + root) % p;
    data = comm.recv<T>(parent, tag + static_cast<std::uint64_t>(vrank));
  }
  for (std::uint64_t m = lowbit >> 1; m >= 1; m >>= 1) {
    const int vchild = vrank + static_cast<int>(m);
    if (vchild < p) {
      comm.send<T>((vchild + root) % p, tag + static_cast<std::uint64_t>(vchild),
                   std::span<const T>(data));
    }
    if (m == 1) break;
  }
}

/// Broadcast of a single value from `root`.
template <Sortable T>
T bcast_one(Comm& comm, T value, int root = 0) {
  return detail::one(std::move(value),
                     [&](std::vector<T>& v) { bcast(comm, v, root); });
}

// ---------------------------------------------------------------------------
// reduce / allreduce (elementwise on equal-length vectors)
// ---------------------------------------------------------------------------

/// Binomial-tree reduction to `root`; `op(a, b)` combines elementwise.
template <Sortable T, typename Op>
std::vector<T> reduce(Comm& comm, std::vector<T> local, Op op, int root = 0) {
  const int p = comm.size();
  if (p == 1) return local;
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;

  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      const int vdest = vrank - step;
      comm.send<T>((vdest + root) % p, tag + static_cast<std::uint64_t>(vrank),
                   std::span<const T>(local));
      break;
    }
    const int vsrc = vrank + step;
    if (vsrc < p) {
      auto other = comm.recv<T>((vsrc + root) % p,
                                tag + static_cast<std::uint64_t>(vsrc));
      PMPS_CHECK(other.size() == local.size());
      comm.charge(comm.machine().compare_cost_n(
          static_cast<std::int64_t>(local.size())));
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = op(local[i], other[i]);
    }
  }
  return local;  // meaningful only on root
}

/// Elementwise allreduce over equal-length vectors: binomial reduce to
/// rank 0 followed by broadcast. `op` must be associative.
template <Sortable T, typename Op>
std::vector<T> allreduce(Comm& comm, std::vector<T> local, Op op) {
  auto result = reduce(comm, std::move(local), op, /*root=*/0);
  bcast(comm, result, /*root=*/0);
  return result;
}

/// Elementwise vector sum across all PEs.
inline std::vector<std::int64_t> allreduce_add(
    Comm& comm, std::vector<std::int64_t> local) {
  return allreduce(comm, std::move(local), std::plus<std::int64_t>{});
}

/// Allreduce of a single value with a generic associative `op`.
template <Sortable T, typename Op>
T allreduce_one(Comm& comm, T value, Op op) {
  return detail::one(std::move(value), [&](std::vector<T>& v) {
    v = allreduce(comm, std::move(v), op);
  });
}

/// Global sum of one int64 per PE.
inline std::int64_t allreduce_add_one(Comm& comm, std::int64_t v) {
  return allreduce_one(comm, v, std::plus<std::int64_t>{});
}

// ---------------------------------------------------------------------------
// exclusive prefix sums (vector-valued, addition)
// ---------------------------------------------------------------------------

/// Dissemination (Hillis–Steele) scan: ⌈log2 p⌉ rounds of length-ℓ messages,
/// i.e. Θ((α + βℓ) log p); the paper's vector-valued prefix sums.
/// Returns the *exclusive* prefix (sum over ranks < rank()).
inline std::vector<std::int64_t> exscan_add(
    Comm& comm, const std::vector<std::int64_t>& local) {
  const int p = comm.size();
  const std::size_t len = local.size();
  std::vector<std::int64_t> incl = local;
  if (p > 1) {
    const std::uint64_t tag = comm.next_tag_block();
    for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
      if (comm.rank() + step < p) {
        comm.send<std::int64_t>(comm.rank() + step,
                                tag + static_cast<std::uint64_t>(round),
                                std::span<const std::int64_t>(incl));
      }
      if (comm.rank() - step >= 0) {
        auto part = comm.recv<std::int64_t>(
            comm.rank() - step, tag + static_cast<std::uint64_t>(round));
        PMPS_CHECK(part.size() == len);
        for (std::size_t i = 0; i < len; ++i) incl[i] += part[i];
      }
    }
  }
  std::vector<std::int64_t> excl(len);
  for (std::size_t i = 0; i < len; ++i) excl[i] = incl[i] - local[i];
  return excl;
}

/// Exclusive prefix sum of one int64 per PE (rank 0 gets 0).
inline std::int64_t exscan_add_one(Comm& comm, std::int64_t v) {
  return detail::one(v, [&](std::vector<std::int64_t>& x) {
    x = exscan_add(comm, x);
  });
}

// ---------------------------------------------------------------------------
// gather / allgather
// ---------------------------------------------------------------------------

/// Binomial gather of variable-length contributions. On `root` the result
/// holds one part per source rank (in rank order); elsewhere it is an empty
/// view (zero parts).
///
/// Every PE accumulates ONE flat payload plus (vrank, size) header pairs;
/// a combine step appends the child's header and payload to its own, so
/// each tree edge serialises exactly once and nothing is ever repacked —
/// the seed implementation's per-step re-serialisation into per-rank
/// vectors was the dominant host-time cost of large-p gathers.
template <Sortable T>
FlatParts<T> gatherv(Comm& comm, std::span<const T> local, int root = 0) {
  const int p = comm.size();
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;

  std::vector<std::int64_t> header{static_cast<std::int64_t>(vrank),
                                   static_cast<std::int64_t>(local.size())};
  std::vector<T> payload(local.begin(), local.end());

  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      const int vdest = vrank - step;
      comm.send<std::int64_t>(
          (vdest + root) % p, tag + 2 * static_cast<std::uint64_t>(vrank),
          std::span<const std::int64_t>(header));
      comm.send<T>((vdest + root) % p,
                   tag + 2 * static_cast<std::uint64_t>(vrank) + 1,
                   std::span<const T>(payload));
      return {};
    }
    const int vsrc = vrank + step;
    if (vsrc < p) {
      comm.recv_append<std::int64_t>(
          (vsrc + root) % p, tag + 2 * static_cast<std::uint64_t>(vsrc),
          header);
      comm.recv_append<T>((vsrc + root) % p,
                          tag + 2 * static_cast<std::uint64_t>(vsrc) + 1,
                          payload);
    }
  }

  // Root (vrank 0). Subtrees arrive in ascending-vrank order and each is
  // internally vrank-ascending, so `payload` is already the concatenation
  // in vrank order; rank order is the vrank order rotated by `root`.
  PMPS_CHECK(header.size() == 2 * static_cast<std::size_t>(p));
  std::vector<std::int64_t> vsizes(static_cast<std::size_t>(p));
  for (int v = 0; v < p; ++v) {
    PMPS_ASSERT(header[2 * static_cast<std::size_t>(v)] == v);
    vsizes[static_cast<std::size_t>(v)] =
        header[2 * static_cast<std::size_t>(v) + 1];
  }
  if (root != 0) {
    const auto vfirst = static_cast<std::size_t>(p - root);  // vrank of rank 0
    std::int64_t elems_before = 0;
    for (std::size_t v = 0; v < vfirst; ++v) elems_before += vsizes[v];
    std::rotate(payload.begin(), payload.begin() + elems_before,
                payload.end());
    std::rotate(vsizes.begin(),
                vsizes.begin() + static_cast<std::int64_t>(vfirst),
                vsizes.end());
  }
  return FlatParts<T>::from_sizes(std::move(payload), vsizes);
}

/// allgatherv = gather to 0 + broadcast of (sizes, flat buffer). Every PE
/// gets all contributions in rank order as one FlatParts view.
template <Sortable T>
FlatParts<T> allgatherv(Comm& comm, std::span<const T> local) {
  const int p = comm.size();
  FlatParts<T> gathered = gatherv(comm, local, /*root=*/0);

  std::vector<std::int64_t> sizes = comm.rank() == 0
                                        ? gathered.sizes()
                                        : std::vector<std::int64_t>(
                                              static_cast<std::size_t>(p));
  bcast(comm, sizes, 0);
  std::vector<T> flat = std::move(gathered).take_flat();  // empty off-root
  bcast(comm, flat, 0);
  return FlatParts<T>::from_sizes(std::move(flat), sizes);
}

// ---------------------------------------------------------------------------
// allgather-merge (the gossip of §4.2)
// ---------------------------------------------------------------------------

/// All-gather of locally *sorted* runs where combining merges instead of
/// concatenating, so every intermediate and the final result are sorted.
/// Power-of-two sizes use the hypercube gossip the paper cites from [21];
/// other sizes fall back to a merging binomial gather plus broadcast
/// (footnote 3 of the paper).
template <Sortable T, typename Less = std::less<T>>
std::vector<T> allgather_merge(Comm& comm, std::span<const T> local_sorted,
                               Less less = {}) {
  const int p = comm.size();
  std::vector<T> cur(local_sorted.begin(), local_sorted.end());
  PMPS_ASSERT(std::is_sorted(cur.begin(), cur.end(), less));
  if (p == 1) return cur;

  auto merge2 = [&comm, &less](std::vector<T>& a, std::vector<T>& b) {
    std::vector<T> out(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), less);
    comm.charge(comm.machine().merge_cost(
        static_cast<std::int64_t>(out.size()), 2));
    return out;
  };

  if (is_pow2(p)) {
    const std::uint64_t tag = comm.next_tag_block();
    for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
      const int partner = comm.rank() ^ step;
      comm.send<T>(partner, tag + static_cast<std::uint64_t>(round),
                   std::span<const T>(cur));
      auto other =
          comm.recv<T>(partner, tag + static_cast<std::uint64_t>(round));
      cur = merge2(cur, other);
    }
    return cur;
  }

  // Non-power-of-two: binomial gather with merging, then broadcast.
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = comm.rank();
  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      comm.send<T>(vrank - step, tag + static_cast<std::uint64_t>(vrank),
                   std::span<const T>(cur));
      break;
    }
    if (vrank + step < p) {
      auto other = comm.recv<T>(
          vrank + step, tag + static_cast<std::uint64_t>(vrank + step));
      cur = merge2(cur, other);
    }
  }
  bcast(comm, cur, 0);
  return cur;
}

// ---------------------------------------------------------------------------
// dense all-to-all of counts (Bruck) and irregular all-to-all of payloads
// ---------------------------------------------------------------------------

/// Alltoall of one count per pair using Bruck's algorithm: ⌈log2 p⌉ rounds
/// of ≤ p/2 entries each, i.e. Θ((α + βp) log p) instead of p startups.
/// Writes recv[i] = the value rank i sent to us (recv is resized to p).
///
/// Counts travel as int32 on the wire — half the Θ(p) bytes per PE of the
/// previous int64 format (this collective runs under every alltoallv and
/// sparse exchange, so at large p the halving is visible in β terms).
/// Values outside int32 range are a checked failure; the int64 interface is
/// kept so callers stay unchanged. Wire-format note: docs/DESIGN.md §8.
///
/// The sink-style signature exists for the zero-allocation message path
/// (docs/DESIGN.md §9): the Bruck working arrays live in the PE's
/// CollScratch and every round's payload is received into them, so a warm
/// call allocates nothing (beyond growing `recv` once).
inline void alltoall_counts_into(Comm& comm,
                                 std::span<const std::int64_t> send,
                                 std::vector<std::int64_t>& recv) {
  const int p = comm.size();
  PMPS_CHECK(static_cast<int>(send.size()) == p);
  if (p == 1) {
    recv.assign(send.begin(), send.end());
    return;
  }
  const int me = comm.rank();
  const std::uint64_t tag = comm.next_tag_block();
  net::CollScratch& scratch = comm.ctx().coll_scratch;

  // Local rotation: tmp[j] = my value for dest (me + j) mod p. Position j
  // always holds data whose remaining travel distance has exactly the
  // not-yet-processed bits of j.
  std::vector<std::int32_t>& tmp = scratch.bruck_tmp;
  tmp.resize(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    const std::int64_t v = send[static_cast<std::size_t>((me + j) % p)];
    PMPS_CHECK_MSG(
        v >= std::numeric_limits<std::int32_t>::min() &&
            v <= std::numeric_limits<std::int32_t>::max(),
        "alltoall_counts: value overflows the int32 wire format");
    tmp[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(v);
  }

  std::vector<std::int32_t>& block = scratch.bruck_block;
  std::vector<std::int32_t>& in = scratch.bruck_in;
  for (int k = 0, step = 1; step < p; ++k, step <<= 1) {
    block.clear();
    for (int j = 0; j < p; ++j)
      if ((j & step) != 0) block.push_back(tmp[static_cast<std::size_t>(j)]);
    const int to = (me + step) % p;
    const int from = (me - step + p) % p;
    comm.send<std::int32_t>(to, tag + static_cast<std::uint64_t>(k),
                            std::span<const std::int32_t>(block));
    // The incoming block covers the same index set {j : j & step}, so its
    // size equals ours and it can land in scratch without a size probe.
    in.resize(block.size());
    comm.recv_into<std::int32_t>(from, tag + static_cast<std::uint64_t>(k),
                                 std::span<std::int32_t>(in.data(), in.size()));
    std::size_t idx = 0;
    for (int j = 0; j < p; ++j)
      if ((j & step) != 0) tmp[static_cast<std::size_t>(j)] = in[idx++];
  }

  // Position j now holds the value that travelled j hops, i.e. from rank
  // (me − j) mod p.
  recv.resize(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j)
    recv[static_cast<std::size_t>((me - j + p) % p)] =
        tmp[static_cast<std::size_t>(j)];
}

/// Value-returning wrapper over alltoall_counts_into.
inline std::vector<std::int64_t> alltoall_counts(
    Comm& comm, const std::vector<std::int64_t>& send) {
  std::vector<std::int64_t> recv;
  alltoall_counts_into(
      comm, std::span<const std::int64_t>(send.data(), send.size()), recv);
  return recv;
}

enum class Schedule {
  kDirect,     ///< post all p−1 pairs, empty messages included (mpich-like)
  kOneFactor,  ///< 1-factor pairing [31], empty messages omitted (§7.1)
};

/// Dense alltoallv over one flat send buffer: `sendbuf` holds the per-rank
/// pieces consecutively (piece i, of counts[i] elements, goes to rank i).
/// Returns the received pieces indexed by source rank as a FlatParts view;
/// every piece is received directly into its offset of the one result
/// buffer. The self part is copied locally (copy cost only). Under
/// kOneFactor receive sizes are known to both endpoints after a Bruck
/// counts exchange (charged), mirroring how MPI_Alltoallv callers first
/// alltoall the counts; kDirect posts blind (sizes read off the messages,
/// like mpich's direct algorithm — no counts exchange).
template <Sortable T>
FlatParts<T> alltoallv(Comm& comm, std::span<const T> sendbuf,
                       std::span<const std::int64_t> counts,
                       Schedule sched = Schedule::kOneFactor) {
  const int p = comm.size();
  const int me = comm.rank();
  PMPS_CHECK(static_cast<int>(counts.size()) == p);
  std::vector<std::int64_t> send_off(static_cast<std::size_t>(p) + 1, 0);
  for (int i = 0; i < p; ++i)
    send_off[static_cast<std::size_t>(i) + 1] =
        send_off[static_cast<std::size_t>(i)] +
        counts[static_cast<std::size_t>(i)];
  PMPS_CHECK(send_off[static_cast<std::size_t>(p)] ==
             static_cast<std::int64_t>(sendbuf.size()));
  const auto send_part = [&](int i) {
    return sendbuf.subspan(
        static_cast<std::size_t>(send_off[static_cast<std::size_t>(i)]),
        static_cast<std::size_t>(counts[static_cast<std::size_t>(i)]));
  };

  comm.charge(comm.machine().copy_cost(
      static_cast<std::size_t>(counts[static_cast<std::size_t>(me)]) *
      sizeof(T)));
  if (p == 1) {
    return FlatParts<T>::from_sizes(
        std::vector<T>(sendbuf.begin(), sendbuf.end()), counts);
  }

  if (sched == Schedule::kDirect) {
    const std::uint64_t tag = comm.next_tag_block();
    // Shifted order so PEs do not all start with the same destination.
    for (int i = 1; i < p; ++i) {
      const int dest = (me + i) % p;
      comm.send<T>(dest, tag + static_cast<std::uint64_t>(me),
                   send_part(dest));
    }
    // Sizes are unknown until the messages arrive: hold the raw (pooled)
    // payload buffers, then assemble the flat result in one pass.
    std::vector<net::Message> pending(static_cast<std::size_t>(p));
    for (int i = 1; i < p; ++i) {
      const int src = (me - i + p) % p;
      pending[static_cast<std::size_t>(src)] =
          comm.recv_bytes(src, tag + static_cast<std::uint64_t>(src));
    }
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(p), 0);
    sizes[static_cast<std::size_t>(me)] = counts[static_cast<std::size_t>(me)];
    for (int s = 0; s < p; ++s) {
      if (s == me) continue;
      const auto& payload = pending[static_cast<std::size_t>(s)].payload;
      PMPS_CHECK(payload.size() % sizeof(T) == 0);
      sizes[static_cast<std::size_t>(s)] =
          static_cast<std::int64_t>(payload.size() / sizeof(T));
    }
    std::vector<std::int64_t> offsets(static_cast<std::size_t>(p) + 1, 0);
    for (int i = 0; i < p; ++i)
      offsets[static_cast<std::size_t>(i) + 1] =
          offsets[static_cast<std::size_t>(i)] +
          sizes[static_cast<std::size_t>(i)];
    std::vector<T> flat(
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(p)]));
    for (int s = 0; s < p; ++s) {
      T* dst = flat.data() + offsets[static_cast<std::size_t>(s)];
      if (s == me) {
        const auto self = send_part(me);
        std::copy(self.begin(), self.end(), dst);
      } else {
        net::Message& m = pending[static_cast<std::size_t>(s)];
        if (!m.payload.empty())
          std::memcpy(dst, m.payload.data(), m.payload.size());
        comm.release_payload(std::move(m));
      }
    }
    return FlatParts<T>(std::move(flat), std::move(offsets));
  }

  // 1-factor algorithm [31]: p−1 (p even) or p (p odd) rounds of disjoint
  // pairs; rounds where both directions are empty cost nothing.
  std::vector<std::int64_t> out_counts(counts.begin(), counts.end());
  out_counts[static_cast<std::size_t>(me)] = 0;
  const std::vector<std::int64_t> in_counts = alltoall_counts(comm, out_counts);

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(p) + 1, 0);
  for (int i = 0; i < p; ++i) {
    const std::int64_t sz = i == me ? counts[static_cast<std::size_t>(me)]
                                    : in_counts[static_cast<std::size_t>(i)];
    offsets[static_cast<std::size_t>(i) + 1] =
        offsets[static_cast<std::size_t>(i)] + sz;
  }
  std::vector<T> flat(
      static_cast<std::size_t>(offsets[static_cast<std::size_t>(p)]));
  {
    const auto self = send_part(me);
    std::copy(self.begin(), self.end(),
              flat.data() + offsets[static_cast<std::size_t>(me)]);
  }

  const std::uint64_t tag = comm.next_tag_block();
  const bool even = (p % 2) == 0;
  const int rounds = even ? p - 1 : p;
  for (int r = 0; r < rounds; ++r) {
    int partner;
    if (even) {
      const int m = p - 1;
      if (me == p - 1) {
        partner =
            static_cast<int>((static_cast<std::int64_t>(r) * (p / 2)) % m);
      } else {
        const int q = ((r - me) % m + m) % m;
        partner = (q == me) ? p - 1 : q;
      }
    } else {
      partner = ((r - me) % p + p) % p;
      if (partner == me) continue;  // idle round
    }
    const auto out = send_part(partner);
    if (!out.empty()) {
      comm.send<T>(partner, tag + static_cast<std::uint64_t>(r), out);
    }
    const std::int64_t in_sz = in_counts[static_cast<std::size_t>(partner)];
    if (in_sz > 0) {
      comm.recv_into<T>(
          partner, tag + static_cast<std::uint64_t>(r),
          std::span<T>(flat.data() + offsets[static_cast<std::size_t>(partner)],
                       static_cast<std::size_t>(in_sz)));
    }
  }
  return FlatParts<T>(std::move(flat), std::move(offsets));
}

// ---------------------------------------------------------------------------
// sparse exchange (NBX-style)
// ---------------------------------------------------------------------------

/// Result of a sparse exchange: one flat buffer holding every received
/// message, indexed by (message, offset) through the FlatParts view, with
/// the source rank of each part alongside. Parts are ordered by source rank
/// and, within a source, by send order.
template <Sortable T>
struct SparseIn {
  FlatParts<T> parts;
  std::vector<int> srcs;  ///< srcs[i] = source rank of parts.part(i)

  int count() const { return parts.parts(); }
};

/// Sink-parameterised sparse all-to-all: identical message sequence (and
/// therefore identical virtual time) to sparse_exchange, but every received
/// payload is handed to `sink(src_rank, std::span<const T>)` in the
/// deterministic receive order — ascending source rank, send order within a
/// source — instead of being appended to one in-memory result buffer. The
/// payload span is only valid during the sink call; afterwards the buffer
/// returns to the engine's pool. The out-of-core delivery path
/// (delivery::deliver_into + em::run_sink) uses this to land incoming
/// pieces directly into run blocks on disk.
///
/// The outgoing messages arrive as a SendPlan (send_plan.hpp): pieces are
/// sent in plan order straight out of the plan's flat buffer, and the
/// Θ(p) count vectors live in the PE's CollScratch — a warm exchange with
/// a reused plan and a non-allocating sink performs zero heap allocations
/// (docs/DESIGN.md §9, asserted by tests/test_alloc.cpp).
template <Sortable T, typename Sink>
void sparse_exchange_into(Comm& comm, const SendPlan<T>& outgoing,
                          Sink&& sink) {
  const int p = comm.size();
  const std::uint64_t tag = comm.next_tag_block();
  net::CollScratch& scratch = comm.ctx().coll_scratch;

  if (comm.engine().coll_ff_enabled()) {
    // --- out-of-band counts via the engine's tally rendezvous --------------
    // The dense Bruck exchange below runs entirely in free mode — zero
    // clock/stats/RNG effects — so replacing it by a direct tally is
    // bit-identical while touching O(distinct dests) memory per PE instead
    // of three Θ(p) vectors (≈ 25 GB of host RAM at p = 2^15).
    std::vector<std::int32_t>& dests = scratch.sx_dests;
    dests.clear();
    for (int i = 0; i < outgoing.pieces(); ++i)
      dests.push_back(static_cast<std::int32_t>(outgoing.dest(i)));
    std::sort(dests.begin(), dests.end());
    std::vector<net::CountPair>& out_pairs = scratch.sx_out;
    out_pairs.clear();
    for (std::size_t i = 0; i < dests.size();) {
      std::size_t j = i;
      while (j < dests.size() && dests[j] == dests[i]) ++j;
      out_pairs.push_back({dests[i], static_cast<std::int64_t>(j - i)});
      i = j;
    }
    comm.tally_counts(
        std::span<const net::CountPair>(out_pairs.data(), out_pairs.size()),
        scratch.sx_in);

    // --- charged: the real messages ----------------------------------------
    std::vector<std::int64_t>& seq = scratch.sx_seq;
    seq.assign(out_pairs.size(), 0);
    for (int i = 0; i < outgoing.pieces(); ++i) {
      const int dest = outgoing.dest(i);
      const auto it = std::lower_bound(
          out_pairs.begin(), out_pairs.end(), dest,
          [](const net::CountPair& a, int d) { return a.rank < d; });
      const auto k = static_cast<std::uint64_t>(
          seq[static_cast<std::size_t>(it - out_pairs.begin())]++);
      comm.send<T>(dest, tag + k, outgoing.piece(i));
    }

    // Receive order identical to the dense path: ascending source rank,
    // send order within a source (sx_in is sorted by src).
    for (const net::CountPair& cp : scratch.sx_in) {
      for (std::int64_t k = 0; k < cp.count; ++k) {
        net::Message m =
            comm.recv_bytes(cp.rank, tag + static_cast<std::uint64_t>(k));
        PMPS_CHECK(m.payload.size() % sizeof(T) == 0);
        sink(cp.rank,
             std::span<const T>(reinterpret_cast<const T*>(m.payload.data()),
                                m.payload.size() / sizeof(T)));
        comm.release_payload(std::move(m));
      }
    }

    // Termination detection (NBX ibarrier), charged.
    barrier(comm);
    return;
  }

  // --- PMPS_COLL_FF=0 fallback: free-mode dense Bruck counts exchange ------
  std::vector<std::int64_t>& in_count = scratch.counts_in;
  {
    net::FreeModeGuard free_guard(comm.ctx());
    std::vector<std::int64_t>& out_count = scratch.counts_out;
    out_count.assign(static_cast<std::size_t>(p), 0);
    for (int i = 0; i < outgoing.pieces(); ++i)
      out_count[static_cast<std::size_t>(outgoing.dest(i))] += 1;
    alltoall_counts_into(
        comm, std::span<const std::int64_t>(out_count.data(), out_count.size()),
        in_count);
  }

  // --- charged: the real messages ------------------------------------------
  std::vector<std::int64_t>& seq_per_dest = scratch.seq_per_dest;
  seq_per_dest.assign(static_cast<std::size_t>(p), 0);
  for (int i = 0; i < outgoing.pieces(); ++i) {
    const int dest = outgoing.dest(i);
    const auto k = static_cast<std::uint64_t>(
        seq_per_dest[static_cast<std::size_t>(dest)]++);
    comm.send<T>(dest, tag + k, outgoing.piece(i));
  }

  for (int src = 0; src < p; ++src) {
    for (std::int64_t k = 0; k < in_count[static_cast<std::size_t>(src)];
         ++k) {
      net::Message m = comm.recv_bytes(src, tag + static_cast<std::uint64_t>(k));
      PMPS_CHECK(m.payload.size() % sizeof(T) == 0);
      sink(src,
           std::span<const T>(reinterpret_cast<const T*>(m.payload.data()),
                              m.payload.size() / sizeof(T)));
      comm.release_payload(std::move(m));
    }
  }

  // Termination detection (NBX ibarrier), charged.
  barrier(comm);
}

/// Sparse all-to-all: each PE sends an arbitrary set of messages; receivers
/// do not know the senders in advance. Mirrors the NBX algorithm (dynamic
/// sparse data exchange): only the actual messages are charged, plus a
/// Θ(α log p) termination-detection barrier. The sender/receiver sets are
/// resolved out of band (uncharged), which is what NBX's speculative
/// receive loop achieves on a real machine.
///
/// Every received payload is appended to one flat result buffer (no
/// per-message vector), so the host-time cost is O(messages) appends plus
/// O(1) allocations. (This is sparse_exchange_into with the flat-buffer
/// sink.)
template <Sortable T>
SparseIn<T> sparse_exchange(Comm& comm, const SendPlan<T>& outgoing) {
  SparseIn<T> in;
  std::vector<T> flat;
  std::vector<std::int64_t> offsets{0};
  sparse_exchange_into<T>(comm, outgoing,
                          [&](int src, std::span<const T> piece) {
                            flat.insert(flat.end(), piece.begin(), piece.end());
                            offsets.push_back(
                                static_cast<std::int64_t>(flat.size()));
                            in.srcs.push_back(src);
                          });
  in.parts = FlatParts<T>(std::move(flat), std::move(offsets));
  return in;
}

}  // namespace pmps::coll
