// FlatParts: the result shape of the flat-buffer collectives.
//
// One contiguous buffer plus p+1 offsets — the counts/displacements shape
// MPI_Gatherv / MPI_Alltoallv are specified over. part(i) is a zero-copy
// span view of rank i's contribution; iteration yields the parts in order;
// take_flat() moves the underlying buffer out when the caller only wants
// the concatenation (the common case in the sorters), so consuming a
// collective's result costs no copy at all.
//
// The point of the shape is host-time, not virtual-time: a
// vector<vector<T>> result costs one heap allocation per rank per PE —
// Θ(p²) allocations per collective across the simulation at p = 4096 —
// while a FlatParts costs two allocations per PE regardless of p. See
// docs/DESIGN.md §7.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace pmps::coll {

template <typename T>
class FlatParts {
 public:
  /// Empty view: zero parts, zero elements.
  FlatParts() = default;

  /// Takes ownership of `flat` split at `offsets` (size parts+1, leading 0,
  /// non-decreasing, last == flat.size()).
  FlatParts(std::vector<T> flat, std::vector<std::int64_t> offsets)
      : flat_(std::move(flat)), offsets_(std::move(offsets)) {
    PMPS_CHECK(!offsets_.empty() && offsets_.front() == 0);
    PMPS_CHECK(offsets_.back() == static_cast<std::int64_t>(flat_.size()));
#ifndef NDEBUG
    for (std::size_t i = 1; i < offsets_.size(); ++i)
      PMPS_ASSERT(offsets_[i - 1] <= offsets_[i]);
#endif
  }

  /// Takes ownership of `flat` split into consecutive parts of `sizes`.
  static FlatParts from_sizes(std::vector<T> flat,
                              std::span<const std::int64_t> sizes) {
    std::vector<std::int64_t> offsets(sizes.size() + 1, 0);
    for (std::size_t i = 0; i < sizes.size(); ++i)
      offsets[i + 1] = offsets[i] + sizes[i];
    return FlatParts(std::move(flat), std::move(offsets));
  }

  /// Number of parts (one per contributing rank/message).
  int parts() const { return static_cast<int>(offsets_.size()) - 1; }

  /// Total element count across all parts (== flat().size()).
  std::int64_t total() const { return offsets_.back(); }

  /// Element count of part `i`.
  std::int64_t size(int i) const {
    PMPS_ASSERT(i >= 0 && i < parts());
    return offsets_[static_cast<std::size_t>(i) + 1] -
           offsets_[static_cast<std::size_t>(i)];
  }

  /// Zero-copy span view of part `i` (valid while this object lives and
  /// take_flat() has not been called).
  std::span<const T> part(int i) const {
    PMPS_ASSERT(i >= 0 && i < parts());
    return {flat_.data() + offsets_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(size(i))};
  }

  /// The whole buffer: all parts concatenated in part order.
  std::span<const T> flat() const { return {flat_.data(), flat_.size()}; }

  /// The parts+1 offsets (leading 0, non-decreasing, last == total()) —
  /// MPI's displacements array.
  const std::vector<std::int64_t>& offsets() const { return offsets_; }

  /// Per-part element counts as a fresh vector — MPI's counts array.
  std::vector<std::int64_t> sizes() const {
    std::vector<std::int64_t> s(static_cast<std::size_t>(parts()));
    for (int i = 0; i < parts(); ++i) s[static_cast<std::size_t>(i)] = size(i);
    return s;
  }

  /// Moves the underlying buffer out (the view is empty afterwards).
  std::vector<T> take_flat() && {
    offsets_.assign(1, 0);
    return std::move(flat_);
  }

  /// All parts as a vector of spans (e.g. for seq::multiway_merge). Views
  /// into this object — keep it alive while the spans are used.
  std::vector<std::span<const T>> part_spans() const {
    std::vector<std::span<const T>> s(static_cast<std::size_t>(parts()));
    for (int i = 0; i < parts(); ++i) s[static_cast<std::size_t>(i)] = part(i);
    return s;
  }

  /// Forward iteration over the parts as spans.
  class const_iterator {
   public:
    const_iterator(const FlatParts* fp, int i) : fp_(fp), i_(i) {}
    std::span<const T> operator*() const { return fp_->part(i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) =
        default;

   private:
    const FlatParts* fp_;
    int i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, parts()}; }

 private:
  std::vector<T> flat_;
  std::vector<std::int64_t> offsets_{0};
};

}  // namespace pmps::coll
