// SendPlan: the send-side twin of FlatParts (flat.hpp).
//
// One contiguous element buffer plus a flat array of (dest, offset) piece
// descriptors — the counts/displacements shape on the *outgoing* side.
// Planners append pieces directly into the flat buffer (begin_piece /
// append), so building a sparse exchange's outgoing message set costs
// three growable buffers per plan instead of one heap vector per piece —
// the send-side half of the Θ(p²)-allocation wall FlatParts removed on the
// receive side (docs/DESIGN.md §9).
//
// A cleared plan keeps its capacity, so a reused plan (clear + refill each
// round) allocates nothing once warm — the shape the zero-allocation
// message path is built from. Pieces are sent in append order by
// coll::sparse_exchange, which is what makes the message sequence (and
// with it virtual time) identical to the old per-piece-vector path.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace pmps::coll {

template <typename T>
class SendPlan {
 public:
  SendPlan() = default;

  /// Drops all pieces but keeps every buffer's capacity (steady-state reuse).
  void clear() {
    buf_.clear();
    offsets_.resize(1);
    dests_.clear();
  }

  /// Pre-sizes the buffers (optional; append grows them on demand).
  void reserve(std::int64_t elements, int pieces) {
    buf_.reserve(static_cast<std::size_t>(elements));
    offsets_.reserve(static_cast<std::size_t>(pieces) + 1);
    dests_.reserve(static_cast<std::size_t>(pieces));
  }

  /// Opens a new piece addressed to `dest_rank`; subsequent append/push_back
  /// calls extend it until the next begin_piece. Empty pieces are legal
  /// (they become empty messages).
  void begin_piece(int dest_rank) {
    dests_.push_back(dest_rank);
    offsets_.push_back(offsets_.back());
  }

  /// Appends `elems` to the currently open piece.
  void append(std::span<const T> elems) {
    PMPS_ASSERT(!dests_.empty());
    buf_.insert(buf_.end(), elems.begin(), elems.end());
    offsets_.back() = static_cast<std::int64_t>(buf_.size());
  }

  /// Appends one element to the currently open piece.
  void push_back(const T& v) {
    PMPS_ASSERT(!dests_.empty());
    buf_.push_back(v);
    offsets_.back() = static_cast<std::int64_t>(buf_.size());
  }

  /// One-shot piece: begin_piece + append.
  void add(int dest_rank, std::span<const T> elems) {
    begin_piece(dest_rank);
    append(elems);
  }

  /// Number of planned pieces (= outgoing messages).
  int pieces() const { return static_cast<int>(dests_.size()); }

  /// Destination rank of piece `i`.
  int dest(int i) const {
    PMPS_ASSERT(i >= 0 && i < pieces());
    return dests_[static_cast<std::size_t>(i)];
  }

  /// Zero-copy span view of piece `i`'s elements.
  std::span<const T> piece(int i) const {
    PMPS_ASSERT(i >= 0 && i < pieces());
    const auto b = offsets_[static_cast<std::size_t>(i)];
    const auto e = offsets_[static_cast<std::size_t>(i) + 1];
    return {buf_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Total element count across all pieces.
  std::int64_t total() const { return offsets_.back(); }

 private:
  std::vector<T> buf_;
  std::vector<std::int64_t> offsets_{0};  ///< pieces+1, leading 0
  std::vector<int> dests_;                ///< dests_[i] = dest rank of piece i
};

}  // namespace pmps::coll
