// IoExecutor: the background I/O engine of the out-of-core path.
//
// A small pool of I/O threads executes positional reads and gather-writes
// against the spill file so that the worker threads running PE fibers never
// stall on storage: RunStore's write-behind queue and RunCursor/StoreStream
// read-ahead submit here and only wait when a result is actually needed
// (docs/EM.md, "The I/O pipeline").
//
// Completion handoff is fiber-aware. A fiber that must wait registers its
// opaque handle (net::FiberPool::current_fiber_handle) in the op's record
// under the record's mutex and parks through the engine's standard
// kBlocking/kBlocked/kReady protocol — its worker thread picks up another
// PE fiber meanwhile. The completing I/O thread flips the op done under the
// same mutex and wakes the handle, exactly like a message depositor wakes a
// mailbox waiter. Non-fiber callers (the thread-per-PE backend, unit tests,
// bench drivers) fall back to a condition-variable wait on the same record.
//
// Completion records are pooled and recycled on wait(), so the warm spill
// path allocates nothing (tests/test_alloc.cpp). Ops carry their iovec
// spans inline (kMaxIov), never owning data: buffers stay owned by the
// submitting RunStore, which keeps them alive until the op is waited out.
//
// Backends: the default executes ops on `threads` plain threads with
// pread/pwritev (em/io.hpp, hardened). When liburing headers were found at
// configure time (PMPS_HAVE_IO_URING), IoMode::kUring drives the same op
// queue through one io_uring instead; it falls back to the thread pool
// when ring setup fails at runtime. PMPS_EM_IO selects sync|async|uring
// for the harness (io_mode_from_env).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

namespace pmps::em {

/// How the spill path schedules file I/O (PMPS_EM_IO).
enum class IoMode {
  kSync,   ///< no executor: synchronous I/O inside the owning fiber (PR-9)
  kAsync,  ///< background I/O thread pool (default)
  kUring,  ///< io_uring submission thread (falls back to kAsync if absent)
};

/// Reads PMPS_EM_IO ("sync" | "async" | "uring"); default kAsync.
IoMode io_mode_from_env();

/// Background I/O thread count: PMPS_EM_IO_THREADS, default 2, clamped to
/// [1, 8].
int io_threads_from_env();

/// True when the io_uring backend was compiled in (liburing found).
bool io_uring_available();

class IoExecutor {
 public:
  /// Most spans one gather-write op can carry — also the write-behind
  /// coalescing window (adjacent dirty blocks merged per syscall).
  static constexpr int kMaxIov = 8;

  struct Op;  ///< pooled completion record; opaque to callers

  explicit IoExecutor(int threads = 2, IoMode mode = IoMode::kAsync);

  /// Joins the I/O threads after draining the queue. Every submitted op
  /// must have been waited out (RunStore::drain does this).
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  /// Submits a gather-write of the concatenation of `bufs` (none empty, at
  /// most kMaxIov) at byte offset `off`. The spans' memory must stay valid
  /// and unmodified until wait(). Returns the op ticket.
  Op* submit_write(int fd, std::int64_t off,
                   std::span<const std::span<const std::byte>> bufs);

  /// Submits a positional read filling `out`; same lifetime contract.
  Op* submit_read(int fd, std::int64_t off, std::span<std::byte> out);

  /// True when `op` completed (a wait() would not block).
  static bool poll(const Op* op);

  /// Blocks until `op` completes, then recycles it (the ticket is dead).
  /// Fiber-aware — see the file comment. Returns the host seconds this
  /// call actually spent blocked (0 when the op was already done).
  double wait(Op* op);

  /// The backend actually in use (kUring setup may have fallen back).
  IoMode mode() const;

 private:
  struct Impl;
  Op* acquire(int fd, std::int64_t off);
  void enqueue(Op* op);
  void thread_main();
#if defined(PMPS_HAVE_IO_URING)
  void uring_main();
#endif
  static void execute(Op* op);
  static void complete(Op* op);
  std::unique_ptr<Impl> impl_;
};

}  // namespace pmps::em
