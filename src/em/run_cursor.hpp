// RunCursor / StoreStream: read cursors over a RunStore, with read-ahead.
//
// RunCursor is a block-granular cursor over ONE run: next_window() loads the
// run's next block and returns it as a span — the refill source for the
// external multiway merge, which feeds seq::LoserTree::pop_bulk from these
// windows instead of whole in-memory spans.
//
// StoreStream is a sequential element reader over the store's *content*
// (the concatenation of all runs, as read_range addresses it) with seek():
// the streaming-classification passes and plan_delivery_from_store walk a
// spilled partition through it.
//
// Read-ahead (store.async_io()): both readers double-buffer. While the
// consumer works through the front block, the next block's read is already
// in flight on the IoExecutor into the back buffer; advancing awaits the
// pending op (a *prefetch hit* when it already completed — SpillStats),
// swaps buffers and immediately submits the following block. Prefetch depth
// is one block per cursor — k merge cursors thus keep up to k reads in
// flight while costing 2k pooled block buffers instead of k. In sync mode
// (PMPS_EM_IO=sync) both readers degrade to the PR-9 synchronous
// read_block/read_range calls and hold a single buffer. Either way the
// elements delivered are bit-identical — scheduling is host-side only.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "em/run_store.hpp"

namespace pmps::em {

template <Sortable T>
class RunCursor {
 public:
  RunCursor(RunStore<T>* store, int run)
      : store_(store),
        run_(run),
        remaining_(store->run_size(run)),
        buf_(store->acquire_buffer()) {
    if (store_->async_io() && remaining_ > 0) {
      back_ = store_->acquire_buffer();
      start_prefetch();
    }
  }

  ~RunCursor() {
    if (store_ == nullptr) return;
    if (pending_ != nullptr) store_->await_read(pending_, /*count=*/false);
    store_->release_buffer(std::move(buf_));
    store_->release_buffer(std::move(back_));  // ignored when never acquired
  }

  RunCursor(const RunCursor&) = delete;
  RunCursor& operator=(const RunCursor&) = delete;

  RunCursor(RunCursor&& other) noexcept
      : store_(std::exchange(other.store_, nullptr)),
        run_(other.run_),
        next_block_(other.next_block_),
        remaining_(other.remaining_),
        buf_(std::move(other.buf_)),
        back_(std::move(other.back_)),
        pending_(std::exchange(other.pending_, nullptr)),
        pending_len_(other.pending_len_) {}
  RunCursor& operator=(RunCursor&&) = delete;

  /// Elements not yet returned by next_window().
  std::int64_t remaining() const { return remaining_; }

  /// Loads the next block of the run into the cursor's buffer and returns
  /// it; an empty span means the run is exhausted. The returned span stays
  /// valid until the next call (it views the cursor's buffer).
  std::span<const T> next_window() {
    if (remaining_ == 0) return {};
    if (pending_ != nullptr) {
      // Read-ahead path: consume the in-flight block, refill behind it.
      store_->await_read(pending_);
      pending_ = nullptr;
      std::swap(buf_, back_);
      const std::int64_t len = pending_len_;
      ++next_block_;
      remaining_ -= len;
      if (remaining_ > 0) start_prefetch();
      return std::span<const T>(buf_.data(), static_cast<std::size_t>(len));
    }
    const std::int64_t len =
        std::min(store_->elems_per_block(), remaining_);
    std::span<T> window(buf_.data(), static_cast<std::size_t>(len));
    store_->read_block(run_, next_block_++, window);
    remaining_ -= len;
    return window;
  }

 private:
  /// Submits the read of block next_block_ (the next one to hand out) into
  /// the back buffer.
  void start_prefetch() {
    pending_len_ = std::min(store_->elems_per_block(), remaining_);
    pending_ = store_->start_read_block(
        run_, next_block_,
        std::span<T>(back_.data(), static_cast<std::size_t>(pending_len_)));
  }

  RunStore<T>* store_;
  int run_;
  std::int64_t next_block_ = 0;
  std::int64_t remaining_;
  std::vector<T> buf_;
  std::vector<T> back_;                   ///< prefetch target (async only)
  IoExecutor::Op* pending_ = nullptr;     ///< in-flight read of next_block_
  std::int64_t pending_len_ = 0;
};

/// Sequential reader over a store's content — the spilled partition as one
/// flat sequence — with seek(). In async mode it prefetches whole blocks
/// double-buffered and serves read() by copying out of the front window;
/// in sync mode read() passes through to RunStore::read_range. Reads must
/// stay within the content written before streaming began.
template <Sortable T>
class StoreStream {
 public:
  explicit StoreStream(RunStore<T>& store, std::int64_t pos = 0)
      : store_(&store), epb_(store.elems_per_block()) {
    if (store_->async_io()) {
      front_ = store_->acquire_buffer();
      back_ = store_->acquire_buffer();
    }
    seek(pos);
  }

  ~StoreStream() {
    discard_pending();
    store_->release_buffer(std::move(front_));
    store_->release_buffer(std::move(back_));
  }

  StoreStream(const StoreStream&) = delete;
  StoreStream& operator=(const StoreStream&) = delete;

  /// Content position of the next element read() will deliver.
  std::int64_t pos() const { return pos_; }

  /// Repositions the stream; in async mode the prefetch restarts at the
  /// block containing `pos` (0 ≤ pos ≤ total).
  void seek(std::int64_t pos) {
    PMPS_ASSERT(pos >= 0 && pos <= store_->total());
    pos_ = pos;
    if (!store_->async_io()) return;
    discard_pending();
    front_len_ = 0;
    off_ = 0;
    if (pos_ < store_->total()) {
      const auto [run, in_run] = store_->locate(pos_);
      seek_off_ = in_run % epb_;
      submit(run, in_run / epb_);
    }
  }

  /// Reads the next out.size() elements of the content, advancing the
  /// stream.
  void read(std::span<T> out) {
    PMPS_ASSERT(pos_ + static_cast<std::int64_t>(out.size()) <=
                store_->total());
    if (out.empty()) return;
    if (!store_->async_io()) {
      store_->read_range(pos_, out);
      pos_ += static_cast<std::int64_t>(out.size());
      return;
    }
    std::size_t done = 0;
    while (done < out.size()) {
      if (off_ == front_len_) advance_window();
      const auto len = std::min(static_cast<std::size_t>(front_len_ - off_),
                                out.size() - done);
      std::memcpy(out.data() + done, front_.data() + off_, len * sizeof(T));
      off_ += static_cast<std::int64_t>(len);
      done += len;
    }
    pos_ += static_cast<std::int64_t>(out.size());
  }

  /// Reads one element (splitter sampling over a spilled partition).
  T read_one() {
    T v;
    read(std::span<T>(&v, 1));
    return v;
  }

 private:
  void discard_pending() {
    if (pending_ == nullptr) return;
    store_->await_read(pending_, /*count=*/false);
    pending_ = nullptr;
  }

  /// Submits the prefetch of block `block` of run `run` into the back
  /// buffer and records its identity for the successor computation.
  void submit(int run, std::int64_t block) {
    pend_run_ = run;
    pend_block_ = block;
    pending_len_ =
        std::min(epb_, store_->run_size(run) - block * epb_);
    pending_ = store_->start_read_block(
        run, block,
        std::span<T>(back_.data(), static_cast<std::size_t>(pending_len_)));
  }

  /// Makes the pending window current and submits its successor (next
  /// block of the run, else the first block of the next non-empty run).
  void advance_window() {
    PMPS_ASSERT(pending_ != nullptr);
    store_->await_read(pending_);
    pending_ = nullptr;
    std::swap(front_, back_);
    front_len_ = pending_len_;
    off_ = seek_off_;
    seek_off_ = 0;
    const int run = pend_run_;
    const std::int64_t block = pend_block_;
    if ((block + 1) * epb_ < store_->run_size(run)) {
      submit(run, block + 1);
      return;
    }
    for (int r = run + 1; r < store_->runs(); ++r) {
      if (store_->run_size(r) > 0) {
        submit(r, 0);
        return;
      }
    }
  }

  RunStore<T>* store_;
  std::int64_t epb_;
  std::int64_t pos_ = 0;
  // Async-mode window state.
  std::vector<T> front_;
  std::vector<T> back_;
  std::int64_t front_len_ = 0;  ///< elements in the front window
  std::int64_t off_ = 0;        ///< consumed elements of the front window
  std::int64_t seek_off_ = 0;   ///< offset to apply when pending lands
  IoExecutor::Op* pending_ = nullptr;
  std::int64_t pending_len_ = 0;  ///< elements of the pending window
  int pend_run_ = -1;
  std::int64_t pend_block_ = -1;
};

}  // namespace pmps::em
