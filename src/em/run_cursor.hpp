// RunCursor: a block-granular read cursor over one run of a RunStore.
//
// next_window() loads the run's next block into the cursor's (pooled)
// buffer and returns it as a span — the refill source for the external
// multiway merge, which feeds seq::LoserTree::pop_bulk from these windows
// instead of whole in-memory spans. A cursor owns exactly one block buffer,
// acquired from the store's free list on construction and returned on
// destruction, so k live cursors cost k blocks of memory total.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "em/run_store.hpp"

namespace pmps::em {

template <Sortable T>
class RunCursor {
 public:
  RunCursor(RunStore<T>* store, int run)
      : store_(store),
        run_(run),
        remaining_(store->run_size(run)),
        buf_(store->acquire_buffer()) {}

  ~RunCursor() {
    if (store_ != nullptr) store_->release_buffer(std::move(buf_));
  }

  RunCursor(const RunCursor&) = delete;
  RunCursor& operator=(const RunCursor&) = delete;

  RunCursor(RunCursor&& other) noexcept
      : store_(std::exchange(other.store_, nullptr)),
        run_(other.run_),
        next_block_(other.next_block_),
        remaining_(other.remaining_),
        buf_(std::move(other.buf_)) {}
  RunCursor& operator=(RunCursor&&) = delete;

  /// Elements not yet returned by next_window().
  std::int64_t remaining() const { return remaining_; }

  /// Loads the next block of the run into the cursor's buffer and returns
  /// it; an empty span means the run is exhausted. The returned span stays
  /// valid until the next call (it views the cursor's buffer).
  std::span<const T> next_window() {
    if (remaining_ == 0) return {};
    const std::int64_t len =
        std::min(store_->elems_per_block(), remaining_);
    std::span<T> window(buf_.data(), static_cast<std::size_t>(len));
    store_->read_block(run_, next_block_++, window);
    remaining_ -= len;
    return window;
  }

 private:
  RunStore<T>* store_;
  int run_;
  std::int64_t next_block_ = 0;
  std::int64_t remaining_;
  std::vector<T> buf_;
};

}  // namespace pmps::em
