// Memory budget and spill accounting for the out-of-core subsystem.
//
// The paper positions AMS-sort against sort-benchmark entries (TritonSort,
// Baidu-Sort MinuteSort — §3, §7.3) whose defining constraint is data far
// larger than RAM. `src/em/` opens that workload for this reproduction: a
// per-PE MemoryBudget caps how many bytes of element storage a sorter may
// keep resident; beyond it, data spills to fixed-size blocks in a per-PE
// temporary file (block_file.hpp / run_store.hpp) and is merged back with a
// block-granular external multiway merge (external_merge.hpp).
//
// Spilling is strictly *host-side*: the virtual-time machine model (§2.1)
// never sees it, the same messages flow in the same order, and seeded
// results are bit-identical to the in-memory path for unique-by-value keys
// (the harness's uint64 workloads; duplicate-key *payload* types may order
// equal keys differently because base-case chunk sorts are unstable —
// output is still value-identical). What changes is where a PE's bytes
// live between communication phases — which is exactly the out-of-core
// structure the sort-benchmark systems are built around. See docs/EM.md
// for the design and the determinism argument.

#pragma once

#include <atomic>
#include <cstdint>

namespace pmps::em {

class BlockFile;
class IoExecutor;

/// Aggregated spill counters — a plain-value snapshot of SpillStats,
/// suitable for reports and bench JSON.
struct SpillTotals {
  std::int64_t runs_written = 0;    ///< sorted runs formed
  std::int64_t blocks_written = 0;  ///< block-file writes
  std::int64_t blocks_read = 0;     ///< block-file reads
  std::int64_t bytes_written = 0;   ///< bytes spilled to disk
  std::int64_t bytes_read = 0;      ///< bytes read back from disk
  std::int64_t external_sorts = 0;  ///< local sorts that went out of core
  std::int64_t external_merges = 0; ///< block-granular k-way merges performed
  std::int64_t merge_passes = 0;    ///< extra fan-in-bounded merge passes

  // Overlap counters (all zero on the synchronous PMPS_EM_IO=sync path).
  std::int64_t writes_behind = 0;   ///< blocks flushed through the dirty queue
  std::int64_t write_coalesced = 0; ///< dirty blocks merged into a neighbour's syscall
  std::int64_t prefetch_hits = 0;   ///< read-ahead windows already complete when consumed
  std::int64_t prefetch_misses = 0; ///< windows the consumer had to block for
  std::int64_t inflight_hwm_bytes = 0;  ///< dirty-queue high-water mark, bytes
  double io_wait_sec = 0;           ///< host seconds PEs spent blocked on spill I/O

  bool spilled() const { return bytes_written > 0; }
};

/// Host-side spill counters shared by every PE of a run (PE fibers may
/// execute on different worker threads, hence the atomics). Attach via
/// MemoryBudget::stats; all RunStore / external-merge I/O is counted here.
class SpillStats {
 public:
  void count_run() { runs_written.fetch_add(1, std::memory_order_relaxed); }
  void count_write(std::int64_t bytes) {
    blocks_written.fetch_add(1, std::memory_order_relaxed);
    bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  }
  void count_read(std::int64_t bytes) {
    blocks_read.fetch_add(1, std::memory_order_relaxed);
    bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  void count_external_sort() {
    external_sorts.fetch_add(1, std::memory_order_relaxed);
  }
  void count_external_merge() {
    external_merges.fetch_add(1, std::memory_order_relaxed);
  }
  void count_merge_pass() {
    merge_passes.fetch_add(1, std::memory_order_relaxed);
  }
  void count_write_behind() {
    writes_behind.fetch_add(1, std::memory_order_relaxed);
  }
  void count_coalesced() {
    write_coalesced.fetch_add(1, std::memory_order_relaxed);
  }
  void count_prefetch(bool hit) {
    (hit ? prefetch_hits : prefetch_misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
  /// Raises the dirty-queue high-water mark to `bytes` if above it.
  void note_inflight(std::int64_t bytes) {
    std::int64_t cur = inflight_hwm_bytes.load(std::memory_order_relaxed);
    while (bytes > cur && !inflight_hwm_bytes.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed)) {
    }
  }
  void count_io_wait(double sec) {
    io_wait_ns.fetch_add(static_cast<std::int64_t>(sec * 1e9),
                         std::memory_order_relaxed);
  }

  /// Plain-value copy of the counters.
  SpillTotals totals() const {
    SpillTotals t;
    t.runs_written = runs_written.load(std::memory_order_relaxed);
    t.blocks_written = blocks_written.load(std::memory_order_relaxed);
    t.blocks_read = blocks_read.load(std::memory_order_relaxed);
    t.bytes_written = bytes_written.load(std::memory_order_relaxed);
    t.bytes_read = bytes_read.load(std::memory_order_relaxed);
    t.external_sorts = external_sorts.load(std::memory_order_relaxed);
    t.external_merges = external_merges.load(std::memory_order_relaxed);
    t.merge_passes = merge_passes.load(std::memory_order_relaxed);
    t.writes_behind = writes_behind.load(std::memory_order_relaxed);
    t.write_coalesced = write_coalesced.load(std::memory_order_relaxed);
    t.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    t.prefetch_misses = prefetch_misses.load(std::memory_order_relaxed);
    t.inflight_hwm_bytes =
        inflight_hwm_bytes.load(std::memory_order_relaxed);
    t.io_wait_sec =
        static_cast<double>(io_wait_ns.load(std::memory_order_relaxed)) / 1e9;
    return t;
  }

  std::atomic<std::int64_t> runs_written{0};
  std::atomic<std::int64_t> blocks_written{0};
  std::atomic<std::int64_t> blocks_read{0};
  std::atomic<std::int64_t> bytes_written{0};
  std::atomic<std::int64_t> bytes_read{0};
  std::atomic<std::int64_t> external_sorts{0};
  std::atomic<std::int64_t> external_merges{0};
  std::atomic<std::int64_t> merge_passes{0};
  std::atomic<std::int64_t> writes_behind{0};
  std::atomic<std::int64_t> write_coalesced{0};
  std::atomic<std::int64_t> prefetch_hits{0};
  std::atomic<std::int64_t> prefetch_misses{0};
  std::atomic<std::int64_t> inflight_hwm_bytes{0};
  std::atomic<std::int64_t> io_wait_ns{0};
};

/// Per-PE element-storage budget. The default (bytes == 0) means unlimited:
/// every sorter runs its unchanged in-memory path. A positive budget makes
/// the AMS/RLM/GV sorters spill whenever a stage's element payload exceeds
/// it: delivered pieces land directly in run blocks and base-case local
/// sorts become run-formation + external merge. The decision is per PE and
/// per stage, purely host-side — PEs never need to agree on it because both
/// paths exchange identical messages.
struct MemoryBudget {
  std::int64_t bytes = 0;             ///< 0 = unlimited (in-memory paths)
  std::int64_t block_bytes = 1 << 16; ///< spill-block size (64 KiB default)
  SpillStats* stats = nullptr;        ///< optional shared counters

  /// Optional engine-wide spill file shared by every RunStore of a run.
  /// When null each store opens its own tmpfile — one descriptor per
  /// spilling PE, which exhausts RLIMIT_NOFILE at large p; the harness
  /// therefore wires one shared BlockFile per job (see SortJobState). The
  /// file must have been created with this budget's block_bytes.
  BlockFile* shared_file = nullptr;

  /// Optional asynchronous I/O executor. When set, every RunStore built
  /// from this budget runs write-behind (sealed blocks flushed in the
  /// background through a bounded dirty queue) and read-ahead
  /// (RunCursor/StoreStream double-buffered prefetch). Null keeps the
  /// synchronous PR-9 path (PMPS_EM_IO=sync). Scheduling is host-side
  /// only: outputs and virtual times are bit-identical either way.
  IoExecutor* io = nullptr;

  bool enabled() const { return bytes > 0; }

  /// True when holding `payload_bytes` of elements would exceed the budget.
  bool should_spill(std::int64_t payload_bytes) const {
    return enabled() && payload_bytes > bytes;
  }

  /// Write-behind bound: the most un-flushed dirty-queue bytes one store
  /// may hold before appends wait for the oldest flush. Charged against
  /// the same budget figure (a quarter of it), floored at two blocks so
  /// tiny test budgets still overlap, capped so a generous budget cannot
  /// buffer the whole dataset in dirty pages.
  std::int64_t write_behind_cap() const {
    const std::int64_t floor_ = 2 * block_bytes;
    const std::int64_t cap_ = std::int64_t{8} << 20;  // 8 MiB
    const std::int64_t quarter = bytes / 4;
    return quarter < floor_ ? floor_ : (quarter > cap_ ? cap_ : quarter);
  }
};

}  // namespace pmps::em
