// RunStore: a per-PE collection of spilled runs, stored in fixed-size
// blocks of a BlockFile.
//
// A *run* is one contiguous sequence of elements — in RLM-sort's spill path
// each delivered piece (already sorted by the sender) is one run; in
// external_sort each budget-sized locally sorted chunk is one run; in
// AMS-sort's streaming classification each bucket's scattered elements are
// one run. Runs are numbered in creation order, which for the delivery sink
// is exactly the deterministic receive order of coll::sparse_exchange — the
// same order the in-memory FlatParts parts appear in, so the external merge
// sees the identical run sequence and tie-breaks identically.
//
// Each run records the file slot of every one of its logical blocks
// (per-block lengths are derived from the run length: all blocks full
// except possibly the last). Slot lists — rather than a (first_slot, count)
// pair — are what make an engine-wide *shared* BlockFile possible: with all
// PEs spilling concurrently into one file, one run's block appends
// interleave with every other store's, so its slots are not consecutive.
// The store itself stays single-owner (one PE fiber); only the BlockFile
// underneath is shared and thread-safe.
//
// A run may be appended in one call (append_run) or streamed block by block
// through a RunWriter — the scatter half of AMS streaming classification
// writes k bucket runs concurrently that way, holding k block buffers
// instead of the full partition. Streaming appends must keep blocks full
// (only a run's last block may be short), which RunWriter guarantees.
//
// Read-side block buffers are recycled through a free list (the
// net::BufferPool pattern, single-owner so lock-free here): a RunCursor or
// RunWriter acquires one block buffer for its lifetime and releases it on
// destruction, so a k-way external merge holds exactly k block buffers
// regardless of run lengths. Pooled buffers always have capacity for a full
// block of this store's element type — release_buffer drops smaller ones —
// so the warm path never regrows, even for 100-byte records.
//
// Write-behind (budget.io set — PMPS_EM_IO=async, the default): a sealed
// block's slot range is still reserved synchronously (metadata and the
// contiguity invariant are unchanged), but its bytes ride a bounded *dirty
// queue* and are flushed by the IoExecutor's background threads while the
// owning fiber keeps computing. Blocks whose slots are adjacent — and whose
// predecessor filled its slots exactly — coalesce into one gather-write
// (up to IoExecutor::kMaxIov blocks per syscall). The queue is bounded by
// MemoryBudget::write_behind_cap(); appends over the bound wait for the
// oldest flush. Every read first *settles* overlapping pending writes by
// slot range, so readers always see complete data; non-overlapping reads
// (the normal case — fresh appends get fresh slots) never wait. Dirty
// nodes, their block buffers and the executor's completion records are all
// pooled, so the warm spill path allocates nothing (tests/test_alloc.cpp).

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "em/block_file.hpp"
#include "em/io_executor.hpp"
#include "em/memory_budget.hpp"

namespace pmps::em {

template <Sortable T>
class RunStore {
 public:
  explicit RunStore(const MemoryBudget& budget) : budget_(budget) {
    if (budget.shared_file != nullptr) {
      file_ = budget.shared_file;
    } else {
      owned_file_ = std::make_unique<BlockFile>(budget.block_bytes);
      file_ = owned_file_.get();
    }
    elems_per_block_ = std::max<std::int64_t>(
        1, file_->block_bytes() / static_cast<std::int64_t>(sizeof(T)));
    write_behind_cap_ = budget_.write_behind_cap();
  }

  /// Flushes and waits out every pending write-behind op (drain()).
  ~RunStore() { drain(); }

  std::int64_t elems_per_block() const { return elems_per_block_; }
  /// True when spill I/O runs asynchronously through budget.io.
  bool async_io() const { return budget_.io != nullptr; }
  SpillStats* stats() const { return budget_.stats; }
  const MemoryBudget& budget() const { return budget_; }
  int runs() const { return static_cast<int>(runs_.size()); }

  std::int64_t run_size(int run) const {
    PMPS_ASSERT(run >= 0 && run < runs());
    return runs_[static_cast<std::size_t>(run)].n;
  }

  /// Total elements across all runs.
  std::int64_t total() const { return total_; }

  /// Starts a new empty run and returns its index. Blocks are added with
  /// append_block_to_run — several open runs may grow interleaved (the
  /// AMS scatter pass streams into one run per bucket).
  int begin_run() {
    runs_.push_back(RunMeta{});
    if (stats() != nullptr) stats()->count_run();
    return runs() - 1;
  }

  /// Appends one block of elements to run `run`. Every block but a run's
  /// last must be full (elems_per_block elements) so per-block lengths stay
  /// derivable from the run length — hence the precondition that the run's
  /// current size is block-aligned. In async mode the bytes are staged into
  /// a pooled buffer for the dirty queue; streaming writers avoid that copy
  /// via append_block_buffer_to_run.
  void append_block_to_run(int run, std::span<const T> elems) {
    if (async_io()) {
      std::vector<T> buf = acquire_buffer();
      buf.resize(elems.size());
      std::memcpy(buf.data(), elems.data(), elems.size_bytes());
      append_block_buffer_to_run(run, std::move(buf));
      return;
    }
    RunMeta& m = checked_run_for_append(run, elems.size());
    m.slots.push_back(file_->append(std::as_bytes(elems), stats()));
    m.n += static_cast<std::int64_t>(elems.size());
    total_ += static_cast<std::int64_t>(elems.size());
  }

  /// Appends one block to `run`, taking ownership of `buf` — a pooled
  /// block-sized buffer holding buf.size() elements. The write-behind fast
  /// path: the buffer itself goes on the dirty queue (no staging copy) and
  /// returns to the free list once its background flush completes. In sync
  /// mode this writes inline and releases the buffer immediately.
  void append_block_buffer_to_run(int run, std::vector<T>&& buf) {
    RunMeta& m = checked_run_for_append(run, buf.size());
    const auto len = static_cast<std::int64_t>(buf.size());
    if (!async_io()) {
      m.slots.push_back(file_->append(
          std::as_bytes(std::span<const T>(buf.data(), buf.size())), stats()));
      release_buffer(std::move(buf));
    } else {
      append_async(m, std::move(buf));
    }
    m.n += len;
    total_ += len;
  }

  /// Appends `elems` as one new run, writing it out block by block
  /// (directly from the source span — no staging copy). Empty runs are
  /// legal and occupy no blocks.
  void append_run(std::span<const T> elems) {
    const int run = begin_run();
    const auto n = static_cast<std::int64_t>(elems.size());
    for (std::int64_t off = 0; off < n; off += elems_per_block_) {
      const std::int64_t len = std::min(elems_per_block_, n - off);
      append_block_to_run(run,
                          elems.subspan(static_cast<std::size_t>(off),
                                        static_cast<std::size_t>(len)));
    }
  }

  /// Reads block `block` of run `run` into `out`, which must be sized to
  /// the block's exact length (elems_per_block, except a shorter tail).
  void read_block(int run, std::int64_t block, std::span<T> out) {
    const std::int64_t slot = block_slot_checked(run, block, out.size());
    settle_range(slot, file_->slots_for(
                           static_cast<std::int64_t>(out.size_bytes())));
    file_->read(slot, 0, std::as_writable_bytes(out), stats());
  }

  /// Submits an asynchronous read of block `block` of run `run` into `out`
  /// (async mode only; `out` as for read_block). Overlapping pending
  /// writes are settled first. Finish the ticket with await_read — the
  /// cursor/stream prefetch path.
  IoExecutor::Op* start_read_block(int run, std::int64_t block,
                                   std::span<T> out) {
    PMPS_ASSERT(async_io());
    const std::int64_t slot = block_slot_checked(run, block, out.size());
    const auto bytes = static_cast<std::int64_t>(out.size_bytes());
    settle_range(slot, file_->slots_for(bytes));
    if (stats() != nullptr) stats()->count_read(bytes);
    return budget_.io->submit_read(file_->fd(), file_->offset(slot),
                                   std::as_writable_bytes(out));
  }

  /// Completes a start_read_block ticket. `count` distinguishes a consumed
  /// prefetch (hit/miss accounting) from a discarded one (cursor teardown).
  void await_read(IoExecutor::Op* op, bool count = true) {
    if (count && stats() != nullptr) stats()->count_prefetch(
        IoExecutor::poll(op));
    const double waited = budget_.io->wait(op);
    if (waited > 0 && stats() != nullptr) stats()->count_io_wait(waited);
  }

  /// Reads elements [pos, pos + out.size()) of the store's *content* — the
  /// concatenation of all runs in run order, the spilled equivalent of
  /// indexing the in-memory partition vector. Crosses block and run
  /// boundaries as needed; the streaming-classification passes and
  /// plan_delivery_from_store read the partition through this.
  void read_range(std::int64_t pos, std::span<T> out) {
    PMPS_ASSERT(pos >= 0 &&
                pos + static_cast<std::int64_t>(out.size()) <= total_);
    if (out.empty()) return;
    rebuild_prefix();
    // First run containing pos: prefix_[r] is the content offset of run r.
    auto it = std::upper_bound(prefix_.begin(), prefix_.end(), pos);
    auto r = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    std::int64_t in_run = pos - prefix_[r];
    std::size_t done = 0;
    while (done < out.size()) {
      const RunMeta& m = runs_[r];
      if (in_run == m.n) {  // skip empty runs / advance past a consumed one
        ++r;
        in_run = 0;
        continue;
      }
      const std::int64_t block = in_run / elems_per_block_;
      const std::int64_t in_block = in_run % elems_per_block_;
      const std::int64_t block_len =
          std::min(elems_per_block_, m.n - block * elems_per_block_);
      const std::int64_t len =
          std::min(block_len - in_block,
                   static_cast<std::int64_t>(out.size() - done));
      const std::int64_t slot = m.slots[static_cast<std::size_t>(block)];
      const std::int64_t byte_off =
          in_block * static_cast<std::int64_t>(sizeof(T));
      settle_range(slot, file_->slots_for(
                             byte_off +
                             len * static_cast<std::int64_t>(sizeof(T))));
      file_->read(slot, byte_off,
                  std::as_writable_bytes(
                      out.subspan(done, static_cast<std::size_t>(len))),
                  stats());
      done += static_cast<std::size_t>(len);
      in_run += len;
    }
  }

  /// Maps content position `pos` (0 ≤ pos < total) to (run, offset in run),
  /// with the run advanced past empty predecessors — the entry point of the
  /// StoreStream sequential readers.
  std::pair<int, std::int64_t> locate(std::int64_t pos) {
    PMPS_ASSERT(pos >= 0 && pos < total_);
    rebuild_prefix();
    auto it = std::upper_bound(prefix_.begin(), prefix_.end(), pos);
    auto r = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    std::int64_t in_run = pos - prefix_[r];
    while (in_run == runs_[r].n) {  // skip empty/consumed runs
      ++r;
      in_run = 0;
    }
    return {static_cast<int>(r), in_run};
  }

  /// Reads the single element at content position `pos` (splitter-sample
  /// drawing over a spilled partition).
  T read_element(std::int64_t pos) {
    T v;
    read_range(pos, std::span<T>(&v, 1));
    return v;
  }

  /// Reads every run back, concatenated in run order — the spill-mode
  /// equivalent of FlatParts::take_flat() on the delivered parts.
  std::vector<T> take_all() {
    std::vector<T> out(static_cast<std::size_t>(total_));
    std::int64_t off = 0;
    for (int r = 0; r < runs(); ++r) {
      const std::int64_t n = run_size(r);
      for (std::int64_t b = 0; b * elems_per_block_ < n; ++b) {
        const std::int64_t len =
            std::min(elems_per_block_, n - b * elems_per_block_);
        read_block(r, b,
                   std::span<T>(out.data() + off, static_cast<std::size_t>(len)));
        off += len;
      }
    }
    PMPS_CHECK(off == total_);
    return out;
  }

  /// Hands out a block-sized read buffer from the free list (RunCursor and
  /// RunWriter hold one each for their lifetime). Always sized — and with
  /// capacity for — a full block, so users may clear() and push_back() up
  /// to elems_per_block elements without a regrow.
  std::vector<T> acquire_buffer() {
    if (free_buffers_.empty())
      return std::vector<T>(static_cast<std::size_t>(elems_per_block_));
    std::vector<T> buf = std::move(free_buffers_.back());
    free_buffers_.pop_back();
    buf.resize(static_cast<std::size_t>(elems_per_block_));
    return buf;
  }

  /// Returns a read buffer to the free list. Moved-from buffers are ignored
  /// (mirroring net::BufferPool::release), as are undersized ones — a
  /// buffer that cannot hold a full block of THIS element type would force
  /// a warm-path regrow on reuse, which matters for fat elements
  /// (Record100: a block holds ~655 records, not ~8192 keys).
  void release_buffer(std::vector<T>&& buf) {
    if (static_cast<std::int64_t>(buf.capacity()) < elems_per_block_) return;
    free_buffers_.push_back(std::move(buf));
  }

  /// Submits the open coalescing window and waits out every pending
  /// write-behind op, recycling their buffers. No-op in sync mode.
  void drain() {
    if (!async_io()) return;
    submit_open_op();
    while (dirty_head_ < dirty_.size()) wait_oldest();
  }

 private:
  struct RunMeta {
    std::vector<std::int64_t> slots;  ///< file slot of each logical block
    std::int64_t n = 0;               ///< elements in the run
  };

  /// One write-behind operation: up to kMaxIov adjacent sealed blocks and
  /// the pooled buffers that own their bytes. Nodes are pooled
  /// (dirty_free_) so the warm path allocates nothing.
  struct DirtyOp {
    IoExecutor::Op* op = nullptr;  ///< null while still open for coalescing
    std::int64_t first_slot = -1;
    std::int64_t slots = 0;  ///< reserved slots covered
    std::int64_t bytes = 0;
    std::vector<std::vector<T>> bufs;  ///< owned block buffers, write order
  };

  RunMeta& checked_run_for_append(int run, std::size_t len) {
    PMPS_ASSERT(run >= 0 && run < runs());
    PMPS_ASSERT(len > 0 &&
                static_cast<std::int64_t>(len) <= elems_per_block_);
    (void)len;
    RunMeta& m = runs_[static_cast<std::size_t>(run)];
    PMPS_ASSERT(m.n % elems_per_block_ == 0);
    return m;
  }

  std::int64_t block_slot_checked(int run, std::int64_t block,
                                  std::size_t out_len) const {
    PMPS_ASSERT(run >= 0 && run < runs());
    const RunMeta& m = runs_[static_cast<std::size_t>(run)];
    PMPS_ASSERT(block >= 0 && block * elems_per_block_ < m.n);
    PMPS_ASSERT(static_cast<std::int64_t>(out_len) ==
                std::min(elems_per_block_, m.n - block * elems_per_block_));
    (void)out_len;
    return m.slots[static_cast<std::size_t>(block)];
  }

  /// The async append path: reserve the slot range synchronously (metadata
  /// identical to sync mode), coalesce into the open op when the slots are
  /// adjacent, flush in the background, bound the queue.
  void append_async(RunMeta& m, std::vector<T>&& buf) {
    const auto bytes =
        static_cast<std::int64_t>(buf.size() * sizeof(T));
    const std::int64_t slot = file_->reserve(bytes);
    if (stats() != nullptr) stats()->count_write(bytes);  // as in sync mode
    m.slots.push_back(slot);
    retire_completed();
    const std::int64_t fb = file_->block_bytes();
    if (open_op_ != nullptr && open_op_->first_slot + open_op_->slots == slot &&
        open_op_->bytes == open_op_->slots * fb &&
        static_cast<int>(open_op_->bufs.size()) < IoExecutor::kMaxIov) {
      // Adjacent, and the window so far fills its slots exactly: this block
      // joins the same gather-write.
      open_op_->bufs.push_back(std::move(buf));
      open_op_->slots += file_->slots_for(bytes);
      open_op_->bytes += bytes;
      if (stats() != nullptr) stats()->count_coalesced();
    } else {
      submit_open_op();
      DirtyOp* d = acquire_dirty();
      d->first_slot = slot;
      d->slots = file_->slots_for(bytes);
      d->bytes = bytes;
      d->bufs.push_back(std::move(buf));
      open_op_ = d;
    }
    if (stats() != nullptr) {
      stats()->count_write_behind();
      stats()->note_inflight(inflight_bytes_ + bytes);
    }
    inflight_bytes_ += bytes;
    while (inflight_bytes_ > write_behind_cap_) {
      if (dirty_head_ == dirty_.size()) {
        if (open_op_ == nullptr) break;
        submit_open_op();
      }
      wait_oldest();
    }
  }

  DirtyOp* acquire_dirty() {
    if (!dirty_free_.empty()) {
      DirtyOp* d = dirty_free_.back();
      dirty_free_.pop_back();
      return d;
    }
    dirty_pool_.push_back(std::make_unique<DirtyOp>());  // cold path only
    return dirty_pool_.back().get();
  }

  /// Closes the coalescing window: hands its buffers' spans to the
  /// executor (which copies them into the op record) and moves the node to
  /// the submitted FIFO.
  void submit_open_op() {
    DirtyOp* d = open_op_;
    if (d == nullptr) return;
    open_op_ = nullptr;
    std::array<std::span<const std::byte>, IoExecutor::kMaxIov> iov;
    for (std::size_t i = 0; i < d->bufs.size(); ++i)
      iov[i] = std::as_bytes(
          std::span<const T>(d->bufs[i].data(), d->bufs[i].size()));
    d->op = budget_.io->submit_write(
        file_->fd(), file_->offset(d->first_slot),
        std::span<const std::span<const std::byte>>(iov.data(),
                                                    d->bufs.size()));
    dirty_.push_back(d);
  }

  /// Waits for the oldest submitted flush and recycles it (buffers back to
  /// the free list, node back to the pool).
  void wait_oldest() {
    PMPS_ASSERT(dirty_head_ < dirty_.size());
    DirtyOp* d = dirty_[dirty_head_++];
    const double waited = budget_.io->wait(d->op);
    if (waited > 0 && stats() != nullptr) stats()->count_io_wait(waited);
    recycle_dirty(d);
    if (dirty_head_ == dirty_.size()) {
      dirty_.clear();  // keeps capacity
      dirty_head_ = 0;
    }
  }

  /// Recycles finished flushes from the FIFO head without blocking — the
  /// owner-thread retire that keeps buffer reuse single-owner (only the
  /// op's `done` atomic ever crosses threads).
  void retire_completed() {
    while (dirty_head_ < dirty_.size() &&
           IoExecutor::poll(dirty_[dirty_head_]->op)) {
      DirtyOp* d = dirty_[dirty_head_++];
      budget_.io->wait(d->op);  // returns immediately; recycles the record
      recycle_dirty(d);
    }
    if (dirty_head_ == dirty_.size()) {
      dirty_.clear();
      dirty_head_ = 0;
    }
  }

  void recycle_dirty(DirtyOp* d) {
    inflight_bytes_ -= d->bytes;
    for (auto& b : d->bufs) release_buffer(std::move(b));
    d->bufs.clear();  // keeps capacity
    d->op = nullptr;
    d->first_slot = -1;
    d->slots = 0;
    d->bytes = 0;
    dirty_free_.push_back(d);
  }

  /// Makes slots [slot, slot + nslots) safe to read: submits the open
  /// window if it overlaps and waits until no pending flush overlaps.
  /// Non-overlapping reads return immediately — the common case, since
  /// fresh appends always get fresh slot ranges.
  void settle_range(std::int64_t slot, std::int64_t nslots) {
    if (!async_io()) return;
    const auto overlaps = [&](const DirtyOp* d) {
      return slot < d->first_slot + d->slots && d->first_slot < slot + nslots;
    };
    if (open_op_ != nullptr && overlaps(open_op_)) submit_open_op();
    for (;;) {
      bool pending = false;
      for (std::size_t i = dirty_head_; i < dirty_.size(); ++i) {
        if (overlaps(dirty_[i])) {
          pending = true;
          break;
        }
      }
      if (!pending) return;
      wait_oldest();
    }
  }

  void rebuild_prefix() {
    if (prefix_.size() == runs_.size() + 1) return;
    prefix_.resize(runs_.size() + 1);
    prefix_[0] = 0;
    for (std::size_t r = 0; r < runs_.size(); ++r)
      prefix_[r + 1] = prefix_[r] + runs_[r].n;
  }

  MemoryBudget budget_;
  std::unique_ptr<BlockFile> owned_file_;  ///< null in shared-file mode
  BlockFile* file_ = nullptr;
  std::int64_t elems_per_block_ = 1;
  std::vector<RunMeta> runs_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> prefix_;  ///< content offset per run (lazy)
  std::vector<std::vector<T>> free_buffers_;

  // Write-behind state (async mode only; all empty under PMPS_EM_IO=sync).
  std::vector<std::unique_ptr<DirtyOp>> dirty_pool_;  ///< owns every node
  std::vector<DirtyOp*> dirty_free_;
  std::vector<DirtyOp*> dirty_;  ///< submitted flushes, FIFO
  std::size_t dirty_head_ = 0;   ///< first un-retired entry of dirty_
  DirtyOp* open_op_ = nullptr;   ///< coalescing window, not yet submitted
  std::int64_t inflight_bytes_ = 0;  ///< bytes in open_op_ + dirty_
  std::int64_t write_behind_cap_ = 0;
};

/// Streams one run into a RunStore block by block: push/append stage into a
/// pooled block buffer that is flushed whenever full, so an open writer
/// costs one block of memory however long its run grows. finish() flushes
/// the short tail block (if any) and returns the buffer to the pool;
/// the destructor finishes automatically. Several writers may be open on
/// one store at once (one per bucket in the AMS scatter pass).
template <Sortable T>
class RunWriter {
 public:
  explicit RunWriter(RunStore<T>& store)
      : store_(&store), run_(store.begin_run()), buf_(store.acquire_buffer()) {
    buf_.clear();
  }

  ~RunWriter() { finish(); }

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  RunWriter(RunWriter&& other) noexcept
      : store_(std::exchange(other.store_, nullptr)),
        run_(other.run_),
        buf_(std::move(other.buf_)) {}
  RunWriter& operator=(RunWriter&&) = delete;

  /// Index of the run being written.
  int run() const { return run_; }

  void push(const T& v) {
    buf_.push_back(v);
    if (static_cast<std::int64_t>(buf_.size()) == store_->elems_per_block())
      flush_block();
  }

  void append(std::span<const T> elems) {
    for (const T& v : elems) push(v);
  }

  /// Flushes the tail and closes the writer (idempotent).
  void finish() {
    if (store_ == nullptr) return;
    if (!buf_.empty()) flush_block();
    store_->release_buffer(std::move(buf_));
    store_ = nullptr;
  }

 private:
  void flush_block() {
    // Hand the sealed block itself to the store (write-behind takes
    // ownership; sync mode writes inline and pools it) and start the next
    // block in a fresh pooled buffer — no staging copy on either path.
    store_->append_block_buffer_to_run(run_, std::move(buf_));
    buf_ = store_->acquire_buffer();
    buf_.clear();
  }

  RunStore<T>* store_;
  int run_;
  std::vector<T> buf_;
};

/// Sink adapter for coll::sparse_exchange_into / delivery::deliver_into:
/// lands every received piece as one run, in receive order — "delivery
/// landing incoming pieces directly into run blocks".
template <Sortable T>
auto run_sink(RunStore<T>& store) {
  return [&store](int /*src_rank*/, std::span<const T> piece) {
    store.append_run(piece);
  };
}

}  // namespace pmps::em
