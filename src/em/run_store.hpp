// RunStore: a per-PE collection of spilled runs, stored in fixed-size
// blocks of a BlockFile.
//
// A *run* is one contiguous sequence of elements appended in a single call
// — in RLM-sort's spill path each delivered piece (already sorted by the
// sender) is one run; in external_sort each budget-sized locally sorted
// chunk is one run. Runs are numbered in append order, which for the
// delivery sink is exactly the deterministic receive order of
// coll::sparse_exchange — the same order the in-memory FlatParts parts
// appear in, so the external merge sees the identical run sequence and
// tie-breaks identically.
//
// A run's blocks occupy consecutive slots of the file; per-block lengths
// are derived from the run length (all blocks full except possibly the
// last), so run metadata is just (first slot, element count).
//
// Read-side block buffers are recycled through a free list (the
// net::BufferPool pattern, single-owner so lock-free here): a RunCursor
// acquires one block buffer for its lifetime and releases it on
// destruction, so a k-way external merge holds exactly k block buffers
// regardless of run lengths.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "em/block_file.hpp"
#include "em/memory_budget.hpp"

namespace pmps::em {

template <Sortable T>
class RunStore {
 public:
  explicit RunStore(const MemoryBudget& budget)
      : stats_(budget.stats),
        elems_per_block_(std::max<std::int64_t>(
            1, budget.block_bytes / static_cast<std::int64_t>(sizeof(T)))),
        file_(elems_per_block_ * static_cast<std::int64_t>(sizeof(T)),
              budget.stats) {}

  std::int64_t elems_per_block() const { return elems_per_block_; }
  SpillStats* stats() const { return stats_; }
  int runs() const { return static_cast<int>(runs_.size()); }

  std::int64_t run_size(int run) const {
    PMPS_ASSERT(run >= 0 && run < runs());
    return runs_[static_cast<std::size_t>(run)].n;
  }

  /// Total elements across all runs.
  std::int64_t total() const { return total_; }

  /// Appends `elems` as one new run, writing it out block by block
  /// (directly from the source span — no staging copy). Empty runs are
  /// legal and occupy no blocks.
  void append_run(std::span<const T> elems) {
    const std::int64_t n = static_cast<std::int64_t>(elems.size());
    runs_.push_back(RunMeta{file_.blocks(), n});
    total_ += n;
    for (std::int64_t off = 0; off < n; off += elems_per_block_) {
      const std::int64_t len = std::min(elems_per_block_, n - off);
      file_.append(std::as_bytes(
          elems.subspan(static_cast<std::size_t>(off),
                        static_cast<std::size_t>(len))));
    }
    if (stats_ != nullptr) stats_->count_run();
  }

  /// Reads block `block` of run `run` into `out`, which must be sized to
  /// the block's exact length (elems_per_block, except a shorter tail).
  void read_block(int run, std::int64_t block, std::span<T> out) {
    PMPS_ASSERT(run >= 0 && run < runs());
    const RunMeta& m = runs_[static_cast<std::size_t>(run)];
    PMPS_ASSERT(block >= 0 && block * elems_per_block_ < m.n);
    PMPS_ASSERT(static_cast<std::int64_t>(out.size()) ==
                std::min(elems_per_block_, m.n - block * elems_per_block_));
    file_.read(m.first_slot + block, std::as_writable_bytes(out));
  }

  /// Reads every run back, concatenated in run order — the spill-mode
  /// equivalent of FlatParts::take_flat() on the delivered parts.
  std::vector<T> take_all() {
    std::vector<T> out(static_cast<std::size_t>(total_));
    std::int64_t off = 0;
    for (int r = 0; r < runs(); ++r) {
      const std::int64_t n = run_size(r);
      for (std::int64_t b = 0; b * elems_per_block_ < n; ++b) {
        const std::int64_t len =
            std::min(elems_per_block_, n - b * elems_per_block_);
        read_block(r, b,
                   std::span<T>(out.data() + off, static_cast<std::size_t>(len)));
        off += len;
      }
    }
    PMPS_CHECK(off == total_);
    return out;
  }

  /// Hands out a block-sized read buffer from the free list (RunCursor
  /// holds one for its lifetime).
  std::vector<T> acquire_buffer() {
    if (free_buffers_.empty())
      return std::vector<T>(static_cast<std::size_t>(elems_per_block_));
    std::vector<T> buf = std::move(free_buffers_.back());
    free_buffers_.pop_back();
    return buf;
  }

  /// Returns a read buffer to the free list (moved-from buffers are
  /// ignored, mirroring net::BufferPool::release).
  void release_buffer(std::vector<T>&& buf) {
    if (buf.capacity() == 0) return;
    free_buffers_.push_back(std::move(buf));
  }

 private:
  struct RunMeta {
    std::int64_t first_slot;  ///< first block slot in the file
    std::int64_t n;           ///< elements in the run
  };

  SpillStats* stats_;
  std::int64_t elems_per_block_;
  BlockFile file_;
  std::vector<RunMeta> runs_;
  std::int64_t total_ = 0;
  std::vector<std::vector<T>> free_buffers_;
};

/// Sink adapter for coll::sparse_exchange_into / delivery::deliver_into:
/// lands every received piece as one run, in receive order — "delivery
/// landing incoming pieces directly into run blocks".
template <Sortable T>
auto run_sink(RunStore<T>& store) {
  return [&store](int /*src_rank*/, std::span<const T> piece) {
    store.append_run(piece);
  };
}

}  // namespace pmps::em
