// RunStore: a per-PE collection of spilled runs, stored in fixed-size
// blocks of a BlockFile.
//
// A *run* is one contiguous sequence of elements — in RLM-sort's spill path
// each delivered piece (already sorted by the sender) is one run; in
// external_sort each budget-sized locally sorted chunk is one run; in
// AMS-sort's streaming classification each bucket's scattered elements are
// one run. Runs are numbered in creation order, which for the delivery sink
// is exactly the deterministic receive order of coll::sparse_exchange — the
// same order the in-memory FlatParts parts appear in, so the external merge
// sees the identical run sequence and tie-breaks identically.
//
// Each run records the file slot of every one of its logical blocks
// (per-block lengths are derived from the run length: all blocks full
// except possibly the last). Slot lists — rather than a (first_slot, count)
// pair — are what make an engine-wide *shared* BlockFile possible: with all
// PEs spilling concurrently into one file, one run's block appends
// interleave with every other store's, so its slots are not consecutive.
// The store itself stays single-owner (one PE fiber); only the BlockFile
// underneath is shared and thread-safe.
//
// A run may be appended in one call (append_run) or streamed block by block
// through a RunWriter — the scatter half of AMS streaming classification
// writes k bucket runs concurrently that way, holding k block buffers
// instead of the full partition. Streaming appends must keep blocks full
// (only a run's last block may be short), which RunWriter guarantees.
//
// Read-side block buffers are recycled through a free list (the
// net::BufferPool pattern, single-owner so lock-free here): a RunCursor or
// RunWriter acquires one block buffer for its lifetime and releases it on
// destruction, so a k-way external merge holds exactly k block buffers
// regardless of run lengths. Pooled buffers always have capacity for a full
// block of this store's element type — release_buffer drops smaller ones —
// so the warm path never regrows, even for 100-byte records.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "em/block_file.hpp"
#include "em/memory_budget.hpp"

namespace pmps::em {

template <Sortable T>
class RunStore {
 public:
  explicit RunStore(const MemoryBudget& budget) : budget_(budget) {
    if (budget.shared_file != nullptr) {
      file_ = budget.shared_file;
    } else {
      owned_file_ = std::make_unique<BlockFile>(budget.block_bytes);
      file_ = owned_file_.get();
    }
    elems_per_block_ = std::max<std::int64_t>(
        1, file_->block_bytes() / static_cast<std::int64_t>(sizeof(T)));
  }

  std::int64_t elems_per_block() const { return elems_per_block_; }
  SpillStats* stats() const { return budget_.stats; }
  const MemoryBudget& budget() const { return budget_; }
  int runs() const { return static_cast<int>(runs_.size()); }

  std::int64_t run_size(int run) const {
    PMPS_ASSERT(run >= 0 && run < runs());
    return runs_[static_cast<std::size_t>(run)].n;
  }

  /// Total elements across all runs.
  std::int64_t total() const { return total_; }

  /// Starts a new empty run and returns its index. Blocks are added with
  /// append_block_to_run — several open runs may grow interleaved (the
  /// AMS scatter pass streams into one run per bucket).
  int begin_run() {
    runs_.push_back(RunMeta{});
    if (stats() != nullptr) stats()->count_run();
    return runs() - 1;
  }

  /// Appends one block of elements to run `run`. Every block but a run's
  /// last must be full (elems_per_block elements) so per-block lengths stay
  /// derivable from the run length — hence the precondition that the run's
  /// current size is block-aligned.
  void append_block_to_run(int run, std::span<const T> elems) {
    PMPS_ASSERT(run >= 0 && run < runs());
    const auto len = static_cast<std::int64_t>(elems.size());
    PMPS_ASSERT(len > 0 && len <= elems_per_block_);
    RunMeta& m = runs_[static_cast<std::size_t>(run)];
    PMPS_ASSERT(m.n % elems_per_block_ == 0);
    m.slots.push_back(file_->append(std::as_bytes(elems), stats()));
    m.n += len;
    total_ += len;
  }

  /// Appends `elems` as one new run, writing it out block by block
  /// (directly from the source span — no staging copy). Empty runs are
  /// legal and occupy no blocks.
  void append_run(std::span<const T> elems) {
    const int run = begin_run();
    const auto n = static_cast<std::int64_t>(elems.size());
    for (std::int64_t off = 0; off < n; off += elems_per_block_) {
      const std::int64_t len = std::min(elems_per_block_, n - off);
      append_block_to_run(run,
                          elems.subspan(static_cast<std::size_t>(off),
                                        static_cast<std::size_t>(len)));
    }
  }

  /// Reads block `block` of run `run` into `out`, which must be sized to
  /// the block's exact length (elems_per_block, except a shorter tail).
  void read_block(int run, std::int64_t block, std::span<T> out) {
    PMPS_ASSERT(run >= 0 && run < runs());
    const RunMeta& m = runs_[static_cast<std::size_t>(run)];
    PMPS_ASSERT(block >= 0 && block * elems_per_block_ < m.n);
    PMPS_ASSERT(static_cast<std::int64_t>(out.size()) ==
                std::min(elems_per_block_, m.n - block * elems_per_block_));
    file_->read(m.slots[static_cast<std::size_t>(block)], 0,
                std::as_writable_bytes(out), stats());
  }

  /// Reads elements [pos, pos + out.size()) of the store's *content* — the
  /// concatenation of all runs in run order, the spilled equivalent of
  /// indexing the in-memory partition vector. Crosses block and run
  /// boundaries as needed; the streaming-classification passes and
  /// plan_delivery_from_store read the partition through this.
  void read_range(std::int64_t pos, std::span<T> out) {
    PMPS_ASSERT(pos >= 0 &&
                pos + static_cast<std::int64_t>(out.size()) <= total_);
    if (out.empty()) return;
    rebuild_prefix();
    // First run containing pos: prefix_[r] is the content offset of run r.
    auto it = std::upper_bound(prefix_.begin(), prefix_.end(), pos);
    auto r = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    std::int64_t in_run = pos - prefix_[r];
    std::size_t done = 0;
    while (done < out.size()) {
      const RunMeta& m = runs_[r];
      if (in_run == m.n) {  // skip empty runs / advance past a consumed one
        ++r;
        in_run = 0;
        continue;
      }
      const std::int64_t block = in_run / elems_per_block_;
      const std::int64_t in_block = in_run % elems_per_block_;
      const std::int64_t block_len =
          std::min(elems_per_block_, m.n - block * elems_per_block_);
      const std::int64_t len =
          std::min(block_len - in_block,
                   static_cast<std::int64_t>(out.size() - done));
      file_->read(m.slots[static_cast<std::size_t>(block)],
                  in_block * static_cast<std::int64_t>(sizeof(T)),
                  std::as_writable_bytes(
                      out.subspan(done, static_cast<std::size_t>(len))),
                  stats());
      done += static_cast<std::size_t>(len);
      in_run += len;
    }
  }

  /// Reads the single element at content position `pos` (splitter-sample
  /// drawing over a spilled partition).
  T read_element(std::int64_t pos) {
    T v;
    read_range(pos, std::span<T>(&v, 1));
    return v;
  }

  /// Reads every run back, concatenated in run order — the spill-mode
  /// equivalent of FlatParts::take_flat() on the delivered parts.
  std::vector<T> take_all() {
    std::vector<T> out(static_cast<std::size_t>(total_));
    std::int64_t off = 0;
    for (int r = 0; r < runs(); ++r) {
      const std::int64_t n = run_size(r);
      for (std::int64_t b = 0; b * elems_per_block_ < n; ++b) {
        const std::int64_t len =
            std::min(elems_per_block_, n - b * elems_per_block_);
        read_block(r, b,
                   std::span<T>(out.data() + off, static_cast<std::size_t>(len)));
        off += len;
      }
    }
    PMPS_CHECK(off == total_);
    return out;
  }

  /// Hands out a block-sized read buffer from the free list (RunCursor and
  /// RunWriter hold one each for their lifetime). Always sized — and with
  /// capacity for — a full block, so users may clear() and push_back() up
  /// to elems_per_block elements without a regrow.
  std::vector<T> acquire_buffer() {
    if (free_buffers_.empty())
      return std::vector<T>(static_cast<std::size_t>(elems_per_block_));
    std::vector<T> buf = std::move(free_buffers_.back());
    free_buffers_.pop_back();
    buf.resize(static_cast<std::size_t>(elems_per_block_));
    return buf;
  }

  /// Returns a read buffer to the free list. Moved-from buffers are ignored
  /// (mirroring net::BufferPool::release), as are undersized ones — a
  /// buffer that cannot hold a full block of THIS element type would force
  /// a warm-path regrow on reuse, which matters for fat elements
  /// (Record100: a block holds ~655 records, not ~8192 keys).
  void release_buffer(std::vector<T>&& buf) {
    if (static_cast<std::int64_t>(buf.capacity()) < elems_per_block_) return;
    free_buffers_.push_back(std::move(buf));
  }

 private:
  struct RunMeta {
    std::vector<std::int64_t> slots;  ///< file slot of each logical block
    std::int64_t n = 0;               ///< elements in the run
  };

  void rebuild_prefix() {
    if (prefix_.size() == runs_.size() + 1) return;
    prefix_.resize(runs_.size() + 1);
    prefix_[0] = 0;
    for (std::size_t r = 0; r < runs_.size(); ++r)
      prefix_[r + 1] = prefix_[r] + runs_[r].n;
  }

  MemoryBudget budget_;
  std::unique_ptr<BlockFile> owned_file_;  ///< null in shared-file mode
  BlockFile* file_ = nullptr;
  std::int64_t elems_per_block_ = 1;
  std::vector<RunMeta> runs_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> prefix_;  ///< content offset per run (lazy)
  std::vector<std::vector<T>> free_buffers_;
};

/// Streams one run into a RunStore block by block: push/append stage into a
/// pooled block buffer that is flushed whenever full, so an open writer
/// costs one block of memory however long its run grows. finish() flushes
/// the short tail block (if any) and returns the buffer to the pool;
/// the destructor finishes automatically. Several writers may be open on
/// one store at once (one per bucket in the AMS scatter pass).
template <Sortable T>
class RunWriter {
 public:
  explicit RunWriter(RunStore<T>& store)
      : store_(&store), run_(store.begin_run()), buf_(store.acquire_buffer()) {
    buf_.clear();
  }

  ~RunWriter() { finish(); }

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  RunWriter(RunWriter&& other) noexcept
      : store_(std::exchange(other.store_, nullptr)),
        run_(other.run_),
        buf_(std::move(other.buf_)) {}
  RunWriter& operator=(RunWriter&&) = delete;

  /// Index of the run being written.
  int run() const { return run_; }

  void push(const T& v) {
    buf_.push_back(v);
    if (static_cast<std::int64_t>(buf_.size()) == store_->elems_per_block())
      flush_block();
  }

  void append(std::span<const T> elems) {
    for (const T& v : elems) push(v);
  }

  /// Flushes the tail and closes the writer (idempotent).
  void finish() {
    if (store_ == nullptr) return;
    if (!buf_.empty()) flush_block();
    store_->release_buffer(std::move(buf_));
    store_ = nullptr;
  }

 private:
  void flush_block() {
    store_->append_block_to_run(run_,
                                std::span<const T>(buf_.data(), buf_.size()));
    buf_.clear();
  }

  RunStore<T>* store_;
  int run_;
  std::vector<T> buf_;
};

/// Sink adapter for coll::sparse_exchange_into / delivery::deliver_into:
/// lands every received piece as one run, in receive order — "delivery
/// landing incoming pieces directly into run blocks".
template <Sortable T>
auto run_sink(RunStore<T>& store) {
  return [&store](int /*src_rank*/, std::span<const T> piece) {
    store.append_run(piece);
  };
}

}  // namespace pmps::em
