// Implementation of em/io.hpp (hardened positional I/O) and the
// IoExecutor. Design: io_executor.hpp file comment and docs/EM.md.

#include "em/io_executor.hpp"

#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "em/io.hpp"
#include "net/fiber.hpp"

#if defined(PMPS_HAVE_IO_URING)
#include <liburing.h>
#endif

namespace pmps::em {

// ---------------------------------------------------------------------------
// em/io.hpp: full-transfer positional I/O with EINTR retry and test shims.

namespace {

std::atomic<std::int64_t> g_io_chunk_limit{0};
std::atomic<std::int64_t> g_io_delay_us{0};

std::size_t capped(std::size_t left) {
  const std::int64_t cap = g_io_chunk_limit.load(std::memory_order_relaxed);
  return cap > 0 ? std::min(left, static_cast<std::size_t>(cap)) : left;
}

void model_device_latency() {
  const std::int64_t us = g_io_delay_us.load(std::memory_order_relaxed);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

void set_io_chunk_limit_for_testing(std::int64_t bytes) {
  g_io_chunk_limit.store(bytes, std::memory_order_relaxed);
}

void set_io_delay_us(std::int64_t us) {
  g_io_delay_us.store(us, std::memory_order_relaxed);
}

std::int64_t io_delay_us() {
  return g_io_delay_us.load(std::memory_order_relaxed);
}

void pread_full(int fd, std::int64_t off, std::span<std::byte> out) {
  auto* p = out.data();
  auto left = out.size();
  model_device_latency();
  while (left > 0) {
    const ::ssize_t got =
        ::pread(fd, p, capped(left), static_cast<::off_t>(off));
    if (got < 0 && errno == EINTR) continue;
    PMPS_CHECK_MSG(got > 0, "spill read failed");
    p += got;
    off += got;
    left -= static_cast<std::size_t>(got);
  }
}

void pwrite_full(int fd, std::int64_t off, std::span<const std::byte> data) {
  const auto* p = data.data();
  auto left = data.size();
  model_device_latency();
  while (left > 0) {
    const ::ssize_t wrote =
        ::pwrite(fd, p, capped(left), static_cast<::off_t>(off));
    if (wrote < 0 && errno == EINTR) continue;
    PMPS_CHECK_MSG(wrote > 0, "spill write failed");
    p += wrote;
    off += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

void pwritev_full(int fd, std::int64_t off,
                  std::span<const std::span<const std::byte>> bufs) {
  const std::size_t nb = bufs.size();
  PMPS_CHECK(nb >= 1 && nb <= static_cast<std::size_t>(IoExecutor::kMaxIov));
  for (const auto& b : bufs) PMPS_CHECK(!b.empty());
  std::size_t i = 0;       // first buffer not yet fully written
  std::size_t in_buf = 0;  // bytes of bufs[i] already written
  model_device_latency();
  while (i < nb) {
    // Assemble the remaining data into one iovec batch, truncated to the
    // injected per-syscall cap (which exercises the advance logic below).
    std::array<::iovec, IoExecutor::kMaxIov> iov;
    std::int64_t cap = g_io_chunk_limit.load(std::memory_order_relaxed);
    if (cap <= 0) cap = std::numeric_limits<std::int64_t>::max();
    int cnt = 0;
    std::int64_t batched = 0;
    for (std::size_t j = i; j < nb && batched < cap; ++j) {
      const std::size_t skip = (j == i) ? in_buf : 0;
      const auto len = std::min(
          static_cast<std::int64_t>(bufs[j].size() - skip), cap - batched);
      iov[static_cast<std::size_t>(cnt)].iov_base =
          const_cast<std::byte*>(bufs[j].data() + skip);
      iov[static_cast<std::size_t>(cnt)].iov_len =
          static_cast<std::size_t>(len);
      batched += len;
      ++cnt;
    }
    const ::ssize_t wrote =
        ::pwritev(fd, iov.data(), cnt, static_cast<::off_t>(off));
    if (wrote < 0 && errno == EINTR) continue;
    PMPS_CHECK_MSG(wrote > 0, "spill write failed");
    off += wrote;
    std::int64_t w = wrote;
    while (w > 0) {  // advance (i, in_buf) past the written bytes
      const auto avail = static_cast<std::int64_t>(bufs[i].size() - in_buf);
      if (w >= avail) {
        w -= avail;
        ++i;
        in_buf = 0;
      } else {
        in_buf += static_cast<std::size_t>(w);
        w = 0;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// IoExecutor.

IoMode io_mode_from_env() {
  const char* v = std::getenv("PMPS_EM_IO");
  if (v == nullptr || *v == '\0') return IoMode::kAsync;
  const std::string_view s(v);
  if (s == "sync") return IoMode::kSync;
  if (s == "uring") return IoMode::kUring;
  return IoMode::kAsync;
}

int io_threads_from_env() {
  const char* v = std::getenv("PMPS_EM_IO_THREADS");
  if (v == nullptr || *v == '\0') return 2;
  return std::clamp(std::atoi(v), 1, 8);
}

bool io_uring_available() {
#if defined(PMPS_HAVE_IO_URING)
  return true;
#else
  return false;
#endif
}

/// One asynchronous I/O operation. Submission fields are written by the
/// owner before enqueue and read by an I/O thread after dequeue (the queue
/// mutex orders them); the completion fields hand the result back through
/// the op's own mutex, per the fiber protocol in the header comment.
struct IoExecutor::Op {
  // Submission (immutable while in flight).
  int fd = -1;
  std::int64_t off = 0;
  bool is_write = false;
  int iov_count = 0;
  std::array<std::span<const std::byte>, kMaxIov> iov;  // writes
  std::array<::iovec, kMaxIov> iovecs;  ///< stable storage for uring writev
  std::span<std::byte> read_buf;        // reads

  Op* next = nullptr;  ///< intrusive link: submission queue / free list

  // Completion handoff.
  std::mutex mu;
  std::condition_variable cv;     ///< non-fiber waiters
  std::atomic<bool> done{false};  ///< poll() reads it lock-free
  void* waiter = nullptr;         ///< parked fiber handle, consumed once
};

struct IoExecutor::Impl {
  IoMode mode = IoMode::kAsync;

  std::mutex mu;  ///< guards queue, free list, pool growth, stop
  std::condition_variable cv;
  Op* head = nullptr;
  Op* tail = nullptr;
  Op* free_list = nullptr;
  std::vector<std::unique_ptr<Op>> pool;  ///< owns every op ever created
  bool stop = false;
  std::vector<std::thread> threads;
#if defined(PMPS_HAVE_IO_URING)
  ::io_uring ring{};
  bool ring_ok = false;
#endif
};

IoExecutor::IoExecutor(int threads, IoMode mode)
    : impl_(std::make_unique<Impl>()) {
  PMPS_CHECK(threads >= 1);
  PMPS_CHECK(mode != IoMode::kSync);
  impl_->mode = IoMode::kAsync;
#if defined(PMPS_HAVE_IO_URING)
  if (mode == IoMode::kUring &&
      ::io_uring_queue_init(256, &impl_->ring, 0) == 0) {
    impl_->ring_ok = true;
    impl_->mode = IoMode::kUring;
    impl_->threads.emplace_back([this] { uring_main(); });
    return;
  }
#endif
  impl_->threads.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    impl_->threads.emplace_back([this] { thread_main(); });
}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& t : impl_->threads) t.join();
#if defined(PMPS_HAVE_IO_URING)
  if (impl_->ring_ok) ::io_uring_queue_exit(&impl_->ring);
#endif
}

IoMode IoExecutor::mode() const { return impl_->mode; }

IoExecutor::Op* IoExecutor::acquire(int fd, std::int64_t off) {
  Op* op;
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->free_list != nullptr) {
      op = impl_->free_list;
      impl_->free_list = op->next;
    } else {
      impl_->pool.push_back(std::make_unique<Op>());  // cold path only
      op = impl_->pool.back().get();
    }
  }
  op->fd = fd;
  op->off = off;
  op->next = nullptr;
  op->done.store(false, std::memory_order_relaxed);
  op->waiter = nullptr;
  return op;
}

void IoExecutor::enqueue(Op* op) {
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->tail != nullptr)
      impl_->tail->next = op;
    else
      impl_->head = op;
    impl_->tail = op;
  }
  impl_->cv.notify_one();
}

IoExecutor::Op* IoExecutor::submit_write(
    int fd, std::int64_t off,
    std::span<const std::span<const std::byte>> bufs) {
  PMPS_CHECK(!bufs.empty() && bufs.size() <= static_cast<std::size_t>(kMaxIov));
  Op* op = acquire(fd, off);
  op->is_write = true;
  op->iov_count = static_cast<int>(bufs.size());
  for (std::size_t i = 0; i < bufs.size(); ++i) op->iov[i] = bufs[i];
  op->read_buf = {};
  enqueue(op);
  return op;
}

IoExecutor::Op* IoExecutor::submit_read(int fd, std::int64_t off,
                                        std::span<std::byte> out) {
  PMPS_CHECK(!out.empty());
  Op* op = acquire(fd, off);
  op->is_write = false;
  op->iov_count = 0;
  op->read_buf = out;
  enqueue(op);
  return op;
}

bool IoExecutor::poll(const Op* op) {
  return op->done.load(std::memory_order_acquire);
}

double IoExecutor::wait(Op* op) {
  double waited = 0;
  if (!op->done.load(std::memory_order_acquire)) {
    const auto t0 = std::chrono::steady_clock::now();
    if (net::FiberPool::in_fiber()) {
      // Park through the engine's blocking protocol: register the handle
      // and prepare_block under the op mutex (the lock the completing I/O
      // thread holds when it consumes the registration), then switch out.
      std::unique_lock lock(op->mu);
      while (!op->done.load(std::memory_order_relaxed)) {
        op->waiter = net::FiberPool::current_fiber_handle();
        net::FiberPool::prepare_block();
        lock.unlock();
        net::FiberPool::block_current();
        lock.lock();
      }
    } else {
      std::unique_lock lock(op->mu);
      op->cv.wait(lock,
                  [op] { return op->done.load(std::memory_order_relaxed); });
    }
    waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  std::lock_guard lock(impl_->mu);
  op->next = impl_->free_list;
  impl_->free_list = op;
  return waited;
}

void IoExecutor::execute(Op* op) {
  if (op->is_write) {
    pwritev_full(op->fd, op->off,
                 std::span<const std::span<const std::byte>>(
                     op->iov.data(), static_cast<std::size_t>(op->iov_count)));
  } else {
    pread_full(op->fd, op->off, op->read_buf);
  }
}

void IoExecutor::complete(Op* op) {
  void* waiter;
  {
    std::lock_guard lock(op->mu);
    op->done.store(true, std::memory_order_release);
    waiter = std::exchange(op->waiter, nullptr);
  }
  op->cv.notify_all();
  if (waiter != nullptr) net::FiberPool::wake_fiber_handle(waiter);
}

void IoExecutor::thread_main() {
  for (;;) {
    Op* op;
    {
      std::unique_lock lock(impl_->mu);
      impl_->cv.wait(
          lock, [this] { return impl_->stop || impl_->head != nullptr; });
      if (impl_->head == nullptr) return;  // stop && drained
      op = impl_->head;
      impl_->head = op->next;
      if (impl_->head == nullptr) impl_->tail = nullptr;
    }
    execute(op);
    complete(op);
  }
}

#if defined(PMPS_HAVE_IO_URING)
// One thread drives the ring: it moves queued ops into sqes (iovecs staged
// in the op's stable inline array) and reaps cqes. Short or failed kernel
// transfers fall back to the hardened synchronous loops — positional I/O
// is idempotent, so re-running the whole op is safe.
void IoExecutor::uring_main() {
  int inflight = 0;
  for (;;) {
    {
      std::unique_lock lock(impl_->mu);
      if (inflight == 0) {
        impl_->cv.wait(
            lock, [this] { return impl_->stop || impl_->head != nullptr; });
        if (impl_->stop && impl_->head == nullptr) return;
      }
      while (impl_->head != nullptr) {
        ::io_uring_sqe* sqe = ::io_uring_get_sqe(&impl_->ring);
        if (sqe == nullptr) break;  // ring full: reap before submitting more
        Op* op = impl_->head;
        impl_->head = op->next;
        if (impl_->head == nullptr) impl_->tail = nullptr;
        if (op->is_write) {
          for (int i = 0; i < op->iov_count; ++i) {
            const auto& b = op->iov[static_cast<std::size_t>(i)];
            op->iovecs[static_cast<std::size_t>(i)].iov_base =
                const_cast<std::byte*>(b.data());
            op->iovecs[static_cast<std::size_t>(i)].iov_len = b.size();
          }
          ::io_uring_prep_writev(sqe, op->fd, op->iovecs.data(),
                                 static_cast<unsigned>(op->iov_count),
                                 static_cast<__u64>(op->off));
        } else {
          ::io_uring_prep_read(sqe, op->fd, op->read_buf.data(),
                               static_cast<unsigned>(op->read_buf.size()),
                               static_cast<__u64>(op->off));
        }
        ::io_uring_sqe_set_data(sqe, op);
        ++inflight;
      }
    }
    ::io_uring_submit(&impl_->ring);
    if (inflight == 0) continue;
    ::io_uring_cqe* cqe = nullptr;
    if (::io_uring_wait_cqe(&impl_->ring, &cqe) != 0) continue;
    Op* op = static_cast<Op*>(::io_uring_cqe_get_data(cqe));
    const auto res = static_cast<std::int64_t>(cqe->res);
    ::io_uring_cqe_seen(&impl_->ring, cqe);
    --inflight;
    if (op == nullptr) continue;
    std::int64_t want = 0;
    if (op->is_write) {
      for (int i = 0; i < op->iov_count; ++i)
        want +=
            static_cast<std::int64_t>(op->iov[static_cast<std::size_t>(i)]
                                          .size());
    } else {
      want = static_cast<std::int64_t>(op->read_buf.size());
    }
    if (res != want) execute(op);  // short/failed: redo synchronously
    complete(op);
  }
}
#endif  // PMPS_HAVE_IO_URING

}  // namespace pmps::em
