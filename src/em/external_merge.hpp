// External k-way merge and out-of-core local sort.
//
// merge_runs() merges every run of a RunStore in one pass with the existing
// seq::LoserTree, fed block-granular windows by RunCursor refill callbacks:
// the tree starts from each run's first block and, whenever a run's window
// is consumed, pulls the next block from its cursor — so the merge holds
// k block buffers (k = fan-in) instead of k whole runs. Stability matches
// the in-memory seq::multiway_merge exactly (ties break by run index), so
// spill-mode merges are bit-identical to their in-memory counterparts.
//
// external_sort() is classic run formation + merge (cf. the external
// merge-sort exemplars behind the sort-benchmark systems of §3/§7.3):
// budget-sized chunks are sorted with seq::local_sort and spilled as runs,
// then merged back. For unique-by-value keys (the harness's uint64
// workloads) the result is bit-identical to sorting in memory.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "em/run_cursor.hpp"
#include "em/run_store.hpp"
#include "seq/multiway_merge.hpp"
#include "seq/small_sort.hpp"

namespace pmps::em {

/// Merges all runs of `store` into one sorted vector with a loser tree over
/// block-granular run windows; O(N log k) comparisons, k block buffers of
/// working memory (plus the output).
template <Sortable T, typename Less = std::less<T>>
std::vector<T> merge_runs(RunStore<T>& store, Less less = {}) {
  const int k = store.runs();
  std::vector<T> out(static_cast<std::size_t>(store.total()));
  if (k == 0 || store.total() == 0) return out;
  if (store.stats() != nullptr) store.stats()->count_external_merge();

  std::vector<RunCursor<T>> cursors;
  cursors.reserve(static_cast<std::size_t>(k));
  std::vector<std::span<const T>> windows(static_cast<std::size_t>(k));
  std::vector<std::int64_t> totals(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    cursors.emplace_back(&store, r);
    windows[static_cast<std::size_t>(r)] =
        cursors[static_cast<std::size_t>(r)].next_window();
    totals[static_cast<std::size_t>(r)] = store.run_size(r);
  }

  seq::LoserTree<T, Less> tree(
      std::span<const std::span<const T>>(windows.data(), windows.size()),
      std::span<const std::int64_t>(totals.data(), totals.size()),
      [&cursors](int run) {
        return cursors[static_cast<std::size_t>(run)].next_window();
      },
      less);
  tree.pop_bulk(std::span<T>(out.data(), out.size()));
  PMPS_CHECK(tree.empty());
  return out;
}

/// Out-of-core replacement for seq::local_sort when `data` exceeds the
/// budget: sorts budget-sized chunks, spills each as a run, releases the
/// input, and external-merges the runs back. The caller charges the same
/// virtual-time sort cost as for the in-memory sort — spilling is
/// host-side storage only (docs/EM.md).
template <Sortable T, typename Less = std::less<T>>
void external_sort(std::vector<T>& data, const MemoryBudget& budget,
                   Less less = {}) {
  PMPS_CHECK(budget.enabled());
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  const std::int64_t run_elems = std::max<std::int64_t>(
      1, budget.bytes / static_cast<std::int64_t>(sizeof(T)));

  RunStore<T> store(budget);
  for (std::int64_t off = 0; off < n; off += run_elems) {
    const std::int64_t len = std::min(run_elems, n - off);
    std::span<T> chunk(data.data() + off, static_cast<std::size_t>(len));
    seq::local_sort(chunk, less);
    store.append_run(chunk);
  }
  std::vector<T>().swap(data);  // release before the merge materialises out
  if (budget.stats != nullptr) budget.stats->count_external_sort();
  data = merge_runs(store, less);
}

/// The sorters' base-case local sort: external_sort when `data` exceeds
/// the budget, seq::local_sort otherwise. Virtual-time charges are the
/// caller's and identical either way (spilling is host-side only).
template <Sortable T, typename Less = std::less<T>>
void local_sort_or_spill(std::vector<T>& data, const MemoryBudget& budget,
                         Less less = {}) {
  if (budget.should_spill(static_cast<std::int64_t>(data.size()) *
                          static_cast<std::int64_t>(sizeof(T)))) {
    external_sort(data, budget, less);
  } else {
    seq::local_sort(std::span<T>(data.data(), data.size()), less);
  }
}

}  // namespace pmps::em
