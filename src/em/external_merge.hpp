// External k-way merge (multi-pass, fan-in bounded) and out-of-core local
// sort.
//
// merge_runs() merges every run of a RunStore with the existing
// seq::LoserTree, fed block-granular windows by RunCursor refill callbacks:
// a tree starts from each run's first block and, whenever a run's window is
// consumed, pulls the next block from its cursor — so a merge of fan-in f
// holds f block buffers instead of f whole runs.
//
// The fan-in is bounded by the memory budget: f = max(2, budget.bytes /
// block_bytes), i.e. as many block buffers as fit the budget. When a store
// holds more runs than that, merge_runs runs extra *passes* first: each
// pass merges consecutive groups of ≤ f runs into new runs spilled back to
// the same store (read and written one block at a time), until ≤ f runs
// remain for the final pass into memory. Grouping consecutive runs and
// breaking ties by position preserves exactly the stable order of the
// single-pass merge — ties still resolve to the run that appeared first in
// creation order — so multi-pass merges are bit-identical to single-pass
// ones, which in turn match the in-memory seq::multiway_merge. Passes are
// counted in SpillStats::merge_passes.
//
// external_sort() is classic run formation + merge (cf. the external
// merge-sort exemplars behind the sort-benchmark systems of §3/§7.3):
// budget-sized chunks are sorted with seq::local_sort and spilled as runs,
// then merged back. external_sort_store() is the same algorithm when the
// input already lives in a RunStore (AMS base case under streaming
// classification) — it reads chunks at the identical boundaries, so both
// produce bit-identical output for the same content. For unique-by-value
// keys (the harness's uint64 workloads) the result is bit-identical to
// sorting in memory.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "em/run_cursor.hpp"
#include "em/run_store.hpp"
#include "seq/multiway_merge.hpp"
#include "seq/small_sort.hpp"

namespace pmps::em {

namespace detail {

/// Builds a loser tree over the given runs of `store` (tie-breaking by
/// position in `group`, i.e. run-creation order for consecutive groups) and
/// hands it to `fn` to drain. The tree must be empty when `fn` returns.
template <Sortable T, typename Less, typename Fn>
void with_group_tree(RunStore<T>& store, std::span<const int> group, Less less,
                     Fn&& fn) {
  const auto k = group.size();
  std::vector<RunCursor<T>> cursors;
  cursors.reserve(k);
  std::vector<std::span<const T>> windows(k);
  std::vector<std::int64_t> totals(k);
  for (std::size_t i = 0; i < k; ++i) {
    cursors.emplace_back(&store, group[i]);
    windows[i] = cursors[i].next_window();
    totals[i] = store.run_size(group[i]);
  }
  seq::LoserTree<T, Less> tree(
      std::span<const std::span<const T>>(windows.data(), windows.size()),
      std::span<const std::int64_t>(totals.data(), totals.size()),
      [&cursors](int run) {
        return cursors[static_cast<std::size_t>(run)].next_window();
      },
      less);
  fn(tree);
  PMPS_CHECK(tree.empty());
}

/// Merges the runs of `group` into a new run of the same store, streaming
/// one block at a time (group-size + 2 block buffers of working memory).
/// Returns the new run's index.
template <Sortable T, typename Less>
int merge_group_to_run(RunStore<T>& store, std::span<const int> group,
                       Less less) {
  std::int64_t left = 0;
  for (int r : group) left += store.run_size(r);
  const int run = store.begin_run();
  std::vector<T> stage = store.acquire_buffer();
  with_group_tree(store, group, less, [&](auto& tree) {
    std::int64_t pending = left;
    while (pending > 0) {
      const std::int64_t len = std::min(store.elems_per_block(), pending);
      stage.resize(static_cast<std::size_t>(len));
      tree.pop_bulk(std::span<T>(stage.data(), stage.size()));
      // Hand the sealed block to the store (write-behind flushes it in the
      // background) and stage the next one in a fresh pooled buffer.
      store.append_block_buffer_to_run(run, std::move(stage));
      stage = store.acquire_buffer();
      pending -= len;
    }
  });
  store.release_buffer(std::move(stage));
  return run;
}

}  // namespace detail

/// Merges all runs of `store` into one sorted vector. Fan-in per pass is
/// bounded by the store's budget (see the header comment); with a generous
/// budget this is the familiar single-pass loser-tree merge. O(N log k)
/// comparisons total, fan-in block buffers of working memory (plus the
/// output).
template <Sortable T, typename Less = std::less<T>>
std::vector<T> merge_runs(RunStore<T>& store, Less less = {}) {
  std::vector<T> out(static_cast<std::size_t>(store.total()));
  if (store.runs() == 0 || store.total() == 0) return out;
  if (store.stats() != nullptr) store.stats()->count_external_merge();

  const MemoryBudget& budget = store.budget();
  const std::int64_t fanin =
      budget.enabled()
          ? std::max<std::int64_t>(2, budget.bytes / budget.block_bytes)
          : std::numeric_limits<std::int64_t>::max();

  std::vector<int> active(static_cast<std::size_t>(store.runs()));
  std::iota(active.begin(), active.end(), 0);
  while (static_cast<std::int64_t>(active.size()) > fanin) {
    if (store.stats() != nullptr) store.stats()->count_merge_pass();
    std::vector<int> next;
    for (std::size_t g = 0; g < active.size();
         g += static_cast<std::size_t>(fanin)) {
      const auto group = std::span<const int>(active).subspan(
          g, std::min(static_cast<std::size_t>(fanin), active.size() - g));
      // A leftover single run passes through untouched — no I/O, and its
      // earlier creation index keeps the tie-break order intact.
      next.push_back(group.size() == 1
                         ? group[0]
                         : detail::merge_group_to_run(store, group, less));
    }
    active = std::move(next);
  }
  detail::with_group_tree(store, std::span<const int>(active), less,
                          [&](auto& tree) {
                            tree.pop_bulk(std::span<T>(out.data(), out.size()));
                          });
  return out;
}

/// Out-of-core replacement for seq::local_sort when `data` exceeds the
/// budget: sorts budget-sized chunks, spills each as a run, releases the
/// input, and external-merges the runs back. The caller charges the same
/// virtual-time sort cost as for the in-memory sort — spilling is
/// host-side storage only (docs/EM.md).
template <Sortable T, typename Less = std::less<T>>
void external_sort(std::vector<T>& data, const MemoryBudget& budget,
                   Less less = {}) {
  PMPS_CHECK(budget.enabled());
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  const std::int64_t run_elems = std::max<std::int64_t>(
      1, budget.bytes / static_cast<std::int64_t>(sizeof(T)));

  RunStore<T> store(budget);
  for (std::int64_t off = 0; off < n; off += run_elems) {
    const std::int64_t len = std::min(run_elems, n - off);
    std::span<T> chunk(data.data() + off, static_cast<std::size_t>(len));
    seq::local_sort(chunk, less);
    store.append_run(chunk);
  }
  std::vector<T>().swap(data);  // release before the merge materialises out
  if (budget.stats != nullptr) budget.stats->count_external_sort();
  data = merge_runs(store, less);
}

/// external_sort for data that already lives in a RunStore (the AMS base
/// case after streaming classification): reads budget-sized chunks of the
/// store's content at the same boundaries external_sort would use, sorts
/// and re-spills each as a run, and merges. Bit-identical to
/// `data = take_all(); external_sort(data, ...)` without ever holding more
/// than one chunk of `in` in memory.
template <Sortable T, typename Less = std::less<T>>
std::vector<T> external_sort_store(RunStore<T>& in, const MemoryBudget& budget,
                                   Less less = {}) {
  PMPS_CHECK(budget.enabled());
  const std::int64_t n = in.total();
  const std::int64_t run_elems = std::max<std::int64_t>(
      1, budget.bytes / static_cast<std::int64_t>(sizeof(T)));

  RunStore<T> sorted(budget);
  StoreStream<T> stream(in);  // sequential chunk reads, prefetched in async mode
  std::vector<T> chunk;
  for (std::int64_t off = 0; off < n; off += run_elems) {
    const std::int64_t len = std::min(run_elems, n - off);
    chunk.resize(static_cast<std::size_t>(len));
    stream.read(std::span<T>(chunk.data(), chunk.size()));
    seq::local_sort(std::span<T>(chunk.data(), chunk.size()), less);
    sorted.append_run(std::span<const T>(chunk.data(), chunk.size()));
  }
  std::vector<T>().swap(chunk);
  if (budget.stats != nullptr) budget.stats->count_external_sort();
  return merge_runs(sorted, less);
}

/// The sorters' base-case local sort: external_sort when `data` exceeds
/// the budget, seq::local_sort otherwise. Virtual-time charges are the
/// caller's and identical either way (spilling is host-side only).
template <Sortable T, typename Less = std::less<T>>
void local_sort_or_spill(std::vector<T>& data, const MemoryBudget& budget,
                         Less less = {}) {
  if (budget.should_spill(static_cast<std::int64_t>(data.size()) *
                          static_cast<std::int64_t>(sizeof(T)))) {
    external_sort(data, budget, less);
  } else {
    seq::local_sort(std::span<T>(data.data(), data.size()), less);
  }
}

}  // namespace pmps::em
