// BlockFile: fixed-size-block temporary storage for spilled runs.
//
// One BlockFile per RunStore (i.e. per PE and spill site). Storage is an
// anonymous temporary file (std::tmpfile — unlinked on creation, reclaimed
// by the OS even on abnormal exit), addressed in fixed-size block slots:
// slot k lives at byte offset k·block_bytes. A partial block (the tail of a
// run) still occupies a full slot; only its actual bytes are written and
// read, and the owner (RunStore) knows every block's true length from the
// run metadata, so no per-block size header is stored.
//
// The file is created lazily on the first append, so a RunStore that never
// spills costs no file descriptor. All I/O is counted in the attached
// SpillStats (bytes and block operations) — that accounting is what
// bench/em_scale.cpp reports as bytes spilled vs. memory budget.
//
// Descriptor budget: stores are phase-scoped, but the engine is
// bulk-synchronous, so up to p spilling PEs hold a file at once; creation
// aborts with a clear message when the fd limit is hit. Budgeted sorts at
// p beyond RLIMIT_NOFILE need a raised limit or the shared-spill-file
// extension noted in docs/EM.md (future work).
//
// Access is single-owner: a PE's fiber is the only caller (fibers migrate
// across worker threads but run one at a time), so no locking is needed —
// unlike net::BufferPool, which is shared by all PEs of an engine.

#pragma once

#include <cstdint>
#include <cstdio>
#include <span>

#include "common/check.hpp"
#include "em/memory_budget.hpp"

namespace pmps::em {

class BlockFile {
 public:
  explicit BlockFile(std::int64_t block_bytes, SpillStats* stats = nullptr)
      : block_bytes_(block_bytes), stats_(stats) {
    PMPS_CHECK(block_bytes_ > 0);
  }

  ~BlockFile() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  std::int64_t block_bytes() const { return block_bytes_; }

  /// Number of block slots appended so far.
  std::int64_t blocks() const { return next_slot_; }

  /// Writes `data` (≤ block_bytes) into the next slot; returns its index.
  std::int64_t append(std::span<const std::byte> data) {
    PMPS_CHECK(static_cast<std::int64_t>(data.size()) <= block_bytes_);
    if (file_ == nullptr) {
      file_ = std::tmpfile();
      PMPS_CHECK_MSG(file_ != nullptr, "cannot create spill file");
    }
    const std::int64_t slot = next_slot_++;
    seek(slot);
    if (!data.empty()) {
      const std::size_t wrote =
          std::fwrite(data.data(), 1, data.size(), file_);
      PMPS_CHECK_MSG(wrote == data.size(), "spill write failed");
    }
    if (stats_ != nullptr)
      stats_->count_write(static_cast<std::int64_t>(data.size()));
    return slot;
  }

  /// Reads back the first `out.size()` bytes of slot `slot` (the caller
  /// knows the block's true length from its run metadata).
  void read(std::int64_t slot, std::span<std::byte> out) {
    PMPS_CHECK(slot >= 0 && slot < next_slot_);
    PMPS_CHECK(static_cast<std::int64_t>(out.size()) <= block_bytes_);
    if (out.empty()) return;
    seek(slot);
    const std::size_t got = std::fread(out.data(), 1, out.size(), file_);
    PMPS_CHECK_MSG(got == out.size(), "spill read failed");
    if (stats_ != nullptr)
      stats_->count_read(static_cast<std::int64_t>(out.size()));
  }

 private:
  void seek(std::int64_t slot) {
    const std::int64_t off = slot * block_bytes_;
    // std::fseek takes long, 64-bit on LP64 but 32-bit elsewhere
    // (LLP64/32-bit builds): refuse offsets the platform cannot address
    // rather than silently truncating into another block's slot.
    PMPS_CHECK_MSG(static_cast<std::int64_t>(static_cast<long>(off)) == off,
                   "spill file offset overflows long on this platform");
    PMPS_CHECK(std::fseek(file_, static_cast<long>(off), SEEK_SET) == 0);
  }

  std::int64_t block_bytes_;
  SpillStats* stats_;
  std::FILE* file_ = nullptr;  ///< lazily created; anonymous (pre-unlinked)
  std::int64_t next_slot_ = 0;
};

}  // namespace pmps::em
