// BlockFile: fixed-size-block temporary storage for spilled runs.
//
// Storage is an anonymous temporary file (std::tmpfile — unlinked on
// creation, reclaimed by the OS even on abnormal exit) addressed in
// fixed-size block *slots*: slot k starts at byte offset k·block_bytes.
// The file is created lazily on the first append, so a BlockFile that is
// never written costs no file descriptor.
//
// Sharing: one BlockFile may back every RunStore of an engine run
// (em::MemoryBudget::shared_file) so that a budgeted sort at p PEs holds
// ONE descriptor instead of p — the bulk-synchronous engine has all PEs in
// the spilling phase at once, and per-PE tmpfiles die at p beyond
// RLIMIT_NOFILE. The class is therefore thread-safe: slot *ranges* are
// allocated with one atomic fetch-add (append reserves all slots of a
// write up front, so a write's bytes are always contiguous even when PE
// fibers on different worker threads interleave their appends), lazy file
// creation takes a mutex once, and all I/O is positional (pread/pwrite) —
// no shared file cursor, no locking on the data path.
//
// Fat elements: a single append may exceed block_bytes (a 100-byte
// Record100 with a smaller block size). append() then reserves
// ceil(size / block_bytes) consecutive slots; read() may likewise start at
// a byte offset inside a slot and run past its end — legal exactly because
// every append's slots are contiguous. The owner (RunStore) knows every
// block's true length from its run metadata, so no per-block size header
// is stored.
//
// I/O is counted into the SpillStats passed per call (stores sharing a
// file can keep separate counters) — that accounting is what
// bench/em_scale.cpp and bench/minute_sort.cpp report as bytes spilled.

#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>

#include "common/check.hpp"
#include "em/io.hpp"
#include "em/memory_budget.hpp"

namespace pmps::em {

class BlockFile {
 public:
  explicit BlockFile(std::int64_t block_bytes) : block_bytes_(block_bytes) {
    PMPS_CHECK(block_bytes_ > 0);
  }

  ~BlockFile() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  std::int64_t block_bytes() const { return block_bytes_; }

  /// Number of block slots reserved so far.
  std::int64_t blocks() const {
    return next_slot_.load(std::memory_order_relaxed);
  }

  /// Slots one append of `bytes` reserves: ceil(bytes / block_bytes), at
  /// least 1 (the fat-element case — see the header comment).
  std::int64_t slots_for(std::int64_t bytes) const {
    PMPS_CHECK(bytes >= 0);
    return bytes <= block_bytes_ ? 1
                                 : (bytes + block_bytes_ - 1) / block_bytes_;
  }

  /// Writes `data` into freshly reserved consecutive slots and returns the
  /// first slot's index. Thread-safe; `data` may exceed block_bytes.
  std::int64_t append(std::span<const std::byte> data,
                      SpillStats* stats = nullptr) {
    const auto size = static_cast<std::int64_t>(data.size());
    const std::int64_t first =
        next_slot_.fetch_add(slots_for(size), std::memory_order_relaxed);
    if (!data.empty()) {
      ensure_open();
      write_at(first * block_bytes_, data);
    }
    if (stats != nullptr) stats->count_write(size);
    return first;
  }

  /// Reserves ⌈bytes/block_bytes⌉ consecutive slots *without* writing them
  /// and returns the first slot — the write-behind path: the owner flushes
  /// the bytes asynchronously through an IoExecutor while the slot range is
  /// already fixed in the run metadata. Ensures the file exists so fd() is
  /// valid for the background write. Thread-safe.
  std::int64_t reserve(std::int64_t bytes) {
    const std::int64_t first =
        next_slot_.fetch_add(slots_for(bytes), std::memory_order_relaxed);
    ensure_open();
    return first;
  }

  /// The backing descriptor, for positional I/O submitted to an
  /// IoExecutor. Valid after any append() or reserve().
  int fd() const {
    const int fd = fd_.load(std::memory_order_acquire);
    PMPS_CHECK_MSG(fd >= 0, "spill file never created");
    return fd;
  }

  /// Byte offset of slot `slot`.
  std::int64_t offset(std::int64_t slot) const { return slot * block_bytes_; }

  /// Reads `out.size()` bytes starting `byte_off` bytes into slot `slot`.
  /// The range may run past the slot's end when it was written by one
  /// multi-slot append (contiguity is guaranteed per append, not globally).
  void read(std::int64_t slot, std::int64_t byte_off, std::span<std::byte> out,
            SpillStats* stats = nullptr) {
    PMPS_CHECK(slot >= 0 && slot < blocks() && byte_off >= 0);
    if (out.empty()) return;
    read_at(slot * block_bytes_ + byte_off, out);
    if (stats != nullptr)
      stats->count_read(static_cast<std::int64_t>(out.size()));
  }

 private:
  void ensure_open() {
    if (fd_.load(std::memory_order_acquire) >= 0) return;
    std::lock_guard lock(open_mu_);
    if (fd_.load(std::memory_order_relaxed) >= 0) return;
    file_ = std::tmpfile();
    PMPS_CHECK_MSG(file_ != nullptr, "cannot create spill file");
    fd_.store(::fileno(file_), std::memory_order_release);
  }

  // Short transfers and EINTR are handled by the em/io.hpp full-transfer
  // loops (shared with the IoExecutor's background threads).
  void write_at(std::int64_t off, std::span<const std::byte> data) {
    pwrite_full(fd_.load(std::memory_order_acquire), off, data);
  }

  void read_at(std::int64_t off, std::span<std::byte> out) {
    const int fd = fd_.load(std::memory_order_acquire);
    PMPS_CHECK_MSG(fd >= 0, "spill read from a file never written");
    pread_full(fd, off, out);
  }

  std::int64_t block_bytes_;
  std::mutex open_mu_;            ///< guards lazy creation only
  std::FILE* file_ = nullptr;     ///< anonymous (pre-unlinked); owns the fd
  std::atomic<int> fd_{-1};
  std::atomic<std::int64_t> next_slot_{0};
};

}  // namespace pmps::em
