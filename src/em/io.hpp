// Low-level positional file I/O for the spill path.
//
// Full-transfer wrappers over pread/pwrite/pwritev: they loop on short
// transfers (a single syscall is never assumed to move all bytes) and
// retry EINTR, aborting only on real errors or EOF-inside-a-read. Both the
// synchronous BlockFile path and the IoExecutor's background threads go
// through these, so the hardening is in exactly one place.
//
// Two host-side test/model knobs (process-global, atomics):
//  - an injected per-syscall transfer cap, so unit tests can force the
//    short-transfer loops to run without a device that actually shears
//    writes (tests/test_io_executor.cpp);
//  - a modelled per-access latency, used by the bench ablation to stand in
//    for a storage device with real access cost on page-cache-backed temp
//    files (bench/em_scale.cpp overlap rows). Neither affects *what* is
//    read or written — virtual time and output are untouched.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pmps::em {

/// Reads exactly out.size() bytes at byte offset `off`. Aborts on error or
/// premature EOF.
void pread_full(int fd, std::int64_t off, std::span<std::byte> out);

/// Writes exactly data.size() bytes at byte offset `off`.
void pwrite_full(int fd, std::int64_t off, std::span<const std::byte> data);

/// Gather-write: writes the concatenation of `bufs` (none empty, at most
/// IoExecutor::kMaxIov of them) contiguously starting at `off` — the
/// coalesced dirty-queue flush, one syscall for several adjacent blocks.
void pwritev_full(int fd, std::int64_t off,
                  std::span<const std::span<const std::byte>> bufs);

/// Test shim: while > 0, every raw pread/pwrite(v) syscall transfers at
/// most this many bytes, exercising the short-transfer loops. 0 disables.
void set_io_chunk_limit_for_testing(std::int64_t bytes);

/// Modelled device access latency: every pread_full/pwrite(v)_full call
/// sleeps this long once before its first syscall. Host-side only; 0 (the
/// default) disables. The overlap ablation sets it for both I/O modes.
void set_io_delay_us(std::int64_t us);
std::int64_t io_delay_us();

}  // namespace pmps::em
