// Bounded FIFO admission queue of the sort service. Deliberately *not*
// internally synchronised: SortService owns it and guards every access
// with its service mutex, which also covers the in-flight accounting the
// admission decisions read — a queue-local lock would just be a second
// lock on the same path.

#pragma once

#include <cstddef>
#include <deque>
#include <memory>

#include "common/check.hpp"
#include "svc/job.hpp"

namespace pmps::svc {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {
    PMPS_CHECK(capacity >= 1);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= capacity_; }

  void push(std::shared_ptr<detail::JobContext> job) {
    PMPS_CHECK_MSG(!full(), "JobQueue overflow");
    q_.push_back(std::move(job));
  }

  std::shared_ptr<detail::JobContext> pop() {
    PMPS_CHECK_MSG(!empty(), "JobQueue underflow");
    auto job = std::move(q_.front());
    q_.pop_front();
    return job;
  }

 private:
  std::size_t capacity_;
  std::deque<std::shared_ptr<detail::JobContext>> q_;
};

}  // namespace pmps::svc
