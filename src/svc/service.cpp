#include "svc/service.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "net/fiber.hpp"

namespace pmps::svc {

std::uint64_t JobHandle::id() const {
  PMPS_CHECK(job_ != nullptr);
  return job_->id;
}

JobState JobHandle::state() const {
  PMPS_CHECK(job_ != nullptr);
  std::lock_guard lock(job_->mu);
  return job_->state;
}

void JobHandle::abort() {
  if (!job_) return;
  std::lock_guard lock(job_->mu);
  if (job_state_terminal(job_->state)) return;
  job_->abort_requested = true;
  if (job_->state == JobState::kRunning && job_->engine) {
    // Poisons only this job's mailboxes and rendezvous board; its fibers
    // unwind on RunAborted and the dispatcher finalizes it as kCancelled.
    job_->engine->abort_run("job " + std::to_string(job_->id) + " aborted");
  }
}

JobResult JobHandle::wait() {
  PMPS_CHECK(job_ != nullptr);
  std::unique_lock lock(job_->mu);
  job_->cv.wait(lock, [&] { return job_state_terminal(job_->state); });
  return JobResult{job_->state, job_->error, job_->report};
}

SortService::SortService(ServiceOptions opt)
    : opt_(opt),
      backend_(net::resolve_engine_backend(opt.backend)),
      queue_(static_cast<std::size_t>(std::max(1, opt.queue_capacity))) {
  PMPS_CHECK(opt_.max_in_flight >= 1);
  const int workers = opt_.workers > 0
                          ? opt_.workers
                          : net::engine_fiber_workers(
                                std::numeric_limits<int>::max());
  // Same substrate geometry a standalone engine of p ≥ workers would pick:
  // one mailbox shard per fiber worker, a single shard on threads.
  const int shards = backend_ == net::EngineBackend::kFibers ? workers : 1;
  substrate_ = std::make_shared<net::EngineSubstrate>(shards);
  if (backend_ == net::EngineBackend::kFibers) {
    // Eager pool creation: job engines find it via substrate()->pool(), and
    // the spin-up cost is paid once here instead of inside the first job.
    substrate_->ensure_pool(workers, net::engine_fiber_stack_bytes());
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

SortService::~SortService() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  dispatcher_.join();
}

JobHandle SortService::submit(JobSpec spec) {
  auto job = std::make_shared<detail::JobContext>();
  job->spec = std::move(spec);
  PMPS_CHECK(job->spec.num_pes >= 1);
  PMPS_CHECK(job->spec.program != nullptr);
  std::unique_lock lock(mu_);
  space_cv_.wait(lock, [&] { return stop_ || !queue_.full(); });
  PMPS_CHECK_MSG(!stop_, "submit on a stopping SortService");
  job->id = ++next_job_id_;
  queue_.push(job);
  ++stats_.submitted;
  cv_.notify_all();
  return JobHandle(job);
}

std::optional<JobHandle> SortService::try_submit(JobSpec spec) {
  auto job = std::make_shared<detail::JobContext>();
  job->spec = std::move(spec);
  PMPS_CHECK(job->spec.num_pes >= 1);
  PMPS_CHECK(job->spec.program != nullptr);
  std::lock_guard lock(mu_);
  PMPS_CHECK_MSG(!stop_, "try_submit on a stopping SortService");
  if (queue_.full()) return std::nullopt;
  job->id = ++next_job_id_;
  queue_.push(job);
  ++stats_.submitted;
  cv_.notify_all();
  return JobHandle(job);
}

void SortService::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] {
    return stats_.completed + stats_.failed + stats_.cancelled ==
           stats_.submitted;
  });
}

void SortService::pause_admission() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void SortService::resume_admission() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

ServiceStats SortService::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

em::IoExecutor* SortService::io_executor() {
  std::call_once(io_once_, [this] {
    em::IoMode mode = em::io_mode_from_env();
    if (mode == em::IoMode::kSync) mode = em::IoMode::kAsync;
    io_ = std::make_unique<em::IoExecutor>(em::io_threads_from_env(), mode);
  });
  return io_.get();
}

void SortService::dispatcher_main() {
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || !done_.empty() ||
             (!paused_ && !queue_.empty() &&
              in_flight_ < opt_.max_in_flight);
    });

    // 1. Finalize everything that completed since the last wake. Done
    //    outside mu_ (finalize takes job->mu; never hold both).
    while (!done_.empty()) {
      auto job = std::move(done_.back());
      done_.pop_back();
      --in_flight_;
      lock.unlock();
      finalize(job);
      lock.lock();
    }

    if (stop_) {
      while (!queue_.empty()) {
        auto job = queue_.pop();
        lock.unlock();
        cancel_unadmitted(job, "service shutdown");
        lock.lock();
      }
      if (in_flight_ == 0 && done_.empty()) return;
      continue;  // in-flight jobs still draining
    }

    // 2. Batched admission: at this completion boundary, admit every
    //    queued job that fits under the in-flight ceiling in one step.
    std::vector<std::shared_ptr<detail::JobContext>> batch;
    while (!paused_ && !queue_.empty() &&
           in_flight_ < opt_.max_in_flight) {
      batch.push_back(queue_.pop());
      ++in_flight_;
    }
    if (!batch.empty()) {
      ++stats_.admission_batches;
      stats_.peak_in_flight =
          std::max(stats_.peak_in_flight,
                   static_cast<std::int64_t>(in_flight_));
      space_cv_.notify_all();  // queue slots freed
      lock.unlock();
      int not_started = 0;
      for (auto& job : batch)
        if (!admit(job)) ++not_started;
      lock.lock();
      in_flight_ -= not_started;
    }
  }
}

bool SortService::admit(const std::shared_ptr<detail::JobContext>& job) {
  // job->mu is held across start_run: on the fiber path launch returns
  // immediately; on the synchronous fallback the whole run executes here,
  // which serialises jobs but keeps every visible guarantee.
  std::unique_lock lock(job->mu);
  if (job->abort_requested) {
    // Stats before state, as in finalize(): once result() returns, stats()
    // must already count this job.
    lock.unlock();
    {
      std::lock_guard slock(mu_);
      bump_terminal_stat_locked(JobState::kCancelled);
    }
    lock.lock();
    job->state = JobState::kCancelled;
    job->error = "aborted before admission";
    job->cv.notify_all();
    lock.unlock();
    idle_cv_.notify_all();
    return false;
  }
  job->engine = std::make_unique<net::Engine>(
      job->spec.num_pes, job->spec.machine, job->spec.seed, backend_,
      substrate_, job->id);
  job->state = JobState::kRunning;
  auto self = job;  // keeps the context alive until the completion hook ran
  job->engine->start_run(job->spec.program, [this, self] {
    // Runs on the worker thread that finished the job's last fiber (or on
    // this thread, on the synchronous fallback). Only hands the job to the
    // dispatcher — finalisation needs job->mu, which a fallback run still
    // holds here.
    std::lock_guard slock(mu_);
    done_.push_back(self);
    cv_.notify_all();
  });
  return true;
}

void SortService::finalize(const std::shared_ptr<detail::JobContext>& job) {
  // Reap the run first, holding job->mu only (never nested with mu_).
  std::optional<std::string> err;
  JobState final_state;
  net::RunReport report;
  {
    std::lock_guard lock(job->mu);
    err = job->engine->finish_run();
    report = job->engine->report();
    final_state = err ? (job->abort_requested ? JobState::kCancelled
                                              : JobState::kFailed)
                      : JobState::kDone;
    job->engine.reset();  // frees the per-job PeContexts; substrate stays
  }
  // Bump service stats BEFORE publishing the terminal state: a caller that
  // collected every JobHandle::result() must see stats() already counting
  // all of them (asserted by test_service's mixed-grid test).
  {
    std::lock_guard slock(mu_);
    bump_terminal_stat_locked(final_state);
  }
  {
    std::lock_guard lock(job->mu);
    if (err) job->error = *err;
    job->report = report;
    job->state = final_state;
    job->cv.notify_all();
  }
  idle_cv_.notify_all();
}

void SortService::cancel_unadmitted(
    const std::shared_ptr<detail::JobContext>& job, const char* why) {
  {
    std::lock_guard slock(mu_);
    bump_terminal_stat_locked(JobState::kCancelled);
  }
  {
    std::lock_guard lock(job->mu);
    job->state = JobState::kCancelled;
    job->error = why;
    job->cv.notify_all();
  }
  idle_cv_.notify_all();
}

void SortService::bump_terminal_stat_locked(JobState s) {
  switch (s) {
    case JobState::kDone: ++stats_.completed; break;
    case JobState::kFailed: ++stats_.failed; break;
    case JobState::kCancelled: ++stats_.cancelled; break;
    default: PMPS_CHECK_MSG(false, "non-terminal state in finalize"); break;
  }
}

}  // namespace pmps::svc
