// SortService: the persistent multi-job engine behind sort-as-a-service.
//
// The paper frames massively parallel sorting as a building block invoked
// many times inside larger applications (§1), and the MinuteSort regime of
// §7.3 is explicitly a sustained-service metric. A one-shot Engine models
// neither: every invocation pays worker-thread spin-up, stack-pool
// warm-up and pool population, and runs strictly serially. SortService
// keeps one EngineSubstrate (fiber worker pool + mailbox node/payload pool
// shards) warm for its whole lifetime and runs many independent sort jobs
// interleaved on it.
//
// Isolation: each job gets its *own* Engine — own virtual clocks, RNG
// streams, statistics, rendezvous board, NetworkModel — constructed on the
// shared substrate with the job id folded into its Comm namespace, so
// concurrent jobs' mailbox keys can never match each other. Virtual time
// depends only on (machine, seed, program); a job's outputs and clocks are
// bit-identical to a standalone one-shot run (tests/test_service.cpp).
//
// Admission control: a bounded queue (submit blocks while full) feeds a
// dispatcher thread that admits queued jobs in *batches* — whenever
// capacity frees at a job-completion boundary it admits as many queued
// jobs as fit under max_in_flight in one step, rather than trickling them
// one per completion. Per-job abort poisons only that job's mailboxes and
// unwinds only that job's fibers.
//
// Design: docs/DESIGN.md §12.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "em/io_executor.hpp"
#include "svc/job.hpp"
#include "svc/job_queue.hpp"

namespace pmps::svc {

struct ServiceOptions {
  /// Jobs running concurrently (admission ceiling). More in-flight jobs
  /// hide each other's serialisation bubbles (tail PEs, rank-0 phases) on
  /// the shared workers; past the host's core count the returns flatten.
  int max_in_flight = 4;
  /// Admission-queue bound; submit() blocks while the queue is full —
  /// the service's back-pressure on producers.
  int queue_capacity = 64;
  /// Worker threads (and mailbox shards) of the shared substrate;
  /// 0 = the engine default (PMPS_FIBER_WORKERS or hardware concurrency).
  int workers = 0;
  /// Execution backend. On kThreads (or where fibers are unsupported) the
  /// service still works but runs jobs serially on the dispatcher thread —
  /// admission, isolation and results are identical, only overlap is lost.
  net::EngineBackend backend = net::EngineBackend::kAuto;
};

/// Lifetime counters of a service (all monotonic; read via stats()).
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;  ///< terminal kDone
  std::int64_t failed = 0;     ///< terminal kFailed
  std::int64_t cancelled = 0;  ///< terminal kCancelled
  /// Dispatcher wakes that admitted ≥ 1 job — with batched admission this
  /// stays well below `submitted` under load (many jobs per boundary).
  std::int64_t admission_batches = 0;
  std::int64_t peak_in_flight = 0;
};

class SortService {
 public:
  explicit SortService(ServiceOptions opt = {});

  /// Stops admission, cancels still-queued jobs, waits for in-flight jobs
  /// to finish, and tears the substrate down.
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Enqueues a job; blocks while the admission queue is full. Thread-safe.
  JobHandle submit(JobSpec spec);

  /// Non-blocking submit: nullopt when the queue is full.
  std::optional<JobHandle> try_submit(JobSpec spec);

  /// Blocks until every job submitted so far reached a terminal state.
  void wait_idle();

  /// Holds back admission of queued jobs (running jobs are unaffected).
  /// pause → submit N → resume admits all N in one batch: the deterministic
  /// way to provoke a full admission batch in tests.
  void pause_admission();
  void resume_admission();

  ServiceStats stats() const;
  /// The resolved execution backend (kFibers unless forced/unsupported).
  net::EngineBackend backend() const { return backend_; }
  /// True when jobs actually overlap (fiber backend); false on the serial
  /// dispatcher fallback.
  bool concurrent() const {
    return backend_ == net::EngineBackend::kFibers;
  }
  const std::shared_ptr<net::EngineSubstrate>& substrate() const {
    return substrate_;
  }

  /// The service-wide spill I/O executor, created lazily on first use and
  /// shared by every budgeted job (like the substrate: one background I/O
  /// pool per service, not per job). Configured from PMPS_EM_IO /
  /// PMPS_EM_IO_THREADS; under PMPS_EM_IO=sync callers should not ask for
  /// it at all (the harness gates on the env mode), but a direct call
  /// still yields a working async executor. Thread-safe; valid for the
  /// service's lifetime.
  em::IoExecutor* io_executor();

 private:
  void dispatcher_main();
  /// Starts `job` on a fresh engine (true) or resolves a pre-admission
  /// cancellation (false — the in-flight slot is returned by the caller).
  bool admit(const std::shared_ptr<detail::JobContext>& job);
  /// Collects a completed run: finish_run, report, terminal state, wakeups.
  void finalize(const std::shared_ptr<detail::JobContext>& job);
  /// Marks a never-admitted job cancelled (shutdown path).
  void cancel_unadmitted(const std::shared_ptr<detail::JobContext>& job,
                         const char* why);
  void bump_terminal_stat_locked(JobState s);

  ServiceOptions opt_;
  net::EngineBackend backend_;
  std::shared_ptr<net::EngineSubstrate> substrate_;
  std::once_flag io_once_;
  std::unique_ptr<em::IoExecutor> io_;  ///< lazy; outlives every job's stores

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< dispatcher wakeups
  std::condition_variable space_cv_;  ///< submitters waiting for queue space
  std::condition_variable idle_cv_;   ///< wait_idle waiters
  JobQueue queue_;
  std::vector<std::shared_ptr<detail::JobContext>> done_;  ///< awaiting finalize
  int in_flight_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  std::uint64_t next_job_id_ = 0;
  ServiceStats stats_;

  std::thread dispatcher_;  ///< last member: joined before the rest dies
};

}  // namespace pmps::svc
