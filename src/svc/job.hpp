// Sort-as-a-service job types: what a client submits (JobSpec), the state
// machine a submitted job walks through, and the handle it gets back.
//
// A job is one SPMD program run on its own engine: its own PE count,
// MachineParams/NetworkModel, seed, virtual clocks, RNG streams and
// statistics. Only the host-side substrate (fiber workers, pooled stacks,
// mailbox node/payload pools) is shared between jobs — see
// net::EngineSubstrate — so a job's simulated results are bit-identical to
// a standalone one-shot Engine::run of the same configuration, no matter
// what ran before it or concurrently with it.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "net/engine.hpp"
#include "net/machine.hpp"
#include "net/stats.hpp"

namespace pmps::svc {

/// Everything that defines a job's simulated run. The program must be
/// self-contained (own its state via shared_ptr captures, by-value
/// captures, or per-rank locals): it outlives the submit call and runs on
/// service threads.
struct JobSpec {
  int num_pes = 1;
  net::MachineParams machine;  ///< includes the job's NetworkModel, if any
  std::uint64_t seed = 1;
  std::function<void(net::Comm&)> program;
  std::string name;  ///< optional label for logs/benches
};

/// kQueued → kRunning → one of the three terminal states.
enum class JobState : int {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< run completed cleanly
  kFailed = 3,     ///< run aborted itself (NetworkModel retry exhaustion)
  kCancelled = 4,  ///< JobHandle::abort or service shutdown
};

inline bool job_state_terminal(JobState s) { return s >= JobState::kDone; }

/// Outcome of a finished job. `report` is the job's own RunReport (virtual
/// wall time, phase maxima, fault totals); its EngineStats fields snapshot
/// the shared substrate, not the job (pools are warm by design).
struct JobResult {
  JobState state = JobState::kQueued;
  std::string error;  ///< abort reason (kFailed / kCancelled)
  net::RunReport report;
};

namespace detail {

/// Per-job isolation bundle: the job's own engine (clocks, RNGs, mailboxes,
/// rendezvous board) plus its state machine. Guarded by `mu` — the service
/// and the client's JobHandle both go through it; the engine pointer is
/// only non-null between admission and finalisation.
struct JobContext {
  std::uint64_t id = 0;  ///< 1-based; folded into the engine's Comm namespace
  JobSpec spec;

  std::mutex mu;
  std::condition_variable cv;  ///< signalled on reaching a terminal state
  JobState state = JobState::kQueued;
  bool abort_requested = false;
  std::string error;
  std::unique_ptr<net::Engine> engine;
  net::RunReport report;
};

}  // namespace detail

/// Client-side handle to a submitted job: shares ownership of the job
/// context, so it stays valid after the job finished (and after the
/// service was destroyed). Copyable; all methods are thread-safe.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return job_ != nullptr; }
  std::uint64_t id() const;
  JobState state() const;

  /// Requests cancellation: a queued job is dropped at its admission point;
  /// a running job has its run aborted (its own mailboxes poisoned, its own
  /// fibers unwound — sibling jobs are untouched). No-op once terminal.
  /// On the synchronous fallback path (thread backend, single-PE jobs) a
  /// running job cannot be interrupted; the abort then only prevents
  /// admission of the job if it is still queued.
  void abort();

  /// Blocks until the job reaches a terminal state and returns its outcome.
  JobResult wait();

 private:
  friend class SortService;
  explicit JobHandle(std::shared_ptr<detail::JobContext> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::JobContext> job_;
};

}  // namespace pmps::svc
