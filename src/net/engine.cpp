#include "net/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "net/comm.hpp"
#include "net/fiber.hpp"
#include "net/network_model.hpp"

namespace pmps::net {

namespace {

EngineBackend resolve_backend(EngineBackend requested) {
  if (requested == EngineBackend::kAuto) {
    if (const char* env = std::getenv("PMPS_ENGINE")) {
      if (std::strcmp(env, "threads") == 0) return EngineBackend::kThreads;
      if (std::strcmp(env, "fibers") == 0) requested = EngineBackend::kFibers;
    }
  }
  if (requested == EngineBackend::kThreads) return EngineBackend::kThreads;
  // kAuto default and explicit kFibers: fibers where the platform has them.
  return fibers_supported() ? EngineBackend::kFibers : EngineBackend::kThreads;
}

std::size_t fiber_stack_bytes() {
  // 256 KiB of lazily committed stack per PE is generous for the SPMD
  // programs here (heap-allocated data, shallow recursion); overridable for
  // unusual workloads.
  std::size_t kb = 256;
  if (const char* env = std::getenv("PMPS_FIBER_STACK_KB")) {
    const long v = std::atol(env);
    if (v >= 64) kb = static_cast<std::size_t>(v);
  }
  return kb * 1024;
}

int fiber_workers(int num_pes) {
  int w = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* env = std::getenv("PMPS_FIBER_WORKERS")) {
    const int v = std::atoi(env);
    if (v >= 1) w = v;
  }
  return std::clamp(w, 1, num_pes);
}

}  // namespace

Engine::Engine(int num_pes, MachineParams machine, std::uint64_t seed,
               EngineBackend backend)
    : num_pes_(num_pes),
      machine_(machine),
      seed_(seed),
      backend_(resolve_backend(backend)) {
  PMPS_CHECK(num_pes >= 1);
  pes_.reserve(static_cast<std::size_t>(num_pes));
  for (int i = 0; i < num_pes; ++i) {
    auto ctx = std::make_unique<PeContext>();
    ctx->pe = i;
    ctx->mailbox.set_node_pool(&node_pool_);
    ctx->rng = Xoshiro256(seed, static_cast<std::uint64_t>(i));
    ctx->noise_rng =
        Xoshiro256(seed ^ 0x6e6f697365ULL, static_cast<std::uint64_t>(i));
    pes_.push_back(std::move(ctx));
  }
}

Engine::~Engine() = default;

void Engine::run(const std::function<void(Comm&)>& program) {
  // Correlated congestion: one factor per run (interfering traffic on the
  // shared island interconnect, cf. the fluctuation discussion in §7.2).
  run_congestion_ = 1.0;
  if (machine_.congestion_noise_frac > 0) {
    Xoshiro256 rng(seed_ ^ 0xc049e57104ULL, run_counter_);
    const double g =
        (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
    run_congestion_ = 1.0 + machine_.congestion_noise_frac * std::abs(g);
  }
  ++run_counter_;

  failed_.store(false, std::memory_order_relaxed);
  for (auto& ctx : pes_) {
    // A failed (aborted) run legitimately leaves undelivered traffic and
    // poisoned mailboxes behind; flush both before reuse. After a clean
    // run an undrained mailbox is still a program bug.
    if (drain_needed_) ctx->mailbox.drain();
    PMPS_CHECK_MSG(ctx->mailbox.empty(),
                   "mailbox not drained by previous run");
    ctx->clock = 0;
    ctx->phase = Phase::kOther;
    ctx->stats = CommStats{};
    ctx->send_seq = 0;
    ctx->dilation =
        machine_.model ? machine_.model->compute_dilation(ctx->pe) : 1.0;
    // Reset the RNG streams so repeated runs are bit-identical.
    ctx->rng = Xoshiro256(seed_, static_cast<std::uint64_t>(ctx->pe));
    ctx->noise_rng =
        Xoshiro256(seed_ ^ 0x6e6f697365ULL, static_cast<std::uint64_t>(ctx->pe));
  }
  drain_needed_ = false;

  // Per-PE body: on an aborted run the origin PE unwinds on the
  // NetworkError it threw (abort_run already recorded it) and every other
  // PE on the RunAborted its poisoned mailbox raises; both stop here so
  // the backend's fiber/thread finishes normally and run() can rethrow
  // once, after the join. Any other exception still propagates (and, on
  // the fiber backend, terminates — see fiber.hpp).
  const auto body = [this, &program](int pe) {
    Comm comm(this, pe);
    try {
      program(comm);
    } catch (const RunAborted&) {
    } catch (const NetworkError&) {
    }
  };

  if (num_pes_ == 1) {
    // Inline run: a single PE only ever sends to itself (kSelf links carry
    // no faults), so no abort can originate and no wrapper is needed.
    Comm comm(this, 0);
    program(comm);
    return;
  }

  if (backend_ == EngineBackend::kFibers) {
    if (!pool_) {
      pool_ = std::make_unique<FiberPool>(fiber_workers(num_pes_),
                                          fiber_stack_bytes());
    }
    pool_->run(num_pes_, body);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_pes_));
    for (int i = 0; i < num_pes_; ++i) threads.emplace_back(body, i);
    for (auto& t : threads) t.join();
  }

  if (failed_.load(std::memory_order_acquire)) {
    drain_needed_ = true;
    std::lock_guard lock(fail_mu_);
    throw NetworkError(fail_msg_);
  }
}

void Engine::abort_run(const std::string& why) {
  {
    std::lock_guard lock(fail_mu_);
    if (!failed_.exchange(true, std::memory_order_acq_rel)) fail_msg_ = why;
  }
  // Poison every mailbox (the origin PE's too — it unwinds on its own
  // NetworkError and must not block again). Same wake discipline as
  // deposit_message, so a registered waiter is always resumed.
  for (auto& ctx : pes_) {
    const int pe = ctx->pe;
    if (backend_ == EngineBackend::kFibers && pool_) {
      ctx->mailbox.poison([this, pe] { pool_->wake(pe); });
    } else {
      ctx->mailbox.poison();
    }
  }
}

void Engine::deposit_message(int dest_pe, Message&& m) {
  PeContext& dst = *pes_[static_cast<std::size_t>(dest_pe)];
  if (backend_ == EngineBackend::kFibers && pool_) {
    dst.mailbox.deposit(std::move(m),
                        [this, dest_pe] { pool_->wake(dest_pe); });
  } else {
    dst.mailbox.deposit(std::move(m));
  }
}

Message Engine::retrieve_message(PeContext& ctx, const MsgKey& key) {
  if (backend_ == EngineBackend::kFibers && FiberPool::in_fiber()) {
    for (;;) {
      auto m = ctx.mailbox.retrieve_or_block(
          key, [] { FiberPool::prepare_block(); });
      if (m) return std::move(*m);
      FiberPool::block_current();
    }
  }
  // Thread backend and single-PE inline runs.
  return ctx.mailbox.retrieve(key);
}

RunReport Engine::report() const {
  RunReport r;
  for (const auto& ctx : pes_) {
    r.wall_time = std::max(r.wall_time, ctx->clock);
    for (int ph = 0; ph < kNumPhases; ++ph) {
      r.phase_max[ph] = std::max(r.phase_max[ph], ctx->stats.phase_time[ph]);
      r.phase_max_messages_sent[ph] = std::max(
          r.phase_max_messages_sent[ph], ctx->stats.phase_messages_sent[ph]);
    }
    r.max_messages_received =
        std::max(r.max_messages_received, ctx->stats.messages_received);
    r.max_messages_sent =
        std::max(r.max_messages_sent, ctx->stats.messages_sent);
    r.total_bytes_sent += ctx->stats.bytes_sent;
    r.faults += ctx->stats.faults;
  }
  return r;
}

RunReport run_spmd(int num_pes, const MachineParams& machine,
                   std::uint64_t seed,
                   const std::function<void(Comm&)>& program) {
  Engine engine(num_pes, machine, seed);
  engine.run(program);
  return engine.report();
}

}  // namespace pmps::net
