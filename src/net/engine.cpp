#include "net/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "common/check.hpp"
#include "net/comm.hpp"
#include "net/fiber.hpp"
#include "net/network_model.hpp"

namespace pmps::net {

namespace {

EngineBackend resolve_backend(EngineBackend requested) {
  if (requested == EngineBackend::kAuto) {
    if (const char* env = std::getenv("PMPS_ENGINE")) {
      if (std::strcmp(env, "threads") == 0) return EngineBackend::kThreads;
      if (std::strcmp(env, "fibers") == 0) requested = EngineBackend::kFibers;
    }
  }
  if (requested == EngineBackend::kThreads) return EngineBackend::kThreads;
  // kAuto default and explicit kFibers: fibers where the platform has them.
  return fibers_supported() ? EngineBackend::kFibers : EngineBackend::kThreads;
}

std::size_t fiber_stack_bytes() {
  // 256 KiB of lazily committed stack per PE is generous for the SPMD
  // programs here (heap-allocated data, shallow recursion); overridable for
  // unusual workloads.
  std::size_t kb = 256;
  if (const char* env = std::getenv("PMPS_FIBER_STACK_KB")) {
    const long v = std::atol(env);
    if (v >= 64) kb = static_cast<std::size_t>(v);
  }
  return kb * 1024;
}

int fiber_workers(int num_pes) {
  int w = static_cast<int>(std::thread::hardware_concurrency());
  if (const char* env = std::getenv("PMPS_FIBER_WORKERS")) {
    const int v = std::atoi(env);
    if (v >= 1) w = v;
  }
  return std::clamp(w, 1, num_pes);
}

int threads_max_p() {
  // The legacy backend spawns one OS thread per PE per run; beyond a few
  // thousand that exhausts process limits (thread stacks, pid slots) long
  // before the run finishes. Refuse early with a clear error instead.
  int cap = 4096;
  if (const char* env = std::getenv("PMPS_THREADS_MAX_P")) {
    const int v = std::atoi(env);
    if (v >= 1) cap = v;
  }
  return cap;
}

bool coll_ff_from_env() {
  const char* env = std::getenv("PMPS_COLL_FF");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Approximately standard-normal deviate from three uniforms (Irwin–Hall).
/// Must match comm.cpp's copy bit for bit: the barrier replay draws from
/// the same noise streams the real sends would have drawn from.
double approx_gauss(Xoshiro256& rng) {
  return (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
}

/// SplitMix64 finaliser: spreads job ids across the 64-bit comm-id space so
/// concurrent jobs' communicator-id chains never collide.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EngineSubstrate::EngineSubstrate(int num_shards) {
  PMPS_CHECK(num_shards >= 1);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s)
    shards_.push_back(std::make_unique<MailboxShard>());
}

EngineSubstrate::~EngineSubstrate() = default;

FiberPool* EngineSubstrate::ensure_pool(int workers, std::size_t stack_bytes) {
  if (!fibers_supported()) return nullptr;
  std::lock_guard lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<FiberPool>(workers, stack_bytes);
  return pool_.get();
}

Engine::Engine(int num_pes, MachineParams machine, std::uint64_t seed,
               EngineBackend backend)
    : Engine(num_pes, machine, seed, backend, nullptr, /*job_id=*/0) {}

Engine::Engine(int num_pes, MachineParams machine, std::uint64_t seed,
               EngineBackend backend,
               std::shared_ptr<EngineSubstrate> substrate, std::uint64_t job_id)
    : num_pes_(num_pes),
      machine_(machine),
      seed_(seed),
      backend_(resolve_backend(backend)),
      job_id_(job_id),
      coll_ff_(coll_ff_from_env()),
      substrate_(std::move(substrate)) {
  PMPS_CHECK(num_pes >= 1);
  if (!substrate_) {
    // Standalone engine: private substrate with one mailbox shard per fiber
    // worker (keyed dest PE % shards); the thread backend keeps its
    // single-table semantics with exactly one shard.
    const int num_shards =
        backend_ == EngineBackend::kFibers ? fiber_workers(num_pes) : 1;
    substrate_ = std::make_shared<EngineSubstrate>(num_shards);
  } else {
    // Service engine: the shared pool already exists (the service creates
    // it eagerly before admitting jobs).
    pool_ = substrate_->pool();
  }
  {
    auto members = std::make_shared<std::vector<int>>(num_pes);
    for (int i = 0; i < num_pes; ++i) (*members)[i] = i;
    world_members_ = std::move(members);
  }
  pes_.reserve(static_cast<std::size_t>(num_pes));
  for (int i = 0; i < num_pes; ++i) {
    auto ctx = std::make_unique<PeContext>();
    ctx->pe = i;
    ctx->mailbox.set_node_pool(&node_pool(i));
    ctx->rng = Xoshiro256(seed, static_cast<std::uint64_t>(i));
    ctx->noise_rng =
        Xoshiro256(seed ^ 0x6e6f697365ULL, static_cast<std::uint64_t>(i));
    pes_.push_back(std::move(ctx));
  }
}

Engine::~Engine() = default;

std::uint64_t Engine::world_comm_id() const {
  return job_id_ == 0 ? 1 : (mix64(job_id_) | 1ULL);
}

void Engine::prepare_run() {
  // Correlated congestion: one factor per run (interfering traffic on the
  // shared island interconnect, cf. the fluctuation discussion in §7.2).
  run_congestion_ = 1.0;
  if (machine_.congestion_noise_frac > 0) {
    Xoshiro256 rng(seed_ ^ 0xc049e57104ULL, run_counter_);
    const double g =
        (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
    run_congestion_ = 1.0 + machine_.congestion_noise_frac * std::abs(g);
  }
  ++run_counter_;

  failed_.store(false, std::memory_order_relaxed);
  ff_barriers_.store(0, std::memory_order_relaxed);
  ff_tallies_.store(0, std::memory_order_relaxed);
  if (drain_needed_) {
    // The aborted run may have left rendezvous cells mid-generation
    // (members that threw never arrived); reset them alongside the
    // mailboxes. Cells of a clean run end each generation at arrived == 0.
    std::lock_guard lock(rv_mu_);
    for (auto& [id, cell] : rv_cells_) {
      cell->arrived = 0;
      cell->aborted = false;
      cell->parked_pes.clear();
      for (auto& s : cell->slots) s = nullptr;
    }
  }
  for (auto& ctx : pes_) {
    // A failed (aborted) run legitimately leaves undelivered traffic and
    // poisoned mailboxes behind; flush both before reuse. After a clean
    // run an undrained mailbox is still a program bug.
    if (drain_needed_) ctx->mailbox.drain();
    PMPS_CHECK_MSG(ctx->mailbox.empty(),
                   "mailbox not drained by previous run");
    ctx->clock = 0;
    ctx->phase = Phase::kOther;
    ctx->stats = CommStats{};
    ctx->send_seq = 0;
    ctx->dilation =
        machine_.model ? machine_.model->compute_dilation(ctx->pe) : 1.0;
    // Reset the RNG streams so repeated runs are bit-identical.
    ctx->rng = Xoshiro256(seed_, static_cast<std::uint64_t>(ctx->pe));
    ctx->noise_rng =
        Xoshiro256(seed_ ^ 0x6e6f697365ULL, static_cast<std::uint64_t>(ctx->pe));
  }
  drain_needed_ = false;
}

// On an aborted run the origin PE unwinds on the NetworkError it threw
// (abort_run already recorded it) and every other PE on the RunAborted its
// poisoned mailbox raises; both stop here so the backend's fiber/thread
// finishes normally and the failure is reported once, after the join. Any
// other exception still propagates (and, on the fiber backend, terminates —
// see fiber.hpp).
void Engine::run_pe(int pe, const std::function<void(Comm&)>& program) {
  Comm comm(this, pe);
  try {
    program(comm);
  } catch (const RunAborted&) {
  } catch (const NetworkError&) {
  }
}

std::optional<std::string> Engine::collect_failure() {
  if (!failed_.load(std::memory_order_acquire)) return std::nullopt;
  drain_needed_ = true;
  std::lock_guard lock(fail_mu_);
  return fail_msg_;
}

void Engine::run_sync(const std::function<void(Comm&)>& program) {
  prepare_run();

  if (num_pes_ == 1) {
    // Inline run: a single PE only ever sends to itself (kSelf links carry
    // no faults), so no abort can originate from inside; run_pe still
    // wraps the program so an external (service-side) abort_run unwinds
    // cleanly instead of escaping.
    run_pe(0, program);
    return;
  }

  if (backend_ == EngineBackend::kFibers) {
    if (!pool_)
      pool_ = substrate_->ensure_pool(fiber_workers(num_pes_),
                                      fiber_stack_bytes());
    if (!batch_) batch_ = pool_->create_batch(num_pes_);
    cur_batch_.store(batch_.get(), std::memory_order_release);
    pool_->launch(*batch_,
                  [this, &program](int pe) { run_pe(pe, program); });
    batch_->wait();
    cur_batch_.store(nullptr, std::memory_order_release);
  } else {
    const int cap = threads_max_p();
    if (num_pes_ > cap) {
      throw std::runtime_error(
          "PMPS_ENGINE=threads refuses p=" + std::to_string(num_pes_) +
          " (> cap " + std::to_string(cap) +
          "): one OS thread per PE would exhaust the process. Use the fiber "
          "backend for large p, or raise PMPS_THREADS_MAX_P.");
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_pes_));
    for (int i = 0; i < num_pes_; ++i)
      threads.emplace_back([this, &program, i] { run_pe(i, program); });
    for (auto& t : threads) t.join();
  }
}

void Engine::run(const std::function<void(Comm&)>& program) {
  run_sync(program);
  if (auto err = collect_failure()) throw NetworkError(*err);
}

void Engine::start_run(std::function<void(Comm&)> program,
                       std::function<void()> on_complete) {
  run_program_ = std::move(program);
  if (backend_ == EngineBackend::kFibers && num_pes_ > 1) {
    prepare_run();
    if (!pool_)
      pool_ = substrate_->ensure_pool(fiber_workers(num_pes_),
                                      fiber_stack_bytes());
    if (!batch_) batch_ = pool_->create_batch(num_pes_);
    cur_batch_.store(batch_.get(), std::memory_order_release);
    pool_->launch(*batch_, [this](int pe) { run_pe(pe, run_program_); },
                  std::move(on_complete));
    return;
  }
  // Synchronous fallback (p == 1 inline runs, thread backend): the run
  // completes before start_run returns and on_complete fires on the caller.
  run_sync(run_program_);
  if (on_complete) on_complete();
}

std::optional<std::string> Engine::finish_run() {
  if (FiberBatch* b = cur_batch_.load(std::memory_order_acquire)) {
    b->wait();
    cur_batch_.store(nullptr, std::memory_order_release);
  }
  run_program_ = nullptr;
  return collect_failure();
}

void Engine::abort_run(const std::string& why) {
  // Host-initiated: ranks below every simulated failure (pe -1 breaks the
  // tie at any time), but never displaces an earlier host abort.
  abort_run(why, -1.0, -1);
}

void Engine::abort_run(const std::string& why, double at_time, int pe) {
  {
    std::lock_guard lock(fail_mu_);
    const bool first = !failed_.exchange(true, std::memory_order_acq_rel);
    if (first || std::tie(at_time, pe) < std::tie(fail_time_, fail_pe_)) {
      fail_msg_ = why;
      fail_time_ = at_time;
      fail_pe_ = pe;
    }
  }
  // Poison the rendezvous board first: members parked in a barrier
  // fast-forward or count tally have no mailbox registration, so the
  // mailbox poison below would never reach them. Wakes target this
  // engine's in-flight batch only, so a service-side abort never touches
  // sibling jobs' fibers.
  FiberBatch* b = cur_batch_.load(std::memory_order_acquire);
  {
    std::lock_guard lock(rv_mu_);
    for (auto& [id, cell] : rv_cells_) {
      cell->aborted = true;
      if (b)
        for (const int pe : cell->parked_pes) b->wake(pe);
      cell->parked_pes.clear();
      cell->cv.notify_all();
    }
  }
  // Poison every mailbox (the origin PE's too — it unwinds on its own
  // NetworkError and must not block again). Same wake discipline as
  // deposit_message, so a registered waiter is always resumed.
  for (auto& ctx : pes_) {
    const int pe = ctx->pe;
    if (b) {
      ctx->mailbox.poison([b, pe] { b->wake(pe); });
    } else {
      ctx->mailbox.poison();
    }
  }
}

void Engine::deposit_message(int dest_pe, Message&& m) {
  PeContext& dst = *pes_[static_cast<std::size_t>(dest_pe)];
  if (FiberBatch* b = cur_batch_.load(std::memory_order_acquire)) {
    dst.mailbox.deposit(std::move(m), [b, dest_pe] { b->wake(dest_pe); });
  } else {
    dst.mailbox.deposit(std::move(m));
  }
}

Message Engine::retrieve_message(PeContext& ctx, const MsgKey& key) {
  if (backend_ == EngineBackend::kFibers && FiberPool::in_fiber()) {
    for (;;) {
      auto m = ctx.mailbox.retrieve_or_block(
          key, [] { FiberPool::prepare_block(); });
      if (m) return std::move(*m);
      FiberPool::block_current();
    }
  }
  // Thread backend and single-PE inline runs.
  return ctx.mailbox.retrieve(key);
}

Engine::RendezvousCell& Engine::rv_cell_locked(std::uint64_t comm_id,
                                               int size) {
  auto it = rv_cells_.find(comm_id);
  if (it == rv_cells_.end()) {
    auto cell = std::make_unique<RendezvousCell>();
    cell->size = size;
    cell->slots.assign(static_cast<std::size_t>(size), nullptr);
    cell->arrivals.assign(static_cast<std::size_t>(size), 0.0);
    cell->parked_pes.reserve(static_cast<std::size_t>(size));
    it = rv_cells_.emplace(comm_id, std::move(cell)).first;
  }
  PMPS_ASSERT(it->second->size == size);
  return *it->second;
}

void Engine::rv_park(std::unique_lock<std::mutex>& lock, RendezvousCell& cell,
                     int pe) {
  const std::uint64_t gen0 = cell.gen;
  if (backend_ == EngineBackend::kFibers && FiberPool::in_fiber()) {
    // A rendezvous park is the long-lived collective wait: the whole phase
    // blocks here, so the worker reclaims this fiber's cold stack span
    // (prepare_block(true)). The registration (parked_pes) happens under
    // rv_mu_, exactly like a mailbox wait registration under the mailbox
    // lock, so a releasing/aborting peer can never miss us.
    for (;;) {
      cell.parked_pes.push_back(pe);
      FiberPool::prepare_block(/*long_wait=*/true);
      lock.unlock();
      FiberPool::block_current();
      lock.lock();
      if (cell.aborted) throw RunAborted{};
      if (cell.gen != gen0) return;
    }
  }
  cell.cv.wait(lock, [&] { return cell.gen != gen0 || cell.aborted; });
  if (cell.aborted) throw RunAborted{};
}

void Engine::rv_release_locked(RendezvousCell& cell) {
  cell.arrived = 0;
  ++cell.gen;
  if (!cell.parked_pes.empty()) {
    // parked_pes is only populated on the fiber path, during a run — the
    // in-flight batch is always set here.
    FiberBatch* b = cur_batch_.load(std::memory_order_acquire);
    for (const int pe : cell.parked_pes) b->wake(pe);
    cell.parked_pes.clear();
  }
  cell.cv.notify_all();
}

void Engine::replay_barrier(const std::vector<int>& members,
                            std::vector<double>& arrivals) {
  // Round-major replay of coll::barrier's dissemination pattern: all
  // round-r sends in member-rank order, then all round-r receives. Each
  // PE's own effect order (send r, recv r, send r+1, …) and every
  // cross-PE dependency (a receive reads its sender's same-round arrival)
  // match the real execution, and each PE's noise stream is drawn once per
  // round in round order — so every clock, counter and RNG state ends bit
  // for bit where the real message exchange would have left it.
  const int p = static_cast<int>(members.size());
  const MachineParams& m = machine_;
  for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
    for (int i = 0; i < p; ++i) {
      PeContext& s = *pes_[static_cast<std::size_t>(
          members[static_cast<std::size_t>(i)])];
      const int dest = (i + step) % p;
      const LinkLevel lvl = m.level_between(
          s.pe, members[static_cast<std::size_t>(dest)]);
      if (s.free_mode || lvl == LinkLevel::kSelf) {
        if (!s.free_mode) s.advance(m.copy_cost(1));
        arrivals[static_cast<std::size_t>(dest)] = s.clock;
        continue;
      }
      double cost = m.message_cost(lvl, 1);
      if (m.comm_noise_frac > 0) {
        const double f = 1.0 + m.comm_noise_frac * approx_gauss(s.noise_rng);
        cost *= std::max(0.05, f);
      }
      if (lvl != LinkLevel::kNode) cost *= run_congestion_;
      s.advance(cost);
      arrivals[static_cast<std::size_t>(dest)] = s.clock;
      s.stats.messages_sent += 1;
      s.stats.phase_messages_sent[static_cast<int>(s.phase)] += 1;
      s.stats.bytes_sent += 1;
    }
    for (int i = 0; i < p; ++i) {
      PeContext& r = *pes_[static_cast<std::size_t>(
          members[static_cast<std::size_t>(i)])];
      const int src = (i - step % p + p) % p;
      const LinkLevel lvl = m.level_between(
          r.pe, members[static_cast<std::size_t>(src)]);
      if (lvl == LinkLevel::kSelf || r.free_mode) continue;
      const double arrival = arrivals[static_cast<std::size_t>(i)];
      if (r.clock < arrival) {
        r.advance_to(arrival);
      } else {
        r.advance(m.beta[static_cast<int>(lvl)] * 1.0);
      }
      r.stats.messages_received += 1;
      r.stats.bytes_received += 1;
    }
  }
}

bool Engine::barrier_fast_forward(PeContext& ctx, std::uint64_t comm_id,
                                  const std::vector<int>& members, int rank) {
  if (!coll_ff_ || machine_.model != nullptr) return false;
  (void)rank;
  const int p = static_cast<int>(members.size());
  std::unique_lock lock(rv_mu_);
  RendezvousCell& cell = rv_cell_locked(comm_id, p);
  if (cell.aborted) throw RunAborted{};
  if (++cell.arrived < p) {
    rv_park(lock, cell, ctx.pe);
    return true;
  }
  // Last arriver: every other member is parked (or about to park — each
  // registered under rv_mu_ before arriving counted), so their contexts
  // are safe to write.
  replay_barrier(members, cell.arrivals);
  ff_barriers_.fetch_add(1, std::memory_order_relaxed);
  rv_release_locked(cell);
  return true;
}

void Engine::tally_counts(PeContext& ctx, std::uint64_t comm_id,
                          const std::vector<int>& members, int rank,
                          std::span<const CountPair> out,
                          std::vector<CountPair>& in) {
  const int p = static_cast<int>(members.size());
  if (p == 1) {
    // Only destination rank 0 exists; incoming pairs are our own with
    // src rank 0 — the identical struct layout.
    in.assign(out.begin(), out.end());
    return;
  }
  std::unique_lock lock(rv_mu_);
  RendezvousCell& cell = rv_cell_locked(comm_id, p);
  if (cell.aborted) throw RunAborted{};
  TallySlot slot{out.data(), out.size(), &in};
  cell.slots[static_cast<std::size_t>(rank)] = &slot;
  if (++cell.arrived < p) {
    rv_park(lock, cell, ctx.pe);
    return;
  }
  // Last arriver: scatter. Iterating source ranks ascending appends to
  // every destination's `in` in ascending-src order — the order the dense
  // Bruck result is consumed in (src 0…p−1).
  for (int s = 0; s < p; ++s)
    static_cast<TallySlot*>(cell.slots[static_cast<std::size_t>(s)])
        ->in->clear();
  for (int s = 0; s < p; ++s) {
    const TallySlot* src =
        static_cast<TallySlot*>(cell.slots[static_cast<std::size_t>(s)]);
    for (std::size_t k = 0; k < src->n_out; ++k) {
      const CountPair& cp = src->out[k];
      static_cast<TallySlot*>(
          cell.slots[static_cast<std::size_t>(cp.rank)])
          ->in->push_back({static_cast<std::int32_t>(s), cp.count});
    }
  }
  for (int s = 0; s < p; ++s) cell.slots[static_cast<std::size_t>(s)] = nullptr;
  ff_tallies_.fetch_add(1, std::memory_order_relaxed);
  rv_release_locked(cell);
}

RunReport Engine::report() const {
  RunReport r;
  for (const auto& ctx : pes_) {
    r.wall_time = std::max(r.wall_time, ctx->clock);
    for (int ph = 0; ph < kNumPhases; ++ph) {
      r.phase_max[ph] = std::max(r.phase_max[ph], ctx->stats.phase_time[ph]);
      r.phase_max_messages_sent[ph] = std::max(
          r.phase_max_messages_sent[ph], ctx->stats.phase_messages_sent[ph]);
    }
    r.max_messages_received =
        std::max(r.max_messages_received, ctx->stats.messages_received);
    r.max_messages_sent =
        std::max(r.max_messages_sent, ctx->stats.messages_sent);
    r.total_bytes_sent += ctx->stats.bytes_sent;
    r.faults += ctx->stats.faults;
  }
  // Host-resource fields below (mailbox pools, fiber stacks) snapshot the
  // *substrate*, which stays warm by design: on a standalone engine they
  // are engine-lifetime high-waters; under a SortService they are shared
  // across every job on the substrate. All simulated per-job metrics above
  // (clocks, phase times, message/byte counters, faults) reset per run.
  r.engine.mailbox_shards = substrate_->num_shards();
  for (int s = 0; s < substrate_->num_shards(); ++s) {
    const std::int64_t hw =
        substrate_->shard(static_cast<std::size_t>(s)).node_pool.high_water();
    r.engine.mailbox_node_high_water =
        std::max(r.engine.mailbox_node_high_water, hw);
    r.engine.mailbox_nodes_total_high_water += hw;
  }
  if (pool_) {
    const FiberStackStats ss = pool_->stack_stats();
    r.engine.peak_stack_bytes = ss.peak_stack_bytes;
    r.engine.current_stack_bytes = ss.current_stack_bytes;
    r.engine.stack_bytes_reserved = ss.stack_bytes_reserved;
    r.engine.stacks = ss.stacks;
    r.engine.stack_acquires = ss.stack_acquires;
    r.engine.stack_reclaims = ss.reclaims;
    r.engine.stack_reclaimed_bytes = ss.reclaimed_bytes;
  }
  r.engine.collective_fast_forwards =
      ff_barriers_.load(std::memory_order_relaxed);
  r.engine.count_tallies = ff_tallies_.load(std::memory_order_relaxed);
  return r;
}

RunReport run_spmd(int num_pes, const MachineParams& machine,
                   std::uint64_t seed,
                   const std::function<void(Comm&)>& program) {
  Engine engine(num_pes, machine, seed);
  engine.run(program);
  return engine.report();
}

EngineBackend resolve_engine_backend(EngineBackend requested) {
  return resolve_backend(requested);
}

int engine_fiber_workers(int num_pes) { return fiber_workers(num_pes); }

std::size_t engine_fiber_stack_bytes() { return fiber_stack_bytes(); }

}  // namespace pmps::net
