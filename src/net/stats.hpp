// Per-PE statistics: virtual clock accounting by algorithm phase, message
// and byte counters. The paper (§7.1) divides each level into four phases —
// splitter selection, bucket processing, data delivery, local sorting —
// separated by barriers and accumulated over recursion levels; we account
// virtual time the same way so Figure 8 can be reproduced natively.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace pmps::net {

enum class Phase : int {
  kOther = 0,
  kSplitterSelection = 1,
  kBucketProcessing = 2,
  kDataDelivery = 3,
  kLocalSort = 4,
};
inline constexpr int kNumPhases = 5;

std::string_view phase_name(Phase p);

/// Reliability-layer counters (all zero under the clean model and under a
/// lossy model that never dropped anything). Written only by the sending PE
/// — simulate_reliable_send resolves the whole exchange at the send site —
/// so they need no synchronisation, like every other CommStats field.
struct FaultTotals {
  std::int64_t retransmits = 0;  ///< extra data transmissions performed
  std::int64_t data_drops = 0;   ///< data transmission attempts lost
  std::int64_t ack_drops = 0;    ///< acks lost (the data had arrived)
  std::int64_t dup_data = 0;     ///< duplicate copies suppressed at the dest
  std::int64_t dup_acks = 0;     ///< duplicate / out-of-order acks ignored

  bool any() const {
    return retransmits || data_drops || ack_drops || dup_data || dup_acks;
  }
  FaultTotals& operator+=(const FaultTotals& o) {
    retransmits += o.retransmits;
    data_drops += o.data_drops;
    ack_drops += o.ack_drops;
    dup_data += o.dup_data;
    dup_acks += o.dup_acks;
    return *this;
  }
  friend bool operator==(const FaultTotals&, const FaultTotals&) = default;
};

struct CommStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  FaultTotals faults;  ///< reliability-layer counters (see FaultTotals)
  std::array<double, kNumPhases> phase_time{};  // virtual seconds
  std::array<std::int64_t, kNumPhases> phase_messages_sent{};

  double total_phase_time() const {
    double s = 0;
    for (double t : phase_time) s += t;
    return s;
  }
};

/// Aggregate over all PEs after a run: max virtual finish time, per-phase
/// maxima (the bottleneck PE per phase), message-count extremes.
struct RunReport {
  double wall_time = 0;  ///< max over PEs of final virtual clock
  std::array<double, kNumPhases> phase_max{};
  std::array<std::int64_t, kNumPhases> phase_max_messages_sent{};
  std::int64_t max_messages_received = 0;  ///< max over PEs
  std::int64_t max_messages_sent = 0;
  std::int64_t total_bytes_sent = 0;
  FaultTotals faults;  ///< summed over PEs (all zero on a clean run)

  double phase(Phase p) const { return phase_max[static_cast<int>(p)]; }
  std::int64_t phase_messages(Phase p) const {
    return phase_max_messages_sent[static_cast<int>(p)];
  }
};

}  // namespace pmps::net
