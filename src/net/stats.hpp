// Per-PE statistics: virtual clock accounting by algorithm phase, message
// and byte counters. The paper (§7.1) divides each level into four phases —
// splitter selection, bucket processing, data delivery, local sorting —
// separated by barriers and accumulated over recursion levels; we account
// virtual time the same way so Figure 8 can be reproduced natively.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace pmps::net {

enum class Phase : int {
  kOther = 0,
  kSplitterSelection = 1,
  kBucketProcessing = 2,
  kDataDelivery = 3,
  kLocalSort = 4,
};
inline constexpr int kNumPhases = 5;

std::string_view phase_name(Phase p);

/// Reliability-layer counters (all zero under the clean model and under a
/// lossy model that never dropped anything). Written only by the sending PE
/// — simulate_reliable_send resolves the whole exchange at the send site —
/// so they need no synchronisation, like every other CommStats field.
struct FaultTotals {
  std::int64_t retransmits = 0;  ///< extra data transmissions performed
  std::int64_t data_drops = 0;   ///< data transmission attempts lost
  std::int64_t ack_drops = 0;    ///< acks lost (the data had arrived)
  std::int64_t dup_data = 0;     ///< duplicate copies suppressed at the dest
  std::int64_t dup_acks = 0;     ///< duplicate / out-of-order acks ignored

  bool any() const {
    return retransmits || data_drops || ack_drops || dup_data || dup_acks;
  }
  FaultTotals& operator+=(const FaultTotals& o) {
    retransmits += o.retransmits;
    data_drops += o.data_drops;
    ack_drops += o.ack_drops;
    dup_data += o.dup_data;
    dup_acks += o.dup_acks;
    return *this;
  }
  friend bool operator==(const FaultTotals&, const FaultTotals&) = default;
};

struct CommStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  FaultTotals faults;  ///< reliability-layer counters (see FaultTotals)
  std::array<double, kNumPhases> phase_time{};  // virtual seconds
  std::array<std::int64_t, kNumPhases> phase_messages_sent{};

  double total_phase_time() const {
    double s = 0;
    for (double t : phase_time) s += t;
    return s;
  }
};

/// Host-side resource accounting of the engine itself — memory the
/// *simulator* (not the simulated machine) used. Stack fields are zero on
/// the thread backend and on single-PE inline runs (no fiber pool); the
/// fast-forward counters are zero when PMPS_COLL_FF=0. None of these affect
/// virtual time.
struct EngineStats {
  std::int64_t peak_stack_bytes = 0;      ///< peak resident fiber stack bytes
  std::int64_t current_stack_bytes = 0;   ///< resident fiber stack bytes now
  std::int64_t stack_bytes_reserved = 0;  ///< mapped (virtual) stack bytes
  std::int64_t stacks = 0;                ///< pooled stacks ever created
  std::int64_t stack_acquires = 0;  ///< lifetime acquires (reuse ⇒ ≫ stacks)
  std::int64_t stack_reclaims = 0;  ///< madvise(MADV_DONTNEED) calls
  std::int64_t stack_reclaimed_bytes = 0;  ///< stack bytes returned to kernel
  int mailbox_shards = 0;  ///< slab/pool shards (1 on the thread backend)
  std::int64_t mailbox_node_high_water = 0;  ///< max per-shard node peak
  std::int64_t mailbox_nodes_total_high_water = 0;  ///< summed shard peaks
  std::int64_t collective_fast_forwards = 0;  ///< barrier replays (last run)
  std::int64_t count_tallies = 0;  ///< sparse-exchange count tallies (last run)
};

/// Aggregate over all PEs after a run: max virtual finish time, per-phase
/// maxima (the bottleneck PE per phase), message-count extremes.
struct RunReport {
  double wall_time = 0;  ///< max over PEs of final virtual clock
  std::array<double, kNumPhases> phase_max{};
  std::array<std::int64_t, kNumPhases> phase_max_messages_sent{};
  std::int64_t max_messages_received = 0;  ///< max over PEs
  std::int64_t max_messages_sent = 0;
  std::int64_t total_bytes_sent = 0;
  FaultTotals faults;  ///< summed over PEs (all zero on a clean run)
  EngineStats engine;  ///< host-side simulator resource accounting

  double phase(Phase p) const { return phase_max[static_cast<int>(p)]; }
  std::int64_t phase_messages(Phase p) const {
    return phase_max_messages_sent[static_cast<int>(p)];
  }
};

}  // namespace pmps::net
