#include "net/comm.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/math.hpp"
#include "net/network_model.hpp"

namespace pmps::net {

namespace {

/// Approximately standard-normal deviate from three uniforms (Irwin–Hall);
/// plenty for modelling network jitter.
double approx_gauss(Xoshiro256& rng) {
  return (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
}

struct SplitEntry {
  int color;
  int key;
  int parent_rank;
  int global_pe;
};

}  // namespace

Comm::Comm(Engine* engine, int pe)
    : engine_(engine),
      ctx_(&engine->pe_context(pe)),
      // All p world communicators alias the engine's one member vector —
      // a per-PE copy would be Θ(p²) bytes across the machine (4 GB at
      // p = 2^15).
      members_(engine->world_members()),
      rank_(pe),
      // The engine's job namespace: 1 standalone, a per-job odd id under a
      // SortService. Every sub-communicator id chains off this root, so
      // concurrent jobs' mailbox keys and rendezvous cells never collide.
      comm_id_(engine->world_comm_id()) {}

Comm::Comm(Engine* engine, PeContext* ctx,
           std::shared_ptr<const std::vector<int>> members, int rank,
           std::uint64_t comm_id)
    : engine_(engine),
      ctx_(ctx),
      members_(std::move(members)),
      rank_(rank),
      comm_id_(comm_id) {}

void Comm::send_bytes(int dest_rank, std::uint64_t tag,
                      std::span<const std::byte> payload) {
  PMPS_CHECK(dest_rank >= 0 && dest_rank < size());
  const int dest_pe = member(dest_rank);
  const MachineParams& m = machine();
  const LinkLevel lvl = m.level_between(ctx_->pe, dest_pe);

  double arrival;
  if (ctx_->free_mode || lvl == LinkLevel::kSelf) {
    if (!ctx_->free_mode) {
      // Local move: charged as a copy, not a network message.
      ctx_->advance(m.copy_cost(payload.size_bytes()));
    }
    arrival = ctx_->clock;
  } else {
    double cost = m.message_cost(lvl, payload.size_bytes());
    if (m.comm_noise_frac > 0) {
      const double f = 1.0 + m.comm_noise_frac * approx_gauss(ctx_->noise_rng);
      cost *= std::max(0.05, f);
    }
    if (lvl != LinkLevel::kNode) cost *= engine_->run_congestion();
    if (m.model == nullptr) {
      // Clean network: arrival is the sender-finish time (single-ported
      // model). This is the default path, untouched by fault injection.
      ctx_->advance(cost);
      arrival = ctx_->clock;
    } else {
      arrival =
          send_with_model(*m.model, lvl, dest_pe, payload.size_bytes(), cost);
    }
    ctx_->stats.messages_sent += 1;
    ctx_->stats.phase_messages_sent[static_cast<int>(ctx_->phase)] += 1;
    ctx_->stats.bytes_sent += static_cast<std::int64_t>(payload.size_bytes());
  }

  Message msg;
  msg.comm_id = comm_id_;
  msg.tag = tag;
  msg.src_pe = ctx_->pe;
  msg.arrival = arrival;
  msg.payload = engine_->buffer_pool(dest_pe).acquire(payload.size_bytes());
  msg.payload.assign(payload.begin(), payload.end());
  engine_->deposit_message(dest_pe, std::move(msg));
}

double Comm::send_with_model(const NetworkModel& model, LinkLevel lvl,
                             int dest_pe, std::size_t bytes, double cost) {
  MsgAttempt a;
  a.src_pe = ctx_->pe;
  a.dst_pe = dest_pe;
  a.level = lvl;
  a.bytes = bytes;
  a.seq = ctx_->send_seq++;

  if (!model.lossy()) {
    // Jitter-only model: one stretched transmission, no protocol.
    ctx_->advance(cost * model.latency_factor(a));
    return ctx_->clock + model.extra_delay(a);
  }

  const RetransmitParams rp = model.retransmit();
  const double ack_cost = machine().message_cost(lvl, rp.ack_bytes);
  const double start = ctx_->clock;
  const ReliableOutcome out =
      simulate_reliable_send(model, rp, a, cost, ack_cost);

  if (!out.delivered) {
    char why[160];
    std::snprintf(why, sizeof why,
                  "reliable send PE %d -> PE %d (seq %llu): no ack after %d "
                  "attempts, retry budget exhausted",
                  ctx_->pe, dest_pe, static_cast<unsigned long long>(a.seq),
                  out.attempts);
    engine_->abort_run(why, start, ctx_->pe);
    throw NetworkError(why);
  }

  ctx_->advance(out.finish_dt);
  ctx_->stats.faults.retransmits += out.retransmits;
  ctx_->stats.faults.data_drops += out.data_drops;
  ctx_->stats.faults.ack_drops += out.ack_drops;
  ctx_->stats.faults.dup_data += out.dup_data;
  ctx_->stats.faults.dup_acks += out.dup_acks;
  // First-try success means arrival_dt == finish_dt, and the arrival must
  // equal the sender's clock *bit for bit* (start + dt would re-round);
  // only reconstruct an absolute arrival when the protocol decoupled them.
  return out.arrival_dt == out.finish_dt ? ctx_->clock : start + out.arrival_dt;
}

Message Comm::recv_bytes(int src_rank, std::uint64_t tag) {
  PMPS_CHECK(src_rank >= 0 && src_rank < size());
  const int src_pe = member(src_rank);
  Message m = engine_->retrieve_message(*ctx_, MsgKey{comm_id_, tag, src_pe});

  const MachineParams& mp = machine();
  const LinkLevel lvl = mp.level_between(ctx_->pe, src_pe);
  if (lvl != LinkLevel::kSelf && !ctx_->free_mode) {
    if (ctx_->clock < m.arrival) {
      // We were waiting: payload is available the moment the sender finished.
      ctx_->advance_to(m.arrival);
    } else {
      // We were busy past the arrival: charge the drain (receive occupancy).
      ctx_->advance(mp.beta[static_cast<int>(lvl)] *
                    static_cast<double>(m.payload.size()));
    }
    ctx_->stats.messages_received += 1;
    ctx_->stats.bytes_received += static_cast<std::int64_t>(m.payload.size());
  }
  return m;
}

void Comm::release_payload(Message&& m) {
  // We are the destination: the buffer goes back to the shard the sender
  // acquired it from (buffers never migrate between shards).
  engine_->buffer_pool(ctx_->pe).release(std::move(m.payload));
}

bool Comm::barrier_fast_forward() {
  return engine_->barrier_fast_forward(*ctx_, comm_id_, *members_, rank_);
}

void Comm::tally_counts(std::span<const CountPair> out,
                        std::vector<CountPair>& in) {
  engine_->tally_counts(*ctx_, comm_id_, *members_, rank_, out, in);
}

Comm Comm::split(int color, int key) {
  // Communicator construction is treated as precomputation (§7.1): run the
  // exchange in free mode (not charged to virtual time).
  FreeModeGuard free_guard(*ctx_);

  const std::uint64_t gtag = next_tag_block();
  const std::uint64_t btag = next_tag_block();
  const int p = size();

  // Binomial-tree gather of (color, key, rank) to rank 0.
  std::vector<SplitEntry> table;
  table.push_back({color, key, rank_, ctx_->pe});
  for (int step = 1; step < p; step <<= 1) {
    if ((rank_ & step) != 0) {
      send<SplitEntry>(rank_ - step, gtag + static_cast<std::uint64_t>(rank_),
                       std::span<const SplitEntry>(table));
      break;
    }
    if (rank_ + step < p) {
      auto part = recv<SplitEntry>(
          rank_ + step, gtag + static_cast<std::uint64_t>(rank_ + step));
      table.insert(table.end(), part.begin(), part.end());
    }
  }

  // Binomial-tree broadcast of the full table from rank 0.
  const std::uint64_t top = next_pow2(static_cast<std::uint64_t>(p));
  const std::uint64_t lowbit =
      rank_ == 0 ? top : static_cast<std::uint64_t>(rank_ & -rank_);
  if (rank_ != 0) {
    table = recv<SplitEntry>(rank_ - static_cast<int>(lowbit),
                             btag + static_cast<std::uint64_t>(rank_));
  }
  for (std::uint64_t m = lowbit >> 1; m >= 1; m >>= 1) {
    const int child = rank_ + static_cast<int>(m);
    if (child < p) {
      send<SplitEntry>(child, btag + static_cast<std::uint64_t>(child),
                       std::span<const SplitEntry>(table));
    }
    if (m == 1) break;
  }

  // Build the member list for our color, ordered by (key, parent rank).
  std::vector<SplitEntry> mine;
  for (const auto& e : table)
    if (e.color == color) mine.push_back(e);
  std::sort(mine.begin(), mine.end(), [](const auto& a, const auto& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.parent_rank < b.parent_rank;
  });

  auto members = std::make_shared<std::vector<int>>();
  members->reserve(mine.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    members->push_back(mine[i].global_pe);
    if (mine[i].global_pe == ctx_->pe) new_rank = static_cast<int>(i);
  }
  PMPS_CHECK_MSG(new_rank >= 0, "calling PE must be in its own color group");

  const std::uint64_t child_id =
      mix64(comm_id_ * 0x9e3779b97f4a7c15ULL + btag + 0x51ed2701ULL +
            static_cast<std::uint64_t>(color + 1) * 0x100000001b3ULL);

  return Comm(engine_, ctx_, std::move(members), new_rank, child_id);
}

Comm Comm::split_consecutive(int groups) {
  PMPS_CHECK(groups >= 1 && size() % groups == 0);
  const int group_size = size() / groups;
  return split(rank_ / group_size, rank_ % group_size);
}

}  // namespace pmps::net
