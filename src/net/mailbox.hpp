// Per-PE mailbox: the delivery endpoint for simulated messages.
//
// Messages are matched on (comm id, tag, source PE). Collectives allocate
// tag blocks in SPMD lockstep (every member of a communicator executes the
// same sequence of operations), so matching is unambiguous and the whole
// simulation is deterministic regardless of OS thread scheduling.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace pmps::net {

struct Message {
  std::uint64_t comm_id = 0;
  std::uint64_t tag = 0;
  int src_pe = -1;        ///< global PE id of the sender
  double arrival = 0;     ///< earliest virtual time the payload is available
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  void deposit(Message&& m) {
    {
      std::lock_guard lock(mu_);
      queue_.push_back(std::move(m));
    }
    cv_.notify_all();
  }

  /// Blocks until a message matching (comm_id, tag, src_pe) is present and
  /// removes it from the queue.
  Message retrieve(std::uint64_t comm_id, std::uint64_t tag, int src_pe) {
    std::unique_lock lock(mu_);
    while (true) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->comm_id == comm_id && it->tag == tag && it->src_pe == src_pe) {
          Message m = std::move(*it);
          queue_.erase(it);
          return m;
        }
      }
      cv_.wait(lock);
    }
  }

  bool empty() const {
    std::lock_guard lock(mu_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace pmps::net
