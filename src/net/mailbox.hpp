// Per-PE mailbox: the delivery endpoint for simulated messages.
//
// Messages are matched on (comm id, tag, source PE). Collectives allocate
// tag blocks in SPMD lockstep (every member of a communicator executes the
// same sequence of operations), so matching is unambiguous and the whole
// simulation is deterministic regardless of OS thread scheduling.
//
// The store is a *slab mailbox*: an open-addressing key table (linear
// probing, backward-shift deletion) whose slots head intrusively linked
// FIFO lists of pooled message nodes. The previous
// unordered_map<MsgKey, deque<Message>> paid one map-node allocation plus
// a deque-segment allocation per key per backlog — per-message heap churn
// on the hottest path of the whole simulator. Nodes now come from a
// per-engine MsgNodePool (slab-allocated, recycled through an intrusive
// free list, the BufferPool discipline applied to mailbox bookkeeping), so
// deposit/retrieve allocate nothing once warm; the key table only
// allocates when it grows, which stops once it reaches the run's working
// set. Matching semantics, per-key FIFO order and virtual time are
// untouched — the store is host-side bookkeeping the §2.1 cost model never
// sees (docs/DESIGN.md §9).
//
// Wakeups are *targeted*: a mailbox has exactly one consumer (its owning
// PE), which registers the key it is waiting for; deposit() only wakes it
// when the deposited key matches that registration, instead of
// notify_all-broadcasting on every deposit.
//
// Two blocking protocols share the same store: retrieve() blocks the calling
// OS thread on a condition variable (legacy thread backend, single-PE inline
// runs), while retrieve_or_block()/deposit(m, wake) let the fiber engine
// park and re-enqueue PE fibers (see fiber.hpp and Engine::retrieve_message).

#pragma once

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/random.hpp"

namespace pmps::net {

/// One simulated in-flight message: the matching triple (communicator,
/// tag, source), the virtual arrival time, and the raw payload bytes.
/// Payload buffers are recycled through the engine's BufferPool — a
/// receiver that consumed the payload hands the buffer back via
/// Comm::release_payload.
struct Message {
  std::uint64_t comm_id = 0;  ///< owning communicator (part of the match key)
  std::uint64_t tag = 0;      ///< tag within the communicator (match key)
  int src_pe = -1;            ///< global PE id of the sender (match key)
  double arrival = 0;     ///< earliest virtual time the payload is available
  std::vector<std::byte> payload;  ///< raw bytes; pooled, see BufferPool
};

/// Free-list of message payload buffers, shared by all PEs of an engine.
///
/// Every simulated send used to heap-allocate a fresh payload vector and
/// every recv freed it — at paper-scale p the allocator churn dominated
/// *host* time (virtual time never sees it). Senders now acquire() a
/// recycled buffer and receivers release() it once the payload has been
/// copied out, so steady-state communication allocates nothing.
///
/// The free list is bucketed by power-of-two capacity classes:
/// acquire(size_hint) returns a buffer whose retained capacity already
/// covers the hint when one exists, so a small recycled buffer is never
/// handed to a large payload only to be regrown (and a large buffer is not
/// wasted on a 1-byte barrier token while a large send goes empty-handed).
/// Buffers keep their capacity while pooled, so the retained memory
/// converges to the peak number of in-flight messages times their payload
/// sizes — memory the simulation already needed at its peak. The free
/// list is capped; beyond the cap release() simply frees.
class BufferPool {
 public:
  /// Returns a recycled buffer (empty, capacity retained) with capacity of
  /// at least `size_hint` bytes when the free list has one; otherwise the
  /// best it can do is a fresh empty vector the caller's assign will grow.
  /// Thread-safe: senders on any PE call this concurrently.
  std::vector<std::byte> acquire(std::size_t size_hint) {
    const int lo =
        size_hint <= 1
            ? 0
            : std::min(floor_log2(static_cast<std::uint64_t>(size_hint)),
                       kClasses - 1);
    std::lock_guard lock(mu_);
    // Boundary class: its capacities share floor(log2) with the hint but
    // may still fall short of it, so check before taking (in the common
    // case — recurring payload sizes — the first candidate fits).
    {
      auto& cls = free_[static_cast<std::size_t>(lo)];
      for (std::size_t i = cls.size(); i-- > 0;) {
        if (cls[i].capacity() < size_hint) continue;
        std::vector<std::byte> buf = std::move(cls[i]);
        cls[i] = std::move(cls.back());
        cls.pop_back();
        --retained_;
        retained_bytes_ -= buf.capacity();
        return buf;
      }
    }
    // Every buffer in a higher class is large enough by construction.
    for (int c = lo + 1; c < kClasses; ++c) {
      auto& cls = free_[static_cast<std::size_t>(c)];
      if (cls.empty()) continue;
      std::vector<std::byte> buf = std::move(cls.back());
      cls.pop_back();
      --retained_;
      retained_bytes_ -= buf.capacity();
      return buf;
    }
    return {};
  }

  /// Returns a drained payload buffer to its capacity class (cleared,
  /// capacity kept). Buffers beyond the retention caps — count *or* bytes,
  /// the latter so a burst of huge one-off payloads (splitter tables at
  /// large p) cannot pin gigabytes — and moved-from husks with no capacity
  /// are simply dropped.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    buf.clear();
    const int c =
        std::min(floor_log2(static_cast<std::uint64_t>(buf.capacity())),
                 kClasses - 1);
    std::lock_guard lock(mu_);
    if (retained_ < kMaxRetained &&
        retained_bytes_ + buf.capacity() <= kMaxRetainedBytes) {
      retained_bytes_ += buf.capacity();
      free_[static_cast<std::size_t>(c)].push_back(std::move(buf));
      ++retained_;
    }
  }

 private:
  /// Capacity classes 2^0 … 2^47+: class c holds buffers with
  /// floor(log2(capacity)) == c. A hint's own class is capacity-checked;
  /// every buffer in a higher class has capacity >= 2^(c+1) > hint.
  static constexpr int kClasses = 48;
  static constexpr std::size_t kMaxRetained = 8192;
  static constexpr std::size_t kMaxRetainedBytes = 256u << 20;
  std::mutex mu_;
  std::size_t retained_ = 0;
  std::size_t retained_bytes_ = 0;
  std::array<std::vector<std::vector<std::byte>>, kClasses> free_;
};

/// Matching key for point-to-point messages — the (communicator, tag,
/// source) triple a receiver names in recv(). Tag blocks are allocated in
/// SPMD lockstep (Comm::next_tag_block), so a key is never ambiguous.
struct MsgKey {
  std::uint64_t comm_id = 0;
  std::uint64_t tag = 0;
  int src_pe = -1;

  friend bool operator==(const MsgKey&, const MsgKey&) = default;
};

/// Hash for the mailbox's key table (mix64 over the triple).
struct MsgKeyHash {
  std::size_t operator()(const MsgKey& k) const {
    std::uint64_t h = mix64(k.comm_id ^ (k.tag * 0x9e3779b97f4a7c15ULL));
    h ^= mix64(static_cast<std::uint64_t>(k.src_pe) + 0x51ed2701ULL);
    return static_cast<std::size_t>(h);
  }
};

/// One pooled mailbox entry: a Message plus the intrusive link chaining
/// same-key messages in FIFO order (or free-list nodes when recycled).
struct MsgNode {
  Message msg;
  MsgNode* next = nullptr;
};

/// Slab allocator for MsgNodes, shared by all mailboxes of an engine
/// (beside the payload BufferPool). Nodes are carved from chunked slabs,
/// handed out through an intrusive free list and recycled on retrieve, so
/// steady-state deposits allocate nothing; the slabs live until the pool
/// is destroyed (their count converges to the peak number of in-flight
/// messages). Thread-safe: any PE deposits into any mailbox.
class MsgNodePool {
 public:
  MsgNodePool() = default;
  MsgNodePool(const MsgNodePool&) = delete;
  MsgNodePool& operator=(const MsgNodePool&) = delete;

  MsgNode* acquire() {
    std::lock_guard lock(mu_);
    if (free_ == nullptr) grow_locked();
    MsgNode* n = free_;
    free_ = n->next;
    n->next = nullptr;
    if (++in_use_ > high_water_) high_water_ = in_use_;
    return n;
  }

  /// Recycles a node. The caller normally moved the Message out already;
  /// a node carrying a live payload (mailbox teardown) is reset here.
  void release(MsgNode* n) {
    n->msg = Message{};
    std::lock_guard lock(mu_);
    n->next = free_;
    free_ = n;
    --in_use_;
  }

  /// Peak number of nodes simultaneously checked out — the pool's
  /// high-water mark of in-flight messages (EngineStats reporting).
  std::int64_t high_water() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }

 private:
  static constexpr std::size_t kSlabNodes = 256;

  void grow_locked() {
    slabs_.push_back(std::make_unique<MsgNode[]>(kSlabNodes));
    MsgNode* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
  }

  mutable std::mutex mu_;
  MsgNode* free_ = nullptr;
  std::int64_t in_use_ = 0;
  std::int64_t high_water_ = 0;
  std::vector<std::unique_ptr<MsgNode[]>> slabs_;
};

/// Thrown out of a retrieve when the mailbox has been poisoned — the run
/// was aborted (e.g. NetworkError retry exhaustion on some other PE) and a
/// receiver that might otherwise wait forever for a dead sender must unwind
/// instead. Caught by the engine's per-PE body wrapper; user programs never
/// see it.
class RunAborted : public std::runtime_error {
 public:
  RunAborted() : std::runtime_error("simulated run aborted") {}
};

/// One PE's delivery endpoint: an open-addressing key table over pooled
/// FIFO node lists behind one mutex, with a single registered consumer
/// (the owning PE) and targeted wakeups. Any PE may deposit(); only the
/// owner retrieves. The two retrieve flavours implement the two blocking
/// protocols of the engine backends (OS-thread condition wait vs fiber
/// park/wake — see the file comment).
class Mailbox {
 public:
  /// A standalone mailbox owns a private node pool; the engine replaces it
  /// with the shared per-engine pool via set_node_pool before first use.
  Mailbox() : owned_pool_(std::make_unique<MsgNodePool>()) {
    pool_ = owned_pool_.get();
  }

  ~Mailbox() {
    // Return any undrained nodes (teardown after a failed run); release()
    // frees their payloads. The pool outlives the mailbox: the engine
    // declares its shared pool before the PE contexts, and the owned
    // fallback is a member destroyed after this body runs.
    for (Slot& s : slots_) {
      MsgNode* n = s.head;
      while (n != nullptr) {
        MsgNode* next = n->next;
        pool_->release(n);
        n = next;
      }
    }
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Points the mailbox at a shared node pool (the engine's). Must be
  /// called before any deposit.
  void set_node_pool(MsgNodePool* pool) {
    PMPS_ASSERT(size_ == 0);
    pool_ = pool;
  }

  /// Deposits `m`. If the owning PE is registered waiting on exactly `m`'s
  /// key, the registration is consumed and `wake()` is invoked — a targeted
  /// wakeup of the one consumer, never a broadcast. `wake` runs outside the
  /// mailbox lock; the waiter re-checks the store after resuming.
  template <typename Wake>
  void deposit(Message&& m, Wake&& wake) {
    MsgNode* node = pool_->acquire();
    node->msg = std::move(m);
    bool woke = false;
    {
      std::lock_guard lock(mu_);
      const MsgKey key{node->msg.comm_id, node->msg.tag, node->msg.src_pe};
      push_locked(key, node);
      if (waiting_ && waiting_key_ == key) {
        waiting_ = false;
        woke = true;
      }
    }
    if (woke) wake();
  }

  /// Thread-backend deposit: targeted condition-variable notification.
  void deposit(Message&& m) {
    deposit(std::move(m), [this] { cv_.notify_one(); });
  }

  /// Blocks the calling OS thread until a message matching `key` is present
  /// and removes it (legacy thread backend and single-PE inline runs).
  /// Throws RunAborted once the mailbox is poisoned.
  Message retrieve(const MsgKey& key) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (poisoned_) throw RunAborted{};
      if (MsgNode* n = pop_locked(key)) {
        lock.unlock();
        return take(n);
      }
      waiting_ = true;
      waiting_key_ = key;
      cv_.wait(lock);
    }
  }

  /// Fiber-backend retrieve: pops a match if present; otherwise registers
  /// the waiting key, invokes `on_block()` *under the mailbox lock* (the
  /// fiber publishes its blocked state there, so a depositor that observes
  /// the registration can never find it still running) and returns nullopt —
  /// the caller must then park its fiber and retry once woken.
  template <typename OnBlock>
  std::optional<Message> retrieve_or_block(const MsgKey& key,
                                           OnBlock&& on_block) {
    MsgNode* n = nullptr;
    {
      std::lock_guard lock(mu_);
      // Poison check under the lock, before registering: the fiber has not
      // called on_block yet, so it unwinds as a normally running fiber.
      if (poisoned_) throw RunAborted{};
      n = pop_locked(key);
      if (n == nullptr) {
        waiting_ = true;
        waiting_key_ = key;
        on_block();
        return std::nullopt;
      }
    }
    return take(n);
  }

  /// True when no message is queued (used by the engine's end-of-run
  /// leak check: a finished simulation must have drained every mailbox).
  bool empty() const {
    std::lock_guard lock(mu_);
    return size_ == 0;
  }

  /// Aborts the consumer: marks the mailbox poisoned (every subsequent or
  /// pending retrieve throws RunAborted) and, exactly like deposit, consumes
  /// a waiting registration and invokes `wake()` outside the lock so a
  /// parked fiber / blocked thread re-checks and unwinds. Idempotent.
  template <typename Wake>
  void poison(Wake&& wake) {
    bool woke = false;
    {
      std::lock_guard lock(mu_);
      poisoned_ = true;
      if (waiting_) {
        waiting_ = false;
        woke = true;
      }
    }
    if (woke) wake();
  }

  /// Thread-backend poison: condition-variable notification.
  void poison() {
    poison([this] { cv_.notify_one(); });
  }

  /// Clears the poison flag and releases every queued message (payload
  /// buffers are freed with their nodes). Called by the engine before the
  /// run after a failed one, so an aborted simulation's undrained traffic
  /// does not trip the next run's leak check.
  void drain() {
    std::lock_guard lock(mu_);
    for (Slot& s : slots_) {
      MsgNode* n = s.head;
      while (n != nullptr) {
        MsgNode* next = n->next;
        pool_->release(n);
        n = next;
      }
      s.head = nullptr;
      s.tail = nullptr;
    }
    used_ = 0;
    size_ = 0;
    poisoned_ = false;
    waiting_ = false;
  }

 private:
  /// One key-table entry: the key plus its FIFO list. head == nullptr
  /// marks the slot empty.
  struct Slot {
    MsgKey key;
    MsgNode* head = nullptr;
    MsgNode* tail = nullptr;
  };

  static constexpr std::size_t kInitialSlots = 16;

  /// Moves the message out and recycles the node.
  Message take(MsgNode* n) {
    Message m = std::move(n->msg);
    pool_->release(n);
    return m;
  }

  /// Linear probe: the slot holding `key`, or the first empty slot on its
  /// probe path. Terminates because the table never exceeds 70% load.
  std::size_t probe_locked(const MsgKey& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = MsgKeyHash{}(key) & mask;
    while (slots_[i].head != nullptr && !(slots_[i].key == key))
      i = (i + 1) & mask;
    return i;
  }

  void push_locked(const MsgKey& key, MsgNode* node) {
    node->next = nullptr;
    if (slots_.empty()) slots_.resize(kInitialSlots);
    std::size_t i = probe_locked(key);
    if (slots_[i].head == nullptr) {
      // New key: grow first when this insert would cross 70% load, so
      // probe chains stay short and deletion stays cheap.
      if ((used_ + 1) * 10 > slots_.size() * 7) {
        grow_locked();
        i = probe_locked(key);
      }
      Slot& s = slots_[i];
      s.key = key;
      s.head = s.tail = node;
      ++used_;
    } else {
      Slot& s = slots_[i];
      s.tail->next = node;
      s.tail = node;
    }
    ++size_;
  }

  MsgNode* pop_locked(const MsgKey& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t i = probe_locked(key);
    Slot& s = slots_[i];
    if (s.head == nullptr) return nullptr;
    MsgNode* node = s.head;
    s.head = node->next;
    if (s.head == nullptr) erase_locked(i);
    node->next = nullptr;
    --size_;
    return node;
  }

  /// Backward-shift deletion for linear probing: refill slot `i` by
  /// walking forward and moving back the first entry whose probe path
  /// passes through `i`, repeating from the hole that move leaves. No
  /// tombstones, so lookup cost never degrades with churn.
  void erase_locked(std::size_t i) {
    --used_;
    const std::size_t mask = slots_.size() - 1;
    std::size_t j = i;
    for (;;) {
      slots_[i].head = nullptr;
      slots_[i].tail = nullptr;
      std::size_t ideal;
      do {
        j = (j + 1) & mask;
        if (slots_[j].head == nullptr) return;
        ideal = MsgKeyHash{}(slots_[j].key) & mask;
        // Entry j must stay if its ideal slot lies strictly inside (i, j].
      } while (((j - ideal) & mask) < ((j - i) & mask));
      slots_[i] = slots_[j];
      i = j;
    }
  }

  /// Doubles the table (allocation happens only here; once the table
  /// covers the run's concurrent-key working set it never grows again).
  void grow_locked() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    used_ = 0;
    for (const Slot& s : old) {
      if (s.head == nullptr) continue;
      const std::size_t i = probe_locked(s.key);
      slots_[i] = s;
      ++used_;
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<MsgNodePool> owned_pool_;  ///< standalone fallback
  MsgNodePool* pool_;  ///< the engine's shared pool (or owned_pool_)
  std::vector<Slot> slots_;  ///< open-addressing key table (pow2 size)
  std::size_t used_ = 0;     ///< occupied slots (distinct queued keys)
  std::size_t size_ = 0;     ///< queued messages
  bool waiting_ = false;
  bool poisoned_ = false;  ///< run aborted; retrieves throw RunAborted
  MsgKey waiting_key_{};
};

}  // namespace pmps::net
