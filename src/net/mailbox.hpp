// Per-PE mailbox: the delivery endpoint for simulated messages.
//
// Messages are matched on (comm id, tag, source PE). Collectives allocate
// tag blocks in SPMD lockstep (every member of a communicator executes the
// same sequence of operations), so matching is unambiguous and the whole
// simulation is deterministic regardless of OS thread scheduling.
//
// Matching is a hash-map lookup keyed on exactly that triple — the seed
// implementation's O(queue-length) deque scan made every retrieve linear in
// the backlog, which dominated at large p. Wakeups are *targeted*: a mailbox
// has exactly one consumer (its owning PE), which registers the key it is
// waiting for; deposit() only wakes it when the deposited key matches that
// registration, instead of notify_all-broadcasting on every deposit.
//
// Two blocking protocols share the same store: retrieve() blocks the calling
// OS thread on a condition variable (legacy thread backend, single-PE inline
// runs), while retrieve_or_block()/deposit(m, wake) let the fiber engine
// park and re-enqueue PE fibers (see fiber.hpp and Engine::retrieve_message).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"

namespace pmps::net {

/// One simulated in-flight message: the matching triple (communicator,
/// tag, source), the virtual arrival time, and the raw payload bytes.
/// Payload buffers are recycled through the engine's BufferPool — a
/// receiver that consumed the payload hands the buffer back via
/// Comm::release_payload.
struct Message {
  std::uint64_t comm_id = 0;  ///< owning communicator (part of the match key)
  std::uint64_t tag = 0;      ///< tag within the communicator (match key)
  int src_pe = -1;            ///< global PE id of the sender (match key)
  double arrival = 0;     ///< earliest virtual time the payload is available
  std::vector<std::byte> payload;  ///< raw bytes; pooled, see BufferPool
};

/// Free-list of message payload buffers, shared by all PEs of an engine.
///
/// Every simulated send used to heap-allocate a fresh payload vector and
/// every recv freed it — at paper-scale p the allocator churn dominated
/// *host* time (virtual time never sees it). Senders now acquire() a
/// recycled buffer and receivers release() it once the payload has been
/// copied out, so steady-state communication allocates nothing.
///
/// acquire() returns an *empty* buffer (capacity retained from its previous
/// life); the caller assigns the payload, which reuses the capacity when it
/// suffices and grows it otherwise. Buffers keep their capacity while
/// pooled, so the retained memory converges to the peak number of in-flight
/// messages times the typical payload size — memory the simulation already
/// needed at its peak. The free list is capped; beyond the cap release()
/// simply frees.
class BufferPool {
 public:
  /// Returns a recycled buffer (empty, capacity retained) or a fresh empty
  /// vector when the free list is dry. Thread-safe: senders on any PE call
  /// this concurrently.
  std::vector<std::byte> acquire() {
    std::lock_guard lock(mu_);
    if (free_.empty()) return {};
    std::vector<std::byte> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  /// Returns a drained payload buffer to the free list (cleared, capacity
  /// kept). Buffers beyond the retention cap — and moved-from husks with
  /// no capacity — are simply dropped.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    buf.clear();
    std::lock_guard lock(mu_);
    if (free_.size() < kMaxRetained) free_.push_back(std::move(buf));
  }

 private:
  static constexpr std::size_t kMaxRetained = 8192;
  std::mutex mu_;
  std::vector<std::vector<std::byte>> free_;
};

/// Matching key for point-to-point messages — the (communicator, tag,
/// source) triple a receiver names in recv(). Tag blocks are allocated in
/// SPMD lockstep (Comm::next_tag_block), so a key is never ambiguous.
struct MsgKey {
  std::uint64_t comm_id = 0;
  std::uint64_t tag = 0;
  int src_pe = -1;

  friend bool operator==(const MsgKey&, const MsgKey&) = default;
};

/// Hash for the mailbox's per-key queues (mix64 over the triple).
struct MsgKeyHash {
  std::size_t operator()(const MsgKey& k) const {
    std::uint64_t h = mix64(k.comm_id ^ (k.tag * 0x9e3779b97f4a7c15ULL));
    h ^= mix64(static_cast<std::uint64_t>(k.src_pe) + 0x51ed2701ULL);
    return static_cast<std::size_t>(h);
  }
};

/// One PE's delivery endpoint: per-key FIFO queues behind one mutex, with
/// a single registered consumer (the owning PE) and targeted wakeups. Any
/// PE may deposit(); only the owner retrieves. The two retrieve flavours
/// implement the two blocking protocols of the engine backends (OS-thread
/// condition wait vs fiber park/wake — see the file comment).
class Mailbox {
 public:
  /// Deposits `m`. If the owning PE is registered waiting on exactly `m`'s
  /// key, the registration is consumed and `wake()` is invoked — a targeted
  /// wakeup of the one consumer, never a broadcast. `wake` runs outside the
  /// mailbox lock; the waiter re-checks the store after resuming.
  template <typename Wake>
  void deposit(Message&& m, Wake&& wake) {
    bool woke = false;
    {
      std::lock_guard lock(mu_);
      const MsgKey key{m.comm_id, m.tag, m.src_pe};
      queues_[key].push_back(std::move(m));
      ++size_;
      if (waiting_ && waiting_key_ == key) {
        waiting_ = false;
        woke = true;
      }
    }
    if (woke) wake();
  }

  /// Thread-backend deposit: targeted condition-variable notification.
  void deposit(Message&& m) {
    deposit(std::move(m), [this] { cv_.notify_one(); });
  }

  /// Blocks the calling OS thread until a message matching `key` is present
  /// and removes it (legacy thread backend and single-PE inline runs).
  Message retrieve(const MsgKey& key) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (auto m = pop_locked(key)) return std::move(*m);
      waiting_ = true;
      waiting_key_ = key;
      cv_.wait(lock);
    }
  }

  /// Fiber-backend retrieve: pops a match if present; otherwise registers
  /// the waiting key, invokes `on_block()` *under the mailbox lock* (the
  /// fiber publishes its blocked state there, so a depositor that observes
  /// the registration can never find it still running) and returns nullopt —
  /// the caller must then park its fiber and retry once woken.
  template <typename OnBlock>
  std::optional<Message> retrieve_or_block(const MsgKey& key,
                                           OnBlock&& on_block) {
    std::lock_guard lock(mu_);
    if (auto m = pop_locked(key)) return m;
    waiting_ = true;
    waiting_key_ = key;
    on_block();
    return std::nullopt;
  }

  /// True when no message is queued (used by the engine's end-of-run
  /// leak check: a finished simulation must have drained every mailbox).
  bool empty() const {
    std::lock_guard lock(mu_);
    return size_ == 0;
  }

 private:
  std::optional<Message> pop_locked(const MsgKey& key) {
    const auto it = queues_.find(key);
    if (it == queues_.end()) return std::nullopt;
    Message m = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    --size_;
    return m;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Per-key FIFO queues: same-key messages (repeated sends on one tag from
  /// one source) keep their deposit order.
  std::unordered_map<MsgKey, std::deque<Message>, MsgKeyHash> queues_;
  std::size_t size_ = 0;
  bool waiting_ = false;
  MsgKey waiting_key_{};
};

}  // namespace pmps::net
