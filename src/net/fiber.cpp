#include "net/fiber.hpp"

#if PMPS_HAS_FIBERS

#if defined(__ELF__) && (defined(__x86_64__) || defined(__aarch64__))
#define PMPS_FIBER_ASM_CTX 1
#else
#define PMPS_FIBER_ASM_CTX 0
#include <ucontext.h>
#endif

#include <unistd.h>

#include <sys/mman.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"

// ---------------------------------------------------------------------------
// Context switching.
//
// The hot operation of the whole engine is parking/resuming a fiber, so on
// the common ELF targets we use a hand-rolled switch: save the callee-saved
// registers on the suspending stack, swap stack pointers, restore, return.
// ~20 instructions and no kernel involvement. ucontext's swapcontext does
// the same plus a sigprocmask *system call* per switch (it preserves the
// signal mask), which multiplies into milliseconds per simulated run at
// large p — measured ~4× worse end-to-end at p = 256. Other platforms fall
// back to ucontext behind the same three primitives.
// ---------------------------------------------------------------------------

#if PMPS_FIBER_ASM_CTX

extern "C" {
/// Saves the callee-saved state on the current stack, stores the suspended
/// stack pointer to *from_sp, switches to to_sp and resumes whatever was
/// suspended (or freshly prepared) there.
void pmps_ctx_switch(void** from_sp, void* to_sp);
}

#if defined(__x86_64__)
// System V AMD64: rbx, rbp, r12–r15 are callee-saved; mxcsr control bits and
// the x87 control word are preserved across calls by convention, so a
// cooperative switch must carry them too (8 bytes). The entry thunk keeps
// rsp ≡ 8 (mod 16) at function entry, exactly like a `call`.
asm(R"(
.text
.globl pmps_ctx_switch
.hidden pmps_ctx_switch
.type pmps_ctx_switch, @function
pmps_ctx_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size pmps_ctx_switch, .-pmps_ctx_switch

.globl pmps_ctx_thunk
.hidden pmps_ctx_thunk
.type pmps_ctx_thunk, @function
pmps_ctx_thunk:
  movq %r12, %rdi
  subq $8, %rsp
  callq *%rbx
  hlt
.size pmps_ctx_thunk, .-pmps_ctx_thunk
)");

extern "C" void pmps_ctx_thunk();

namespace {

/// Lays out a fresh context on [stack, stack+size) that enters fn(arg) when
/// first switched to; returns the value to pass as to_sp.
void* ctx_make(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
  // 16-align the top, then mirror pmps_ctx_switch's save area: fake frame
  // slot, thunk as return address, six registers, fp control words.
  auto top = reinterpret_cast<std::uintptr_t>(stack + size) & ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<std::uint64_t*>(top);
  *--sp = 0;  // padding: keeps the thunk's entry rsp ≡ 8 (mod 16)
  *--sp = reinterpret_cast<std::uint64_t>(&pmps_ctx_thunk);  // ret target
  *--sp = 0;                                     // rbp
  *--sp = reinterpret_cast<std::uint64_t>(fn);   // rbx
  *--sp = reinterpret_cast<std::uint64_t>(arg);  // r12
  *--sp = 0;                                     // r13
  *--sp = 0;                                     // r14
  *--sp = 0;                                     // r15
  *--sp = 0x037f'0000'1f80ULL;  // fcw (hi half) | default mxcsr (lo half)
  return sp;
}

}  // namespace

#elif defined(__aarch64__)
// AAPCS64: x19–x28, fp (x29), lr (x30) and d8–d15 are callee-saved. The
// switch stores them in a 160-byte frame; ret resumes via the restored x30.
asm(R"(
.text
.globl pmps_ctx_switch
.hidden pmps_ctx_switch
.type pmps_ctx_switch, @function
pmps_ctx_switch:
  sub sp, sp, #160
  stp x19, x20, [sp, #0]
  stp x21, x22, [sp, #16]
  stp x23, x24, [sp, #32]
  stp x25, x26, [sp, #48]
  stp x27, x28, [sp, #64]
  stp x29, x30, [sp, #80]
  stp d8,  d9,  [sp, #96]
  stp d10, d11, [sp, #112]
  stp d12, d13, [sp, #128]
  stp d14, d15, [sp, #144]
  mov x2, sp
  str x2, [x0]
  mov sp, x1
  ldp x19, x20, [sp, #0]
  ldp x21, x22, [sp, #16]
  ldp x23, x24, [sp, #32]
  ldp x25, x26, [sp, #48]
  ldp x27, x28, [sp, #64]
  ldp x29, x30, [sp, #80]
  ldp d8,  d9,  [sp, #96]
  ldp d10, d11, [sp, #112]
  ldp d12, d13, [sp, #128]
  ldp d14, d15, [sp, #144]
  add sp, sp, #160
  ret
.size pmps_ctx_switch, .-pmps_ctx_switch

.globl pmps_ctx_thunk
.hidden pmps_ctx_thunk
.type pmps_ctx_thunk, @function
pmps_ctx_thunk:
  mov x0, x20
  blr x19
  brk #0
.size pmps_ctx_thunk, .-pmps_ctx_thunk
)");

extern "C" void pmps_ctx_thunk();

namespace {

void* ctx_make(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
  auto top = reinterpret_cast<std::uintptr_t>(stack + size) & ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<std::uint64_t*>(top) - 20;  // 160-byte frame
  for (int i = 0; i < 20; ++i) sp[i] = 0;
  sp[0] = reinterpret_cast<std::uint64_t>(fn);               // x19
  sp[1] = reinterpret_cast<std::uint64_t>(arg);              // x20
  sp[11] = reinterpret_cast<std::uint64_t>(&pmps_ctx_thunk);  // x30 (lr)
  return sp;
}

}  // namespace
#endif  // architecture

#endif  // PMPS_FIBER_ASM_CTX

namespace pmps::net {

bool fibers_supported() { return true; }

namespace {

// Fiber lifecycle states (see the protocol comment in fiber.hpp).
enum FiberState : int {
  kRunnable = 0,  ///< in the run queue
  kRunning = 1,   ///< live on a worker
  kBlocking = 2,  ///< announced intent to park, still on the worker's CPU
  kBlocked = 3,   ///< parked, waiting for wake()
  kReady = 4,     ///< wake() raced with kBlocking; worker must re-enqueue
};

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

}  // namespace

/// One fiber's execution context behind the asm/ucontext split: prepare() a
/// fresh entry into fn(arg); resume() from a worker (returns when the fiber
/// suspends or finishes); suspend() from inside the fiber.
struct FiberContext {
#if PMPS_FIBER_ASM_CTX
  void* sp = nullptr;       ///< suspended fiber's stack pointer
  void** resume_slot = nullptr;  ///< where the resuming worker parked itself

  void prepare(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
    sp = ctx_make(stack, size, fn, arg);
  }
  void resume() {
    void* worker_sp = nullptr;
    resume_slot = &worker_sp;
    pmps_ctx_switch(&worker_sp, sp);
  }
  void suspend() { pmps_ctx_switch(&sp, *resume_slot); }
#else
  ucontext_t ctx{};
  ucontext_t* resume_ctx = nullptr;
  void (*entry_fn)(void*) = nullptr;
  void* entry_arg = nullptr;

  void prepare(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
    entry_fn = fn;
    entry_arg = arg;
    PMPS_CHECK(getcontext(&ctx) == 0);
    ctx.uc_stack.ss_sp = stack;
    ctx.uc_stack.ss_size = size;
    ctx.uc_link = nullptr;
    const auto addr = reinterpret_cast<std::uintptr_t>(this);
    // makecontext's variadic entry takes ints; the 64-bit pointer travels as
    // two 32-bit halves. The function-pointer cast is the documented
    // makecontext calling convention.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wcast-function-type"
#endif
    makecontext(&ctx, reinterpret_cast<void (*)()>(&FiberContext::trampoline),
                2, static_cast<unsigned int>(addr >> 32),
                static_cast<unsigned int>(addr & 0xffffffffu));
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
  }
  static void trampoline(unsigned int hi, unsigned int lo) {
    auto* self = reinterpret_cast<FiberContext*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->entry_fn(self->entry_arg);
  }
  void resume() {
    ucontext_t here;
    resume_ctx = &here;
    swapcontext(&here, &ctx);
  }
  void suspend() { swapcontext(&ctx, resume_ctx); }
#endif
};

struct FiberPool::Fiber {
  FiberContext ctx;
  char* stack_base = nullptr;  ///< mmap base (guard page at the low end)
  std::size_t stack_total = 0;
  std::atomic<int> state{kRunnable};
  bool finished = false;
  int index = -1;
  FiberPool* pool = nullptr;
};

/// Fixed-capacity ring of runnable fibers. A fiber is enqueued at most
/// once (the kRunnable state gate), so the queue never holds more than the
/// run's fiber count; run() reserves that capacity up front and the hot
/// push/pop path allocates nothing — a std::deque here allocated a fresh
/// chunk every 64 enqueues in steady state, the last per-message heap cost
/// of the scheduler.
class RunQueue {
 public:
  /// Ensures capacity for `n` queued fibers. Called between runs (queue
  /// empty, no concurrent wakes).
  void reserve(std::size_t n) {
    if (ring_.size() >= n) return;
    PMPS_CHECK(head_ == tail_);
    ring_.assign(next_pow2(n), nullptr);
    head_ = tail_ = 0;
  }
  bool empty() const { return head_ == tail_; }
  void push(FiberPool::Fiber* f) {
    ring_[tail_++ & (ring_.size() - 1)] = f;
  }
  FiberPool::Fiber* pop() { return ring_[head_++ & (ring_.size() - 1)]; }

 private:
  std::vector<FiberPool::Fiber*> ring_;  ///< power-of-two size
  std::uint64_t head_ = 0, tail_ = 0;    ///< free-running (masked on use)
};

struct FiberPool::Impl {
  std::size_t stack_bytes;

  std::mutex mu;
  std::condition_variable work_cv;  ///< workers: run queue non-empty or stop
  std::condition_variable done_cv;  ///< run(): all fibers of this run done
  RunQueue run_queue;
  bool stop = false;
  int run_n = 0;
  int finished = 0;

  const std::function<void(int)>* body = nullptr;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<std::thread> workers;
};

namespace {
thread_local FiberPool::Fiber* tl_current_fiber = nullptr;
}

FiberPool::FiberPool(int num_workers, std::size_t stack_bytes)
    : num_workers_(num_workers), impl_(new Impl) {
  PMPS_CHECK(num_workers >= 1);
  const std::size_t ps = page_size();
  impl_->stack_bytes = ((stack_bytes + ps - 1) / ps) * ps;
  impl_->workers.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    impl_->workers.emplace_back([this] { worker_main(); });
}

FiberPool::~FiberPool() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  for (auto& f : impl_->fibers)
    if (f->stack_base != nullptr) munmap(f->stack_base, f->stack_total);
  delete impl_;
}

bool FiberPool::in_fiber() { return tl_current_fiber != nullptr; }

void FiberPool::prepare_block() {
  Fiber* f = tl_current_fiber;
  PMPS_CHECK_MSG(f != nullptr, "prepare_block outside a fiber");
  f->state.store(kBlocking, std::memory_order_release);
}

void FiberPool::block_current() {
  Fiber* f = tl_current_fiber;
  PMPS_CHECK_MSG(f != nullptr, "block_current outside a fiber");
  // Switch back to the worker; it completes the kBlocking → kBlocked
  // transition (or observes kReady and re-enqueues us immediately).
  f->ctx.suspend();
}

void FiberPool::wake(int index) {
  Fiber* f = impl_->fibers[static_cast<std::size_t>(index)].get();
  for (;;) {
    int s = f->state.load(std::memory_order_acquire);
    if (s == kBlocking) {
      // Still switching out: hand responsibility to its worker.
      if (f->state.compare_exchange_weak(s, kReady,
                                         std::memory_order_acq_rel))
        return;
    } else if (s == kBlocked) {
      if (f->state.compare_exchange_weak(s, kRunnable,
                                         std::memory_order_acq_rel)) {
        {
          std::lock_guard lock(impl_->mu);
          impl_->run_queue.push(f);
        }
        impl_->work_cv.notify_one();
        return;
      }
    } else {
      // A waker only fires after the target registered a wait (state is
      // kBlocking or kBlocked at that point), so this is unreachable; be
      // defensive rather than deadlock on a protocol violation.
      std::this_thread::yield();
    }
  }
}

void FiberPool::trampoline(void* arg) {
  auto* f = static_cast<Fiber*>(arg);
  f->pool->fiber_main(*f);
}

void FiberPool::fiber_main(Fiber& f) {
  try {
    (*impl_->body)(f.index);
  } catch (...) {
    // Same contract as an exception escaping a std::thread: die loudly.
    // Swallowing it instead would hang the run — SPMD peers blocked on this
    // PE's sends would park forever and run() would never see all fibers
    // finish.
    std::fprintf(stderr,
                 "pmps: exception escaped the program on simulated PE %d; "
                 "terminating\n",
                 f.index);
    std::terminate();
  }
  f.finished = true;
  // Back to the worker for good; fiber_main must never return (there is no
  // caller frame underneath the entry thunk).
  for (;;) f.ctx.suspend();
}

void FiberPool::worker_main() {
  for (;;) {
    Fiber* f = nullptr;
    {
      std::unique_lock lock(impl_->mu);
      impl_->work_cv.wait(
          lock, [this] { return impl_->stop || !impl_->run_queue.empty(); });
      if (impl_->run_queue.empty()) return;  // stop requested, nothing queued
      f = impl_->run_queue.pop();
    }

    f->state.store(kRunning, std::memory_order_relaxed);
    tl_current_fiber = f;
    f->ctx.resume();
    tl_current_fiber = nullptr;

    if (f->finished) {
      bool all_done = false;
      {
        std::lock_guard lock(impl_->mu);
        all_done = ++impl_->finished == impl_->run_n;
      }
      if (all_done) impl_->done_cv.notify_all();
    } else {
      int expected = kBlocking;
      if (!f->state.compare_exchange_strong(expected, kBlocked,
                                            std::memory_order_acq_rel)) {
        // A wake() arrived while the fiber was switching out (kReady).
        f->state.store(kRunnable, std::memory_order_relaxed);
        {
          std::lock_guard lock(impl_->mu);
          impl_->run_queue.push(f);
        }
        impl_->work_cv.notify_one();
      }
    }
  }
}

void FiberPool::run(int n, const std::function<void(int)>& body) {
  PMPS_CHECK(n >= 1);
  PMPS_CHECK_MSG(!in_fiber(), "FiberPool::run from inside a pool fiber");
  const std::size_t ps = page_size();

  // Grow the fiber set (stacks are kept and reused across runs).
  while (impl_->fibers.size() < static_cast<std::size_t>(n)) {
    auto f = std::make_unique<Fiber>();
    f->index = static_cast<int>(impl_->fibers.size());
    f->pool = this;
    f->stack_total = impl_->stack_bytes + ps;  // + guard page
    void* base = mmap(nullptr, f->stack_total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    PMPS_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap failed");
    f->stack_base = static_cast<char*>(base);
    // Guard page at the low end — stacks grow downwards, so an overflow
    // faults instead of corrupting the neighbouring fiber's stack.
    PMPS_CHECK(mprotect(f->stack_base, ps, PROT_NONE) == 0);
    impl_->fibers.push_back(std::move(f));
  }

  impl_->body = &body;
  impl_->run_n = n;
  impl_->finished = 0;

  for (int i = 0; i < n; ++i) {
    Fiber* f = impl_->fibers[static_cast<std::size_t>(i)].get();
    f->finished = false;
    f->state.store(kRunnable, std::memory_order_relaxed);
    f->ctx.prepare(f->stack_base + ps, f->stack_total - ps,
                   &FiberPool::trampoline, f);
  }

  {
    std::lock_guard lock(impl_->mu);
    impl_->run_queue.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      impl_->run_queue.push(impl_->fibers[static_cast<std::size_t>(i)].get());
  }
  impl_->work_cv.notify_all();

  {
    std::unique_lock lock(impl_->mu);
    impl_->done_cv.wait(lock, [this] { return impl_->finished == impl_->run_n; });
  }
  impl_->body = nullptr;
}

}  // namespace pmps::net

#else  // !PMPS_HAS_FIBERS

namespace pmps::net {
bool fibers_supported() { return false; }
}  // namespace pmps::net

#endif  // PMPS_HAS_FIBERS
