#include "net/fiber.hpp"

#if PMPS_HAS_FIBERS

#if defined(__ELF__) && (defined(__x86_64__) || defined(__aarch64__))
#define PMPS_FIBER_ASM_CTX 1
#else
#define PMPS_FIBER_ASM_CTX 0
#include <ucontext.h>
#endif

#include <unistd.h>

#include <sys/mman.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"

// ---------------------------------------------------------------------------
// Context switching.
//
// The hot operation of the whole engine is parking/resuming a fiber, so on
// the common ELF targets we use a hand-rolled switch: save the callee-saved
// registers on the suspending stack, swap stack pointers, restore, return.
// ~20 instructions and no kernel involvement. ucontext's swapcontext does
// the same plus a sigprocmask *system call* per switch (it preserves the
// signal mask), which multiplies into milliseconds per simulated run at
// large p — measured ~4× worse end-to-end at p = 256. Other platforms fall
// back to ucontext behind the same three primitives.
// ---------------------------------------------------------------------------

#if PMPS_FIBER_ASM_CTX

extern "C" {
/// Saves the callee-saved state on the current stack, stores the suspended
/// stack pointer to *from_sp, switches to to_sp and resumes whatever was
/// suspended (or freshly prepared) there.
void pmps_ctx_switch(void** from_sp, void* to_sp);
}

#if defined(__x86_64__)
// System V AMD64: rbx, rbp, r12–r15 are callee-saved; mxcsr control bits and
// the x87 control word are preserved across calls by convention, so a
// cooperative switch must carry them too (8 bytes). The entry thunk keeps
// rsp ≡ 8 (mod 16) at function entry, exactly like a `call`.
asm(R"(
.text
.globl pmps_ctx_switch
.hidden pmps_ctx_switch
.type pmps_ctx_switch, @function
pmps_ctx_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size pmps_ctx_switch, .-pmps_ctx_switch

.globl pmps_ctx_thunk
.hidden pmps_ctx_thunk
.type pmps_ctx_thunk, @function
pmps_ctx_thunk:
  movq %r12, %rdi
  subq $8, %rsp
  callq *%rbx
  hlt
.size pmps_ctx_thunk, .-pmps_ctx_thunk
)");

extern "C" void pmps_ctx_thunk();

namespace {

/// Lays out a fresh context on [stack, stack+size) that enters fn(arg) when
/// first switched to; returns the value to pass as to_sp.
void* ctx_make(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
  // 16-align the top, then mirror pmps_ctx_switch's save area: fake frame
  // slot, thunk as return address, six registers, fp control words.
  auto top = reinterpret_cast<std::uintptr_t>(stack + size) & ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<std::uint64_t*>(top);
  *--sp = 0;  // padding: keeps the thunk's entry rsp ≡ 8 (mod 16)
  *--sp = reinterpret_cast<std::uint64_t>(&pmps_ctx_thunk);  // ret target
  *--sp = 0;                                     // rbp
  *--sp = reinterpret_cast<std::uint64_t>(fn);   // rbx
  *--sp = reinterpret_cast<std::uint64_t>(arg);  // r12
  *--sp = 0;                                     // r13
  *--sp = 0;                                     // r14
  *--sp = 0;                                     // r15
  *--sp = 0x037f'0000'1f80ULL;  // fcw (hi half) | default mxcsr (lo half)
  return sp;
}

}  // namespace

#elif defined(__aarch64__)
// AAPCS64: x19–x28, fp (x29), lr (x30) and d8–d15 are callee-saved. The
// switch stores them in a 160-byte frame; ret resumes via the restored x30.
asm(R"(
.text
.globl pmps_ctx_switch
.hidden pmps_ctx_switch
.type pmps_ctx_switch, @function
pmps_ctx_switch:
  sub sp, sp, #160
  stp x19, x20, [sp, #0]
  stp x21, x22, [sp, #16]
  stp x23, x24, [sp, #32]
  stp x25, x26, [sp, #48]
  stp x27, x28, [sp, #64]
  stp x29, x30, [sp, #80]
  stp d8,  d9,  [sp, #96]
  stp d10, d11, [sp, #112]
  stp d12, d13, [sp, #128]
  stp d14, d15, [sp, #144]
  mov x2, sp
  str x2, [x0]
  mov sp, x1
  ldp x19, x20, [sp, #0]
  ldp x21, x22, [sp, #16]
  ldp x23, x24, [sp, #32]
  ldp x25, x26, [sp, #48]
  ldp x27, x28, [sp, #64]
  ldp x29, x30, [sp, #80]
  ldp d8,  d9,  [sp, #96]
  ldp d10, d11, [sp, #112]
  ldp d12, d13, [sp, #128]
  ldp d14, d15, [sp, #144]
  add sp, sp, #160
  ret
.size pmps_ctx_switch, .-pmps_ctx_switch

.globl pmps_ctx_thunk
.hidden pmps_ctx_thunk
.type pmps_ctx_thunk, @function
pmps_ctx_thunk:
  mov x0, x20
  blr x19
  brk #0
.size pmps_ctx_thunk, .-pmps_ctx_thunk
)");

extern "C" void pmps_ctx_thunk();

namespace {

void* ctx_make(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
  auto top = reinterpret_cast<std::uintptr_t>(stack + size) & ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<std::uint64_t*>(top) - 20;  // 160-byte frame
  for (int i = 0; i < 20; ++i) sp[i] = 0;
  sp[0] = reinterpret_cast<std::uint64_t>(fn);               // x19
  sp[1] = reinterpret_cast<std::uint64_t>(arg);              // x20
  sp[11] = reinterpret_cast<std::uint64_t>(&pmps_ctx_thunk);  // x30 (lr)
  return sp;
}

}  // namespace
#endif  // architecture

#endif  // PMPS_FIBER_ASM_CTX

namespace pmps::net {

bool fibers_supported() { return true; }

namespace {

// Fiber lifecycle states (see the protocol comment in fiber.hpp).
enum FiberState : int {
  kRunnable = 0,  ///< in the run queue
  kRunning = 1,   ///< live on a worker
  kBlocking = 2,  ///< announced intent to park, still on the worker's CPU
  kBlocked = 3,   ///< parked, waiting for wake()
  kReady = 4,     ///< wake() raced with kBlocking; worker must re-enqueue
};

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

}  // namespace

/// One fiber's execution context behind the asm/ucontext split: prepare() a
/// fresh entry into fn(arg); resume() from a worker (returns when the fiber
/// suspends or finishes); suspend() from inside the fiber.
struct FiberContext {
#if PMPS_FIBER_ASM_CTX
  void* sp = nullptr;       ///< suspended fiber's stack pointer
  void** resume_slot = nullptr;  ///< where the resuming worker parked itself

  void prepare(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
    sp = ctx_make(stack, size, fn, arg);
  }
  void resume() {
    void* worker_sp = nullptr;
    resume_slot = &worker_sp;
    pmps_ctx_switch(&worker_sp, sp);
  }
  void suspend() { pmps_ctx_switch(&sp, *resume_slot); }
#else
  ucontext_t ctx{};
  ucontext_t* resume_ctx = nullptr;
  void (*entry_fn)(void*) = nullptr;
  void* entry_arg = nullptr;

  void prepare(char* stack, std::size_t size, void (*fn)(void*), void* arg) {
    entry_fn = fn;
    entry_arg = arg;
    PMPS_CHECK(getcontext(&ctx) == 0);
    ctx.uc_stack.ss_sp = stack;
    ctx.uc_stack.ss_size = size;
    ctx.uc_link = nullptr;
    const auto addr = reinterpret_cast<std::uintptr_t>(this);
    // makecontext's variadic entry takes ints; the 64-bit pointer travels as
    // two 32-bit halves. The function-pointer cast is the documented
    // makecontext calling convention.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wcast-function-type"
#endif
    makecontext(&ctx, reinterpret_cast<void (*)()>(&FiberContext::trampoline),
                2, static_cast<unsigned int>(addr >> 32),
                static_cast<unsigned int>(addr & 0xffffffffu));
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
  }
  static void trampoline(unsigned int hi, unsigned int lo) {
    auto* self = reinterpret_cast<FiberContext*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->entry_fn(self->entry_arg);
  }
  void resume() {
    ucontext_t here;
    resume_ctx = &here;
    swapcontext(&here, &ctx);
  }
  void suspend() { swapcontext(&ctx, resume_ctx); }
#endif
};

namespace {

/// Shared pool of fiber stacks. A fiber acquires a stack on its first
/// resume and returns it on exit, so the pool's stack count converges to
/// the peak number of concurrently live fibers and stacks are reused
/// across fibers and runs (their touched pages stay warm).
///
/// Stacks are carved from mmap'd slabs with two layouts:
///   - guarded (the first `guarded_cap` stacks): [guard][stack] pairs, an
///     overflow faults immediately — 2 VMAs per stack;
///   - packed (beyond the cap): one leading guard page, then many stacks
///     back to back — 2 VMAs per slab of 64 stacks. This is what makes
///     p = 2^15 possible at all: 32768 individually guarded stacks need
///     65536 VMAs, above the default vm.max_map_count (65530). Packed
///     stacks trade the per-stack guard for density; only the slab's lowest
///     stack faults on overflow, the rest would first overrun a neighbour's
///     cold end (256 KiB of headroom at the default stack size).
///
/// Residency accounting tracks, per stack, the lowest address known
/// touched (`low_touch`); parking fibers report their saved stack pointer
/// and long-lived collective parks madvise the cold span below the live
/// frames back to the kernel (reclaim()).
class StackPool {
 public:
  struct Stack {
    char* lo = nullptr;        ///< lowest usable address (above any guard)
    char* hi = nullptr;        ///< one past the highest usable address
    char* low_touch = nullptr; ///< lowest address believed resident
    bool guarded = false;
  };

  explicit StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {
    guarded_cap_ = 4096;
    if (const char* env = std::getenv("PMPS_FIBER_GUARDED_STACKS")) {
      const long v = std::atol(env);
      if (v >= 0) guarded_cap_ = static_cast<std::size_t>(v);
    }
  }

  ~StackPool() {
    for (const Slab& s : slabs_) munmap(s.base, s.bytes);
  }

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  Stack* acquire() {
    std::lock_guard lock(mu_);
    acquires_.fetch_add(1, std::memory_order_relaxed);
    if (free_.empty()) allocate_slab_locked();
    Stack* s = free_.back();
    free_.pop_back();
    return s;
  }

  void release(Stack* s) {
    std::lock_guard lock(mu_);
    free_.push_back(s);
  }

  /// Updates residency accounting from a parked fiber's saved stack
  /// pointer. Called by the owning worker only (the fiber is not
  /// concurrently resumable), so the Stack fields need no lock.
  void note_touch(Stack* s, void* sp) {
    char* touched = page_floor(sp);
    if (touched >= s->low_touch) return;
    const auto delta = static_cast<std::int64_t>(s->low_touch - touched);
    s->low_touch = touched;
    const std::int64_t cur =
        cur_touched_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t peak = peak_touched_.load(std::memory_order_relaxed);
    while (cur > peak &&
           !peak_touched_.compare_exchange_weak(peak, cur,
                                                std::memory_order_relaxed)) {
    }
  }

  /// Returns the cold span of a long-parked stack to the kernel: everything
  /// below one page under the live frames (red-zone margin) is
  /// MADV_DONTNEED'd, so the parked fiber keeps roughly one committed page
  /// plus its live frames. Must run while the fiber is still kBlocking —
  /// i.e. before the worker publishes kBlocked — so no other worker can
  /// resume onto the stack mid-madvise.
  void reclaim(Stack* s, void* sp) {
    char* keep_from = page_floor(sp) - page_size();
    if (keep_from <= s->low_touch) return;  // nothing resident below margin
    const auto span = static_cast<std::size_t>(keep_from - s->low_touch);
    if (span < 4 * page_size()) return;  // not worth a syscall
    if (madvise(s->low_touch, span, MADV_DONTNEED) != 0) return;
    reclaims_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_bytes_.fetch_add(static_cast<std::int64_t>(span),
                               std::memory_order_relaxed);
    cur_touched_.fetch_sub(static_cast<std::int64_t>(span),
                           std::memory_order_relaxed);
    s->low_touch = keep_from;
  }

  std::size_t usable_bytes() const { return stack_bytes_; }

  FiberStackStats stats() const {
    FiberStackStats st;
    {
      std::lock_guard lock(mu_);
      st.stacks = static_cast<std::int64_t>(all_.size());
      st.guarded_stacks = guarded_count_;
      st.stack_bytes_reserved = reserved_;
    }
    st.stack_acquires = acquires_.load(std::memory_order_relaxed);
    st.peak_stack_bytes = peak_touched_.load(std::memory_order_relaxed);
    st.current_stack_bytes = cur_touched_.load(std::memory_order_relaxed);
    st.reclaims = reclaims_.load(std::memory_order_relaxed);
    st.reclaimed_bytes = reclaimed_bytes_.load(std::memory_order_relaxed);
    return st;
  }

 private:
  struct Slab {
    char* base;
    std::size_t bytes;
  };

  static constexpr std::size_t kGuardedPerSlab = 32;
  static constexpr std::size_t kPackedPerSlab = 64;

  static char* page_floor(void* p) {
    return reinterpret_cast<char*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~(page_size() - 1));
  }

  void allocate_slab_locked() {
    const std::size_t ps = page_size();
    const bool guarded = all_.size() < guarded_cap_;
    const std::size_t count = guarded ? kGuardedPerSlab : kPackedPerSlab;
    const std::size_t bytes =
        guarded ? count * (ps + stack_bytes_) : ps + count * stack_bytes_;
    void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    PMPS_CHECK_MSG(base != MAP_FAILED, "fiber stack slab mmap failed");
    slabs_.push_back({static_cast<char*>(base), bytes});
    reserved_ += static_cast<std::int64_t>(count * stack_bytes_);
    char* p = static_cast<char*>(base);
    if (!guarded) {
      PMPS_CHECK(mprotect(p, ps, PROT_NONE) == 0);
      p += ps;
    }
    all_.reserve(all_.size() + count);
    free_.reserve(all_.capacity());
    for (std::size_t i = 0; i < count; ++i) {
      if (guarded) {
        PMPS_CHECK(mprotect(p, ps, PROT_NONE) == 0);
        p += ps;
      }
      auto s = std::make_unique<Stack>();
      s->lo = p;
      s->hi = p + stack_bytes_;
      s->low_touch = s->hi;
      s->guarded = guarded;
      if (guarded) ++guarded_count_;
      free_.push_back(s.get());
      all_.push_back(std::move(s));
      p += stack_bytes_;
    }
  }

  const std::size_t stack_bytes_;
  std::size_t guarded_cap_;

  mutable std::mutex mu_;
  std::vector<Slab> slabs_;
  std::vector<std::unique_ptr<Stack>> all_;
  std::vector<Stack*> free_;
  std::int64_t reserved_ = 0;
  std::int64_t guarded_count_ = 0;

  std::atomic<std::int64_t> acquires_{0};
  std::atomic<std::int64_t> cur_touched_{0};
  std::atomic<std::int64_t> peak_touched_{0};
  std::atomic<std::int64_t> reclaims_{0};
  std::atomic<std::int64_t> reclaimed_bytes_{0};
};

}  // namespace

struct FiberPool::Fiber {
  FiberContext ctx;
  StackPool::Stack* stack = nullptr;  ///< pooled stack; null until 1st resume
  std::atomic<int> state{kRunnable};
  bool finished = false;
  bool prepared = false;   ///< context laid out on `stack` for this launch
  bool long_wait = false;  ///< next park is a long-lived collective wait
  int index = -1;
  int home = 0;  ///< worker shard this fiber is pinned to (index % workers)
  FiberPool* pool = nullptr;
  FiberBatch::State* batch = nullptr;  ///< owning batch (body, done counter)
};

/// Shared state of one batch: its fibers, the launch's body, and the
/// completion accounting. Fibers of several batches coexist in the shard
/// run queues; each fiber carries a pointer back here.
struct FiberBatch::State {
  FiberPool* pool = nullptr;
  int n = 0;
  std::vector<std::unique_ptr<FiberPool::Fiber>> fibers;

  std::mutex mu;
  std::condition_variable cv;  ///< wait(): finished == n
  int finished = 0;
  bool launched = false;  ///< a launch happened (finished/n meaningful)
  std::function<void(int)> body;
  std::function<void()> on_complete;  ///< moved out by the finishing worker
};

/// Fixed-capacity ring of runnable fibers. A fiber is enqueued at most
/// once (the kRunnable state gate), so the queue never holds more than the
/// shard's live fiber count; launch() reserves that capacity up front and
/// the hot push/pop path allocates nothing — a std::deque here allocated a
/// fresh chunk every 64 enqueues in steady state, the last per-message heap
/// cost of the scheduler.
class RunQueue {
 public:
  /// Ensures capacity for `n` queued fibers, preserving queued entries
  /// (a batch launch can land while another batch's fibers are queued).
  /// Called under the shard lock.
  void reserve(std::size_t n) {
    if (ring_.size() >= n) return;
    std::vector<FiberPool::Fiber*> old = std::move(ring_);
    ring_.assign(next_pow2(n), nullptr);
    const std::uint64_t queued = tail_ - head_;
    for (std::uint64_t i = 0; i < queued; ++i)
      ring_[i] = old[(head_ + i) & (old.size() - 1)];
    head_ = 0;
    tail_ = queued;
  }
  bool empty() const { return head_ == tail_; }
  void push(FiberPool::Fiber* f) {
    ring_[tail_++ & (ring_.size() - 1)] = f;
  }
  FiberPool::Fiber* pop() { return ring_[head_++ & (ring_.size() - 1)]; }

 private:
  std::vector<FiberPool::Fiber*> ring_;  ///< power-of-two size
  std::uint64_t head_ = 0, tail_ = 0;    ///< free-running (masked on use)
};

/// One worker's scheduling shard: its own run queue behind its own
/// mutex/condvar. Fibers are pinned to shard index % workers, and a wake()
/// targets the woken fiber's home shard only — the scheduler has no global
/// lock on the warm deposit→retrieve→wake path.
struct FiberPool::Shard {
  std::mutex mu;
  std::condition_variable cv;  ///< this worker: queue non-empty or stop
  RunQueue q;
  std::size_t live = 0;  ///< unfinished fibers pinned here (queue capacity)
  bool stop = false;
};

struct FiberPool::Impl {
  std::size_t stack_bytes;
  StackPool stack_pool;
  std::vector<std::unique_ptr<Shard>> shards;  ///< one per worker
  std::vector<std::thread> workers;

  explicit Impl(std::size_t sb) : stack_bytes(sb), stack_pool(sb) {}
};

namespace {
thread_local FiberPool::Fiber* tl_current_fiber = nullptr;
}

FiberPool::FiberPool(int num_workers, std::size_t stack_bytes)
    : num_workers_(num_workers), impl_(nullptr) {
  PMPS_CHECK(num_workers >= 1);
  const std::size_t ps = page_size();
  impl_ = new Impl(((stack_bytes + ps - 1) / ps) * ps);
  impl_->shards.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    impl_->shards.push_back(std::make_unique<Shard>());
  impl_->workers.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    impl_->workers.emplace_back([this, w] { worker_main(w); });
}

FiberPool::~FiberPool() {
  for (auto& sh : impl_->shards) {
    {
      std::lock_guard lock(sh->mu);
      sh->stop = true;
    }
    sh->cv.notify_all();
  }
  for (auto& t : impl_->workers) t.join();
  delete impl_;  // StackPool unmaps the slabs
}

bool FiberPool::in_fiber() { return tl_current_fiber != nullptr; }

FiberStackStats FiberPool::stack_stats() const {
  return impl_->stack_pool.stats();
}

bool FiberPool::reclaim_supported() { return PMPS_FIBER_ASM_CTX != 0; }

void FiberPool::prepare_block(bool long_wait) {
  Fiber* f = tl_current_fiber;
  PMPS_CHECK_MSG(f != nullptr, "prepare_block outside a fiber");
  f->long_wait = long_wait;
  f->state.store(kBlocking, std::memory_order_release);
}

void FiberPool::block_current() {
  Fiber* f = tl_current_fiber;
  PMPS_CHECK_MSG(f != nullptr, "block_current outside a fiber");
  // Switch back to the worker; it completes the kBlocking → kBlocked
  // transition (or observes kReady and re-enqueues us immediately).
  f->ctx.suspend();
}

void* FiberPool::current_fiber_handle() { return tl_current_fiber; }

void FiberPool::wake_fiber_handle(void* handle) {
  auto* f = static_cast<Fiber*>(handle);
  PMPS_CHECK_MSG(f != nullptr, "wake_fiber_handle on a null handle");
  f->pool->wake_fiber(f);
}

void FiberPool::wake_fiber(Fiber* f) {
  Shard& home = *impl_->shards[static_cast<std::size_t>(f->home)];
  for (;;) {
    int s = f->state.load(std::memory_order_acquire);
    if (s == kBlocking) {
      // Still switching out: hand responsibility to its worker.
      if (f->state.compare_exchange_weak(s, kReady,
                                         std::memory_order_acq_rel))
        return;
    } else if (s == kBlocked) {
      if (f->state.compare_exchange_weak(s, kRunnable,
                                         std::memory_order_acq_rel)) {
        {
          std::lock_guard lock(home.mu);
          home.q.push(f);
        }
        home.cv.notify_one();
        return;
      }
    } else {
      // A waker only fires after the target registered a wait (state is
      // kBlocking or kBlocked at that point), so this is unreachable; be
      // defensive rather than deadlock on a protocol violation.
      std::this_thread::yield();
    }
  }
}

void FiberPool::trampoline(void* arg) {
  auto* f = static_cast<Fiber*>(arg);
  f->pool->fiber_main(*f);
}

void FiberPool::fiber_main(Fiber& f) {
  try {
    f.batch->body(f.index);
  } catch (...) {
    // Same contract as an exception escaping a std::thread: die loudly.
    // Swallowing it instead would hang the run — SPMD peers blocked on this
    // PE's sends would park forever and run() would never see all fibers
    // finish.
    std::fprintf(stderr,
                 "pmps: exception escaped the program on simulated PE %d; "
                 "terminating\n",
                 f.index);
    std::terminate();
  }
  f.finished = true;
  // Back to the worker for good; fiber_main must never return (there is no
  // caller frame underneath the entry thunk).
  for (;;) f.ctx.suspend();
}

void FiberPool::worker_main(int shard) {
  Shard& sh = *impl_->shards[static_cast<std::size_t>(shard)];
  for (;;) {
    Fiber* f = nullptr;
    {
      std::unique_lock lock(sh.mu);
      sh.cv.wait(lock, [&sh] { return sh.stop || !sh.q.empty(); });
      if (sh.q.empty()) return;  // stop requested, nothing queued
      f = sh.q.pop();
    }

    if (!f->prepared) {
      // First resume of this run: take a pooled stack and lay the entry
      // context out on it.
      f->stack = impl_->stack_pool.acquire();
      f->ctx.prepare(f->stack->lo, impl_->stack_pool.usable_bytes(),
                     &FiberPool::trampoline, f);
      f->prepared = true;
    }

    f->state.store(kRunning, std::memory_order_relaxed);
    tl_current_fiber = f;
    f->ctx.resume();
    tl_current_fiber = nullptr;

    if (f->finished) {
      // Fiber exit: the stack goes back to the pool (its touched pages stay
      // warm for the next acquirer).
      impl_->stack_pool.release(f->stack);
      f->stack = nullptr;
      f->prepared = false;
      {
        std::lock_guard lock(sh.mu);
        --sh.live;
      }
      FiberBatch::State* b = f->batch;
      std::function<void()> complete;
      {
        std::lock_guard lock(b->mu);
        if (++b->finished == b->n) {
          // Move the hook out before releasing anything: once wait()
          // unblocks, the batch owner may destroy the batch, so the worker
          // must only touch this local copy afterwards. notify under the
          // lock for the same reason.
          complete = std::move(b->on_complete);
          b->on_complete = nullptr;
          b->cv.notify_all();
        }
      }
      if (complete) complete();
    } else {
#if PMPS_FIBER_ASM_CTX
      impl_->stack_pool.note_touch(f->stack, f->ctx.sp);
      // Long-lived collective park: return the cold stack span to the
      // kernel. This must happen while the state is still kBlocking — a
      // waker can only flag kReady then, never resume the fiber, so the
      // madvise cannot race a live stack. (Skip if a wake already raced:
      // the fiber is about to run again.)
      if (f->long_wait && f->state.load(std::memory_order_acquire) == kBlocking)
        impl_->stack_pool.reclaim(f->stack, f->ctx.sp);
#endif
      f->long_wait = false;
      int expected = kBlocking;
      if (!f->state.compare_exchange_strong(expected, kBlocked,
                                            std::memory_order_acq_rel)) {
        // A wake() arrived while the fiber was switching out (kReady).
        f->state.store(kRunnable, std::memory_order_relaxed);
        {
          std::lock_guard lock(sh.mu);
          sh.q.push(f);
        }
        sh.cv.notify_one();
      }
    }
  }
}

std::shared_ptr<FiberBatch> FiberPool::create_batch(int n) {
  PMPS_CHECK(n >= 1);
  auto batch = std::shared_ptr<FiberBatch>(new FiberBatch());
  FiberBatch::State& st = *batch->st_;
  st.pool = this;
  st.n = n;
  st.fibers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto f = std::make_unique<Fiber>();
    f->index = i;
    f->home = i % num_workers_;
    f->pool = this;
    f->batch = &st;
    st.fibers.push_back(std::move(f));
  }
  return batch;
}

void FiberPool::launch(FiberBatch& batch, std::function<void(int)> body,
                       std::function<void()> on_complete) {
  FiberBatch::State& st = *batch.st_;
  PMPS_CHECK(st.pool == this);
  {
    std::lock_guard lock(st.mu);
    PMPS_CHECK_MSG(!st.launched || st.finished == st.n,
                   "FiberBatch launched while a launch is in flight");
    st.launched = true;
    st.finished = 0;
    st.body = std::move(body);
    st.on_complete = std::move(on_complete);
  }

  const auto n = static_cast<std::size_t>(st.n);
  for (std::size_t i = 0; i < n; ++i) {
    Fiber* f = st.fibers[i].get();
    f->finished = false;
    f->prepared = false;
    f->long_wait = false;
    f->state.store(kRunnable, std::memory_order_relaxed);
  }

  const auto w = static_cast<std::size_t>(num_workers_);
  for (std::size_t s = 0; s < w; ++s) {
    Shard& sh = *impl_->shards[s];
    const std::size_t mine = (n + w - 1 - s) / w;
    if (mine == 0) continue;
    {
      std::lock_guard lock(sh.mu);
      sh.live += mine;
      sh.q.reserve(sh.live);
      for (std::size_t i = s; i < n; i += w) sh.q.push(st.fibers[i].get());
    }
    sh.cv.notify_one();
  }
}

void FiberPool::run(int n, const std::function<void(int)>& body) {
  PMPS_CHECK_MSG(!in_fiber(), "FiberPool::run from inside a pool fiber");
  auto batch = create_batch(n);
  launch(*batch, body);
  batch->wait();
}

FiberBatch::FiberBatch() : st_(std::make_unique<State>()) {}

FiberBatch::~FiberBatch() = default;

void FiberBatch::wake(int index) {
  st_->pool->wake_fiber(st_->fibers[static_cast<std::size_t>(index)].get());
}

void FiberBatch::wait() {
  std::unique_lock lock(st_->mu);
  st_->cv.wait(lock,
               [this] { return !st_->launched || st_->finished == st_->n; });
}

bool FiberBatch::done() const {
  std::lock_guard lock(st_->mu);
  return !st_->launched || st_->finished == st_->n;
}

int FiberBatch::size() const { return st_->n; }

}  // namespace pmps::net

#else  // !PMPS_HAS_FIBERS

namespace pmps::net {
bool fibers_supported() { return false; }
}  // namespace pmps::net

#endif  // PMPS_HAS_FIBERS
