// Pluggable network-fault model for the simulated cluster.
//
// The paper's robustness claims — bounded startup counts, short critical
// paths — are about real machines, where links jitter, packets drop, and
// individual PEs straggle. The clean single-ported α–β model of machine.hpp
// derives that robustness; a NetworkModel makes it *observable*: it decides,
// per message transmission attempt, how much slower the link is
// (latency_factor / extra_delay), whether the data or its acknowledgement is
// lost (drop_data / drop_ack), and how much slower each PE computes
// (compute_dilation).
//
// Contract (docs/DESIGN.md §10):
//
//  * The default is no model at all (MachineParams::model == nullptr); the
//    engine then takes the exact pre-existing cost path, bit for bit. A
//    model whose hooks all return the neutral values is also bit-identical:
//    every formula below multiplies by 1.0 or adds 0.0, which are exact.
//  * Every hook must be a pure function of (seed, src, dst, seq, attempt,
//    ack) — never of host state, call order across PEs, or wall-clock time.
//    Each sender's `seq` counter advances deterministically with its SPMD
//    program, so a fault schedule is replayed bit-identically for a given
//    seed, regardless of engine backend or worker count.
//  * Lossy models (lossy() == true) route every network send through a
//    stop-and-wait ack/timeout/retransmit protocol simulated in virtual
//    time at the send site (simulate_reliable_send): the sender transmits,
//    an ack returns for every delivered copy, and a missing ack after the
//    (backed-off) timeout triggers a retransmission, at most max_retries
//    times. Acks cost no virtual time on the success path — with zero loss
//    the protocol is bit-identical to the clean model. Exactly one copy of
//    the message enters the destination mailbox (the transport suppresses
//    duplicate data; the sender ignores duplicate and out-of-order acks —
//    both are counted in CommStats), deposits stay in sender program order,
//    so per-key FIFO matching is preserved even when retransmitted arrival
//    times are reordered. Retry exhaustion aborts the whole run with a
//    NetworkError (Engine poisons every mailbox — a clean error, no hang).

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/machine.hpp"

namespace pmps::net {

/// Raised when a lossy run cannot continue (retry exhaustion), and rethrown
/// by Engine::run after every PE has unwound. Never thrown under the clean
/// model.
class NetworkError : public std::runtime_error {
 public:
  explicit NetworkError(const std::string& what) : std::runtime_error(what) {}
};

/// Stop-and-wait reliability parameters used by lossy models.
struct RetransmitParams {
  double rto = 100e-6;        ///< retransmit timeout after a transmission (s)
  double backoff = 2.0;       ///< timeout multiplier per retry
  int max_retries = 4;        ///< retransmissions after the first attempt
  std::size_t ack_bytes = 8;  ///< simulated ack payload (sets ack transit)
};

/// One transmission attempt, as seen by the model's decision hooks.
struct MsgAttempt {
  int src_pe = -1;
  int dst_pe = -1;
  LinkLevel level = LinkLevel::kGlobal;
  std::size_t bytes = 0;     ///< payload bytes (ack_bytes for ack == true)
  std::uint64_t seq = 0;     ///< per-sender message ordinal (resets per run)
  int attempt = 0;           ///< 0 = first transmission, k = k-th retry
  bool ack = false;          ///< true when deciding about the returning ack
};

/// Base class: the clean network. Every hook returns the neutral value, so
/// installing a plain NetworkModel is bit-identical to installing none.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// True when drop_data/drop_ack may fire: enables the ack/retransmit
  /// layer for every network send (even if the rates are zero).
  virtual bool lossy() const { return false; }

  /// Multiplier (≥ 0) on the α–β transmission cost of this attempt.
  virtual double latency_factor(const MsgAttempt&) const { return 1.0; }

  /// Extra transit seconds between transmission end and arrival (the
  /// scripted models use this for exact per-message delivery latencies).
  virtual double extra_delay(const MsgAttempt&) const { return 0.0; }

  /// True when this data transmission attempt is lost.
  virtual bool drop_data(const MsgAttempt&) const { return false; }

  /// True when the ack for a delivered attempt is lost (called with
  /// ack == true).
  virtual bool drop_ack(const MsgAttempt&) const { return false; }

  /// Multiplier (≥ 1) on local-computation charges of PE `pe`
  /// (Comm::charge); 1.0 for healthy PEs.
  virtual double compute_dilation(int) const { return 1.0; }

  /// Reliability parameters used when lossy().
  virtual RetransmitParams retransmit() const { return {}; }
};

/// Outcome of one reliable (stop-and-wait) send, in seconds *elapsed since
/// the protocol started* so the caller can charge durations without
/// re-rounding absolute clocks.
struct ReliableOutcome {
  bool delivered = false;  ///< false: retry budget exhausted without an ack
  double finish_dt = 0;    ///< sender busy until start + finish_dt
  double arrival_dt = 0;   ///< first copy reaches the destination
  int attempts = 0;        ///< transmissions performed (1 = no retransmit)
  int retransmits = 0;     ///< attempts - 1
  std::int64_t data_drops = 0;  ///< lost data transmissions
  std::int64_t ack_drops = 0;   ///< lost acks (data had arrived)
  std::int64_t dup_data = 0;    ///< duplicate copies suppressed at the dest
  std::int64_t dup_acks = 0;    ///< duplicate / out-of-order acks ignored
};

/// Runs the stop-and-wait protocol for one message under `model`:
/// `data_cost` is the α–β (noise- and congestion-adjusted) transmission
/// cost of one attempt, `ack_cost` the same for the ack. `base` carries
/// (src, dst, level, bytes, seq); its attempt/ack fields are filled in per
/// attempt. Pure — all randomness comes from the model's seeded hooks —
/// and unit-testable against a ScriptedModel schedule.
ReliableOutcome simulate_reliable_send(const NetworkModel& model,
                                       const RetransmitParams& rp,
                                       MsgAttempt base, double data_cost,
                                       double ack_cost);

// ---------------------------------------------------------------------------
// Seeded implementations
// ---------------------------------------------------------------------------

/// Per-link latency jitter: each transmission (and ack) is stretched by
/// exp(σ(level) · |g|) ≥ 1 with g an approximately standard-normal deviate
/// hashed from (seed, src, dst, seq, attempt) — i.i.d. per attempt, bit-
/// reproducible for a given seed.
class JitterModel : public NetworkModel {
 public:
  /// One σ for all non-self links.
  JitterModel(double sigma, std::uint64_t seed);
  /// Per-link σ, indexed by LinkLevel (kSelf entry ignored).
  JitterModel(const double (&sigma)[4], std::uint64_t seed);

  double latency_factor(const MsgAttempt& a) const override;

 private:
  double sigma_[4];
  std::uint64_t seed_;
};

/// Seeded message loss with the ack/timeout/retransmit layer. Each data
/// transmission attempt is dropped with probability `loss`, each ack with
/// `ack_loss`; decisions are hashed from (seed, src, dst, seq, attempt) and
/// coupled across rates (the same attempt that survives 1e-2 survives
/// 1e-4), which makes virtual-time inflation monotone in the loss rate.
class LossModel : public NetworkModel {
 public:
  LossModel(double loss, double ack_loss, RetransmitParams rp,
            std::uint64_t seed);

  bool lossy() const override { return true; }
  bool drop_data(const MsgAttempt& a) const override;
  bool drop_ack(const MsgAttempt& a) const override;
  RetransmitParams retransmit() const override { return rp_; }

 private:
  double loss_;
  double ack_loss_;
  RetransmitParams rp_;
  std::uint64_t seed_;
};

/// Straggler PEs: `count` distinct PEs (chosen by a seeded shuffle of
/// [0, p)) compute `factor`× slower; everything they charge through
/// Comm::charge is dilated. Communication costs are not dilated — a
/// straggler has a slow core, not a slow NIC.
class StragglerModel : public NetworkModel {
 public:
  StragglerModel(int p, int count, double factor, std::uint64_t seed);

  double compute_dilation(int pe) const override;
  /// The selected straggler PEs, ascending (for tests and reports).
  std::vector<int> stragglers() const;

 private:
  double factor_;
  std::vector<char> straggler_;
};

/// Scripted delivery schedule for tests, after libcurvecpr's
/// delivery_latencies[]: each (src → dst) stream carries one MsgScript per
/// message in send order; entry i of a script applies to transmission
/// attempt i (negative = dropped, otherwise extra transit seconds).
/// Unscripted messages and attempts beyond a script behave cleanly.
///
/// Register all scripts before Engine::run. Lookups mutate only per-stream
/// cursors, and a (src → dst) stream is only ever touched by the sending
/// PE, so concurrent runs stay race-free and deterministic.
class ScriptedModel : public NetworkModel {
 public:
  struct MsgScript {
    std::vector<double> data;  ///< per attempt: < 0 drop, else delay (s)
    std::vector<double> ack;   ///< per attempt: < 0 drop, else delay (s)
  };

  explicit ScriptedModel(RetransmitParams rp = {}) : rp_(rp) {}

  /// Appends the schedule for the next unscripted message from src to dst.
  void add_script(int src_pe, int dst_pe, MsgScript script);

  bool lossy() const override { return true; }
  bool drop_data(const MsgAttempt& a) const override;
  bool drop_ack(const MsgAttempt& a) const override;
  double extra_delay(const MsgAttempt& a) const override;
  RetransmitParams retransmit() const override { return rp_; }

 private:
  struct Stream {
    std::vector<MsgScript> scripts;
    std::size_t next = 0;          ///< next unassigned script
    std::uint64_t cur_seq = ~0ULL; ///< sender seq bound to `cur`
    std::size_t cur = ~std::size_t{0};
  };

  /// Script for this attempt's message (nullptr = behave cleanly); binds
  /// the next unassigned script when a new sender seq appears.
  const MsgScript* find(const MsgAttempt& a) const;

  RetransmitParams rp_;
  mutable std::map<std::pair<int, int>, Stream> streams_;
};

/// Stacks several models: latency factors multiply, extra delays add, drops
/// OR, dilations multiply; lossy when any part is. Used by FaultConfig.
class ComposedModel : public NetworkModel {
 public:
  ComposedModel(std::vector<std::shared_ptr<const NetworkModel>> parts,
                RetransmitParams rp);

  bool lossy() const override;
  double latency_factor(const MsgAttempt& a) const override;
  double extra_delay(const MsgAttempt& a) const override;
  bool drop_data(const MsgAttempt& a) const override;
  bool drop_ack(const MsgAttempt& a) const override;
  double compute_dilation(int pe) const override;
  RetransmitParams retransmit() const override { return rp_; }

 private:
  std::vector<std::shared_ptr<const NetworkModel>> parts_;
  RetransmitParams rp_;
};

/// One-stop per-run fault configuration (harness::RunConfig::faults):
/// builds the composed model for a (p, seed) pair, or nullptr when every
/// knob is at its clean default — keeping the default path bit-identical.
struct FaultConfig {
  double loss = 0;           ///< per-attempt data-drop probability
  double ack_loss = -1;      ///< ack-drop probability (< 0: same as loss)
  double jitter_sigma = 0;   ///< lognormal σ on all non-self links
  int stragglers = 0;        ///< straggler PE count
  double straggle_factor = 4.0;
  RetransmitParams retransmit;

  bool any() const {
    return loss > 0 || ack_loss > 0 || jitter_sigma > 0 || stragglers > 0;
  }

  std::shared_ptr<const NetworkModel> build(int p, std::uint64_t seed) const;
};

}  // namespace pmps::net
