#include "net/stats.hpp"

namespace pmps::net {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kOther: return "other";
    case Phase::kSplitterSelection: return "splitter selection";
    case Phase::kBucketProcessing: return "bucket processing";
    case Phase::kDataDelivery: return "data delivery";
    case Phase::kLocalSort: return "local sort";
  }
  return "?";
}

}  // namespace pmps::net
