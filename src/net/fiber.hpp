// Stackful fibers and the cooperative scheduler behind the SPMD engine.
//
// A FiberPool owns W worker threads, each pulling PE fibers off a shared run
// queue. A fiber that cannot make progress (its Mailbox::retrieve found no
// matching message) parks itself instead of sleeping on a condition
// variable; the PE that later deposits the matching message re-enqueues it.
// This replaces the seed engine's one-OS-thread-per-PE model, whose
// thread-creation and wakeup-storm costs capped every bench at p ≤ 256, and
// lets a single host simulate paper-scale PE counts (p ≥ 4096, cf. §7.3).
//
// Context switching uses ucontext (POSIX); on platforms without it the
// engine falls back to the legacy thread-per-PE backend behind the same
// interface (see fibers_supported() and PMPS_ENGINE in engine.hpp).
//
// Blocking protocol (the part that makes wakeups race-free):
//   1. The fiber, holding its mailbox lock, registers the key it waits for
//      and calls prepare_block() → state = kBlocking.
//   2. It releases the lock and calls block_current(), which switches back
//      to the worker. The worker moves kBlocking → kBlocked (parked).
//   3. A depositor that consumed the registration calls wake(): it either
//      catches the fiber in kBlocking (sets kReady; the worker sees the
//      failed kBlocking→kBlocked CAS and re-enqueues) or in kBlocked
//      (CAS to kRunnable and enqueues it itself). No wakeup can be lost and
//      a fiber is never enqueued while its stack is still live on a worker.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

// Fibers are available where we have a hand-rolled context switch (ELF
// x86-64 / AArch64) or a usable <ucontext.h> (other unices — but not macOS,
// whose SDK deprecated ucontext away; it gets the thread backend instead).
#if (defined(__ELF__) && (defined(__x86_64__) || defined(__aarch64__))) || \
    (defined(__unix__) && !defined(__APPLE__))
#define PMPS_HAS_FIBERS 1
#else
#define PMPS_HAS_FIBERS 0
#endif

namespace pmps::net {

/// True when the stackful-fiber backend is available on this platform.
bool fibers_supported();

/// Memory accounting for a FiberPool's shared stack pool (all byte values
/// are host-side resident-memory estimates, not virtual reservations —
/// except stack_bytes_reserved, which is the mapped total).
struct FiberStackStats {
  std::int64_t stacks = 0;           ///< stacks currently held by the pool
  std::int64_t guarded_stacks = 0;   ///< stacks with their own guard page
  std::int64_t stack_acquires = 0;   ///< lifetime acquire count (reuse ⇒ ≫ stacks)
  std::int64_t stack_bytes_reserved = 0;  ///< mapped (virtual) stack bytes
  std::int64_t peak_stack_bytes = 0;  ///< peak touched (resident) stack bytes
  std::int64_t current_stack_bytes = 0;  ///< touched bytes right now
  std::int64_t reclaims = 0;          ///< madvise(MADV_DONTNEED) calls
  std::int64_t reclaimed_bytes = 0;   ///< bytes returned to the kernel
};

#if PMPS_HAS_FIBERS

class FiberPool;

/// One batch of fibers scheduled on a FiberPool: the unit of an SPMD run.
/// A standalone engine keeps a single cached batch and relaunches it per
/// run; the sort service launches one batch per admitted job, so several
/// independent jobs interleave on the same warm worker pool. Fiber indices
/// are batch-local (PE ids), so concurrent batches never alias each other's
/// wakes. Create with FiberPool::create_batch, start with FiberPool::launch.
class FiberBatch {
 public:
  ~FiberBatch();
  FiberBatch(const FiberBatch&) = delete;
  FiberBatch& operator=(const FiberBatch&) = delete;

  /// Makes fiber `index` of this batch runnable again. Must pair with a
  /// prepare_block()/block_current() on that fiber; called by the message
  /// depositor after consuming the wait registration.
  void wake(int index);

  /// Blocks the calling thread until every fiber of the current launch has
  /// finished. Returns immediately when the batch was never launched or has
  /// already completed.
  void wait();

  /// True when no launch is in flight (all fibers finished).
  bool done() const;

  int size() const;

 private:
  friend class FiberPool;
  FiberBatch();
  struct State;  ///< implementation detail (fiber.cpp)
  std::unique_ptr<State> st_;
};

/// Fixed pool of worker threads executing cooperatively scheduled stackful
/// fibers — the engine's default backend (PMPS_ENGINE=fibers). One pool
/// per EngineSubstrate; a standalone engine maps each simulated PE onto one
/// fiber of a single batch, while a SortService launches one batch per job
/// and lets the worker pool interleave them.
///
/// Stacks come from a shared *stack pool* instead of one mmap per fiber: a
/// fiber acquires a stack on its first resume and returns it when it exits,
/// so the pool holds at most max-concurrently-live fibers' worth of stacks
/// and reuses them across fibers and runs. Stacks are carved from slabs —
/// individually guard-paged up to a threshold, then packed many-per-slab
/// (one leading guard per slab), which keeps the VMA count far below the
/// kernel's vm.max_map_count even at p = 2^15 where per-fiber guard
/// mappings would exhaust it. A fiber parking in a long-lived collective
/// wait (prepare_block(long_wait = true)) has the cold span of its stack
/// madvise(MADV_DONTNEED)'d back to the kernel, down to roughly one
/// committed page above its live frames — a parked PE costs bytes, not
/// resident stack pages. Design and the blocking protocol: file comment
/// above and docs/DESIGN.md §6, §11.
class FiberPool {
 public:
  /// `num_workers` OS threads; each fiber gets `stack_bytes` of lazily
  /// committed stack from the shared pool.
  FiberPool(int num_workers, std::size_t stack_bytes);

  /// Joins the workers and unmaps the stack pool's slabs. Must not be
  /// called while a run() is in flight.
  ~FiberPool();

  FiberPool(const FiberPool&) = delete;
  FiberPool& operator=(const FiberPool&) = delete;

  /// Runs `body(i)` for i in [0, n) as n cooperatively scheduled fibers and
  /// blocks until all of them finish. Convenience wrapper over
  /// create_batch + launch + wait for one-shot callers. An exception
  /// escaping any body terminates the process (the std::thread contract;
  /// peers blocked on the dead PE could never finish anyway). Must not be
  /// called from inside one of this pool's fibers.
  void run(int n, const std::function<void(int)>& body);

  /// Creates an idle batch of `n` fibers bound to this pool. The batch is
  /// reusable: launch it as many times as needed (each launch resets the
  /// fibers). Keep the shared_ptr alive until the final launch completed.
  std::shared_ptr<FiberBatch> create_batch(int n);

  /// Starts a launch of `batch`: every fiber becomes runnable with
  /// `body(i)` and the call returns immediately. The batch must be idle
  /// (never launched, or the previous launch fully finished). If
  /// `on_complete` is non-empty it is invoked exactly once, on the worker
  /// thread that finishes the batch's last fiber, after FiberBatch::wait
  /// would unblock — the service's job-completion hook. `on_complete` may
  /// launch other batches but must not wait on this pool's fibers.
  void launch(FiberBatch& batch, std::function<void(int)> body,
              std::function<void()> on_complete = {});

  /// True when the calling code is executing on a pool fiber.
  static bool in_fiber();

  /// Publishes the current fiber's intent to block. Call while holding the
  /// lock that a waker will later hold (the mailbox lock, or the engine's
  /// rendezvous lock), so that any wake() issued after the registration
  /// finds the fiber in kBlocking or later — never in kRunning.
  /// `long_wait` marks a long-lived collective park (e.g. a barrier wait):
  /// the worker reclaims the fiber's cold stack span before parking it.
  static void prepare_block(bool long_wait = false);

  /// Parks the current fiber (after prepare_block). Returns once a wake()
  /// for this fiber has been issued.
  static void block_current();

  /// Opaque handle to the calling fiber, for wakers that are not message
  /// depositors and have no FiberBatch in scope — the em::IoExecutor's
  /// completion threads. Returns nullptr when the caller is not on a pool
  /// fiber (use a condition variable instead).
  static void* current_fiber_handle();

  /// Makes the fiber behind `handle` runnable again: the wake() half of the
  /// blocking protocol for handle-based waiters. Call only after the fiber
  /// stored the handle and called prepare_block() under a lock this waker
  /// held when it read the handle.
  static void wake_fiber_handle(void* handle);

  /// Worker-thread count the pool was built with (PMPS_FIBER_WORKERS or
  /// the hardware concurrency).
  int num_workers() const { return num_workers_; }

  /// Snapshot of the stack pool's memory accounting.
  FiberStackStats stack_stats() const;

  /// True when the long-wait madvise reclaim is available (hand-rolled
  /// context switch only: the ucontext fallback cannot expose the parked
  /// stack pointer portably, so it skips reclaim).
  static bool reclaim_supported();

  struct Fiber;  ///< implementation detail (fiber.cpp); opaque to callers

 private:
  friend class FiberBatch;
  struct Impl;
  struct Shard;

  void worker_main(int shard);
  void fiber_main(Fiber& f);
  void wake_fiber(Fiber* f);
  static void trampoline(void* arg);

  int num_workers_;
  Impl* impl_;
};

#else  // !PMPS_HAS_FIBERS

/// Stubs so engine code compiles; never instantiated (fibers_supported()
/// returns false and the engine selects the thread backend).
class FiberBatch {
 public:
  void wake(int) {}
  void wait() {}
  bool done() const { return true; }
  int size() const { return 0; }
};

class FiberPool {
 public:
  FiberPool(int, std::size_t) {}
  void run(int, const std::function<void(int)>&) {}
  std::shared_ptr<FiberBatch> create_batch(int) {
    return std::make_shared<FiberBatch>();
  }
  void launch(FiberBatch&, std::function<void(int)>,
              std::function<void()> = {}) {}
  static bool in_fiber() { return false; }
  static void prepare_block(bool = false) {}
  static void block_current() {}
  static void* current_fiber_handle() { return nullptr; }
  static void wake_fiber_handle(void*) {}
  int num_workers() const { return 0; }
  FiberStackStats stack_stats() const { return {}; }
  static bool reclaim_supported() { return false; }
};

#endif  // PMPS_HAS_FIBERS

}  // namespace pmps::net
