// Machine model for the simulated cluster.
//
// The paper (§2.1) analyses algorithms in the single-ported message passing
// model: sending a message of ℓ machine words costs α + ℓβ. Its experiments
// ran on SuperMUC, a hierarchical machine (16-core nodes, 512-node islands
// with a non-blocking FDR10 fat tree, islands connected by a 4:1 pruned
// tree). We reproduce that machine as a parameterised cost model: each
// point-to-point message is charged α(d) + β(d)·bytes where d is the
// topology distance (same node / same island / cross island) between the
// endpoints. Local computation is charged with calibrated per-element
// constants so that virtual times are deterministic and independent of the
// host machine.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace pmps::net {

class NetworkModel;  // network_model.hpp: pluggable fault injection

/// Topology distance between two PEs.
enum class LinkLevel : int {
  kSelf = 0,    ///< same PE (no network)
  kNode = 1,    ///< same node (shared memory / loopback)
  kIsland = 2,  ///< same island (non-blocking fat tree)
  kGlobal = 3,  ///< cross island (4:1 pruned tree)
};

struct MachineParams {
  // --- topology -----------------------------------------------------------
  int pes_per_node = 16;
  int nodes_per_island = 512;

  // --- communication: startup latency (s) and per-byte time (s/byte), by
  // LinkLevel index. Defaults are set by the presets below.
  double alpha[4] = {0, 0, 0, 0};
  double beta[4] = {0, 0, 0, 0};

  // --- local work constants (seconds) --------------------------------------
  // local sort of n elements:        sort_per_elem * n * log2(max(n,2))
  // r-way merge of n elements:       merge_per_elem * n * log2(max(r,2))
  // partition into k buckets:        partition_per_elem * n * log2(max(k,2))
  // sequential scan / copy:          copy_per_byte per byte
  double sort_per_elem = 0;
  double merge_per_elem = 0;
  double partition_per_elem = 0;
  double copy_per_byte = 0;
  double compare_cost = 0;  ///< one comparison (binary search steps etc.)

  // --- noise ---------------------------------------------------------------
  // Multiplicative jitter on per-message communication cost, reproducing the
  // network interference the paper observes in Figure 12. 0 = deterministic.
  double comm_noise_frac = 0.0;
  // Correlated per-run congestion on island/global links (interfering jobs
  // sharing the pruned tree): one factor ≥ 1 drawn per run, multiplying all
  // non-node communication. This is what spreads run-time distributions —
  // i.i.d. per-message noise averages out over many messages.
  double congestion_noise_frac = 0.0;

  // --- faults --------------------------------------------------------------
  // Pluggable network-fault model (network_model.hpp): per-link jitter,
  // seeded message loss behind an ack/retransmit layer, straggler PEs.
  // nullptr (the default) takes the exact clean α–β cost path, bit for bit.
  std::shared_ptr<const NetworkModel> model;

  /// SuperMUC-like preset: Sandy Bridge-EP nodes at 2.3 GHz, FDR10
  /// Infiniband, 4:1 pruned inter-island tree. Constants calibrated to land
  /// in the same order of magnitude as the paper's Table 2.
  static MachineParams supermuc_like();

  /// Flat machine: one α/β for all PE pairs (classic single-ported model).
  static MachineParams flat(double alpha_s, double beta_s_per_byte);

  // --- derived -------------------------------------------------------------
  int pes_per_island() const { return pes_per_node * nodes_per_island; }

  LinkLevel level_between(int pe_a, int pe_b) const;

  /// Cost of one message of `bytes` at distance `lvl` (no noise).
  double message_cost(LinkLevel lvl, std::size_t bytes) const {
    const int i = static_cast<int>(lvl);
    return alpha[i] + beta[i] * static_cast<double>(bytes);
  }

  double sort_cost(std::int64_t n) const;
  double merge_cost(std::int64_t n, std::int64_t ways) const;
  double partition_cost(std::int64_t n, std::int64_t buckets) const;
  double copy_cost(std::size_t bytes) const {
    return copy_per_byte * static_cast<double>(bytes);
  }
  double compare_cost_n(std::int64_t n) const {
    return compare_cost * static_cast<double>(n);
  }
};

}  // namespace pmps::net
