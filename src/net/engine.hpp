// The SPMD engine: owns p simulated PEs and runs a program on all of them.
//
// Algorithms are written once, SPMD style, against Comm (see comm.hpp) —
// exactly like an MPI rank program. Virtual time follows the single-ported
// α–β model of the paper's §2.1 (see machine.hpp); it is fully deterministic
// for a given seed.
//
// Execution backends (selectable, bit-for-bit identical results):
//   kFibers  — the default where supported: W ≈ hardware-thread workers run
//              all p PEs as cooperatively scheduled stackful fibers
//              (fiber.hpp). A PE blocking in a recv parks its fiber; the
//              depositing PE re-enqueues it. No per-run thread creation, no
//              wakeup broadcasts — this is what makes paper-scale PE counts
//              (p ≥ 4096, §7.3) simulable on one host.
//   kThreads — the seed backend: one OS thread per PE per run. Kept behind
//              the same interface for differential testing; select with
//              PMPS_ENGINE=threads (or explicitly in the constructor).
//
// Determinism does not depend on the backend: message matching is exact on
// (comm id, tag, source PE) and every PE owns its RNG streams and virtual
// clock, so same seed ⇒ same virtual times, same statistics, same output
// under either scheduler.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "net/machine.hpp"
#include "net/mailbox.hpp"
#include "net/stats.hpp"

namespace pmps::net {

class Comm;
class FiberPool;

/// How Engine::run executes the p simulated PEs.
enum class EngineBackend : int {
  kAuto = 0,     ///< PMPS_ENGINE env var, else fibers where supported
  kThreads = 1,  ///< legacy one-OS-thread-per-PE
  kFibers = 2,   ///< cooperative fibers on a fixed worker pool
};

/// One (rank, message count) pair of a sparse exchange: the sparse
/// replacement for a dense Θ(p) per-PE count vector. On the send side
/// `rank` is a destination rank; on the receive side a source rank. Count
/// lists are sorted by rank.
struct CountPair {
  std::int32_t rank = 0;
  std::int64_t count = 0;
};

/// One member's contribution to an engine-level count tally (see
/// Engine::tally_counts): its outgoing (dest rank, count) pairs and the
/// scratch vector its incoming (src rank, count) pairs land in. Lives on
/// the member's stack only while it is parked in the tally rendezvous.
struct TallySlot {
  const CountPair* out = nullptr;
  std::size_t n_out = 0;
  std::vector<CountPair>* in = nullptr;
};

/// Reusable scratch for the hot collectives, per-PE and shared by every
/// Comm of that PE, so a delivery's repeated sparse exchanges reuse warm
/// capacity instead of allocating fresh vectors per call. The dense
/// counts_* / seq_per_dest vectors (Θ(p) each) and Bruck working arrays
/// back the PMPS_COLL_FF=0 fallback path; the sx_* vectors (sized by the
/// number of *distinct* destinations, not p) back the default tally path —
/// at p = 2^15 three Θ(p) vectors per PE alone would cost ~25 GB host RAM.
/// The collectives never nest within one PE, so distinct fields are never
/// aliased by a live use.
struct CollScratch {
  std::vector<std::int64_t> counts_out, counts_in, seq_per_dest;
  std::vector<std::int32_t> bruck_tmp, bruck_block, bruck_in;
  std::vector<std::int32_t> sx_dests;      ///< piece dests, sorted for RLE
  std::vector<CountPair> sx_out, sx_in;    ///< sparse out/in count pairs
  std::vector<std::int64_t> sx_seq;        ///< per-distinct-dest send seq
};

/// All mutable per-PE state. Owned by the engine, accessed only by the
/// thread or fiber running that PE (mailbox deposits aside, which are
/// internally synchronised).
struct PeContext {
  int pe = -1;
  double clock = 0;  ///< virtual time (seconds)
  Phase phase = Phase::kOther;
  bool free_mode = false;  ///< suppress all charging (precomputation steps)
  /// Straggler dilation from the machine's NetworkModel (1.0 when healthy):
  /// multiplies local-computation charges (Comm::charge) only — waiting
  /// (advance_to) and communication costs are not compute-bound.
  double dilation = 1.0;
  /// Per-run ordinal of the next network send: the replay-stable identity
  /// the NetworkModel hashes its fault decisions from.
  std::uint64_t send_seq = 0;
  Mailbox mailbox;
  CommStats stats;
  CollScratch coll_scratch;
  Xoshiro256 rng;        ///< algorithmic randomness (shared seed semantics)
  Xoshiro256 noise_rng;  ///< communication jitter stream

  /// Advance the virtual clock, attributing the time to the current phase.
  void advance(double dt) {
    if (free_mode) return;
    clock += dt;
    stats.phase_time[static_cast<int>(phase)] += dt;
  }
  /// Jump the clock forward to at least `t` (waiting for a message).
  void advance_to(double t) {
    if (t > clock) advance(t - clock);
  }
};

/// RAII guard that makes all communication/computation free (not charged to
/// virtual time and not counted in statistics) — used for steps the paper
/// treats as precomputation, e.g. communicator construction (§7.1), and for
/// out-of-band bookkeeping inside sparse exchanges.
class FreeModeGuard {
 public:
  explicit FreeModeGuard(PeContext& ctx) : ctx_(ctx), prev_(ctx.free_mode) {
    ctx_.free_mode = true;
  }
  ~FreeModeGuard() { ctx_.free_mode = prev_; }
  FreeModeGuard(const FreeModeGuard&) = delete;
  FreeModeGuard& operator=(const FreeModeGuard&) = delete;

 private:
  PeContext& ctx_;
  bool prev_;
};

class Engine {
 public:
  Engine(int num_pes, MachineParams machine, std::uint64_t seed = 1,
         EngineBackend backend = EngineBackend::kAuto);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `program` on all PEs and blocks until every PE finished. May be
  /// called repeatedly; clocks and stats reset between runs, and the fiber
  /// pool (workers, stacks) is reused across runs.
  void run(const std::function<void(Comm&)>& program);

  int num_pes() const { return num_pes_; }
  const MachineParams& machine() const { return machine_; }
  std::uint64_t seed() const { return seed_; }
  /// The backend actually in use (kAuto resolved at construction).
  EngineBackend backend() const { return backend_; }
  /// Correlated congestion factor (≥ 1) for island/global links, drawn once
  /// per run when machine().congestion_noise_frac > 0.
  double run_congestion() const { return run_congestion_; }

  PeContext& pe_context(int pe) { return *pes_[pe]; }
  const PeContext& pe_context(int pe) const { return *pes_[pe]; }

  /// Message delivery/pickup for Comm: routes through the backend's blocking
  /// protocol (fiber park/re-enqueue, or targeted cv wait for threads).
  void deposit_message(int dest_pe, Message&& m);
  Message retrieve_message(PeContext& ctx, const MsgKey& key);

  /// Recycled payload buffers for messages destined to PE `dest_pe`:
  /// senders acquire from the destination's shard and the receiver releases
  /// to its own — the same shard, so buffers never migrate. Sharded per
  /// worker (one shard on the thread backend) so the warm acquire/release
  /// path does not serialise every PE on one global pool mutex.
  BufferPool& buffer_pool(int dest_pe) {
    return shards_[static_cast<std::size_t>(dest_pe) % shards_.size()]
        ->buffer_pool;
  }

  /// Recycled mailbox nodes for PE `dest_pe`'s mailbox (same sharding as
  /// buffer_pool; see MsgNodePool in mailbox.hpp).
  MsgNodePool& node_pool(int dest_pe) {
    return shards_[static_cast<std::size_t>(dest_pe) % shards_.size()]
        ->node_pool;
  }

  /// Number of mailbox slab/pool shards (1 on the thread backend).
  int mailbox_shards() const { return static_cast<int>(shards_.size()); }

  /// Shared member list of the world communicator — every world Comm
  /// aliases this one vector instead of materialising its own Θ(p) copy
  /// per PE (4 GB at p = 2^15).
  const std::shared_ptr<const std::vector<int>>& world_members() const {
    return world_members_;
  }

  /// True when the idle-phase fast-forward paths (barrier replay, count
  /// tally) are enabled — the default; PMPS_COLL_FF=0 restores the real
  /// message-by-message execution for differential testing.
  bool coll_ff_enabled() const { return coll_ff_; }

  /// Idle-phase fast-forward of a dissemination barrier: when eligible
  /// (fast-forward on, clean network), members rendezvous on the cell keyed
  /// by `comm_id`; the last arriver replays the whole barrier's clock /
  /// stats / noise-RNG effects round-major — bit-identically to the real
  /// message exchange — and releases everyone in one step. Returns false
  /// (caller must run the real barrier) when ineligible.
  bool barrier_fast_forward(PeContext& ctx, std::uint64_t comm_id,
                            const std::vector<int>& members, int rank);

  /// Engine-level replacement for the sparse exchange's *free-mode* dense
  /// counts exchange: members rendezvous with their (dest, count) pairs and
  /// the last arriver scatters (src, count) pairs into every member's `in`
  /// vector, sorted by src. Free-mode sends charge nothing, draw nothing
  /// and count nothing, so this is bit-identical to the Bruck exchange it
  /// replaces while touching O(messages) memory instead of Θ(p) per PE.
  void tally_counts(PeContext& ctx, std::uint64_t comm_id,
                    const std::vector<int>& members, int rank,
                    std::span<const CountPair> out,
                    std::vector<CountPair>& in);

  /// Aborts the current run with a per-run error: records the first `why`,
  /// poisons every mailbox so blocked PEs unwind (RunAborted) instead of
  /// waiting forever for a dead sender, and makes run() rethrow the reason
  /// as a NetworkError after every PE has finished. Called by Comm when a
  /// lossy NetworkModel exhausts its retry budget; safe from any PE.
  void abort_run(const std::string& why);

  /// Aggregated results of the last run().
  RunReport report() const;

 private:
  /// One mailbox shard: a node pool + payload buffer pool pair serving the
  /// PEs with pe % mailbox_shards() == shard index. Splitting the slab/pool
  /// state (each behind its own mutex) removes the single global pool lock
  /// from the warm deposit→retrieve path.
  struct MailboxShard {
    MsgNodePool node_pool;
    BufferPool buffer_pool;
  };

  /// One rendezvous cell of the fast-forward board, keyed by communicator
  /// id (comm ids are deterministic, so cells persist across runs). Serves
  /// both barrier replay and count tallies — SPMD lockstep guarantees the
  /// members never mix the two within one generation. Guarded by rv_mu_.
  struct RendezvousCell {
    int size = 0;              ///< communicator size (fixed at creation)
    int arrived = 0;           ///< members arrived this generation
    std::uint64_t gen = 0;     ///< bumped on release; parked members wait on it
    bool aborted = false;      ///< run aborted: parked members throw RunAborted
    std::vector<void*> slots;  ///< per member rank: its TallySlot (tally only)
    std::vector<double> arrivals;    ///< barrier replay: per-dest arrival time
    std::vector<int> parked_pes;     ///< global PE ids parked (fiber backend)
    std::condition_variable cv;      ///< thread backend park (waits on rv_mu_)
  };

  /// Finds or creates the cell for `comm_id` (rv_mu_ held). Creation is
  /// cold — once per communicator; warm rendezvous only look up.
  RendezvousCell& rv_cell_locked(std::uint64_t comm_id, int size);

  /// Parks the calling member until the cell's generation advances
  /// (rv_mu_ held via `lock`); throws RunAborted if the run was aborted.
  void rv_park(std::unique_lock<std::mutex>& lock, RendezvousCell& cell,
               int pe);

  /// Releases a completed generation: bumps gen, wakes every parked member
  /// (rv_mu_ held).
  void rv_release_locked(RendezvousCell& cell);

  /// Round-major replay of the dissemination barrier over `members` —
  /// performed by the last arriver on behalf of all members (who are all
  /// parked, so their contexts are safe to write).
  void replay_barrier(const std::vector<int>& members,
                      std::vector<double>& arrivals);

  int num_pes_;
  MachineParams machine_;
  std::uint64_t seed_;
  EngineBackend backend_;
  bool coll_ff_ = true;
  double run_congestion_ = 1.0;
  std::uint64_t run_counter_ = 0;
  /// Declared before pes_ so mailboxes (which return nodes on teardown)
  /// are destroyed while their shard's pool is still alive.
  std::vector<std::unique_ptr<MailboxShard>> shards_;
  std::shared_ptr<const std::vector<int>> world_members_;
  std::vector<std::unique_ptr<PeContext>> pes_;
  std::unique_ptr<FiberPool> pool_;  ///< lazily created (fiber backend, p > 1)
  // --- fast-forward board ---------------------------------------------------
  std::mutex rv_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RendezvousCell>> rv_cells_;
  std::atomic<std::int64_t> ff_barriers_{0};
  std::atomic<std::int64_t> ff_tallies_{0};
  // --- abort state (lossy NetworkModel runs only) --------------------------
  std::atomic<bool> failed_{false};
  std::mutex fail_mu_;
  std::string fail_msg_;        ///< first abort_run reason (under fail_mu_)
  bool drain_needed_ = false;   ///< last run failed; drain mailboxes first
};

/// Convenience: build an engine, run `program`, return the report.
RunReport run_spmd(int num_pes, const MachineParams& machine,
                   std::uint64_t seed,
                   const std::function<void(Comm&)>& program);

}  // namespace pmps::net
