// The SPMD engine: owns p simulated PEs and runs a program on all of them.
//
// Algorithms are written once, SPMD style, against Comm (see comm.hpp) —
// exactly like an MPI rank program. Virtual time follows the single-ported
// α–β model of the paper's §2.1 (see machine.hpp); it is fully deterministic
// for a given seed.
//
// Execution backends (selectable, bit-for-bit identical results):
//   kFibers  — the default where supported: W ≈ hardware-thread workers run
//              all p PEs as cooperatively scheduled stackful fibers
//              (fiber.hpp). A PE blocking in a recv parks its fiber; the
//              depositing PE re-enqueues it. No per-run thread creation, no
//              wakeup broadcasts — this is what makes paper-scale PE counts
//              (p ≥ 4096, §7.3) simulable on one host.
//   kThreads — the seed backend: one OS thread per PE per run. Kept behind
//              the same interface for differential testing; select with
//              PMPS_ENGINE=threads (or explicitly in the constructor).
//
// Determinism does not depend on the backend: message matching is exact on
// (comm id, tag, source PE) and every PE owns its RNG streams and virtual
// clock, so same seed ⇒ same virtual times, same statistics, same output
// under either scheduler.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "net/machine.hpp"
#include "net/mailbox.hpp"
#include "net/stats.hpp"

namespace pmps::net {

class Comm;
class FiberBatch;
class FiberPool;

/// How Engine::run executes the p simulated PEs.
enum class EngineBackend : int {
  kAuto = 0,     ///< PMPS_ENGINE env var, else fibers where supported
  kThreads = 1,  ///< legacy one-OS-thread-per-PE
  kFibers = 2,   ///< cooperative fibers on a fixed worker pool
};

/// One (rank, message count) pair of a sparse exchange: the sparse
/// replacement for a dense Θ(p) per-PE count vector. On the send side
/// `rank` is a destination rank; on the receive side a source rank. Count
/// lists are sorted by rank.
struct CountPair {
  std::int32_t rank = 0;
  std::int64_t count = 0;
};

/// One member's contribution to an engine-level count tally (see
/// Engine::tally_counts): its outgoing (dest rank, count) pairs and the
/// scratch vector its incoming (src rank, count) pairs land in. Lives on
/// the member's stack only while it is parked in the tally rendezvous.
struct TallySlot {
  const CountPair* out = nullptr;
  std::size_t n_out = 0;
  std::vector<CountPair>* in = nullptr;
};

/// Reusable scratch for the hot collectives, per-PE and shared by every
/// Comm of that PE, so a delivery's repeated sparse exchanges reuse warm
/// capacity instead of allocating fresh vectors per call. The dense
/// counts_* / seq_per_dest vectors (Θ(p) each) and Bruck working arrays
/// back the PMPS_COLL_FF=0 fallback path; the sx_* vectors (sized by the
/// number of *distinct* destinations, not p) back the default tally path —
/// at p = 2^15 three Θ(p) vectors per PE alone would cost ~25 GB host RAM.
/// The collectives never nest within one PE, so distinct fields are never
/// aliased by a live use.
struct CollScratch {
  std::vector<std::int64_t> counts_out, counts_in, seq_per_dest;
  std::vector<std::int32_t> bruck_tmp, bruck_block, bruck_in;
  std::vector<std::int32_t> sx_dests;      ///< piece dests, sorted for RLE
  std::vector<CountPair> sx_out, sx_in;    ///< sparse out/in count pairs
  std::vector<std::int64_t> sx_seq;        ///< per-distinct-dest send seq
};

/// All mutable per-PE state. Owned by the engine, accessed only by the
/// thread or fiber running that PE (mailbox deposits aside, which are
/// internally synchronised).
struct PeContext {
  int pe = -1;
  double clock = 0;  ///< virtual time (seconds)
  Phase phase = Phase::kOther;
  bool free_mode = false;  ///< suppress all charging (precomputation steps)
  /// Straggler dilation from the machine's NetworkModel (1.0 when healthy):
  /// multiplies local-computation charges (Comm::charge) only — waiting
  /// (advance_to) and communication costs are not compute-bound.
  double dilation = 1.0;
  /// Per-run ordinal of the next network send: the replay-stable identity
  /// the NetworkModel hashes its fault decisions from.
  std::uint64_t send_seq = 0;
  Mailbox mailbox;
  CommStats stats;
  CollScratch coll_scratch;
  Xoshiro256 rng;        ///< algorithmic randomness (shared seed semantics)
  Xoshiro256 noise_rng;  ///< communication jitter stream

  /// Advance the virtual clock, attributing the time to the current phase.
  void advance(double dt) {
    if (free_mode) return;
    clock += dt;
    stats.phase_time[static_cast<int>(phase)] += dt;
  }
  /// Jump the clock forward to at least `t` (waiting for a message).
  void advance_to(double t) {
    if (t > clock) advance(t - clock);
  }
};

/// RAII guard that makes all communication/computation free (not charged to
/// virtual time and not counted in statistics) — used for steps the paper
/// treats as precomputation, e.g. communicator construction (§7.1), and for
/// out-of-band bookkeeping inside sparse exchanges.
class FreeModeGuard {
 public:
  explicit FreeModeGuard(PeContext& ctx) : ctx_(ctx), prev_(ctx.free_mode) {
    ctx_.free_mode = true;
  }
  ~FreeModeGuard() { ctx_.free_mode = prev_; }
  FreeModeGuard(const FreeModeGuard&) = delete;
  FreeModeGuard& operator=(const FreeModeGuard&) = delete;

 private:
  PeContext& ctx_;
  bool prev_;
};

/// One mailbox shard: a node pool + payload buffer pool pair serving the
/// PEs with pe % num_shards == shard index. Splitting the slab/pool state
/// (each behind its own mutex) removes the single global pool lock from
/// the warm deposit→retrieve path.
struct MailboxShard {
  MsgNodePool node_pool;
  BufferPool buffer_pool;
};

/// The engine's host-side execution resources — the fiber worker pool and
/// the mailbox node/payload pool shards. A standalone Engine owns a private
/// substrate (exactly the pre-service behavior); a svc::SortService creates
/// one substrate and shares it across every job's engine, so the worker
/// threads, pooled stacks, and recycled buffers stay warm across jobs.
/// Everything in here is content-agnostic bookkeeping: sharing it between
/// concurrent jobs cannot leak any simulated state between them.
class EngineSubstrate {
 public:
  explicit EngineSubstrate(int num_shards);
  ~EngineSubstrate();

  EngineSubstrate(const EngineSubstrate&) = delete;
  EngineSubstrate& operator=(const EngineSubstrate&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  MailboxShard& shard(std::size_t i) { return *shards_[i]; }

  /// The shared fiber pool, created on first use with the given geometry
  /// (later calls return the existing pool regardless of arguments).
  /// Thread-safe; returns nullptr when fibers are unsupported.
  FiberPool* ensure_pool(int workers, std::size_t stack_bytes);
  /// The pool if one was created, else nullptr.
  FiberPool* pool() const { return pool_.get(); }

 private:
  std::vector<std::unique_ptr<MailboxShard>> shards_;
  std::mutex pool_mu_;
  std::unique_ptr<FiberPool> pool_;
};

class Engine {
 public:
  Engine(int num_pes, MachineParams machine, std::uint64_t seed = 1,
         EngineBackend backend = EngineBackend::kAuto);

  /// Service-path engine: runs on a shared `substrate` (warm fiber workers
  /// and mailbox pools) instead of creating private ones. `job_id` gives
  /// the engine its own Comm namespace — it is folded into the world
  /// communicator id and thus into every mailbox key and rendezvous cell id
  /// derived from it (job_id 0 reproduces the standalone namespace).
  /// Virtual time, RNG streams and statistics depend only on (machine,
  /// seed, program), so a job's results are bit-identical to a standalone
  /// one-shot run of the same configuration.
  Engine(int num_pes, MachineParams machine, std::uint64_t seed,
         EngineBackend backend, std::shared_ptr<EngineSubstrate> substrate,
         std::uint64_t job_id);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `program` on all PEs and blocks until every PE finished. May be
  /// called repeatedly; clocks and stats reset between runs, and the fiber
  /// pool (workers, stacks) is reused across runs. Equivalent to
  /// start_run + FiberBatch::wait + finish_run (rethrowing the failure),
  /// with inline/thread fallbacks for the non-fiber paths.
  void run(const std::function<void(Comm&)>& program);

  /// Service path (fiber backend only): launches the run and returns
  /// without waiting. `on_complete` fires exactly once, on the worker
  /// thread that finishes the last PE, after which finish_run() must be
  /// called (from any thread) to collect the run's outcome. The engine
  /// must not be destroyed or re-run before finish_run returns.
  void start_run(std::function<void(Comm&)> program,
                 std::function<void()> on_complete);

  /// Completes a start_run: blocks until the last PE finished (immediate
  /// when called from on_complete or later), clears the run state, and
  /// returns the abort reason if the run failed — the non-throwing
  /// counterpart of run()'s NetworkError.
  std::optional<std::string> finish_run();

  int num_pes() const { return num_pes_; }
  const MachineParams& machine() const { return machine_; }
  std::uint64_t seed() const { return seed_; }
  /// The backend actually in use (kAuto resolved at construction).
  EngineBackend backend() const { return backend_; }
  /// Correlated congestion factor (≥ 1) for island/global links, drawn once
  /// per run when machine().congestion_noise_frac > 0.
  double run_congestion() const { return run_congestion_; }

  PeContext& pe_context(int pe) { return *pes_[pe]; }
  const PeContext& pe_context(int pe) const { return *pes_[pe]; }

  /// Message delivery/pickup for Comm: routes through the backend's blocking
  /// protocol (fiber park/re-enqueue, or targeted cv wait for threads).
  void deposit_message(int dest_pe, Message&& m);
  Message retrieve_message(PeContext& ctx, const MsgKey& key);

  /// Recycled payload buffers for messages destined to PE `dest_pe`:
  /// senders acquire from the destination's shard and the receiver releases
  /// to its own — the same shard, so buffers never migrate. Sharded per
  /// worker (one shard on the thread backend) so the warm acquire/release
  /// path does not serialise every PE on one global pool mutex.
  BufferPool& buffer_pool(int dest_pe) {
    return substrate_
        ->shard(static_cast<std::size_t>(dest_pe) %
                static_cast<std::size_t>(substrate_->num_shards()))
        .buffer_pool;
  }

  /// Recycled mailbox nodes for PE `dest_pe`'s mailbox (same sharding as
  /// buffer_pool; see MsgNodePool in mailbox.hpp).
  MsgNodePool& node_pool(int dest_pe) {
    return substrate_
        ->shard(static_cast<std::size_t>(dest_pe) %
                static_cast<std::size_t>(substrate_->num_shards()))
        .node_pool;
  }

  /// Number of mailbox slab/pool shards (1 on the thread backend).
  int mailbox_shards() const { return substrate_->num_shards(); }

  /// Communicator id of this engine's world Comm: 1 for job_id 0 (the
  /// standalone namespace every golden was recorded against), else a mixed
  /// odd value unique per job. Sub-communicator ids deterministically chain
  /// off the parent id, so the whole id space — and with it every mailbox
  /// key and rendezvous cell — is disjoint between concurrent jobs. Comm
  /// ids never enter the cost model, so virtual times are unaffected.
  std::uint64_t world_comm_id() const;

  /// Shared member list of the world communicator — every world Comm
  /// aliases this one vector instead of materialising its own Θ(p) copy
  /// per PE (4 GB at p = 2^15).
  const std::shared_ptr<const std::vector<int>>& world_members() const {
    return world_members_;
  }

  /// True when the idle-phase fast-forward paths (barrier replay, count
  /// tally) are enabled — the default; PMPS_COLL_FF=0 restores the real
  /// message-by-message execution for differential testing.
  bool coll_ff_enabled() const { return coll_ff_; }

  /// Idle-phase fast-forward of a dissemination barrier: when eligible
  /// (fast-forward on, clean network), members rendezvous on the cell keyed
  /// by `comm_id`; the last arriver replays the whole barrier's clock /
  /// stats / noise-RNG effects round-major — bit-identically to the real
  /// message exchange — and releases everyone in one step. Returns false
  /// (caller must run the real barrier) when ineligible.
  bool barrier_fast_forward(PeContext& ctx, std::uint64_t comm_id,
                            const std::vector<int>& members, int rank);

  /// Engine-level replacement for the sparse exchange's *free-mode* dense
  /// counts exchange: members rendezvous with their (dest, count) pairs and
  /// the last arriver scatters (src, count) pairs into every member's `in`
  /// vector, sorted by src. Free-mode sends charge nothing, draw nothing
  /// and count nothing, so this is bit-identical to the Bruck exchange it
  /// replaces while touching O(messages) memory instead of Θ(p) per PE.
  void tally_counts(PeContext& ctx, std::uint64_t comm_id,
                    const std::vector<int>& members, int rank,
                    std::span<const CountPair> out,
                    std::vector<CountPair>& in);

  /// Aborts the current run with a per-run error: records `why`, poisons
  /// every mailbox so blocked PEs unwind (RunAborted) instead of waiting
  /// forever for a dead sender, and makes run() rethrow the reason as a
  /// NetworkError after every PE has finished. This overload is for
  /// host-initiated aborts (a service cancelling a job); the first caller's
  /// reason wins over any simulated failure.
  void abort_run(const std::string& why);

  /// Simulated-failure abort, called by Comm when a lossy NetworkModel
  /// exhausts its retry budget; safe from any PE. Concurrent failing PEs
  /// race only in host time, so the latch keeps the reason with the
  /// smallest (virtual failure time, pe) — the reported error does not
  /// depend on worker count or backend when the racing failures are all
  /// observed before the abort propagates (e.g. first-send exhaustion).
  void abort_run(const std::string& why, double at_time, int pe);

  /// Aggregated results of the last run().
  RunReport report() const;

 private:
  /// One rendezvous cell of the fast-forward board, keyed by communicator
  /// id (comm ids are deterministic, so cells persist across runs). Serves
  /// both barrier replay and count tallies — SPMD lockstep guarantees the
  /// members never mix the two within one generation. Guarded by rv_mu_.
  struct RendezvousCell {
    int size = 0;              ///< communicator size (fixed at creation)
    int arrived = 0;           ///< members arrived this generation
    std::uint64_t gen = 0;     ///< bumped on release; parked members wait on it
    bool aborted = false;      ///< run aborted: parked members throw RunAborted
    std::vector<void*> slots;  ///< per member rank: its TallySlot (tally only)
    std::vector<double> arrivals;    ///< barrier replay: per-dest arrival time
    std::vector<int> parked_pes;     ///< global PE ids parked (fiber backend)
    std::condition_variable cv;      ///< thread backend park (waits on rv_mu_)
  };

  /// Finds or creates the cell for `comm_id` (rv_mu_ held). Creation is
  /// cold — once per communicator; warm rendezvous only look up.
  RendezvousCell& rv_cell_locked(std::uint64_t comm_id, int size);

  /// Parks the calling member until the cell's generation advances
  /// (rv_mu_ held via `lock`); throws RunAborted if the run was aborted.
  void rv_park(std::unique_lock<std::mutex>& lock, RendezvousCell& cell,
               int pe);

  /// Releases a completed generation: bumps gen, wakes every parked member
  /// (rv_mu_ held).
  void rv_release_locked(RendezvousCell& cell);

  /// Round-major replay of the dissemination barrier over `members` —
  /// performed by the last arriver on behalf of all members (who are all
  /// parked, so their contexts are safe to write).
  void replay_barrier(const std::vector<int>& members,
                      std::vector<double>& arrivals);

  /// Per-run reset of clocks/stats/abort state shared by run() and
  /// start_run(); draws the run's congestion factor.
  void prepare_run();
  /// The per-PE body of a run: builds the world Comm and executes the
  /// program, swallowing the RunAborted/NetworkError unwinds of an aborted
  /// run so the backend's fiber/thread always finishes normally.
  void run_pe(int pe, const std::function<void(Comm&)>& program);
  /// prepare_run + execute-on-all-PEs + join, without the failure check —
  /// the synchronous core of run() and of start_run's non-fiber fallback.
  void run_sync(const std::function<void(Comm&)>& program);
  /// Post-run failure check shared by run() and finish_run(): clears the
  /// abort latch and returns the first abort reason, if any.
  std::optional<std::string> collect_failure();

  int num_pes_;
  MachineParams machine_;
  std::uint64_t seed_;
  EngineBackend backend_;
  std::uint64_t job_id_ = 0;
  bool coll_ff_ = true;
  double run_congestion_ = 1.0;
  std::uint64_t run_counter_ = 0;
  /// Declared before pes_ so mailboxes (which return nodes on teardown)
  /// are destroyed while their shard's pool is still alive. Private for a
  /// standalone engine; shared across jobs under a SortService.
  std::shared_ptr<EngineSubstrate> substrate_;
  std::shared_ptr<const std::vector<int>> world_members_;
  std::vector<std::unique_ptr<PeContext>> pes_;
  FiberPool* pool_ = nullptr;  ///< substrate's pool (fiber backend, p > 1)
  std::shared_ptr<FiberBatch> batch_;  ///< cached across runs (fiber backend)
  /// The in-flight batch while a run is executing — the wake target for
  /// deposit_message/rendezvous/abort paths. Null outside runs and on the
  /// thread/inline backends (which use the cv protocol instead).
  std::atomic<FiberBatch*> cur_batch_{nullptr};
  std::function<void(Comm&)> run_program_;  ///< keeps start_run's program alive
  // --- fast-forward board ---------------------------------------------------
  std::mutex rv_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RendezvousCell>> rv_cells_;
  std::atomic<std::int64_t> ff_barriers_{0};
  std::atomic<std::int64_t> ff_tallies_{0};
  // --- abort state (lossy NetworkModel runs only) --------------------------
  std::atomic<bool> failed_{false};
  std::mutex fail_mu_;
  std::string fail_msg_;  ///< winning abort_run reason (under fail_mu_)
  double fail_time_ = 0;  ///< virtual time of the winning failure
  int fail_pe_ = -1;      ///< PE of the winning failure (-1: host abort)
  bool drain_needed_ = false;   ///< last run failed; drain mailboxes first
};

/// Convenience: build an engine, run `program`, return the report.
RunReport run_spmd(int num_pes, const MachineParams& machine,
                   std::uint64_t seed,
                   const std::function<void(Comm&)>& program);

/// The backend `requested` resolves to on this host (kAuto → PMPS_ENGINE
/// env var, else fibers where supported) — what Engine::backend() would
/// report after construction.
EngineBackend resolve_engine_backend(
    EngineBackend requested = EngineBackend::kAuto);

/// Fiber worker-thread count the engine would choose for `num_pes` PEs
/// (PMPS_FIBER_WORKERS or the hardware concurrency, clamped to num_pes).
/// A shared substrate sized for arbitrary jobs passes INT_MAX.
int engine_fiber_workers(int num_pes);

/// Per-fiber stack size (PMPS_FIBER_STACK_KB, default 256 KiB).
std::size_t engine_fiber_stack_bytes();

}  // namespace pmps::net
