// The SPMD engine: owns p simulated PEs and runs a program on all of them.
//
// Algorithms are written once, SPMD style, against Comm (see comm.hpp) —
// exactly like an MPI rank program. Virtual time follows the single-ported
// α–β model of the paper's §2.1 (see machine.hpp); it is fully deterministic
// for a given seed.
//
// Execution backends (selectable, bit-for-bit identical results):
//   kFibers  — the default where supported: W ≈ hardware-thread workers run
//              all p PEs as cooperatively scheduled stackful fibers
//              (fiber.hpp). A PE blocking in a recv parks its fiber; the
//              depositing PE re-enqueues it. No per-run thread creation, no
//              wakeup broadcasts — this is what makes paper-scale PE counts
//              (p ≥ 4096, §7.3) simulable on one host.
//   kThreads — the seed backend: one OS thread per PE per run. Kept behind
//              the same interface for differential testing; select with
//              PMPS_ENGINE=threads (or explicitly in the constructor).
//
// Determinism does not depend on the backend: message matching is exact on
// (comm id, tag, source PE) and every PE owns its RNG streams and virtual
// clock, so same seed ⇒ same virtual times, same statistics, same output
// under either scheduler.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "net/machine.hpp"
#include "net/mailbox.hpp"
#include "net/stats.hpp"

namespace pmps::net {

class Comm;
class FiberPool;

/// How Engine::run executes the p simulated PEs.
enum class EngineBackend : int {
  kAuto = 0,     ///< PMPS_ENGINE env var, else fibers where supported
  kThreads = 1,  ///< legacy one-OS-thread-per-PE
  kFibers = 2,   ///< cooperative fibers on a fixed worker pool
};

/// Reusable Θ(p)-sized scratch for the hot collectives: the per-call count
/// vectors of coll::sparse_exchange_into and the working arrays of the
/// Bruck counts exchange (coll::alltoall_counts_into). Per-PE and shared
/// by every Comm of that PE, so a delivery's repeated sparse exchanges
/// reuse warm capacity instead of allocating 2+ Θ(p) vectors per call.
/// The collectives never nest within one PE, so distinct fields are never
/// aliased by a live use.
struct CollScratch {
  std::vector<std::int64_t> counts_out, counts_in, seq_per_dest;
  std::vector<std::int32_t> bruck_tmp, bruck_block, bruck_in;
};

/// All mutable per-PE state. Owned by the engine, accessed only by the
/// thread or fiber running that PE (mailbox deposits aside, which are
/// internally synchronised).
struct PeContext {
  int pe = -1;
  double clock = 0;  ///< virtual time (seconds)
  Phase phase = Phase::kOther;
  bool free_mode = false;  ///< suppress all charging (precomputation steps)
  /// Straggler dilation from the machine's NetworkModel (1.0 when healthy):
  /// multiplies local-computation charges (Comm::charge) only — waiting
  /// (advance_to) and communication costs are not compute-bound.
  double dilation = 1.0;
  /// Per-run ordinal of the next network send: the replay-stable identity
  /// the NetworkModel hashes its fault decisions from.
  std::uint64_t send_seq = 0;
  Mailbox mailbox;
  CommStats stats;
  CollScratch coll_scratch;
  Xoshiro256 rng;        ///< algorithmic randomness (shared seed semantics)
  Xoshiro256 noise_rng;  ///< communication jitter stream

  /// Advance the virtual clock, attributing the time to the current phase.
  void advance(double dt) {
    if (free_mode) return;
    clock += dt;
    stats.phase_time[static_cast<int>(phase)] += dt;
  }
  /// Jump the clock forward to at least `t` (waiting for a message).
  void advance_to(double t) {
    if (t > clock) advance(t - clock);
  }
};

/// RAII guard that makes all communication/computation free (not charged to
/// virtual time and not counted in statistics) — used for steps the paper
/// treats as precomputation, e.g. communicator construction (§7.1), and for
/// out-of-band bookkeeping inside sparse exchanges.
class FreeModeGuard {
 public:
  explicit FreeModeGuard(PeContext& ctx) : ctx_(ctx), prev_(ctx.free_mode) {
    ctx_.free_mode = true;
  }
  ~FreeModeGuard() { ctx_.free_mode = prev_; }
  FreeModeGuard(const FreeModeGuard&) = delete;
  FreeModeGuard& operator=(const FreeModeGuard&) = delete;

 private:
  PeContext& ctx_;
  bool prev_;
};

class Engine {
 public:
  Engine(int num_pes, MachineParams machine, std::uint64_t seed = 1,
         EngineBackend backend = EngineBackend::kAuto);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `program` on all PEs and blocks until every PE finished. May be
  /// called repeatedly; clocks and stats reset between runs, and the fiber
  /// pool (workers, stacks) is reused across runs.
  void run(const std::function<void(Comm&)>& program);

  int num_pes() const { return num_pes_; }
  const MachineParams& machine() const { return machine_; }
  std::uint64_t seed() const { return seed_; }
  /// The backend actually in use (kAuto resolved at construction).
  EngineBackend backend() const { return backend_; }
  /// Correlated congestion factor (≥ 1) for island/global links, drawn once
  /// per run when machine().congestion_noise_frac > 0.
  double run_congestion() const { return run_congestion_; }

  PeContext& pe_context(int pe) { return *pes_[pe]; }
  const PeContext& pe_context(int pe) const { return *pes_[pe]; }

  /// Message delivery/pickup for Comm: routes through the backend's blocking
  /// protocol (fiber park/re-enqueue, or targeted cv wait for threads).
  void deposit_message(int dest_pe, Message&& m);
  Message retrieve_message(PeContext& ctx, const MsgKey& key);

  /// Recycled payload buffers: senders acquire, receivers release after
  /// copying the payload out (see BufferPool in mailbox.hpp).
  BufferPool& buffer_pool() { return buffer_pool_; }

  /// Recycled mailbox nodes, shared by every PE's mailbox (see MsgNodePool
  /// in mailbox.hpp).
  MsgNodePool& node_pool() { return node_pool_; }

  /// Aborts the current run with a per-run error: records the first `why`,
  /// poisons every mailbox so blocked PEs unwind (RunAborted) instead of
  /// waiting forever for a dead sender, and makes run() rethrow the reason
  /// as a NetworkError after every PE has finished. Called by Comm when a
  /// lossy NetworkModel exhausts its retry budget; safe from any PE.
  void abort_run(const std::string& why);

  /// Aggregated results of the last run().
  RunReport report() const;

 private:
  int num_pes_;
  MachineParams machine_;
  std::uint64_t seed_;
  EngineBackend backend_;
  double run_congestion_ = 1.0;
  std::uint64_t run_counter_ = 0;
  /// Declared before pes_ so mailboxes (which return nodes on teardown)
  /// are destroyed while the pool is still alive.
  MsgNodePool node_pool_;
  std::vector<std::unique_ptr<PeContext>> pes_;
  std::unique_ptr<FiberPool> pool_;  ///< lazily created (fiber backend, p > 1)
  BufferPool buffer_pool_;
  // --- abort state (lossy NetworkModel runs only) --------------------------
  std::atomic<bool> failed_{false};
  std::mutex fail_mu_;
  std::string fail_msg_;        ///< first abort_run reason (under fail_mu_)
  bool drain_needed_ = false;   ///< last run failed; drain mailboxes first
};

/// Convenience: build an engine, run `program`, return the report.
RunReport run_spmd(int num_pes, const MachineParams& machine,
                   std::uint64_t seed,
                   const std::function<void(Comm&)>& program);

}  // namespace pmps::net
