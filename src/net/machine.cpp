#include "net/machine.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace pmps::net {

MachineParams MachineParams::supermuc_like() {
  MachineParams m;
  m.pes_per_node = 16;
  m.nodes_per_island = 512;

  // Latencies: shared-memory exchange within a node, one switch hop within
  // an island, several hops plus congestion across the pruned tree.
  m.alpha[static_cast<int>(LinkLevel::kSelf)] = 0.0;
  m.alpha[static_cast<int>(LinkLevel::kNode)] = 0.5e-6;
  m.alpha[static_cast<int>(LinkLevel::kIsland)] = 2.0e-6;
  m.alpha[static_cast<int>(LinkLevel::kGlobal)] = 4.0e-6;

  // Bandwidths per PE. FDR10 gives ~5 GB/s per node; 16 MPI ranks share the
  // adapter, so ~0.3 GB/s per PE for island traffic, and the 4:1 pruning
  // makes cross-island traffic ~4x worse. Within a node, memcpy-level.
  m.beta[static_cast<int>(LinkLevel::kSelf)] = 0.0;
  m.beta[static_cast<int>(LinkLevel::kNode)] = 1.0 / 4.0e9;    // 4 GB/s
  m.beta[static_cast<int>(LinkLevel::kIsland)] = 1.0 / 0.3e9;  // 0.3 GB/s
  m.beta[static_cast<int>(LinkLevel::kGlobal)] = 1.0 / 0.075e9;

  // Local work: a 2.3 GHz Sandy Bridge core sorts 64-bit integers with
  // std::sort at roughly 9-10 ns per element per log2(n) ... calibrated so
  // that n/p = 1e7 local sorting takes ~2s as in the paper's Table 2 runs.
  m.sort_per_elem = 9.0e-9;
  m.merge_per_elem = 4.0e-9;
  m.partition_per_elem = 2.5e-9;  // branchless, no mispredictions [32]
  m.copy_per_byte = 1.0 / 8.0e9;
  m.compare_cost = 2.0e-9;
  return m;
}

MachineParams MachineParams::flat(double alpha_s, double beta_s_per_byte) {
  MachineParams m = supermuc_like();
  for (int i = 1; i < 4; ++i) {
    m.alpha[i] = alpha_s;
    m.beta[i] = beta_s_per_byte;
  }
  // One flat level: everything is "global".
  m.pes_per_node = 1;
  m.nodes_per_island = 1 << 30;
  return m;
}

LinkLevel MachineParams::level_between(int pe_a, int pe_b) const {
  if (pe_a == pe_b) return LinkLevel::kSelf;
  if (pe_a / pes_per_node == pe_b / pes_per_node) return LinkLevel::kNode;
  if (pe_a / pes_per_island() == pe_b / pes_per_island())
    return LinkLevel::kIsland;
  return LinkLevel::kGlobal;
}

double MachineParams::sort_cost(std::int64_t n) const {
  if (n <= 0) return 0;
  return sort_per_elem * static_cast<double>(n) *
         std::log2(std::max<double>(static_cast<double>(n), 2.0));
}

double MachineParams::merge_cost(std::int64_t n, std::int64_t ways) const {
  if (n <= 0) return 0;
  return merge_per_elem * static_cast<double>(n) *
         std::log2(std::max<double>(static_cast<double>(ways), 2.0));
}

double MachineParams::partition_cost(std::int64_t n,
                                     std::int64_t buckets) const {
  if (n <= 0) return 0;
  return partition_per_elem * static_cast<double>(n) *
         std::log2(std::max<double>(static_cast<double>(buckets), 2.0));
}

}  // namespace pmps::net
