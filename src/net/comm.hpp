// Comm: an MPI-communicator-like handle for SPMD programs on the simulated
// cluster. Each PE (thread) holds its own Comm instance; Comm::split()
// creates sub-communicators for the recursion of the multi-level sorting
// algorithms (its cost is not charged, matching the paper's §7.1 note that
// communicator construction is precomputation).
//
// Point-to-point semantics: send() is asynchronous (deposits into the
// destination mailbox with a virtual arrival time); recv() blocks the PE —
// parking its fiber under the fiber engine, or its OS thread under the
// legacy backend — until the matching message exists, and advances the
// virtual clock to no earlier than the arrival time. Tags are allocated in
// lockstep via next_tag_block(); higher-level collectives live in
// coll/collectives.hpp.

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "net/engine.hpp"

namespace pmps::net {

class Comm {
 public:
  /// World communicator for PE `pe` (used by Engine).
  Comm(Engine* engine, int pe);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_->size()); }
  int world_rank() const { return ctx_->pe; }
  int world_size() const { return engine_->num_pes(); }
  int member(int rank) const { return (*members_)[rank]; }

  Engine& engine() const { return *engine_; }
  const MachineParams& machine() const { return engine_->machine(); }
  PeContext& ctx() const { return *ctx_; }
  Xoshiro256& rng() const { return ctx_->rng; }

  // --- virtual time ---------------------------------------------------------
  double now() const { return ctx_->clock; }
  /// Charges local computation. Straggler PEs (NetworkModel compute
  /// dilation) run it dilation× slower; healthy PEs multiply by exactly
  /// 1.0, which keeps the clean path bit-identical.
  void charge(double seconds) const {
    ctx_->advance(seconds * ctx_->dilation);
  }
  void set_phase(Phase p) const { ctx_->phase = p; }
  Phase phase() const { return ctx_->phase; }

  // --- tags -----------------------------------------------------------------
  /// Returns the base of a fresh block of 2^20 tags. All members of a
  /// communicator call this the same number of times (SPMD lockstep), so
  /// the returned base is identical on every member.
  std::uint64_t next_tag_block() { return (seq_++) << 20; }

  // --- point-to-point (typed, trivially copyable payloads) -------------------
  template <Sortable T>
  void send(int dest_rank, std::uint64_t tag, std::span<const T> data) {
    send_bytes(dest_rank, tag,
               {reinterpret_cast<const std::byte*>(data.data()),
                data.size_bytes()});
  }

  template <Sortable T>
  std::vector<T> recv(int src_rank, std::uint64_t tag) {
    Message m = recv_bytes(src_rank, tag);
    PMPS_CHECK(m.payload.size() % sizeof(T) == 0);
    std::vector<T> out(m.payload.size() / sizeof(T));
    if (!m.payload.empty())
      std::memcpy(out.data(), m.payload.data(), m.payload.size());
    release_payload(std::move(m));
    return out;
  }

  /// Receives a message of exactly `dest.size()` elements directly into
  /// `dest` — no intermediate typed vector; the payload buffer goes back to
  /// the engine's pool. The flat collectives use this to land parts at their
  /// offset in one contiguous result buffer.
  template <Sortable T>
  void recv_into(int src_rank, std::uint64_t tag, std::span<T> dest) {
    Message m = recv_bytes(src_rank, tag);
    PMPS_CHECK(m.payload.size() == dest.size_bytes());
    if (!m.payload.empty())
      std::memcpy(dest.data(), m.payload.data(), m.payload.size());
    release_payload(std::move(m));
  }

  /// Receives a message and appends its elements to `out` (single grow, no
  /// intermediate vector); returns the number of elements appended.
  template <Sortable T>
  std::size_t recv_append(int src_rank, std::uint64_t tag,
                          std::vector<T>& out) {
    Message m = recv_bytes(src_rank, tag);
    PMPS_CHECK(m.payload.size() % sizeof(T) == 0);
    const std::size_t n = m.payload.size() / sizeof(T);
    if (n > 0) {
      const std::size_t old = out.size();
      out.resize(old + n);
      std::memcpy(out.data() + old, m.payload.data(), m.payload.size());
    }
    release_payload(std::move(m));
    return n;
  }

  /// Sends a single value.
  template <Sortable T>
  void send_one(int dest_rank, std::uint64_t tag, const T& v) {
    send<T>(dest_rank, tag, std::span<const T>(&v, 1));
  }

  template <Sortable T>
  T recv_one(int src_rank, std::uint64_t tag) {
    auto v = recv<T>(src_rank, tag);
    PMPS_CHECK(v.size() == 1);
    return v[0];
  }

  void send_bytes(int dest_rank, std::uint64_t tag,
                  std::span<const std::byte> payload);
  Message recv_bytes(int src_rank, std::uint64_t tag);

  /// Idle-phase fast-forward for coll::barrier: rendezvous all members on
  /// the engine's board and let the last arriver replay the barrier's
  /// clock/stats/noise effects bit-identically in one step. Returns false
  /// when ineligible (PMPS_COLL_FF=0 or a NetworkModel is installed) — the
  /// caller must then run the real message-by-message barrier.
  bool barrier_fast_forward();

  /// Engine-level sparse-counts rendezvous replacing the free-mode dense
  /// Bruck exchange of coll::sparse_exchange_into: submit sorted
  /// (dest rank, count) pairs, receive (src rank, count) pairs sorted by
  /// src. See Engine::tally_counts.
  void tally_counts(std::span<const CountPair> out,
                    std::vector<CountPair>& in);

  /// Returns a consumed message's payload buffer to the engine's pool.
  /// Callers of recv_bytes should release once done with the payload; the
  /// typed recv helpers do it automatically.
  void release_payload(Message&& m);

  // --- sub-communicators ------------------------------------------------------
  /// Splits this communicator: PEs with equal `color` form a new
  /// communicator, ranked by (key, parent rank). Collective over all
  /// members. Not charged to virtual time (precomputation, see §7.1).
  Comm split(int color, int key);

  /// Splits into `groups` equal consecutive groups; returns the
  /// sub-communicator for this PE's group. Requires size() % groups == 0
  /// unless allow_uneven.
  Comm split_consecutive(int groups);

 private:
  Comm(Engine* engine, PeContext* ctx,
       std::shared_ptr<const std::vector<int>> members, int rank,
       std::uint64_t comm_id);

  /// Network send under an installed NetworkModel (jitter-only, or the full
  /// ack/retransmit protocol when the model is lossy): advances the sender's
  /// clock and returns the message's virtual arrival time at the receiver.
  /// Throws NetworkError (after Engine::abort_run) on retry exhaustion.
  double send_with_model(const NetworkModel& model, LinkLevel lvl, int dest_pe,
                         std::size_t bytes, double cost);

  Engine* engine_;
  PeContext* ctx_;
  std::shared_ptr<const std::vector<int>> members_;  // global PE ids, sorted
  int rank_;
  std::uint64_t comm_id_;
  std::uint64_t seq_ = 1;
};

}  // namespace pmps::net
