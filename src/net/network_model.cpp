#include "net/network_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/random.hpp"

namespace pmps::net {
namespace {

// Decision hash: one 64-bit value per (seed, src, dst, seq, attempt, ack,
// salt). Pure, so every fault decision replays bit-identically and is
// independent of scheduling order across PEs.
std::uint64_t attempt_hash(std::uint64_t seed, const MsgAttempt& a,
                           std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ (a.seq * 0x9e3779b97f4a7c15ULL + 1));
  h = mix64(h ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      a.src_pe))
                  << 32) |
                 static_cast<std::uint32_t>(a.dst_pe)));
  h = mix64(h ^ (static_cast<std::uint64_t>(a.attempt) << 1) ^
            (a.ack ? 1ULL : 0ULL));
  return h;
}

double hash_uniform(std::uint64_t h) { return (h >> 11) * 0x1.0p-53; }

// Approximately standard-normal deviate from one hash (Irwin–Hall with
// three uniforms, same approximation the comm-noise path uses).
double hash_gauss(std::uint64_t h) {
  const double u0 = hash_uniform(mix64(h + 1));
  const double u1 = hash_uniform(mix64(h + 2));
  const double u2 = hash_uniform(mix64(h + 3));
  return (u0 + u1 + u2 - 1.5) * 2.0;
}

constexpr std::uint64_t kSaltDataDrop = 0x6c6f7373'64617461ULL;
constexpr std::uint64_t kSaltAckDrop = 0x6c6f7373'2061636bULL;
constexpr std::uint64_t kSaltJitter = 0x6a697474'65722121ULL;
constexpr std::uint64_t kSaltStraggler = 0x73747261'67676c65ULL;

constexpr std::size_t kNoScript = ~std::size_t{0};

}  // namespace

ReliableOutcome simulate_reliable_send(const NetworkModel& model,
                                       const RetransmitParams& rp,
                                       MsgAttempt base, double data_cost,
                                       double ack_cost) {
  ReliableOutcome out;
  double elapsed = 0;       // sender time since protocol start
  double timeout = rp.rto;  // current retransmit timeout (backs off)
  double best_ack = -1;     // earliest ack arrival seen so far, -1 = none
  std::int64_t acks_generated = 0;
  std::int64_t delivered_copies = 0;
  const int max_attempts = std::max(rp.max_retries, 0) + 1;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    base.attempt = attempt;
    base.ack = false;
    // Transmit one copy. The multiply by 1.0 and add of 0.0 below are exact,
    // which is what keeps a neutral model bit-identical to the clean path.
    const double cost = data_cost * model.latency_factor(base);
    const double end = elapsed + cost;
    out.attempts = attempt + 1;

    if (!model.drop_data(base)) {
      const double arrival = end + model.extra_delay(base);
      if (delivered_copies++ == 0) {
        // First copy to survive: this is the one the mailbox receives.
        out.arrival_dt = arrival;
      } else {
        ++out.dup_data;  // transport suppresses the duplicate copy
      }
      MsgAttempt ack = base;
      ack.ack = true;
      ack.bytes = rp.ack_bytes;
      if (!model.drop_ack(ack)) {
        const double ack_arrival =
            arrival + ack_cost * model.latency_factor(ack) +
            model.extra_delay(ack);
        ++acks_generated;
        // Out-of-order acks: completion is gated on the earliest-arriving
        // ack, whichever attempt produced it; the rest are duplicates.
        best_ack = best_ack < 0 ? ack_arrival : std::min(best_ack, ack_arrival);
      } else {
        ++out.ack_drops;
      }
    } else {
      ++out.data_drops;
    }

    const double deadline = end + timeout;
    if (best_ack >= 0 && best_ack <= deadline) {
      // Success path: the sender is busy only for its own transmissions and
      // the timeout gaps it actually sat through — the ack costs it nothing,
      // so a first-try success has finish_dt == data_cost exactly.
      out.delivered = true;
      out.finish_dt = end;
      out.retransmits = attempt;
      out.dup_acks = acks_generated > 0 ? acks_generated - 1 : 0;
      return out;
    }
    elapsed = deadline;  // sat out the full timeout before retransmitting
    timeout *= rp.backoff;
  }

  out.delivered = false;
  out.finish_dt = elapsed;
  out.retransmits = max_attempts - 1;
  out.dup_acks = acks_generated > 0 ? acks_generated - 1 : 0;
  return out;
}

// --- JitterModel -----------------------------------------------------------

JitterModel::JitterModel(double sigma, std::uint64_t seed) : seed_(seed) {
  sigma_[0] = 0;
  sigma_[1] = sigma_[2] = sigma_[3] = sigma;
}

JitterModel::JitterModel(const double (&sigma)[4], std::uint64_t seed)
    : seed_(seed) {
  for (int i = 0; i < 4; ++i) sigma_[i] = sigma[i];
  sigma_[0] = 0;
}

double JitterModel::latency_factor(const MsgAttempt& a) const {
  const double sigma = sigma_[static_cast<int>(a.level)];
  if (sigma <= 0) return 1.0;
  const double g = hash_gauss(attempt_hash(seed_, a, kSaltJitter));
  return std::exp(sigma * std::abs(g));  // ≥ 1: jitter only ever delays
}

// --- LossModel -------------------------------------------------------------

LossModel::LossModel(double loss, double ack_loss, RetransmitParams rp,
                     std::uint64_t seed)
    : loss_(loss), ack_loss_(ack_loss < 0 ? loss : ack_loss), rp_(rp),
      seed_(seed) {
  PMPS_CHECK_MSG(loss_ < 1.0 && ack_loss_ < 1.0,
                 "loss rate 1.0 can never deliver");
}

bool LossModel::drop_data(const MsgAttempt& a) const {
  if (loss_ <= 0) return false;
  // Same hash for every rate: drop sets are nested across loss rates, so
  // virtual-time inflation is monotone in `loss` for a fixed seed.
  return hash_uniform(attempt_hash(seed_, a, kSaltDataDrop)) < loss_;
}

bool LossModel::drop_ack(const MsgAttempt& a) const {
  if (ack_loss_ <= 0) return false;
  return hash_uniform(attempt_hash(seed_, a, kSaltAckDrop)) < ack_loss_;
}

// --- StragglerModel --------------------------------------------------------

StragglerModel::StragglerModel(int p, int count, double factor,
                               std::uint64_t seed)
    : factor_(factor), straggler_(static_cast<std::size_t>(std::max(p, 0)), 0) {
  PMPS_CHECK_MSG(factor >= 1.0, "straggler factor must be >= 1");
  count = std::clamp(count, 0, p);
  std::vector<int> ids(static_cast<std::size_t>(p));
  std::iota(ids.begin(), ids.end(), 0);
  Xoshiro256 rng(mix64(seed ^ kSaltStraggler));
  for (int i = 0; i < count; ++i) {  // partial Fisher–Yates: first `count`
    const auto j = static_cast<std::size_t>(i) +
                   rng.bounded(static_cast<std::uint64_t>(p - i));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
    straggler_[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] = 1;
  }
}

double StragglerModel::compute_dilation(int pe) const {
  if (pe < 0 || static_cast<std::size_t>(pe) >= straggler_.size()) return 1.0;
  return straggler_[static_cast<std::size_t>(pe)] ? factor_ : 1.0;
}

std::vector<int> StragglerModel::stragglers() const {
  std::vector<int> out;
  for (std::size_t pe = 0; pe < straggler_.size(); ++pe)
    if (straggler_[pe]) out.push_back(static_cast<int>(pe));
  return out;
}

// --- ScriptedModel ---------------------------------------------------------

void ScriptedModel::add_script(int src_pe, int dst_pe, MsgScript script) {
  streams_[{src_pe, dst_pe}].scripts.push_back(std::move(script));
}

const ScriptedModel::MsgScript* ScriptedModel::find(const MsgAttempt& a) const {
  const auto it = streams_.find({a.src_pe, a.dst_pe});
  if (it == streams_.end()) return nullptr;
  Stream& s = it->second;
  if (a.seq != s.cur_seq) {
    // New message on this stream: bind the next unassigned script (messages
    // consume scripts in send order, like libcurvecpr's latency array).
    s.cur_seq = a.seq;
    s.cur = s.next < s.scripts.size() ? s.next++ : kNoScript;
  }
  return s.cur == kNoScript ? nullptr : &s.scripts[s.cur];
}

namespace {
double script_entry(const std::vector<double>& entries, int attempt) {
  const auto i = static_cast<std::size_t>(attempt);
  return i < entries.size() ? entries[i] : 0.0;
}
}  // namespace

bool ScriptedModel::drop_data(const MsgAttempt& a) const {
  const MsgScript* s = find(a);
  return s != nullptr && script_entry(s->data, a.attempt) < 0;
}

bool ScriptedModel::drop_ack(const MsgAttempt& a) const {
  const MsgScript* s = find(a);
  return s != nullptr && script_entry(s->ack, a.attempt) < 0;
}

double ScriptedModel::extra_delay(const MsgAttempt& a) const {
  const MsgScript* s = find(a);
  if (s == nullptr) return 0.0;
  const double v = script_entry(a.ack ? s->ack : s->data, a.attempt);
  return v > 0 ? v : 0.0;
}

// --- ComposedModel ---------------------------------------------------------

ComposedModel::ComposedModel(
    std::vector<std::shared_ptr<const NetworkModel>> parts,
    RetransmitParams rp)
    : parts_(std::move(parts)), rp_(rp) {}

bool ComposedModel::lossy() const {
  for (const auto& m : parts_)
    if (m->lossy()) return true;
  return false;
}

double ComposedModel::latency_factor(const MsgAttempt& a) const {
  double f = 1.0;
  for (const auto& m : parts_) f *= m->latency_factor(a);
  return f;
}

double ComposedModel::extra_delay(const MsgAttempt& a) const {
  double d = 0.0;
  for (const auto& m : parts_) d += m->extra_delay(a);
  return d;
}

bool ComposedModel::drop_data(const MsgAttempt& a) const {
  for (const auto& m : parts_)
    if (m->drop_data(a)) return true;
  return false;
}

bool ComposedModel::drop_ack(const MsgAttempt& a) const {
  for (const auto& m : parts_)
    if (m->drop_ack(a)) return true;
  return false;
}

double ComposedModel::compute_dilation(int pe) const {
  double f = 1.0;
  for (const auto& m : parts_) f *= m->compute_dilation(pe);
  return f;
}

// --- FaultConfig -----------------------------------------------------------

std::shared_ptr<const NetworkModel> FaultConfig::build(
    int p, std::uint64_t seed) const {
  std::vector<std::shared_ptr<const NetworkModel>> parts;
  if (jitter_sigma > 0)
    parts.push_back(std::make_shared<JitterModel>(jitter_sigma, seed));
  const double al = ack_loss < 0 ? loss : ack_loss;
  if (loss > 0 || al > 0)
    parts.push_back(std::make_shared<LossModel>(loss, al, retransmit, seed));
  if (stragglers > 0)
    parts.push_back(
        std::make_shared<StragglerModel>(p, stragglers, straggle_factor, seed));
  if (parts.empty()) return nullptr;
  if (parts.size() == 1) return parts.front();
  return std::make_shared<ComposedModel>(std::move(parts), retransmit);
}

}  // namespace pmps::net
