#include "harness/tables.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace pmps::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  PMPS_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%s%-*s", c == 0 ? "" : "  ",
                  static_cast<int>(width[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(header_);
  std::size_t total = header_.size() - 1;
  for (auto w : width) total += w + 1;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv() const {
  auto print_row = [](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%s%s", c == 0 ? "" : ",", row[c].c_str());
    std::printf("\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double quantile(std::vector<double> values, double q) {
  PMPS_CHECK(!values.empty() && q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace pmps::harness
