#include "harness/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/math.hpp"

namespace pmps::harness {

namespace {

using net::LinkLevel;
using net::MachineParams;
using net::Phase;

constexpr double kWord = 8.0;  // bytes per element (64-bit keys)

/// Worst link level spanned by a communicator of `span` consecutive PEs.
LinkLevel span_level(const MachineParams& m, std::int64_t span) {
  if (span <= 1) return LinkLevel::kSelf;
  if (span <= m.pes_per_node) return LinkLevel::kNode;
  if (span <= static_cast<std::int64_t>(m.pes_per_island()))
    return LinkLevel::kIsland;
  return LinkLevel::kGlobal;
}

double alpha(const MachineParams& m, LinkLevel l) {
  return m.alpha[static_cast<int>(l)];
}
double beta(const MachineParams& m, LinkLevel l) {
  return m.beta[static_cast<int>(l)];
}

double log2d(double x) { return std::log2(std::max(x, 2.0)); }

/// α log p + βℓ-style collective cost on a communicator spanning `span` PEs
/// exchanging vectors of `words` elements (reduce/bcast/scan shapes).
double collective(const MachineParams& m, std::int64_t span, double words) {
  const LinkLevel l = span_level(m, span);
  const double rounds = log2d(static_cast<double>(span));
  return rounds * (alpha(m, l) + beta(m, l) * words * kWord);
}

/// The Exch(span, h, r) term: h words in/out per PE, r startups, plus the
/// NBX termination detection.
double exchange(const MachineParams& m, std::int64_t span, double h_words,
                double startups) {
  const LinkLevel l = span_level(m, span);
  return startups * alpha(m, l) + beta(m, l) * h_words * kWord +
         log2d(static_cast<double>(span)) * alpha(m, l);
}

}  // namespace

ModelPoint model_ams(const MachineParams& machine, std::int64_t p,
                     std::int64_t n_per_pe, const std::vector<int>& group_counts,
                     double a, int b, double epsilon) {
  PMPS_CHECK(p >= 1 && n_per_pe >= 0);
  ModelPoint pt;
  const auto k = group_counts.size();
  std::int64_t span = p;  // PEs in the current communicator
  double load = static_cast<double>(n_per_pe);
  const double n_total =
      static_cast<double>(p) * static_cast<double>(n_per_pe);

  for (std::size_t lvl = 0; lvl < k; ++lvl) {
    const int r = group_counts[lvl];
    const double br = static_cast<double>(b) * r;
    const LinkLevel l = span_level(machine, span);

    // --- splitter selection: sample + fast sort + splitter broadcast ------
    const double sample = a * br;  // global sample size on this communicator
    const double sqrt_span = std::sqrt(static_cast<double>(span));
    double t_split = 0;
    t_split += collective(machine, span, 0);                    // allreduce n
    t_split += alpha(machine, l) * log2d(static_cast<double>(span)) +
               beta(machine, l) * (sample / sqrt_span) * 3 * kWord;  // gossip
    t_split += machine.sort_cost(
        static_cast<std::int64_t>(sample / static_cast<double>(span)) + 1);
    t_split += collective(machine, span, br * 3);  // splitter distribution
    pt.add(Phase::kSplitterSelection, t_split);

    // --- bucket processing: partition + bucket-size allreduce + grouping --
    double t_bucket = machine.partition_cost(
        static_cast<std::int64_t>(load), static_cast<std::int64_t>(br));
    t_bucket += collective(machine, span, br);  // allreduce bucket sizes
    t_bucket += machine.compare_cost_n(
        static_cast<std::int64_t>(br * log2d(br)));  // scanning search
    pt.add(Phase::kBucketProcessing, t_bucket);

    // --- data delivery: Exch(span, (1+ε)n/p, O(r)) -------------------------
    const double eps_lvl = epsilon / static_cast<double>(k);
    load *= (1.0 + eps_lvl);
    pt.add(Phase::kDataDelivery,
           exchange(machine, span, load, 2.0 * r + 2.0));

    span /= r;
  }

  // --- final local sort ------------------------------------------------------
  pt.add(Phase::kLocalSort,
         machine.sort_cost(static_cast<std::int64_t>(load)) +
             // log n total comparisons depth (final sort dominates)
             0.0 * n_total);
  return pt;
}

ModelPoint model_rlm(const MachineParams& machine, std::int64_t p,
                     std::int64_t n_per_pe,
                     const std::vector<int>& group_counts) {
  PMPS_CHECK(p >= 1 && n_per_pe >= 0);
  ModelPoint pt;
  std::int64_t span = p;
  const double load = static_cast<double>(n_per_pe);
  const double n_total =
      static_cast<double>(p) * static_cast<double>(n_per_pe);

  pt.add(Phase::kLocalSort,
         machine.sort_cost(static_cast<std::int64_t>(load)));

  for (int r : group_counts) {
    // --- multiselect: O((α log p + rβ + r log(n/p)) log n) -----------------
    const double rounds = log2d(n_total);  // expected recursion depth
    const double per_round =
        collective(machine, span, static_cast<double>(r)) * 3 +
        machine.compare_cost_n(
            static_cast<std::int64_t>(r * log2d(load))) ;
    pt.add(Phase::kSplitterSelection, rounds * per_round);

    // --- delivery -----------------------------------------------------------
    pt.add(Phase::kDataDelivery, exchange(machine, span, load, 2.0 * r + 2.0));

    // --- merge received runs (≈ 2r of them) --------------------------------
    pt.add(Phase::kBucketProcessing,
           machine.merge_cost(static_cast<std::int64_t>(load), 2 * r));
    span /= r;
  }
  return pt;
}

ModelPoint model_single_level(const MachineParams& machine, std::int64_t p,
                              std::int64_t n_per_pe, bool sort_from_scratch) {
  ModelPoint pt;
  const double load = static_cast<double>(n_per_pe);
  const double n_total = load * static_cast<double>(p);
  const LinkLevel l = span_level(machine, p);

  pt.add(Phase::kLocalSort,
         machine.sort_cost(static_cast<std::int64_t>(load)));
  const double rounds = log2d(n_total);
  pt.add(Phase::kSplitterSelection,
         rounds * (collective(machine, p, static_cast<double>(p)) * 3 +
                   machine.compare_cost_n(static_cast<std::int64_t>(
                       static_cast<double>(p) * log2d(load)))));
  // Dense exchange: p−1 startups per PE.
  pt.add(Phase::kDataDelivery,
         static_cast<double>(p - 1) * alpha(machine, l) +
             beta(machine, l) * load * kWord);
  if (sort_from_scratch) {
    pt.add(Phase::kBucketProcessing,
           machine.sort_cost(static_cast<std::int64_t>(load)));
  } else {
    pt.add(Phase::kBucketProcessing,
           machine.merge_cost(static_cast<std::int64_t>(load), p));
  }
  return pt;
}

}  // namespace pmps::harness
