// Plain-text table printing for the benchmark harness (the rows/series of
// the paper's tables and figures), plus small statistics helpers.

#pragma once

#include <string>
#include <vector>

namespace pmps::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Prints with aligned columns to stdout.
  void print() const;
  /// Comma-separated form (for piping into plotting scripts).
  void print_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_seconds(double s);
std::string format_double(double v, int precision = 3);

/// Median of a (small) sample; the paper reports medians of 5 runs.
double median(std::vector<double> values);
double quantile(std::vector<double> values, double q);

}  // namespace pmps::harness
