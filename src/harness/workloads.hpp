// Workload generators for experiments and tests.
//
// The paper's experiments use uniformly random 64-bit integers (§7); we add
// the usual adversarial suspects so tests and ablations can stress splitter
// quality (duplicates, skew) and the data delivery bad cases of §4.3
// (globally sorted input concentrates each PE's data into one group).

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace pmps::harness {

enum class Workload {
  kUniform,       ///< i.i.d. uniform 64-bit keys (the paper's input)
  kGaussian,      ///< bell-shaped (sum of four uniforms)
  kZipfLike,      ///< heavily skewed towards small keys
  kSortedGlobal,  ///< input already globally sorted: PE i holds range i
  kReverseGlobal, ///< globally reverse sorted
  kAllEqual,      ///< every key identical (tie-breaking stress)
  kFewDistinct,   ///< only 8 distinct keys
  kLocalSorted,   ///< each PE's data sorted, ranges interleaved
};

inline constexpr Workload kAllWorkloads[] = {
    Workload::kUniform,      Workload::kGaussian,     Workload::kZipfLike,
    Workload::kSortedGlobal, Workload::kReverseGlobal, Workload::kAllEqual,
    Workload::kFewDistinct,  Workload::kLocalSorted,
};

inline std::string_view workload_name(Workload w) {
  switch (w) {
    case Workload::kUniform: return "uniform";
    case Workload::kGaussian: return "gaussian";
    case Workload::kZipfLike: return "zipf-like";
    case Workload::kSortedGlobal: return "sorted";
    case Workload::kReverseGlobal: return "reverse";
    case Workload::kAllEqual: return "all-equal";
    case Workload::kFewDistinct: return "few-distinct";
    case Workload::kLocalSorted: return "local-sorted";
  }
  return "?";
}

/// Generates PE `pe`'s share (n_local keys) of a p-PE workload.
inline std::vector<std::uint64_t> make_workload(Workload w, int pe, int p,
                                                std::int64_t n_local,
                                                std::uint64_t seed) {
  PMPS_CHECK(n_local >= 0 && pe >= 0 && pe < p);
  Xoshiro256 rng(seed, static_cast<std::uint64_t>(pe) + 0x77beef);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n_local));
  const std::uint64_t global_base =
      static_cast<std::uint64_t>(pe) * static_cast<std::uint64_t>(n_local);
  const std::uint64_t global_n =
      static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(n_local);

  for (std::int64_t i = 0; i < n_local; ++i) {
    const auto gi = global_base + static_cast<std::uint64_t>(i);
    switch (w) {
      case Workload::kUniform:
        out.push_back(rng());
        break;
      case Workload::kGaussian: {
        // Sum of four uniforms, keeps full 64-bit scale.
        const std::uint64_t v =
            (rng() >> 2) + (rng() >> 2) + (rng() >> 2) + (rng() >> 2);
        out.push_back(v);
        break;
      }
      case Workload::kZipfLike: {
        // u^4 concentrates mass near zero.
        const double u = rng.uniform();
        out.push_back(static_cast<std::uint64_t>(u * u * u * u * 1.8e19));
        break;
      }
      case Workload::kSortedGlobal:
        out.push_back(gi * 7919 + 1);
        break;
      case Workload::kReverseGlobal:
        out.push_back((global_n - gi) * 7919 + 1);
        break;
      case Workload::kAllEqual:
        out.push_back(42);
        break;
      case Workload::kFewDistinct:
        out.push_back(mix64(rng() % 8) >> 1);
        break;
      case Workload::kLocalSorted:
        // Sorted within the PE, but PE ranges fully interleaved.
        out.push_back(static_cast<std::uint64_t>(i) * 1000003 +
                      static_cast<std::uint64_t>(pe));
        break;
    }
  }
  return out;
}

/// Generates PE `pe`'s share of a sort-benchmark-style Record100 workload
/// (§7.3 / MinuteSort regime): uniform random 10-byte keys, payload filled
/// with the origin rank so tests can assert that payload bytes survive the
/// shuffle byte-for-byte (provenance — the pattern of
/// examples/minute_sort_records.cpp).
inline std::vector<Record100> make_record_workload(int pe, int p,
                                                   std::int64_t n_local,
                                                   std::uint64_t seed) {
  PMPS_CHECK(n_local >= 0 && pe >= 0 && pe < p);
  Xoshiro256 rng(seed, static_cast<std::uint64_t>(pe) + 0x77beef);
  std::vector<Record100> out(static_cast<std::size_t>(n_local));
  for (auto& rec : out) {
    for (auto& b : rec.key) b = static_cast<std::uint8_t>(rng.bounded(256));
    rec.payload.fill(static_cast<std::uint8_t>(pe & 0xff));
  }
  return out;
}

}  // namespace pmps::harness
