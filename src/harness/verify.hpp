// Output verification for distributed sorts.
//
// Checks the paper's output requirement: every PE's data sorted, no element
// on PE i greater than any element on PE i+1, and the output a permutation
// of the input (order-independent hash). Runs in FreeMode so verification
// costs nothing in virtual time.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "common/random.hpp"
#include "net/comm.hpp"

namespace pmps::harness {

using net::Comm;

/// Order-independent content hash (commutative sum of per-element mixes).
template <typename T>
std::uint64_t content_hash(std::span<const T> data) {
  std::uint64_t h = 0;
  for (const T& v : data) {
    std::uint64_t acc = 0xcbf29ce484222325ULL;  // FNV over the element bytes
    const auto* bytes = reinterpret_cast<const unsigned char*>(&v);
    for (std::size_t i = 0; i < sizeof(T); ++i)
      acc = (acc ^ bytes[i]) * 0x100000001b3ULL;
    h += mix64(acc);
  }
  return h;
}

/// Order-dependent signature of one PE's output: FNV over the element
/// bytes *in order*, keyed by the PE's rank. Summing these over PEs gives a
/// value that is equal iff every PE holds byte-identical output in the same
/// order — unlike content_hash, which is permutation-invariant. Bit-identity
/// tests (budgeted vs in-memory runs) compare this through the harness.
template <typename T>
std::uint64_t output_signature(int rank, std::span<const T> data) {
  std::uint64_t acc = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size_bytes(); ++i)
    acc = (acc ^ bytes[i]) * 0x100000001b3ULL;
  return mix64(acc ^ mix64(static_cast<std::uint64_t>(rank) + 1));
}

struct SortCheck {
  bool locally_sorted = true;
  bool globally_ordered = true;
  bool permutation_ok = true;
  std::int64_t total = 0;
  double imbalance = 0;  ///< max local count / (total/p) − 1
  /// Sum of the per-PE output_signature values — an order-dependent
  /// fingerprint of the whole distributed output (same on every PE).
  std::uint64_t out_signature = 0;

  bool ok() const { return locally_sorted && globally_ordered && permutation_ok; }
};

/// Collective check; identical result on every PE. `input_hash` and
/// `input_count` are this PE's pre-sort values.
template <typename T, typename Less = std::less<T>>
SortCheck verify_sorted_output(Comm& comm, std::span<const T> output,
                               std::uint64_t input_hash,
                               std::int64_t input_count, Less less = {}) {
  net::FreeModeGuard free_guard(comm.ctx());
  SortCheck res;

  const bool local_sorted =
      std::is_sorted(output.begin(), output.end(), less);

  // Boundaries: gather (count, first, last) and check the seams on rank 0.
  struct Boundary {
    std::int64_t count;
    T first;
    T last;
  };
  Boundary b{static_cast<std::int64_t>(output.size()), T{}, T{}};
  if (!output.empty()) {
    b.first = output.front();
    b.last = output.back();
  }
  // One Boundary per PE, so the gathered flat buffer is exactly the p
  // boundaries in rank order — walk it directly, no per-rank unwrapping.
  auto parts = coll::gatherv(
      comm, std::span<const Boundary>(&b, 1), /*root=*/0);
  std::uint8_t order_ok = 1;
  if (comm.rank() == 0) {
    bool have_prev = false;
    T prev{};
    for (const Boundary& bi : parts.flat()) {
      if (bi.count == 0) continue;
      if (have_prev && less(bi.first, prev)) order_ok = 0;
      prev = bi.last;
      have_prev = true;
    }
  }
  order_ok = coll::bcast_one<std::uint8_t>(comm, order_ok, 0);

  const std::uint64_t out_hash = content_hash(output);
  // Sum hashes and counts (wrap-around add via int64 reinterpret).
  std::vector<std::int64_t> sums{
      static_cast<std::int64_t>(out_hash),
      static_cast<std::int64_t>(input_hash),
      static_cast<std::int64_t>(output.size()),
      input_count,
      local_sorted ? 0 : 1,
      static_cast<std::int64_t>(output_signature(comm.rank(), output)),
  };
  sums = coll::allreduce_add(comm, std::move(sums));

  res.locally_sorted = sums[4] == 0;
  res.globally_ordered = order_ok != 0;
  res.permutation_ok = (sums[0] == sums[1]) && (sums[2] == sums[3]);
  res.total = sums[2];
  res.out_signature = static_cast<std::uint64_t>(sums[5]);
  const std::int64_t max_local = coll::allreduce_one<std::int64_t>(
      comm, static_cast<std::int64_t>(output.size()),
      [](std::int64_t a, std::int64_t x) { return std::max(a, x); });
  res.imbalance = res.total > 0
                      ? static_cast<double>(max_local) /
                                (static_cast<double>(res.total) /
                                 static_cast<double>(comm.size())) -
                            1.0
                      : 0.0;
  return res;
}

}  // namespace pmps::harness
