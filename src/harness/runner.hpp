// One-call experiment runner: builds a simulated cluster, generates a
// workload, runs a sorting algorithm, verifies the output, and returns the
// phase-timed report. All benches and integration tests go through this.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "ams/ams_sort.hpp"
#include "baseline/block_bitonic.hpp"
#include "baseline/gv_sample_sort.hpp"
#include "baseline/hypercube_quicksort.hpp"
#include "baseline/single_level.hpp"
#include "common/types.hpp"
#include "em/block_file.hpp"
#include "em/io_executor.hpp"
#include "em/memory_budget.hpp"
#include "harness/verify.hpp"
#include "harness/workloads.hpp"
#include "net/engine.hpp"
#include "net/network_model.hpp"
#include "rlm/rlm_sort.hpp"
#include "svc/service.hpp"

namespace pmps::harness {

enum class Algorithm {
  kAms,
  kRlm,
  kSampleSort1L,
  kMergesort1L,
  kMpSortLike,
  kGvSampleSort,
  kHypercubeQuicksort,
  kBlockBitonic,
};

inline std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kAms: return "AMS-sort";
    case Algorithm::kRlm: return "RLM-sort";
    case Algorithm::kSampleSort1L: return "sample-sort-1L";
    case Algorithm::kMergesort1L: return "mergesort-1L";
    case Algorithm::kMpSortLike: return "MP-sort-like";
    case Algorithm::kGvSampleSort: return "GV-sample-sort";
    case Algorithm::kHypercubeQuicksort: return "hypercube-quicksort";
    case Algorithm::kBlockBitonic: return "block-bitonic";
  }
  return "?";
}

/// Element type of a run: 8-byte keys (the paper's §7 experiments) or
/// 100-byte sort-benchmark records (the §7.3 MinuteSort regime).
enum class ElementKind { kU64, kRecord100 };

inline std::string_view element_name(ElementKind e) {
  switch (e) {
    case ElementKind::kU64: return "u64";
    case ElementKind::kRecord100: return "record100";
  }
  return "?";
}

struct RunConfig {
  int p = 16;
  std::int64_t n_per_pe = 1000;
  Workload workload = Workload::kUniform;
  /// Element type; kRecord100 ignores `workload` (records are always
  /// uniform-keyed with provenance payloads) and supports the kAms, kRlm
  /// and kGvSampleSort algorithms.
  ElementKind element = ElementKind::kU64;
  Algorithm algorithm = Algorithm::kAms;
  net::MachineParams machine = net::MachineParams::supermuc_like();
  std::uint64_t seed = 1;
  /// Execution backend (fibers by default; kThreads for differential runs).
  net::EngineBackend backend = net::EngineBackend::kAuto;

  /// Network fault injection: loss (+ ack/retransmit layer), jitter,
  /// stragglers — seeded from `seed`, so a run replays bit-identically.
  /// All-defaults (FaultConfig::any() == false) installs no model at all
  /// and the run is bit-identical to pre-fault-injection behavior.
  net::FaultConfig faults;

  /// Per-PE element-storage budget (0 = in-memory). Applies to the AMS,
  /// RLM, and GV sorters; spill counters are reported in RunResult::spill.
  em::MemoryBudget budget;

  ams::AmsConfig ams;            ///< used when algorithm == kAms
  rlm::RlmConfig rlm;            ///< used when algorithm == kRlm
  baseline::SingleLevelConfig single;  ///< used for the 1-level baselines
};

struct RunResult {
  net::RunReport report;
  SortCheck check;
  ams::AmsStats ams_stats;   ///< only for kAms
  em::SpillTotals spill;     ///< out-of-core I/O counters (all-zero in memory)

  double wall_time() const { return report.wall_time; }
  double phase(net::Phase p) const { return report.phase(p); }
  /// Reliability-layer totals (retransmits, drops, duplicates) summed over
  /// PEs; all zero on a clean run.
  const net::FaultTotals& faults() const { return report.faults; }
};

/// Self-contained state of one sort experiment's program: the config plus
/// everything rank 0 writes back. Held by shared_ptr so the program closure
/// can outlive the submitting frame (service jobs run asynchronously); the
/// spill counters live here too so budget.stats stays valid for the whole
/// run.
struct SortJobState {
  explicit SortJobState(const RunConfig& c) : cfg(c) {
    budget = cfg.budget;
    budget.stats = &spill_stats;
    // One spill file for the whole job: every PE's RunStore shares this
    // descriptor (slot ranges are allocated atomically, I/O is positional),
    // so budgeted sorts run at p far beyond RLIMIT_NOFILE. A caller that
    // already set shared_file keeps its own file.
    if (budget.enabled() && budget.shared_file == nullptr) {
      spill_file = std::make_unique<em::BlockFile>(budget.block_bytes);
      budget.shared_file = spill_file.get();
    }
    // Spill I/O overlap (PMPS_EM_IO, default async): one IoExecutor per
    // job drives write-behind and read-ahead for every PE's RunStore. A
    // caller that already set budget.io keeps it (the service path shares
    // one executor across jobs — see submit_sort_experiment).
    if (budget.enabled() && budget.io == nullptr) {
      const em::IoMode mode = em::io_mode_from_env();
      if (mode != em::IoMode::kSync) {
        io_executor =
            std::make_unique<em::IoExecutor>(em::io_threads_from_env(), mode);
        budget.io = io_executor.get();
      }
    }
  }
  RunConfig cfg;
  em::SpillStats spill_stats;
  std::unique_ptr<em::BlockFile> spill_file;  ///< one fd per job, all PEs
  std::unique_ptr<em::IoExecutor> io_executor;  ///< null under PMPS_EM_IO=sync
  em::MemoryBudget budget;
  std::mutex mu;
  SortCheck check;
  ams::AmsStats ams_stats;
};

namespace detail {

/// The Record100 variant of the sort program: same phases, same
/// verification, 100-byte elements. Only the sorters that are
/// element-type generic through the budgeted path run records.
inline void run_record_program(SortJobState& st, net::Comm& comm) {
  const RunConfig& cfg = st.cfg;
  auto data = make_record_workload(comm.rank(), cfg.p, cfg.n_per_pe, cfg.seed);
  const std::uint64_t in_hash =
      content_hash(std::span<const Record100>(data.data(), data.size()));
  const auto in_count = static_cast<std::int64_t>(data.size());

  ams::AmsStats stats;
  switch (cfg.algorithm) {
    case Algorithm::kAms: {
      auto a = cfg.ams;
      a.seed = cfg.seed;
      a.budget = st.budget;
      stats = ams::ams_sort(comm, data, a);
      break;
    }
    case Algorithm::kRlm: {
      auto r = cfg.rlm;
      r.seed = cfg.seed;
      r.budget = st.budget;
      rlm::rlm_sort(comm, data, r);
      break;
    }
    case Algorithm::kGvSampleSort: {
      baseline::GvConfig g;
      g.levels = cfg.ams.levels;
      g.seed = cfg.seed;
      g.budget = st.budget;
      baseline::gv_sample_sort(comm, data, g);
      break;
    }
    default:
      PMPS_CHECK_MSG(false,
                     "Record100 workloads support kAms/kRlm/kGvSampleSort");
  }

  auto check = verify_sorted_output(
      comm, std::span<const Record100>(data.data(), data.size()), in_hash,
      in_count);
  if (comm.rank() == 0) {
    std::lock_guard lock(st.mu);
    st.check = check;
    st.ams_stats = std::move(stats);
  }
}

}  // namespace detail

/// The per-rank SPMD program of a sort experiment — shared verbatim by the
/// serial runner and the service path, so a job's execution is the same
/// code in both.
inline std::function<void(net::Comm&)> make_sort_program(
    std::shared_ptr<SortJobState> st) {
  return [st = std::move(st)](net::Comm& comm) {
    const RunConfig& cfg = st->cfg;
    if (cfg.element == ElementKind::kRecord100) {
      detail::run_record_program(*st, comm);
      return;
    }
    auto data = make_workload(cfg.workload, comm.rank(), cfg.p, cfg.n_per_pe,
                              cfg.seed);
    const std::uint64_t in_hash =
        content_hash(std::span<const std::uint64_t>(data.data(), data.size()));
    const auto in_count = static_cast<std::int64_t>(data.size());

    ams::AmsStats stats;
    switch (cfg.algorithm) {
      case Algorithm::kAms: {
        auto a = cfg.ams;
        a.seed = cfg.seed;
        a.budget = st->budget;
        stats = ams::ams_sort(comm, data, a);
        break;
      }
      case Algorithm::kRlm: {
        auto r = cfg.rlm;
        r.seed = cfg.seed;
        r.budget = st->budget;
        rlm::rlm_sort(comm, data, r);
        break;
      }
      case Algorithm::kSampleSort1L:
        baseline::sample_sort_1l(comm, data, cfg.single);
        break;
      case Algorithm::kMergesort1L:
        baseline::mergesort_1l(comm, data, cfg.single);
        break;
      case Algorithm::kMpSortLike:
        baseline::mpsort_like(comm, data, cfg.single);
        break;
      case Algorithm::kGvSampleSort: {
        baseline::GvConfig g;
        g.levels = cfg.ams.levels;
        g.seed = cfg.seed;
        g.budget = st->budget;
        baseline::gv_sample_sort(comm, data, g);
        break;
      }
      case Algorithm::kHypercubeQuicksort: {
        baseline::HypercubeConfig h;
        h.seed = cfg.seed;
        baseline::hypercube_quicksort(comm, data, h);
        break;
      }
      case Algorithm::kBlockBitonic:
        baseline::block_bitonic_sort(comm, data);
        break;
    }

    auto check = verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()),
        in_hash, in_count);
    if (comm.rank() == 0) {
      std::lock_guard lock(st->mu);
      st->check = check;
      st->ams_stats = std::move(stats);
    }
  };
}

/// Assembles a RunResult from a finished experiment's state + report.
inline RunResult collect_sort_result(const SortJobState& st,
                                     net::RunReport report) {
  RunResult result;
  result.report = std::move(report);
  result.check = st.check;
  result.ams_stats = st.ams_stats;
  result.spill = st.spill_stats.totals();
  return result;
}

/// Runs one experiment end to end on a fresh engine.
inline RunResult run_sort_experiment(const RunConfig& cfg) {
  net::MachineParams machine = cfg.machine;
  if (cfg.faults.any()) machine.model = cfg.faults.build(cfg.p, cfg.seed);
  net::Engine engine(cfg.p, machine, cfg.seed, cfg.backend);
  auto st = std::make_shared<SortJobState>(cfg);
  engine.run(make_sort_program(st));
  return collect_sort_result(*st, engine.report());
}

/// A sort experiment submitted to a SortService: the service-side handle
/// plus the program state the result is assembled from.
struct SortJob {
  svc::JobHandle handle;
  std::shared_ptr<SortJobState> state;

  /// Waits for the job and returns its result, mirroring
  /// run_sort_experiment's contract: a job whose network model exhausted
  /// its retry budget throws NetworkError with the same message the serial
  /// run would have thrown. Throws runtime_error for a cancelled job.
  RunResult result() {
    svc::JobResult r = handle.wait();
    if (r.state == svc::JobState::kFailed) throw net::NetworkError(r.error);
    if (r.state == svc::JobState::kCancelled)
      throw std::runtime_error("sort job cancelled: " + r.error);
    return collect_sort_result(*state, std::move(r.report));
  }
};

/// Submits one experiment as a service job — the exact program and machine
/// run_sort_experiment(cfg) would execute, so the job's output, virtual
/// times and fault totals are bit-identical to the serial call. The
/// config's `backend` field is ignored (the service's backend governs).
inline SortJob submit_sort_experiment(svc::SortService& service,
                                      const RunConfig& cfg) {
  net::MachineParams machine = cfg.machine;
  if (cfg.faults.any()) machine.model = cfg.faults.build(cfg.p, cfg.seed);
  RunConfig job_cfg = cfg;
  // Budgeted service jobs share the service's I/O executor (one background
  // pool per service, like the substrate) instead of spinning up their own.
  if (job_cfg.budget.enabled() && job_cfg.budget.io == nullptr &&
      em::io_mode_from_env() != em::IoMode::kSync) {
    job_cfg.budget.io = service.io_executor();
  }
  auto st = std::make_shared<SortJobState>(job_cfg);
  svc::JobSpec spec;
  spec.num_pes = cfg.p;
  spec.machine = machine;
  spec.seed = cfg.seed;
  spec.program = make_sort_program(st);
  spec.name = std::string(algorithm_name(cfg.algorithm));
  SortJob job;
  job.state = std::move(st);
  job.handle = service.submit(std::move(spec));
  return job;
}

}  // namespace pmps::harness
