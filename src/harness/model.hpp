// Closed-form cost model for paper-scale predictions.
//
// Executing p = 32768 simulated PEs with 10⁷ elements each is not feasible
// on one host, so benches offer a `--paper-scale` mode that evaluates the
// paper's running-time bounds (Theorems 2 and 3 with explicit constants,
// using the *same* MachineParams as the executed simulation) on the exact
// grid of §7.2. The executed simulation validates the model at small scale;
// the model extends the curves to the paper's scale. See docs/DESIGN.md §1.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/machine.hpp"
#include "net/stats.hpp"

namespace pmps::harness {

struct ModelPoint {
  double total = 0;
  std::array<double, net::kNumPhases> phase{};

  double get(net::Phase p) const { return phase[static_cast<int>(p)]; }
  void add(net::Phase p, double t) {
    phase[static_cast<int>(p)] += t;
    total += t;
  }
};

/// Predicted AMS-sort time for p PEs, n/p elements per PE, the given group
/// counts per level, oversampling a and overpartitioning b.
ModelPoint model_ams(const net::MachineParams& machine, std::int64_t p,
                     std::int64_t n_per_pe, const std::vector<int>& group_counts,
                     double a, int b, double epsilon = 0.05);

/// Predicted RLM-sort time (perfect balance, multiselect splitter phase).
ModelPoint model_rlm(const net::MachineParams& machine, std::int64_t p,
                     std::int64_t n_per_pe, const std::vector<int>& group_counts);

/// Predicted single-level mergesort with a dense Θ(p)-startup exchange
/// (the MP-sort regime of §7.3). `sort_from_scratch` switches merge→sort.
ModelPoint model_single_level(const net::MachineParams& machine,
                              std::int64_t p, std::int64_t n_per_pe,
                              bool sort_from_scratch);

}  // namespace pmps::harness
