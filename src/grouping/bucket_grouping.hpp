// Bucket grouping for AMS-sort (paper §6 and Appendix C).
//
// Given the global sizes of br buckets (in splitter order), assign
// *consecutive ranges* of buckets to r PE groups such that the maximum
// group load L is minimal. The feasibility check is the scanning algorithm
// of §6 (greedy: open a new group when the next bucket would exceed L);
// Lemma 1 proves scanning + binary search on L is optimal.
//
// Three search strategies are provided:
//   group_buckets_naive     — plain binary search over integer L
//                             (O(B log n), the paper's prototype, §7.1)
//   group_buckets_optimal   — Appendix C's accelerated search: bounds are
//                             tightened to *realisable* group sizes after
//                             every scan (success → L = largest group used;
//                             failure → L = min over observed x+y overflow
//                             values), converging in O(B log B)
//   group_buckets_parallel  — Appendix C's parallel refinement: every PE
//                             probes one candidate per iteration and a
//                             min/max reduction narrows the range; O(1)
//                             iterations for b polynomial in r.

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "net/comm.hpp"

namespace pmps::grouping {

struct GroupingResult {
  std::int64_t max_load = 0;             ///< the optimal L
  std::vector<std::int64_t> group_first; ///< first bucket of each group (size r)
  int scans = 0;                         ///< feasibility probes performed

  /// Group of bucket b (groups cover consecutive ranges).
  int group_of(std::int64_t bucket) const {
    const auto it = std::upper_bound(group_first.begin(), group_first.end(),
                                     bucket);
    return static_cast<int>(it - group_first.begin()) - 1;
  }
};

namespace detail {

struct ScanOutcome {
  bool feasible = false;
  std::int64_t largest_group = 0;   ///< (success) largest group actually built
  std::int64_t min_overflow =       ///< (failure) min observed x+y, i.e. the
      std::numeric_limits<std::int64_t>::max();  ///< smallest useful larger L
  std::vector<std::int64_t> group_first;
};

/// The scanning algorithm: greedily fill groups with consecutive buckets,
/// starting a new group when adding the next bucket would exceed `limit`.
/// Feasible iff at most r groups are needed (and no single bucket > limit).
inline ScanOutcome scan(std::span<const std::int64_t> buckets, int r,
                        std::int64_t limit) {
  ScanOutcome out;
  out.group_first.push_back(0);
  std::int64_t load = 0;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(buckets.size()); ++i) {
    const std::int64_t b = buckets[static_cast<std::size_t>(i)];
    if (b > limit) {
      // A single bucket exceeding the limit can never fit.
      out.min_overflow = std::min(out.min_overflow, b);
      return out;
    }
    if (load + b > limit) {
      out.min_overflow = std::min(out.min_overflow, load + b);
      out.largest_group = std::max(out.largest_group, load);
      if (static_cast<int>(out.group_first.size()) == r) {
        return out;  // would need an (r+1)-th group
      }
      out.group_first.push_back(i);
      load = 0;
    }
    load += b;
  }
  out.largest_group = std::max(out.largest_group, load);
  out.feasible = true;
  while (static_cast<int>(out.group_first.size()) < r)
    out.group_first.push_back(static_cast<std::int64_t>(buckets.size()));
  return out;
}

inline std::int64_t total(std::span<const std::int64_t> buckets) {
  std::int64_t t = 0;
  for (auto b : buckets) t += b;
  return t;
}

inline std::int64_t max_bucket(std::span<const std::int64_t> buckets) {
  std::int64_t mx = 0;
  for (auto b : buckets) mx = std::max(mx, b);
  return mx;
}

}  // namespace detail

/// Plain binary search over integer candidate values of L.
inline GroupingResult group_buckets_naive(
    std::span<const std::int64_t> buckets, int r) {
  PMPS_CHECK(r >= 1 && !buckets.empty());
  const std::int64_t tot = detail::total(buckets);
  std::int64_t lo = std::max(detail::max_bucket(buckets),
                             (tot + r - 1) / r);  // both are lower bounds
  std::int64_t hi = tot;
  GroupingResult res;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    auto sc = detail::scan(buckets, r, mid);
    ++res.scans;
    if (sc.feasible) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  auto sc = detail::scan(buckets, r, lo);
  ++res.scans;
  PMPS_CHECK(sc.feasible);
  res.max_load = lo;
  res.group_first = std::move(sc.group_first);
  return res;
}

/// Appendix C accelerated search: after a successful scan the upper bound
/// drops to the largest group actually used (a realisable value); after a
/// failed scan the lower bound rises to the smallest overflow value x+y
/// observed (no L below it changes the failed partition).
inline GroupingResult group_buckets_optimal(
    std::span<const std::int64_t> buckets, int r) {
  PMPS_CHECK(r >= 1 && !buckets.empty());
  const std::int64_t tot = detail::total(buckets);
  std::int64_t lo =
      std::max(detail::max_bucket(buckets), (tot + r - 1) / r);
  std::int64_t hi = tot;
  GroupingResult res;
  std::vector<std::int64_t> best_groups;
  std::int64_t best = -1;
  while (lo <= hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    auto sc = detail::scan(buckets, r, mid);
    ++res.scans;
    if (sc.feasible) {
      best = sc.largest_group;  // realisable and ≤ mid
      best_groups = std::move(sc.group_first);
      hi = sc.largest_group - 1;
    } else {
      lo = sc.min_overflow;  // smallest L that can change the outcome
    }
  }
  PMPS_CHECK(best >= 0);
  res.max_load = best;
  res.group_first = std::move(best_groups);
  return res;
}

/// Appendix C, second observation: only L values in
/// [⌈n/r⌉−1, (1+O(1/b))·n/r] matter, and only O(br) consecutive-bucket
/// range sums fall inside that window. Enumerate exactly those candidates
/// with a sliding window and binary-search over the candidate *list* —
/// "saves a factor about two for the sequential algorithm". Falls back to
/// the general search when no candidate in the window is feasible (degraded
/// sampling can push the optimum outside it).
inline GroupingResult group_buckets_relevant_ranges(
    std::span<const std::int64_t> buckets, int r,
    double window_factor = 2.0) {
  PMPS_CHECK(r >= 1 && !buckets.empty());
  const std::int64_t tot = detail::total(buckets);
  const std::int64_t lower =
      std::max(detail::max_bucket(buckets), (tot + r - 1) / r);
  const auto upper = static_cast<std::int64_t>(
      window_factor * static_cast<double>(tot) / static_cast<double>(r));

  GroupingResult res;
  if (upper < lower) {
    res = group_buckets_optimal(buckets, r);
    return res;
  }

  // Sliding window: for each start bucket, walk end points whose range sum
  // lies in [lower, upper]. Average bucket size is n/(br), so only O(1)
  // end points per start are in the window.
  std::vector<std::int64_t> candidates;
  const auto B = static_cast<std::int64_t>(buckets.size());
  std::int64_t j = 0, sum = 0;
  for (std::int64_t i = 0; i < B; ++i) {
    if (j < i) {
      j = i;
      sum = 0;
    }
    while (j < B && sum < lower) sum += buckets[static_cast<std::size_t>(j++)];
    std::int64_t s = sum;
    std::int64_t k = j;
    while (s <= upper) {
      if (s >= lower) candidates.push_back(s);
      if (k >= B) break;
      s += buckets[static_cast<std::size_t>(k++)];
    }
    sum -= buckets[static_cast<std::size_t>(i)];
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Binary search over the candidate list.
  std::int64_t best = -1;
  std::vector<std::int64_t> best_groups;
  std::size_t lo = 0, hi = candidates.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    auto sc = detail::scan(buckets, r, candidates[mid]);
    ++res.scans;
    if (sc.feasible) {
      best = sc.largest_group;
      best_groups = std::move(sc.group_first);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (best < 0) {
    // Window missed the optimum: general fallback.
    auto fallback = group_buckets_optimal(buckets, r);
    fallback.scans += res.scans;
    return fallback;
  }
  res.max_load = best;
  res.group_first = std::move(best_groups);
  return res;
}

/// Exhaustive optimum for testing: tries every realisable group size.
inline GroupingResult group_buckets_bruteforce(
    std::span<const std::int64_t> buckets, int r) {
  PMPS_CHECK(r >= 1 && !buckets.empty());
  const auto B = static_cast<std::int64_t>(buckets.size());
  GroupingResult res;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best_groups;
  for (std::int64_t i = 0; i < B; ++i) {
    std::int64_t sum = 0;
    for (std::int64_t j = i; j < B; ++j) {
      sum += buckets[static_cast<std::size_t>(j)];
      if (sum >= best) break;
      auto sc = detail::scan(buckets, r, sum);
      ++res.scans;
      if (sc.feasible && sc.largest_group < best) {
        best = sc.largest_group;
        best_groups = std::move(sc.group_first);
      }
    }
  }
  PMPS_CHECK(best < std::numeric_limits<std::int64_t>::max());
  res.max_load = best;
  res.group_first = std::move(best_groups);
  return res;
}

/// Appendix C parallel search: each iteration the remaining interval is
/// split into p+1 subranges, every PE probes one endpoint, and a min/max
/// allreduce narrows the interval. All PEs return the identical result.
inline GroupingResult group_buckets_parallel(
    net::Comm& comm, std::span<const std::int64_t> buckets, int r) {
  PMPS_CHECK(r >= 1 && !buckets.empty());
  const std::int64_t tot = detail::total(buckets);
  const int p = comm.size();
  std::int64_t lo =
      std::max(detail::max_bucket(buckets), (tot + r - 1) / r);
  std::int64_t hi = tot;
  GroupingResult res;
  while (lo < hi) {
    // Probe endpoint #rank of the (p+1)-way split of [lo, hi].
    const std::int64_t probe =
        lo + (hi - lo) * (static_cast<std::int64_t>(comm.rank()) + 1) /
                 (static_cast<std::int64_t>(p) + 1);
    auto sc = detail::scan(buckets, r, probe);
    ++res.scans;
    // Round to realisable values per the first observation of Appendix C.
    const std::int64_t failed_lb =
        sc.feasible ? std::numeric_limits<std::int64_t>::min()
                    : sc.min_overflow;
    const std::int64_t success_ub =
        sc.feasible ? sc.largest_group
                    : std::numeric_limits<std::int64_t>::max();
    const std::int64_t new_lo = std::max(
        lo, coll::allreduce_one<std::int64_t>(
                comm, failed_lb,
                [](std::int64_t a, std::int64_t b) { return std::max(a, b); }));
    const std::int64_t new_hi = std::min(
        hi, coll::allreduce_one<std::int64_t>(
                comm, success_ub,
                [](std::int64_t a, std::int64_t b) { return std::min(a, b); }));
    PMPS_CHECK(new_lo > lo || new_hi < hi);
    lo = new_lo;
    hi = new_hi;
  }
  auto sc = detail::scan(buckets, r, lo);
  ++res.scans;
  PMPS_CHECK(sc.feasible);
  res.max_load = lo;
  res.group_first = std::move(sc.group_first);
  return res;
}

}  // namespace pmps::grouping
