// LSD radix sort for unsigned integer keys (8-bit digits).
//
// Local sorting is the single largest cost of the distributed algorithms at
// large n/p (Figure 8), and 64-bit integer keys — the paper's experimental
// element type — admit an O(n·w/8) radix sort that beats comparison sorting
// well before n/p = 10⁷. seq::local_sort dispatches to this automatically
// for unsigned keys under the default ordering.

#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

namespace pmps::seq {

/// Stable LSD radix sort; O(n) extra memory, 8-bit digits, passes over
/// leading zero-bytes are skipped.
template <std::unsigned_integral T>
void radix_sort(std::span<T> data) {
  const std::size_t n = data.size();
  if (n < 2) return;
  constexpr int kDigits = static_cast<int>(sizeof(T));

  std::vector<T> buffer(n);
  std::span<T> from = data;
  std::span<T> to(buffer.data(), n);
  bool swapped = false;

  // One counting pass for all digit histograms.
  std::array<std::array<std::size_t, 256>, kDigits> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    T v = data[i];
    for (int d = 0; d < kDigits; ++d) {
      hist[static_cast<std::size_t>(d)][static_cast<std::size_t>(v & 0xff)]++;
      v = static_cast<T>(v >> 8);
    }
  }

  for (int d = 0; d < kDigits; ++d) {
    auto& h = hist[static_cast<std::size_t>(d)];
    if (h[0] == n) continue;  // all zero in this digit: skip the pass
    std::size_t offsets[256];
    std::size_t acc = 0;
    for (int b = 0; b < 256; ++b) {
      offsets[b] = acc;
      acc += h[static_cast<std::size_t>(b)];
    }
    const int shift = 8 * d;
    for (std::size_t i = 0; i < n; ++i) {
      const T v = from[i];
      to[offsets[static_cast<std::size_t>((v >> shift) & 0xff)]++] = v;
    }
    std::swap(from, to);
    swapped = !swapped;
  }
  if (swapped) {
    // Result currently lives in `buffer`; copy back.
    for (std::size_t i = 0; i < n; ++i) data[i] = from[i];
  }
}

}  // namespace pmps::seq
