// k-way partitioning by splitters, super-scalar-sample-sort style [32].
//
// Elements are classified against an implicit perfect binary search tree of
// splitters held in heap order; the descent `i = 2i + (tree[i] < x)` has no
// data-dependent branches, which is what makes this partitioning as cheap as
// merging but without branch mispredictions (§2.2).
//
// Tie breaking (paper Appendix D): splitters are TaggedKey values — a sample
// element together with its origin (PE, index). Classification first uses
// keys only; elements *equal* to a splitter key take one extra comparison
// against the splitter's tag to decide which side they belong to. This is
// the "equality bucket + one additional comparison" scheme of Appendix D and
// makes bucket sizes well-defined even for all-equal inputs.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"

namespace pmps::seq {

/// Classifier for k buckets separated by k−1 tagged splitters (sorted).
template <typename T, typename Less = std::less<T>>
class BucketClassifier {
 public:
  BucketClassifier(std::vector<TaggedKey<T>> sorted_splitters, Less less = {})
      : splitters_(std::move(sorted_splitters)), less_(less) {
    const int s = static_cast<int>(splitters_.size());
    PMPS_CHECK(s >= 1);
    num_buckets_ = s + 1;
    // Pad the tree to a perfect size with copies of the largest splitter;
    // elements beyond it are clamped to the last bucket after the descent.
    tree_size_ = static_cast<int>(next_pow2(static_cast<std::uint64_t>(s + 1)));
    tree_.assign(static_cast<std::size_t>(tree_size_), splitters_.back().key);
    fill_tree(1, 0, tree_size_ - 2);
  }

  int num_buckets() const { return num_buckets_; }
  const std::vector<TaggedKey<T>>& splitters() const { return splitters_; }

  /// Bucket index for element `x` originating at (pe, index).
  int classify(const T& x, std::int32_t pe, std::int64_t index) const {
    // Branch-free descent: count splitters < x.
    int i = 1;
    while (i < tree_size_)
      i = 2 * i + static_cast<int>(less_(tree_[static_cast<std::size_t>(i)], x));
    return resolve_bucket(x, pe, index, i - tree_size_);
  }

  /// Elements classified together per strip by classify_strip.
  static constexpr int kStrip = 16;

  /// Classifies `count` ≤ kStrip consecutive elements whose tie-breaking
  /// indices start at `base_index`, descending the splitter tree level by
  /// level for the whole strip (super-scalar sample sort). One element's
  /// descent is a serial chain of dependent loads; interleaving kStrip
  /// independent descents lets those loads overlap, so the strip costs
  /// roughly one chain instead of kStrip of them.
  void classify_strip(const T* xs, int count, std::int32_t pe,
                      std::int64_t base_index, std::int32_t* out) const {
    int idx[kStrip];
    for (int j = 0; j < count; ++j) idx[j] = 1;
    for (int level = tree_size_; level > 1; level >>= 1) {
      for (int j = 0; j < count; ++j) {
        idx[j] = 2 * idx[j] +
                 static_cast<int>(
                     less_(tree_[static_cast<std::size_t>(idx[j])], xs[j]));
      }
    }
    for (int j = 0; j < count; ++j) {
      out[j] = static_cast<std::int32_t>(resolve_bucket(
          xs[j], pe, base_index + j, idx[j] - tree_size_));
    }
  }

 private:
  /// Maps a finished descent (b = |{padded splitters < x}|) to the final
  /// bucket: clamp the padding, then resolve elements equal to splitter keys
  /// with the tagged comparison. (At most a handful of iterations unless
  /// many splitters share a key, in which case the loop distributes the
  /// duplicates across their buckets — Appendix D.)
  int resolve_bucket(const T& x, std::int32_t pe, std::int64_t index,
                     int b) const {
    if (b >= num_buckets_) b = num_buckets_ - 1;
    const TaggedKey<T> tx{x, pe, index};
    while (b < num_buckets_ - 1 &&
           !less_(x, splitters_[static_cast<std::size_t>(b)].key) &&
           !less_(splitters_[static_cast<std::size_t>(b)].key, x) &&
           !tagged_less(tx, splitters_[static_cast<std::size_t>(b)])) {
      ++b;
    }
    return b;
  }

  static bool tagged_less(const TaggedKey<T>& a, const TaggedKey<T>& b) {
    // keys already known equal here; compare tags
    if (a.pe != b.pe) return a.pe < b.pe;
    return a.index < b.index;
  }

  /// Writes the splitters into heap order (in-order traversal of the
  /// implicit tree enumerates them sorted). Range is over *leaf gaps*
  /// [lo, hi] in the padded sorted splitter array.
  void fill_tree(int node, int lo, int hi) {
    if (node >= tree_size_) return;
    const int mid = (lo + hi) / 2;
    tree_[static_cast<std::size_t>(node)] = padded(mid);
    fill_tree(2 * node, lo, mid - 1);
    fill_tree(2 * node + 1, mid + 1, hi);
  }

  T padded(int i) const {
    const int s = static_cast<int>(splitters_.size());
    return splitters_[static_cast<std::size_t>(std::min(i, s - 1))].key;
  }

  std::vector<TaggedKey<T>> splitters_;
  Less less_;
  int num_buckets_ = 0;
  int tree_size_ = 0;
  std::vector<T> tree_;
};

/// Classifies one block of a larger input stream whose first element sits
/// at global position `base_index`, calling emit(bucket, element) for each
/// element in input order. classify_strip descends per element (strips only
/// batch independent descents), so chopping the input into blocks of any
/// size yields exactly the buckets partition_into_buckets computes over the
/// whole span — the property AMS-sort's streaming two-pass classification
/// over spilled run blocks relies on (docs/EM.md).
template <typename T, typename Less, typename Emit>
void classify_block(std::span<const T> block, std::int32_t my_pe,
                    std::int64_t base_index,
                    const BucketClassifier<T, Less>& cls, Emit&& emit) {
  using Cls = BucketClassifier<T, Less>;
  std::int32_t buckets[Cls::kStrip];
  const auto n = static_cast<std::int64_t>(block.size());
  for (std::int64_t off = 0; off < n; off += Cls::kStrip) {
    const int count =
        static_cast<int>(std::min<std::int64_t>(Cls::kStrip, n - off));
    cls.classify_strip(block.data() + off, count, my_pe, base_index + off,
                       buckets);
    for (int j = 0; j < count; ++j)
      emit(buckets[j], block[static_cast<std::size_t>(off + j)]);
  }
}

/// Result of partitioning: elements permuted so bucket b occupies
/// [offsets[b], offsets[b] + sizes[b]).
template <typename T>
struct PartitionResult {
  std::vector<T> elements;
  std::vector<std::int64_t> sizes;
  std::vector<std::int64_t> offsets;
};

/// Partitions `input` into the classifier's buckets (stable within buckets).
/// `my_pe` and the element's position form its tie-breaking tag.
template <typename T, typename Less = std::less<T>>
PartitionResult<T> partition_into_buckets(
    std::span<const T> input, std::int32_t my_pe,
    const BucketClassifier<T, Less>& cls) {
  const std::int64_t n = static_cast<std::int64_t>(input.size());
  const int k = cls.num_buckets();
  PartitionResult<T> out;
  out.sizes.assign(static_cast<std::size_t>(k), 0);
  out.offsets.assign(static_cast<std::size_t>(k), 0);

  using Cls = BucketClassifier<T, Less>;
  std::vector<std::int32_t> bucket_of(static_cast<std::size_t>(n));
  std::int64_t done = 0;
  for (; done + Cls::kStrip <= n; done += Cls::kStrip) {
    cls.classify_strip(input.data() + done, Cls::kStrip, my_pe, done,
                       bucket_of.data() + done);
  }
  if (done < n) {
    cls.classify_strip(input.data() + done, static_cast<int>(n - done), my_pe,
                       done, bucket_of.data() + done);
  }
  for (std::int64_t i = 0; i < n; ++i)
    out.sizes[static_cast<std::size_t>(bucket_of[static_cast<std::size_t>(i)])] += 1;
  std::int64_t acc = 0;
  for (int b = 0; b < k; ++b) {
    out.offsets[static_cast<std::size_t>(b)] = acc;
    acc += out.sizes[static_cast<std::size_t>(b)];
  }
  out.elements.resize(static_cast<std::size_t>(n));
  std::vector<std::int64_t> cursor = out.offsets;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::size_t>(bucket_of[static_cast<std::size_t>(i)]);
    out.elements[static_cast<std::size_t>(cursor[b]++)] =
        input[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace pmps::seq
