// Local sorting helpers: insertion sort for tiny inputs, std::sort beyond.

#pragma once

#include <algorithm>
#include <concepts>
#include <functional>
#include <span>
#include <type_traits>

#include "seq/radix_sort.hpp"

namespace pmps::seq {

inline constexpr std::size_t kInsertionSortThreshold = 24;
inline constexpr std::size_t kRadixSortThreshold = 512;

template <typename T, typename Less = std::less<T>>
void insertion_sort(std::span<T> data, Less less = {}) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    T v = std::move(data[i]);
    std::size_t j = i;
    while (j > 0 && less(v, data[j - 1])) {
      data[j] = std::move(data[j - 1]);
      --j;
    }
    data[j] = std::move(v);
  }
}

/// Local sort used at the leaves of all algorithms: insertion sort for tiny
/// inputs, LSD radix sort for large unsigned-integer inputs under the
/// default ordering, std::sort otherwise.
template <typename T, typename Less = std::less<T>>
void local_sort(std::span<T> data, Less less = {}) {
  if (data.size() <= kInsertionSortThreshold) {
    insertion_sort(data, less);
    return;
  }
  if constexpr (std::unsigned_integral<T> &&
                std::is_same_v<Less, std::less<T>>) {
    if (data.size() >= kRadixSortThreshold) {
      radix_sort(data);
      return;
    }
  }
  std::sort(data.begin(), data.end(), less);
}

}  // namespace pmps::seq
