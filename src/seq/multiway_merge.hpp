// Sequential multiway merging with a tournament (loser) tree.
//
// The paper (§2.2) relies on r-way merging of sorted runs in O(N log r)
// using tournament trees [20, 27, 33]; RLM-sort's bucket processing phase is
// exactly this operation. This is a classic loser tree: internal nodes hold
// the *loser* of the match played at that node, the overall winner is kept
// outside the tree, and replacing the winner replays only its leaf-to-root
// path (⌈log2 k⌉ comparisons per output element).

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"

namespace pmps::seq {

template <typename T, typename Less = std::less<T>>
class LoserTree {
 public:
  /// Refill source for block-granular merging: refill(i) returns run i's
  /// next window (empty span: run exhausted). See the windowed constructor.
  using Refill = std::function<std::span<const T>(int)>;

  /// `runs` must stay alive while the tree is used; each run must be sorted.
  explicit LoserTree(std::span<const std::span<const T>> runs, Less less = {})
      : less_(less) {
    k_ = static_cast<int>(runs.size());
    PMPS_CHECK(k_ >= 1);
    cap_ = static_cast<int>(next_pow2(static_cast<std::uint64_t>(k_)));
    cur_.reserve(static_cast<std::size_t>(k_));
    end_.reserve(static_cast<std::size_t>(k_));
    tree_.assign(static_cast<std::size_t>(cap_), -1);
    total_ = 0;
    for (const auto& r : runs) {
      PMPS_ASSERT(std::is_sorted(r.begin(), r.end(), less_));
      cur_.push_back(r.data());
      end_.push_back(r.data() + r.size());
      total_ += static_cast<std::int64_t>(r.size());
    }
    build();
  }

  /// Windowed (external-merge) construction: run i holds `totals[i]`
  /// elements overall but only its current *window* is in memory —
  /// initially `windows[i]`, then whatever refill(i) returns each time the
  /// previous window is consumed (an empty span marks the run exhausted).
  /// Windows of one run must be consecutive sorted pieces of a sorted
  /// sequence; a window must be non-empty while the run has elements left.
  /// The merge (and its run-index tie breaking, i.e. stability) is
  /// identical to the all-in-memory constructor — src/em feeds this from
  /// block-granular RunCursors.
  LoserTree(std::span<const std::span<const T>> windows,
            std::span<const std::int64_t> totals, Refill refill,
            Less less = {})
      : less_(less), refill_(std::move(refill)) {
    k_ = static_cast<int>(windows.size());
    PMPS_CHECK(k_ >= 1 && totals.size() == windows.size());
    PMPS_CHECK(refill_ != nullptr);
    cap_ = static_cast<int>(next_pow2(static_cast<std::uint64_t>(k_)));
    cur_.reserve(static_cast<std::size_t>(k_));
    end_.reserve(static_cast<std::size_t>(k_));
    tree_.assign(static_cast<std::size_t>(cap_), -1);
    total_ = 0;
    for (int i = 0; i < k_; ++i) {
      const auto& w = windows[static_cast<std::size_t>(i)];
      PMPS_CHECK(!(w.empty() && totals[static_cast<std::size_t>(i)] > 0));
      PMPS_ASSERT(std::is_sorted(w.begin(), w.end(), less_));
      cur_.push_back(w.data());
      end_.push_back(w.data() + w.size());
      total_ += totals[static_cast<std::size_t>(i)];
    }
    build();
  }

  bool empty() const { return produced_ == total_; }
  std::int64_t size() const { return total_ - produced_; }

  /// Pops the smallest remaining element.
  T pop() {
    PMPS_ASSERT(!empty());
    const int w = winner_;
    const T out = *cur_[static_cast<std::size_t>(w)]++;
    ++produced_;
    if (cur_[static_cast<std::size_t>(w)] == end_[static_cast<std::size_t>(w)] &&
        refill_)
      refill_run(w, out);
    replay(w);
    return out;
  }

  /// Pops up to out.size() smallest elements into `out` (in merge order) and
  /// returns the number written. This is the bulk path multiway_merge uses:
  /// the emptiness/bounds re-checks of the pop-one-at-a-time loop are hoisted
  /// out — the loop count is fixed up front, each iteration only advances the
  /// winner's cached cursor and replays its tree path, and exhausted runs
  /// lose matches through the cursor-equals-end sentinel inside beats().
  /// Stability (ties in run-index order) is identical to pop().
  std::int64_t pop_bulk(std::span<T> out) {
    const std::int64_t n = std::min(static_cast<std::int64_t>(out.size()),
                                    total_ - produced_);
    T* dst = out.data();
    for (std::int64_t i = 0; i < n; ++i) {
      const int w = winner_;
      dst[i] = *cur_[static_cast<std::size_t>(w)]++;
      if (cur_[static_cast<std::size_t>(w)] ==
              end_[static_cast<std::size_t>(w)] &&
          refill_)
        refill_run(w, dst[i]);
      replay(w);
    }
    produced_ += n;
    return n;
  }

  /// Index of the run the next pop() comes from (useful for stability
  /// inspection in tests).
  int winner_run() const { return winner_; }

 private:
  bool exhausted(int run) const {
    return cur_[static_cast<std::size_t>(run)] ==
           end_[static_cast<std::size_t>(run)];
  }

  /// true if run a's current front beats (is less than) run b's. Exhausted
  /// runs always lose (their cursor sits on the end sentinel); ties are
  /// broken by run index, making the merge stable with respect to run order.
  bool beats(int a, int b) const {
    if (a < 0 || (a < k_ && exhausted(a))) return false;
    if (b < 0 || (b < k_ && exhausted(b))) return true;
    if (a >= k_) return false;
    if (b >= k_) return true;
    const T& va = *cur_[static_cast<std::size_t>(a)];
    const T& vb = *cur_[static_cast<std::size_t>(b)];
    if (less_(va, vb)) return true;
    if (less_(vb, va)) return false;
    return a < b;
  }

  void build() {
    // Play the tournament bottom-up. Leaf i is virtual index cap_ + i.
    std::vector<int> winners(static_cast<std::size_t>(2 * cap_));
    for (int i = 0; i < cap_; ++i)
      winners[static_cast<std::size_t>(cap_ + i)] = i < k_ ? i : -1;
    for (int node = cap_ - 1; node >= 1; --node) {
      const int a = winners[static_cast<std::size_t>(2 * node)];
      const int b = winners[static_cast<std::size_t>(2 * node + 1)];
      const bool a_wins = beats(a, b);
      winners[static_cast<std::size_t>(node)] = a_wins ? a : b;
      tree_[static_cast<std::size_t>(node)] = a_wins ? b : a;
    }
    winner_ = winners[1];
  }

  /// Replays the path from run w's leaf to the root after w's front changed.
  void replay(int w) {
    int cur = w;
    for (int node = (cap_ + w) / 2; node >= 1; node /= 2) {
      int& loser = tree_[static_cast<std::size_t>(node)];
      if (beats(loser, cur)) std::swap(loser, cur);
    }
    winner_ = cur;
  }

  /// Cold path of the windowed mode: run w's window is consumed — swap in
  /// the next one. `last` is the element just popped from w, used to check
  /// the cross-window ordering invariant in debug builds.
  void refill_run(int w, [[maybe_unused]] const T& last) {
    const std::span<const T> next = refill_(w);
    PMPS_ASSERT(std::is_sorted(next.begin(), next.end(), less_));
    PMPS_ASSERT(next.empty() || !less_(next.front(), last));
    cur_[static_cast<std::size_t>(w)] = next.data();
    end_[static_cast<std::size_t>(w)] = next.data() + next.size();
  }

  Less less_;
  Refill refill_;  ///< null in the all-in-memory mode
  int k_ = 0;
  int cap_ = 0;
  std::vector<const T*> cur_;  ///< per-run front cursor…
  std::vector<const T*> end_;  ///< …and its end sentinel (== cur_: exhausted)
  std::vector<int> tree_;      ///< loser run index per internal node
  int winner_ = -1;
  std::int64_t total_ = 0;
  std::int64_t produced_ = 0;
};

/// Merges `runs` (each sorted) into one sorted vector; O(N log k).
template <typename T, typename Less = std::less<T>>
std::vector<T> multiway_merge(std::span<const std::span<const T>> runs,
                              Less less = {}) {
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::vector<T>(runs[0].begin(), runs[0].end());
  if (runs.size() == 2) {
    std::vector<T> out(runs[0].size() + runs[1].size());
    std::merge(runs[0].begin(), runs[0].end(), runs[1].begin(), runs[1].end(),
               out.begin(), less);
    return out;
  }
  LoserTree<T, Less> tree(runs, less);
  std::vector<T> out(static_cast<std::size_t>(tree.size()));
  tree.pop_bulk(std::span<T>(out.data(), out.size()));
  return out;
}

/// Convenience overload for a vector of vectors.
template <typename T, typename Less = std::less<T>>
std::vector<T> multiway_merge(const std::vector<std::vector<T>>& runs,
                              Less less = {}) {
  std::vector<std::span<const T>> spans;
  spans.reserve(runs.size());
  for (const auto& r : runs) spans.emplace_back(r.data(), r.size());
  return multiway_merge<T, Less>(
      std::span<const std::span<const T>>(spans.data(), spans.size()), less);
}

}  // namespace pmps::seq
