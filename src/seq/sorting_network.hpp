// Batcher's odd-even merging and sorting networks [3].
//
// The deterministic data delivery algorithm (§4.3.1) merges two distributed
// sorted sequences with Batcher's merging network in O(α log(p/r)) rounds;
// the fast work-inefficient sorting algorithm (§4.2) is also traditionally
// paired with such networks. We provide the comparator schedule (usable both
// for data-oblivious sequential sorting and for tests via the 0-1 principle)
// and in-place apply helpers.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"

namespace pmps::seq {

using Comparator = std::pair<std::int64_t, std::int64_t>;  ///< (lo, hi) wire

namespace detail {

inline void odd_even_merge_schedule(std::int64_t lo, std::int64_t n,
                                    std::int64_t step,
                                    std::vector<Comparator>& out) {
  const std::int64_t step2 = step * 2;
  if (step2 < n) {
    odd_even_merge_schedule(lo, n, step2, out);
    odd_even_merge_schedule(lo + step, n, step2, out);
    for (std::int64_t i = lo + step; i + step < lo + n; i += step2)
      out.emplace_back(i, i + step);
  } else {
    out.emplace_back(lo, lo + step);
  }
}

inline void odd_even_mergesort_schedule(std::int64_t lo, std::int64_t n,
                                        std::vector<Comparator>& out) {
  if (n > 1) {
    const std::int64_t m = n / 2;
    odd_even_mergesort_schedule(lo, m, out);
    odd_even_mergesort_schedule(lo + m, m, out);
    odd_even_merge_schedule(lo, n, 1, out);
  }
}

}  // namespace detail

/// Comparator schedule of Batcher's odd-even mergesort for n wires
/// (n must be a power of two). Size Θ(n log² n).
inline std::vector<Comparator> odd_even_mergesort_network(std::int64_t n) {
  PMPS_CHECK(is_pow2(n));
  std::vector<Comparator> out;
  detail::odd_even_mergesort_schedule(0, n, out);
  return out;
}

/// Comparator schedule that merges two sorted halves [0, n/2) and [n/2, n)
/// (n a power of two).
inline std::vector<Comparator> odd_even_merge_network(std::int64_t n) {
  PMPS_CHECK(is_pow2(n) && n >= 2);
  std::vector<Comparator> out;
  detail::odd_even_merge_schedule(0, n, 1, out);
  return out;
}

/// Applies a comparator schedule in place.
template <typename T, typename Less = std::less<T>>
void apply_network(std::span<T> data, std::span<const Comparator> network,
                   Less less = {}) {
  for (const auto& [lo, hi] : network) {
    PMPS_ASSERT(lo < hi && hi < static_cast<std::int64_t>(data.size()));
    T& a = data[static_cast<std::size_t>(lo)];
    T& b = data[static_cast<std::size_t>(hi)];
    if (less(b, a)) std::swap(a, b);
  }
}

/// Data-oblivious sort of any size: pads virtually to the next power of two
/// (missing wires compare as +infinity, i.e. comparators touching them are
/// skipped when safe). For simplicity we sort a padded copy.
template <typename T, typename Less = std::less<T>>
void network_sort(std::span<T> data, Less less = {}) {
  const auto n = static_cast<std::int64_t>(data.size());
  if (n <= 1) return;
  const std::int64_t padded = static_cast<std::int64_t>(
      next_pow2(static_cast<std::uint64_t>(n)));
  const auto network = odd_even_mergesort_network(padded);
  for (const auto& [lo, hi] : network) {
    if (hi >= n) continue;  // virtual +inf wire: never swaps downward
    T& a = data[static_cast<std::size_t>(lo)];
    T& b = data[static_cast<std::size_t>(hi)];
    if (less(b, a)) std::swap(a, b);
  }
}

}  // namespace pmps::seq
