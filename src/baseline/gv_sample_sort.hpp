// Gerbessiotis–Valiant-style multi-level sample sort [13] — the starting
// point the paper improves on (§6): "However, they use centralized sorting
// of the sample and their data redistribution may lead to some processors
// receiving Ω(p) messages."
//
// This baseline keeps the multi-level structure of AMS-sort but
//   * sorts the sample *centrally*: gather to rank 0, sequential sort,
//     broadcast of the splitters (the O(p log p / ε²) sample regime, no
//     overpartitioning, imbalance bounded only by oversampling);
//   * delivers data with the naive prefix-sum scheme and no randomization
//     (the §4.3 worst cases apply).
//
// It exists for the ablation in bench/ablation_splitter: at equal sample
// sizes the centralized sample sort becomes the bottleneck as p grows,
// which is precisely why AMS-sort uses the fast work-inefficient sorter.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "ams/level_config.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "delivery/delivery.hpp"
#include "em/external_merge.hpp"
#include "net/comm.hpp"
#include "seq/partition.hpp"
#include "seq/small_sort.hpp"

namespace pmps::baseline {

struct GvConfig {
  std::vector<int> group_counts;  ///< empty → level_group_counts(p, levels)
  int levels = 2;
  double oversampling_a = 16;  ///< samples per splitter (no overpartitioning)
  std::uint64_t seed = 1;
  em::MemoryBudget budget;  ///< out-of-core switch (docs/EM.md)
};

namespace detail {

template <typename T, typename Less>
void gv_level(net::Comm& comm, std::vector<T>& data, const GvConfig& cfg,
              const std::vector<int>& rs, std::size_t level, Less less) {
  using net::Phase;
  const auto& machine = comm.machine();

  if (comm.size() == 1 || level >= rs.size()) {
    coll::barrier(comm);
    comm.set_phase(Phase::kLocalSort);
    const std::int64_t n_local = static_cast<std::int64_t>(data.size());
    em::local_sort_or_spill(data, cfg.budget, less);
    comm.charge(machine.sort_cost(n_local));
    comm.set_phase(Phase::kOther);
    return;
  }
  const int p = comm.size();
  const int r = rs[level];
  PMPS_CHECK(r >= 2 && p % r == 0);

  // --- splitter selection: CENTRALISED sample sort -------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);
  const auto per_pe = static_cast<std::int64_t>(
      std::ceil(cfg.oversampling_a * static_cast<double>(r) /
                static_cast<double>(p))) +
                      1;
  std::vector<TaggedKey<T>> sample;
  for (std::int64_t i = 0; i < per_pe && !data.empty(); ++i) {
    const auto idx = comm.rng().bounded(data.size());
    sample.push_back(TaggedKey<T>{data[static_cast<std::size_t>(idx)],
                                  comm.rank(),
                                  static_cast<std::int64_t>(idx)});
  }
  auto tless = [less](const TaggedKey<T>& a, const TaggedKey<T>& b) {
    if (less(a.key, b.key)) return true;
    if (less(b.key, a.key)) return false;
    if (a.pe != b.pe) return a.pe < b.pe;
    return a.index < b.index;
  };
  // Gather the whole sample on rank 0, sort sequentially, pick splitters.
  // The gathered FlatParts buffer IS the concatenated sample — no per-rank
  // copy to flatten it.
  auto parts = coll::gatherv(
      comm, std::span<const TaggedKey<T>>(sample.data(), sample.size()), 0);
  std::vector<TaggedKey<T>> splitters;
  if (comm.rank() == 0) {
    std::vector<TaggedKey<T>> all = std::move(parts).take_flat();
    std::sort(all.begin(), all.end(), tless);
    comm.charge(machine.sort_cost(static_cast<std::int64_t>(all.size())));
    const auto S = static_cast<std::int64_t>(all.size());
    PMPS_CHECK(S >= r);
    for (int j = 1; j < r; ++j)
      splitters.push_back(all[static_cast<std::size_t>(j * S / r)]);
  }
  coll::bcast(comm, splitters, 0);

  // --- partition into exactly r pieces (no overpartitioning) ---------------
  coll::barrier(comm);
  comm.set_phase(Phase::kBucketProcessing);
  seq::BucketClassifier<T, Less> classifier(std::move(splitters), less);
  auto part = seq::partition_into_buckets(
      std::span<const T>(data.data(), data.size()), comm.rank(), classifier);
  comm.charge(machine.partition_cost(static_cast<std::int64_t>(data.size()), r));

  // --- naive delivery --------------------------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kDataDelivery);
  std::vector<T>().swap(data);
  data = delivery::deliver_flat(comm, part.elements, part.sizes,
                                delivery::Algo::kSimple, cfg.seed + level,
                                cfg.budget);
  comm.set_phase(Phase::kOther);

  net::Comm sub = comm.split_consecutive(r);
  gv_level(sub, data, cfg, rs, level + 1, less);
}

}  // namespace detail

/// Multi-level sample sort with centralized splitter generation [13].
template <typename T, typename Less = std::less<T>>
void gv_sample_sort(net::Comm& comm, std::vector<T>& data,
                    const GvConfig& cfg = {}, Less less = {}) {
  std::vector<int> rs = cfg.group_counts;
  if (rs.empty())
    rs = ams::level_group_counts(comm.size(), cfg.levels,
                                 comm.machine().pes_per_node);
  std::int64_t prod = 1;
  for (int r : rs) prod *= r;
  PMPS_CHECK_MSG(prod == comm.size(), "group counts must multiply to p");
  detail::gv_level(comm, data, cfg, rs, 0, less);
}

}  // namespace pmps::baseline
