// Block-wise Batcher odd-even mergesort across PEs — the "prohibitive
// communication volume" end of the spectrum the paper's introduction rules
// out for large machines: O(log² p) comparator rounds, and the *entire*
// local block crosses the network at every comparator the PE participates
// in, so each element moves Θ(log² p) times.
//
// Classic construction: every PE holds a sorted block; a comparator (i, j)
// of the p-wire network becomes a merge–split — PEs i and j exchange
// blocks, merge, PE i keeps the lower |B_i| elements and PE j the upper
// |B_j|. By the 0-1 principle, running Batcher's odd-even mergesort network
// over the blocks sorts globally. The merge–split reduction is only valid
// for *equal* block sizes (the classic requirement), which the
// implementation checks.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "net/comm.hpp"
#include "seq/small_sort.hpp"
#include "seq/sorting_network.hpp"

namespace pmps::baseline {

/// Sorts the distributed data with a block-wise odd-even mergesort.
/// Requires equal block sizes on every PE (checked); every PE keeps its
/// count. O(log² p) rounds; the motivating anti-baseline for §1.
template <typename T, typename Less = std::less<T>>
void block_bitonic_sort(net::Comm& comm, std::vector<T>& data, Less less = {}) {
  using net::Phase;
  const auto& machine = comm.machine();
  const int p = comm.size();
  {
    net::FreeModeGuard guard(comm.ctx());
    const auto mx = coll::allreduce_one<std::int64_t>(
        comm, static_cast<std::int64_t>(data.size()),
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    PMPS_CHECK_MSG(mx == static_cast<std::int64_t>(data.size()),
                   "block bitonic sort requires equal block sizes");
  }

  coll::barrier(comm);
  comm.set_phase(Phase::kLocalSort);
  seq::local_sort(std::span<T>(data.data(), data.size()), less);
  comm.charge(machine.sort_cost(static_cast<std::int64_t>(data.size())));
  comm.set_phase(Phase::kOther);
  if (p == 1) return;

  // p-wire comparator schedule (virtual wires ≥ p hold +inf blocks and are
  // skipped, cf. seq::network_sort).
  const auto network = seq::odd_even_mergesort_network(
      static_cast<std::int64_t>(next_pow2(static_cast<std::uint64_t>(p))));
  const std::uint64_t tag = comm.next_tag_block();

  std::uint64_t step = 0;
  for (const auto& [lo, hi] : network) {
    ++step;
    if (hi >= p) continue;
    const int me = comm.rank();
    if (me != lo && me != hi) continue;
    const bool keep_low = me == lo;
    const int partner = keep_low ? static_cast<int>(hi) : static_cast<int>(lo);

    comm.set_phase(Phase::kDataDelivery);
    comm.send<T>(partner, tag + step, std::span<const T>(data.data(), data.size()));
    auto other = comm.recv<T>(partner, tag + step);

    comm.set_phase(Phase::kBucketProcessing);
    // Merge–split: keep my block size from the lower/upper end.
    std::vector<T> merged(data.size() + other.size());
    std::merge(data.begin(), data.end(), other.begin(), other.end(),
               merged.begin(), less);
    comm.charge(machine.merge_cost(
        static_cast<std::int64_t>(merged.size()), 2));
    if (keep_low) {
      data.assign(merged.begin(),
                  merged.begin() + static_cast<std::ptrdiff_t>(data.size()));
    } else {
      data.assign(merged.end() - static_cast<std::ptrdiff_t>(data.size()),
                  merged.end());
    }
    comm.set_phase(Phase::kOther);
  }
}

}  // namespace pmps::baseline
