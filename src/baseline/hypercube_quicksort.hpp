// Hypercube quicksort — the classic parallelization of quicksort [19, 21]
// that the paper's introduction groups under "O(log² p) algorithms whose
// techniques are in principle practical, but which move all data a
// logarithmic number of times".
//
// For p = 2^d (other sizes are rejected): log p rounds. In each round the
// current PE group agrees on a pivot (median of a gathered sample),
// partitions its local data, and exchanges halves with the partner in the
// other half of the group: the lower half of PEs keeps keys < pivot, the
// upper half keys ≥ pivot. After log p rounds every PE's data falls into
// its rank slot and is sorted locally.
//
// AMS-sort §6 is exactly the generalization of this scheme "that also works
// efficiently for very small inputs" — with r-way instead of 2-way splits,
// sample-quality guarantees and balanced data delivery. This baseline
// exists to exhibit the contrast: data moves k = log p times and balance
// degrades multiplicatively with the pivot quality of every round.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "net/comm.hpp"
#include "seq/small_sort.hpp"

namespace pmps::baseline {

struct HypercubeConfig {
  int pivot_sample_per_pe = 8;  ///< local sample for the pivot median
  std::uint64_t seed = 1;
};

namespace detail {

template <typename T, typename Less>
void hqs_level(net::Comm& comm, std::vector<T>& data,
               const HypercubeConfig& cfg, Less less) {
  using net::Phase;
  const auto& machine = comm.machine();
  const int p = comm.size();
  if (p == 1) {
    coll::barrier(comm);
    comm.set_phase(Phase::kLocalSort);
    seq::local_sort(std::span<T>(data.data(), data.size()), less);
    comm.charge(machine.sort_cost(static_cast<std::int64_t>(data.size())));
    comm.set_phase(Phase::kOther);
    return;
  }

  // --- pivot selection: median of a gathered sample -------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);
  auto tless = [less](const TaggedKey<T>& a, const TaggedKey<T>& b) {
    if (less(a.key, b.key)) return true;
    if (less(b.key, a.key)) return false;
    if (a.pe != b.pe) return a.pe < b.pe;
    return a.index < b.index;
  };
  std::vector<TaggedKey<T>> sample;
  for (int i = 0; i < cfg.pivot_sample_per_pe && !data.empty(); ++i) {
    const auto idx = comm.rng().bounded(data.size());
    sample.push_back(TaggedKey<T>{data[static_cast<std::size_t>(idx)],
                                  comm.rank(),
                                  static_cast<std::int64_t>(idx)});
  }
  auto all = coll::allgather_merge(
      comm, std::span<const TaggedKey<T>>(sample.data(), sample.size()),
      tless);
  PMPS_CHECK_MSG(!all.empty(), "cannot pick a pivot from an empty group");
  const TaggedKey<T> pivot = all[all.size() / 2];

  // --- partition locally and exchange halves --------------------------------
  comm.set_phase(Phase::kBucketProcessing);
  std::vector<T> low, high;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const TaggedKey<T> tx{data[i], comm.rank(),
                          static_cast<std::int64_t>(i)};
    (tless(tx, pivot) ? low : high).push_back(data[i]);
  }
  comm.charge(machine.partition_cost(static_cast<std::int64_t>(data.size()), 2));

  comm.set_phase(Phase::kDataDelivery);
  const int half = p / 2;
  const bool lower = comm.rank() < half;
  const int partner = lower ? comm.rank() + half : comm.rank() - half;
  const std::uint64_t tag = comm.next_tag_block();
  auto& keep = lower ? low : high;
  auto& give = lower ? high : low;
  comm.send<T>(partner, tag, std::span<const T>(give.data(), give.size()));
  auto got = comm.recv<T>(partner, tag);
  keep.insert(keep.end(), got.begin(), got.end());
  data = std::move(keep);
  comm.set_phase(Phase::kOther);

  // --- recurse on the halves -------------------------------------------------
  net::Comm sub = comm.split_consecutive(2);
  hqs_level(sub, data, cfg, less);
}

}  // namespace detail

/// Hypercube quicksort; requires p to be a power of two. Output is globally
/// sorted; balance depends on every round's pivot quality.
template <typename T, typename Less = std::less<T>>
void hypercube_quicksort(net::Comm& comm, std::vector<T>& data,
                         const HypercubeConfig& cfg = {}, Less less = {}) {
  PMPS_CHECK_MSG(is_pow2(comm.size()),
                 "hypercube quicksort needs a power-of-two PE count");
  detail::hqs_level(comm, data, cfg, less);
}

}  // namespace pmps::baseline
