// Single-level baselines (paper §1, §3, §7.3).
//
//  sample_sort_1l — classic parallel sample sort [6] with *centralised*
//      splitter generation (the TritonSort / Baidu-Sort approach, §3): an
//      a·p sample is gathered and sorted via a merging gather, p−1
//      equidistant splitters are broadcast, data is partitioned and moved
//      with one dense all-to-all (p−1 startups per PE), then sorted locally.
//      No overpartitioning: imbalance only bounded by oversampling (the
//      O(1/ε²) sample regime the paper improves on).
//
//  mergesort_1l — single-level p-way multiway mergesort [36, 33]: local
//      sort, exact p−1-way multisequence selection (perfect balance), dense
//      all-to-all, p-way loser-tree merge.
//
//  mpsort_like — models MP-sort [12]: identical data movement to
//      mergesort_1l but the final "merge" sorts the received data from
//      scratch, discarding the sortedness of the incoming runs. §7.3 uses
//      this as the slow large-scale comparator.
//
// All three move the data exactly once but pay Θ(p) message startups per PE
// in the exchange — the scalability wall that motivates the multi-level
// algorithms.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "net/comm.hpp"
#include "select/multiselect.hpp"
#include "seq/multiway_merge.hpp"
#include "seq/partition.hpp"
#include "seq/small_sort.hpp"

namespace pmps::baseline {

using net::Comm;
using net::Phase;

struct SingleLevelConfig {
  double oversampling_a = 0;  ///< sample per PE for sample sort; 0 → 2·ln p + 16
  coll::Schedule exchange = coll::Schedule::kOneFactor;
  std::uint64_t seed = 1;
};

namespace detail {

template <typename T, typename Less>
bool tagged_less(const TaggedKey<T>& a, const TaggedKey<T>& b, Less less) {
  if (less(a.key, b.key)) return true;
  if (less(b.key, a.key)) return false;
  if (a.pe != b.pe) return a.pe < b.pe;
  return a.index < b.index;
}

/// Dense exchange of per-destination pieces (already contiguous in
/// `elements` in destination order — exactly the alltoallv sendbuf shape),
/// returning the received runs. No per-destination staging copies.
template <typename T>
coll::FlatParts<T> dense_exchange(Comm& comm, const std::vector<T>& elements,
                                  const std::vector<std::int64_t>& sizes,
                                  coll::Schedule sched) {
  return coll::alltoallv(
      comm, std::span<const T>(elements.data(), elements.size()),
      std::span<const std::int64_t>(sizes.data(), sizes.size()), sched);
}

}  // namespace detail

/// Classic single-level sample sort; returns nothing but leaves `data`
/// sorted and distributed (imbalance depends on the sample quality).
template <typename T, typename Less = std::less<T>>
void sample_sort_1l(Comm& comm, std::vector<T>& data,
                    const SingleLevelConfig& cfg = {}, Less less = {}) {
  const auto& machine = comm.machine();
  const int p = comm.size();
  if (p == 1) {
    seq::local_sort(std::span<T>(data.data(), data.size()), less);
    comm.charge(machine.sort_cost(static_cast<std::int64_t>(data.size())));
    return;
  }
  auto tless = [less](const TaggedKey<T>& a, const TaggedKey<T>& b) {
    return detail::tagged_less(a, b, less);
  };

  // --- splitter selection (centralised) -------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);
  const double a = cfg.oversampling_a > 0
                       ? cfg.oversampling_a
                       : 2.0 * std::log(static_cast<double>(p)) + 16.0;
  const auto per_pe = static_cast<std::int64_t>(std::ceil(a));
  std::vector<TaggedKey<T>> sample;
  for (std::int64_t i = 0; i < per_pe && !data.empty(); ++i) {
    const auto idx = comm.rng().bounded(data.size());
    sample.push_back(TaggedKey<T>{data[static_cast<std::size_t>(idx)],
                                  comm.rank(),
                                  static_cast<std::int64_t>(idx)});
  }
  std::sort(sample.begin(), sample.end(), tless);
  comm.charge(machine.sort_cost(static_cast<std::int64_t>(sample.size())));
  auto all = coll::allgather_merge(
      comm, std::span<const TaggedKey<T>>(sample.data(), sample.size()),
      tless);
  std::vector<TaggedKey<T>> splitters;
  const auto S = static_cast<std::int64_t>(all.size());
  PMPS_CHECK(S >= p);
  for (int j = 1; j < p; ++j)
    splitters.push_back(all[static_cast<std::size_t>(j * S / p)]);

  // --- bucket processing: partition into p pieces ---------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kBucketProcessing);
  seq::BucketClassifier<T, Less> classifier(std::move(splitters), less);
  auto part = seq::partition_into_buckets(
      std::span<const T>(data.data(), data.size()), comm.rank(), classifier);
  comm.charge(machine.partition_cost(static_cast<std::int64_t>(data.size()), p));

  // --- data delivery: dense all-to-all (p−1 startups) -----------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kDataDelivery);
  auto runs = detail::dense_exchange(comm, part.elements, part.sizes,
                                     cfg.exchange);

  // --- local sort ------------------------------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kLocalSort);
  data = std::move(runs).take_flat();
  seq::local_sort(std::span<T>(data.data(), data.size()), less);
  comm.charge(machine.sort_cost(static_cast<std::int64_t>(data.size())));
  comm.set_phase(Phase::kOther);
}

/// Single-level multiway mergesort with exact splitting.
/// If `sort_from_scratch` is true this degenerates to the MP-sort model:
/// received runs are concatenated and re-sorted instead of merged.
template <typename T, typename Less = std::less<T>>
void mergesort_1l(Comm& comm, std::vector<T>& data,
                  const SingleLevelConfig& cfg = {}, Less less = {},
                  bool sort_from_scratch = false) {
  const auto& machine = comm.machine();
  const int p = comm.size();

  coll::barrier(comm);
  comm.set_phase(Phase::kLocalSort);
  seq::local_sort(std::span<T>(data.data(), data.size()), less);
  comm.charge(machine.sort_cost(static_cast<std::int64_t>(data.size())));
  if (p == 1) {
    comm.set_phase(Phase::kOther);
    return;
  }

  // --- splitter selection: p−1 exact ranks ----------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);
  const std::int64_t n_total = coll::allreduce_add_one(
      comm, static_cast<std::int64_t>(data.size()));
  std::vector<std::int64_t> ranks;
  for (int i = 1; i < p; ++i) ranks.push_back(chunk_begin(n_total, p, i));
  const auto sel = select::multiselect(
      comm, std::span<const T>(data.data(), data.size()), ranks, less);

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(p), 0);
  {
    std::int64_t prev = 0;
    for (int i = 0; i < p; ++i) {
      const std::int64_t end =
          i + 1 < p ? sel.split_positions[static_cast<std::size_t>(i)]
                    : static_cast<std::int64_t>(data.size());
      sizes[static_cast<std::size_t>(i)] = end - prev;
      prev = end;
    }
  }

  // --- data delivery ----------------------------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kDataDelivery);
  auto runs = detail::dense_exchange(comm, data, sizes, cfg.exchange);

  // --- bucket processing: p-way merge (or sort from scratch à la MP-sort) ---
  coll::barrier(comm);
  comm.set_phase(Phase::kBucketProcessing);
  if (sort_from_scratch) {
    data = std::move(runs).take_flat();
    seq::local_sort(std::span<T>(data.data(), data.size()), less);
    comm.charge(machine.sort_cost(static_cast<std::int64_t>(data.size())));
  } else {
    const auto run_spans = runs.part_spans();
    data = seq::multiway_merge(
        std::span<const std::span<const T>>(run_spans.data(),
                                            run_spans.size()),
        less);
    comm.charge(machine.merge_cost(
        static_cast<std::int64_t>(data.size()),
        static_cast<std::int64_t>(std::max<int>(runs.parts(), 1))));
  }
  comm.set_phase(Phase::kOther);
}

/// MP-sort model [12]: mergesort_1l data movement, sort-from-scratch merge.
template <typename T, typename Less = std::less<T>>
void mpsort_like(Comm& comm, std::vector<T>& data,
                 const SingleLevelConfig& cfg = {}, Less less = {}) {
  mergesort_1l(comm, data, cfg, less, /*sort_from_scratch=*/true);
}

}  // namespace pmps::baseline
