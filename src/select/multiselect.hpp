// Multisequence selection (paper §4.1).
//
// Given one sorted sequence per PE and r global ranks k_1 < … < k_r, find
// for every rank a split position in every local sequence such that the
// positions sum to the rank and all elements left of the splits are ≤ all
// elements right of them. This is the distributed quickselect of Figure 2,
// vectorised: all r selections run simultaneously and share their collective
// operations (vector-valued allreduce of length O(r)), giving the
// O((α log p + rβ + r log(n/p)) log n) bound of Equation (1).
//
// Duplicate keys are handled exactly: per refinement step we count elements
// strictly below and ≤ the pivot; if the rank falls among elements equal to
// the pivot, the equal elements are dealt out to PEs in rank order, which is
// the implicit (key, PE, index) tie breaking of Appendix D.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "net/comm.hpp"

namespace pmps::select {

using net::Comm;

/// Result: split_positions[j][ — one value per rank j: this PE's split
/// position (elements [0, pos) belong to the left side of rank k_j).
template <typename T>
struct MultiselectResult {
  std::vector<std::int64_t> split_positions;  // one per requested rank
};

namespace detail {

/// Slot for distributing a pivot: allreduce with "first non-empty wins".
template <typename T>
struct PivotSlot {
  std::uint8_t has = 0;
  T value{};
};

template <typename T>
PivotSlot<T> pick_slot(const PivotSlot<T>& a, const PivotSlot<T>& b) {
  return a.has ? a : b;
}

}  // namespace detail

/// `ranks` must be sorted ascending, each in [0, total]; rank k means
/// "k elements end up left of the split". Returns one split position per
/// rank for this PE's `local_sorted`.
template <typename T, typename Less = std::less<T>>
MultiselectResult<T> multiselect(Comm& comm, std::span<const T> local_sorted,
                                 const std::vector<std::int64_t>& ranks,
                                 Less less = {}) {
  PMPS_ASSERT(std::is_sorted(local_sorted.begin(), local_sorted.end(), less));
  PMPS_ASSERT(std::is_sorted(ranks.begin(), ranks.end()));
  const auto r = static_cast<int>(ranks.size());
  const auto n_local = static_cast<std::int64_t>(local_sorted.size());
  const auto& machine = comm.machine();

  MultiselectResult<T> result;
  result.split_positions.assign(static_cast<std::size_t>(r), 0);
  if (r == 0) return result;

  // Per-rank state: the active window [lo, hi) in the local sequence and the
  // residual rank within the union of active windows.
  std::vector<std::int64_t> lo(static_cast<std::size_t>(r), 0);
  std::vector<std::int64_t> hi(static_cast<std::size_t>(r), n_local);
  std::vector<std::int64_t> residual(ranks.begin(), ranks.end());
  std::vector<std::uint8_t> done(static_cast<std::size_t>(r), 0);

  while (true) {
    // Active set and window sizes (vector allreduce over all ranks at once).
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r));
    for (int j = 0; j < r; ++j)
      sizes[static_cast<std::size_t>(j)] =
          done[static_cast<std::size_t>(j)]
              ? 0
              : hi[static_cast<std::size_t>(j)] - lo[static_cast<std::size_t>(j)];
    const auto totals = coll::allreduce_add(comm, sizes);

    bool all_done = true;
    for (int j = 0; j < r; ++j) {
      auto& d = done[static_cast<std::size_t>(j)];
      if (d) continue;
      if (residual[static_cast<std::size_t>(j)] == 0) {
        result.split_positions[static_cast<std::size_t>(j)] =
            lo[static_cast<std::size_t>(j)];
        d = 1;
      } else if (residual[static_cast<std::size_t>(j)] ==
                 totals[static_cast<std::size_t>(j)]) {
        result.split_positions[static_cast<std::size_t>(j)] =
            hi[static_cast<std::size_t>(j)];
        d = 1;
      } else {
        all_done = false;
      }
    }
    if (all_done) break;

    // Pick one pivot per active rank: a shared uniformly random global index
    // into the active window (same random number on all PEs — the shared rng
    // streams are seeded identically via the comm-wide random draw below),
    // located via an exclusive prefix sum over window sizes.
    std::vector<std::int64_t> prefix = coll::exscan_add(comm, sizes);
    std::vector<detail::PivotSlot<T>> slots(static_cast<std::size_t>(r));
    // One shared random draw per rank: broadcast from rank 0's rng so all
    // PEs agree (costs one vector broadcast, absorbed in the α log p term).
    std::vector<std::int64_t> draws(static_cast<std::size_t>(r), 0);
    if (comm.rank() == 0) {
      for (int j = 0; j < r; ++j) {
        if (!done[static_cast<std::size_t>(j)] &&
            totals[static_cast<std::size_t>(j)] > 0) {
          draws[static_cast<std::size_t>(j)] = static_cast<std::int64_t>(
              comm.rng().bounded(static_cast<std::uint64_t>(
                  totals[static_cast<std::size_t>(j)])));
        }
      }
    }
    coll::bcast(comm, draws, 0);

    for (int j = 0; j < r; ++j) {
      if (done[static_cast<std::size_t>(j)]) continue;
      const std::int64_t t = draws[static_cast<std::size_t>(j)];
      const std::int64_t my_begin = prefix[static_cast<std::size_t>(j)];
      const std::int64_t my_size = sizes[static_cast<std::size_t>(j)];
      if (t >= my_begin && t < my_begin + my_size) {
        slots[static_cast<std::size_t>(j)].has = 1;
        slots[static_cast<std::size_t>(j)].value = local_sorted
            [static_cast<std::size_t>(lo[static_cast<std::size_t>(j)] +
                                      (t - my_begin))];
      }
    }
    slots = coll::allreduce(comm, std::move(slots), detail::pick_slot<T>);

    // Local binary searches: elements < pivot and ≤ pivot in each window.
    std::vector<std::int64_t> counts(static_cast<std::size_t>(2 * r), 0);
    for (int j = 0; j < r; ++j) {
      if (done[static_cast<std::size_t>(j)]) continue;
      const T& pivot = slots[static_cast<std::size_t>(j)].value;
      const auto first =
          local_sorted.begin() + lo[static_cast<std::size_t>(j)];
      const auto last = local_sorted.begin() + hi[static_cast<std::size_t>(j)];
      const std::int64_t below =
          std::lower_bound(first, last, pivot, less) - first;
      const std::int64_t below_eq =
          std::upper_bound(first, last, pivot, less) - first;
      counts[static_cast<std::size_t>(2 * j)] = below;
      counts[static_cast<std::size_t>(2 * j + 1)] = below_eq;
      comm.charge(machine.compare_cost_n(
          2 * ceil_log2(static_cast<std::uint64_t>(
                  std::max<std::int64_t>(hi[static_cast<std::size_t>(j)] -
                                             lo[static_cast<std::size_t>(j)],
                                         2)))));
    }
    // Per-PE exclusive prefix of equal counts (for dealing out duplicates),
    // plus global totals.
    std::vector<std::int64_t> eq(static_cast<std::size_t>(r));
    for (int j = 0; j < r; ++j)
      eq[static_cast<std::size_t>(j)] =
          counts[static_cast<std::size_t>(2 * j + 1)] -
          counts[static_cast<std::size_t>(2 * j)];
    const auto eq_prefix = coll::exscan_add(comm, eq);
    const auto count_totals = coll::allreduce_add(comm, counts);

    for (int j = 0; j < r; ++j) {
      if (done[static_cast<std::size_t>(j)]) continue;
      const std::int64_t below = counts[static_cast<std::size_t>(2 * j)];
      const std::int64_t below_eq = counts[static_cast<std::size_t>(2 * j + 1)];
      const std::int64_t tot_below =
          count_totals[static_cast<std::size_t>(2 * j)];
      const std::int64_t tot_below_eq =
          count_totals[static_cast<std::size_t>(2 * j + 1)];
      auto& res = residual[static_cast<std::size_t>(j)];
      auto& l = lo[static_cast<std::size_t>(j)];
      auto& h = hi[static_cast<std::size_t>(j)];
      if (res < tot_below) {
        // Recurse into the strictly-smaller part.
        h = l + below;
      } else if (res > tot_below_eq) {
        // Recurse into the strictly-larger part.
        res -= tot_below_eq;
        l = l + below_eq;
      } else {
        // The split lands inside the run of elements equal to the pivot:
        // deal the (res − tot_below) equal elements out in PE-rank order.
        const std::int64_t need = res - tot_below;
        const std::int64_t my_eq = below_eq - below;
        const std::int64_t my_excl = eq_prefix[static_cast<std::size_t>(j)];
        const std::int64_t take =
            std::clamp<std::int64_t>(need - my_excl, 0, my_eq);
        result.split_positions[static_cast<std::size_t>(j)] = l + below + take;
        done[static_cast<std::size_t>(j)] = 1;
      }
    }
  }
  return result;
}

}  // namespace pmps::select
