// RLM-sort: Recurse-Last (multi-level) Multiway Mergesort (paper §5).
//
// Every PE sorts locally once. Then per level, on the current communicator
// of p PEs split into r groups:
//   1. splitter selection — r−1 simultaneous multisequence selections
//      (§4.1) find exact global splitting ranks i·n/r, i.e. *perfect* load
//      balance (up to rounding);
//   2. data delivery — the r sorted pieces per PE are shipped with a §4.3
//      delivery algorithm;
//   3. bucket processing — each PE merges its received sorted runs with a
//      loser tree (§2.2), restoring the locally-sorted invariant;
//   4. recurse into the group's sub-communicator.
//
// "Recurse last" refers to moving the data only k times: the merge happens
// before recursing, so every level starts from locally sorted data.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ams/level_config.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "delivery/delivery.hpp"
#include "em/external_merge.hpp"
#include "net/comm.hpp"
#include "select/multiselect.hpp"
#include "seq/multiway_merge.hpp"
#include "seq/small_sort.hpp"

namespace pmps::rlm {

using net::Comm;
using net::Phase;

struct RlmConfig {
  /// Group counts per level (Π = p). Empty → level_group_counts(p, levels).
  std::vector<int> group_counts;
  int levels = 2;  ///< used only when group_counts is empty

  delivery::Algo delivery = delivery::Algo::kSimple;
  std::uint64_t seed = 1;

  /// Out-of-core switch (docs/EM.md): with a positive budget, delivered
  /// runs land in spill blocks and are merged with the block-granular
  /// external merge; the initial local sort becomes run formation +
  /// external merge. Virtual time is identical to the in-memory path, and
  /// so is the seeded output for unique-by-value keys (value-identical
  /// otherwise; see memory_budget.hpp).
  em::MemoryBudget budget;
};

namespace detail {

template <typename T, typename Less>
void rlm_level(Comm& comm, std::vector<T>& data, const RlmConfig& cfg,
               const std::vector<int>& rs, std::size_t level, Less less) {
  if (comm.size() == 1 || level >= rs.size()) return;  // already sorted

  const auto& machine = comm.machine();
  const int p = comm.size();
  const int r = rs[level];
  PMPS_CHECK(r >= 2 && p % r == 0);

  // --- phase 1: splitter selection (multisequence selection) ---------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);
  const std::int64_t n_total = coll::allreduce_add_one(
      comm, static_cast<std::int64_t>(data.size()));
  std::vector<std::int64_t> ranks;
  ranks.reserve(static_cast<std::size_t>(r - 1));
  for (int i = 1; i < r; ++i) ranks.push_back(chunk_begin(n_total, r, i));
  const auto sel = select::multiselect(
      comm, std::span<const T>(data.data(), data.size()), ranks, less);

  std::vector<std::int64_t> piece_sizes(static_cast<std::size_t>(r), 0);
  {
    std::int64_t prev = 0;
    for (int i = 0; i < r - 1; ++i) {
      piece_sizes[static_cast<std::size_t>(i)] =
          sel.split_positions[static_cast<std::size_t>(i)] - prev;
      prev = sel.split_positions[static_cast<std::size_t>(i)];
    }
    piece_sizes[static_cast<std::size_t>(r - 1)] =
        static_cast<std::int64_t>(data.size()) - prev;
  }

  // --- phase 2: data delivery ----------------------------------------------
  // --- phase 3: bucket processing (multiway merge of sorted runs) ----------
  // Over budget, the delivered runs land directly in spill blocks and the
  // merge streams them back block by block (k block buffers of working
  // memory); message sequence, phase structure, merge charge, and output
  // are identical to the in-memory path (docs/EM.md).
  coll::barrier(comm);
  comm.set_phase(Phase::kDataDelivery);
  if (cfg.budget.should_spill(static_cast<std::int64_t>(data.size()) *
                              static_cast<std::int64_t>(sizeof(T)))) {
    em::RunStore<T> store(cfg.budget);
    delivery::deliver_into(comm, std::span<const T>(data.data(), data.size()),
                           piece_sizes, cfg.delivery, cfg.seed + level,
                           em::run_sink(store));
    std::vector<T>().swap(data);

    coll::barrier(comm);
    comm.set_phase(Phase::kBucketProcessing);
    const int k = store.runs();
    data = em::merge_runs(store, less);
    comm.charge(machine.merge_cost(
        static_cast<std::int64_t>(data.size()),
        static_cast<std::int64_t>(std::max<int>(k, 1))));
  } else {
    auto runs = delivery::deliver(
        comm, std::span<const T>(data.data(), data.size()), piece_sizes,
        cfg.delivery, cfg.seed + level);

    coll::barrier(comm);
    comm.set_phase(Phase::kBucketProcessing);
    const auto run_spans = runs.part_spans();
    data = seq::multiway_merge(
        std::span<const std::span<const T>>(run_spans.data(),
                                            run_spans.size()),
        less);
    comm.charge(machine.merge_cost(
        static_cast<std::int64_t>(data.size()),
        static_cast<std::int64_t>(std::max<int>(runs.parts(), 1))));
  }
  comm.set_phase(Phase::kOther);

  // --- recurse --------------------------------------------------------------
  Comm sub = comm.split_consecutive(r);
  rlm_level(sub, data, cfg, rs, level + 1, less);
}

}  // namespace detail

/// Sorts `data` in place with perfect output balance (every PE ends with
/// ⌊n/p⌋ or ⌈n/p⌉ elements).
template <typename T, typename Less = std::less<T>>
void rlm_sort(Comm& comm, std::vector<T>& data, const RlmConfig& cfg = {},
              Less less = {}) {
  std::vector<int> rs = cfg.group_counts;
  if (rs.empty())
    rs = ams::level_group_counts(comm.size(), cfg.levels,
                                 comm.machine().pes_per_node);
  std::int64_t prod = 1;
  for (int rr : rs) prod *= rr;
  PMPS_CHECK_MSG(prod == comm.size(), "group counts must multiply to p");

  // Initial local sort (the paper's "every PE sorts locally first"); over
  // budget it runs out of core, same charge (docs/EM.md).
  coll::barrier(comm);
  comm.set_phase(Phase::kLocalSort);
  const std::int64_t n_local = static_cast<std::int64_t>(data.size());
  em::local_sort_or_spill(data, cfg.budget, less);
  comm.charge(comm.machine().sort_cost(n_local));
  comm.set_phase(Phase::kOther);

  detail::rlm_level(comm, data, cfg, rs, 0, less);
}

}  // namespace pmps::rlm
