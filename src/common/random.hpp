// Deterministic, fast PRNG used everywhere in pmps.
//
// We use xoshiro256** (public domain, Blackman & Vigna) instead of
// std::mt19937_64: it is faster, has a tiny state, and — important for an
// SPMD runtime — is trivially seedable per PE via splitmix64 so that
// independent PEs get decorrelated streams from a single user seed.

#pragma once

#include <cstdint>
#include <limits>

namespace pmps {

/// splitmix64: used to expand a single seed into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy as a hash for tie breaking and checksums.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Decorrelated per-PE stream: hash the (seed, stream) pair.
  Xoshiro256(std::uint64_t seed, std::uint64_t stream)
      : Xoshiro256(mix64(seed) ^ mix64(stream * 0x9e3779b97f4a7c15ULL + 1)) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return ((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pmps
