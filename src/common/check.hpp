// Runtime checking macros used throughout pmps.
//
// PMPS_CHECK is always on (library invariants, cheap); PMPS_ASSERT compiles
// out in NDEBUG builds (hot-path sanity checks).

#pragma once

#include <cstdio>
#include <cstdlib>

namespace pmps {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "pmps check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pmps

#define PMPS_CHECK(expr)                                      \
  do {                                                        \
    if (!(expr)) ::pmps::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PMPS_CHECK_MSG(expr, msg)                             \
  do {                                                        \
    if (!(expr)) ::pmps::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PMPS_ASSERT(expr) ((void)0)
#else
#define PMPS_ASSERT(expr) PMPS_CHECK(expr)
#endif
