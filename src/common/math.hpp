// Small integer math helpers shared by the sorting algorithms.

#pragma once

#include <cstdint>
#include <bit>

#include "common/check.hpp"

namespace pmps {

/// ceil(a / b) for non-negative a, positive b.
constexpr std::int64_t div_ceil(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  return 63 - std::countl_zero(x);
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// Smallest power of two >= x.
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return x <= 1 ? 1 : std::uint64_t{1} << ceil_log2(x);
}

/// Integer k-th root: largest r with r^k <= x (k >= 1).
inline std::int64_t kth_root(std::int64_t x, int k) {
  PMPS_CHECK(x >= 0 && k >= 1);
  if (k == 1 || x <= 1) return x;
  std::int64_t r = 1;
  while (true) {
    // Test (r+1)^k <= x without overflow for the scales we use (x <= 2^40).
    std::int64_t v = 1;
    bool over = false;
    for (int i = 0; i < k; ++i) {
      v *= (r + 1);
      if (v > x) { over = true; break; }
    }
    if (over) return r;
    ++r;
  }
}

/// Splits the range [0, n) into `parts` consecutive chunks that differ in
/// size by at most one; returns the begin of chunk `i` (chunk i is
/// [chunk_begin(n,parts,i), chunk_begin(n,parts,i+1))).
constexpr std::int64_t chunk_begin(std::int64_t n, std::int64_t parts,
                                   std::int64_t i) {
  return i * (n / parts) + std::min<std::int64_t>(i, n % parts);
}

}  // namespace pmps
