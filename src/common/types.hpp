// Element types and comparison utilities.
//
// The library sorts any trivially copyable type with a strict weak order.
// The paper's experiments use 64-bit integers; the Sort-Benchmark style
// example uses 100-byte records with a 10-byte key (Record100).
//
// Tie breaking (paper Appendix D): conceptually every element's key is the
// triple (key, origin PE, origin index), which makes keys unique without
// storing the triple. Splitters *do* carry their origin (TaggedKey) so that
// partitioning can break ties lexicographically; see src/seq/partition.hpp.

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pmps {

template <typename T>
concept Sortable = std::is_trivially_copyable_v<T>;

/// A sort key augmented with its global origin, used for splitters.
/// Ordering is lexicographic on (key, pe, index): two equal keys from
/// different positions compare by position, which implements the implicit
/// (x, y, z) tie-breaking scheme of Appendix D.
template <typename T>
struct TaggedKey {
  T key;
  std::int32_t pe;     ///< PE the element originated from
  std::int64_t index;  ///< position within that PE's input

  friend bool operator<(const TaggedKey& a, const TaggedKey& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    if (a.pe != b.pe) return a.pe < b.pe;
    return a.index < b.index;
  }
  friend bool operator==(const TaggedKey& a, const TaggedKey& b) {
    return !(a < b) && !(b < a);
  }
};

/// 100-byte record with a 10-byte key — the Sort Benchmark record format
/// used by TritonSort / Baidu-Sort (paper §7.3).
struct Record100 {
  std::array<std::uint8_t, 10> key;
  std::array<std::uint8_t, 90> payload;

  friend bool operator<(const Record100& a, const Record100& b) {
    return std::memcmp(a.key.data(), b.key.data(), 10) < 0;
  }
  friend bool operator==(const Record100& a, const Record100& b) {
    return std::memcmp(a.key.data(), b.key.data(), 10) == 0;
  }
};
static_assert(sizeof(Record100) == 100);
static_assert(std::is_trivially_copyable_v<Record100>);

}  // namespace pmps
