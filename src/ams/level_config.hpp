// Level configuration: how many groups r to form on each recursion level.
//
// The paper picks r ≈ ᵏ√p asymptotically but adapts to the machine hierarchy
// (§5): in the weak-scaling experiments (§7.2, Table 1) the *last* level
// always splits groups of 16 MPI processes into single processes so that the
// final exchange is node-internal, and for 3 levels the first split uses
// 2^⌈L/2⌉ groups where L = log2(p/16). This module reproduces that rule and
// provides a generic fallback for arbitrary p.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"
#include "net/machine.hpp"

namespace pmps::ams {

/// Nearest divisor of `n` to `target` (prefers the smaller on ties).
inline std::int64_t nearest_divisor(std::int64_t n, std::int64_t target) {
  PMPS_CHECK(n >= 1);
  std::int64_t best = 1;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    for (std::int64_t c : {d, n / d}) {
      if (std::abs(c - target) < std::abs(best - target) ||
          (std::abs(c - target) == std::abs(best - target) && c < best)) {
        best = c;
      }
    }
  }
  return best;
}

/// Group counts r_1..r_k per level with Π r_i = p.
///
/// Reproduces the paper's Table 1 when p is a power of two and a multiple of
/// `pes_per_node`: the last level splits node-sized groups (r_k =
/// pes_per_node) and the remaining factor p/pes_per_node is divided among
/// the first k−1 levels as 2^⌈L/(k−1)⌉-style near-equal powers of two,
/// larger factors first. Otherwise falls back to near-equal divisors around
/// ᵏ√p.
inline std::vector<int> level_group_counts(std::int64_t p, int k,
                                           int pes_per_node = 16) {
  PMPS_CHECK(p >= 1 && k >= 1);
  if (k == 1) return {static_cast<int>(p)};

  std::vector<int> rs;
  if (is_pow2(p) && pes_per_node > 1 && is_pow2(pes_per_node) &&
      p % pes_per_node == 0 && p / pes_per_node >= 2) {
    const int L = floor_log2(static_cast<std::uint64_t>(p / pes_per_node));
    // Split L bits over k−1 levels, larger exponents first (Table 1).
    int remaining_bits = L;
    for (int i = 0; i < k - 1; ++i) {
      const int levels_left = k - 1 - i;
      const int bits = (remaining_bits + levels_left - 1) / levels_left;
      rs.push_back(1 << bits);
      remaining_bits -= bits;
    }
    rs.push_back(pes_per_node);
    // If p/pes_per_node had fewer than k−1 factors of 2, drop 1-groups.
    std::vector<int> cleaned;
    for (int r : rs)
      if (r > 1) cleaned.push_back(r);
    if (cleaned.empty()) cleaned.push_back(static_cast<int>(p));
    return cleaned;
  }

  // Generic fallback: peel near-ᵏ√p divisors.
  std::int64_t remaining = p;
  for (int i = 0; i < k && remaining > 1; ++i) {
    const int levels_left = k - i;
    std::int64_t target = kth_root(remaining, levels_left);
    if (levels_left == 1) target = remaining;
    std::int64_t r = nearest_divisor(remaining, target);
    if (r <= 1) r = remaining;  // no useful divisor: finish here
    if (i == k - 1) r = remaining;
    rs.push_back(static_cast<int>(r));
    remaining /= r;
  }
  PMPS_CHECK(remaining == 1);
  return rs;
}

/// Machine-adapted level configuration (§5): "we may also fix p′ based on
/// architectural properties" — split at the machine's natural boundaries.
/// With p spanning multiple islands this yields three levels
/// (islands → nodes → cores): the first, most expensive exchange crosses
/// the pruned inter-island tree exactly once, all further exchanges stay
/// island- resp. node-internal. Falls back to the generic rule when p does
/// not align with the hierarchy.
inline std::vector<int> level_group_counts_for_machine(
    std::int64_t p, const net::MachineParams& machine) {
  const std::int64_t node = machine.pes_per_node;
  const std::int64_t island = machine.pes_per_island();

  std::vector<int> rs;
  std::int64_t span = p;  // PEs per group as we descend
  if (span > island && span % island == 0) {
    rs.push_back(static_cast<int>(span / island));  // split into islands
    span = island;
  }
  if (span > node && span % node == 0) {
    rs.push_back(static_cast<int>(span / node));  // split into nodes
    span = node;
  }
  if (span > 1) rs.push_back(static_cast<int>(span));  // node-internal

  std::int64_t prod = 1;
  for (int r : rs) prod *= r;
  if (prod != p || rs.empty()) {
    return level_group_counts(p, p > island ? 3 : (p > node ? 2 : 1),
                              machine.pes_per_node);
  }
  return rs;
}

}  // namespace pmps::ams
