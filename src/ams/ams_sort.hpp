// AMS-sort: Adaptive Multi-level Sample sort (paper §6) — the paper's main
// contribution.
//
// Per level, on the current communicator of p PEs split into r groups:
//   1. splitter selection — draw a random sample of a·b·r elements
//      (a = oversampling, b = overpartitioning factor), sort it with the
//      fast work-inefficient algorithm (§4.2) and take b·r−1 equidistant
//      tagged splitters;
//   2. bucket processing — partition the local data into b·r buckets with
//      the branchless classifier (+ Appendix D tie breaking), allreduce the
//      bucket sizes, and assign consecutive bucket ranges to the r groups
//      with the optimal scanning/binary-search algorithm (Lemma 1,
//      Appendix C), which bounds the group imbalance;
//   3. data delivery — ship the per-group pieces with a §4.3 delivery
//      algorithm (O(r) startups per PE);
//   4. recurse into the group's sub-communicator; a single-PE group sorts
//      locally (base case).
//
// Overpartitioning (b > 1) is what reduces the sample size needed for
// imbalance ε from O(1/ε²) to O(1/ε) — Lemma 2. Phases are timed exactly
// like the paper's implementation (§7.1): barrier-separated, accumulated
// over levels.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "ams/level_config.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "delivery/delivery.hpp"
#include "em/external_merge.hpp"
#include "fastsort/fast_rank_sort.hpp"
#include "grouping/bucket_grouping.hpp"
#include "net/comm.hpp"
#include "seq/partition.hpp"
#include "seq/small_sort.hpp"

namespace pmps::ams {

using net::Comm;
using net::Phase;

struct AmsConfig {
  /// Group counts per level (Π = p). Empty → level_group_counts(p, levels).
  std::vector<int> group_counts;
  int levels = 2;  ///< used only when group_counts is empty

  double oversampling_a = 0;  ///< a; 0 → 1.6·log10(n) as in §7.2
  int overpartition_b = 16;   ///< b; §7.2 default

  delivery::Algo delivery = delivery::Algo::kSimple;  ///< §7.1 default
  bool parallel_grouping = false;  ///< Appendix C parallel search
  std::uint64_t seed = 1;

  /// Out-of-core switch (docs/EM.md): with a positive budget, stages whose
  /// element payload exceeds it spill to run blocks on disk — delivered
  /// pieces land in an em::RunStore and base-case local sorts become
  /// run formation + external merge. Virtual time is identical to the
  /// in-memory path, and so is the seeded output for unique-by-value keys
  /// (value-identical otherwise; see memory_budget.hpp).
  em::MemoryBudget budget;
};

/// Per-run diagnostics (identical on every PE).
struct AmsStats {
  std::vector<std::int64_t> sample_sizes;  ///< per level, global
  std::vector<std::int64_t> max_group_load;  ///< per level: optimal L
  std::vector<double> level_imbalance;  ///< per level: L / (n/r) − 1
};

namespace detail {

template <typename T, typename Less>
void ams_level(Comm& comm, std::vector<T>& data, const AmsConfig& cfg,
               const std::vector<int>& rs, std::size_t level, Less less,
               AmsStats* stats) {
  const auto& machine = comm.machine();

  if (comm.size() == 1 || level >= rs.size()) {
    // Base case: sequential sort of the local data. Over budget it runs as
    // run formation + external merge — same result, same virtual-time
    // charge (spilling is host-side storage only, docs/EM.md).
    coll::barrier(comm);
    comm.set_phase(Phase::kLocalSort);
    const std::int64_t n_local = static_cast<std::int64_t>(data.size());
    em::local_sort_or_spill(data, cfg.budget, less);
    comm.charge(machine.sort_cost(n_local));
    comm.set_phase(Phase::kOther);
    return;
  }

  const int p = comm.size();
  const int r = rs[level];
  PMPS_CHECK(r >= 2 && p % r == 0);

  // --- phase 1: splitter selection -----------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);

  const std::int64_t n_total = coll::allreduce_add_one(
      comm, static_cast<std::int64_t>(data.size()));
  const int b = std::max(1, cfg.overpartition_b);
  const double a =
      cfg.oversampling_a > 0
          ? cfg.oversampling_a
          : std::max(1.0, 1.6 * std::log10(std::max<double>(
                               static_cast<double>(n_total), 10.0)));
  const std::int64_t buckets_wanted = static_cast<std::int64_t>(b) * r;
  // Global sample size a·b·r, at least one sample per splitter; tiny inputs
  // degrade gracefully to fewer buckets (never more buckets than samples).
  std::int64_t sample_total = std::max<std::int64_t>(
      buckets_wanted,
      static_cast<std::int64_t>(std::ceil(a * static_cast<double>(buckets_wanted))));
  sample_total = std::min(sample_total, n_total);

  // This PE's share of the sample, drawn uniformly from the local data
  // (with replacement; the local shares follow the PE's data share).
  std::vector<std::int64_t> share{0};
  if (!data.empty()) {
    // Proportional allocation via a deterministic split of sample_total by
    // cumulative data sizes: PE gets chunk proportional to its local count.
    const std::int64_t my_begin = coll::exscan_add_one(
        comm, static_cast<std::int64_t>(data.size()));
    const std::int64_t lo =
        my_begin * sample_total / std::max<std::int64_t>(n_total, 1);
    const std::int64_t hi =
        (my_begin + static_cast<std::int64_t>(data.size())) * sample_total /
        std::max<std::int64_t>(n_total, 1);
    share[0] = hi - lo;
  } else {
    (void)coll::exscan_add_one(comm, 0);
  }
  std::vector<T> sample;
  sample.reserve(static_cast<std::size_t>(share[0]));
  for (std::int64_t i = 0; i < share[0]; ++i) {
    sample.push_back(
        data[static_cast<std::size_t>(comm.rng().bounded(data.size()))]);
  }
  comm.charge(machine.copy_cost(sample.size() * sizeof(T)));

  // Sort the sample with the fast work-inefficient algorithm and extract
  // b·r−1 equidistant tagged splitters.
  const std::int64_t S = coll::allreduce_add_one(
      comm, static_cast<std::int64_t>(sample.size()));
  const std::int64_t num_buckets =
      std::max<std::int64_t>(1, std::min<std::int64_t>(buckets_wanted, S));
  std::vector<std::int64_t> want;
  want.reserve(static_cast<std::size_t>(num_buckets - 1));
  for (std::int64_t j = 1; j < num_buckets; ++j) {
    // Equidistant ranks; distinct because S ≥ num_buckets.
    want.push_back(j * S / num_buckets);
  }
  std::vector<TaggedKey<T>> splitters;
  if (!want.empty()) {
    splitters = fastsort::fast_rank_select(
        comm, std::span<const T>(sample.data(), sample.size()), want, less);
  }
  if (stats) stats->sample_sizes.push_back(S);

  // --- phase 2: bucket processing (partition + grouping) -------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kBucketProcessing);

  seq::PartitionResult<T> part;
  if (!splitters.empty()) {
    seq::BucketClassifier<T, Less> classifier(std::move(splitters), less);
    part = seq::partition_into_buckets(
        std::span<const T>(data.data(), data.size()), comm.rank(), classifier);
    comm.charge(machine.partition_cost(static_cast<std::int64_t>(data.size()),
                                       num_buckets));
  } else {
    // Degenerate single bucket (empty or tiny input).
    part.elements = data;
    part.sizes = {static_cast<std::int64_t>(data.size())};
    part.offsets = {0};
  }

  const auto global_buckets = coll::allreduce_add(comm, part.sizes);
  grouping::GroupingResult grouping =
      cfg.parallel_grouping
          ? grouping::group_buckets_parallel(
                comm,
                std::span<const std::int64_t>(global_buckets.data(),
                                              global_buckets.size()),
                r)
          : grouping::group_buckets_optimal(
                std::span<const std::int64_t>(global_buckets.data(),
                                              global_buckets.size()),
                r);
  if (!cfg.parallel_grouping) {
    // Sequential scanning: every PE does the identical O(B log B) search.
    comm.charge(machine.compare_cost_n(
        static_cast<std::int64_t>(grouping.scans) * num_buckets));
  }
  if (stats) {
    stats->max_group_load.push_back(grouping.max_load);
    stats->level_imbalance.push_back(
        static_cast<double>(grouping.max_load) /
            (static_cast<double>(n_total) / static_cast<double>(r)) -
        1.0);
  }

  // Piece sizes per group: buckets are contiguous in `part.elements` and
  // groups cover consecutive bucket ranges.
  std::vector<std::int64_t> piece_sizes(static_cast<std::size_t>(r), 0);
  for (std::int64_t bkt = 0; bkt < num_buckets; ++bkt) {
    piece_sizes[static_cast<std::size_t>(grouping.group_of(bkt))] +=
        part.sizes[static_cast<std::size_t>(bkt)];
  }

  // --- phase 3: data delivery ----------------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kDataDelivery);
  // Over budget, incoming pieces land in run blocks instead of one
  // in-memory FlatParts buffer (the pre-partition copy is released first,
  // dropping the phase peak from ~3× to ~2× the local data); either way
  // `data` becomes the received runs, concatenated.
  std::vector<T>().swap(data);
  data = delivery::deliver_flat(comm, part.elements, piece_sizes,
                                cfg.delivery, cfg.seed + level, cfg.budget);
  comm.set_phase(Phase::kOther);

  // --- recurse --------------------------------------------------------------
  Comm sub = comm.split_consecutive(r);
  ams_level(sub, data, cfg, rs, level + 1, less, stats);
}

}  // namespace detail

/// Sorts `data` (distributed over the communicator) in place: afterwards
/// every PE's data is sorted and no element on PE i compares greater than
/// any element on PE i+1. Output sizes are balanced to (1+ε)·n/p with the
/// ε achieved by overpartitioning (see AmsStats::level_imbalance).
template <typename T, typename Less = std::less<T>>
AmsStats ams_sort(Comm& comm, std::vector<T>& data, const AmsConfig& cfg = {},
                  Less less = {}) {
  AmsStats stats;
  std::vector<int> rs = cfg.group_counts;
  if (rs.empty())
    rs = level_group_counts(comm.size(), cfg.levels,
                            comm.machine().pes_per_node);
  std::int64_t prod = 1;
  for (int r : rs) prod *= r;
  PMPS_CHECK_MSG(prod == comm.size(), "group counts must multiply to p");
  detail::ams_level(comm, data, cfg, rs, 0, less, &stats);
  return stats;
}

}  // namespace pmps::ams
