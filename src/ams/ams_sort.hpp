// AMS-sort: Adaptive Multi-level Sample sort (paper §6) — the paper's main
// contribution.
//
// Per level, on the current communicator of p PEs split into r groups:
//   1. splitter selection — draw a random sample of a·b·r elements
//      (a = oversampling, b = overpartitioning factor), sort it with the
//      fast work-inefficient algorithm (§4.2) and take b·r−1 equidistant
//      tagged splitters;
//   2. bucket processing — partition the local data into b·r buckets with
//      the branchless classifier (+ Appendix D tie breaking), allreduce the
//      bucket sizes, and assign consecutive bucket ranges to the r groups
//      with the optimal scanning/binary-search algorithm (Lemma 1,
//      Appendix C), which bounds the group imbalance;
//   3. data delivery — ship the per-group pieces with a §4.3 delivery
//      algorithm (O(r) startups per PE);
//   4. recurse into the group's sub-communicator; a single-PE group sorts
//      locally (base case).
//
// Overpartitioning (b > 1) is what reduces the sample size needed for
// imbalance ε from O(1/ε²) to O(1/ε) — Lemma 2. Phases are timed exactly
// like the paper's implementation (§7.1): barrier-separated, accumulated
// over levels.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ams/level_config.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "delivery/delivery.hpp"
#include "em/external_merge.hpp"
#include "fastsort/fast_rank_sort.hpp"
#include "grouping/bucket_grouping.hpp"
#include "net/comm.hpp"
#include "seq/partition.hpp"
#include "seq/small_sort.hpp"

namespace pmps::ams {

using net::Comm;
using net::Phase;

struct AmsConfig {
  /// Group counts per level (Π = p). Empty → level_group_counts(p, levels).
  std::vector<int> group_counts;
  int levels = 2;  ///< used only when group_counts is empty

  double oversampling_a = 0;  ///< a; 0 → 1.6·log10(n) as in §7.2
  int overpartition_b = 16;   ///< b; §7.2 default

  delivery::Algo delivery = delivery::Algo::kSimple;  ///< §7.1 default
  bool parallel_grouping = false;  ///< Appendix C parallel search
  std::uint64_t seed = 1;

  /// Out-of-core switch (docs/EM.md): with a positive budget, stages whose
  /// element payload exceeds it spill to run blocks on disk — delivered
  /// pieces land in an em::RunStore and base-case local sorts become
  /// run formation + external merge. Virtual time is identical to the
  /// in-memory path, and so is the seeded output for unique-by-value keys
  /// (value-identical otherwise; see memory_budget.hpp).
  em::MemoryBudget budget;
};

/// Per-run diagnostics (identical on every PE).
struct AmsStats {
  std::vector<std::int64_t> sample_sizes;  ///< per level, global
  std::vector<std::int64_t> max_group_load;  ///< per level: optimal L
  std::vector<double> level_imbalance;  ///< per level: L / (n/r) − 1
};

namespace detail {

// One AMS level. The PE's current partition lives in exactly one of two
// places: `data` (in-memory mode) or `*store` (spilled mode — content is
// the runs concatenated, established by the previous level's delivery).
// The mode is re-decided per level from the budget: a partition that
// shrank below the budget is read back once and continues in memory; one
// that exceeds it is classified with the streaming two-pass (count then
// scatter) over its blocks and delivered straight from the store, so a
// spilled level never materialises the full partition (docs/EM.md). Both
// modes draw the same samples, classify with the same tags, charge the
// same virtual time and send byte-identical messages — only host-side
// storage differs.
template <typename T, typename Less>
void ams_level(Comm& comm, std::vector<T>& data,
               std::unique_ptr<em::RunStore<T>>& store, const AmsConfig& cfg,
               const std::vector<int>& rs, std::size_t level, Less less,
               AmsStats* stats) {
  const auto& machine = comm.machine();

  const std::int64_t n_local =
      store ? store->total() : static_cast<std::int64_t>(data.size());
  const bool spill =
      cfg.budget.should_spill(n_local * static_cast<std::int64_t>(sizeof(T)));
  if (store && !spill) {
    data = store->take_all();
    store.reset();
  }

  if (comm.size() == 1 || level >= rs.size()) {
    // Base case: sequential sort of the local data. Over budget it runs as
    // run formation + external merge — same result, same virtual-time
    // charge (spilling is host-side storage only, docs/EM.md).
    coll::barrier(comm);
    comm.set_phase(Phase::kLocalSort);
    if (store) {
      data = em::external_sort_store(*store, cfg.budget, less);
      store.reset();
    } else {
      em::local_sort_or_spill(data, cfg.budget, less);
    }
    comm.charge(machine.sort_cost(n_local));
    comm.set_phase(Phase::kOther);
    return;
  }

  const int p = comm.size();
  const int r = rs[level];
  PMPS_CHECK(r >= 2 && p % r == 0);

  // --- phase 1: splitter selection -----------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kSplitterSelection);

  const std::int64_t n_total = coll::allreduce_add_one(comm, n_local);
  const int b = std::max(1, cfg.overpartition_b);
  const double a =
      cfg.oversampling_a > 0
          ? cfg.oversampling_a
          : std::max(1.0, 1.6 * std::log10(std::max<double>(
                               static_cast<double>(n_total), 10.0)));
  const std::int64_t buckets_wanted = static_cast<std::int64_t>(b) * r;
  // Global sample size a·b·r, at least one sample per splitter; tiny inputs
  // degrade gracefully to fewer buckets (never more buckets than samples).
  std::int64_t sample_total = std::max<std::int64_t>(
      buckets_wanted,
      static_cast<std::int64_t>(std::ceil(a * static_cast<double>(buckets_wanted))));
  sample_total = std::min(sample_total, n_total);

  // This PE's share of the sample, drawn uniformly from the local data
  // (with replacement; the local shares follow the PE's data share).
  std::vector<std::int64_t> share{0};
  if (n_local > 0) {
    // Proportional allocation via a deterministic split of sample_total by
    // cumulative data sizes: PE gets chunk proportional to its local count.
    const std::int64_t my_begin = coll::exscan_add_one(comm, n_local);
    const std::int64_t lo =
        my_begin * sample_total / std::max<std::int64_t>(n_total, 1);
    const std::int64_t hi =
        (my_begin + n_local) * sample_total /
        std::max<std::int64_t>(n_total, 1);
    share[0] = hi - lo;
  } else {
    (void)coll::exscan_add_one(comm, 0);
  }
  std::vector<T> sample;
  sample.reserve(static_cast<std::size_t>(share[0]));
  for (std::int64_t i = 0; i < share[0]; ++i) {
    // Same rng stream, same positions in both modes — a spilled partition's
    // content order is exactly the in-memory concatenation order.
    const auto pos = comm.rng().bounded(static_cast<std::uint64_t>(n_local));
    sample.push_back(store ? store->read_element(static_cast<std::int64_t>(pos))
                           : data[static_cast<std::size_t>(pos)]);
  }
  comm.charge(machine.copy_cost(sample.size() * sizeof(T)));

  // Sort the sample with the fast work-inefficient algorithm and extract
  // b·r−1 equidistant tagged splitters.
  const std::int64_t S = coll::allreduce_add_one(
      comm, static_cast<std::int64_t>(sample.size()));
  const std::int64_t num_buckets =
      std::max<std::int64_t>(1, std::min<std::int64_t>(buckets_wanted, S));
  std::vector<std::int64_t> want;
  want.reserve(static_cast<std::size_t>(num_buckets - 1));
  for (std::int64_t j = 1; j < num_buckets; ++j) {
    // Equidistant ranks; distinct because S ≥ num_buckets.
    want.push_back(j * S / num_buckets);
  }
  std::vector<TaggedKey<T>> splitters;
  if (!want.empty()) {
    splitters = fastsort::fast_rank_select(
        comm, std::span<const T>(sample.data(), sample.size()), want, less);
  }
  if (stats) stats->sample_sizes.push_back(S);

  // --- phase 2: bucket processing (partition + grouping) -------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kBucketProcessing);

  seq::PartitionResult<T> part;                 // in-memory mode
  std::unique_ptr<em::RunStore<T>> part_store;  // spilled mode
  std::vector<std::int64_t> bucket_sizes;
  if (!splitters.empty()) {
    seq::BucketClassifier<T, Less> classifier(std::move(splitters), less);
    if (!spill) {
      part = seq::partition_into_buckets(
          std::span<const T>(data.data(), data.size()), comm.rank(),
          classifier);
      bucket_sizes = part.sizes;
    } else {
      // Streaming two-pass classification over the partition's blocks
      // (docs/EM.md): pass 1 counts elements per bucket, pass 2 re-reads
      // and scatters each element into its bucket's run — one RunWriter
      // (one block buffer) per bucket, runs created in bucket order, so
      // the partition store's content is the exact bucket-major stable
      // order partition_into_buckets produces. Peak memory: one source
      // block plus num_buckets writer blocks, never the full partition.
      bucket_sizes.assign(static_cast<std::size_t>(num_buckets), 0);
      const std::span<const T> vec(data.data(), data.size());
      auto each_block = [&](auto&& emit) {
        if (!store) {
          seq::classify_block(vec, comm.rank(), 0, classifier, emit);
          return;
        }
        std::vector<T> buf = store->acquire_buffer();
        const std::int64_t epb = store->elems_per_block();
        em::StoreStream<T> stream(*store);  // sequential pass, read-ahead
        for (std::int64_t off = 0; off < n_local; off += epb) {
          const std::int64_t len = std::min(epb, n_local - off);
          std::span<T> chunk(buf.data(), static_cast<std::size_t>(len));
          stream.read(chunk);
          seq::classify_block(std::span<const T>(chunk), comm.rank(), off,
                              classifier, emit);
        }
        store->release_buffer(std::move(buf));
      };
      each_block([&](std::int32_t b, const T&) {
        ++bucket_sizes[static_cast<std::size_t>(b)];
      });
      part_store = std::make_unique<em::RunStore<T>>(cfg.budget);
      {
        std::vector<em::RunWriter<T>> writers;
        writers.reserve(static_cast<std::size_t>(num_buckets));
        for (std::int64_t bkt = 0; bkt < num_buckets; ++bkt)
          writers.emplace_back(*part_store);
        each_block([&](std::int32_t b, const T& v) {
          writers[static_cast<std::size_t>(b)].push(v);
        });
        for (auto& w : writers) w.finish();
      }
      if (store) store.reset();
      else std::vector<T>().swap(data);
    }
    comm.charge(machine.partition_cost(n_local, num_buckets));
  } else {
    // Degenerate single bucket (empty or tiny input).
    bucket_sizes = {n_local};
    if (!spill) {
      part.elements = data;
      part.sizes = bucket_sizes;
      part.offsets = {0};
    } else if (store) {
      part_store = std::move(store);  // identity partition
    } else {
      part_store = std::make_unique<em::RunStore<T>>(cfg.budget);
      part_store->append_run(std::span<const T>(data.data(), data.size()));
      std::vector<T>().swap(data);
    }
  }

  const auto global_buckets = coll::allreduce_add(comm, bucket_sizes);
  grouping::GroupingResult grouping =
      cfg.parallel_grouping
          ? grouping::group_buckets_parallel(
                comm,
                std::span<const std::int64_t>(global_buckets.data(),
                                              global_buckets.size()),
                r)
          : grouping::group_buckets_optimal(
                std::span<const std::int64_t>(global_buckets.data(),
                                              global_buckets.size()),
                r);
  if (!cfg.parallel_grouping) {
    // Sequential scanning: every PE does the identical O(B log B) search.
    comm.charge(machine.compare_cost_n(
        static_cast<std::int64_t>(grouping.scans) * num_buckets));
  }
  if (stats) {
    stats->max_group_load.push_back(grouping.max_load);
    stats->level_imbalance.push_back(
        static_cast<double>(grouping.max_load) /
            (static_cast<double>(n_total) / static_cast<double>(r)) -
        1.0);
  }

  // Piece sizes per group: buckets are contiguous in `part.elements` and
  // groups cover consecutive bucket ranges.
  std::vector<std::int64_t> piece_sizes(static_cast<std::size_t>(r), 0);
  for (std::int64_t bkt = 0; bkt < num_buckets; ++bkt) {
    piece_sizes[static_cast<std::size_t>(grouping.group_of(bkt))] +=
        bucket_sizes[static_cast<std::size_t>(bkt)];
  }

  // --- phase 3: data delivery ----------------------------------------------
  coll::barrier(comm);
  comm.set_phase(Phase::kDataDelivery);
  if (!spill) {
    // `data` becomes the received runs, concatenated (the pre-partition
    // copy is released first, dropping the phase peak from ~3× to ~2× the
    // local data).
    std::vector<T>().swap(data);
    data = delivery::deliver_flat(comm, part.elements, piece_sizes,
                                  cfg.delivery, cfg.seed + level, cfg.budget);
  } else {
    // Spill-to-spill: the plan is materialised block-by-block from the
    // partition store and incoming pieces land as runs of the next level's
    // store — identical placements, identical messages, identical virtual
    // time; the partition is never resident in full.
    auto next = std::make_unique<em::RunStore<T>>(cfg.budget);
    delivery::deliver_store_into(comm, *part_store, piece_sizes, cfg.delivery,
                                 cfg.seed + level, em::run_sink(*next));
    part_store.reset();
    store = std::move(next);
  }
  comm.set_phase(Phase::kOther);

  // --- recurse --------------------------------------------------------------
  Comm sub = comm.split_consecutive(r);
  ams_level(sub, data, store, cfg, rs, level + 1, less, stats);
}

}  // namespace detail

/// Sorts `data` (distributed over the communicator) in place: afterwards
/// every PE's data is sorted and no element on PE i compares greater than
/// any element on PE i+1. Output sizes are balanced to (1+ε)·n/p with the
/// ε achieved by overpartitioning (see AmsStats::level_imbalance).
template <typename T, typename Less = std::less<T>>
AmsStats ams_sort(Comm& comm, std::vector<T>& data, const AmsConfig& cfg = {},
                  Less less = {}) {
  AmsStats stats;
  std::vector<int> rs = cfg.group_counts;
  if (rs.empty())
    rs = level_group_counts(comm.size(), cfg.levels,
                            comm.machine().pes_per_node);
  std::int64_t prod = 1;
  for (int r : rs) prod *= r;
  PMPS_CHECK_MSG(prod == comm.size(), "group counts must multiply to p");
  std::unique_ptr<em::RunStore<T>> store;  // spilled-partition carrier
  detail::ams_level(comm, data, store, cfg, rs, 0, less, &stats);
  PMPS_ASSERT(store == nullptr);  // base case always materialises the output
  return stats;
}

}  // namespace pmps::ams
