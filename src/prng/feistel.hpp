// Pseudorandom permutations from chained Feistel rounds (paper Appendix B).
//
// A permutation π : 0..n−1 → 0..n−1 is built on the square domain
// 0..side²−1 (side = ⌈√n⌉) from four Feistel permutations
// π_f((a,b)) = (b, (a + f(b)) mod side) with pseudorandom round functions f
// [23, 25]; values ≥ n are cycle-walked (iterate π' until the image lands
// below n — expected < 2 iterations since side² < 4n).
//
// The state is four 64-bit keys, so — as the paper notes — it can be
// replicated on every PE, giving all PEs a consistent global permutation
// without any communication. Used by the randomized data delivery
// algorithms (§4.3, Appendix A).

#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/random.hpp"

namespace pmps::prng {

class FeistelPermutation {
 public:
  static constexpr int kRounds = 4;

  FeistelPermutation() : FeistelPermutation(1, 0) {}

  FeistelPermutation(std::uint64_t n, std::uint64_t seed) : n_(n) {
    PMPS_CHECK(n >= 1);
    side_ = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n_)));
    if (side_ < 1) side_ = 1;
    while (side_ * side_ < n_) ++side_;  // ⌈√n⌉
    std::uint64_t sm = mix64(seed ^ 0xfe15e1f00dULL);
    for (auto& k : keys_) k = splitmix64(sm);
  }

  std::uint64_t size() const { return n_; }

  /// π(i) for i in 0..n−1; bijective on that range.
  std::uint64_t operator()(std::uint64_t i) const {
    PMPS_ASSERT(i < n_);
    std::uint64_t x = i;
    do {
      x = permute_square(x);
    } while (x >= n_);  // cycle walking stays within the permutation
    return x;
  }

 private:
  /// One pass of four Feistel rounds over the square domain side².
  std::uint64_t permute_square(std::uint64_t x) const {
    std::uint64_t a = x / side_;
    std::uint64_t b = x % side_;
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t f = mix64(b ^ keys_[static_cast<std::size_t>(r)]) % side_;
      const std::uint64_t na = b;
      b = (a + f) % side_;
      a = na;
    }
    return a * side_ + b;
  }

  std::uint64_t n_;
  std::uint64_t side_;
  std::uint64_t keys_[kRounds];
};

}  // namespace pmps::prng
