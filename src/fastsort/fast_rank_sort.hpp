// Fast work-inefficient sorting (paper §4.2).
//
// The PEs are arranged as an a×b grid with a, b = O(√p) (for p = 2^P,
// a = 2^⌈P/2⌉ and b = 2^⌊P/2⌋). Locally sorted elements are gossiped
// (allgather-with-merge) along rows and columns; PE (i,j) then ranks the
// elements received from its column against the elements received from its
// row by merging the two sorted sequences, and summing these local ranks
// along columns yields every element's global rank. Total time
// O(α log p + β n/√p + n/p log(n/p))  — Equation (2).
//
// AMS-sort uses this to sort its sample and extract splitters with
// prescribed ranks, so the interface here is rank *selection*: every PE
// returns the elements whose global ranks match `want_ranks`. Elements are
// tagged with their origin (PE, index), which makes ranks unique even with
// duplicate keys (Appendix D).
//
// For p that is not a power of two we use the paper's footnote-3 fallback:
// a merging gather along a binomial tree plus a broadcast of the result.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "common/types.hpp"
#include "net/comm.hpp"

namespace pmps::fastsort {

using net::Comm;

namespace detail {

template <typename T>
struct SelectSlot {
  std::uint8_t has = 0;
  TaggedKey<T> value{};
};

template <typename T>
SelectSlot<T> pick_slot(const SelectSlot<T>& a, const SelectSlot<T>& b) {
  return a.has ? a : b;
}

template <typename T, typename Less>
bool tagged_less(const TaggedKey<T>& a, const TaggedKey<T>& b, Less less) {
  if (less(a.key, b.key)) return true;
  if (less(b.key, a.key)) return false;
  if (a.pe != b.pe) return a.pe < b.pe;
  return a.index < b.index;
}

}  // namespace detail

/// Selects the elements with global (0-based) ranks `want_ranks` from the
/// distributed input `local`; every PE returns the full selection, ordered
/// like `want_ranks`. `want_ranks` must be sorted and < the global element
/// count.
template <typename T, typename Less = std::less<T>>
std::vector<TaggedKey<T>> fast_rank_select(
    Comm& comm, std::span<const T> local,
    const std::vector<std::int64_t>& want_ranks, Less less = {}) {
  const auto& machine = comm.machine();
  auto tless = [less](const TaggedKey<T>& a, const TaggedKey<T>& b) {
    return detail::tagged_less(a, b, less);
  };

  // Tag and sort locally.
  std::vector<TaggedKey<T>> mine;
  mine.reserve(local.size());
  for (std::size_t i = 0; i < local.size(); ++i)
    mine.push_back(TaggedKey<T>{local[i], comm.rank(),
                                static_cast<std::int64_t>(i)});
  std::sort(mine.begin(), mine.end(), tless);
  comm.charge(machine.sort_cost(static_cast<std::int64_t>(mine.size())));

  const int p = comm.size();
  if (!is_pow2(p)) {
    // Footnote-3 fallback: merging gather + broadcast, then select locally.
    auto all = coll::allgather_merge(
        comm, std::span<const TaggedKey<T>>(mine.data(), mine.size()), tless);
    std::vector<TaggedKey<T>> out;
    out.reserve(want_ranks.size());
    for (std::int64_t k : want_ranks) {
      PMPS_CHECK(k >= 0 && k < static_cast<std::int64_t>(all.size()));
      out.push_back(all[static_cast<std::size_t>(k)]);
    }
    return out;
  }

  // Grid shape: a rows × b columns, a = 2^⌈P/2⌉, b = 2^⌊P/2⌋.
  const int P = floor_log2(static_cast<std::uint64_t>(p));
  const int a = 1 << ((P + 1) / 2);
  const int b = 1 << (P / 2);
  PMPS_CHECK(a * b == p);
  const int row = comm.rank() / b;
  const int col = comm.rank() % b;

  Comm row_comm = comm.split(/*color=*/row, /*key=*/col);
  Comm col_comm = comm.split(/*color=*/a + col, /*key=*/row);
  PMPS_CHECK(row_comm.size() == b && col_comm.size() == a);

  // Gossip sorted runs along the row and along the column.
  auto row_data = coll::allgather_merge(
      row_comm, std::span<const TaggedKey<T>>(mine.data(), mine.size()),
      tless);
  auto col_data = coll::allgather_merge(
      col_comm, std::span<const TaggedKey<T>>(mine.data(), mine.size()),
      tless);

  // Rank column elements against row elements by a linear merge pass.
  std::vector<std::int64_t> local_rank(col_data.size());
  {
    std::size_t ri = 0;
    for (std::size_t ci = 0; ci < col_data.size(); ++ci) {
      while (ri < row_data.size() && tless(row_data[ri], col_data[ci])) ++ri;
      local_rank[ci] = static_cast<std::int64_t>(ri);
    }
    comm.charge(machine.merge_cost(
        static_cast<std::int64_t>(row_data.size() + col_data.size()), 2));
  }

  // Sum local ranks along the column: since the rows partition the whole
  // input, Σ_i rank(e, row_i) is e's global rank. col_data is identical on
  // every PE of the column, so the vectors align.
  const auto global_rank = coll::allreduce_add(col_comm, local_rank);

  // Extract the wanted ranks: row 0 of each column contributes matches, a
  // comm-wide allreduce with "first non-empty wins" distributes them.
  std::vector<detail::SelectSlot<T>> slots(want_ranks.size());
  if (row == 0) {
    for (std::size_t ci = 0; ci < col_data.size(); ++ci) {
      const auto it = std::lower_bound(want_ranks.begin(), want_ranks.end(),
                                       global_rank[ci]);
      if (it != want_ranks.end() && *it == global_rank[ci]) {
        const auto j = static_cast<std::size_t>(it - want_ranks.begin());
        slots[j].has = 1;
        slots[j].value = col_data[ci];
      }
    }
  }
  slots = coll::allreduce(comm, std::move(slots), detail::pick_slot<T>);

  std::vector<TaggedKey<T>> out;
  out.reserve(want_ranks.size());
  for (std::size_t j = 0; j < want_ranks.size(); ++j) {
    PMPS_CHECK_MSG(slots[j].has, "requested rank exceeds global sample size");
    out.push_back(slots[j].value);
  }
  return out;
}

}  // namespace pmps::fastsort
