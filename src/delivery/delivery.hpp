// Data delivery (paper §4.3, §4.3.1 and Appendix A).
//
// Each PE holds its local data partitioned into r consecutive pieces; piece
// g must be moved to PE group g (ranks [g·p/r, (g+1)·p/r)), and every PE of
// a group must receive (nearly) the same amount of data using only O(r)
// message startups per PE. Four algorithms:
//
//  kSimple          — plain vector-valued prefix sum over piece sizes;
//                     element j of group g goes to the ⌈j/(m_g/p')⌉-th PE of
//                     the group. O(2r) sends per PE, but adversarial inputs
//                     (many consecutive senders with tiny pieces, Fig. 3 top)
//                     can concentrate Ω(p) *received* messages on one PE.
//  kRandomized      — the prefix sum enumerates senders in pseudorandom
//                     order (Feistel permutation, Appendix B), breaking the
//                     consecutive-tiny-pieces pattern (Fig. 3 bottom).
//                     (The paper permutes per group; we use one global
//                     sender permutation, which breaks the same adversarial
//                     correlation with a single reordered prefix sum.)
//  kDeterministic   — the two-phase algorithm of §4.3.1 (Theorem 1): small
//                     pieces (≤ n/2pr) are assigned whole, r per receiver;
//                     large pieces are placed into the residual capacities
//                     by merging two prefix-sum sequences. Receivers get
//                     ≤ r small + ≤ 2r large pieces: O(r) startups
//                     guaranteed. (The group-internal merge is performed as
//                     an allgather of O(p) descriptors per group plus an
//                     identical local merge, replacing the Batcher-network
//                     merge of [15]; the assignment produced is the same —
//                     see docs/DESIGN.md §2.)
//  kAdvancedRandomized — Appendix A (Theorem 4): pieces larger than
//                     s = a·n/(rp) are chopped into size-s fragments that
//                     are *delegated* to pseudorandom PEs for enumeration;
//                     origins are notified of their fragments' position
//                     ranges and ship data directly. With high probability
//                     ≤ 1 + 2r(1+1/a) received messages per PE.
//
// Every algorithm is split into a *placer* and a *materialiser*. The placer
// (place_simple / place_deterministic / place_advanced) runs all of the
// algorithm's control communication — prefix sums, descriptor exchanges,
// delegations — and returns the outgoing data messages as a list of
// Placements: (dest, offset, len) fragments of the local partition's
// *content*, in emission order. Placers never touch elements, so they are
// non-template code shared by every element type AND every storage mode.
// The materialiser turns placements into one coll::SendPlan either from an
// in-memory span (plan_delivery) or block-by-block from a spilled
// em::RunStore (plan_delivery_from_store) — the same placements, sliced in
// the same order, produce byte-identical plans, which is what makes the
// spilled AMS classification path bit-identical to the in-memory one.
//
// All variants ship payloads with coll::sparse_exchange, so their startup
// guarantees are directly observable in the simulator's message statistics
// (tests assert them).
//
// Unreliable networks (net/network_model.hpp, docs/DESIGN.md §10): when a
// lossy NetworkModel is installed, every point-to-point send underneath
// these exchanges runs a stop-and-wait ack/retransmit protocol at the send
// site. The delivery layer is deliberately oblivious to it: exactly one
// copy of each message reaches the destination mailbox (duplicates are
// suppressed by the transport), deposits stay in sender program order so
// per-key FIFO matching — which the piece/fragment sequencing here relies
// on — is preserved, and retry exhaustion aborts the run with a
// NetworkError instead of wedging a receiver. Loss and jitter therefore
// change *virtual time* (and the retransmit counters in CommStats), never
// the delivered assignment.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "common/math.hpp"
#include "em/run_cursor.hpp"
#include "em/run_store.hpp"
#include "net/comm.hpp"
#include "prng/feistel.hpp"

namespace pmps::delivery {

using net::Comm;

enum class Algo {
  kSimple,              ///< prefix-sum placement (§4.3); adversarial worst case Ω(p) recvs
  kRandomized,          ///< prefix sum over a pseudorandom sender order (§4.3, App. B)
  kDeterministic,       ///< two-phase small/large assignment of §4.3.1, O(r) recvs guaranteed
  kAdvancedRandomized,  ///< fragment-and-delegate scheme of Appendix A (Theorem 4)
};

/// Human-readable name for tables and test failure messages.
inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kSimple: return "simple";
    case Algo::kRandomized: return "randomized";
    case Algo::kDeterministic: return "deterministic";
    case Algo::kAdvancedRandomized: return "advanced-randomized";
  }
  return "?";
}

/// One outgoing data fragment, produced by a placer: `len` elements
/// starting at content offset `offset` of the local partition (pieces
/// concatenated in group order), shipped to rank `dest`. Placements are
/// emitted in send order — materialising them in sequence reproduces the
/// exact piece sequence (and thus message sequence) of the algorithm.
struct Placement {
  std::int32_t dest;
  std::int64_t offset;
  std::int64_t len;
};

namespace detail {

/// Chunk index of position `pos` when [0, m) is split into `parts` chunks
/// via chunk_begin (first m%parts chunks one element larger).
inline std::int64_t chunk_of(std::int64_t m, std::int64_t parts,
                             std::int64_t pos) {
  PMPS_ASSERT(pos >= 0 && pos < m);
  const std::int64_t base = m / parts;
  const std::int64_t rem = m % parts;
  if (base == 0) return pos;  // chunks of size 1 then 0
  const std::int64_t big_span = rem * (base + 1);
  if (pos < big_span) return pos / (base + 1);
  return rem + (pos - big_span) / base;
}

/// Emits placements for one contiguous fragment of local content
/// ([base, base + len)) occupying positions [pos, pos + len) of group g's
/// stream of m elements, split across the group's p_prime receivers by
/// chunk boundaries. Each chunk becomes one placement (= one plan piece).
inline void emit_piece(std::int64_t base, std::int64_t len, int group,
                       std::int64_t pos, std::int64_t m, std::int64_t p_prime,
                       std::vector<Placement>& out) {
  std::int64_t done = 0;
  while (done < len) {
    const std::int64_t q = chunk_of(m, p_prime, pos + done);
    const std::int64_t q_end = chunk_begin(m, p_prime, q + 1);
    const std::int64_t take = std::min(len - done, q_end - (pos + done));
    PMPS_ASSERT(take > 0);
    const int dest =
        group * static_cast<int>(p_prime) + static_cast<int>(q);
    out.push_back(Placement{dest, base + done, take});
    done += take;
  }
}

/// Prefix offsets of the local pieces within the local data span.
inline std::vector<std::int64_t> local_offsets(
    const std::vector<std::int64_t>& sizes) {
  std::vector<std::int64_t> off(sizes.size() + 1, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i) off[i + 1] = off[i] + sizes[i];
  return off;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// simple & randomized
// ---------------------------------------------------------------------------

/// kSimple / kRandomized: one vector-valued prefix sum over the piece sizes
/// (in PE order or in a Feistel-permuted sender order) places every element
/// at a global position in its group's stream; chunk boundaries map
/// positions to receivers. O(2r) sends per PE.
inline std::vector<Placement> place_simple(
    Comm& comm, const std::vector<std::int64_t>& piece_sizes,
    bool permute_senders, std::uint64_t seed) {
  const int p = comm.size();
  const int r = static_cast<int>(piece_sizes.size());
  PMPS_CHECK(r >= 1 && p % r == 0);
  const std::int64_t p_prime = p / r;

  std::vector<std::int64_t> off;
  if (!permute_senders) {
    off = coll::exscan_add(comm, piece_sizes);
  } else {
    // Enumerate senders in pseudorandom order: run the prefix sum on a
    // communicator whose ranks are permuted by a Feistel PRP (replicated
    // state, no communication needed to agree on it — Appendix B).
    prng::FeistelPermutation perm(static_cast<std::uint64_t>(p), seed);
    Comm permuted = comm.split(
        0, static_cast<int>(perm(static_cast<std::uint64_t>(comm.rank()))));
    off = coll::exscan_add(permuted, piece_sizes);
  }
  const auto m = coll::allreduce_add(comm, piece_sizes);

  const auto loc = detail::local_offsets(piece_sizes);
  std::vector<Placement> out;
  for (int g = 0; g < r; ++g) {
    if (piece_sizes[static_cast<std::size_t>(g)] == 0) continue;
    detail::emit_piece(loc[static_cast<std::size_t>(g)],
                       piece_sizes[static_cast<std::size_t>(g)], g,
                       off[static_cast<std::size_t>(g)],
                       m[static_cast<std::size_t>(g)], p_prime, out);
  }

  return out;
}

// ---------------------------------------------------------------------------
// deterministic two-phase (§4.3.1)
// ---------------------------------------------------------------------------

namespace detail {

struct PieceDesc {
  std::int32_t sender;  ///< comm rank of the owner
  std::int32_t group;
  std::int64_t size;
};

/// Assignment of one (possibly split) piece fragment.
struct FragmentAssign {
  std::int32_t group;
  std::int64_t piece_offset;  ///< offset within the sender's piece
  std::int64_t len;
  std::int32_t dest;  ///< comm rank to ship to
};

}  // namespace detail

/// kDeterministic (§4.3.1): small pieces (≤ n/2pr) are assigned whole,
/// ≤ r per receiver; large pieces fill the residual capacities. Every
/// receiver gets O(r) messages regardless of the piece-size distribution.
inline std::vector<Placement> place_deterministic(
    Comm& comm, const std::vector<std::int64_t>& piece_sizes) {
  using detail::PieceDesc;
  const int p = comm.size();
  const int r = static_cast<int>(piece_sizes.size());
  PMPS_CHECK(r >= 1 && p % r == 0);
  const std::int64_t p_prime = p / r;
  const int my_group = comm.rank() / static_cast<int>(p_prime);

  const auto m = coll::allreduce_add(comm, piece_sizes);
  std::int64_t n_total = 0;
  for (auto v : m) n_total += v;
  // Threshold between small and large pieces: n/(2pr).
  const std::int64_t small_limit =
      std::max<std::int64_t>(1, n_total / (2 * static_cast<std::int64_t>(p) *
                                           static_cast<std::int64_t>(r)));

  // Send every piece's descriptor to PE ⌊sender/r⌋ of its target group —
  // the Exch(p, O(r), r) descriptor exchange of §4.3.1. (Pieces of size 0
  // are ignored entirely.)
  coll::SendPlan<PieceDesc> desc_out;
  for (int g = 0; g < r; ++g) {
    if (piece_sizes[static_cast<std::size_t>(g)] == 0) continue;
    const int within = comm.rank() / r;  // ⌊i/r⌋, capped to the group size
    const int holder =
        g * static_cast<int>(p_prime) +
        std::min<int>(within, static_cast<int>(p_prime) - 1);
    desc_out.begin_piece(holder);
    desc_out.push_back(
        PieceDesc{comm.rank(), g, piece_sizes[static_cast<std::size_t>(g)]});
  }
  auto desc_in = coll::sparse_exchange(comm, desc_out);

  // Group-internal: allgather the descriptors so every member can compute
  // the identical assignment (replaces the Batcher-network merge of [15]).
  // The sparse result is already one flat descriptor buffer, and the
  // allgather result's concatenation is exactly the piece list.
  Comm group = comm.split_consecutive(r);
  std::vector<PieceDesc> pieces =
      coll::allgatherv(group, desc_in.parts.flat()).take_flat();
  // Deterministic order: by sender rank (each sender has ≤ 1 piece/group).
  std::sort(pieces.begin(), pieces.end(),
            [](const PieceDesc& a, const PieceDesc& b) {
              return a.sender < b.sender;
            });
  comm.charge(comm.machine().compare_cost_n(
      static_cast<std::int64_t>(pieces.size()) *
      ceil_log2(std::max<std::uint64_t>(pieces.size(), 2))));

  // --- identical local computation of the assignment for `my_group` -------
  const std::int64_t mg = m[static_cast<std::size_t>(my_group)];
  std::vector<detail::FragmentAssign> assigns;  // for pieces of my group
  {
    // Phase 1: small pieces, numbered in sender order; small piece i goes
    // whole to PE ⌊i/r⌋ of the group.
    std::vector<std::int64_t> small_load(static_cast<std::size_t>(p_prime), 0);
    std::int64_t small_idx = 0;
    for (const auto& pc : pieces) {
      if (pc.size > small_limit) continue;
      const auto q = static_cast<std::size_t>(
          std::min<std::int64_t>(small_idx / r, p_prime - 1));
      small_load[q] += pc.size;
      assigns.push_back(detail::FragmentAssign{
          pc.group, 0, pc.size,
          my_group * static_cast<int>(p_prime) + static_cast<int>(q)});
      ++small_idx;
    }
    // Phase 2: large pieces into residual capacities, in sender order. The
    // merge of capacity prefix sums (X) and piece-size prefix sums (Y) is
    // realised by walking receivers and pieces simultaneously.
    std::vector<std::int64_t> residual(static_cast<std::size_t>(p_prime));
    for (std::int64_t q = 0; q < p_prime; ++q) {
      const std::int64_t quota =
          chunk_begin(mg, p_prime, q + 1) - chunk_begin(mg, p_prime, q);
      residual[static_cast<std::size_t>(q)] =
          std::max<std::int64_t>(0, quota - small_load[static_cast<std::size_t>(q)]);
    }
    std::int64_t q = 0;
    for (const auto& pc : pieces) {
      if (pc.size <= small_limit) continue;
      std::int64_t remaining = pc.size;
      std::int64_t piece_off = 0;
      while (remaining > 0) {
        PMPS_CHECK_MSG(q < p_prime, "capacity accounting broke");
        const std::int64_t take =
            std::min(remaining, residual[static_cast<std::size_t>(q)]);
        if (take > 0) {
          assigns.push_back(detail::FragmentAssign{
              pc.group, piece_off, take,
              my_group * static_cast<int>(p_prime) + static_cast<int>(q)});
          residual[static_cast<std::size_t>(q)] -= take;
          remaining -= take;
          piece_off += take;
        }
        if (residual[static_cast<std::size_t>(q)] == 0 && remaining > 0) ++q;
      }
    }
  }
  comm.charge(comm.machine().compare_cost_n(
      static_cast<std::int64_t>(pieces.size() + assigns.size())));

  // Reply the assignments to the senders (only fragments of *their* pieces).
  coll::SendPlan<detail::FragmentAssign> reply_out;
  {
    // Each member replies for the pieces whose descriptor it held; we know
    // which ones: sender/r == my rank-within-group (same mapping as above).
    const int my_within = group.rank();
    std::size_t ai = 0;
    // Walk pieces twice in the same order as assignment generation: smalls
    // then larges.
    std::vector<const PieceDesc*> order;
    for (const auto& pc : pieces)
      if (pc.size <= small_limit) order.push_back(&pc);
    for (const auto& pc : pieces)
      if (pc.size > small_limit) order.push_back(&pc);
    for (const PieceDesc* pc : order) {
      const int holder_within =
          std::min<int>(pc->sender / r, static_cast<int>(p_prime) - 1);
      const bool mine = holder_within == my_within;
      if (mine) reply_out.begin_piece(pc->sender);
      std::int64_t covered = 0;
      while (covered < pc->size) {
        PMPS_CHECK(ai < assigns.size());
        if (mine) reply_out.push_back(assigns[ai]);
        covered += assigns[ai].len;
        ++ai;
      }
      PMPS_CHECK(covered == pc->size);
    }
    PMPS_CHECK(ai == assigns.size());
  }
  auto replies = coll::sparse_exchange(comm, reply_out);

  // Ship the data: each assigned fragment is one placement, sliced out of
  // the local partition content at materialisation time.
  const auto loc = detail::local_offsets(piece_sizes);
  std::vector<Placement> out;
  for (const auto& f : replies.parts.flat()) {
    out.push_back(Placement{
        f.dest, loc[static_cast<std::size_t>(f.group)] + f.piece_offset,
        f.len});
  }
  return out;
}

// ---------------------------------------------------------------------------
// advanced randomized (Appendix A)
// ---------------------------------------------------------------------------

namespace detail {

struct Delegation {
  std::int32_t origin;        ///< comm rank owning the data
  std::int32_t group;
  std::int64_t piece_offset;  ///< offset of the fragment within the piece
  std::int64_t size;
};

struct RangeReply {
  std::int32_t group;
  std::int64_t piece_offset;
  std::int64_t size;
  std::int64_t position;  ///< start position in the group's stream
};

}  // namespace detail

/// kAdvancedRandomized (Appendix A, Theorem 4): pieces above the fragment
/// threshold are chopped and delegated to pseudorandomly chosen proxies so
/// that whp no receiver sees more than O(r) messages, without the barrier
/// structure of the deterministic scheme.
inline std::vector<Placement> place_advanced(
    Comm& comm, const std::vector<std::int64_t>& piece_sizes,
    std::uint64_t seed) {
  using detail::Delegation;
  using detail::RangeReply;
  const int p = comm.size();
  const int r = static_cast<int>(piece_sizes.size());
  PMPS_CHECK(r >= 1 && p % r == 0);
  const std::int64_t p_prime = p / r;

  const auto m = coll::allreduce_add(comm, piece_sizes);
  std::int64_t n_total = 0;
  for (auto v : m) n_total += v;

  // Fragment size limit s = a·n/(rp) with a = Θ(√(r / ln rp)) (Lemma 6).
  const double ln_rp = std::log(std::max<double>(
      static_cast<double>(r) * static_cast<double>(p), 2.0));
  const double a_tune = std::max(
      1.0, 0.5 * (std::sqrt(1.0 + static_cast<double>(r) / ln_rp) - 1.0));
  const std::int64_t s = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             a_tune * static_cast<double>(n_total) /
             (static_cast<double>(r) * static_cast<double>(p))));

  // Chop pieces: fragments of exactly size s are "large" (delegated); the
  // remainder (< s) stays home.
  struct LocalFrag {
    std::int32_t group;
    std::int64_t piece_offset;
    std::int64_t size;
    bool large;
  };
  std::vector<LocalFrag> frags;
  std::vector<std::int64_t> my_large_count(1, 0);
  for (int g = 0; g < r; ++g) {
    const std::int64_t sz = piece_sizes[static_cast<std::size_t>(g)];
    std::int64_t off = 0;
    while (sz - off >= s && sz > s) {  // only pieces exceeding s are chopped
      frags.push_back(LocalFrag{g, off, s, true});
      my_large_count[0] += 1;
      off += s;
    }
    if (sz - off > 0)
      frags.push_back(LocalFrag{g, off, sz - off, false});
  }

  // Enumerate large fragments globally and delegate via a Feistel PRP.
  const std::int64_t my_first_large =
      coll::exscan_add(comm, my_large_count)[0];
  const std::int64_t total_large =
      coll::allreduce_add(comm, my_large_count)[0];
  prng::FeistelPermutation perm(
      static_cast<std::uint64_t>(std::max<std::int64_t>(total_large, 1)),
      seed ^ 0xde1e6a7eULL);

  coll::SendPlan<Delegation> delegate_out;
  {
    std::int64_t idx = my_first_large;
    for (const auto& f : frags) {
      if (!f.large) continue;
      const int delegate = static_cast<int>(
          perm(static_cast<std::uint64_t>(idx)) % static_cast<std::uint64_t>(p));
      delegate_out.begin_piece(delegate);
      delegate_out.push_back(
          Delegation{comm.rank(), f.group, f.piece_offset, f.size});
      ++idx;
    }
  }
  auto delegated = coll::sparse_exchange(comm, delegate_out);

  // Per-group contribution of this PE: its own small fragments plus the
  // delegated large fragments it now administers. (The paper additionally
  // shuffles the local order; sizes are what matters for the prefix sum.)
  std::vector<std::int64_t> contrib(static_cast<std::size_t>(r), 0);
  for (const auto& f : frags)
    if (!f.large) contrib[static_cast<std::size_t>(f.group)] += f.size;
  for (const auto& d : delegated.parts.flat())
    contrib[static_cast<std::size_t>(d.group)] += d.size;

  auto positions = coll::exscan_add(comm, contrib);

  // Assign position ranges: first own small fragments, then delegated ones;
  // notify origins of their ranges.
  std::vector<RangeReply> my_small_ranges;
  coll::SendPlan<RangeReply> reply_out;
  {
    std::vector<std::int64_t> cursor = positions;
    for (const auto& f : frags) {
      if (f.large) continue;
      my_small_ranges.push_back(RangeReply{
          f.group, f.piece_offset, f.size,
          cursor[static_cast<std::size_t>(f.group)]});
      cursor[static_cast<std::size_t>(f.group)] += f.size;
    }
    for (const auto& d : delegated.parts.flat()) {
      reply_out.begin_piece(d.origin);
      reply_out.push_back(RangeReply{d.group, d.piece_offset, d.size,
                                     cursor[static_cast<std::size_t>(d.group)]});
      cursor[static_cast<std::size_t>(d.group)] += d.size;
    }
  }
  auto range_replies = coll::sparse_exchange(comm, reply_out);

  // Ship data: own small fragments plus replied large fragments.
  const auto loc = detail::local_offsets(piece_sizes);
  std::vector<Placement> out;
  auto emit = [&](const RangeReply& rr) {
    detail::emit_piece(
        loc[static_cast<std::size_t>(rr.group)] + rr.piece_offset, rr.size,
        rr.group, rr.position, m[static_cast<std::size_t>(rr.group)], p_prime,
        out);
  };
  for (const auto& rr : my_small_ranges) emit(rr);
  for (const auto& rr : range_replies.parts.flat()) emit(rr);

  return out;
}

// ---------------------------------------------------------------------------
// dispatcher & materialisers
// ---------------------------------------------------------------------------

/// Runs the chosen algorithm's planning communication and returns the
/// outgoing data messages as placements in send order (collective; every
/// PE must call it). Element-type-independent: all four algorithms'
/// control plane only ever looks at piece *sizes*.
inline std::vector<Placement> place_delivery(
    Comm& comm, const std::vector<std::int64_t>& piece_sizes, Algo algo,
    std::uint64_t seed) {
  switch (algo) {
    case Algo::kSimple:
      return place_simple(comm, piece_sizes, false, seed);
    case Algo::kRandomized:
      return place_simple(comm, piece_sizes, true, seed);
    case Algo::kDeterministic:
      return place_deterministic(comm, piece_sizes);
    case Algo::kAdvancedRandomized:
      return place_advanced(comm, piece_sizes, seed);
  }
  PMPS_CHECK(false);
  return {};
}

/// Materialises placements from an in-memory partition: `data` holds r
/// consecutive pieces of sizes `piece_sizes` (piece g destined for group
/// g). Returns the outgoing messages as one flat SendPlan — a flat element
/// buffer plus (dest, offset) piece descriptors, the send-side mirror of
/// FlatParts. Pieces are written straight into the flat buffer, so
/// planning costs O(1) allocations instead of one heap vector per piece
/// (docs/DESIGN.md §9).
template <typename T>
coll::SendPlan<T> plan_delivery(
    Comm& comm, std::span<const T> data,
    const std::vector<std::int64_t>& piece_sizes, Algo algo,
    std::uint64_t seed) {
  std::int64_t sum = 0;
  for (auto v : piece_sizes) sum += v;
  PMPS_CHECK(sum == static_cast<std::int64_t>(data.size()));
  coll::SendPlan<T> out;
  for (const auto& pl : place_delivery(comm, piece_sizes, algo, seed)) {
    out.add(pl.dest, data.subspan(static_cast<std::size_t>(pl.offset),
                                  static_cast<std::size_t>(pl.len)));
  }
  return out;
}

/// Materialises placements from a *spilled* partition: the store's content
/// (runs concatenated) is the r consecutive pieces. Each placement is read
/// back one block at a time into the plan's flat buffer, so the host never
/// holds the partition AND the plan at once — the peak is the plan plus
/// one block. Identical placements sliced in identical order make the plan
/// byte-identical to plan_delivery over take_all().
template <Sortable T>
coll::SendPlan<T> plan_delivery_from_store(
    Comm& comm, em::RunStore<T>& store,
    const std::vector<std::int64_t>& piece_sizes, Algo algo,
    std::uint64_t seed) {
  std::int64_t sum = 0;
  for (auto v : piece_sizes) sum += v;
  PMPS_CHECK(sum == store.total());
  coll::SendPlan<T> out;
  std::vector<T> buf = store.acquire_buffer();
  em::StoreStream<T> stream(store);
  for (const auto& pl : place_delivery(comm, piece_sizes, algo, seed)) {
    out.begin_piece(pl.dest);
    // Placements are usually consecutive content slices — only an actual
    // jump restarts the stream's read-ahead.
    if (stream.pos() != pl.offset) stream.seek(pl.offset);
    for (std::int64_t off = 0; off < pl.len;
         off += store.elems_per_block()) {
      const std::int64_t len = std::min(store.elems_per_block(), pl.len - off);
      std::span<T> chunk(buf.data(), static_cast<std::size_t>(len));
      stream.read(chunk);
      out.append(chunk);
    }
  }
  store.release_buffer(std::move(buf));
  return out;
}

/// Common entry: plan + ship with coll::sparse_exchange. Returns the
/// received runs as one FlatParts buffer — part i is a contiguous fragment
/// of some sender's piece (if the sender's data was sorted, each run is
/// sorted); take_flat() hands the concatenation over without a copy.
template <typename T>
coll::FlatParts<T> deliver(Comm& comm, std::span<const T> data,
                           const std::vector<std::int64_t>& piece_sizes,
                           Algo algo, std::uint64_t seed = 1) {
  return coll::sparse_exchange(comm,
                               plan_delivery(comm, data, piece_sizes, algo,
                                             seed))
      .parts;
}

/// Spill-mode entry: identical planning and message sequence to deliver(),
/// but each received piece is handed to `sink(src_rank, span)` in receive
/// order instead of being assembled into one FlatParts buffer. With
/// em::run_sink the pieces land directly in run blocks on disk; the
/// sorters' out-of-core paths (docs/EM.md) go through here.
template <typename T, typename Sink>
void deliver_into(Comm& comm, std::span<const T> data,
                  const std::vector<std::int64_t>& piece_sizes, Algo algo,
                  std::uint64_t seed, Sink&& sink) {
  coll::sparse_exchange_into(
      comm, plan_delivery(comm, data, piece_sizes, algo, seed),
      std::forward<Sink>(sink));
}

/// Spill-to-spill delivery: the outgoing partition lives in `source` (read
/// back block-wise for the plan), the received pieces land in `sink`.
/// Same messages, same virtual time as the in-memory deliver().
template <Sortable T, typename Sink>
void deliver_store_into(Comm& comm, em::RunStore<T>& source,
                        const std::vector<std::int64_t>& piece_sizes,
                        Algo algo, std::uint64_t seed, Sink&& sink) {
  coll::sparse_exchange_into(
      comm, plan_delivery_from_store(comm, source, piece_sizes, algo, seed),
      std::forward<Sink>(sink));
}

/// Delivery for sorters that consume the received runs *concatenated*
/// (AMS, GV): returns the concatenation, landing the pieces in run blocks
/// first whenever `source` exceeds the budget — in that case `source` is
/// released before the read-back, bounding the phase's peak. Both branches
/// exchange identical messages and return identical bytes.
template <typename T>
std::vector<T> deliver_flat(Comm& comm, std::vector<T>& source,
                            const std::vector<std::int64_t>& piece_sizes,
                            Algo algo, std::uint64_t seed,
                            const em::MemoryBudget& budget) {
  const std::span<const T> data(source.data(), source.size());
  if (budget.should_spill(static_cast<std::int64_t>(data.size_bytes()))) {
    em::RunStore<T> store(budget);
    deliver_into(comm, data, piece_sizes, algo, seed, em::run_sink(store));
    std::vector<T>().swap(source);
    return store.take_all();
  }
  return std::move(deliver(comm, data, piece_sizes, algo, seed)).take_flat();
}

}  // namespace pmps::delivery
