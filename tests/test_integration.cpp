// Cross-module integration tests: every algorithm × every workload on a
// shared grid, plus end-to-end invariants (output of a run equals a
// sequential sort of all inputs) and generic-type sorting (Record100).

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "ams/ams_sort.hpp"
#include "baseline/single_level.hpp"
#include "common/types.hpp"
#include "delivery/delivery.hpp"
#include "harness/runner.hpp"
#include "rlm/rlm_sort.hpp"

namespace pmps {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::Workload;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kAms,          Algorithm::kRlm,
    Algorithm::kSampleSort1L, Algorithm::kMergesort1L,
    Algorithm::kMpSortLike,   Algorithm::kGvSampleSort,
    Algorithm::kHypercubeQuicksort, Algorithm::kBlockBitonic};

class AllAlgosAllWorkloads
    : public ::testing::TestWithParam<std::tuple<Algorithm, Workload>> {};

TEST_P(AllAlgosAllWorkloads, SortsCorrectly) {
  const auto [algo, workload] = GetParam();
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 250;
  cfg.workload = workload;
  cfg.algorithm = algo;
  cfg.ams.levels = 2;
  cfg.rlm.levels = 2;
  cfg.seed = 2024;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted)
      << harness::algorithm_name(algo) << " / "
      << harness::workload_name(workload);
  EXPECT_TRUE(res.check.globally_ordered)
      << harness::algorithm_name(algo) << " / "
      << harness::workload_name(workload);
  EXPECT_TRUE(res.check.permutation_ok)
      << harness::algorithm_name(algo) << " / "
      << harness::workload_name(workload);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllAlgosAllWorkloads,
    ::testing::Combine(::testing::ValuesIn(kAllAlgorithms),
                       ::testing::ValuesIn(harness::kAllWorkloads)));

TEST(Integration, OutputExactlyEqualsSequentialSort) {
  // Beyond the hash check: reconstruct the full output and compare with a
  // sequential sort of the concatenated input.
  const int p = 8;
  const std::int64_t n_per_pe = 200;
  net::Engine engine(p, net::MachineParams::supermuc_like(), 11);
  std::mutex mu;
  std::vector<std::vector<std::uint64_t>> outputs(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> input;

  engine.run([&](net::Comm& comm) {
    auto data =
        harness::make_workload(Workload::kUniform, comm.rank(), p, n_per_pe, 11);
    {
      std::lock_guard lock(mu);
      input.insert(input.end(), data.begin(), data.end());
    }
    ams::AmsConfig cfg;
    cfg.group_counts = {4, 2};
    ams::ams_sort(comm, data, cfg);
    std::lock_guard lock(mu);
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });

  std::vector<std::uint64_t> result;
  for (const auto& o : outputs) result.insert(result.end(), o.begin(), o.end());
  std::sort(input.begin(), input.end());
  EXPECT_EQ(result, input);
}

TEST(Integration, SortsRecord100) {
  // Generic element type: 100-byte records with 10-byte keys.
  const int p = 8;
  net::Engine engine(p, net::MachineParams::supermuc_like(), 13);
  std::mutex mu;
  std::vector<std::vector<Record100>> outputs(static_cast<std::size_t>(p));

  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(13, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Record100> data(100);
    for (auto& rec : data) {
      for (auto& b : rec.key) b = static_cast<std::uint8_t>(rng.bounded(256));
      rec.payload.fill(static_cast<std::uint8_t>(comm.rank()));
    }
    ams::AmsConfig cfg;
    cfg.group_counts = {4, 2};
    ams::ams_sort(comm, data, cfg);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end(),
                               [](const Record100& a, const Record100& b) {
                                 return a < b;
                               }));
    std::lock_guard lock(mu);
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });

  // Global boundary order.
  const Record100* prev = nullptr;
  std::size_t total = 0;
  for (const auto& o : outputs) {
    if (o.empty()) continue;
    if (prev) {
      EXPECT_FALSE(o.front() < *prev);
    }
    prev = &o.back();
    total += o.size();
  }
  EXPECT_EQ(total, 800u);
}

TEST(Integration, SortsWithCustomComparator) {
  // Descending order via std::greater.
  const int p = 4;
  net::Engine engine(p, net::MachineParams::supermuc_like(), 17);
  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(17, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> data(200);
    for (auto& v : data) v = rng();
    rlm::RlmConfig cfg;
    cfg.group_counts = {4};
    rlm::rlm_sort(comm, data, cfg, std::greater<std::uint64_t>{});
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end(),
                               std::greater<std::uint64_t>{}));
  });
}

TEST(Integration, RepeatedRunsOnSameEngine) {
  // Engines are reusable; clocks reset between runs.
  net::Engine engine(8, net::MachineParams::supermuc_like(), 19);
  double t1 = 0, t2 = 0;
  for (int rep = 0; rep < 2; ++rep) {
    engine.run([&](net::Comm& comm) {
      auto data = harness::make_workload(Workload::kUniform, comm.rank(), 8,
                                         200, 19);
      ams::AmsConfig cfg;
      cfg.group_counts = {8};
      ams::ams_sort(comm, data, cfg);
    });
    (rep == 0 ? t1 : t2) = engine.report().wall_time;
  }
  EXPECT_EQ(t1, t2);  // deterministic and properly reset
}

TEST(Integration, ThreeLevelDeepRecursion) {
  RunConfig cfg;
  cfg.p = 64;
  cfg.n_per_pe = 100;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.group_counts = {4, 4, 4};
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
}

TEST(Integration, FourLevels) {
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 200;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.group_counts = {2, 2, 2, 2};
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
}

TEST(Integration, LargeScaleSmoke512Pes) {
  // 512 simulated PEs (one island's worth of nodes at 16 PEs/node would be
  // 8192; 512 spans 32 nodes): exercises thread scale and deep tag spaces.
  RunConfig cfg;
  cfg.p = 512;
  cfg.n_per_pe = 50;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = 2;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
}

TEST(Integration, CollectivesCarryFatElements) {
  // Record100 payloads through the collectives used by the algorithms.
  net::Engine engine(8, net::MachineParams::supermuc_like(), 23);
  engine.run([&](net::Comm& comm) {
    Record100 rec{};
    rec.key[0] = static_cast<std::uint8_t>(comm.rank());
    auto parts = coll::allgatherv(
        comm, std::span<const Record100>(&rec, 1));
    ASSERT_EQ(parts.parts(), 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(parts.part(i)[0].key[0], i);

    // Sorted gossip of records.
    std::vector<Record100> mine{rec};
    auto merged = coll::allgather_merge(
        comm, std::span<const Record100>(mine.data(), mine.size()),
        [](const Record100& a, const Record100& b) { return a < b; });
    ASSERT_EQ(merged.size(), 8u);
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                               [](const Record100& a, const Record100& b) {
                                 return a < b;
                               }));
  });
}

TEST(Integration, DeliveryCarriesFatElements) {
  net::Engine engine(8, net::MachineParams::supermuc_like(), 29);
  engine.run([&](net::Comm& comm) {
    std::vector<Record100> data(40);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i].key[0] = static_cast<std::uint8_t>(i < 20 ? 0 : 1);
      data[i].payload[0] = static_cast<std::uint8_t>(comm.rank());
    }
    std::vector<std::int64_t> sizes{20, 20};
    auto runs = delivery::deliver(
        comm, std::span<const Record100>(data.data(), data.size()), sizes,
        delivery::Algo::kDeterministic, 1);
    const int my_group = comm.rank() / 4;
    for (const auto& run : runs)
      for (const auto& rec : run)
        EXPECT_EQ(rec.key[0], static_cast<std::uint8_t>(my_group));
  });
}

TEST(Integration, MoreLevelsFewerStartupsPerExchange) {
  // Theorem 3's startup trade-off, observable in message counts: with k
  // levels each PE sends O(k·ᵏ√p) messages in the data delivery phase
  // instead of O(p).
  const int p = 64;
  auto messages = [&](std::vector<int> rs) {
    RunConfig cfg;
    cfg.p = p;
    cfg.n_per_pe = 400;
    cfg.algorithm = Algorithm::kAms;
    cfg.ams.group_counts = std::move(rs);
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok());
    return res.report.phase_messages(net::Phase::kDataDelivery);
  };
  const auto one = messages({64});
  const auto two = messages({8, 8});
  EXPECT_LT(two, one);
}

}  // namespace
}  // namespace pmps
