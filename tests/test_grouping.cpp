// Tests for bucket grouping (§6, Lemma 1, Appendix C): the scanning
// algorithm, optimality of the binary search variants, and the parallel
// search.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.hpp"
#include "grouping/bucket_grouping.hpp"
#include "net/engine.hpp"

namespace pmps::grouping {
namespace {

std::vector<std::int64_t> random_buckets(int n, std::uint64_t max_size,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = static_cast<std::int64_t>(rng.bounded(max_size + 1));
  return b;
}

/// Checks that a grouping result is a valid consecutive partition with the
/// claimed max load.
void check_valid(const std::vector<std::int64_t>& buckets, int r,
                 const GroupingResult& res) {
  ASSERT_EQ(static_cast<int>(res.group_first.size()), r);
  EXPECT_EQ(res.group_first[0], 0);
  std::int64_t max_load = 0;
  for (int g = 0; g < r; ++g) {
    const std::int64_t from = res.group_first[static_cast<std::size_t>(g)];
    const std::int64_t to =
        g + 1 < r ? res.group_first[static_cast<std::size_t>(g + 1)]
                  : static_cast<std::int64_t>(buckets.size());
    ASSERT_LE(from, to);
    std::int64_t load = 0;
    for (std::int64_t i = from; i < to; ++i)
      load += buckets[static_cast<std::size_t>(i)];
    max_load = std::max(max_load, load);
  }
  EXPECT_EQ(max_load, res.max_load);
}

struct Case {
  int buckets;
  int r;
  std::uint64_t max_size;
  std::uint64_t seed;
};

class GroupingOptimality : public ::testing::TestWithParam<Case> {};

TEST_P(GroupingOptimality, NaiveOptimalAndBruteForceAgree) {
  const auto c = GetParam();
  auto buckets = random_buckets(c.buckets, c.max_size, c.seed);
  // Ensure nonzero total.
  buckets[0] += 1;
  const auto naive = group_buckets_naive(buckets, c.r);
  const auto fast = group_buckets_optimal(buckets, c.r);
  const auto brute = group_buckets_bruteforce(buckets, c.r);
  EXPECT_EQ(naive.max_load, brute.max_load);
  EXPECT_EQ(fast.max_load, brute.max_load);
  check_valid(buckets, c.r, naive);
  check_valid(buckets, c.r, fast);
  check_valid(buckets, c.r, brute);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GroupingOptimality,
    ::testing::Values(Case{1, 1, 100, 1}, Case{5, 2, 100, 2},
                      Case{16, 4, 1000, 3}, Case{16, 4, 3, 4},
                      Case{32, 8, 50, 5}, Case{33, 7, 50, 6},
                      Case{64, 16, 1000, 7}, Case{64, 16, 1, 8},
                      Case{100, 10, 10000, 9}, Case{128, 16, 7, 10},
                      Case{12, 12, 100, 11}, Case{12, 20, 100, 12}));

TEST(Grouping, FewerBucketsThanGroups) {
  std::vector<std::int64_t> buckets{10, 20, 30};
  const auto res = group_buckets_optimal(buckets, 8);
  check_valid(buckets, 8, res);
  EXPECT_EQ(res.max_load, 30);  // each bucket its own group
}

TEST(Grouping, SingleGroupTakesAll) {
  std::vector<std::int64_t> buckets{5, 5, 5, 5};
  const auto res = group_buckets_optimal(buckets, 1);
  EXPECT_EQ(res.max_load, 20);
}

TEST(Grouping, AllZeroBuckets) {
  std::vector<std::int64_t> buckets(10, 0);
  const auto res = group_buckets_optimal(buckets, 4);
  EXPECT_EQ(res.max_load, 0);
  check_valid(buckets, 4, res);
}

TEST(Grouping, OneHugeBucket) {
  std::vector<std::int64_t> buckets{1, 1, 1000, 1, 1};
  const auto res = group_buckets_optimal(buckets, 3);
  EXPECT_EQ(res.max_load, 1000);  // unavoidable
  check_valid(buckets, 3, res);
}

TEST(Grouping, GroupOfMapsBucketsToGroups) {
  std::vector<std::int64_t> buckets{10, 10, 10, 10};
  const auto res = group_buckets_optimal(buckets, 2);
  EXPECT_EQ(res.group_of(0), 0);
  EXPECT_EQ(res.group_of(3), 1);
  for (std::int64_t b = 0; b + 1 < 4; ++b)
    EXPECT_LE(res.group_of(b), res.group_of(b + 1));
}

TEST(Grouping, AcceleratedNeedsFewerScansOnLargeInputs) {
  auto buckets = random_buckets(512, 1000, 42);
  buckets[0] += 1;
  const auto naive = group_buckets_naive(buckets, 32);
  const auto fast = group_buckets_optimal(buckets, 32);
  EXPECT_EQ(naive.max_load, fast.max_load);
  EXPECT_LE(fast.scans, naive.scans);
}

TEST(Grouping, ParallelMatchesSequential) {
  for (int p : {1, 2, 4, 8, 16}) {
    auto buckets = random_buckets(64, 500, 21);
    buckets[0] += 1;
    const auto expect = group_buckets_optimal(buckets, 8);
    net::Engine engine(p, net::MachineParams::supermuc_like(), 1);
    engine.run([&](net::Comm& comm) {
      const auto res = group_buckets_parallel(comm, buckets, 8);
      EXPECT_EQ(res.max_load, expect.max_load);
      ASSERT_EQ(res.group_first.size(), expect.group_first.size());
    });
  }
}

TEST(Grouping, ParallelUsesFewIterations) {
  // Appendix C: with p PEs probing per iteration, convergence is
  // log_{p+1}(candidates); at p = 64 over 256 buckets a handful of scans
  // per PE suffices.
  auto buckets = random_buckets(256, 1000, 33);
  buckets[0] += 1;
  net::Engine engine(64, net::MachineParams::supermuc_like(), 1);
  engine.run([&](net::Comm& comm) {
    const auto res = group_buckets_parallel(comm, buckets, 16);
    EXPECT_LE(res.scans, 12);
  });
}

class RelevantRanges : public ::testing::TestWithParam<Case> {};

TEST_P(RelevantRanges, MatchesGeneralOptimal) {
  const auto c = GetParam();
  auto buckets = random_buckets(c.buckets, c.max_size, c.seed);
  buckets[0] += 1;
  const auto expect = group_buckets_optimal(buckets, c.r);
  const auto fast = group_buckets_relevant_ranges(buckets, c.r);
  EXPECT_EQ(fast.max_load, expect.max_load);
  check_valid(buckets, c.r, fast);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RelevantRanges,
    ::testing::Values(Case{16, 4, 1000, 13}, Case{64, 8, 100, 14},
                      Case{128, 16, 7, 15}, Case{100, 10, 10000, 16},
                      Case{256, 16, 50, 17}, Case{33, 3, 1000, 18},
                      Case{5, 2, 100, 19}, Case{12, 12, 100, 20}));

TEST(RelevantRangesSearch, FallsBackWhenOptimumOutsideWindow) {
  // One huge bucket forces L far above (2/r)·total — window misses it and
  // the fallback must kick in and still be optimal.
  std::vector<std::int64_t> buckets{1, 1, 1000, 1, 1, 1, 1, 1};
  const auto res = group_buckets_relevant_ranges(buckets, 4);
  EXPECT_EQ(res.max_load, group_buckets_optimal(buckets, 4).max_load);
}

TEST(RelevantRangesSearch, BalancedBucketsUseWindow) {
  // Well-sampled buckets: the optimum sits near total/r, inside the window.
  Xoshiro256 rng(3);
  std::vector<std::int64_t> buckets(128);
  for (auto& b : buckets) b = 50 + static_cast<std::int64_t>(rng.bounded(20));
  const auto fast = group_buckets_relevant_ranges(buckets, 8);
  const auto naive = group_buckets_naive(buckets, 8);
  EXPECT_EQ(fast.max_load, naive.max_load);
  EXPECT_LT(fast.scans, naive.scans);
}

TEST(Grouping, ScanningBoundMatchesLemma2Shape) {
  // With b·r buckets of a random partition, the optimal L should be close
  // to n/r: generous sampling keeps imbalance small (Lemma 2 regime).
  const int r = 8, b = 16;
  Xoshiro256 rng(55);
  // br buckets from n = 1e6 elements split at random splitters.
  std::vector<std::int64_t> buckets(static_cast<std::size_t>(b * r), 0);
  const std::int64_t n = 1000000;
  for (int i = 0; i < 200000; ++i)
    buckets[static_cast<std::size_t>(rng.bounded(static_cast<std::uint64_t>(b * r)))] += n / 200000;
  std::int64_t total = 0;
  for (auto v : buckets) total += v;
  const auto res = group_buckets_optimal(buckets, r);
  const double imbalance =
      static_cast<double>(res.max_load) /
          (static_cast<double>(total) / static_cast<double>(r)) -
      1.0;
  EXPECT_LT(imbalance, 0.2);
}

}  // namespace
}  // namespace pmps::grouping
