// Tests for RLM-sort: correctness and its distinguishing property, perfect
// output balance (§5).

#include <gtest/gtest.h>

#include <vector>

#include "harness/runner.hpp"
#include "rlm/rlm_sort.hpp"

namespace pmps::rlm {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::Workload;

struct RlmCase {
  int p;
  int levels;
  std::int64_t n_per_pe;
  Workload workload;
};

class RlmSortCorrectness : public ::testing::TestWithParam<RlmCase> {};

TEST_P(RlmSortCorrectness, SortsPerfectlyBalanced) {
  const auto c = GetParam();
  RunConfig cfg;
  cfg.p = c.p;
  cfg.n_per_pe = c.n_per_pe;
  cfg.workload = c.workload;
  cfg.algorithm = Algorithm::kRlm;
  cfg.rlm.levels = c.levels;
  cfg.seed = 4242;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted);
  EXPECT_TRUE(res.check.globally_ordered);
  EXPECT_TRUE(res.check.permutation_ok);
  // Perfect balance: max local count differs from n/p by < 1 chunk unit.
  // With n divisible by p the imbalance must be ~0.
  EXPECT_NEAR(res.check.imbalance, 0.0, 1e-9)
      << "RLM-sort must balance perfectly";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RlmSortCorrectness,
    ::testing::Values(
        RlmCase{1, 1, 1000, Workload::kUniform},
        RlmCase{4, 1, 500, Workload::kUniform},
        RlmCase{16, 1, 500, Workload::kUniform},
        RlmCase{16, 2, 500, Workload::kUniform},
        RlmCase{16, 2, 500, Workload::kSortedGlobal},
        RlmCase{16, 2, 500, Workload::kReverseGlobal},
        RlmCase{16, 2, 500, Workload::kAllEqual},
        RlmCase{16, 2, 500, Workload::kFewDistinct},
        RlmCase{16, 2, 500, Workload::kLocalSorted},
        RlmCase{64, 2, 300, Workload::kUniform},
        RlmCase{64, 3, 300, Workload::kUniform},
        RlmCase{27, 3, 200, Workload::kUniform},
        RlmCase{36, 2, 200, Workload::kZipfLike},
        RlmCase{128, 2, 100, Workload::kUniform}));

class RlmDelivery : public ::testing::TestWithParam<delivery::Algo> {};

TEST_P(RlmDelivery, AllDeliveryAlgorithmsWork) {
  RunConfig cfg;
  cfg.p = 32;
  cfg.n_per_pe = 400;
  cfg.algorithm = Algorithm::kRlm;
  cfg.rlm.levels = 2;
  cfg.rlm.delivery = GetParam();
  cfg.seed = 8;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  EXPECT_NEAR(res.check.imbalance, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Algos, RlmDelivery,
                         ::testing::Values(delivery::Algo::kSimple,
                                           delivery::Algo::kRandomized,
                                           delivery::Algo::kDeterministic,
                                           delivery::Algo::kAdvancedRandomized));

TEST(RlmSort, UnevenInputStillPerfectlyBalancedOutput) {
  // PEs start with different input sizes; the output must still be an even
  // split of the total.
  net::Engine engine(8, net::MachineParams::supermuc_like(), 3);
  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(3, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> data(
        static_cast<std::size_t>(50 + 30 * comm.rank()));
    for (auto& v : data) v = rng();
    RlmConfig cfg;
    cfg.group_counts = {4, 2};
    rlm_sort(comm, data, cfg);
    const std::int64_t total = coll::allreduce_add_one(
        comm, static_cast<std::int64_t>(data.size()));
    const std::int64_t expect_lo = total / comm.size();
    EXPECT_GE(static_cast<std::int64_t>(data.size()), expect_lo);
    EXPECT_LE(static_cast<std::int64_t>(data.size()), expect_lo + 1);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  });
}

TEST(RlmSort, PhaseTimesAccumulate) {
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 1000;
  cfg.algorithm = Algorithm::kRlm;
  cfg.rlm.levels = 2;
  const auto res = harness::run_sort_experiment(cfg);
  using net::Phase;
  EXPECT_GT(res.phase(Phase::kSplitterSelection), 0.0);
  EXPECT_GT(res.phase(Phase::kBucketProcessing), 0.0);
  EXPECT_GT(res.phase(Phase::kDataDelivery), 0.0);
  EXPECT_GT(res.phase(Phase::kLocalSort), 0.0);
}

TEST(RlmSort, ExplicitGroupCounts) {
  RunConfig cfg;
  cfg.p = 24;
  cfg.n_per_pe = 300;
  cfg.algorithm = Algorithm::kRlm;
  cfg.rlm.group_counts = {2, 3, 4};
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
}

}  // namespace
}  // namespace pmps::rlm
