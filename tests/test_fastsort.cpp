// Tests for the fast work-inefficient sorting / rank selection (§4.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/random.hpp"
#include "fastsort/fast_rank_sort.hpp"
#include "net/engine.hpp"

namespace pmps::fastsort {
namespace {

using net::Comm;
using net::Engine;
using net::MachineParams;

/// Reference: gather all tagged elements, sort, take want_ranks.
void check_selection(int p, std::int64_t n_per_pe, std::uint64_t value_range,
                     std::uint64_t seed) {
  // Build the global reference input.
  std::vector<std::vector<std::uint64_t>> per_pe(static_cast<std::size_t>(p));
  std::vector<TaggedKey<std::uint64_t>> all;
  for (int pe = 0; pe < p; ++pe) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(pe));
    for (std::int64_t i = 0; i < n_per_pe; ++i) {
      per_pe[static_cast<std::size_t>(pe)].push_back(rng.bounded(value_range));
    }
  }
  // fast_rank_select tags elements with their position in the *locally
  // sorted* order, so sort per PE first to build the reference.
  for (auto& v : per_pe) std::sort(v.begin(), v.end());
  for (int pe = 0; pe < p; ++pe)
    for (std::int64_t i = 0; i < n_per_pe; ++i)
      all.push_back(TaggedKey<std::uint64_t>{
          per_pe[static_cast<std::size_t>(pe)][static_cast<std::size_t>(i)],
          pe, i});
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a < b; });

  std::vector<std::int64_t> want;
  const std::int64_t total = p * n_per_pe;
  for (int i = 1; i <= 5; ++i) want.push_back(i * total / 6);
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());

  Engine engine(p, MachineParams::supermuc_like(), seed);
  std::mutex mu;
  int checked = 0;
  engine.run([&](Comm& comm) {
    const auto& mine = per_pe[static_cast<std::size_t>(comm.rank())];
    auto sel = fast_rank_select(
        comm, std::span<const std::uint64_t>(mine.data(), mine.size()), want);
    ASSERT_EQ(sel.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      const auto& expect = all[static_cast<std::size_t>(want[j])];
      EXPECT_EQ(sel[j].key, expect.key) << "rank " << want[j];
      EXPECT_EQ(sel[j].pe, expect.pe);
      EXPECT_EQ(sel[j].index, expect.index);
    }
    std::lock_guard lock(mu);
    ++checked;
  });
  EXPECT_EQ(checked, p);
}

class FastSortP : public ::testing::TestWithParam<int> {};

TEST_P(FastSortP, SelectsExactRanks) {
  check_selection(GetParam(), 20, 1ull << 60, 1);
}

TEST_P(FastSortP, SelectsExactRanksWithDuplicates) {
  check_selection(GetParam(), 20, 7, 2);
}

TEST_P(FastSortP, SelectsExactRanksAllEqual) {
  check_selection(GetParam(), 10, 1, 3);
}

// Powers of two take the a×b grid path; others take the gather fallback.
INSTANTIATE_TEST_SUITE_P(GridAndFallback, FastSortP,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 16, 32, 64));

TEST(FastSort, UnevenLocalCounts) {
  const int p = 8;
  Engine engine(p, MachineParams::supermuc_like(), 4);
  engine.run([&](Comm& comm) {
    // PE i holds i elements: 0..i-1 plus offset.
    std::vector<std::uint64_t> mine;
    for (int i = 0; i < comm.rank(); ++i)
      mine.push_back(static_cast<std::uint64_t>(comm.rank() * 100 + i));
    const std::int64_t total = p * (p - 1) / 2;
    auto sel = fast_rank_select(
        comm, std::span<const std::uint64_t>(mine.data(), mine.size()),
        {0, total / 2, total - 1});
    // Global order is by key = rank*100+i, so rank 0 → key 100 (pe 1).
    EXPECT_EQ(sel[0].key, 100u);
    EXPECT_EQ(sel[2].key, 706u);  // largest: pe 7, i = 6
  });
}

TEST(FastSort, GridTimeScalesBetterThanGather) {
  // The grid algorithm's gossip moves O(n/√p) per PE vs O(n) for a full
  // gather; check the virtual-time advantage at p = 64.
  const int p = 64;
  const std::int64_t n_per_pe = 64;
  auto run_one = [&](bool force_fallback) {
    Engine engine(force_fallback ? p - 1 : p,
                  MachineParams::supermuc_like(), 5);
    engine.run([&](Comm& comm) {
      Xoshiro256 rng(5, static_cast<std::uint64_t>(comm.rank()));
      std::vector<std::uint64_t> mine(static_cast<std::size_t>(n_per_pe));
      for (auto& v : mine) v = rng();
      const std::int64_t total = comm.size() * n_per_pe;
      (void)fast_rank_select(
          comm, std::span<const std::uint64_t>(mine.data(), mine.size()),
          {total / 2});
    });
    return engine.report();
  };
  const auto grid = run_one(false);
  const auto fallback = run_one(true);
  // Grid moves strictly less data in total.
  EXPECT_LT(grid.total_bytes_sent, fallback.total_bytes_sent);
}

}  // namespace
}  // namespace pmps::fastsort
