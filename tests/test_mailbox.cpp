// Tests for the hash-matched mailbox: out-of-order and bulk deposits,
// same-key FIFO order, targeted (non-broadcast) wakeup, and the fiber-side
// register/park protocol.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"
#include "net/mailbox.hpp"

namespace pmps::net {
namespace {

Message make_msg(std::uint64_t comm_id, std::uint64_t tag, int src,
                 std::uint64_t value = 0) {
  Message m;
  m.comm_id = comm_id;
  m.tag = tag;
  m.src_pe = src;
  m.payload.resize(sizeof(value));
  std::memcpy(m.payload.data(), &value, sizeof(value));
  return m;
}

std::uint64_t value_of(const Message& m) {
  std::uint64_t v = 0;
  EXPECT_EQ(m.payload.size(), sizeof(v));
  std::memcpy(&v, m.payload.data(), sizeof(v));
  return v;
}

TEST(Mailbox, RetrievesOutOfDepositOrder) {
  Mailbox mb;
  // Deposit in an order unrelated to the retrieval order.
  mb.deposit(make_msg(1, 30, 2, 300));
  mb.deposit(make_msg(1, 10, 0, 100));
  mb.deposit(make_msg(2, 10, 0, 999));  // same tag/src, different comm
  mb.deposit(make_msg(1, 20, 1, 200));

  EXPECT_EQ(value_of(mb.retrieve(MsgKey{1, 10, 0})), 100u);
  EXPECT_EQ(value_of(mb.retrieve(MsgKey{2, 10, 0})), 999u);
  EXPECT_EQ(value_of(mb.retrieve(MsgKey{1, 30, 2})), 300u);
  EXPECT_EQ(value_of(mb.retrieve(MsgKey{1, 20, 1})), 200u);
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, BulkDepositsThenRetrieveAll) {
  // A bulk backlog (every PE deposits before the owner drains anything —
  // the situation the old linear scan degraded on) must match exactly.
  Mailbox mb;
  const int kSenders = 64, kTags = 8;
  for (int src = kSenders - 1; src >= 0; --src)
    for (int t = kTags - 1; t >= 0; --t)
      mb.deposit(make_msg(7, static_cast<std::uint64_t>(t), src,
                          static_cast<std::uint64_t>(src * 1000 + t)));
  EXPECT_FALSE(mb.empty());
  for (int src = 0; src < kSenders; ++src)
    for (int t = 0; t < kTags; ++t)
      EXPECT_EQ(value_of(mb.retrieve(MsgKey{7, static_cast<std::uint64_t>(t),
                                            src})),
                static_cast<std::uint64_t>(src * 1000 + t));
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, SameKeyMessagesKeepFifoOrder) {
  Mailbox mb;
  for (std::uint64_t v = 0; v < 5; ++v) mb.deposit(make_msg(1, 4, 2, v));
  for (std::uint64_t v = 0; v < 5; ++v)
    EXPECT_EQ(value_of(mb.retrieve(MsgKey{1, 4, 2})), v);
}

TEST(Mailbox, BlockedRetrieveWokenByMatchingDepositOnly) {
  Mailbox mb;
  std::uint64_t got = 0;
  std::thread consumer([&] { got = value_of(mb.retrieve(MsgKey{1, 2, 3})); });
  // Non-matching deposits must not satisfy the retrieve.
  mb.deposit(make_msg(1, 2, 4, 111));
  mb.deposit(make_msg(1, 9, 3, 222));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mb.deposit(make_msg(1, 2, 3, 333));
  consumer.join();
  EXPECT_EQ(got, 333u);
  EXPECT_FALSE(mb.empty());  // the two non-matching messages remain
}

TEST(Mailbox, RetrieveOrBlockProtocol) {
  Mailbox mb;
  // Miss: registers the key and reports the block via the callback.
  bool on_block_called = false;
  auto miss = mb.retrieve_or_block(MsgKey{1, 2, 3},
                                   [&] { on_block_called = true; });
  EXPECT_FALSE(miss.has_value());
  EXPECT_TRUE(on_block_called);

  // The matching deposit consumes the registration exactly once.
  int wakes = 0;
  mb.deposit(make_msg(1, 2, 3, 42), [&] { ++wakes; });
  EXPECT_EQ(wakes, 1);
  mb.deposit(make_msg(1, 2, 3, 43), [&] { ++wakes; });
  EXPECT_EQ(wakes, 1);  // no waiter registered any more

  // Hit: returns the message without touching the callback.
  auto hit = mb.retrieve_or_block(MsgKey{1, 2, 3}, [&] { FAIL(); });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(value_of(*hit), 42u);
}

TEST(Mailbox, NonMatchingDepositDoesNotWakeRegisteredWaiter) {
  Mailbox mb;
  (void)mb.retrieve_or_block(MsgKey{1, 2, 3}, [] {});
  int wakes = 0;
  mb.deposit(make_msg(9, 9, 9, 1), [&] { ++wakes; });  // different key
  EXPECT_EQ(wakes, 0);
  mb.deposit(make_msg(1, 2, 3, 2), [&] { ++wakes; });  // the registered key
  EXPECT_EQ(wakes, 1);
}

// ---------------------------------------------------------------------------
// Slab-store regressions: table growth, backward-shift deletion, node reuse
// ---------------------------------------------------------------------------

TEST(Mailbox, ManyConcurrentKeysGrowTableAndDrainExactly) {
  // Far more simultaneously queued keys than the initial table: the
  // open-addressing store must grow with messages pending and still match
  // every key exactly afterwards.
  Mailbox mb;
  const int kKeys = 1000;
  for (int k = 0; k < kKeys; ++k)
    mb.deposit(make_msg(3, static_cast<std::uint64_t>(k * 7), k % 97,
                        static_cast<std::uint64_t>(k)));
  EXPECT_FALSE(mb.empty());
  // Retrieve in an order unrelated to deposit order (stride walk), so the
  // backward-shift deletion runs against a well-populated table.
  for (int i = 0; i < kKeys; ++i) {
    const int k = static_cast<int>(
        (static_cast<std::uint64_t>(i) * 389) % kKeys);
    EXPECT_EQ(value_of(mb.retrieve(
                  MsgKey{3, static_cast<std::uint64_t>(k * 7), k % 97})),
              static_cast<std::uint64_t>(k));
  }
  EXPECT_TRUE(mb.empty());  // drained: no leaked nodes or ghost slots
}

TEST(Mailbox, InterleavedChurnKeepsPerKeyFifoAcrossNodeReuse) {
  // Deposit/retrieve interleaving recycles nodes through the pool while
  // other keys stay queued; FIFO order per key must survive the churn and
  // repeated slot erase/reinsert of the same keys.
  Mailbox mb;
  std::uint64_t next_put[4] = {0, 0, 0, 0};
  std::uint64_t next_get[4] = {0, 0, 0, 0};
  const auto put = [&](int key) {
    mb.deposit(make_msg(5, static_cast<std::uint64_t>(key), key,
                        next_put[key]++));
  };
  const auto get = [&](int key) {
    EXPECT_EQ(value_of(mb.retrieve(MsgKey{5, static_cast<std::uint64_t>(key),
                                          key})),
              next_get[key]++);
  };
  for (int round = 0; round < 200; ++round) {
    put(round % 4);
    put((round + 1) % 4);
    get(round % 4);          // often empties the key's slot …
    put(round % 4);          // … which is then immediately re-inserted
    get((round + 1) % 4);
    get(round % 4);
  }
  EXPECT_TRUE(mb.empty());
  // The store stays fully usable after total drain.
  put(2);
  get(2);
  EXPECT_TRUE(mb.empty());
}

TEST(MsgNodePoolTest, HighWaterTracksPeakInUse) {
  MsgNodePool pool;
  std::vector<MsgNode*> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.high_water(), 5);
  pool.release(held.back());
  held.pop_back();
  pool.release(held.back());
  held.pop_back();
  held.push_back(pool.acquire());  // back to 4 in use — peak unchanged
  EXPECT_EQ(pool.high_water(), 5);
  held.push_back(pool.acquire());
  held.push_back(pool.acquire());  // 6 in use — new peak
  EXPECT_EQ(pool.high_water(), 6);
  for (MsgNode* n : held) pool.release(n);
  EXPECT_EQ(pool.high_water(), 6);  // high-water survives full drain
}

TEST(BufferPoolTest, ByteCapDropsBuffersBeyondRetainedLimit) {
  // The pool retains at most 256 MiB of payload capacity: a burst of huge
  // one-off buffers (splitter tables at large p) must not stay pinned.
  BufferPool pool;
  constexpr std::size_t kBig = 64u << 20;
  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> buf;
    buf.reserve(kBig);
    pool.release(std::move(buf));  // 5th release exceeds the cap — dropped
  }
  int retained = 0;
  for (int i = 0; i < 5; ++i) {
    if (pool.acquire(kBig).capacity() >= kBig) ++retained;
  }
  EXPECT_EQ(retained, 4);
}

TEST(MailboxSharding, CrossShardTrafficDeliversExactlyUnderMultipleWorkers) {
  // With PMPS_FIBER_WORKERS=3 the engine keys mailbox pool shards by
  // destination PE; every send below crosses shard boundaries (all-to-all),
  // and the shard high-water counters must see the traffic.
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  setenv("PMPS_FIBER_WORKERS", "3", 1);
  {
    Engine engine(12, MachineParams::supermuc_like(), /*seed=*/2,
                  EngineBackend::kFibers);
    engine.run([](Comm& comm) {
      const std::uint64_t tag = comm.next_tag_block();
      const int p = comm.size();
      for (int d = 0; d < p; ++d)
        comm.send_one<std::int64_t>(d, tag, comm.rank() * 100 + d);
      std::int64_t sum = 0;
      for (int s = 0; s < p; ++s)
        sum += comm.recv_one<std::int64_t>(s, tag);
      // Σ_s (s·100 + me) over all senders s.
      EXPECT_EQ(sum, 100 * (p * (p - 1) / 2) + p * comm.rank());
    });
    const EngineStats es = engine.report().engine;
    EXPECT_EQ(es.mailbox_shards, 3);
    EXPECT_GT(es.mailbox_node_high_water, 0);
    EXPECT_GE(es.mailbox_nodes_total_high_water, es.mailbox_node_high_water);
  }
  unsetenv("PMPS_FIBER_WORKERS");
}

TEST(Mailbox, TeardownWithQueuedMessagesReleasesNodes) {
  // A mailbox destroyed with undrained messages (failed run teardown) must
  // hand its nodes back without touching freed payloads — this test is a
  // crash/asan regression more than an assertion.
  auto mb = std::make_unique<Mailbox>();
  for (int i = 0; i < 300; ++i)
    mb->deposit(make_msg(1, static_cast<std::uint64_t>(i), 0,
                         static_cast<std::uint64_t>(i)));
  EXPECT_FALSE(mb->empty());
  mb.reset();  // must not leak or double-free
}

}  // namespace
}  // namespace pmps::net
