// Allocation-counting harness for the zero-allocation message path
// (docs/DESIGN.md §9).
//
// This binary replaces the global operator new/delete with counting
// versions. Two kinds of assertion:
//
//  * Unit level: the exact components of the send→deposit→retrieve path
//    (BufferPool, MsgNodePool, the slab Mailbox, SendPlan) perform zero
//    heap allocations once warm, measured single-threaded with no
//    scheduler in the way.
//
//  * Engine level: a full engine run's allocation count is *independent of
//    the number of message rounds* — run R rounds and 16·R rounds after a
//    warm-up run and the counts must be equal, i.e. the per-round
//    steady-state message path (p2p ping-pong, and a reused-SendPlan
//    sparse exchange including its Bruck counts rounds and termination
//    barrier) allocates exactly nothing. Per-run fixed costs (Comm
//    construction, std::function, scheduler bookkeeping) cancel out of the
//    comparison. Run with the fiber backend pinned to one worker so the
//    cooperative schedule — and with it the count — is deterministic.
//
// No gtest machinery (which allocates freely) runs inside a measured
// window.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/send_plan.hpp"
#include "common/types.hpp"
#include "em/run_cursor.hpp"
#include "em/run_store.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"
#include "net/mailbox.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::int64_t> g_allocs{0};

}  // namespace

// The replaced operator new allocates with malloc, so free() in the
// replaced deletes is the matching deallocator; GCC's pairing heuristic
// cannot see that and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace pmps {
namespace {

using net::Comm;
using net::Engine;
using net::EngineBackend;
using net::MachineParams;
using net::Message;
using net::MsgKey;

/// Runs `body` with counting enabled and returns the number of operator
/// new calls it performed.
template <typename Body>
std::int64_t count_allocs(Body&& body) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Unit level: the path's components, single-threaded
// ---------------------------------------------------------------------------

TEST(AllocCount, SendDepositRetrievePathIsAllocationFreeWhenWarm) {
  net::Mailbox mb;
  net::BufferPool pool;
  constexpr std::size_t kBytes = 192;

  // Exactly what Comm::send_bytes / recv_bytes do around the mailbox.
  const auto send = [&](std::uint64_t tag, int src) {
    Message m;
    m.comm_id = 1;
    m.tag = tag;
    m.src_pe = src;
    m.payload = pool.acquire(kBytes);
    m.payload.assign(kBytes, std::byte{0x5a});
    mb.deposit(std::move(m));
  };
  const auto recv = [&](std::uint64_t tag, int src) {
    Message m = mb.retrieve(MsgKey{1, tag, src});
    pool.release(std::move(m.payload));
  };

  // A small backlog (3 keys live at once) exercises slot insert +
  // backward-shift deletion, not just the single-slot fast path.
  const auto churn = [&](int iterations) {
    for (int i = 0; i < iterations; ++i) {
      send(0, 0);
      send(1, 1);
      send(2, 0);
      recv(1, 1);
      recv(0, 0);
      recv(2, 0);
    }
  };

  churn(16);  // warm-up: node pool, key table, payload pool at peak depth
  const std::int64_t allocs = count_allocs([&] { churn(256); });
  EXPECT_EQ(allocs, 0);
  EXPECT_TRUE(mb.empty());
}

TEST(AllocCount, BufferPoolSizeHintAvoidsRegrow) {
  net::BufferPool pool;
  pool.release(std::vector<std::byte>(4096));
  pool.release(std::vector<std::byte>(16));

  // The hint must return the big recycled buffer even though the small one
  // was released more recently; assigning the payload then reuses its
  // capacity instead of regrowing.
  const std::int64_t allocs = count_allocs([&] {
    std::vector<std::byte> buf = pool.acquire(4096);
    buf.assign(4096, std::byte{1});
    pool.release(std::move(buf));
  });
  EXPECT_EQ(allocs, 0);

  // And the small buffer is still pooled for small requests.
  std::vector<std::byte> small = pool.acquire(8);
  EXPECT_GE(small.capacity(), 8u);
  EXPECT_LT(small.capacity(), 4096u);
}

TEST(AllocCount, SendPlanReuseIsAllocationFree) {
  coll::SendPlan<std::int64_t> plan;
  const std::int64_t payload[16] = {};
  const auto fill = [&] {
    plan.clear();
    for (int piece = 0; piece < 32; ++piece)
      plan.add(piece % 7, std::span<const std::int64_t>(payload, 16));
  };
  fill();  // warm: buffers grow to their final capacity once
  const std::int64_t allocs = count_allocs([&] {
    for (int round = 0; round < 64; ++round) fill();
  });
  EXPECT_EQ(allocs, 0);
  EXPECT_EQ(plan.pieces(), 32);
  EXPECT_EQ(plan.total(), 32 * 16);
}

TEST(AllocCount, RunStoreRecord100ReadPathIsAllocationFreeWhenWarm) {
  // The spill read path for 100-byte records: pooled block buffers must be
  // sized for Record100 up front so the warm loop — acquire, read_block,
  // read_range, release — never regrows a buffer. A pool that recycled
  // byte-capacity-mismatched buffers would reallocate on every resize(epb).
  em::MemoryBudget budget;
  budget.bytes = 1;
  budget.block_bytes = 8 * static_cast<std::int64_t>(sizeof(pmps::Record100));
  em::RunStore<pmps::Record100> store(budget);
  const auto epb = static_cast<std::size_t>(store.elems_per_block());
  ASSERT_EQ(epb, 8u);

  std::vector<pmps::Record100> run(45);
  for (std::size_t i = 0; i < run.size(); ++i) {
    for (auto& b : run[i].key) b = static_cast<std::uint8_t>(i * 7 + 1);
    run[i].payload.fill(static_cast<std::uint8_t>(i));
  }
  store.append_run({run.data(), run.size()});
  store.append_run({run.data(), run.size() / 2});

  std::vector<pmps::Record100> range_buf(19);
  const auto read_everything = [&] {
    for (int rep = 0; rep < 4; ++rep) {
      auto buf = store.acquire_buffer();
      for (int r = 0; r < store.runs(); ++r) {
        const auto n = store.run_size(r);
        for (std::int64_t b = 0; b * static_cast<std::int64_t>(epb) < n; ++b) {
          const auto len = std::min<std::int64_t>(
              static_cast<std::int64_t>(epb),
              n - b * static_cast<std::int64_t>(epb));
          store.read_block(r, b, {buf.data(), static_cast<std::size_t>(len)});
        }
      }
      store.release_buffer(std::move(buf));
      store.read_range(5, {range_buf.data(), range_buf.size()});
    }
  };

  read_everything();  // warm: pool populated, prefix sums built
  const std::int64_t allocs = count_allocs(read_everything);
  EXPECT_EQ(allocs, 0);
}

TEST(AllocCount, RunCursorRecord100WindowsAllocationFreeWhenWarm) {
  em::MemoryBudget budget;
  budget.bytes = 1;
  budget.block_bytes = 4 * static_cast<std::int64_t>(sizeof(pmps::Record100));
  em::RunStore<pmps::Record100> store(budget);
  std::vector<pmps::Record100> run(30);
  for (std::size_t i = 0; i < run.size(); ++i)
    for (auto& b : run[i].key) b = static_cast<std::uint8_t>(i);
  store.append_run({run.data(), run.size()});

  const auto walk = [&] {
    em::RunCursor<pmps::Record100> cur(&store, 0);
    std::size_t seen = 0;
    for (auto w = cur.next_window(); !w.empty(); w = cur.next_window())
      seen += w.size();
    if (seen != run.size()) std::abort();
  };
  walk();  // warm: the cursor's pooled block buffer reaches full size
  const std::int64_t allocs = count_allocs(walk);
  EXPECT_EQ(allocs, 0);
}

TEST(AllocCount, AsyncSpillWarmPathAllocationFree) {
  // The write-behind spill path with background I/O: once the dirty-node
  // pool, the executor's completion records and the block-buffer pool are
  // warm, appending + draining + reading back allocates exactly nothing —
  // on the submitting thread AND the I/O threads (the counter is global).
  em::IoExecutor io(2);
  em::MemoryBudget budget;
  budget.bytes = 1;
  budget.block_bytes = 8 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.io = &io;
  em::RunStore<std::uint64_t> store(budget);
  const int run = store.begin_run();
  std::uint64_t block[8];
  std::uint64_t next = 0;
  const auto append_blocks = [&](int count) {
    for (int i = 0; i < count; ++i) {
      for (auto& v : block) v = next++;
      store.append_block_to_run(
          run, std::span<const std::uint64_t>(block, 8));
    }
    store.drain();
  };
  std::uint64_t sink = 0;
  const auto read_blocks = [&] {
    auto buf = store.acquire_buffer();
    for (std::int64_t b = 0; b < 4; ++b) {
      store.read_block(run, b, {buf.data(), 8});
      sink ^= buf[0];
    }
    store.release_buffer(std::move(buf));
  };
  // Warm-up: 96 blocks leaves the run's slot vector at capacity 128, so
  // the measured 12 appends cannot regrow it; every pool reaches its
  // steady-state depth.
  append_blocks(96);
  read_blocks();
  const std::int64_t allocs = count_allocs([&] {
    append_blocks(12);
    read_blocks();
  });
  EXPECT_EQ(allocs, 0);
  if (sink == 0xdeadbeef) std::abort();  // keep the reads observable
}

TEST(AllocCount, AsyncCursorPrefetchAllocationFreeWhenWarm) {
  em::IoExecutor io(1);
  em::MemoryBudget budget;
  budget.bytes = 1;
  budget.block_bytes = 8 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.io = &io;
  em::RunStore<std::uint64_t> store(budget);
  std::vector<std::uint64_t> run(60);
  for (std::size_t i = 0; i < run.size(); ++i)
    run[i] = static_cast<std::uint64_t>(i);
  store.append_run({run.data(), run.size()});
  const auto walk = [&] {
    em::RunCursor<std::uint64_t> cur(&store, 0);
    std::size_t seen = 0;
    for (auto w = cur.next_window(); !w.empty(); w = cur.next_window())
      seen += w.size();
    if (seen != run.size()) std::abort();
  };
  walk();  // warm: both double-buffer blocks and the op records are pooled
  const std::int64_t allocs = count_allocs(walk);
  EXPECT_EQ(allocs, 0);
}

// ---------------------------------------------------------------------------
// Engine level: allocation count independent of the round count
// ---------------------------------------------------------------------------

namespace {

/// R rounds of ring ping-pong through the full Comm→Engine→Mailbox path,
/// received with recv_into (the path's non-allocating receive).
void ring_rounds(Comm& comm, int rounds) {
  const int p = comm.size();
  std::int64_t out[8] = {comm.rank(), 1, 2, 3, 4, 5, 6, 7};
  std::int64_t in[8];
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t tag = comm.next_tag_block();
    comm.send<std::int64_t>((comm.rank() + 1) % p, tag,
                            std::span<const std::int64_t>(out, 8));
    comm.recv_into<std::int64_t>((comm.rank() - 1 + p) % p, tag,
                                 std::span<std::int64_t>(in, 8));
  }
}

/// R rounds of a reused-plan sparse exchange with a non-allocating sink —
/// includes the uncharged Bruck counts exchange and the termination
/// barrier, i.e. the whole sparse path.
void sparse_rounds(Comm& comm, int rounds) {
  const int p = comm.size();
  coll::SendPlan<std::int64_t> plan;
  const std::int64_t payload[4] = {comm.rank(), 1, 2, 3};
  std::int64_t acc = 0;
  for (int r = 0; r < rounds; ++r) {
    plan.clear();
    for (int j = 1; j <= 3 && j < p; ++j)
      plan.add((comm.rank() + j) % p,
               std::span<const std::int64_t>(payload, 4));
    coll::sparse_exchange_into<std::int64_t>(
        comm, plan, [&](int, std::span<const std::int64_t> piece) {
          for (auto v : piece) acc += v;
        });
  }
  if (acc == -1) std::abort();  // keep the accumulation observable
}

std::int64_t engine_run_allocs(Engine& engine, void (*body)(Comm&, int),
                               int rounds) {
  return count_allocs(
      [&] { engine.run([&](Comm& comm) { body(comm, rounds); }); });
}

}  // namespace

TEST(AllocCount, EngineP2PSteadyStateAllocatesNothingPerRound) {
  if (!net::fibers_supported()) GTEST_SKIP() << "no fiber backend here";
  // One worker ⇒ deterministic cooperative schedule ⇒ exact counts.
  setenv("PMPS_FIBER_WORKERS", "1", 1);
  {
    Engine engine(8, MachineParams::supermuc_like(), 1,
                  EngineBackend::kFibers);
    engine.run([](Comm& comm) { ring_rounds(comm, 64); });  // warm-up
    const std::int64_t few = engine_run_allocs(engine, ring_rounds, 4);
    const std::int64_t many = engine_run_allocs(engine, ring_rounds, 64);
    // Equal totals ⇒ the 60 extra rounds allocated exactly nothing.
    EXPECT_EQ(few, many);
  }
  unsetenv("PMPS_FIBER_WORKERS");
}

TEST(AllocCount, SparseExchangeSteadyStateAllocatesNothingPerRound) {
  if (!net::fibers_supported()) GTEST_SKIP() << "no fiber backend here";
  setenv("PMPS_FIBER_WORKERS", "1", 1);
  {
    Engine engine(8, MachineParams::supermuc_like(), 1,
                  EngineBackend::kFibers);
    engine.run([](Comm& comm) { sparse_rounds(comm, 32); });  // warm-up
    const std::int64_t few = engine_run_allocs(engine, sparse_rounds, 2);
    const std::int64_t many = engine_run_allocs(engine, sparse_rounds, 32);
    EXPECT_EQ(few, many);
  }
  unsetenv("PMPS_FIBER_WORKERS");
}

}  // namespace
}  // namespace pmps
