// Unit tests for common utilities: math helpers, RNG, types.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/math.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace pmps {
namespace {

TEST(Math, DivCeil) {
  EXPECT_EQ(div_ceil(0, 4), 0);
  EXPECT_EQ(div_ceil(1, 4), 1);
  EXPECT_EQ(div_ceil(4, 4), 1);
  EXPECT_EQ(div_ceil(5, 4), 2);
  EXPECT_EQ(div_ceil(8, 4), 2);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Math, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
}

TEST(Math, KthRoot) {
  EXPECT_EQ(kth_root(27, 3), 3);
  EXPECT_EQ(kth_root(26, 3), 2);
  EXPECT_EQ(kth_root(1024, 2), 32);
  EXPECT_EQ(kth_root(1, 5), 1);
  EXPECT_EQ(kth_root(7, 1), 7);
}

TEST(Math, ChunkBegin) {
  // 10 elements in 4 chunks: 3,3,2,2.
  EXPECT_EQ(chunk_begin(10, 4, 0), 0);
  EXPECT_EQ(chunk_begin(10, 4, 1), 3);
  EXPECT_EQ(chunk_begin(10, 4, 2), 6);
  EXPECT_EQ(chunk_begin(10, 4, 3), 8);
  EXPECT_EQ(chunk_begin(10, 4, 4), 10);
}

TEST(Math, ChunkBeginCoversAll) {
  for (std::int64_t n : {0, 1, 5, 17, 100}) {
    for (std::int64_t parts : {1, 2, 3, 7, 16}) {
      std::int64_t covered = 0;
      std::int64_t max_sz = 0, min_sz = n + 1;
      for (std::int64_t i = 0; i < parts; ++i) {
        const auto sz = chunk_begin(n, parts, i + 1) - chunk_begin(n, parts, i);
        EXPECT_GE(sz, 0);
        covered += sz;
        max_sz = std::max(max_sz, sz);
        min_sz = std::min(min_sz, sz);
      }
      EXPECT_EQ(covered, n);
      EXPECT_LE(max_sz - min_sz, 1) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(Random, DeterministicStreams) {
  Xoshiro256 a(42, 1), b(42, 1), c(42, 2);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(42, 1);
  EXPECT_NE(a2(), c());  // different streams diverge (overwhelmingly likely)
}

TEST(Random, BoundedInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Random, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> hits(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits[rng.bounded(10)]++;
  for (int h : hits) {
    EXPECT_GT(h, n / 10 - n / 50);
    EXPECT_LT(h, n / 10 + n / 50);
  }
}

TEST(Random, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Types, TaggedKeyOrdering) {
  TaggedKey<int> a{5, 0, 0}, b{5, 0, 1}, c{5, 1, 0}, d{6, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(Types, Record100Ordering) {
  Record100 a{}, b{};
  a.key[0] = 1;
  b.key[0] = 2;
  EXPECT_LT(a, b);
  b.key[0] = 1;
  EXPECT_TRUE(a == b);
  b.key[9] = 1;
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace pmps
