// Tests for the single-level baselines (§7.3): correctness, and the startup
// scaling contrast with the multi-level algorithms.

#include <gtest/gtest.h>

#include <vector>

#include "baseline/block_bitonic.hpp"
#include "baseline/gv_sample_sort.hpp"
#include "baseline/hypercube_quicksort.hpp"
#include "baseline/single_level.hpp"
#include "harness/runner.hpp"

namespace pmps::baseline {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::Workload;

constexpr Algorithm kBaselines[] = {Algorithm::kSampleSort1L,
                                    Algorithm::kMergesort1L,
                                    Algorithm::kMpSortLike};

class BaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<Algorithm, int, Workload>> {};

TEST_P(BaselineCorrectness, Sorts) {
  const auto [algo, p, workload] = GetParam();
  RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = 400;
  cfg.workload = workload;
  cfg.algorithm = algo;
  cfg.seed = 77;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted) << harness::algorithm_name(algo);
  EXPECT_TRUE(res.check.globally_ordered) << harness::algorithm_name(algo);
  EXPECT_TRUE(res.check.permutation_ok) << harness::algorithm_name(algo);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaselineCorrectness,
    ::testing::Combine(::testing::ValuesIn(kBaselines),
                       ::testing::Values(1, 2, 4, 7, 16, 32),
                       ::testing::Values(Workload::kUniform,
                                         Workload::kAllEqual,
                                         Workload::kSortedGlobal,
                                         Workload::kFewDistinct)));

TEST(Baselines, MergesortPerfectBalance) {
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 300;
  cfg.algorithm = Algorithm::kMergesort1L;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  EXPECT_NEAR(res.check.imbalance, 0.0, 1e-9);
}

TEST(Baselines, ExchangeSchedulesAgree) {
  for (auto sched : {coll::Schedule::kDirect, coll::Schedule::kOneFactor}) {
    RunConfig cfg;
    cfg.p = 12;
    cfg.n_per_pe = 200;
    cfg.algorithm = Algorithm::kSampleSort1L;
    cfg.single.exchange = sched;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok());
  }
}

TEST(Baselines, SingleLevelPaysThetaPStartups) {
  // The motivating contrast (§1): the 1-level algorithms send Θ(p) messages
  // per PE in the exchange, the 2-level AMS-sort only O(√p + node size).
  const int p = 64;
  auto max_sent = [&](Algorithm algo, int levels) {
    RunConfig cfg;
    cfg.p = p;
    cfg.n_per_pe = 200;
    cfg.algorithm = algo;
    cfg.ams.levels = levels;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok());
    return res.report.max_messages_sent;
  };
  const auto single = max_sent(Algorithm::kMergesort1L, 1);
  const auto multi = max_sent(Algorithm::kAms, 2);
  EXPECT_GE(single, p - 1);
  EXPECT_LT(multi, single);
}

class GvBaseline : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GvBaseline, SortsCorrectly) {
  const auto [p, levels] = GetParam();
  net::Engine engine(p, net::MachineParams::supermuc_like(), 21);
  engine.run([&](net::Comm& comm) {
    auto data = harness::make_workload(Workload::kUniform, comm.rank(), p,
                                       300, 21);
    const auto h = harness::content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));
    GvConfig cfg;
    cfg.levels = levels;
    gv_sample_sort(comm, data, cfg);
    const auto check = harness::verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), h,
        300);
    EXPECT_TRUE(check.ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Grid, GvBaseline,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{4, 1},
                                           std::tuple{16, 1}, std::tuple{16, 2},
                                           std::tuple{32, 2},
                                           std::tuple{64, 3}));

TEST(GvBaseline, CentralisedSplitterPhaseSlowerAtScale) {
  // The ablation claim (§6): centralized sample sorting becomes the
  // bottleneck as p grows, the parallel fast sorter does not.
  auto splitter_time = [](bool gv, int p) {
    net::Engine engine(p, net::MachineParams::supermuc_like(), 23);
    engine.run([&](net::Comm& comm) {
      auto data = harness::make_workload(Workload::kUniform, comm.rank(), p,
                                         500, 23);
      if (gv) {
        GvConfig cfg;
        cfg.levels = 2;
        cfg.oversampling_a = 256;  // equal total sample for both algorithms
        gv_sample_sort(comm, data, cfg);
      } else {
        ams::AmsConfig cfg;
        cfg.levels = 2;
        cfg.oversampling_a = 16;
        cfg.overpartition_b = 16;
        ams::ams_sort(comm, data, cfg);
      }
    });
    return engine.report().phase(net::Phase::kSplitterSelection);
  };
  EXPECT_GT(splitter_time(true, 64), splitter_time(false, 64));
}

class HypercubeQuicksortP
    : public ::testing::TestWithParam<std::tuple<int, Workload>> {};

TEST_P(HypercubeQuicksortP, Sorts) {
  const auto [p, workload] = GetParam();
  RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = 300;
  cfg.workload = workload;
  cfg.algorithm = Algorithm::kHypercubeQuicksort;
  cfg.seed = 33;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted);
  EXPECT_TRUE(res.check.globally_ordered);
  EXPECT_TRUE(res.check.permutation_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HypercubeQuicksortP,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values(Workload::kUniform,
                                         Workload::kAllEqual,
                                         Workload::kSortedGlobal,
                                         Workload::kZipfLike)));

class BlockBitonicP
    : public ::testing::TestWithParam<std::tuple<int, Workload>> {};

TEST_P(BlockBitonicP, SortsAndKeepsBlockSizes) {
  const auto [p, workload] = GetParam();
  RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = 200;
  cfg.workload = workload;
  cfg.algorithm = Algorithm::kBlockBitonic;
  cfg.seed = 35;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  EXPECT_NEAR(res.check.imbalance, 0.0, 1e-9);  // blocks keep their sizes
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockBitonicP,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 16, 32),
                       ::testing::Values(Workload::kUniform,
                                         Workload::kAllEqual,
                                         Workload::kReverseGlobal)));

TEST(Baselines, BitonicMovesDataLogSquaredTimes) {
  // The §1 motivation quantified: block-bitonic's total traffic is ~log²p/2
  // times the input, AMS-sort's is ~k times. (n/p large enough that data
  // movement dominates the sampling machinery.)
  const int p = 32;
  const std::int64_t n = 5000;
  auto bytes = [&](Algorithm algo) {
    RunConfig cfg;
    cfg.p = p;
    cfg.n_per_pe = n;
    cfg.algorithm = algo;
    cfg.ams.levels = 2;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok());
    return res.report.total_bytes_sent;
  };
  const auto bitonic = bytes(Algorithm::kBlockBitonic);
  const auto ams = bytes(Algorithm::kAms);
  EXPECT_GT(bitonic, 3 * ams);
}

TEST(Baselines, HypercubeQuicksortMovesDataLogPTimes) {
  const int p = 64;
  const std::int64_t n = 20000;
  auto bytes = [&](Algorithm algo) {
    RunConfig cfg;
    cfg.p = p;
    cfg.n_per_pe = n;
    cfg.algorithm = algo;
    cfg.ams.levels = 2;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok());
    return res.report.total_bytes_sent;
  };
  // log2(64) = 6 rounds, ~half the data crosses per round → ~3n moved,
  // vs 2n for 2-level AMS (plus overheads); the gap widens with p.
  EXPECT_GT(bytes(Algorithm::kHypercubeQuicksort), bytes(Algorithm::kAms));
}

TEST(Baselines, MpSortSlowerThanMergesortInBucketPhase) {
  // MP-sort re-sorts from scratch: its bucket-processing (merge) phase must
  // be slower than true merging at equal inputs.
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 5000;
  cfg.algorithm = Algorithm::kMergesort1L;
  const auto merge_res = harness::run_sort_experiment(cfg);
  cfg.algorithm = Algorithm::kMpSortLike;
  const auto scratch_res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(merge_res.check.ok());
  EXPECT_TRUE(scratch_res.check.ok());
  EXPECT_LT(merge_res.phase(net::Phase::kBucketProcessing),
            scratch_res.phase(net::Phase::kBucketProcessing));
}

}  // namespace
}  // namespace pmps::baseline
