// Contract tests: invalid API usage must fail loudly (PMPS_CHECK aborts),
// and communicator isolation invariants hold under concurrent traffic.

#include <gtest/gtest.h>

#include <vector>

#include "ams/ams_sort.hpp"
#include "baseline/block_bitonic.hpp"
#include "baseline/hypercube_quicksort.hpp"
#include "coll/collectives.hpp"
#include "delivery/delivery.hpp"
#include "net/engine.hpp"

namespace pmps {
namespace {

using net::Comm;
using net::Engine;
using net::MachineParams;

TEST(ContractDeath, HypercubeQuicksortRejectsNonPowerOfTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine(6, MachineParams::supermuc_like(), 1);
        engine.run([](Comm& comm) {
          std::vector<std::uint64_t> data{1, 2, 3};
          baseline::hypercube_quicksort(comm, data);
        });
      },
      "power-of-two");
}

TEST(ContractDeath, BlockBitonicRejectsUnequalBlocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine(4, MachineParams::supermuc_like(), 1);
        engine.run([](Comm& comm) {
          std::vector<std::uint64_t> data(
              static_cast<std::size_t>(comm.rank() + 1), 7);
          baseline::block_bitonic_sort(comm, data);
        });
      },
      "equal block sizes");
}

TEST(ContractDeath, AmsRejectsMismatchedGroupCounts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine(8, MachineParams::supermuc_like(), 1);
        engine.run([](Comm& comm) {
          std::vector<std::uint64_t> data{1, 2, 3};
          ams::AmsConfig cfg;
          cfg.group_counts = {3, 2};  // 6 != 8
          ams::ams_sort(comm, data, cfg);
        });
      },
      "multiply to p");
}

TEST(ContractDeath, DeliveryRejectsSizeMismatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine(4, MachineParams::supermuc_like(), 1);
        engine.run([](Comm& comm) {
          std::vector<std::uint64_t> data(10, 1);
          std::vector<std::int64_t> sizes{3, 3};  // sums to 6, not 10
          (void)delivery::deliver(
              comm, std::span<const std::uint64_t>(data.data(), data.size()),
              sizes, delivery::Algo::kSimple, 1);
        });
      },
      "");
}

TEST(ContractDeath, SplitConsecutiveRequiresDivisibility) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine engine(6, MachineParams::supermuc_like(), 1);
        engine.run([](Comm& comm) { (void)comm.split_consecutive(4); });
      },
      "");
}

// ---------------------------------------------------------------------------

TEST(CommIsolation, SiblingCommunicatorsDoNotCrossTalk) {
  // Two disjoint sub-communicators run different collectives concurrently;
  // tags and comm ids must keep their traffic apart.
  Engine engine(8, MachineParams::supermuc_like(), 3);
  engine.run([&](Comm& comm) {
    Comm sub = comm.split_consecutive(2);  // two groups of 4
    const int group = comm.rank() / 4;
    if (group == 0) {
      // Group 0: chains of allreduces.
      for (int i = 0; i < 10; ++i) {
        const auto s = coll::allreduce_add_one(sub, sub.rank() + i);
        EXPECT_EQ(s, 6 + 4 * i);
      }
    } else {
      // Group 1: alltoallv storms in the meantime.
      for (int i = 0; i < 5; ++i) {
        std::vector<std::int64_t> sendbuf;
        const std::vector<std::int64_t> counts(4, 1);
        for (int d = 0; d < 4; ++d) sendbuf.push_back(sub.rank() * 10 + d);
        auto recv = coll::alltoallv(
            sub, std::span<const std::int64_t>(sendbuf.data(), sendbuf.size()),
            std::span<const std::int64_t>(counts.data(), counts.size()));
        for (int s = 0; s < 4; ++s)
          EXPECT_EQ(recv.part(s)[0], s * 10 + sub.rank());
      }
    }
  });
}

TEST(CommIsolation, NestedSplitsKeepWorking) {
  Engine engine(16, MachineParams::supermuc_like(), 4);
  engine.run([&](Comm& comm) {
    Comm half = comm.split_consecutive(2);   // 8 each
    Comm quarter = half.split_consecutive(2);  // 4 each
    Comm pair = quarter.split_consecutive(2);  // 2 each
    EXPECT_EQ(pair.size(), 2);
    const auto sum = coll::allreduce_add_one(pair, comm.rank());
    // Pairs are consecutive ranks {2k, 2k+1}.
    EXPECT_EQ(sum, 2 * (comm.rank() / 2 * 2) + 1);
    // The parent comms remain usable after descendants were created.
    EXPECT_EQ(coll::allreduce_add_one(comm, 1), 16);
    EXPECT_EQ(coll::allreduce_add_one(half, 1), 8);
  });
}

TEST(CommIsolation, InterleavedParentChildCollectives) {
  Engine engine(8, MachineParams::supermuc_like(), 5);
  engine.run([&](Comm& comm) {
    Comm sub = comm.split_consecutive(4);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(coll::allreduce_add_one(comm, 1), 8);
      EXPECT_EQ(coll::allreduce_add_one(sub, 1), 2);
    }
  });
}

}  // namespace
}  // namespace pmps
