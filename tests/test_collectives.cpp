// Tests for the collective operations, over many communicator sizes
// (powers of two and odd sizes exercise both code paths), plus the
// FlatParts view the irregular collectives return and a randomized
// property test pitting the flat collectives against a naive p2p
// reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/flat.hpp"
#include "common/random.hpp"
#include "net/engine.hpp"

namespace pmps::coll {
namespace {

using net::Comm;
using net::Engine;
using net::MachineParams;

// ---------------------------------------------------------------------------
// FlatParts accessors (no engine needed)
// ---------------------------------------------------------------------------

TEST(FlatParts, DefaultIsEmpty) {
  FlatParts<int> fp;
  EXPECT_EQ(fp.parts(), 0);
  EXPECT_EQ(fp.total(), 0);
  EXPECT_TRUE(fp.flat().empty());
  EXPECT_EQ(fp.begin(), fp.end());
  EXPECT_TRUE(fp.sizes().empty());
}

TEST(FlatParts, SingleRank) {
  auto fp = FlatParts<int>::from_sizes({7, 8, 9},
                                       std::vector<std::int64_t>{3});
  EXPECT_EQ(fp.parts(), 1);
  EXPECT_EQ(fp.total(), 3);
  EXPECT_EQ(fp.size(0), 3);
  EXPECT_EQ(fp.part(0)[2], 9);
}

TEST(FlatParts, EmptyPartsBetweenFullOnes) {
  auto fp = FlatParts<int>::from_sizes(
      {1, 2, 3, 4}, std::vector<std::int64_t>{2, 0, 1, 0, 1});
  EXPECT_EQ(fp.parts(), 5);
  EXPECT_EQ(fp.total(), 4);
  EXPECT_EQ(fp.size(1), 0);
  EXPECT_TRUE(fp.part(1).empty());
  EXPECT_TRUE(fp.part(3).empty());
  EXPECT_EQ(fp.part(2)[0], 3);
  EXPECT_EQ(fp.part(4)[0], 4);
  // Offsets invariants: p+1 entries, leading 0, non-decreasing, total last.
  const auto& off = fp.offsets();
  ASSERT_EQ(off.size(), 6u);
  EXPECT_EQ(off.front(), 0);
  EXPECT_EQ(off.back(), fp.total());
  EXPECT_TRUE(std::is_sorted(off.begin(), off.end()));
  // sizes() round-trips.
  EXPECT_EQ(fp.sizes(), (std::vector<std::int64_t>{2, 0, 1, 0, 1}));
}

TEST(FlatParts, IterationVisitsPartsInOrder) {
  auto fp = FlatParts<int>::from_sizes({10, 20, 30},
                                       std::vector<std::int64_t>{1, 0, 2});
  std::vector<std::vector<int>> seen;
  for (std::span<const int> part : fp)
    seen.emplace_back(part.begin(), part.end());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::vector<int>{10}));
  EXPECT_TRUE(seen[1].empty());
  EXPECT_EQ(seen[2], (std::vector<int>{20, 30}));
}

TEST(FlatParts, TakeFlatMovesBufferOut) {
  auto fp = FlatParts<int>::from_sizes({1, 2, 3},
                                       std::vector<std::int64_t>{1, 2});
  std::vector<int> flat = std::move(fp).take_flat();
  EXPECT_EQ(flat, (std::vector<int>{1, 2, 3}));
}

TEST(FlatPartsDeath, OffsetsMustCoverBuffer) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      { FlatParts<int> fp({1, 2, 3}, {0, 2}); }, "");
}

// ---------------------------------------------------------------------------
// collectives
// ---------------------------------------------------------------------------

class CollectivesP : public ::testing::TestWithParam<int> {
 protected:
  void run(const std::function<void(Comm&)>& f) {
    Engine engine(GetParam(), MachineParams::supermuc_like(), 42);
    engine.run(f);
  }
};

TEST_P(CollectivesP, Barrier) {
  run([](Comm& comm) {
    for (int i = 0; i < 3; ++i) barrier(comm);
  });
}

TEST_P(CollectivesP, BcastFromEveryRoot) {
  run([](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<std::int64_t> v;
      if (comm.rank() == root) v = {root, root * 2, 77};
      bcast(comm, v, root);
      ASSERT_EQ(v, (std::vector<std::int64_t>{root, root * 2, 77}));
    }
  });
}

TEST_P(CollectivesP, ReduceAdd) {
  run([](Comm& comm) {
    std::vector<std::int64_t> v{comm.rank(), 1};
    v = reduce(comm, std::move(v), std::plus<std::int64_t>{}, 0);
    if (comm.rank() == 0) {
      const std::int64_t p = comm.size();
      EXPECT_EQ(v[0], p * (p - 1) / 2);
      EXPECT_EQ(v[1], p);
    }
  });
}

TEST_P(CollectivesP, AllreduceAddAndMax) {
  run([](Comm& comm) {
    const std::int64_t p = comm.size();
    EXPECT_EQ(allreduce_add_one(comm, comm.rank()), p * (p - 1) / 2);
    const auto mx = allreduce_one<std::int64_t>(
        comm, comm.rank() * 3,
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    EXPECT_EQ(mx, (p - 1) * 3);
  });
}

TEST_P(CollectivesP, ScalarHelpersAgreeWithVectorForms) {
  run([](Comm& comm) {
    EXPECT_EQ(bcast_one<std::int64_t>(comm, comm.rank() + 5, 0), 5);
    const std::int64_t r = comm.rank();
    EXPECT_EQ(exscan_add_one(comm, 2), 2 * r);
  });
}

TEST_P(CollectivesP, ExscanAdd) {
  run([](Comm& comm) {
    std::vector<std::int64_t> v{1, comm.rank()};
    const auto pre = exscan_add(comm, v);
    const std::int64_t r = comm.rank();
    EXPECT_EQ(pre[0], r);
    EXPECT_EQ(pre[1], r * (r - 1) / 2);
  });
}

TEST_P(CollectivesP, GathervFromEveryRoot) {
  run([](Comm& comm) {
    for (int root = 0; root < std::min(comm.size(), 3); ++root) {
      // Sizes vary by rank and include empty contributions (rank % 3 == 0).
      std::vector<std::int64_t> mine(static_cast<std::size_t>(comm.rank() % 3),
                                     comm.rank());
      auto parts = gatherv(
          comm, std::span<const std::int64_t>(mine.data(), mine.size()), root);
      if (comm.rank() == root) {
        ASSERT_EQ(parts.parts(), comm.size());
        for (int i = 0; i < comm.size(); ++i) {
          ASSERT_EQ(parts.size(i), i % 3);
          for (auto v : parts.part(i)) EXPECT_EQ(v, i);
        }
        // One flat buffer in rank order.
        EXPECT_EQ(parts.total(),
                  static_cast<std::int64_t>(parts.flat().size()));
      } else {
        EXPECT_EQ(parts.parts(), 0);
        EXPECT_EQ(parts.total(), 0);
      }
    }
  });
}

TEST_P(CollectivesP, Allgatherv) {
  run([](Comm& comm) {
    std::vector<std::int64_t> mine{comm.rank(), comm.rank() + 100};
    auto parts = allgatherv(
        comm, std::span<const std::int64_t>(mine.data(), mine.size()));
    ASSERT_EQ(parts.parts(), comm.size());
    for (int i = 0; i < comm.size(); ++i) {
      ASSERT_EQ(parts.size(i), 2);
      EXPECT_EQ(parts.part(i)[0], i);
      EXPECT_EQ(parts.part(i)[1], i + 100);
    }
  });
}

TEST_P(CollectivesP, AllgathervWithEmptyContributions) {
  run([](Comm& comm) {
    // Only even ranks contribute.
    std::vector<std::int64_t> mine;
    if (comm.rank() % 2 == 0) mine = {comm.rank() * 7};
    auto parts = allgatherv(
        comm, std::span<const std::int64_t>(mine.data(), mine.size()));
    ASSERT_EQ(parts.parts(), comm.size());
    for (int i = 0; i < comm.size(); ++i) {
      if (i % 2 == 0) {
        ASSERT_EQ(parts.size(i), 1);
        EXPECT_EQ(parts.part(i)[0], i * 7);
      } else {
        EXPECT_TRUE(parts.part(i).empty());
      }
    }
  });
}

TEST_P(CollectivesP, AllgatherMergeProducesGlobalSortedSequence) {
  run([](Comm& comm) {
    Xoshiro256 rng(9, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> mine(20 + comm.rank() % 5);
    for (auto& v : mine) v = rng.bounded(1000);
    std::sort(mine.begin(), mine.end());
    auto merged = allgather_merge(
        comm, std::span<const std::uint64_t>(mine.data(), mine.size()));
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
    // Size = total contributions.
    const auto total = allreduce_add_one(
        comm, static_cast<std::int64_t>(mine.size()));
    EXPECT_EQ(static_cast<std::int64_t>(merged.size()), total);
    // Content preserved: every local element appears.
    for (auto v : mine)
      EXPECT_TRUE(std::binary_search(merged.begin(), merged.end(), v));
  });
}

TEST_P(CollectivesP, AlltoallCountsIsTranspose) {
  run([](Comm& comm) {
    const int p = comm.size();
    // send[i] = rank*1000 + i; expect recv[i] = i*1000 + rank.
    std::vector<std::int64_t> send(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      send[static_cast<std::size_t>(i)] = comm.rank() * 1000 + i;
    const auto recv = alltoall_counts(comm, send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int i = 0; i < p; ++i)
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 1000 + comm.rank());
  });
}

TEST_P(CollectivesP, AlltoallCountsSurvivesInt32Boundary) {
  // Counts travel as int32 on the wire (DESIGN.md §8): values at the edges
  // of the representable range must round-trip unharmed.
  run([](Comm& comm) {
    const int p = comm.size();
    const std::int64_t hi = std::numeric_limits<std::int32_t>::max();
    std::vector<std::int64_t> send(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      send[static_cast<std::size_t>(i)] = hi - (comm.rank() * p + i);
    const auto recv = alltoall_counts(comm, send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int i = 0; i < p; ++i)
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], hi - (i * p + comm.rank()));
  });
}

class AlltoallvSched
    : public ::testing::TestWithParam<std::tuple<int, Schedule>> {};

TEST_P(AlltoallvSched, DeliversAllPayloads) {
  const auto [p, sched] = GetParam();
  Engine engine(p, MachineParams::supermuc_like(), 7);
  engine.run([&](Comm& comm) {
    // Variable-size payloads, with some empty pairs, laid out flat in
    // destination order.
    std::vector<std::int64_t> sendbuf;
    std::vector<std::int64_t> counts(static_cast<std::size_t>(comm.size()));
    for (int i = 0; i < comm.size(); ++i) {
      const int len = (comm.rank() + i) % 4;
      counts[static_cast<std::size_t>(i)] = len;
      for (int j = 0; j < len; ++j) sendbuf.push_back(comm.rank() * 100 + i);
    }
    auto recv = alltoallv(
        comm, std::span<const std::int64_t>(sendbuf.data(), sendbuf.size()),
        std::span<const std::int64_t>(counts.data(), counts.size()), sched);
    ASSERT_EQ(recv.parts(), comm.size());
    for (int i = 0; i < comm.size(); ++i) {
      const int len = (i + comm.rank()) % 4;
      ASSERT_EQ(recv.size(i), len);
      for (auto v : recv.part(i)) EXPECT_EQ(v, i * 100 + comm.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AlltoallvSched,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 9, 16, 32),
                       ::testing::Values(Schedule::kDirect,
                                         Schedule::kOneFactor)));

TEST(Alltoallv, OneFactorOmitsEmptyMessages) {
  // All payloads empty → 1-factor sends only the Bruck counts exchange;
  // direct sends p−1 (empty) payload messages per PE.
  const int p = 16;
  auto count_msgs = [&](Schedule sched) {
    Engine engine(p, MachineParams::supermuc_like(), 3);
    engine.run([&](Comm& comm) {
      const std::vector<std::int64_t> counts(static_cast<std::size_t>(p), 0);
      (void)alltoallv(comm, std::span<const std::int64_t>{},
                      std::span<const std::int64_t>(counts.data(),
                                                    counts.size()),
                      sched);
    });
    return engine.report().max_messages_sent;
  };
  const auto direct = count_msgs(Schedule::kDirect);
  const auto onefactor = count_msgs(Schedule::kOneFactor);
  EXPECT_EQ(direct, p - 1);
  // Bruck: log2(16) = 4 rounds.
  EXPECT_EQ(onefactor, 4);
}

TEST_P(CollectivesP, SparseExchangeRoutesMessages) {
  run([](Comm& comm) {
    const int p = comm.size();
    // Each PE sends two messages to (rank+1)%p and one to (rank+2)%p.
    SendPlan<std::int64_t> out;
    const std::int64_t m1[] = {comm.rank(), 1};
    const std::int64_t m2[] = {comm.rank(), 2};
    const std::int64_t m3[] = {comm.rank(), 3};
    out.add((comm.rank() + 1) % p, std::span<const std::int64_t>(m1, 2));
    out.add((comm.rank() + 1) % p, std::span<const std::int64_t>(m2, 2));
    out.add((comm.rank() + 2) % p, std::span<const std::int64_t>(m3, 2));
    auto in = sparse_exchange(comm, out);
    ASSERT_EQ(in.count(), 3);
    ASSERT_EQ(static_cast<int>(in.srcs.size()), in.parts.parts());
    if (p <= 2) return;  // destinations overlap below p=3
    int from_prev = 0, from_prev2 = 0;
    for (int i = 0; i < in.count(); ++i) {
      const int src = in.srcs[static_cast<std::size_t>(i)];
      const auto payload = in.parts.part(i);
      if (src == (comm.rank() - 1 + p) % p) {
        ++from_prev;
        EXPECT_EQ(payload[0], src);
      }
      if (src == (comm.rank() - 2 + 2 * p) % p && payload[1] == 3)
        ++from_prev2;
    }
    EXPECT_EQ(from_prev, 2);
    EXPECT_EQ(from_prev2, 1);
  });
}

TEST(SparseExchange, ChargesOnlyActualMessagesPlusBarrier) {
  const int p = 32;
  Engine engine(p, MachineParams::supermuc_like(), 3);
  engine.run([&](Comm& comm) {
    SendPlan<std::int64_t> out;
    const std::int64_t payload[] = {1, 2, 3};
    if (comm.rank() == 0)
      out.add(1, std::span<const std::int64_t>(payload, 3));
    (void)sparse_exchange(comm, out);
  });
  // Sent messages per PE: the one payload (rank 0) + barrier rounds (5).
  EXPECT_LE(engine.report().max_messages_sent, 1 + 5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           32, 64));

// ---------------------------------------------------------------------------
// property: flat collectives match a naive p2p reference
// ---------------------------------------------------------------------------

/// Randomized sizes per (round, sender, dest); both the flat collective and
/// a hand-rolled p2p reference run in the same program, and the results
/// must agree exactly.
class FlatVsP2P : public ::testing::TestWithParam<int> {};

TEST_P(FlatVsP2P, GathervAndAllgatherv) {
  const int p = GetParam();
  Engine engine(p, MachineParams::supermuc_like(), 77);
  engine.run([&](Comm& comm) {
    for (int round = 0; round < 3; ++round) {
      Xoshiro256 rng(500 + static_cast<std::uint64_t>(round),
                     static_cast<std::uint64_t>(comm.rank()));
      std::vector<std::int64_t> mine(rng.bounded(6));
      for (auto& v : mine)
        v = comm.rank() * 1000 + static_cast<std::int64_t>(rng.bounded(900));

      // p2p reference: everyone sends to rank 0, rank 0 concatenates.
      const std::uint64_t tag = comm.next_tag_block();
      std::vector<std::int64_t> expect_flat;
      std::vector<std::int64_t> expect_sizes;
      comm.send<std::int64_t>(0, tag + static_cast<std::uint64_t>(comm.rank()),
                              std::span<const std::int64_t>(mine));
      if (comm.rank() == 0) {
        for (int src = 0; src < p; ++src) {
          const auto n = comm.recv_append<std::int64_t>(
              src, tag + static_cast<std::uint64_t>(src), expect_flat);
          expect_sizes.push_back(static_cast<std::int64_t>(n));
        }
      }

      auto gathered = gatherv(
          comm, std::span<const std::int64_t>(mine.data(), mine.size()), 0);
      if (comm.rank() == 0) {
        EXPECT_EQ(gathered.sizes(), expect_sizes);
        EXPECT_TRUE(std::equal(gathered.flat().begin(), gathered.flat().end(),
                               expect_flat.begin(), expect_flat.end()));
      }

      auto all = allgatherv(
          comm, std::span<const std::int64_t>(mine.data(), mine.size()));
      // Broadcast the reference from rank 0 and compare everywhere.
      bcast(comm, expect_sizes, 0);
      bcast(comm, expect_flat, 0);
      EXPECT_EQ(all.sizes(), expect_sizes);
      EXPECT_TRUE(std::equal(all.flat().begin(), all.flat().end(),
                             expect_flat.begin(), expect_flat.end()));
    }
  });
}

TEST_P(FlatVsP2P, Alltoallv) {
  const int p = GetParam();
  Engine engine(p, MachineParams::supermuc_like(), 78);
  engine.run([&](Comm& comm) {
    for (Schedule sched : {Schedule::kDirect, Schedule::kOneFactor}) {
      // Sizes depend only on (sender, dest), so receivers can rebuild them.
      auto pair_size = [&](int from, int to) {
        return static_cast<std::int64_t>(
            mix64(static_cast<std::uint64_t>(from * 131 + to * 17 +
                                             (sched == Schedule::kDirect))) %
            5);
      };
      std::vector<std::int64_t> sendbuf;
      std::vector<std::int64_t> counts(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        counts[static_cast<std::size_t>(i)] = pair_size(comm.rank(), i);
        for (std::int64_t j = 0; j < counts[static_cast<std::size_t>(i)]; ++j)
          sendbuf.push_back(comm.rank() * 10000 + i * 10 + j);
      }

      // p2p reference: direct sends of every non-self pair.
      const std::uint64_t tag = comm.next_tag_block();
      std::vector<std::int64_t> send_off(static_cast<std::size_t>(p) + 1, 0);
      for (int i = 0; i < p; ++i)
        send_off[static_cast<std::size_t>(i) + 1] =
            send_off[static_cast<std::size_t>(i)] +
            counts[static_cast<std::size_t>(i)];
      for (int i = 0; i < p; ++i) {
        if (i == comm.rank()) continue;
        comm.send<std::int64_t>(
            i, tag + static_cast<std::uint64_t>(comm.rank()),
            std::span<const std::int64_t>(
                sendbuf.data() + send_off[static_cast<std::size_t>(i)],
                static_cast<std::size_t>(counts[static_cast<std::size_t>(i)])));
      }
      std::vector<std::int64_t> expect_flat;
      std::vector<std::int64_t> expect_sizes;
      for (int src = 0; src < p; ++src) {
        if (src == comm.rank()) {
          expect_flat.insert(
              expect_flat.end(),
              sendbuf.begin() + send_off[static_cast<std::size_t>(src)],
              sendbuf.begin() + send_off[static_cast<std::size_t>(src)] +
                  counts[static_cast<std::size_t>(src)]);
          expect_sizes.push_back(counts[static_cast<std::size_t>(src)]);
        } else {
          const auto n = comm.recv_append<std::int64_t>(
              src, tag + static_cast<std::uint64_t>(src), expect_flat);
          expect_sizes.push_back(static_cast<std::int64_t>(n));
          EXPECT_EQ(static_cast<std::int64_t>(n),
                    pair_size(src, comm.rank()));
        }
      }

      auto recv = alltoallv(
          comm, std::span<const std::int64_t>(sendbuf.data(), sendbuf.size()),
          std::span<const std::int64_t>(counts.data(), counts.size()), sched);
      EXPECT_EQ(recv.sizes(), expect_sizes);
      EXPECT_TRUE(std::equal(recv.flat().begin(), recv.flat().end(),
                             expect_flat.begin(), expect_flat.end()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlatVsP2P,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 31));

}  // namespace
}  // namespace pmps::coll
