// Tests for the collective operations, over many communicator sizes
// (powers of two and odd sizes exercise both code paths).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "common/random.hpp"
#include "net/engine.hpp"

namespace pmps::coll {
namespace {

using net::Comm;
using net::Engine;
using net::MachineParams;

class CollectivesP : public ::testing::TestWithParam<int> {
 protected:
  void run(const std::function<void(Comm&)>& f) {
    Engine engine(GetParam(), MachineParams::supermuc_like(), 42);
    engine.run(f);
  }
};

TEST_P(CollectivesP, Barrier) {
  run([](Comm& comm) {
    for (int i = 0; i < 3; ++i) barrier(comm);
  });
}

TEST_P(CollectivesP, BcastFromEveryRoot) {
  run([](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<std::int64_t> v;
      if (comm.rank() == root) v = {root, root * 2, 77};
      bcast(comm, v, root);
      ASSERT_EQ(v, (std::vector<std::int64_t>{root, root * 2, 77}));
    }
  });
}

TEST_P(CollectivesP, ReduceAdd) {
  run([](Comm& comm) {
    std::vector<std::int64_t> v{comm.rank(), 1};
    v = reduce(comm, std::move(v), std::plus<std::int64_t>{}, 0);
    if (comm.rank() == 0) {
      const std::int64_t p = comm.size();
      EXPECT_EQ(v[0], p * (p - 1) / 2);
      EXPECT_EQ(v[1], p);
    }
  });
}

TEST_P(CollectivesP, AllreduceAddAndMax) {
  run([](Comm& comm) {
    const std::int64_t p = comm.size();
    EXPECT_EQ(allreduce_add_one(comm, comm.rank()), p * (p - 1) / 2);
    const auto mx = allreduce_one<std::int64_t>(
        comm, comm.rank() * 3,
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    EXPECT_EQ(mx, (p - 1) * 3);
  });
}

TEST_P(CollectivesP, ExscanAdd) {
  run([](Comm& comm) {
    std::vector<std::int64_t> v{1, comm.rank()};
    const auto pre = exscan_add(comm, v);
    const std::int64_t r = comm.rank();
    EXPECT_EQ(pre[0], r);
    EXPECT_EQ(pre[1], r * (r - 1) / 2);
  });
}

TEST_P(CollectivesP, Gatherv) {
  run([](Comm& comm) {
    std::vector<std::int64_t> mine(static_cast<std::size_t>(comm.rank() % 3),
                                   comm.rank());
    auto parts = gatherv(
        comm, std::span<const std::int64_t>(mine.data(), mine.size()), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(parts.size()), comm.size());
      for (int i = 0; i < comm.size(); ++i) {
        ASSERT_EQ(parts[static_cast<std::size_t>(i)].size(),
                  static_cast<std::size_t>(i % 3));
        for (auto v : parts[static_cast<std::size_t>(i)]) EXPECT_EQ(v, i);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST_P(CollectivesP, Allgatherv) {
  run([](Comm& comm) {
    std::vector<std::int64_t> mine{comm.rank(), comm.rank() + 100};
    auto parts = allgatherv(
        comm, std::span<const std::int64_t>(mine.data(), mine.size()));
    ASSERT_EQ(static_cast<int>(parts.size()), comm.size());
    for (int i = 0; i < comm.size(); ++i) {
      ASSERT_EQ(parts[static_cast<std::size_t>(i)].size(), 2u);
      EXPECT_EQ(parts[static_cast<std::size_t>(i)][0], i);
      EXPECT_EQ(parts[static_cast<std::size_t>(i)][1], i + 100);
    }
  });
}

TEST_P(CollectivesP, AllgatherMergeProducesGlobalSortedSequence) {
  run([](Comm& comm) {
    Xoshiro256 rng(9, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> mine(20 + comm.rank() % 5);
    for (auto& v : mine) v = rng.bounded(1000);
    std::sort(mine.begin(), mine.end());
    auto merged = allgather_merge(
        comm, std::span<const std::uint64_t>(mine.data(), mine.size()));
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
    // Size = total contributions.
    const auto total = allreduce_add_one(
        comm, static_cast<std::int64_t>(mine.size()));
    EXPECT_EQ(static_cast<std::int64_t>(merged.size()), total);
    // Content preserved: every local element appears.
    for (auto v : mine)
      EXPECT_TRUE(std::binary_search(merged.begin(), merged.end(), v));
  });
}

TEST_P(CollectivesP, AlltoallCountsIsTranspose) {
  run([](Comm& comm) {
    const int p = comm.size();
    // send[i] = rank*1000 + i; expect recv[i] = i*1000 + rank.
    std::vector<std::int64_t> send(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      send[static_cast<std::size_t>(i)] = comm.rank() * 1000 + i;
    const auto recv = alltoall_counts(comm, send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int i = 0; i < p; ++i)
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], i * 1000 + comm.rank());
  });
}

class AlltoallvSched
    : public ::testing::TestWithParam<std::tuple<int, Schedule>> {};

TEST_P(AlltoallvSched, DeliversAllPayloads) {
  const auto [p, sched] = GetParam();
  Engine engine(p, MachineParams::supermuc_like(), 7);
  engine.run([&](Comm& comm) {
    std::vector<std::vector<std::int64_t>> send(
        static_cast<std::size_t>(comm.size()));
    for (int i = 0; i < comm.size(); ++i) {
      // Variable-size payloads, with some empty pairs.
      const int len = (comm.rank() + i) % 4;
      for (int j = 0; j < len; ++j)
        send[static_cast<std::size_t>(i)].push_back(comm.rank() * 100 + i);
    }
    auto recv = alltoallv(comm, std::move(send), sched);
    ASSERT_EQ(static_cast<int>(recv.size()), comm.size());
    for (int i = 0; i < comm.size(); ++i) {
      const int len = (i + comm.rank()) % 4;
      ASSERT_EQ(recv[static_cast<std::size_t>(i)].size(),
                static_cast<std::size_t>(len));
      for (auto v : recv[static_cast<std::size_t>(i)])
        EXPECT_EQ(v, i * 100 + comm.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AlltoallvSched,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 9, 16, 32),
                       ::testing::Values(Schedule::kDirect,
                                         Schedule::kOneFactor)));

TEST(Alltoallv, OneFactorOmitsEmptyMessages) {
  // All payloads empty → 1-factor sends only the Bruck counts exchange;
  // direct sends p−1 (empty) payload messages per PE.
  const int p = 16;
  auto count_msgs = [&](Schedule sched) {
    Engine engine(p, MachineParams::supermuc_like(), 3);
    engine.run([&](Comm& comm) {
      std::vector<std::vector<std::int64_t>> send(
          static_cast<std::size_t>(p));
      (void)alltoallv(comm, std::move(send), sched);
    });
    return engine.report().max_messages_sent;
  };
  const auto direct = count_msgs(Schedule::kDirect);
  const auto onefactor = count_msgs(Schedule::kOneFactor);
  EXPECT_EQ(direct, p - 1);
  // Bruck: log2(16) = 4 rounds.
  EXPECT_EQ(onefactor, 4);
}

TEST_P(CollectivesP, SparseExchangeRoutesMessages) {
  run([](Comm& comm) {
    const int p = comm.size();
    // Each PE sends two messages to (rank+1)%p and one to (rank+2)%p.
    std::vector<OutMessage<std::int64_t>> out;
    out.push_back({(comm.rank() + 1) % p, {comm.rank(), 1}});
    out.push_back({(comm.rank() + 1) % p, {comm.rank(), 2}});
    out.push_back({(comm.rank() + 2) % p, {comm.rank(), 3}});
    auto in = sparse_exchange(comm, out);
    if (p == 1) {
      ASSERT_EQ(in.size(), 3u);
      return;
    }
    if (p == 2) {
      // (rank+1)%2 and (rank+2)%2 overlap: 2 from the other + 1 from self.
      ASSERT_EQ(in.size(), 3u);
      return;
    }
    ASSERT_EQ(in.size(), 3u);
    int from_prev = 0, from_prev2 = 0;
    for (const auto& [src, payload] : in) {
      if (src == (comm.rank() - 1 + p) % p) {
        ++from_prev;
        EXPECT_EQ(payload[0], src);
      }
      if (src == (comm.rank() - 2 + 2 * p) % p && payload[1] == 3) ++from_prev2;
    }
    EXPECT_EQ(from_prev, 2);
    EXPECT_EQ(from_prev2, 1);
  });
}

TEST(SparseExchange, ChargesOnlyActualMessagesPlusBarrier) {
  const int p = 32;
  Engine engine(p, MachineParams::supermuc_like(), 3);
  engine.run([&](Comm& comm) {
    std::vector<OutMessage<std::int64_t>> out;
    if (comm.rank() == 0) out.push_back({1, {1, 2, 3}});
    (void)sparse_exchange(comm, out);
  });
  // Sent messages per PE: the one payload (rank 0) + barrier rounds (5).
  EXPECT_LE(engine.report().max_messages_sent, 1 + 5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           32, 64));

}  // namespace
}  // namespace pmps::coll
