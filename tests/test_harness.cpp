// Tests for the harness: workloads, verification, tables, the analytic
// cost model's qualitative properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ams/level_config.hpp"
#include "harness/model.hpp"
#include "harness/tables.hpp"
#include "harness/verify.hpp"
#include "harness/workloads.hpp"
#include "net/engine.hpp"

namespace pmps::harness {
namespace {

TEST(Workloads, DeterministicAndRightSize) {
  for (Workload w : kAllWorkloads) {
    const auto a = make_workload(w, 2, 8, 100, 7);
    const auto b = make_workload(w, 2, 8, 100, 7);
    EXPECT_EQ(a, b) << workload_name(w);
    EXPECT_EQ(a.size(), 100u);
    const auto c = make_workload(w, 3, 8, 100, 7);
    if (w != Workload::kAllEqual) {
      EXPECT_NE(a, c);
    }
  }
}

TEST(Workloads, SortedGlobalIsGloballySorted) {
  std::vector<std::uint64_t> all;
  for (int pe = 0; pe < 8; ++pe) {
    const auto part = make_workload(Workload::kSortedGlobal, pe, 8, 50, 1);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(Workloads, ReverseGlobalIsReverseSorted) {
  std::vector<std::uint64_t> all;
  for (int pe = 0; pe < 8; ++pe) {
    const auto part = make_workload(Workload::kReverseGlobal, pe, 8, 50, 1);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_TRUE(std::is_sorted(all.rbegin(), all.rend()));
}

TEST(Workloads, LocalSortedIsLocallySorted) {
  const auto part = make_workload(Workload::kLocalSorted, 3, 8, 200, 1);
  EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
}

TEST(Verify, AcceptsCorrectOutput) {
  net::Engine engine(4, net::MachineParams::supermuc_like(), 1);
  engine.run([&](net::Comm& comm) {
    // Globally sorted, balanced output; input hash == output hash.
    std::vector<std::uint64_t> data;
    for (int i = 0; i < 10; ++i)
      data.push_back(static_cast<std::uint64_t>(comm.rank() * 10 + i));
    const auto h = content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));
    const auto check = verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), h,
        static_cast<std::int64_t>(data.size()));
    EXPECT_TRUE(check.ok());
    EXPECT_EQ(check.total, 40);
    EXPECT_NEAR(check.imbalance, 0.0, 1e-12);
    // Verification must be free.
    EXPECT_EQ(comm.now(), 0.0);
  });
}

TEST(Verify, RejectsUnsortedOutput) {
  net::Engine engine(2, net::MachineParams::supermuc_like(), 1);
  engine.run([&](net::Comm& comm) {
    std::vector<std::uint64_t> data{5, 3, 1};
    const auto h = content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));
    const auto check = verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), h, 3);
    EXPECT_FALSE(check.locally_sorted);
  });
}

TEST(Verify, RejectsGloballyMisordered) {
  net::Engine engine(2, net::MachineParams::supermuc_like(), 1);
  engine.run([&](net::Comm& comm) {
    // PE 0 holds {10}, PE 1 holds {5}: locally sorted, globally wrong.
    std::vector<std::uint64_t> data{comm.rank() == 0 ? 10ull : 5ull};
    const auto h = content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));
    const auto check = verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), h, 1);
    EXPECT_TRUE(check.locally_sorted);
    EXPECT_FALSE(check.globally_ordered);
  });
}

TEST(Verify, RejectsContentChange) {
  net::Engine engine(2, net::MachineParams::supermuc_like(), 1);
  engine.run([&](net::Comm& comm) {
    std::vector<std::uint64_t> data{1, 2, 3};
    const auto check = verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()),
        /*input_hash=*/12345, 3);
    EXPECT_FALSE(check.permutation_ok);
  });
}

TEST(Tables, MedianAndQuantiles) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);  // sorts internally
}

TEST(Tables, FormatsSeconds) {
  EXPECT_EQ(format_seconds(2.5), "2.500s");
  EXPECT_EQ(format_seconds(0.0025), "2.50ms");
  EXPECT_EQ(format_seconds(2.5e-7), "0.2us");
}

// ---------------------------------------------------------------------------
// Analytic model: qualitative shapes that also hold in the paper.
// ---------------------------------------------------------------------------

TEST(Model, MultiLevelWinsForSmallInputsAtLargeP) {
  const auto m = net::MachineParams::supermuc_like();
  const std::int64_t p = 32768;
  const std::int64_t n_small = 100000;  // n/p = 10^5
  const auto t1 =
      model_ams(m, p, n_small, ams::level_group_counts(p, 1), 8, 16);
  const auto t2 =
      model_ams(m, p, n_small, ams::level_group_counts(p, 2), 8, 16);
  EXPECT_LT(t2.total, t1.total)
      << "2-level must beat 1-level at p=32768, n/p=1e5";
}

TEST(Model, SingleLevelCompetitiveForHugeInputs) {
  const auto m = net::MachineParams::supermuc_like();
  const std::int64_t p = 512;
  const std::int64_t n_large = 10000000;  // n/p = 10^7
  const auto t1 =
      model_ams(m, p, n_large, ams::level_group_counts(p, 1), 8, 16);
  const auto t3 =
      model_ams(m, p, n_large, ams::level_group_counts(p, 3), 8, 16);
  // With huge inputs the extra data movement of 3 levels is not worth it.
  EXPECT_LT(t1.total, t3.total);
}

TEST(Model, RlmSlowdownGrowsForSmallInputs) {
  // Figure 7's shape: slowdown of RLM vs AMS increases as n/p shrinks.
  const auto m = net::MachineParams::supermuc_like();
  const std::int64_t p = 8192;
  auto slowdown = [&](std::int64_t n_per_pe) {
    double best_ams = 1e100, best_rlm = 1e100;
    for (int k = 1; k <= 3; ++k) {
      const auto rs = ams::level_group_counts(p, k);
      best_ams = std::min(best_ams, model_ams(m, p, n_per_pe, rs, 8, 16).total);
      best_rlm = std::min(best_rlm, model_rlm(m, p, n_per_pe, rs).total);
    }
    return best_rlm / best_ams;
  };
  EXPECT_GT(slowdown(100000), 1.0);
  EXPECT_GT(slowdown(100000), slowdown(10000000) * 0.99);
}

TEST(Model, MpSortLikeMuchSlowerAtScale) {
  // §7.3: single-level sort-from-scratch at p = 2^14, n/p = 1e5 is orders
  // of magnitude slower than 2-level AMS-sort.
  const auto m = net::MachineParams::supermuc_like();
  const std::int64_t p = 16384;
  const std::int64_t n = 100000;
  const auto mp = model_single_level(m, p, n, /*sort_from_scratch=*/true);
  const auto ams2 = model_ams(m, p, n, ams::level_group_counts(p, 2), 8, 16);
  EXPECT_GT(mp.total / ams2.total, 10.0);
}

TEST(Model, WeakScalingGrowsSlowly) {
  // Table 2 shape: for fixed n/p, time grows by a small factor with p.
  const auto m = net::MachineParams::supermuc_like();
  const std::int64_t n = 1000000;
  const auto t512 =
      model_ams(m, 512, n, ams::level_group_counts(512, 2), 8, 16);
  const auto t32k =
      model_ams(m, 32768, n, ams::level_group_counts(32768, 2), 8, 16);
  EXPECT_GT(t32k.total, t512.total);
  EXPECT_LT(t32k.total / t512.total, 6.0);  // paper: ~3.5x at n/p=1e6
}

}  // namespace
}  // namespace pmps::harness
