// Tests for AMS-sort: correctness across PE counts, level counts, delivery
// algorithms and workloads; imbalance bounds from overpartitioning; level
// configuration (Table 1 rule).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ams/ams_sort.hpp"
#include "ams/level_config.hpp"
#include "harness/runner.hpp"

namespace pmps::ams {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::Workload;

TEST(LevelConfig, SingleLevelIsP) {
  EXPECT_EQ(level_group_counts(512, 1), (std::vector<int>{512}));
  EXPECT_EQ(level_group_counts(7, 1), (std::vector<int>{7}));
}

TEST(LevelConfig, ReproducesTable1TwoLevels) {
  // Table 1, k = 2: r1 = p/16, r2 = 16.
  EXPECT_EQ(level_group_counts(512, 2), (std::vector<int>{32, 16}));
  EXPECT_EQ(level_group_counts(2048, 2), (std::vector<int>{128, 16}));
  EXPECT_EQ(level_group_counts(8192, 2), (std::vector<int>{512, 16}));
  EXPECT_EQ(level_group_counts(32768, 2), (std::vector<int>{2048, 16}));
}

TEST(LevelConfig, ReproducesTable1ThreeLevels) {
  // Table 1, k = 3: {8,4,16}, {16,8,16}, {32,16,16}, {64,32,16}.
  EXPECT_EQ(level_group_counts(512, 3), (std::vector<int>{8, 4, 16}));
  EXPECT_EQ(level_group_counts(2048, 3), (std::vector<int>{16, 8, 16}));
  EXPECT_EQ(level_group_counts(8192, 3), (std::vector<int>{32, 16, 16}));
  EXPECT_EQ(level_group_counts(32768, 3), (std::vector<int>{64, 32, 16}));
}

TEST(LevelConfig, ProductAlwaysP) {
  for (int p : {4, 12, 16, 36, 60, 64, 100, 128, 256}) {
    for (int k : {1, 2, 3, 4}) {
      const auto rs = level_group_counts(p, k);
      std::int64_t prod = 1;
      for (int r : rs) prod *= r;
      EXPECT_EQ(prod, p) << "p=" << p << " k=" << k;
      for (int r : rs) EXPECT_GT(r, 1);
    }
  }
}

TEST(LevelConfig, MachineAdaptedSplitsAtHierarchyBoundaries) {
  const auto m = net::MachineParams::supermuc_like();  // node 16, island 8192
  // 4 islands → islands, nodes, cores.
  EXPECT_EQ(level_group_counts_for_machine(4 * 8192, m),
            (std::vector<int>{4, 512, 16}));
  // One island → nodes, cores.
  EXPECT_EQ(level_group_counts_for_machine(8192, m),
            (std::vector<int>{512, 16}));
  // Part of an island, multiple of node size → nodes, cores.
  EXPECT_EQ(level_group_counts_for_machine(256, m),
            (std::vector<int>{16, 16}));
  // Within a node → single level.
  EXPECT_EQ(level_group_counts_for_machine(8, m), (std::vector<int>{8}));
}

TEST(LevelConfig, MachineAdaptedFallsBackForOddSizes) {
  const auto m = net::MachineParams::supermuc_like();
  for (std::int64_t p : {12, 36, 100, 1000}) {
    const auto rs = level_group_counts_for_machine(p, m);
    std::int64_t prod = 1;
    for (int r : rs) prod *= r;
    EXPECT_EQ(prod, p) << p;
  }
}

TEST(LevelConfig, NearestDivisor) {
  EXPECT_EQ(nearest_divisor(12, 3), 3);
  EXPECT_EQ(nearest_divisor(12, 5), 4);
  EXPECT_EQ(nearest_divisor(7, 3), 1);  // prime: only 1 and 7
  EXPECT_EQ(nearest_divisor(7, 5), 7);
  EXPECT_EQ(nearest_divisor(36, 6), 6);
}

// ---------------------------------------------------------------------------

struct AmsCase {
  int p;
  int levels;
  std::int64_t n_per_pe;
  Workload workload;
};

class AmsSortCorrectness : public ::testing::TestWithParam<AmsCase> {};

TEST_P(AmsSortCorrectness, SortsAndBalances) {
  const auto c = GetParam();
  RunConfig cfg;
  cfg.p = c.p;
  cfg.n_per_pe = c.n_per_pe;
  cfg.workload = c.workload;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = c.levels;
  cfg.seed = 12345;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted);
  EXPECT_TRUE(res.check.globally_ordered);
  EXPECT_TRUE(res.check.permutation_ok);
  EXPECT_EQ(res.check.total, c.p * c.n_per_pe);
  EXPECT_GT(res.wall_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AmsSortCorrectness,
    ::testing::Values(
        AmsCase{1, 1, 1000, Workload::kUniform},
        AmsCase{4, 1, 500, Workload::kUniform},
        AmsCase{16, 1, 500, Workload::kUniform},
        AmsCase{16, 2, 500, Workload::kUniform},
        AmsCase{16, 2, 500, Workload::kSortedGlobal},
        AmsCase{16, 2, 500, Workload::kReverseGlobal},
        AmsCase{16, 2, 500, Workload::kAllEqual},
        AmsCase{16, 2, 500, Workload::kFewDistinct},
        AmsCase{16, 2, 500, Workload::kZipfLike},
        AmsCase{16, 2, 500, Workload::kGaussian},
        AmsCase{64, 2, 300, Workload::kUniform},
        AmsCase{64, 3, 300, Workload::kUniform},
        AmsCase{64, 3, 300, Workload::kFewDistinct},
        AmsCase{27, 3, 200, Workload::kUniform},   // non-power-of-two
        AmsCase{36, 2, 200, Workload::kUniform},
        AmsCase{128, 2, 100, Workload::kUniform}));

class AmsDelivery : public ::testing::TestWithParam<delivery::Algo> {};

TEST_P(AmsDelivery, AllDeliveryAlgorithmsSortCorrectly) {
  RunConfig cfg;
  cfg.p = 32;
  cfg.n_per_pe = 400;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = 2;
  cfg.ams.delivery = GetParam();
  cfg.seed = 7;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
}

INSTANTIATE_TEST_SUITE_P(Algos, AmsDelivery,
                         ::testing::Values(delivery::Algo::kSimple,
                                           delivery::Algo::kRandomized,
                                           delivery::Algo::kDeterministic,
                                           delivery::Algo::kAdvancedRandomized));

TEST(AmsSort, ParallelGroupingMatchesSequential) {
  for (bool parallel : {false, true}) {
    RunConfig cfg;
    cfg.p = 16;
    cfg.n_per_pe = 300;
    cfg.algorithm = Algorithm::kAms;
    cfg.ams.levels = 2;
    cfg.ams.parallel_grouping = parallel;
    cfg.seed = 99;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok()) << "parallel=" << parallel;
  }
}

TEST(AmsSort, OverpartitioningImprovesImbalance) {
  // Lemma 2: with b = Ω(1/ε), imbalance ε shrinks as b grows. Compare the
  // achieved first-level max group load for b = 1 vs b = 16.
  auto run_with_b = [&](int b) {
    RunConfig cfg;
    cfg.p = 64;
    cfg.n_per_pe = 2000;
    cfg.algorithm = Algorithm::kAms;
    cfg.ams.levels = 1;
    cfg.ams.overpartition_b = b;
    cfg.ams.oversampling_a = 1.0;
    cfg.seed = 5;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok());
    return res.check.imbalance;
  };
  const double imb1 = run_with_b(1);
  const double imb16 = run_with_b(16);
  EXPECT_LT(imb16, imb1);
  EXPECT_LT(imb16, 0.25);
}

TEST(AmsSort, ImbalanceBoundedWithDefaults) {
  RunConfig cfg;
  cfg.p = 64;
  cfg.n_per_pe = 2000;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = 2;
  cfg.seed = 31;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  // b=16 default: ε ≈ 2/b per level → comfortably under 50% for two levels.
  EXPECT_LT(res.check.imbalance, 0.5);
}

TEST(AmsSort, StatsPopulatedPerLevel) {
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 500;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = 2;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_EQ(res.ams_stats.sample_sizes.size(), 2u);
  EXPECT_EQ(res.ams_stats.max_group_load.size(), 2u);
  for (auto s : res.ams_stats.sample_sizes) EXPECT_GT(s, 0);
}

TEST(AmsSort, PhaseTimesAccumulate) {
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 1000;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = 2;
  const auto res = harness::run_sort_experiment(cfg);
  using net::Phase;
  EXPECT_GT(res.phase(Phase::kSplitterSelection), 0.0);
  EXPECT_GT(res.phase(Phase::kBucketProcessing), 0.0);
  EXPECT_GT(res.phase(Phase::kDataDelivery), 0.0);
  EXPECT_GT(res.phase(Phase::kLocalSort), 0.0);
}

TEST(AmsSort, ExplicitGroupCounts) {
  RunConfig cfg;
  cfg.p = 24;
  cfg.n_per_pe = 300;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.group_counts = {3, 4, 2};
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
}

TEST(AmsSort, TinyInputPerPe) {
  // n/p smaller than the bucket count: the sample degrades gracefully.
  RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 4;
  cfg.algorithm = Algorithm::kAms;
  cfg.ams.levels = 2;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted);
  EXPECT_TRUE(res.check.globally_ordered);
  EXPECT_TRUE(res.check.permutation_ok);
}

}  // namespace
}  // namespace pmps::ams
