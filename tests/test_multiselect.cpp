// Tests for multisequence selection (§4.1): exact rank splits across
// distributed sorted sequences, including duplicate-heavy inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/random.hpp"
#include "net/engine.hpp"
#include "select/multiselect.hpp"

namespace pmps::select {
namespace {

using net::Comm;
using net::Engine;
using net::MachineParams;

/// Runs multiselect on p PEs over generated local sorted data and checks:
/// positions sum to the rank, and max(left) ≤ min(right) globally.
void check_multiselect(int p, std::int64_t n_per_pe,
                       const std::vector<std::int64_t>& ranks,
                       std::uint64_t value_range, std::uint64_t seed) {
  Engine engine(p, MachineParams::supermuc_like(), seed);
  std::mutex mu;
  std::vector<std::vector<std::uint64_t>> datasets(static_cast<std::size_t>(p));
  std::vector<std::vector<std::int64_t>> positions(static_cast<std::size_t>(p));

  engine.run([&](Comm& comm) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> data(static_cast<std::size_t>(n_per_pe));
    for (auto& v : data) v = rng.bounded(value_range);
    std::sort(data.begin(), data.end());
    auto res = multiselect(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), ranks);
    std::lock_guard lock(mu);
    datasets[static_cast<std::size_t>(comm.rank())] = std::move(data);
    positions[static_cast<std::size_t>(comm.rank())] =
        std::move(res.split_positions);
  });

  for (std::size_t j = 0; j < ranks.size(); ++j) {
    std::int64_t sum = 0;
    std::uint64_t max_left = 0;
    std::uint64_t min_right = ~0ull;
    bool has_left = false, has_right = false;
    for (int pe = 0; pe < p; ++pe) {
      const auto pos = positions[static_cast<std::size_t>(pe)][j];
      const auto& d = datasets[static_cast<std::size_t>(pe)];
      ASSERT_GE(pos, 0);
      ASSERT_LE(pos, static_cast<std::int64_t>(d.size()));
      sum += pos;
      if (pos > 0) {
        has_left = true;
        max_left = std::max(max_left, d[static_cast<std::size_t>(pos - 1)]);
      }
      if (pos < static_cast<std::int64_t>(d.size())) {
        has_right = true;
        min_right = std::min(min_right, d[static_cast<std::size_t>(pos)]);
      }
    }
    EXPECT_EQ(sum, ranks[j]) << "rank index " << j;
    if (has_left && has_right) {
      EXPECT_LE(max_left, min_right) << "rank index " << j;
    }
  }

  // Positions must be monotone across ranks on every PE.
  for (int pe = 0; pe < p; ++pe) {
    const auto& pos = positions[static_cast<std::size_t>(pe)];
    EXPECT_TRUE(std::is_sorted(pos.begin(), pos.end())) << "pe " << pe;
  }
}

struct Case {
  int p;
  std::int64_t n_per_pe;
  std::uint64_t value_range;  // small ranges stress duplicates
};

class MultiselectP : public ::testing::TestWithParam<Case> {};

TEST_P(MultiselectP, MedianRank) {
  const auto c = GetParam();
  const std::int64_t total = c.p * c.n_per_pe;
  check_multiselect(c.p, c.n_per_pe, {total / 2}, c.value_range, 1);
}

TEST_P(MultiselectP, ManySimultaneousRanks) {
  const auto c = GetParam();
  const std::int64_t total = c.p * c.n_per_pe;
  std::vector<std::int64_t> ranks;
  for (int i = 1; i < 8; ++i) ranks.push_back(i * total / 8);
  check_multiselect(c.p, c.n_per_pe, ranks, c.value_range, 2);
}

TEST_P(MultiselectP, ExtremeRanks) {
  const auto c = GetParam();
  const std::int64_t total = c.p * c.n_per_pe;
  check_multiselect(c.p, c.n_per_pe, {0, 1, total - 1, total}, c.value_range,
                    3);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MultiselectP,
    ::testing::Values(Case{1, 100, 1000}, Case{2, 50, 10},
                      Case{4, 200, 1ull << 60}, Case{7, 33, 100},
                      Case{8, 125, 5},  // heavy duplicates
                      Case{16, 64, 2},  // almost all equal
                      Case{16, 200, 1ull << 60}, Case{32, 40, 1000}));

TEST(Multiselect, AllEqualInput) {
  // Every element identical: split positions must still sum exactly.
  check_multiselect(8, 100, {0, 100, 400, 800}, 1, 4);
}

TEST(Multiselect, EmptySequencesOnSomePes) {
  const int p = 4;
  Engine engine(p, MachineParams::supermuc_like(), 9);
  std::mutex mu;
  std::int64_t sum = 0;
  engine.run([&](Comm& comm) {
    // Only even ranks have data.
    std::vector<std::uint64_t> data;
    if (comm.rank() % 2 == 0)
      for (int i = 0; i < 10; ++i)
        data.push_back(static_cast<std::uint64_t>(comm.rank() * 10 + i));
    auto res = multiselect(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), {7});
    std::lock_guard lock(mu);
    sum += res.split_positions[0];
  });
  EXPECT_EQ(sum, 7);
}

TEST(Multiselect, NoRanksIsNoop) {
  Engine engine(4, MachineParams::supermuc_like(), 9);
  engine.run([&](Comm& comm) {
    std::vector<std::uint64_t> data{1, 2, 3};
    auto res = multiselect(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), {});
    EXPECT_TRUE(res.split_positions.empty());
  });
}

}  // namespace
}  // namespace pmps::select
