// Tests for data delivery (§4.3, §4.3.1, Appendix A): correctness (all data
// arrives at the right group, balanced), and the message-startup guarantees
// that distinguish the algorithms on adversarial inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <mutex>
#include <numeric>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "common/random.hpp"
#include "delivery/delivery.hpp"
#include "net/engine.hpp"

namespace pmps::delivery {
namespace {

using net::Comm;
using net::Engine;
using net::MachineParams;

/// Piece-size generator per PE: returns r sizes.
using PieceGen = std::function<std::vector<std::int64_t>(int pe, int p, int r)>;

struct DeliveryOutcome {
  std::vector<std::int64_t> received_per_pe;   ///< elements
  std::vector<std::int64_t> runs_per_pe;       ///< payload messages received
  std::vector<std::uint64_t> content_sum_per_pe;
  std::uint64_t sent_content_sum = 0;
  std::int64_t total_sent = 0;
  bool group_membership_ok = true;
};

/// Runs a delivery of synthetic pieces: element value encodes
/// (group, sender, sequence) so receivers can check group membership.
DeliveryOutcome run_delivery(int p, int r, Algo algo, const PieceGen& gen,
                             std::uint64_t seed = 1) {
  Engine engine(p, MachineParams::supermuc_like(), seed);
  DeliveryOutcome out;
  out.received_per_pe.assign(static_cast<std::size_t>(p), 0);
  out.runs_per_pe.assign(static_cast<std::size_t>(p), 0);
  out.content_sum_per_pe.assign(static_cast<std::size_t>(p), 0);
  std::mutex mu;

  engine.run([&](Comm& comm) {
    const auto sizes = gen(comm.rank(), p, r);
    PMPS_CHECK(static_cast<int>(sizes.size()) == r);
    std::vector<std::uint64_t> data;
    for (int g = 0; g < r; ++g) {
      for (std::int64_t i = 0; i < sizes[static_cast<std::size_t>(g)]; ++i) {
        data.push_back((static_cast<std::uint64_t>(g) << 48) |
                       (static_cast<std::uint64_t>(comm.rank()) << 24) |
                       static_cast<std::uint64_t>(i & 0xffffff));
      }
    }
    std::uint64_t my_sum = 0;
    for (auto v : data) my_sum += v;

    auto runs = deliver(comm,
                        std::span<const std::uint64_t>(data.data(), data.size()),
                        sizes, algo, seed);

    const int p_prime = p / r;
    const int my_group = comm.rank() / p_prime;
    std::int64_t count = 0;
    std::uint64_t sum = 0;
    bool groups_ok = true;
    for (std::span<const std::uint64_t> run : runs) {
      for (auto v : run) {
        ++count;
        sum += v;
        if (static_cast<int>(v >> 48) != my_group) groups_ok = false;
      }
    }
    std::lock_guard lock(mu);
    out.received_per_pe[static_cast<std::size_t>(comm.rank())] = count;
    out.runs_per_pe[static_cast<std::size_t>(comm.rank())] = runs.parts();
    out.content_sum_per_pe[static_cast<std::size_t>(comm.rank())] = sum;
    out.sent_content_sum += my_sum;
    out.total_sent += static_cast<std::int64_t>(data.size());
    if (!groups_ok) out.group_membership_ok = false;
  });
  return out;
}

constexpr Algo kAllAlgos[] = {Algo::kSimple, Algo::kRandomized,
                              Algo::kDeterministic,
                              Algo::kAdvancedRandomized};

struct Shape {
  int p;
  int r;
};

class DeliveryCorrectness
    : public ::testing::TestWithParam<std::tuple<Shape, Algo>> {};

TEST_P(DeliveryCorrectness, UniformPieces) {
  const auto [shape, algo] = GetParam();
  auto gen = [](int pe, int, int r) {
    Xoshiro256 rng(100, static_cast<std::uint64_t>(pe));
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r));
    for (auto& s : sizes) s = static_cast<std::int64_t>(rng.bounded(40));
    return sizes;
  };
  const auto out = run_delivery(shape.p, shape.r, algo, gen);

  EXPECT_TRUE(out.group_membership_ok);
  // Permutation: content preserved.
  std::uint64_t received_sum = 0;
  std::int64_t received = 0, n_total = 0;
  for (int pe = 0; pe < shape.p; ++pe) {
    received_sum += out.content_sum_per_pe[static_cast<std::size_t>(pe)];
    received += out.received_per_pe[static_cast<std::size_t>(pe)];
  }
  n_total = out.total_sent;
  EXPECT_EQ(received, out.total_sent);
  EXPECT_EQ(received_sum, out.sent_content_sum);

  // Balance within each group: the prefix-sum algorithms split group
  // streams into ±1 chunks; the deterministic algorithm is bounded by
  // max(quota, r·small_limit) (§4.3.1 analysis).
  const int p_prime = shape.p / shape.r;
  const std::int64_t small_limit = std::max<std::int64_t>(
      1, n_total / (2 * static_cast<std::int64_t>(shape.p) * shape.r));
  for (int g = 0; g < shape.r; ++g) {
    std::int64_t lo = INT64_MAX, hi = 0, tot = 0;
    for (int q = 0; q < p_prime; ++q) {
      const auto c = out.received_per_pe[static_cast<std::size_t>(
          g * p_prime + q)];
      lo = std::min(lo, c);
      hi = std::max(hi, c);
      tot += c;
    }
    if (algo == Algo::kDeterministic) {
      EXPECT_LE(hi, std::max<std::int64_t>(div_ceil(tot, p_prime),
                                           shape.r * small_limit) +
                        small_limit)
          << "group " << g;
    } else {
      EXPECT_LE(hi - lo, 1) << "group " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeliveryCorrectness,
    ::testing::Combine(::testing::Values(Shape{4, 2}, Shape{8, 2}, Shape{8, 4},
                                         Shape{16, 4}, Shape{16, 16},
                                         Shape{32, 8}, Shape{36, 6},
                                         Shape{64, 4}),
                       ::testing::ValuesIn(kAllAlgos)));

class DeliveryEdgeCases : public ::testing::TestWithParam<Algo> {};

TEST_P(DeliveryEdgeCases, AllDataToOneGroup) {
  const auto algo = GetParam();
  auto gen = [](int, int, int r) {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r), 0);
    sizes[0] = 50;
    return sizes;
  };
  const auto out = run_delivery(16, 4, algo, gen);
  EXPECT_TRUE(out.group_membership_ok);
  std::int64_t got = 0;
  for (int pe = 0; pe < 4; ++pe)
    got += out.received_per_pe[static_cast<std::size_t>(pe)];
  EXPECT_EQ(got, out.total_sent);
  for (int pe = 4; pe < 16; ++pe)
    EXPECT_EQ(out.received_per_pe[static_cast<std::size_t>(pe)], 0);
}

TEST_P(DeliveryEdgeCases, EmptyInput) {
  const auto algo = GetParam();
  auto gen = [](int, int, int r) {
    return std::vector<std::int64_t>(static_cast<std::size_t>(r), 0);
  };
  const auto out = run_delivery(8, 2, algo, gen);
  EXPECT_EQ(out.total_sent, 0);
  for (auto c : out.received_per_pe) EXPECT_EQ(c, 0);
}

TEST_P(DeliveryEdgeCases, SingleElementTotal) {
  const auto algo = GetParam();
  auto gen = [](int pe, int, int r) {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r), 0);
    if (pe == 3) sizes[static_cast<std::size_t>(r - 1)] = 1;
    return sizes;
  };
  const auto out = run_delivery(8, 4, algo, gen);
  EXPECT_EQ(out.total_sent, 1);
  std::int64_t got = 0;
  for (auto c : out.received_per_pe) got += c;
  EXPECT_EQ(got, 1);
}

TEST_P(DeliveryEdgeCases, RGroupsEqualsP) {
  // Every group is a single PE (last level of the recursion).
  const auto algo = GetParam();
  auto gen = [](int pe, int, int r) {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r), 0);
    for (int g = 0; g < r; ++g)
      sizes[static_cast<std::size_t>(g)] = 1 + (pe + g) % 3;
    return sizes;
  };
  const auto out = run_delivery(8, 8, algo, gen);
  EXPECT_TRUE(out.group_membership_ok);
  std::int64_t got = 0;
  for (auto c : out.received_per_pe) got += c;
  EXPECT_EQ(got, out.total_sent);
}

INSTANTIATE_TEST_SUITE_P(Algos, DeliveryEdgeCases,
                         ::testing::ValuesIn(kAllAlgos));

// ---------------------------------------------------------------------------
// Adversarial startup-count behaviour (the point of §4.3.1 / Appendix A)
// ---------------------------------------------------------------------------

/// The bad case of §4.3 (Figure 3): many consecutively numbered PEs send
/// only a tiny piece to group 0 while two late PEs send huge group-0 pieces,
/// so with the identity enumeration *all* tiny pieces land on the first
/// receiver of group 0. Every PE holds the same total (the algorithms'
/// balanced-input precondition): the tiny senders put the rest elsewhere.
std::vector<std::int64_t> adversarial_gen(int pe, int p, int r) {
  const std::int64_t total_per_pe = 4 * p;  // makes group-0 quota ≥ #tiny
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(r), 0);
  if (pe < p - 2) {
    sizes[0] = 1;  // tiny piece for group 0
    // Spread the rest over the other groups.
    const std::int64_t rest = total_per_pe - 1;
    for (int g = 1; g < r; ++g)
      sizes[static_cast<std::size_t>(g)] =
          chunk_begin(rest, r - 1, g) - chunk_begin(rest, r - 1, g - 1);
  } else {
    sizes[0] = total_per_pe;  // bulk for group 0 at the end
  }
  return sizes;
}

TEST(DeliveryAdversarial, SimpleConcentratesMessages) {
  const int p = 64, r = 8;
  const auto out = run_delivery(p, r, Algo::kSimple, adversarial_gen);
  // With identity enumeration the p−2 tiny pieces occupy the first
  // positions of group 0's stream: its first receiver gets ~p−2 messages.
  std::int64_t max_runs = 0;
  for (auto m : out.runs_per_pe) max_runs = std::max(max_runs, m);
  EXPECT_GE(max_runs, p - 8);
}

TEST(DeliveryAdversarial, DeterministicBoundsReceivedPieces) {
  const int p = 64, r = 8;
  const auto out = run_delivery(p, r, Algo::kDeterministic, adversarial_gen);
  // Theorem 1: ≤ r small + ≤ 2r large pieces per receiver.
  for (auto m : out.runs_per_pe) EXPECT_LE(m, 3 * r + 2);
}

TEST(DeliveryAdversarial, AdvancedRandomizedBoundsReceivedPieces) {
  const int p = 64, r = 8;
  const auto out =
      run_delivery(p, r, Algo::kAdvancedRandomized, adversarial_gen);
  // Theorem 4 / Lemma 6: ≈ 1 + 2r(1+1/a) with a ≥ 1 whp.
  for (auto m : out.runs_per_pe) EXPECT_LE(m, 4 * r + 8);
}

TEST(DeliveryAdversarial, RandomizedSpreadsMessages) {
  const int p = 64, r = 8;
  const auto simple = run_delivery(p, r, Algo::kSimple, adversarial_gen);
  const auto rnd = run_delivery(p, r, Algo::kRandomized, adversarial_gen);
  std::int64_t max_simple = 0, max_rnd = 0;
  for (auto m : simple.runs_per_pe) max_simple = std::max(max_simple, m);
  for (auto m : rnd.runs_per_pe) max_rnd = std::max(max_rnd, m);
  EXPECT_LT(max_rnd, max_simple / 2);
}

TEST(DeliveryAdversarial, AllVariantsStillCorrect) {
  const int p = 64, r = 8;
  for (Algo algo : kAllAlgos) {
    const auto out = run_delivery(p, r, algo, adversarial_gen);
    EXPECT_TRUE(out.group_membership_ok) << algo_name(algo);
    std::int64_t got = 0;
    std::uint64_t sum = 0;
    for (int pe = 0; pe < p; ++pe) {
      got += out.received_per_pe[static_cast<std::size_t>(pe)];
      sum += out.content_sum_per_pe[static_cast<std::size_t>(pe)];
    }
    EXPECT_EQ(got, out.total_sent) << algo_name(algo);
    EXPECT_EQ(sum, out.sent_content_sum) << algo_name(algo);
  }
}

TEST(DeliverySortedRuns, FragmentsStaySorted) {
  // If the sender's data is sorted, every received run must be sorted
  // (RLM-sort merges them directly).
  const int p = 8;
  Engine engine(p, MachineParams::supermuc_like(), 6);
  engine.run([&](Comm& comm) {
    std::vector<std::uint64_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::uint64_t>(comm.rank()) * 1000 +
                static_cast<std::uint64_t>(i);
    std::vector<std::int64_t> sizes{32, 32};
    for (Algo algo : kAllAlgos) {
      auto runs = deliver(
          comm, std::span<const std::uint64_t>(data.data(), data.size()),
          sizes, algo, 3);
      for (std::span<const std::uint64_t> run : runs)
        EXPECT_TRUE(std::is_sorted(run.begin(), run.end()));
    }
  });
}

}  // namespace
}  // namespace pmps::delivery
