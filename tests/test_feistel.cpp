// Tests for the Feistel pseudorandom permutation (paper Appendix B).

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "prng/feistel.hpp"

namespace pmps::prng {
namespace {

class FeistelBijection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeistelBijection, IsBijective) {
  const std::uint64_t n = GetParam();
  FeistelPermutation perm(n, /*seed=*/123);
  std::vector<bool> seen(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = perm(i);
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]) << "collision at " << i;
    seen[v] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FeistelBijection,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 100, 101, 255,
                                           256, 1000, 4096, 10007));

TEST(Feistel, DifferentSeedsDifferentPermutations) {
  const std::uint64_t n = 256;
  FeistelPermutation a(n, 1), b(n, 2);
  int differ = 0;
  for (std::uint64_t i = 0; i < n; ++i)
    if (a(i) != b(i)) ++differ;
  EXPECT_GT(differ, static_cast<int>(n) / 2);
}

TEST(Feistel, SameSeedSamePermutation) {
  const std::uint64_t n = 500;
  FeistelPermutation a(n, 99), b(n, 99);
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(a(i), b(i));
}

TEST(Feistel, ScattersConsecutiveInputs) {
  // The delivery algorithms rely on consecutive indices mapping far apart:
  // check that images of a consecutive run are well spread (no long runs of
  // consecutive images).
  const std::uint64_t n = 1024;
  FeistelPermutation perm(n, 7);
  int consecutive_pairs = 0;
  for (std::uint64_t i = 0; i + 1 < n; ++i)
    if (perm(i + 1) == perm(i) + 1) ++consecutive_pairs;
  EXPECT_LT(consecutive_pairs, 32);
}

TEST(Feistel, AverageDisplacementLarge) {
  const std::uint64_t n = 4096;
  FeistelPermutation perm(n, 5);
  double total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto d = static_cast<double>(perm(i)) - static_cast<double>(i);
    total += d > 0 ? d : -d;
  }
  // Random permutation expectation: n/3.
  EXPECT_GT(total / static_cast<double>(n), static_cast<double>(n) / 6);
}

}  // namespace
}  // namespace pmps::prng
