// Tests for the pluggable NetworkModel (net/network_model.hpp): the
// stop-and-wait ack/timeout/retransmit protocol against explicit scripted
// schedules (à la libcurvecpr's delivery_latencies[] tests), exact virtual
// timestamps through a two-PE engine exchange, retry-exhaustion error
// handling, zero-loss bit-identity with the clean model, stragglers, and
// the seeded fault configuration used by the harness.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/runner.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/machine.hpp"
#include "net/network_model.hpp"

namespace pmps::net {
namespace {

// Protocol-level fixtures: drive simulate_reliable_send directly with a
// ScriptedModel and assert the exact doubles the formula must produce.
// (Expected values are computed with the same operation order the protocol
// uses — elapsed += cost, deadline = end + timeout — so EXPECT_EQ on
// doubles is legitimate, not approximate.)
constexpr double kData = 1e-3;  // one data transmission
constexpr double kAck = 1e-4;   // one ack transmission
constexpr double kRto = 5e-3;

RetransmitParams test_rp(int max_retries = 4) {
  RetransmitParams rp;
  rp.rto = kRto;
  rp.backoff = 2.0;
  rp.max_retries = max_retries;
  return rp;
}

MsgAttempt attempt_0_to_1() {
  MsgAttempt a;
  a.src_pe = 0;
  a.dst_pe = 1;
  a.level = LinkLevel::kGlobal;
  a.bytes = 64;
  a.seq = 0;
  return a;
}

TEST(ReliableSendProtocol, CleanFirstTry) {
  ScriptedModel model(test_rp());  // no scripts: everything behaves cleanly
  const auto out = simulate_reliable_send(model, test_rp(), attempt_0_to_1(),
                                          kData, kAck);
  ASSERT_TRUE(out.delivered);
  // The ack costs the sender nothing: busy exactly for one transmission.
  EXPECT_EQ(out.finish_dt, kData);
  EXPECT_EQ(out.arrival_dt, out.finish_dt);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.retransmits, 0);
  EXPECT_EQ(out.data_drops, 0);
  EXPECT_EQ(out.ack_drops, 0);
  EXPECT_EQ(out.dup_data, 0);
  EXPECT_EQ(out.dup_acks, 0);
}

TEST(ReliableSendProtocol, DataDropRetransmits) {
  auto model = std::make_shared<ScriptedModel>(test_rp());
  model->add_script(0, 1, {.data = {-1, 0}, .ack = {}});
  const auto out = simulate_reliable_send(*model, test_rp(), attempt_0_to_1(),
                                          kData, kAck);
  ASSERT_TRUE(out.delivered);
  // Attempt 0 transmits (kData), is lost, and the sender sits out the full
  // timeout; attempt 1 transmits again and its ack returns in time.
  const double end1 = (kData + kRto) + kData;
  EXPECT_EQ(out.finish_dt, end1);
  EXPECT_EQ(out.arrival_dt, end1);  // the surviving copy is attempt 1's
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(out.retransmits, 1);
  EXPECT_EQ(out.data_drops, 1);
  EXPECT_EQ(out.ack_drops, 0);
  EXPECT_EQ(out.dup_data, 0);
  EXPECT_EQ(out.dup_acks, 0);
}

TEST(ReliableSendProtocol, AckDropDeliversDuplicateData) {
  auto model = std::make_shared<ScriptedModel>(test_rp());
  model->add_script(0, 1, {.data = {}, .ack = {-1, 0}});
  const auto out = simulate_reliable_send(*model, test_rp(), attempt_0_to_1(),
                                          kData, kAck);
  ASSERT_TRUE(out.delivered);
  // Attempt 0's data arrived but its ack was lost, so the sender resends;
  // the receiver sees a duplicate (suppressed) and the *first* copy's
  // arrival time stands.
  EXPECT_EQ(out.arrival_dt, kData);
  EXPECT_EQ(out.finish_dt, (kData + kRto) + kData);
  EXPECT_EQ(out.retransmits, 1);
  EXPECT_EQ(out.ack_drops, 1);
  EXPECT_EQ(out.data_drops, 0);
  EXPECT_EQ(out.dup_data, 1);
  EXPECT_EQ(out.dup_acks, 0);
}

TEST(ReliableSendProtocol, LateAckArrivesOutOfOrderAndIsDeduplicated) {
  // Attempt 0's ack is delayed past the first timeout (8 ms), so the sender
  // retransmits; attempt 1's undelayed ack then overtakes the late one.
  // Both acks exist — the earlier-arriving one completes the protocol and
  // the straggler is counted as a duplicate.
  auto model = std::make_shared<ScriptedModel>(test_rp());
  model->add_script(0, 1, {.data = {}, .ack = {8e-3, 0}});
  const auto out = simulate_reliable_send(*model, test_rp(), attempt_0_to_1(),
                                          kData, kAck);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.finish_dt, (kData + kRto) + kData);
  EXPECT_EQ(out.arrival_dt, kData);  // attempt 0's copy arrived first
  EXPECT_EQ(out.retransmits, 1);
  EXPECT_EQ(out.dup_data, 1);
  EXPECT_EQ(out.dup_acks, 1);  // the late attempt-0 ack is ignored
  EXPECT_EQ(out.ack_drops, 0);
}

TEST(ReliableSendProtocol, OutOfOrderAckFromEarlierAttemptCompletes) {
  // Attempt 0's ack is delayed past its own deadline but attempt 1's ack is
  // dropped outright: completion rides on the earliest ack *arrival*, not
  // on which attempt generated it.
  auto model = std::make_shared<ScriptedModel>(test_rp());
  model->add_script(0, 1, {.data = {}, .ack = {6.5e-3, -1}});
  const auto out = simulate_reliable_send(*model, test_rp(), attempt_0_to_1(),
                                          kData, kAck);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.finish_dt, (kData + kRto) + kData);
  EXPECT_EQ(out.arrival_dt, kData);
  EXPECT_EQ(out.retransmits, 1);
  EXPECT_EQ(out.dup_data, 1);
  EXPECT_EQ(out.ack_drops, 1);  // attempt 1's ack
  EXPECT_EQ(out.dup_acks, 0);   // only one ack was ever generated
}

TEST(ReliableSendProtocol, ExhaustionReportsUndelivered) {
  auto model = std::make_shared<ScriptedModel>(test_rp(/*max_retries=*/2));
  model->add_script(0, 1, {.data = {-1, -1, -1}, .ack = {}});
  const auto out = simulate_reliable_send(*model, test_rp(2), attempt_0_to_1(),
                                          kData, kAck);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.retransmits, 2);
  EXPECT_EQ(out.data_drops, 3);
  // Three transmissions, each followed by its (backed-off) timeout.
  double expect = kData + kRto;
  expect += kData + 2 * kRto;
  expect += kData + 4 * kRto;
  EXPECT_EQ(out.finish_dt, expect);
}

TEST(ReliableSendProtocol, ScriptsApplyPerMessageInSendOrder) {
  // Two messages on the same stream: the first consumes the drop script,
  // the second the clean one — attempts of one message never bleed into
  // the next message's schedule.
  auto model = std::make_shared<ScriptedModel>(test_rp());
  model->add_script(0, 1, {.data = {-1, 0}, .ack = {}});
  model->add_script(0, 1, {.data = {}, .ack = {}});
  MsgAttempt first = attempt_0_to_1();
  const auto out0 =
      simulate_reliable_send(*model, test_rp(), first, kData, kAck);
  MsgAttempt second = attempt_0_to_1();
  second.seq = 1;
  const auto out1 =
      simulate_reliable_send(*model, test_rp(), second, kData, kAck);
  EXPECT_EQ(out0.retransmits, 1);
  EXPECT_EQ(out1.retransmits, 0);
  EXPECT_EQ(out1.finish_dt, kData);
}

// Engine-level scripted exchange: exact virtual timestamps and counters
// through real sends/recvs on a two-PE flat machine (α = 1 ms, β = 0, so
// every transmission costs exactly kFlatAlpha).
constexpr double kFlatAlpha = 1e-3;

TEST(ScriptedEngineExchange, RetransmitShiftsTimestampsExactly) {
  MachineParams machine = MachineParams::flat(kFlatAlpha, 0.0);
  auto model = std::make_shared<ScriptedModel>(test_rp());
  model->add_script(0, 1, {.data = {-1, 0}, .ack = {}});  // first msg only
  machine.model = model;

  Engine engine(2, machine, /*seed=*/1);
  double sender_after_first = 0, sender_after_second = 0;
  double recv_first = 0, recv_second = 0;
  std::uint64_t v0 = 0, v1 = 0;
  engine.run([&](Comm& comm) {
    const std::uint64_t tag = comm.next_tag_block();
    if (comm.rank() == 0) {
      comm.send_one<std::uint64_t>(1, tag, 111);
      sender_after_first = comm.now();
      comm.send_one<std::uint64_t>(1, tag + 1, 222);
      sender_after_second = comm.now();
    } else if (comm.rank() == 1) {
      v0 = comm.recv_one<std::uint64_t>(0, tag);
      recv_first = comm.now();
      v1 = comm.recv_one<std::uint64_t>(0, tag + 1);
      recv_second = comm.now();
    }
  });

  EXPECT_EQ(v0, 111u);
  EXPECT_EQ(v1, 222u);
  // Message 1: transmit (lost), full timeout, retransmit — delivered.
  const double first = (kFlatAlpha + kRto) + kFlatAlpha;
  EXPECT_EQ(sender_after_first, first);
  EXPECT_EQ(recv_first, first);
  // Message 2 is unscripted: plain clean cost on top. (The receiver's
  // catch-up is clock + (arrival - clock), which may differ from the
  // literal sum by an ulp — hence DOUBLE_EQ there.)
  EXPECT_EQ(sender_after_second, first + kFlatAlpha);
  EXPECT_DOUBLE_EQ(recv_second, first + kFlatAlpha);

  const auto rep = engine.report();
  EXPECT_EQ(rep.faults.retransmits, 1);
  EXPECT_EQ(rep.faults.data_drops, 1);
  EXPECT_EQ(rep.faults.dup_data, 0);
  // Retransmissions are protocol attempts, not logical messages.
  EXPECT_EQ(rep.max_messages_sent, 2);
  EXPECT_EQ(rep.max_messages_received, 2);
}

TEST(ScriptedEngineExchange, FifoPerKeySurvivesReorderedArrivals) {
  MachineParams machine = MachineParams::flat(kFlatAlpha, 0.0);
  RetransmitParams rp = test_rp();
  rp.rto = 50e-3;  // generous: the delayed ack must not trigger a retransmit
  auto model = std::make_shared<ScriptedModel>(rp);
  // First message: delivered on the first try but with +10 ms transit, so
  // it *arrives* after the second message. Delivery to the receiver must
  // still be in send order (FIFO per matching key).
  model->add_script(0, 1, {.data = {10e-3}, .ack = {}});
  machine.model = model;

  Engine engine(2, machine, /*seed=*/1);
  std::vector<std::uint64_t> received;
  double recv_first = 0, recv_second = 0;
  engine.run([&](Comm& comm) {
    const std::uint64_t tag = comm.next_tag_block();
    if (comm.rank() == 0) {
      comm.send_one<std::uint64_t>(1, tag, 111);  // same key as the next one
      comm.send_one<std::uint64_t>(1, tag, 222);
    } else if (comm.rank() == 1) {
      received.push_back(comm.recv_one<std::uint64_t>(0, tag));
      recv_first = comm.now();
      received.push_back(comm.recv_one<std::uint64_t>(0, tag));
      recv_second = comm.now();
    }
  });

  EXPECT_EQ(received, (std::vector<std::uint64_t>{111, 222}));
  // First recv waits for the delayed copy (1 ms transmit + 10 ms transit);
  // the second message arrived long before and is picked up immediately
  // (its drain charge is β·bytes = 0 on this machine).
  EXPECT_EQ(recv_first, kFlatAlpha + 10e-3);
  EXPECT_EQ(recv_second, recv_first);
  EXPECT_EQ(engine.report().faults.retransmits, 0);
}

void run_exchange(Comm& comm, bool reverse) {
  const std::uint64_t tag = comm.next_tag_block();
  const int sender = reverse ? 1 : 0;
  if (comm.rank() == sender) {
    comm.send_one<std::uint64_t>(1 - sender, tag, 7);
  } else {
    EXPECT_EQ(comm.recv_one<std::uint64_t>(sender, tag), 7u);
  }
}

TEST(ScriptedEngineExchange, ExhaustionSurfacesErrorNotHang) {
  MachineParams machine = MachineParams::flat(kFlatAlpha, 0.0);
  auto model = std::make_shared<ScriptedModel>(test_rp(/*max_retries=*/2));
  model->add_script(0, 1, {.data = {-1, -1, -1}, .ack = {}});
  machine.model = model;

  Engine engine(2, machine, /*seed=*/1);
  // PE 1 is blocked in recv when PE 0 exhausts its retries: the run must
  // end with a NetworkError, not a deadlock.
  try {
    engine.run([&](Comm& comm) { run_exchange(comm, /*reverse=*/false); });
    FAIL() << "expected NetworkError";
  } catch (const NetworkError& e) {
    EXPECT_NE(std::string(e.what()).find("PE 0"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
  }

  // The engine stays usable: the next run drains the aborted traffic and
  // completes (reverse direction — the 1→0 stream is unscripted).
  engine.run([&](Comm& comm) { run_exchange(comm, /*reverse=*/true); });
  EXPECT_GT(engine.report().wall_time, 0.0);
}

TEST(ScriptedEngineExchange, ExhaustionSurfacesErrorOnThreadBackend) {
  MachineParams machine = MachineParams::flat(kFlatAlpha, 0.0);
  auto model = std::make_shared<ScriptedModel>(test_rp(/*max_retries=*/1));
  model->add_script(0, 1, {.data = {-1, -1}, .ack = {}});
  machine.model = model;

  Engine engine(2, machine, /*seed=*/1, EngineBackend::kThreads);
  EXPECT_THROW(
      engine.run([&](Comm& comm) { run_exchange(comm, /*reverse=*/false); }),
      NetworkError);
  engine.run([&](Comm& comm) { run_exchange(comm, /*reverse=*/true); });
}

// Harness-level fault behavior.

harness::RunConfig ams_config() {
  harness::RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 400;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.ams.levels = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(Faults, ZeroLossModelBitIdenticalToCleanAndNoRetransmits) {
  // A lossy model with rate 0 still routes every send through the
  // ack/retransmit protocol — and must be bit-identical to no model at all,
  // with the stats counters proving zero protocol activity.
  const auto clean = harness::run_sort_experiment(ams_config());

  auto cfg = ams_config();
  cfg.machine.model =
      std::make_shared<LossModel>(0.0, 0.0, RetransmitParams{}, cfg.seed);
  const auto lossy = harness::run_sort_experiment(cfg);

  EXPECT_EQ(lossy.report.wall_time, clean.report.wall_time);
  EXPECT_EQ(lossy.report.phase_max, clean.report.phase_max);
  EXPECT_EQ(lossy.report.max_messages_sent, clean.report.max_messages_sent);
  EXPECT_EQ(lossy.report.total_bytes_sent, clean.report.total_bytes_sent);
  EXPECT_EQ(lossy.check.imbalance, clean.check.imbalance);
  EXPECT_TRUE(lossy.check.ok());
  EXPECT_EQ(lossy.faults(), FaultTotals{});  // zero retransmits, zero drops
}

TEST(Faults, FaultConfigAllDefaultsBuildsNoModel) {
  FaultConfig fc;
  EXPECT_FALSE(fc.any());
  EXPECT_EQ(fc.build(16, 1), nullptr);
  fc.loss = 1e-3;
  EXPECT_TRUE(fc.any());
  EXPECT_NE(fc.build(16, 1), nullptr);
  FaultConfig ack_only;
  ack_only.ack_loss = 0.2;
  EXPECT_TRUE(ack_only.any());
  EXPECT_NE(ack_only.build(16, 1), nullptr);
}

TEST(Faults, LossInflatesVirtualTimeMonotonically) {
  // Drop decisions are hashed once per attempt and compared against the
  // rate, so drop sets are nested across rates and inflation is monotone.
  double prev = -1;
  FaultTotals high_rate_faults;
  for (const double loss : {0.0, 1e-3, 1e-2, 5e-2}) {
    auto cfg = ams_config();
    cfg.faults.loss = loss;
    const auto res = harness::run_sort_experiment(cfg);
    EXPECT_TRUE(res.check.ok()) << "loss=" << loss;
    EXPECT_GE(res.report.wall_time, prev) << "loss=" << loss;
    prev = res.report.wall_time;
    high_rate_faults = res.faults();
  }
  // At 5% per-attempt loss over thousands of attempts, retransmissions are
  // statistically certain; if this ever fires the loss path is dead code.
  EXPECT_GT(high_rate_faults.retransmits, 0);
  EXPECT_GT(high_rate_faults.data_drops, 0);
}

TEST(Faults, AckLossAloneCausesDuplicateDataNotDataLoss) {
  auto cfg = ams_config();
  cfg.faults.ack_loss = 0.1;  // data is never dropped, only acks
  cfg.faults.retransmit.max_retries = 6;  // exhaustion odds negligible
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  EXPECT_EQ(res.faults().data_drops, 0);
  EXPECT_GT(res.faults().ack_drops, 0);
  EXPECT_GT(res.faults().retransmits, 0);
  // Every ack-loss retransmission delivers a suppressed duplicate copy.
  EXPECT_EQ(res.faults().dup_data, res.faults().retransmits);
}

TEST(Faults, StragglerDilatesComputeAndSlowsTheRun) {
  const auto clean = harness::run_sort_experiment(ams_config());
  auto cfg = ams_config();
  cfg.faults.stragglers = 2;
  cfg.faults.straggle_factor = 8.0;
  const auto slow = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(slow.check.ok());
  EXPECT_GT(slow.report.wall_time, clean.report.wall_time);
  EXPECT_EQ(slow.faults(), FaultTotals{});  // dilation is not a network fault

  // Same seed → same stragglers → bit-identical rerun.
  const auto again = harness::run_sort_experiment(cfg);
  EXPECT_EQ(again.report.wall_time, slow.report.wall_time);
}

TEST(Faults, StragglerSelectionIsSeededAndDistinct) {
  const StragglerModel a(64, 4, 2.0, /*seed=*/9);
  const StragglerModel b(64, 4, 2.0, /*seed=*/9);
  EXPECT_EQ(a.stragglers(), b.stragglers());
  ASSERT_EQ(a.stragglers().size(), 4u);
  for (const int pe : a.stragglers()) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 64);
    EXPECT_EQ(a.compute_dilation(pe), 2.0);
  }
  int dilated = 0;
  for (int pe = 0; pe < 64; ++pe)
    if (a.compute_dilation(pe) > 1.0) ++dilated;
  EXPECT_EQ(dilated, 4);
  // Count clamps to p.
  const StragglerModel all(8, 100, 3.0, 1);
  EXPECT_EQ(all.stragglers().size(), 8u);
}

TEST(Faults, JitterInflatesAndReplaysBitIdentically) {
  const auto clean = harness::run_sort_experiment(ams_config());
  auto cfg = ams_config();
  cfg.faults.jitter_sigma = 0.5;
  const auto jittered = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(jittered.check.ok());
  // exp(σ|g|) ≥ 1 stretches every message, never shortens one.
  EXPECT_GT(jittered.report.wall_time, clean.report.wall_time);
  EXPECT_EQ(jittered.faults(), FaultTotals{});  // jitter alone is lossless

  const auto again = harness::run_sort_experiment(cfg);
  EXPECT_EQ(again.report.wall_time, jittered.report.wall_time);
  EXPECT_EQ(again.report.phase_max, jittered.report.phase_max);
}

TEST(Faults, ComposedFaultsStillSortAndReplay) {
  auto cfg = ams_config();
  cfg.faults.loss = 1e-2;
  cfg.faults.jitter_sigma = 0.3;
  cfg.faults.stragglers = 1;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  const auto again = harness::run_sort_experiment(cfg);
  EXPECT_EQ(again.report.wall_time, res.report.wall_time);
  EXPECT_EQ(again.faults(), res.faults());
}

}  // namespace
}  // namespace pmps::net
