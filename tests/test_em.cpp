// Tests for the out-of-core subsystem (src/em/): block-granular run
// storage, the external multiway merge and its edge cases (empty runs,
// single-block runs, all-equal keys), out-of-core local sort, and the
// spill-vs-in-memory equivalence of the AMS/RLM/GV sorters — bit-identical
// outputs, identical verify checksums, identical virtual time.

#include <gtest/gtest.h>
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "ams/ams_sort.hpp"
#include "baseline/gv_sample_sort.hpp"
#include "common/random.hpp"
#include "common/types.hpp"
#include "em/block_file.hpp"
#include "em/external_merge.hpp"
#include "em/run_cursor.hpp"
#include "em/run_store.hpp"
#include "harness/runner.hpp"
#include "harness/verify.hpp"
#include "harness/workloads.hpp"
#include "net/engine.hpp"
#include "rlm/rlm_sort.hpp"

namespace pmps {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::Workload;

/// Tiny blocks (8 elements) so even small tests span many blocks.
em::MemoryBudget tiny_blocks(em::SpillStats* stats = nullptr) {
  em::MemoryBudget b;
  b.bytes = 1;  // enabled; per-call sites decide via should_spill
  b.block_bytes = 8 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  b.stats = stats;
  return b;
}

// ---------------------------------------------------------------------------
// RunStore / RunCursor
// ---------------------------------------------------------------------------

TEST(RunStore, RoundTripsRunsOfAllShapes) {
  em::SpillStats stats;
  auto budget = tiny_blocks(&stats);
  em::RunStore<std::uint64_t> store(budget);
  ASSERT_EQ(store.elems_per_block(), 8);

  // Empty, single-element, block-1, exact block, block+1, 3.5 blocks.
  const std::vector<std::size_t> lens{0, 1, 7, 8, 9, 28};
  std::vector<std::vector<std::uint64_t>> runs;
  std::uint64_t v = 100;
  for (auto len : lens) {
    std::vector<std::uint64_t> r;
    for (std::size_t i = 0; i < len; ++i) r.push_back(v++);
    store.append_run({r.data(), r.size()});
    runs.push_back(std::move(r));
  }

  ASSERT_EQ(store.runs(), static_cast<int>(lens.size()));
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    EXPECT_EQ(store.run_size(static_cast<int>(i)),
              static_cast<std::int64_t>(lens[i]));
    expect.insert(expect.end(), runs[i].begin(), runs[i].end());
  }
  EXPECT_EQ(store.take_all(), expect);
  EXPECT_EQ(stats.totals().runs_written, static_cast<std::int64_t>(lens.size()));
  // 0 + 1 + 1 + 1 + 2 + 4 block writes.
  EXPECT_EQ(stats.totals().blocks_written, 9);
  EXPECT_EQ(stats.totals().bytes_written,
            static_cast<std::int64_t>(expect.size() * sizeof(std::uint64_t)));
}

TEST(RunStore, CursorWindowsWalkBlockByBlock) {
  auto budget = tiny_blocks();
  em::RunStore<std::uint64_t> store(budget);
  std::vector<std::uint64_t> run;
  for (std::uint64_t i = 0; i < 20; ++i) run.push_back(i * 3);
  store.append_run({run.data(), run.size()});

  em::RunCursor<std::uint64_t> cur(&store, 0);
  std::vector<std::uint64_t> seen;
  std::vector<std::size_t> window_sizes;
  for (auto w = cur.next_window(); !w.empty(); w = cur.next_window()) {
    window_sizes.push_back(w.size());
    seen.insert(seen.end(), w.begin(), w.end());
  }
  EXPECT_EQ(window_sizes, (std::vector<std::size_t>{8, 8, 4}));
  EXPECT_EQ(seen, run);
  EXPECT_EQ(cur.remaining(), 0);
}

// ---------------------------------------------------------------------------
// BlockFile slot arithmetic (fat elements, multi-slot appends)
// ---------------------------------------------------------------------------

TEST(BlockFile, SlotsForBoundaries) {
  em::BlockFile file(64);
  EXPECT_EQ(file.block_bytes(), 64);
  EXPECT_EQ(file.slots_for(0), 1);   // empty append still reserves its slot
  EXPECT_EQ(file.slots_for(1), 1);
  EXPECT_EQ(file.slots_for(63), 1);
  EXPECT_EQ(file.slots_for(64), 1);  // exact fit
  EXPECT_EQ(file.slots_for(65), 2);  // one byte over
  EXPECT_EQ(file.slots_for(100), 2); // a Record100 in 64-byte blocks
  EXPECT_EQ(file.slots_for(128), 2);
  EXPECT_EQ(file.slots_for(129), 3);
}

TEST(BlockFile, MultiSlotAppendsRoundTripAtEveryOffset) {
  // Appends larger than a block span contiguous slots; interleaved small
  // appends land in their own slots and nothing overlaps.
  em::BlockFile file(16);
  std::vector<std::byte> big(40);   // 3 slots
  std::vector<std::byte> small(5);  // 1 slot
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::byte>(i + 1);
  for (std::size_t i = 0; i < small.size(); ++i)
    small[i] = static_cast<std::byte>(0xa0 + i);

  const auto s1 = file.append({big.data(), big.size()});
  const auto s2 = file.append({small.data(), small.size()});
  const auto s3 = file.append({big.data(), big.size()});
  EXPECT_EQ(s2, s1 + 3);
  EXPECT_EQ(s3, s2 + 1);
  EXPECT_EQ(file.blocks(), 7);

  std::vector<std::byte> back(big.size());
  file.read(s3, 0, {back.data(), back.size()});
  EXPECT_EQ(back, big);
  // Reads at a byte offset crossing the slot boundary of one append.
  std::vector<std::byte> tail(big.size() - 10);
  file.read(s1, 10, {tail.data(), tail.size()});
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), big.begin() + 10));
  std::vector<std::byte> mid(small.size());
  file.read(s2, 0, {mid.data(), mid.size()});
  EXPECT_EQ(mid, small);
}

TEST(BlockFile, RecordsFatterThanBlocksRoundTripThroughRunStore) {
  // sizeof(Record100) = 100 > block_bytes = 64: every element append takes
  // two slots and the byte-size arithmetic must stay exact.
  static_assert(sizeof(Record100) == 100);
  em::SpillStats stats;
  em::MemoryBudget budget;
  budget.bytes = 1;
  budget.block_bytes = 64;
  budget.stats = &stats;
  em::RunStore<Record100> store(budget);
  ASSERT_EQ(store.elems_per_block(), 1);

  std::vector<Record100> run(7);
  for (std::size_t i = 0; i < run.size(); ++i) {
    for (auto& b : run[i].key) b = static_cast<std::uint8_t>(i);
    run[i].payload.fill(static_cast<std::uint8_t>(0x40 + i));
  }
  store.append_run({run.data(), run.size()});
  for (std::size_t i = 0; i < run.size(); ++i) {
    const Record100 rec = store.read_element(static_cast<std::int64_t>(i));
    EXPECT_EQ(std::memcmp(&rec, &run[i], sizeof(Record100)), 0) << "pos " << i;
  }
  std::vector<Record100> mid(3);
  store.read_range(2, {mid.data(), mid.size()});
  EXPECT_EQ(std::memcmp(mid.data(), run.data() + 2, 3 * sizeof(Record100)), 0);
  EXPECT_EQ(stats.totals().bytes_written,
            static_cast<std::int64_t>(run.size() * sizeof(Record100)));
}

// ---------------------------------------------------------------------------
// External merge edge cases
// ---------------------------------------------------------------------------

TEST(ExternalMerge, EmptyStore) {
  auto budget = tiny_blocks();
  em::RunStore<std::uint64_t> store(budget);
  EXPECT_TRUE(em::merge_runs(store).empty());
}

TEST(ExternalMerge, EmptyRunsAmongNonEmpty) {
  auto budget = tiny_blocks();
  em::RunStore<std::uint64_t> store(budget);
  const std::vector<std::uint64_t> a{1, 4, 9};
  const std::vector<std::uint64_t> b{2, 2, 7};
  store.append_run({});                  // leading empty run
  store.append_run({a.data(), a.size()});
  store.append_run({});                  // middle empty run
  store.append_run({b.data(), b.size()});
  store.append_run({});                  // trailing empty run
  EXPECT_EQ(em::merge_runs(store),
            (std::vector<std::uint64_t>{1, 2, 2, 4, 7, 9}));
}

TEST(ExternalMerge, SingleBlockRuns) {
  auto budget = tiny_blocks();
  em::RunStore<std::uint64_t> store(budget);
  std::vector<std::vector<std::uint64_t>> runs{{5, 6}, {1, 9}, {3}};
  std::vector<std::uint64_t> expect;
  for (auto& r : runs) {
    store.append_run({r.data(), r.size()});
    expect.insert(expect.end(), r.begin(), r.end());
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(em::merge_runs(store), expect);
}

TEST(ExternalMerge, AllEqualKeysAcrossRunsIsRunStable) {
  // All keys equal, payloads tag the origin run: the external merge must
  // emit runs in run-index order — the same stability contract as the
  // in-memory seq::multiway_merge, hence bit-identical results.
  struct KV {  // (key, origin run)
    std::uint64_t key;
    int run;
  };
  struct KeyLess {
    bool operator()(const KV& a, const KV& b) const { return a.key < b.key; }
  };
  em::MemoryBudget budget;
  budget.bytes = 1;
  budget.block_bytes = 4 * static_cast<std::int64_t>(sizeof(KV));
  em::RunStore<KV> store(budget);
  std::vector<std::vector<KV>> runs;
  for (int r = 0; r < 6; ++r) {
    runs.emplace_back(static_cast<std::size_t>(10 + r), KV{42, r});
    store.append_run({runs.back().data(), runs.back().size()});
  }
  const auto out = em::merge_runs(store, KeyLess{});
  const auto expect = seq::multiway_merge(runs, KeyLess{});
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, expect[i].key) << "position " << i;
    EXPECT_EQ(out[i].run, expect[i].run) << "position " << i;
  }
}

TEST(ExternalMerge, RandomizedMatchesInMemoryMerge) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    auto budget = tiny_blocks();
    em::RunStore<std::uint64_t> store(budget);
    std::vector<std::vector<std::uint64_t>> runs(
        static_cast<std::size_t>(1 + rng.bounded(12)));
    for (auto& r : runs) {
      const auto len = rng.bounded(100);
      for (std::uint64_t i = 0; i < len; ++i) r.push_back(rng.bounded(50));
      std::sort(r.begin(), r.end());
      store.append_run({r.data(), r.size()});
    }
    EXPECT_EQ(em::merge_runs(store), seq::multiway_merge(runs))
        << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Multi-pass merge (fan-in bounded by the budget)
// ---------------------------------------------------------------------------

TEST(MultiPassMerge, ManyRunsUnderTinyFaninMatchInMemorySort) {
  // 40 runs with budget/block = 2 ⇒ fan-in 2 ⇒ ~6 merge passes. The result
  // must equal a plain stable in-memory sort of the concatenation.
  em::SpillStats stats;
  em::MemoryBudget budget;
  budget.bytes = 2 * 8 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.block_bytes = 8 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.stats = &stats;
  em::RunStore<std::uint64_t> store(budget);

  Xoshiro256 rng(17);
  std::vector<std::uint64_t> all;
  for (int r = 0; r < 40; ++r) {
    std::vector<std::uint64_t> run(static_cast<std::size_t>(rng.bounded(30)));
    for (auto& v : run) v = rng.bounded(64);
    std::sort(run.begin(), run.end());
    store.append_run({run.data(), run.size()});
    all.insert(all.end(), run.begin(), run.end());
  }
  std::stable_sort(all.begin(), all.end());
  EXPECT_EQ(em::merge_runs(store), all);
  EXPECT_GE(stats.totals().merge_passes, 4);
}

TEST(MultiPassMerge, BitIdenticalToSinglePassAndStable) {
  // The same runs merged unbounded (single pass) and with fan-in 2
  // (multi-pass) must agree element for element — including the origin-run
  // tags of equal keys, i.e. the multi-pass tree preserves the exact
  // stable order of the single-pass merge.
  struct KV {
    std::uint64_t key;
    std::uint64_t tag;  // origin (run, index), unique
  };
  struct KeyLess {
    bool operator()(const KV& a, const KV& b) const { return a.key < b.key; }
  };
  const auto build = [](em::RunStore<KV>& store) {
    Xoshiro256 rng(23);
    for (int r = 0; r < 17; ++r) {
      std::vector<KV> run(static_cast<std::size_t>(1 + rng.bounded(25)));
      for (std::size_t i = 0; i < run.size(); ++i)
        run[i] = KV{rng.bounded(8),  // heavy duplication
                    (static_cast<std::uint64_t>(r) << 32) | i};
      std::stable_sort(run.begin(), run.end(), KeyLess{});
      store.append_run({run.data(), run.size()});
    }
  };

  em::MemoryBudget wide;  // unbounded fan-in: budget disabled
  wide.block_bytes = 4 * static_cast<std::int64_t>(sizeof(KV));
  em::RunStore<KV> single(wide);
  build(single);
  const auto expect = em::merge_runs(single, KeyLess{});

  em::SpillStats stats;
  em::MemoryBudget narrow;
  narrow.bytes = 2 * 4 * static_cast<std::int64_t>(sizeof(KV));
  narrow.block_bytes = 4 * static_cast<std::int64_t>(sizeof(KV));
  narrow.stats = &stats;
  em::RunStore<KV> multi(narrow);
  build(multi);
  const auto got = em::merge_runs(multi, KeyLess{});

  EXPECT_GE(stats.totals().merge_passes, 3);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expect[i].key) << "position " << i;
    EXPECT_EQ(got[i].tag, expect[i].tag) << "position " << i;
  }
}

TEST(MultiPassMerge, FaninGroupsLeaveSingleRunResidueUntouched) {
  // 5 runs at fan-in 4: the pass merges runs 0–3 and must pass run 4
  // through untouched rather than rewriting it.
  em::SpillStats stats;
  em::MemoryBudget budget;
  budget.bytes = 4 * 4 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.block_bytes = 4 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.stats = &stats;
  em::RunStore<std::uint64_t> store(budget);
  std::vector<std::uint64_t> all;
  for (int r = 0; r < 5; ++r) {
    std::vector<std::uint64_t> run;
    for (int i = 0; i < 6; ++i)
      run.push_back(static_cast<std::uint64_t>(10 * i + r));
    store.append_run({run.data(), run.size()});
    all.insert(all.end(), run.begin(), run.end());
  }
  const std::int64_t written_before = stats.totals().bytes_written;
  std::sort(all.begin(), all.end());
  EXPECT_EQ(em::merge_runs(store), all);
  EXPECT_EQ(stats.totals().merge_passes, 1);
  // The pass rewrote the four merged runs (24 elements), not the fifth.
  EXPECT_EQ(stats.totals().bytes_written - written_before,
            static_cast<std::int64_t>(24 * sizeof(std::uint64_t)));
}

// ---------------------------------------------------------------------------
// external_sort
// ---------------------------------------------------------------------------

TEST(ExternalSort, MatchesInMemorySort) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    std::vector<std::uint64_t> data(
        static_cast<std::size_t>(rng.bounded(5000)));
    for (auto& v : data) v = rng.bounded(1000);  // duplicates likely
    auto expect = data;
    std::sort(expect.begin(), expect.end());

    em::SpillStats stats;
    em::MemoryBudget budget;
    budget.bytes = 512 * static_cast<std::int64_t>(sizeof(std::uint64_t));
    budget.block_bytes = 64 * static_cast<std::int64_t>(sizeof(std::uint64_t));
    budget.stats = &stats;
    em::external_sort(data, budget);
    EXPECT_EQ(data, expect) << "seed=" << seed;
    if (expect.size() > 512) {
      EXPECT_GT(stats.totals().runs_written, 1) << "seed=" << seed;
      EXPECT_GT(stats.totals().bytes_written, 0) << "seed=" << seed;
      EXPECT_EQ(stats.totals().bytes_read, stats.totals().bytes_written);
    }
  }
}

TEST(ExternalSort, EmptyAndTinyInputs) {
  em::MemoryBudget budget = tiny_blocks();
  std::vector<std::uint64_t> empty;
  em::external_sort(empty, budget);
  EXPECT_TRUE(empty.empty());

  std::vector<std::uint64_t> one{7};
  em::external_sort(one, budget);
  EXPECT_EQ(one, (std::vector<std::uint64_t>{7}));
}

// ---------------------------------------------------------------------------
// Spill-vs-in-memory equivalence of the sorters
// ---------------------------------------------------------------------------

/// Runs `algo` at p=8, n_per_pe=600 and returns (per-PE outputs, report).
struct SortOutcome {
  std::vector<std::vector<std::uint64_t>> per_pe;
  net::RunReport report;
  bool verified = false;
};

SortOutcome run_capturing(Algorithm algo, Workload workload,
                          std::int64_t budget_bytes, std::uint64_t seed,
                          em::SpillStats* stats = nullptr) {
  constexpr int kP = 8;
  constexpr std::int64_t kNPerPe = 600;
  net::Engine engine(kP, net::MachineParams::supermuc_like(), seed);
  SortOutcome out;
  out.per_pe.resize(kP);
  std::mutex mu;

  em::MemoryBudget budget;
  budget.bytes = budget_bytes;
  budget.block_bytes = 128 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  budget.stats = stats;

  engine.run([&](net::Comm& comm) {
    auto data =
        harness::make_workload(workload, comm.rank(), kP, kNPerPe, seed);
    const auto in_hash = harness::content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));

    switch (algo) {
      case Algorithm::kAms: {
        ams::AmsConfig cfg;
        cfg.levels = 2;
        cfg.seed = seed;
        cfg.budget = budget;
        ams::ams_sort(comm, data, cfg);
        break;
      }
      case Algorithm::kRlm: {
        rlm::RlmConfig cfg;
        cfg.levels = 2;
        cfg.seed = seed;
        cfg.budget = budget;
        rlm::rlm_sort(comm, data, cfg);
        break;
      }
      case Algorithm::kGvSampleSort: {
        baseline::GvConfig cfg;
        cfg.levels = 2;
        cfg.seed = seed;
        cfg.budget = budget;
        baseline::gv_sample_sort(comm, data, cfg);
        break;
      }
      default:
        FAIL() << "unsupported algorithm in this test";
    }

    const auto check = harness::verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()),
        in_hash, kNPerPe);
    std::lock_guard lock(mu);
    out.per_pe[static_cast<std::size_t>(comm.rank())] = std::move(data);
    if (comm.rank() == 0) out.verified = check.ok();
  });
  out.report = engine.report();
  return out;
}

class SpillEquivalence
    : public ::testing::TestWithParam<std::tuple<Algorithm, Workload>> {};

TEST_P(SpillEquivalence, BitIdenticalToInMemoryPath) {
  const auto [algo, workload] = GetParam();
  // 600 × 8 bytes = 4800 bytes per PE; a 1 KiB budget forces spilling at
  // every stage, in runs of many blocks.
  em::SpillStats stats;
  const auto spill = run_capturing(algo, workload, 1024, /*seed=*/3, &stats);
  const auto plain = run_capturing(algo, workload, 0, /*seed=*/3);

  EXPECT_TRUE(spill.verified);
  EXPECT_TRUE(plain.verified);
  EXPECT_GT(stats.totals().bytes_written, 0) << "budget did not trigger";

  // Bit-identical outputs, PE by PE.
  ASSERT_EQ(spill.per_pe.size(), plain.per_pe.size());
  for (std::size_t pe = 0; pe < spill.per_pe.size(); ++pe)
    EXPECT_EQ(spill.per_pe[pe], plain.per_pe[pe]) << "PE " << pe;

  // Spilling is invisible to virtual time: same clock, same traffic.
  EXPECT_DOUBLE_EQ(spill.report.wall_time, plain.report.wall_time);
  EXPECT_EQ(spill.report.max_messages_sent, plain.report.max_messages_sent);
  EXPECT_EQ(spill.report.total_bytes_sent, plain.report.total_bytes_sent);
}

INSTANTIATE_TEST_SUITE_P(
    Sorters, SpillEquivalence,
    ::testing::Combine(::testing::Values(Algorithm::kAms, Algorithm::kRlm,
                                         Algorithm::kGvSampleSort),
                       ::testing::Values(Workload::kUniform,
                                         Workload::kAllEqual,
                                         Workload::kSortedGlobal)));

// ---------------------------------------------------------------------------
// Acceptance: over-budget AMS through the harness
// ---------------------------------------------------------------------------

TEST(OverBudgetHarness, AmsSortExceedingBudgetCompletesAndVerifies) {
  RunConfig cfg;
  cfg.p = 8;
  cfg.n_per_pe = 1000;  // 8000 bytes per PE
  cfg.algorithm = Algorithm::kAms;
  cfg.budget.bytes = 2048;  // force out-of-core
  cfg.budget.block_bytes = 1024;
  cfg.seed = 11;
  const auto spilled = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(spilled.check.ok());
  EXPECT_GT(spilled.spill.bytes_written, 0);
  EXPECT_GT(spilled.spill.external_sorts, 0);

  cfg.budget = {};
  const auto plain = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(plain.check.ok());
  EXPECT_EQ(plain.spill.bytes_written, 0);
  // Same virtual time and traffic — the spill path exchanged the same
  // messages and charged the same local work.
  EXPECT_DOUBLE_EQ(spilled.report.wall_time, plain.report.wall_time);
  // Streaming classification is two-pass (count, then scatter), so spilled
  // partitions are read more than once; every read still comes from a prior
  // write.
  EXPECT_GE(spilled.spill.bytes_read, spilled.spill.bytes_written);
}

// ---------------------------------------------------------------------------
// Shared spill file under fd pressure
// ---------------------------------------------------------------------------

TEST(SharedSpillFile, BudgetedSortAtP256CompletesUnderNofile64) {
  // 256 spilling PEs with RLIMIT_NOFILE lowered to 64 in-process: only the
  // job-wide shared BlockFile makes this possible (per-PE tmpfiles would
  // need 256 descriptors). Lowering the soft limit is process-wide and
  // irreversible for an unprivileged process, but each gtest case runs as
  // its own ctest process, so nothing leaks into other tests.
  struct rlimit lim;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &lim), 0);
  lim.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lim), 0);

  RunConfig cfg;
  cfg.p = 256;
  cfg.n_per_pe = 300;  // 2400 bytes per PE
  cfg.algorithm = Algorithm::kAms;
  cfg.budget.bytes = 512;  // every PE spills at every stage
  cfg.budget.block_bytes = 256;
  cfg.seed = 5;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  EXPECT_GT(res.spill.bytes_written, 0);
  EXPECT_GT(res.spill.merge_passes, 0);
}

// ---------------------------------------------------------------------------
// Record100 through the spill path
// ---------------------------------------------------------------------------

TEST(Record100Spill, PayloadProvenanceSurvivesBudgetedShuffle) {
  // Records carry a payload stamped with the origin rank. After a budgeted
  // AMS sort the output must be key-sorted, the multiset of *whole records*
  // must be preserved (every record's 90 payload bytes still attached to
  // its key — byte-level provenance), and the result must be bit-identical
  // to the in-memory run.
  constexpr int kP = 8;
  constexpr std::int64_t kNPerPe = 400;  // 40 KB per PE
  const auto run = [&](std::int64_t budget_bytes) {
    net::Engine engine(kP, net::MachineParams::supermuc_like(), 7);
    std::vector<std::vector<Record100>> per_pe(kP);
    std::mutex mu;
    engine.run([&](net::Comm& comm) {
      auto data = harness::make_record_workload(comm.rank(), kP, kNPerPe, 7);
      ams::AmsConfig cfg;
      cfg.levels = 2;
      cfg.seed = 7;
      cfg.budget.bytes = budget_bytes;
      cfg.budget.block_bytes = 1024;
      ams::ams_sort(comm, data, cfg);
      std::lock_guard lock(mu);
      per_pe[static_cast<std::size_t>(comm.rank())] = std::move(data);
    });
    return per_pe;
  };

  const auto spilled = run(4096);  // 10% of the payload resident
  const auto plain = run(0);

  std::vector<Record100> expect;
  for (int pe = 0; pe < kP; ++pe) {
    auto in = harness::make_record_workload(pe, kP, kNPerPe, 7);
    expect.insert(expect.end(), in.begin(), in.end());
  }

  std::vector<Record100> got;
  for (const auto& part : spilled) got.insert(got.end(), part.begin(), part.end());
  ASSERT_EQ(got.size(), expect.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));

  // Multiset of whole 100-byte records preserved: order both sides by the
  // full record bytes (key AND payload) and compare byte-for-byte.
  const auto full_bytes_less = [](const Record100& a, const Record100& b) {
    return std::memcmp(&a, &b, sizeof(Record100)) < 0;
  };
  auto got_norm = got;
  std::sort(got_norm.begin(), got_norm.end(), full_bytes_less);
  std::sort(expect.begin(), expect.end(), full_bytes_less);
  EXPECT_EQ(std::memcmp(got_norm.data(), expect.data(),
                        got_norm.size() * sizeof(Record100)),
            0)
      << "payload bytes did not survive the spill path";
  for (const auto& rec : got) {
    const auto origin = rec.payload[0];
    EXPECT_LT(origin, kP);
    for (const auto b : rec.payload) EXPECT_EQ(b, origin);
  }
  for (int pe = 0; pe < kP; ++pe) {
    ASSERT_EQ(spilled[static_cast<std::size_t>(pe)].size(),
              plain[static_cast<std::size_t>(pe)].size());
    EXPECT_EQ(std::memcmp(spilled[static_cast<std::size_t>(pe)].data(),
                          plain[static_cast<std::size_t>(pe)].data(),
                          plain[static_cast<std::size_t>(pe)].size() *
                              sizeof(Record100)),
              0)
        << "PE " << pe << " budgeted output differs from in-memory";
  }
}

}  // namespace
}  // namespace pmps
