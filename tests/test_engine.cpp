// Tests for the simulated cluster runtime: machine model, mailboxes,
// virtual clocks, determinism, communicator splitting, phase accounting.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ams/ams_sort.hpp"
#include "coll/collectives.hpp"
#include "harness/runner.hpp"
#include "harness/workloads.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"
#include "net/machine.hpp"

namespace pmps::net {
namespace {

TEST(Machine, LevelBetween) {
  auto m = MachineParams::supermuc_like();
  EXPECT_EQ(m.level_between(0, 0), LinkLevel::kSelf);
  EXPECT_EQ(m.level_between(0, 15), LinkLevel::kNode);
  EXPECT_EQ(m.level_between(0, 16), LinkLevel::kIsland);
  EXPECT_EQ(m.level_between(0, 16 * 512 - 1), LinkLevel::kIsland);
  EXPECT_EQ(m.level_between(0, 16 * 512), LinkLevel::kGlobal);
  EXPECT_EQ(m.level_between(16 * 512, 16 * 512 + 3), LinkLevel::kNode);
}

TEST(Machine, CostsMonotone) {
  auto m = MachineParams::supermuc_like();
  EXPECT_LT(m.message_cost(LinkLevel::kNode, 1000),
            m.message_cost(LinkLevel::kIsland, 1000));
  EXPECT_LT(m.message_cost(LinkLevel::kIsland, 1000),
            m.message_cost(LinkLevel::kGlobal, 1000));
  EXPECT_LT(m.sort_cost(1000), m.sort_cost(100000));
  EXPECT_GT(m.sort_cost(1000), 0);
  EXPECT_EQ(m.sort_cost(0), 0);
}

TEST(Engine, RunsAllPes) {
  Engine engine(8, MachineParams::supermuc_like());
  std::atomic<int> count{0};
  engine.run([&](Comm& comm) {
    EXPECT_EQ(comm.size(), 8);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 8);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Engine, PointToPointMovesData) {
  Engine engine(4, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    const std::uint64_t tag = comm.next_tag_block();
    if (comm.rank() == 0) {
      std::vector<std::int64_t> payload{1, 2, 3};
      comm.send<std::int64_t>(1, tag, payload);
    } else if (comm.rank() == 1) {
      auto v = comm.recv<std::int64_t>(0, tag);
      EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2, 3}));
    }
  });
}

TEST(Engine, VirtualTimeAdvancesOnMessages) {
  Engine engine(2, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    const std::uint64_t tag = comm.next_tag_block();
    if (comm.rank() == 0) {
      std::vector<std::int64_t> payload(1000, 7);
      comm.send<std::int64_t>(1, tag, payload);
      EXPECT_GT(comm.now(), 0.0);
    } else {
      (void)comm.recv<std::int64_t>(0, tag);
      EXPECT_GT(comm.now(), 0.0);
    }
  });
  // Receiver cannot finish before sender.
  EXPECT_GE(engine.pe_context(1).clock, engine.pe_context(0).clock * 0.99);
  EXPECT_GT(engine.report().wall_time, 0.0);
  EXPECT_EQ(engine.report().max_messages_sent, 1);
  EXPECT_EQ(engine.report().max_messages_received, 1);
}

TEST(Engine, SelfSendIsNotAMessage) {
  Engine engine(2, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    const std::uint64_t tag = comm.next_tag_block();
    std::vector<std::int64_t> payload{int64_t{42}};
    comm.send<std::int64_t>(comm.rank(), tag, payload);
    auto v = comm.recv<std::int64_t>(comm.rank(), tag);
    EXPECT_EQ(v[0], 42);
  });
  EXPECT_EQ(engine.report().max_messages_sent, 0);
}

TEST(Engine, DeterministicVirtualTime) {
  auto run_once = [] {
    Engine engine(16, MachineParams::supermuc_like(), /*seed=*/5);
    engine.run([&](Comm& comm) {
      std::vector<std::int64_t> v{comm.rank()};
      v = coll::allreduce_add(comm, std::move(v));
      coll::barrier(comm);
    });
    return engine.report().wall_time;
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
}

TEST(Engine, FreeModeChargesNothing) {
  Engine engine(4, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    {
      FreeModeGuard guard(comm.ctx());
      coll::barrier(comm);
      std::vector<std::int64_t> v{1};
      v = coll::allreduce_add(comm, std::move(v));
      EXPECT_EQ(v[0], 4);
    }
    EXPECT_EQ(comm.now(), 0.0);
  });
  EXPECT_EQ(engine.report().wall_time, 0.0);
  EXPECT_EQ(engine.report().max_messages_sent, 0);
}

TEST(Engine, PhaseAccounting) {
  Engine engine(2, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    comm.set_phase(Phase::kLocalSort);
    comm.charge(1.0);
    comm.set_phase(Phase::kDataDelivery);
    comm.charge(0.5);
  });
  const auto rep = engine.report();
  EXPECT_DOUBLE_EQ(rep.phase(Phase::kLocalSort), 1.0);
  EXPECT_DOUBLE_EQ(rep.phase(Phase::kDataDelivery), 0.5);
  EXPECT_DOUBLE_EQ(rep.wall_time, 1.5);
}

TEST(Engine, SplitConsecutive) {
  Engine engine(8, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    Comm sub = comm.split_consecutive(4);  // 4 groups of 2
    EXPECT_EQ(sub.size(), 2);
    EXPECT_EQ(sub.rank(), comm.rank() % 2);
    EXPECT_EQ(sub.member(sub.rank()), comm.rank());
    // Virtual time unaffected by split.
    EXPECT_EQ(comm.now(), 0.0);
    // Sub-communicator works for messaging.
    const std::uint64_t tag = sub.next_tag_block();
    if (sub.rank() == 0) {
      sub.send_one<std::int64_t>(1, tag, comm.rank());
    } else {
      const auto v = sub.recv_one<std::int64_t>(0, tag);
      EXPECT_EQ(v, comm.rank() - 1);
    }
  });
}

TEST(Engine, SplitByColorAndKey) {
  Engine engine(6, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    // Odd/even split with reversed key order.
    Comm sub = comm.split(comm.rank() % 2, -comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Reversed ranks: highest original rank gets rank 0.
    const int expected_rank = (5 - comm.rank()) / 2;
    EXPECT_EQ(sub.rank(), expected_rank);
  });
}

TEST(Engine, NoisePerturbsTimesDeterministically) {
  auto noisy = MachineParams::supermuc_like();
  noisy.comm_noise_frac = 0.3;
  auto run_once = [&](std::uint64_t seed) {
    Engine engine(8, noisy, seed);
    engine.run([&](Comm& comm) { coll::barrier(comm); });
    return engine.report().wall_time;
  };
  EXPECT_EQ(run_once(1), run_once(1));   // same seed → same time
  EXPECT_NE(run_once(1), run_once(2));   // noise depends on seed
}

TEST(Engine, ManyPes) {
  Engine engine(128, MachineParams::supermuc_like());
  engine.run([&](Comm& comm) {
    const auto v = coll::allreduce_add_one(comm, 1);
    EXPECT_EQ(v, 128);
  });
}

TEST(Engine, FiberSchedulerHandlesLargePeCounts) {
  // The point of the fiber backend: PE counts far beyond what one OS thread
  // per PE could sustain. p = 1024 with communication-heavy collectives.
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  Engine engine(1024, MachineParams::supermuc_like(), /*seed=*/3,
                EngineBackend::kFibers);
  ASSERT_EQ(engine.backend(), EngineBackend::kFibers);
  engine.run([&](Comm& comm) {
    const auto v = coll::allreduce_add_one(comm, 1);
    EXPECT_EQ(v, 1024);
    coll::barrier(comm);
  });
  EXPECT_GT(engine.report().wall_time, 0.0);
}

// Everything a run produces, observable per PE — used to assert that the
// fiber scheduler and the legacy thread backend are bit-for-bit identical.
struct RunObservation {
  std::vector<double> clocks;
  std::vector<std::array<double, kNumPhases>> phase_times;
  std::vector<std::int64_t> messages_sent;
  std::vector<std::vector<std::uint64_t>> outputs;

  friend bool operator==(const RunObservation&, const RunObservation&) =
      default;
};

RunObservation run_ams_under(EngineBackend backend, int p,
                             std::int64_t n_per_pe, std::uint64_t seed) {
  Engine engine(p, MachineParams::supermuc_like(), seed, backend);
  RunObservation obs;
  obs.outputs.resize(static_cast<std::size_t>(p));
  engine.run([&](Comm& comm) {
    auto data = harness::make_workload(harness::Workload::kUniform,
                                       comm.rank(), p, n_per_pe, seed);
    ams::AmsConfig cfg;
    cfg.levels = 2;
    cfg.seed = seed;
    ams::ams_sort(comm, data, cfg);
    obs.outputs[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  for (int i = 0; i < p; ++i) {
    const PeContext& ctx = engine.pe_context(i);
    obs.clocks.push_back(ctx.clock);
    obs.phase_times.push_back(ctx.stats.phase_time);
    obs.messages_sent.push_back(ctx.stats.messages_sent);
  }
  return obs;
}

TEST(Engine, FiberAndThreadBackendsBitIdentical) {
  // Same seeded AMS-sort config under both schedulers: identical virtual
  // times, identical per-phase accounting, identical sorted output on every
  // PE. Determinism must not depend on how PEs are scheduled.
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  for (const std::uint64_t seed : {1ull, 42ull}) {
    const auto fibers =
        run_ams_under(EngineBackend::kFibers, /*p=*/32, /*n_per_pe=*/300, seed);
    const auto threads = run_ams_under(EngineBackend::kThreads, 32, 300, seed);
    EXPECT_TRUE(fibers == threads) << "backends diverged for seed " << seed;
  }
}

TEST(Engine, ReportIdenticalAcrossBackendsWithNoise) {
  // Noise streams are per-PE RNGs, so even noisy configs must agree.
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  auto noisy = MachineParams::supermuc_like();
  noisy.comm_noise_frac = 0.3;
  noisy.congestion_noise_frac = 0.2;
  auto run_under = [&](EngineBackend backend) {
    Engine engine(24, noisy, /*seed=*/11, backend);
    engine.run([&](Comm& comm) {
      std::vector<std::int64_t> v{comm.rank() + 1};
      v = coll::allreduce_add(comm, std::move(v));
      coll::barrier(comm);
    });
    return engine.report();
  };
  const RunReport f = run_under(EngineBackend::kFibers);
  const RunReport t = run_under(EngineBackend::kThreads);
  EXPECT_EQ(f.wall_time, t.wall_time);
  EXPECT_EQ(f.phase_max, t.phase_max);
  EXPECT_EQ(f.max_messages_sent, t.max_messages_sent);
  EXPECT_EQ(f.max_messages_received, t.max_messages_received);
  EXPECT_EQ(f.total_bytes_sent, t.total_bytes_sent);
}

// --- clean-model golden regression -----------------------------------------
//
// The NetworkModel plug point must leave the default path untouched: these
// hexfloat summaries were captured from seeded runs *before* fault
// injection existed, and every backend / worker-count combination must
// still reproduce them byte for byte. If an intentional cost-model change
// ever shifts them, re-capture with the printf format below.

std::string canonical_summary(const harness::RunConfig& cfg) {
  const auto res = harness::run_sort_experiment(cfg);
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "wall=%a other=%a split=%a bucket=%a deliv=%a sort=%a "
      "sent=%lld recv=%lld bytes=%lld total=%lld imb=%a ok=%d",
      res.report.wall_time, res.report.phase(Phase::kOther),
      res.report.phase(Phase::kSplitterSelection),
      res.report.phase(Phase::kBucketProcessing),
      res.report.phase(Phase::kDataDelivery),
      res.report.phase(Phase::kLocalSort),
      static_cast<long long>(res.report.max_messages_sent),
      static_cast<long long>(res.report.max_messages_received),
      static_cast<long long>(res.report.total_bytes_sent),
      static_cast<long long>(res.check.total), res.check.imbalance,
      res.check.ok() ? 1 : 0);
  return buf;
}

constexpr const char* kGoldenAms =
    "wall=0x1.1c044cb0a0ac3p-13 other=0x1.930e4b587f2e5p-19 "
    "split=0x1.bf997addab314p-15 bucket=0x1.aa1fdfd579551p-16 "
    "deliv=0x1.4ae490f4eb8b7p-16 sort=0x1.1cc5243a7c5d3p-15 "
    "sent=82 recv=79 bytes=386240 total=6400 imb=0x1.3d70a3d70a3dp-4 ok=1";

constexpr const char* kGoldenRlm =
    "wall=0x1.c6f2ba86134b7p-12 other=0x1.8b3a698a542f8p-18 "
    "split=0x1.8f1aa0d157842p-12 bucket=0x1.5c0c30ef4c0aep-18 "
    "deliv=0x1.5e566eeeed7c6p-16 sort=0x1.74c0c4f302f55p-16 "
    "sent=525 recv=414 bytes=135264 total=3600 imb=0x0p+0 ok=1";

harness::RunConfig golden_ams_config() {
  harness::RunConfig cfg;
  cfg.p = 16;
  cfg.n_per_pe = 400;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.ams.levels = 2;
  cfg.seed = 7;
  return cfg;
}

harness::RunConfig golden_rlm_config() {
  harness::RunConfig cfg;
  cfg.p = 12;
  cfg.n_per_pe = 300;
  cfg.algorithm = harness::Algorithm::kRlm;
  cfg.rlm.levels = 2;
  cfg.seed = 9;
  return cfg;
}

TEST(Engine, CleanModelMatchesPreFaultInjectionGoldens) {
  EXPECT_EQ(canonical_summary(golden_ams_config()), kGoldenAms);
  EXPECT_EQ(canonical_summary(golden_rlm_config()), kGoldenRlm);
}

TEST(Engine, CleanModelGoldensHoldOnThreadBackend) {
  auto ams = golden_ams_config();
  ams.backend = EngineBackend::kThreads;
  auto rlm = golden_rlm_config();
  rlm.backend = EngineBackend::kThreads;
  EXPECT_EQ(canonical_summary(ams), kGoldenAms);
  EXPECT_EQ(canonical_summary(rlm), kGoldenRlm);
}

TEST(Engine, CleanModelGoldensHoldWithFastForwardDisabled) {
  // PMPS_COLL_FF=0 falls back to the message-by-message barrier and the
  // dense Bruck counts exchange. The fast-forward replay is only correct if
  // both paths produce the same virtual times — pin that with the goldens.
  setenv("PMPS_COLL_FF", "0", 1);
  EXPECT_EQ(canonical_summary(golden_ams_config()), kGoldenAms);
  EXPECT_EQ(canonical_summary(golden_rlm_config()), kGoldenRlm);
  unsetenv("PMPS_COLL_FF");
  // And back on (the default): still the goldens.
  EXPECT_EQ(canonical_summary(golden_ams_config()), kGoldenAms);
}

TEST(Engine, ThreadsBackendRefusesHugePeCounts) {
  // One OS thread per PE cannot scale to paper-scale p; the engine must
  // refuse with a clear error instead of exhausting the process.
  setenv("PMPS_THREADS_MAX_P", "4", 1);
  Engine engine(8, MachineParams::supermuc_like(), /*seed=*/1,
                EngineBackend::kThreads);
  EXPECT_THROW(engine.run([](Comm&) {}), std::runtime_error);
  unsetenv("PMPS_THREADS_MAX_P");
  // Under the cap the same engine runs fine.
  std::atomic<int> count{0};
  engine.run([&](Comm&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(Engine, EngineStatsReportMemoryAndFastForwardCounters) {
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  Engine engine(64, MachineParams::supermuc_like(), /*seed=*/1,
                EngineBackend::kFibers);
  engine.run([&](Comm& comm) {
    const auto v = coll::allreduce_add_one(comm, 1);
    EXPECT_EQ(v, 64);
    coll::barrier(comm);
  });
  const EngineStats es = engine.report().engine;
  EXPECT_GE(es.mailbox_shards, 1);
  EXPECT_GT(es.mailbox_nodes_total_high_water, 0);
  EXPECT_GE(es.mailbox_nodes_total_high_water, es.mailbox_node_high_water);
  EXPECT_GT(es.peak_stack_bytes, 0);
  EXPECT_GT(es.stack_bytes_reserved, 0);
  EXPECT_EQ(es.collective_fast_forwards, 1);  // the one barrier
}

TEST(Engine, StackPoolReusesStacksAcrossRuns) {
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  Engine engine(32, MachineParams::supermuc_like(), /*seed=*/1,
                EngineBackend::kFibers);
  for (int r = 0; r < 4; ++r)
    engine.run([](Comm& comm) { coll::barrier(comm); });
  const EngineStats es = engine.report().engine;
  // 4 runs × 32 fibers acquired, but the pool never needed more than one
  // run's worth of stacks: exits recycle stacks instead of unmapping them.
  EXPECT_GE(es.stack_acquires, 4 * 32);
  EXPECT_LE(es.stacks, 32 + 4);  // small slack for worker-local caching
  EXPECT_GT(es.stack_acquires, es.stacks);
}

// Touches ~64 KiB of stack, then blocks deep inside it (paired exchange with
// the neighbour PE), so the pool's residency tracking sees the deep frames.
__attribute__((noinline)) void deep_exchange(Comm& comm, std::uint64_t tag) {
  std::array<char, 64 * 1024> pad;
  pad.fill(static_cast<char>(comm.rank() + 1));
  const int partner = comm.rank() ^ 1;
  comm.send_one<std::int64_t>(partner, tag, pad[1234]);
  const auto v = comm.recv_one<std::int64_t>(partner, tag);
  EXPECT_EQ(v, partner + 1);
}

TEST(Engine, LongParkReclaimsColdStackPages) {
  // After a fiber blocked deep (64 KiB of live frames) and later parks on a
  // barrier with a shallow stack, the cold span below the parked frames goes
  // back to the kernel via madvise(MADV_DONTNEED).
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  if (!FiberPool::reclaim_supported())
    GTEST_SKIP() << "no stack reclaim on this context-switch backend";
  Engine engine(16, MachineParams::supermuc_like(), /*seed=*/1,
                EngineBackend::kFibers);
  engine.run([&](Comm& comm) {
    deep_exchange(comm, comm.next_tag_block());
    coll::barrier(comm);  // long park, shallow frames
  });
  const EngineStats es = engine.report().engine;
  EXPECT_GT(es.stack_reclaims, 0);
  EXPECT_GT(es.stack_reclaimed_bytes, 0);
  // Reclaim must not have broken the run: a second run still works and its
  // fibers re-touch the reclaimed (zero-filled) pages without issue.
  engine.run([&](Comm& comm) {
    deep_exchange(comm, comm.next_tag_block());
    coll::barrier(comm);
  });
}

TEST(Engine, FastForwardCountsTalliesDuringAmsSort) {
  // The sparse-counts rendezvous (tally_counts) replaces the free-mode dense
  // Bruck exchange inside sparse_exchange_into; an AMS sort exercises it.
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  auto cfg = golden_ams_config();
  cfg.backend = EngineBackend::kFibers;
  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.ok());
  EXPECT_GT(res.report.engine.collective_fast_forwards, 0);
  EXPECT_GT(res.report.engine.count_tallies, 0);
}

TEST(Engine, CleanModelGoldensHoldAcrossFiberWorkerCounts) {
  if (!fibers_supported()) GTEST_SKIP() << "no fiber backend on this platform";
  auto ams = golden_ams_config();
  ams.backend = EngineBackend::kFibers;
  auto rlm = golden_rlm_config();
  rlm.backend = EngineBackend::kFibers;
  const char* prev = std::getenv("PMPS_FIBER_WORKERS");
  const std::string saved = prev ? prev : "";
  for (const char* workers : {"1", "3"}) {
    // Read when the engine lazily creates its pool, i.e. inside the next
    // run_sort_experiment call.
    setenv("PMPS_FIBER_WORKERS", workers, 1);
    EXPECT_EQ(canonical_summary(ams), kGoldenAms) << "workers=" << workers;
    EXPECT_EQ(canonical_summary(rlm), kGoldenRlm) << "workers=" << workers;
  }
  if (prev) {
    setenv("PMPS_FIBER_WORKERS", saved.c_str(), 1);
  } else {
    unsetenv("PMPS_FIBER_WORKERS");
  }
}

}  // namespace
}  // namespace pmps::net
