// Property-based tests: randomized sweeps asserting the library's
// invariants over many seeds and shapes.
//
//  * sorting invariants (sorted / globally ordered / permutation) for every
//    algorithm under randomized configurations;
//  * RLM perfect balance and AMS (1+ε) balance under random seeds;
//  * delivery: conservation + group membership for random piece matrices;
//  * multiselect: rank exactness for random rank sets;
//  * grouping optimality vs brute force on random instances;
//  * virtual-time sanity: causality (receiver ≥ sender share) and
//    monotonicity of costs in message size.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "delivery/delivery.hpp"
#include "grouping/bucket_grouping.hpp"
#include "harness/runner.hpp"
#include "select/multiselect.hpp"

namespace pmps {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::Workload;

class SortFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SortFuzz, RandomConfigurationsSort) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 rng(seed * 7919 + 13);

  // Random shape.
  constexpr int kPs[] = {2, 4, 6, 8, 12, 16, 24, 32, 48};
  RunConfig cfg;
  cfg.p = kPs[rng.bounded(std::size(kPs))];
  cfg.n_per_pe = 1 + static_cast<std::int64_t>(rng.bounded(600));
  cfg.workload =
      harness::kAllWorkloads[rng.bounded(std::size(harness::kAllWorkloads))];
  constexpr Algorithm kAlgos[] = {Algorithm::kAms, Algorithm::kRlm,
                                  Algorithm::kSampleSort1L,
                                  Algorithm::kMergesort1L,
                                  Algorithm::kMpSortLike};
  cfg.algorithm = kAlgos[rng.bounded(std::size(kAlgos))];
  cfg.ams.levels = 1 + static_cast<int>(rng.bounded(3));
  cfg.rlm.levels = cfg.ams.levels;
  constexpr delivery::Algo kDel[] = {
      delivery::Algo::kSimple, delivery::Algo::kRandomized,
      delivery::Algo::kDeterministic, delivery::Algo::kAdvancedRandomized};
  cfg.ams.delivery = kDel[rng.bounded(std::size(kDel))];
  cfg.rlm.delivery = cfg.ams.delivery;
  cfg.ams.overpartition_b = 1 + static_cast<int>(rng.bounded(24));
  cfg.seed = seed;

  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted)
      << "algo=" << harness::algorithm_name(cfg.algorithm)
      << " p=" << cfg.p << " n/p=" << cfg.n_per_pe << " workload="
      << harness::workload_name(cfg.workload) << " seed=" << seed;
  EXPECT_TRUE(res.check.globally_ordered)
      << "algo=" << harness::algorithm_name(cfg.algorithm) << " seed=" << seed;
  EXPECT_TRUE(res.check.permutation_ok)
      << "algo=" << harness::algorithm_name(cfg.algorithm) << " seed=" << seed;

  if (cfg.algorithm == Algorithm::kRlm ||
      cfg.algorithm == Algorithm::kMergesort1L) {
    // Perfect balance up to rounding.
    const double quota = static_cast<double>(res.check.total) / cfg.p;
    EXPECT_LE(res.check.imbalance * quota, 1.0 + 1e-9) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortFuzz, ::testing::Range(0, 30));

class SpillFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SpillFuzz, BudgetedRunsAreBitIdenticalToInMemory) {
  // Randomized (p, n/p, budget, block size, algorithm, element type) grid:
  // a budgeted run must spill, verify, and be bit-identical to the
  // unbudgeted in-memory run — same order-dependent output signature (so
  // equal keys land in the same stable order on the same PEs) and the same
  // virtual time (spilling is invisible to the machine model).
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 rng(seed * 2654435761 + 7);

  RunConfig cfg;
  constexpr int kPs[] = {2, 4, 8, 12, 16, 24};
  cfg.p = kPs[rng.bounded(std::size(kPs))];
  cfg.n_per_pe = 64 + static_cast<std::int64_t>(rng.bounded(700));
  constexpr Algorithm kAlgos[] = {Algorithm::kAms, Algorithm::kRlm,
                                  Algorithm::kGvSampleSort};
  cfg.algorithm = kAlgos[rng.bounded(std::size(kAlgos))];
  cfg.element = rng.bounded(2) == 0 ? harness::ElementKind::kU64
                                    : harness::ElementKind::kRecord100;
  cfg.workload =
      harness::kAllWorkloads[rng.bounded(std::size(harness::kAllWorkloads))];
  cfg.ams.levels = 1 + static_cast<int>(rng.bounded(2));
  cfg.rlm.levels = cfg.ams.levels;
  cfg.seed = seed;

  const std::int64_t elem_bytes =
      cfg.element == harness::ElementKind::kRecord100 ? 100 : 8;
  const std::int64_t payload = cfg.n_per_pe * elem_bytes;
  // Budget 1/16 .. 1/2 of the payload; blocks small enough that tiny
  // budgets still bound the merge fan-in.
  constexpr std::int64_t kBlocks[] = {256, 512, 1024, 4096};
  cfg.budget.block_bytes = kBlocks[rng.bounded(std::size(kBlocks))];
  cfg.budget.bytes =
      std::max<std::int64_t>(1, payload >> (1 + rng.bounded(4)));

  const auto spilled = harness::run_sort_experiment(cfg);  // async I/O default
  // The same budgeted run with the synchronous spill path: overlap is
  // host-side scheduling only, so output and clocks must not move.
  ::setenv("PMPS_EM_IO", "sync", 1);
  const auto sync_spilled = harness::run_sort_experiment(cfg);
  ::unsetenv("PMPS_EM_IO");
  auto plain_cfg = cfg;
  plain_cfg.budget = {};
  const auto plain = harness::run_sort_experiment(plain_cfg);

  const auto ctx = [&] {
    return std::string("algo=") +
           std::string(harness::algorithm_name(cfg.algorithm)) +
           " element=" + std::string(harness::element_name(cfg.element)) +
           " p=" + std::to_string(cfg.p) +
           " n/p=" + std::to_string(cfg.n_per_pe) +
           " budget=" + std::to_string(cfg.budget.bytes) +
           " block=" + std::to_string(cfg.budget.block_bytes) +
           " seed=" + std::to_string(seed);
  };
  EXPECT_TRUE(spilled.check.ok()) << ctx();
  EXPECT_TRUE(plain.check.ok()) << ctx();
  EXPECT_GT(spilled.spill.bytes_written, 0) << "budget idle: " << ctx();
  EXPECT_EQ(plain.spill.bytes_written, 0) << ctx();
  EXPECT_EQ(spilled.check.out_signature, plain.check.out_signature) << ctx();
  EXPECT_EQ(spilled.report.wall_time, plain.report.wall_time) << ctx();
  EXPECT_EQ(spilled.report.total_bytes_sent, plain.report.total_bytes_sent)
      << ctx();
  EXPECT_TRUE(sync_spilled.check.ok()) << ctx();
  EXPECT_GT(spilled.spill.writes_behind, 0) << "async overlap idle: " << ctx();
  EXPECT_EQ(sync_spilled.spill.writes_behind, 0) << ctx();
  EXPECT_EQ(sync_spilled.check.out_signature, spilled.check.out_signature)
      << "sync/async output differs: " << ctx();
  EXPECT_EQ(sync_spilled.report.wall_time, spilled.report.wall_time)
      << "sync/async virtual time differs: " << ctx();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillFuzz, ::testing::Range(0, 28));

class DeliveryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DeliveryFuzz, RandomPieceMatricesConserveData) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 shape_rng(seed + 0xde11);
  constexpr int kShapes[][2] = {{4, 2}, {8, 4}, {12, 3}, {16, 8},
                                {24, 4}, {32, 16}, {20, 5}};
  const auto& shape = kShapes[shape_rng.bounded(std::size(kShapes))];
  const int p = shape[0], r = shape[1];
  constexpr delivery::Algo kDel[] = {
      delivery::Algo::kSimple, delivery::Algo::kRandomized,
      delivery::Algo::kDeterministic, delivery::Algo::kAdvancedRandomized};
  const auto algo = kDel[shape_rng.bounded(std::size(kDel))];

  net::Engine engine(p, net::MachineParams::supermuc_like(), seed);
  std::mutex mu;
  std::int64_t sent = 0, received = 0;
  bool groups_ok = true;
  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r));
    for (auto& s : sizes) {
      // Spiky: some pieces empty, some tiny, some large.
      const auto kind = rng.bounded(4);
      s = kind == 0 ? 0
          : kind == 1 ? static_cast<std::int64_t>(rng.bounded(3))
                      : static_cast<std::int64_t>(rng.bounded(200));
    }
    std::vector<std::uint64_t> data;
    for (int g = 0; g < r; ++g)
      for (std::int64_t i = 0; i < sizes[static_cast<std::size_t>(g)]; ++i)
        data.push_back(static_cast<std::uint64_t>(g));
    auto runs = delivery::deliver(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), sizes,
        algo, seed);
    const int my_group = comm.rank() / (p / r);
    std::int64_t count = 0;
    bool ok = true;
    for (const auto& run : runs)
      for (auto v : run) {
        ++count;
        if (static_cast<int>(v) != my_group) ok = false;
      }
    std::lock_guard lock(mu);
    sent += static_cast<std::int64_t>(data.size());
    received += count;
    groups_ok = groups_ok && ok;
  });
  EXPECT_EQ(sent, received) << "algo=" << delivery::algo_name(algo)
                            << " p=" << p << " r=" << r << " seed=" << seed;
  EXPECT_TRUE(groups_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryFuzz, ::testing::Range(0, 25));

class MultiselectFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MultiselectFuzz, RandomRanksAreExact) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 shape_rng(seed + 0x5e1ec7);
  const int p = 1 + static_cast<int>(shape_rng.bounded(20));
  const std::int64_t n_per_pe = shape_rng.bounded(200);
  const std::uint64_t range = 1 + shape_rng.bounded(1000);
  const std::int64_t total = p * n_per_pe;

  std::vector<std::int64_t> ranks;
  const int nr = 1 + static_cast<int>(shape_rng.bounded(10));
  for (int i = 0; i < nr; ++i)
    ranks.push_back(static_cast<std::int64_t>(
        shape_rng.bounded(static_cast<std::uint64_t>(total) + 1)));
  std::sort(ranks.begin(), ranks.end());

  net::Engine engine(p, net::MachineParams::supermuc_like(), seed);
  std::mutex mu;
  std::vector<std::int64_t> sums(ranks.size(), 0);
  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> data(static_cast<std::size_t>(n_per_pe));
    for (auto& v : data) v = rng.bounded(range);
    std::sort(data.begin(), data.end());
    auto res = select::multiselect(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), ranks);
    std::lock_guard lock(mu);
    for (std::size_t j = 0; j < ranks.size(); ++j)
      sums[j] += res.split_positions[j];
  });
  for (std::size_t j = 0; j < ranks.size(); ++j)
    EXPECT_EQ(sums[j], ranks[j]) << "seed=" << seed << " rank#" << j;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiselectFuzz, ::testing::Range(0, 25));

class GroupingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GroupingFuzz, AllSearchVariantsOptimal) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 rng(seed + 0x6a0);
  const int B = 2 + static_cast<int>(rng.bounded(60));
  const int r = 1 + static_cast<int>(rng.bounded(12));
  std::vector<std::int64_t> buckets(static_cast<std::size_t>(B));
  for (auto& b : buckets)
    b = static_cast<std::int64_t>(rng.bounded(rng.bounded(2) ? 10 : 1000));
  buckets[0] += 1;  // nonzero total
  const auto brute = grouping::group_buckets_bruteforce(buckets, r);
  EXPECT_EQ(grouping::group_buckets_naive(buckets, r).max_load,
            brute.max_load)
      << "seed=" << seed;
  EXPECT_EQ(grouping::group_buckets_optimal(buckets, r).max_load,
            brute.max_load)
      << "seed=" << seed;
  EXPECT_EQ(grouping::group_buckets_relevant_ranges(buckets, r).max_load,
            brute.max_load)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingFuzz, ::testing::Range(0, 40));

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, SortedAndBitIdenticalUnderRandomFaults) {
  // Random fault cocktails (loss × jitter × stragglers) over random shapes:
  // the output must stay a globally sorted permutation — faults may change
  // virtual time, never data — and a rerun with the same seed must replay
  // bit-identically (virtual times, phase accounting, fault counters).
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 rng(seed * 6151 + 29);

  harness::RunConfig cfg;
  constexpr int kPs[] = {4, 8, 12, 16, 24};
  cfg.p = kPs[rng.bounded(std::size(kPs))];
  cfg.n_per_pe = 50 + static_cast<std::int64_t>(rng.bounded(400));
  constexpr Algorithm kAlgos[] = {Algorithm::kAms, Algorithm::kRlm,
                                  Algorithm::kGvSampleSort};
  cfg.algorithm = kAlgos[rng.bounded(std::size(kAlgos))];
  cfg.ams.levels = 1 + static_cast<int>(rng.bounded(2));
  cfg.rlm.levels = cfg.ams.levels;
  cfg.seed = seed;

  // Random fault profile; at least one knob is always on.
  constexpr double kLossRates[] = {0.0, 1e-3, 1e-2, 5e-2};
  constexpr double kJitters[] = {0.0, 0.1, 0.5};
  cfg.faults.loss = kLossRates[rng.bounded(std::size(kLossRates))];
  cfg.faults.jitter_sigma = kJitters[rng.bounded(std::size(kJitters))];
  cfg.faults.stragglers = static_cast<int>(rng.bounded(3));
  cfg.faults.straggle_factor = 2.0 + static_cast<double>(rng.bounded(6));
  if (!cfg.faults.any()) cfg.faults.jitter_sigma = 0.2;
  // The fuzz asserts sorting invariants, not exhaustion: with 5% loss over
  // thousands of attempts the default retry budget has a small but real
  // chance of a (deterministic) NetworkError — widen it out of the picture.
  cfg.faults.retransmit.max_retries = 6;

  const auto res = harness::run_sort_experiment(cfg);
  EXPECT_TRUE(res.check.locally_sorted)
      << "algo=" << harness::algorithm_name(cfg.algorithm) << " p=" << cfg.p
      << " loss=" << cfg.faults.loss << " jitter=" << cfg.faults.jitter_sigma
      << " stragglers=" << cfg.faults.stragglers << " seed=" << seed;
  EXPECT_TRUE(res.check.globally_ordered) << "seed=" << seed;
  EXPECT_TRUE(res.check.permutation_ok) << "seed=" << seed;

  const auto again = harness::run_sort_experiment(cfg);
  EXPECT_EQ(again.report.wall_time, res.report.wall_time) << "seed=" << seed;
  EXPECT_EQ(again.report.phase_max, res.report.phase_max) << "seed=" << seed;
  EXPECT_EQ(again.report.max_messages_sent, res.report.max_messages_sent);
  EXPECT_EQ(again.report.total_bytes_sent, res.report.total_bytes_sent);
  EXPECT_TRUE(again.faults() == res.faults()) << "seed=" << seed;
  EXPECT_EQ(again.check.imbalance, res.check.imbalance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(0, 25));

TEST(VirtualTime, CausalityUnderRandomTraffic) {
  // Random p2p traffic: a receive can never complete before the matching
  // send's finish time.
  const int p = 8;
  net::Engine engine(p, net::MachineParams::supermuc_like(), 5);
  engine.run([&](net::Comm& comm) {
    const std::uint64_t tag = comm.next_tag_block();
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() - 1 + p) % p;
    double send_done = 0;
    for (int round = 0; round < 20; ++round) {
      std::vector<std::int64_t> payload(
          static_cast<std::size_t>(comm.rng().bounded(500)), 7);
      comm.send<std::int64_t>(next, tag + static_cast<std::uint64_t>(round),
                              payload);
      send_done = comm.now();
      auto got = comm.recv<std::int64_t>(
          prev, tag + static_cast<std::uint64_t>(round));
      // Our own clock is ≥ our send finish; payload arrived intact.
      EXPECT_GE(comm.now(), send_done);
      for (auto v : got) EXPECT_EQ(v, 7);
    }
  });
}

TEST(VirtualTime, CostMonotoneInMessageSize) {
  auto time_for = [](std::size_t words) {
    net::Engine engine(2, net::MachineParams::supermuc_like(), 1);
    engine.run([&](net::Comm& comm) {
      const std::uint64_t tag = comm.next_tag_block();
      if (comm.rank() == 0) {
        std::vector<std::int64_t> payload(words, 1);
        comm.send<std::int64_t>(1, tag, payload);
      } else {
        (void)comm.recv<std::int64_t>(0, tag);
      }
    });
    return engine.report().wall_time;
  };
  EXPECT_LT(time_for(1), time_for(1000));
  EXPECT_LT(time_for(1000), time_for(100000));
}

TEST(VirtualTime, HierarchyMattersForExchanges) {
  // The same alltoallv among 4 PEs is cheaper within a node than within an
  // island than across islands. Shrunk hierarchy: 2 PEs/node, 2 nodes/island.
  auto exchange_time = [](int stride) {
    auto machine = net::MachineParams::supermuc_like();
    machine.pes_per_node = 2;
    machine.nodes_per_island = 2;  // island = 4 PEs
    net::Engine engine(3 * stride + 1, machine, 2);
    engine.run([&](net::Comm& comm) {
      const bool mine = comm.rank() % stride == 0;
      net::Comm sub = comm.split(mine ? 0 : 1, comm.rank());
      if (!mine) return;
      const std::vector<std::int64_t> sendbuf(
          static_cast<std::size_t>(sub.size()) * 1000, 3);
      const std::vector<std::int64_t> counts(
          static_cast<std::size_t>(sub.size()), 1000);
      (void)coll::alltoallv(
          sub, std::span<const std::int64_t>(sendbuf.data(), sendbuf.size()),
          std::span<const std::int64_t>(counts.data(), counts.size()));
    });
    return engine.report().wall_time;
  };
  const double node_time = exchange_time(1);    // PEs 0..3? nodes of 2 → mixed
  const double island_time = exchange_time(2);  // one per node, same island+
  const double global_time = exchange_time(4);  // one per island
  EXPECT_LT(node_time, global_time);
  EXPECT_LE(island_time, global_time);
  EXPECT_LE(node_time, island_time);
}

}  // namespace
}  // namespace pmps
