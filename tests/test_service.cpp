// Tests for the sort service (src/svc/): per-job isolation and bit-exact
// determinism vs serial one-shot runs, admission control and batching,
// per-job abort, and the engine's start_run/finish_run split the service
// is built on.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"
#include "svc/service.hpp"

namespace pmps {
namespace {

using harness::Algorithm;
using harness::RunConfig;
using harness::RunResult;
using svc::JobState;

/// The acceptance-criteria grid: ≥ 8 jobs mixing algorithms (AMS/RLM/GV),
/// PE counts and seeds, including one job with a (recoverable) fault model.
std::vector<RunConfig> mixed_grid() {
  std::vector<RunConfig> grid;
  auto add = [&](Algorithm alg, int p, std::uint64_t seed) {
    RunConfig cfg;
    cfg.algorithm = alg;
    cfg.p = p;
    cfg.n_per_pe = 200;
    cfg.seed = seed;
    grid.push_back(cfg);
    return grid.size() - 1;
  };
  add(Algorithm::kAms, 64, 7);
  add(Algorithm::kRlm, 32, 11);
  add(Algorithm::kGvSampleSort, 16, 13);
  add(Algorithm::kAms, 128, 17);
  add(Algorithm::kRlm, 64, 19);
  add(Algorithm::kGvSampleSort, 32, 23);
  add(Algorithm::kHypercubeQuicksort, 64, 29);
  const std::size_t faulted = add(Algorithm::kAms, 32, 31);
  grid[faulted].faults.loss = 0.02;  // recoverable: retries always succeed
  return grid;
}

void expect_identical(const RunResult& serial, const RunResult& via_service,
                      const char* label) {
  // Bit-exact equality, not near-equality: virtual time must not depend on
  // host scheduling or on what ran concurrently.
  EXPECT_EQ(serial.report.wall_time, via_service.report.wall_time) << label;
  for (int ph = 0; ph < net::kNumPhases; ++ph)
    EXPECT_EQ(serial.report.phase_max[ph], via_service.report.phase_max[ph])
        << label << " phase " << ph;
  EXPECT_EQ(serial.report.total_bytes_sent, via_service.report.total_bytes_sent)
      << label;
  EXPECT_EQ(serial.report.max_messages_sent,
            via_service.report.max_messages_sent)
      << label;
  EXPECT_EQ(serial.report.faults, via_service.report.faults) << label;
  EXPECT_EQ(serial.check.globally_ordered, via_service.check.globally_ordered)
      << label;
  EXPECT_EQ(serial.check.permutation_ok, via_service.check.permutation_ok)
      << label;
  EXPECT_EQ(serial.check.total, via_service.check.total) << label;
  EXPECT_TRUE(via_service.check.ok()) << label;
}

TEST(SortService, MixedGridBitIdenticalToSerial) {
  const std::vector<RunConfig> grid = mixed_grid();

  std::vector<RunResult> serial;
  serial.reserve(grid.size());
  for (const RunConfig& cfg : grid)
    serial.push_back(harness::run_sort_experiment(cfg));

  svc::ServiceOptions opt;
  opt.max_in_flight = 4;
  svc::SortService service(opt);
  std::vector<harness::SortJob> jobs;
  jobs.reserve(grid.size());
  for (const RunConfig& cfg : grid)
    jobs.push_back(harness::submit_sort_experiment(service, cfg));

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string label =
        std::string(harness::algorithm_name(grid[i].algorithm)) + " p=" +
        std::to_string(grid[i].p) + " seed=" + std::to_string(grid[i].seed);
    expect_identical(serial[i], jobs[i].result(), label.c_str());
  }

  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.submitted, static_cast<std::int64_t>(grid.size()));
  EXPECT_EQ(st.completed, static_cast<std::int64_t>(grid.size()));
  EXPECT_EQ(st.failed, 0);
  if (service.concurrent()) {
    EXPECT_GT(st.peak_in_flight, 1);
  }
}

TEST(SortService, AbortedJobLeavesSiblingsUnharmed) {
  if (!net::fibers_supported()) GTEST_SKIP() << "no fiber backend";

  RunConfig sibling;
  sibling.algorithm = Algorithm::kAms;
  sibling.p = 64;
  sibling.n_per_pe = 500;
  sibling.seed = 41;
  RunConfig sibling2 = sibling;
  sibling2.algorithm = Algorithm::kRlm;
  sibling2.p = 32;
  sibling2.seed = 43;
  const RunResult serial1 = harness::run_sort_experiment(sibling);
  const RunResult serial2 = harness::run_sort_experiment(sibling2);

  svc::ServiceOptions opt;
  opt.max_in_flight = 4;
  svc::SortService service(opt);

  // The victim: a long-running job we abort mid-flight. Big enough that it
  // cannot finish before the abort lands.
  RunConfig victim;
  victim.algorithm = Algorithm::kAms;
  victim.p = 256;
  victim.n_per_pe = 20000;
  victim.seed = 47;
  harness::SortJob doomed = harness::submit_sort_experiment(service, victim);
  harness::SortJob j1 = harness::submit_sort_experiment(service, sibling);
  harness::SortJob j2 = harness::submit_sort_experiment(service, sibling2);

  doomed.handle.abort();
  const svc::JobResult aborted = doomed.handle.wait();
  EXPECT_EQ(aborted.state, JobState::kCancelled);

  expect_identical(serial1, j1.result(), "sibling AMS p=64");
  expect_identical(serial2, j2.result(), "sibling RLM p=32");

  service.wait_idle();
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.cancelled, 1);
  EXPECT_EQ(st.completed, 2);
}

TEST(SortService, FailedJobReportsSerialErrorMessage) {
  // A fault model harsh enough to exhaust its retry budget aborts the job;
  // the service must surface the exact error the serial run throws.
  RunConfig cfg;
  cfg.algorithm = Algorithm::kSampleSort1L;
  cfg.p = 16;
  cfg.n_per_pe = 200;
  cfg.seed = 53;
  cfg.faults.loss = 0.95;
  cfg.faults.retransmit.max_retries = 1;

  std::string serial_error;
  try {
    (void)harness::run_sort_experiment(cfg);
  } catch (const net::NetworkError& e) {
    serial_error = e.what();
  }
  ASSERT_FALSE(serial_error.empty()) << "fault config unexpectedly survived";

  svc::SortService service;
  harness::SortJob job = harness::submit_sort_experiment(service, cfg);
  const svc::JobResult r = job.handle.wait();
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_EQ(r.error, serial_error);
  EXPECT_THROW((void)job.result(), net::NetworkError);
}

TEST(SortService, DeterminismIndependentOfMaxInFlight) {
  const std::vector<RunConfig> grid = mixed_grid();
  std::vector<double> wall_at_1, wall_at_4;
  for (const int max_in_flight : {1, 4}) {
    svc::ServiceOptions opt;
    opt.max_in_flight = max_in_flight;
    svc::SortService service(opt);
    std::vector<harness::SortJob> jobs;
    for (const RunConfig& cfg : grid)
      jobs.push_back(harness::submit_sort_experiment(service, cfg));
    auto& out = max_in_flight == 1 ? wall_at_1 : wall_at_4;
    for (auto& j : jobs) out.push_back(j.result().wall_time());
  }
  ASSERT_EQ(wall_at_1.size(), wall_at_4.size());
  for (std::size_t i = 0; i < wall_at_1.size(); ++i)
    EXPECT_EQ(wall_at_1[i], wall_at_4[i]) << "job " << i;
}

TEST(SortService, BatchedAdmissionAndPeakInFlight) {
  svc::ServiceOptions opt;
  opt.max_in_flight = 3;
  svc::SortService service(opt);

  service.pause_admission();
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGvSampleSort;
  cfg.p = 16;
  cfg.n_per_pe = 100;
  std::vector<harness::SortJob> jobs;
  for (int i = 0; i < 6; ++i) {
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    jobs.push_back(harness::submit_sort_experiment(service, cfg));
  }
  // Nothing admitted while paused.
  EXPECT_EQ(service.stats().admission_batches, 0);
  for (auto& j : jobs) EXPECT_EQ(j.handle.state(), JobState::kQueued);

  service.resume_admission();
  service.wait_idle();

  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 6);
  // The first post-resume batch admits min(6, max_in_flight) = 3 jobs in one
  // step; the rest are admitted at completion boundaries. Batching keeps the
  // batch count at or below the job count minus the first batch's extras.
  EXPECT_GE(st.admission_batches, 1);
  EXPECT_LE(st.admission_batches, 4);
  if (service.concurrent()) {
    EXPECT_EQ(st.peak_in_flight, 3);
  }
  for (auto& j : jobs) EXPECT_TRUE(j.result().check.ok());
}

TEST(SortService, QueuedJobAbortsWithoutRunning) {
  svc::SortService service;
  service.pause_admission();
  RunConfig cfg;
  cfg.algorithm = Algorithm::kAms;
  cfg.p = 16;
  cfg.n_per_pe = 100;
  cfg.seed = 61;
  harness::SortJob job = harness::submit_sort_experiment(service, cfg);
  job.handle.abort();
  service.resume_admission();
  const svc::JobResult r = job.handle.wait();
  EXPECT_EQ(r.state, JobState::kCancelled);
  EXPECT_EQ(r.error, "aborted before admission");
  EXPECT_EQ(r.report.wall_time, 0.0);  // never ran
}

TEST(SortService, TrySubmitRespectsQueueBound) {
  svc::ServiceOptions opt;
  opt.queue_capacity = 1;
  svc::SortService service(opt);
  service.pause_admission();

  RunConfig cfg;
  cfg.algorithm = Algorithm::kGvSampleSort;
  cfg.p = 8;
  cfg.n_per_pe = 50;
  auto st = std::make_shared<harness::SortJobState>(cfg);
  svc::JobSpec spec;
  spec.num_pes = cfg.p;
  spec.machine = cfg.machine;
  spec.seed = cfg.seed;
  spec.program = harness::make_sort_program(st);

  auto first = service.try_submit(spec);
  ASSERT_TRUE(first.has_value());
  auto second = service.try_submit(spec);
  EXPECT_FALSE(second.has_value());  // queue full while paused

  service.resume_admission();
  service.wait_idle();
  EXPECT_EQ(first->wait().state, JobState::kDone);
}

TEST(SortService, SurvivesManySmallJobsAndStaysWarm) {
  svc::ServiceOptions opt;
  opt.max_in_flight = 8;
  svc::SortService service(opt);
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGvSampleSort;
  cfg.p = 16;
  cfg.n_per_pe = 64;
  std::vector<harness::SortJob> jobs;
  for (int i = 0; i < 32; ++i) {
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    jobs.push_back(harness::submit_sort_experiment(service, cfg));
  }
  // Same seed ⇒ same virtual time, job slots and substrate reuse
  // notwithstanding.
  std::optional<double> wall_of_seed_1000;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    RunResult r = jobs[i].result();
    EXPECT_TRUE(r.check.ok()) << "job " << i;
    if (i == 0) wall_of_seed_1000 = r.wall_time();
  }
  cfg.seed = 1000;
  harness::SortJob again = harness::submit_sort_experiment(service, cfg);
  EXPECT_EQ(again.result().wall_time(), *wall_of_seed_1000);
}

TEST(Engine, StartRunFinishRunMatchesRun) {
  net::Engine serial(16, net::MachineParams::supermuc_like(), 77);
  std::atomic<int> count{0};
  auto simple = [&](net::Comm& comm) {
    count.fetch_add(1);
    const int partner = comm.rank() ^ 1;
    const std::uint64_t tag = comm.next_tag_block();
    std::int64_t v = comm.rank();
    comm.send<std::int64_t>(partner, tag,
                            std::span<const std::int64_t>(&v, 1));
    auto got = comm.recv<std::int64_t>(partner, tag);
    EXPECT_EQ(got[0], partner);
  };
  serial.run(simple);
  const double serial_wall = serial.report().wall_time;
  EXPECT_EQ(count.load(), 16);

  net::Engine async(16, net::MachineParams::supermuc_like(), 77);
  count.store(0);
  // on_complete fires on whichever thread retires the run's last fiber;
  // wait for it the way a real consumer (the service dispatcher) does,
  // then reap the run with finish_run.
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  async.start_run(simple, [&] {
    std::lock_guard lock(mu);
    completed = true;
    cv.notify_all();
  });
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return completed; });
  }
  const std::optional<std::string> err = async.finish_run();
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(count.load(), 16);
  EXPECT_EQ(async.report().wall_time, serial_wall);
}

TEST(Engine, WorldCommNamespaceIsTimingNeutral) {
  // Two engines on one shared substrate with different job ids: different
  // Comm namespaces (disjoint mailbox keys), identical virtual results.
  auto substrate = std::make_shared<net::EngineSubstrate>(
      net::engine_fiber_workers(16));
  if (net::resolve_engine_backend() == net::EngineBackend::kFibers)
    substrate->ensure_pool(net::engine_fiber_workers(16),
                           net::engine_fiber_stack_bytes());

  RunConfig cfg;
  cfg.algorithm = Algorithm::kAms;
  cfg.p = 16;
  cfg.n_per_pe = 100;
  cfg.seed = 91;

  std::vector<double> walls;
  for (const std::uint64_t job_id : {1ULL, 0xdeadbeefULL}) {
    auto st = std::make_shared<harness::SortJobState>(cfg);
    net::Engine engine(cfg.p, cfg.machine, cfg.seed,
                       net::EngineBackend::kAuto, substrate, job_id);
    engine.run(harness::make_sort_program(st));
    EXPECT_TRUE(st->check.ok());
    walls.push_back(engine.report().wall_time);
  }
  EXPECT_EQ(walls[0], walls[1]);

  const RunResult standalone = harness::run_sort_experiment(cfg);
  EXPECT_EQ(standalone.report.wall_time, walls[0]);
}

}  // namespace
}  // namespace pmps
