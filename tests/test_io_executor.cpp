// Tests for the spill I/O overlap layer: hardened positional I/O
// (em/io.hpp, short-transfer and EINTR loops exercised via the injected
// chunk limit), the IoExecutor (thread-pool backend, pooled completion
// records, fiber-aware waits), RunStore write-behind (dirty queue,
// coalescing, read settling), RunCursor/StoreStream read-ahead, and the
// determinism wall: budgeted sorts are bit-identical across
// PMPS_EM_IO=sync|async, worker counts, and engine backends.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "em/block_file.hpp"
#include "em/external_merge.hpp"
#include "em/io.hpp"
#include "em/io_executor.hpp"
#include "em/run_cursor.hpp"
#include "em/run_store.hpp"
#include "harness/runner.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"

namespace pmps {
namespace {

using harness::Algorithm;
using harness::RunConfig;

/// RAII reset of the em/io.hpp process-global test knobs.
struct IoKnobsGuard {
  ~IoKnobsGuard() {
    em::set_io_chunk_limit_for_testing(0);
    em::set_io_delay_us(0);
  }
};

/// An anonymous temp file and its descriptor.
struct TmpFile {
  TmpFile() : f(std::tmpfile()) { fd = ::fileno(f); }
  ~TmpFile() { std::fclose(f); }
  std::FILE* f;
  int fd;
};

std::vector<std::byte> pattern(std::size_t n, unsigned salt) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + salt * 29 + 7) & 0xff);
  return v;
}

/// Tiny budget (8-element blocks) with optional async executor attached.
em::MemoryBudget tiny_budget(em::SpillStats* stats, em::IoExecutor* io) {
  em::MemoryBudget b;
  b.bytes = 1;
  b.block_bytes = 8 * static_cast<std::int64_t>(sizeof(std::uint64_t));
  b.stats = stats;
  b.io = io;
  return b;
}

// ---------------------------------------------------------------------------
// em/io.hpp: full-transfer loops under injected short transfers
// ---------------------------------------------------------------------------

TEST(IoFull, RoundTripUnderShortTransfers) {
  IoKnobsGuard guard;
  TmpFile tmp;
  const auto data = pattern(1000, 1);
  em::set_io_chunk_limit_for_testing(3);  // every syscall transfers ≤ 3 bytes
  em::pwrite_full(tmp.fd, 17, std::span<const std::byte>(data));
  std::vector<std::byte> back(data.size());
  em::pread_full(tmp.fd, 17, std::span<std::byte>(back));
  EXPECT_EQ(back, data);
}

TEST(IoFull, GatherWriteAdvancesAcrossBuffers) {
  IoKnobsGuard guard;
  TmpFile tmp;
  // Buffer sizes chosen so the 4-byte chunk cap splits inside and across
  // buffer boundaries.
  const auto a = pattern(5, 2);
  const auto b = pattern(7, 3);
  const auto c = pattern(11, 4);
  const std::span<const std::byte> bufs[] = {a, b, c};
  em::set_io_chunk_limit_for_testing(4);
  em::pwritev_full(tmp.fd, 3, std::span<const std::span<const std::byte>>(
                                  bufs, 3));
  em::set_io_chunk_limit_for_testing(0);
  std::vector<std::byte> back(5 + 7 + 11);
  em::pread_full(tmp.fd, 3, std::span<std::byte>(back));
  std::vector<std::byte> expect;
  expect.insert(expect.end(), a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  EXPECT_EQ(back, expect);
}

// ---------------------------------------------------------------------------
// IoExecutor: thread-pool backend
// ---------------------------------------------------------------------------

TEST(IoExecutor, WriteThenReadRoundTrip) {
  TmpFile tmp;
  em::IoExecutor io(2);
  const auto data = pattern(4096, 5);
  const std::span<const std::byte> one[] = {data};
  auto* w = io.submit_write(tmp.fd, 128,
                            std::span<const std::span<const std::byte>>(one, 1));
  io.wait(w);
  std::vector<std::byte> back(data.size());
  auto* r = io.submit_read(tmp.fd, 128, std::span<std::byte>(back));
  io.wait(r);
  EXPECT_EQ(back, data);
}

TEST(IoExecutor, GatherWriteConcatenates) {
  TmpFile tmp;
  em::IoExecutor io(1);
  const auto a = pattern(100, 6);
  const auto b = pattern(200, 7);
  const std::span<const std::byte> bufs[] = {a, b};
  io.wait(io.submit_write(tmp.fd, 0,
                          std::span<const std::span<const std::byte>>(bufs, 2)));
  std::vector<std::byte> back(300);
  io.wait(io.submit_read(tmp.fd, 0, std::span<std::byte>(back)));
  EXPECT_TRUE(std::memcmp(back.data(), a.data(), a.size()) == 0);
  EXPECT_TRUE(std::memcmp(back.data() + a.size(), b.data(), b.size()) == 0);
}

TEST(IoExecutor, ManyConcurrentOpsAtDistinctOffsets) {
  TmpFile tmp;
  em::IoExecutor io(3);
  constexpr int kOps = 64;
  constexpr std::size_t kBytes = 1024;
  std::vector<std::vector<std::byte>> data;
  std::vector<em::IoExecutor::Op*> ops;
  for (int i = 0; i < kOps; ++i) {
    data.push_back(pattern(kBytes, static_cast<unsigned>(i)));
    const std::span<const std::byte> one[] = {data.back()};
    ops.push_back(io.submit_write(
        tmp.fd, static_cast<std::int64_t>(i) * kBytes,
        std::span<const std::span<const std::byte>>(one, 1)));
  }
  for (auto* op : ops) io.wait(op);
  ops.clear();
  std::vector<std::vector<std::byte>> back(kOps);
  for (int i = 0; i < kOps; ++i) {
    back[static_cast<std::size_t>(i)].resize(kBytes);
    ops.push_back(io.submit_read(
        tmp.fd, static_cast<std::int64_t>(i) * kBytes,
        std::span<std::byte>(back[static_cast<std::size_t>(i)])));
  }
  for (auto* op : ops) io.wait(op);
  for (int i = 0; i < kOps; ++i)
    EXPECT_EQ(back[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)])
        << "op " << i;
}

TEST(IoExecutor, PollTurnsTrueAndWaitReturnsBlockedTime) {
  IoKnobsGuard guard;
  TmpFile tmp;
  em::IoExecutor io(1);
  em::set_io_delay_us(2000);  // make the op take a visible while
  const auto data = pattern(64, 8);
  const std::span<const std::byte> one[] = {data};
  auto* op = io.submit_write(tmp.fd, 0,
                             std::span<const std::span<const std::byte>>(one, 1));
  const double waited = io.wait(op);
  EXPECT_GE(waited, 0.0);
  em::set_io_delay_us(0);
  // A completed op polls true before wait and waits for ~0 seconds.
  auto* op2 = io.submit_write(tmp.fd, 0,
                              std::span<const std::span<const std::byte>>(one, 1));
  while (!em::IoExecutor::poll(op2)) {
  }
  EXPECT_EQ(io.wait(op2), 0.0);
}

TEST(IoExecutor, FiberWaitParksInsteadOfPinningWorkers) {
  if (!net::fibers_supported()) GTEST_SKIP() << "no fiber backend here";
  IoKnobsGuard guard;
  TmpFile tmp;
  em::IoExecutor io(2);
  em::set_io_delay_us(1000);  // ops outlive the submit, forcing real parks
  // More fibers than workers: if a waiting fiber pinned its worker thread,
  // this would deadlock rather than finish.
  net::FiberPool pool(2, 256 << 10);
  std::vector<int> ok(8, 0);
  pool.run(8, [&](int i) {
    const auto data = pattern(512, static_cast<unsigned>(i));
    const std::span<const std::byte> one[] = {data};
    io.wait(io.submit_write(tmp.fd, static_cast<std::int64_t>(i) * 512,
                            std::span<const std::span<const std::byte>>(one,
                                                                        1)));
    std::vector<std::byte> back(512);
    io.wait(io.submit_read(tmp.fd, static_cast<std::int64_t>(i) * 512,
                           std::span<std::byte>(back)));
    ok[static_cast<std::size_t>(i)] = back == data ? 1 : 0;
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ok[static_cast<std::size_t>(i)], 1);
}

// ---------------------------------------------------------------------------
// RunStore write-behind
// ---------------------------------------------------------------------------

TEST(WriteBehind, RoundTripsAndCountsOverlap) {
  em::SpillStats stats;
  em::IoExecutor io(2);
  em::RunStore<std::uint64_t> store(tiny_budget(&stats, &io));
  std::vector<std::uint64_t> expect;
  for (int r = 0; r < 5; ++r) {
    std::vector<std::uint64_t> run(static_cast<std::size_t>(20 + 7 * r));
    std::iota(run.begin(), run.end(), 1000u * static_cast<unsigned>(r));
    expect.insert(expect.end(), run.begin(), run.end());
    store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
  }
  EXPECT_EQ(store.take_all(), expect);
  const auto t = stats.totals();
  EXPECT_GT(t.writes_behind, 0);
  // Consecutive appends of one run get adjacent slots: coalescing must
  // have merged some of them into shared syscalls.
  EXPECT_GT(t.write_coalesced, 0);
  EXPECT_GT(t.inflight_hwm_bytes, 0);
  // Write totals are counted at submit time — identical to the sync path.
  EXPECT_EQ(t.bytes_written,
            static_cast<std::int64_t>(expect.size() * sizeof(std::uint64_t)));
}

TEST(WriteBehind, ReadSettlesPendingWrites) {
  IoKnobsGuard guard;
  em::SpillStats stats;
  em::IoExecutor io(1);
  em::RunStore<std::uint64_t> store(tiny_budget(&stats, &io));
  em::set_io_delay_us(2000);  // keep flushes in flight while we read back
  std::vector<std::uint64_t> run(64);
  std::iota(run.begin(), run.end(), 7u);
  store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
  // Immediately read every block back — including the still-open coalescing
  // window and queued flushes, which settle_range must push out first.
  std::vector<std::uint64_t> back(64);
  const std::int64_t epb = store.elems_per_block();
  for (std::int64_t b = 0; b * epb < 64; ++b) {
    const std::int64_t len = std::min<std::int64_t>(epb, 64 - b * epb);
    store.read_block(0, b,
                     std::span<std::uint64_t>(
                         back.data() + b * epb, static_cast<std::size_t>(len)));
  }
  EXPECT_EQ(back, run);
}

TEST(WriteBehind, RunWriterStreamsThroughDirtyQueue) {
  em::SpillStats stats;
  em::IoExecutor io(2);
  em::RunStore<std::uint64_t> store(tiny_budget(&stats, &io));
  std::vector<std::uint64_t> expect(555);
  std::iota(expect.begin(), expect.end(), 3u);
  {
    em::RunWriter<std::uint64_t> w(store);
    for (auto v : expect) w.push(v);
  }
  EXPECT_EQ(store.take_all(), expect);
  EXPECT_GT(stats.totals().writes_behind, 0);
}

// ---------------------------------------------------------------------------
// Read-ahead: RunCursor and StoreStream
// ---------------------------------------------------------------------------

TEST(ReadAhead, CursorWindowsMatchSyncAndCountPrefetch) {
  em::SpillStats stats;
  em::IoExecutor io(2);
  em::RunStore<std::uint64_t> store(tiny_budget(&stats, &io));
  std::vector<std::uint64_t> run(163);  // ~21 windows, short tail
  std::iota(run.begin(), run.end(), 11u);
  store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
  std::vector<std::uint64_t> got;
  std::int64_t windows = 0;
  {
    em::RunCursor<std::uint64_t> cur(&store, 0);
    for (auto w = cur.next_window(); !w.empty(); w = cur.next_window()) {
      got.insert(got.end(), w.begin(), w.end());
      ++windows;
    }
  }
  EXPECT_EQ(got, run);
  const auto t = stats.totals();
  EXPECT_EQ(t.prefetch_hits + t.prefetch_misses, windows);
}

TEST(ReadAhead, CursorTeardownMidRunDiscardsPrefetch) {
  em::SpillStats stats;
  em::IoExecutor io(1);
  em::RunStore<std::uint64_t> store(tiny_budget(&stats, &io));
  std::vector<std::uint64_t> run(100);
  std::iota(run.begin(), run.end(), 0u);
  store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
  {
    em::RunCursor<std::uint64_t> cur(&store, 0);
    (void)cur.next_window();  // leaves the next window's read in flight
  }
  // The store (and its buffers) must still be healthy after the abandoned
  // prefetch was awaited by the cursor destructor.
  EXPECT_EQ(store.take_all(), run);
}

TEST(ReadAhead, StoreStreamMatchesReadRangeWithSeeks) {
  em::SpillStats stats;
  em::IoExecutor io(2);
  em::RunStore<std::uint64_t> store(tiny_budget(&stats, &io));
  // Several runs, including empty ones, with non-aligned lengths.
  std::vector<std::uint64_t> content;
  const int lens[] = {13, 0, 40, 1, 0, 27};
  unsigned salt = 0;
  for (int len : lens) {
    std::vector<std::uint64_t> run(static_cast<std::size_t>(len));
    std::iota(run.begin(), run.end(), 100000u * ++salt);
    content.insert(content.end(), run.begin(), run.end());
    store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
  }
  const auto total = static_cast<std::int64_t>(content.size());
  ASSERT_EQ(store.total(), total);

  em::StoreStream<std::uint64_t> stream(store);
  // Sequential full pass.
  std::vector<std::uint64_t> got(content.size());
  stream.read(std::span<std::uint64_t>(got.data(), got.size()));
  EXPECT_EQ(got, content);
  // Seeks: backward, forward, unaligned, across run boundaries.
  const std::int64_t starts[] = {0, 5, 12, 13, 52, total - 3};
  for (std::int64_t s : starts) {
    stream.seek(s);
    const auto len = static_cast<std::size_t>(
        std::min<std::int64_t>(total - s, 17));
    std::vector<std::uint64_t> part(len);
    stream.read(std::span<std::uint64_t>(part.data(), part.size()));
    const std::vector<std::uint64_t> expect(
        content.begin() + s, content.begin() + s + static_cast<std::int64_t>(len));
    EXPECT_EQ(part, expect) << "seek " << s;
  }
}

TEST(ReadAhead, MergeRunsBitIdenticalToSyncStore) {
  // The same runs written to a sync store and an async store must merge to
  // the identical vector (and the async one exercises cursor prefetch).
  em::IoExecutor io(2);
  em::RunStore<std::uint64_t> sync_store(tiny_budget(nullptr, nullptr));
  em::RunStore<std::uint64_t> async_store(tiny_budget(nullptr, &io));
  Xoshiro256 rng(42);
  for (int r = 0; r < 8; ++r) {
    std::vector<std::uint64_t> run(static_cast<std::size_t>(30 + 11 * r));
    for (auto& v : run) v = rng();
    std::sort(run.begin(), run.end());
    sync_store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
    async_store.append_run(std::span<const std::uint64_t>(run.data(), run.size()));
  }
  EXPECT_EQ(em::merge_runs(async_store), em::merge_runs(sync_store));
}

// ---------------------------------------------------------------------------
// Determinism wall: PMPS_EM_IO=sync|async × workers × backends
// ---------------------------------------------------------------------------

/// Budgeted over-memory sort config used for all wall runs.
RunConfig wall_config(Algorithm algo) {
  RunConfig cfg;
  cfg.p = 8;
  cfg.n_per_pe = 600;
  cfg.algorithm = algo;
  cfg.budget.bytes = 1536;  // forces spilling at every stage
  cfg.budget.block_bytes = 512;
  cfg.seed = 23;
  return cfg;
}

TEST(DeterminismWall, SyncAsyncWorkersBackendsBitIdentical) {
  struct Obs {
    std::uint64_t sig;
    double wall;
  };
  std::vector<Obs> obs;
  const auto algos = {Algorithm::kAms, Algorithm::kRlm};
  for (const char* mode : {"sync", "async"}) {
    ::setenv("PMPS_EM_IO", mode, 1);
    for (const char* workers : {"1", "3"}) {
      ::setenv("PMPS_FIBER_WORKERS", workers, 1);
      for (const auto backend :
           {net::EngineBackend::kFibers, net::EngineBackend::kThreads}) {
        if (backend == net::EngineBackend::kFibers &&
            !net::fibers_supported()) {
          continue;
        }
        std::size_t a = 0;
        for (const auto algo : algos) {
          auto cfg = wall_config(algo);
          cfg.backend = backend;
          const auto res = harness::run_sort_experiment(cfg);
          ASSERT_TRUE(res.check.ok());
          EXPECT_GT(res.spill.bytes_written, 0);
          if (std::string(mode) == "async") {
            EXPECT_GT(res.spill.writes_behind, 0)
                << "async run did not exercise write-behind";
          }
          if (obs.size() <= a) {
            obs.push_back({res.check.out_signature, res.wall_time()});
          } else {
            EXPECT_EQ(res.check.out_signature, obs[a].sig)
                << "output differs: mode=" << mode << " workers=" << workers;
            EXPECT_EQ(res.wall_time(), obs[a].wall)
                << "virtual time differs: mode=" << mode
                << " workers=" << workers;
          }
          ++a;
        }
      }
    }
  }
  ::unsetenv("PMPS_EM_IO");
  ::unsetenv("PMPS_FIBER_WORKERS");
}

}  // namespace
}  // namespace pmps
