// Tests for the sequential substrate: loser-tree multiway merge, branchless
// partitioning with Appendix-D tie breaking, Batcher networks, small sorts.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "seq/multiway_merge.hpp"
#include "seq/partition.hpp"
#include "seq/radix_sort.hpp"
#include "seq/small_sort.hpp"
#include "seq/sorting_network.hpp"

namespace pmps::seq {
namespace {

std::vector<std::vector<std::uint64_t>> random_runs(int k, int max_len,
                                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint64_t>> runs(static_cast<std::size_t>(k));
  for (auto& r : runs) {
    const auto len = rng.bounded(static_cast<std::uint64_t>(max_len + 1));
    for (std::uint64_t i = 0; i < len; ++i) r.push_back(rng.bounded(1000));
    std::sort(r.begin(), r.end());
  }
  return runs;
}

class MultiwayMerge : public ::testing::TestWithParam<int> {};

TEST_P(MultiwayMerge, MatchesSortedConcatenation) {
  const int k = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto runs = random_runs(k, 200, seed);
    std::vector<std::uint64_t> expect;
    for (const auto& r : runs) expect.insert(expect.end(), r.begin(), r.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(multiway_merge(runs), expect) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, MultiwayMerge,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 33,
                                           64, 100));

TEST(MultiwayMerge, EmptyRuns) {
  std::vector<std::vector<std::uint64_t>> runs(5);
  EXPECT_TRUE(multiway_merge(runs).empty());
  runs[2] = {1, 2, 3};
  EXPECT_EQ(multiway_merge(runs), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(MultiwayMerge, NoRuns) {
  std::vector<std::vector<std::uint64_t>> runs;
  EXPECT_TRUE(multiway_merge(runs).empty());
}

TEST(MultiwayMerge, StableAcrossRunsForTies) {
  // Ties must come out in run-index order (loser tree tie breaking).
  std::vector<std::vector<std::uint64_t>> runs = {{5, 5}, {5}, {5, 5}};
  std::vector<std::span<const std::uint64_t>> spans;
  for (auto& r : runs) spans.emplace_back(r.data(), r.size());
  LoserTree<std::uint64_t> tree(
      std::span<const std::span<const std::uint64_t>>(spans.data(),
                                                      spans.size()));
  std::vector<int> order;
  while (!tree.empty()) {
    order.push_back(tree.winner_run());
    tree.pop();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1, 2, 2}));
}

TEST(MultiwayMerge, BulkPopMatchesPopByOne) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto runs = random_runs(9, 300, seed);
    std::vector<std::span<const std::uint64_t>> spans;
    for (auto& r : runs) spans.emplace_back(r.data(), r.size());
    const std::span<const std::span<const std::uint64_t>> rs(spans.data(),
                                                             spans.size());
    LoserTree<std::uint64_t> one(rs);
    LoserTree<std::uint64_t> bulk(rs);
    std::vector<std::uint64_t> expect;
    while (!one.empty()) expect.push_back(one.pop());
    // Odd-sized chunks so bulk boundaries don't align with run boundaries.
    std::vector<std::uint64_t> got(expect.size());
    std::size_t at = 0;
    while (at < got.size()) {
      const auto chunk = std::min<std::size_t>(7, got.size() - at);
      EXPECT_EQ(bulk.pop_bulk(std::span<std::uint64_t>(got.data() + at, chunk)),
                static_cast<std::int64_t>(chunk));
      at += chunk;
    }
    EXPECT_EQ(bulk.pop_bulk(std::span<std::uint64_t>(got.data(), 1)), 0);
    EXPECT_TRUE(bulk.empty());
    EXPECT_EQ(got, expect) << "seed=" << seed;
  }
}

TEST(MultiwayMerge, BulkPopAllEqualKeysIsStable) {
  // All keys identical: bulk popping must emit runs in run-index order
  // (stability), exercising the tie-break path of every replay.
  using KV = std::pair<std::uint64_t, int>;  // (key, origin run)
  struct KeyLess {
    bool operator()(const KV& a, const KV& b) const {
      return a.first < b.first;
    }
  };
  std::vector<std::vector<KV>> runs;
  for (int r = 0; r < 6; ++r)
    runs.emplace_back(static_cast<std::size_t>(10 + r), KV{42, r});
  std::vector<std::span<const KV>> spans;
  for (auto& r : runs) spans.emplace_back(r.data(), r.size());
  LoserTree<KV, KeyLess> tree(
      std::span<const std::span<const KV>>(spans.data(), spans.size()));
  std::vector<KV> out(static_cast<std::size_t>(tree.size()));
  EXPECT_EQ(tree.pop_bulk(std::span<KV>(out.data(), out.size())),
            static_cast<std::int64_t>(out.size()));
  std::size_t at = 0;
  for (int r = 0; r < 6; ++r)
    for (std::size_t i = 0; i < runs[static_cast<std::size_t>(r)].size(); ++i)
      EXPECT_EQ(out[at++].second, r) << "position " << at - 1;
}

TEST(MultiwayMerge, BulkPopManyEmptyRuns) {
  // 64 runs, only three of them non-empty — exhausted-run sentinels dominate
  // every tournament.
  std::vector<std::vector<std::uint64_t>> runs(64);
  runs[5] = {1, 4, 9};
  runs[20] = {2, 2, 7};
  runs[63] = {0, 8};
  std::vector<std::span<const std::uint64_t>> spans;
  for (auto& r : runs) spans.emplace_back(r.data(), r.size());
  LoserTree<std::uint64_t> tree(
      std::span<const std::span<const std::uint64_t>>(spans.data(),
                                                      spans.size()));
  std::vector<std::uint64_t> out(8);
  EXPECT_EQ(tree.pop_bulk(std::span<std::uint64_t>(out.data(), out.size())), 8);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 2, 2, 4, 7, 8, 9}));
  EXPECT_TRUE(tree.empty());
}

TEST(MultiwayMerge, LargeMerge) {
  auto runs = random_runs(31, 5000, 99);
  auto merged = multiway_merge(runs);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  EXPECT_EQ(merged.size(), total);
}

// ---------------------------------------------------------------------------

std::vector<TaggedKey<std::uint64_t>> make_splitters(
    std::vector<std::uint64_t> keys) {
  std::vector<TaggedKey<std::uint64_t>> sp;
  for (std::size_t i = 0; i < keys.size(); ++i)
    sp.push_back(TaggedKey<std::uint64_t>{keys[i], 0,
                                          static_cast<std::int64_t>(i)});
  return sp;
}

class PartitionBuckets : public ::testing::TestWithParam<int> {};

TEST_P(PartitionBuckets, RespectsSplitterOrder) {
  const int k = GetParam();  // number of buckets
  Xoshiro256 rng(static_cast<std::uint64_t>(k) + 17);
  std::vector<std::uint64_t> input(1000);
  for (auto& v : input) v = rng.bounded(10000);
  std::vector<std::uint64_t> keys;
  for (int i = 1; i < k; ++i)
    keys.push_back(static_cast<std::uint64_t>(i) * 10000 /
                   static_cast<std::uint64_t>(k));
  auto cls = BucketClassifier<std::uint64_t>(make_splitters(keys));
  auto part = partition_into_buckets(
      std::span<const std::uint64_t>(input.data(), input.size()), 1, cls);

  ASSERT_EQ(static_cast<int>(part.sizes.size()), k);
  std::int64_t total = 0;
  for (auto s : part.sizes) total += s;
  EXPECT_EQ(total, static_cast<std::int64_t>(input.size()));

  // Every element in bucket b must be ≥ splitter b−1 and ≤ splitter b (keys).
  for (int b = 0; b < k; ++b) {
    for (std::int64_t i = part.offsets[static_cast<std::size_t>(b)];
         i < part.offsets[static_cast<std::size_t>(b)] +
                 part.sizes[static_cast<std::size_t>(b)];
         ++i) {
      const auto v = part.elements[static_cast<std::size_t>(i)];
      if (b > 0) {
        EXPECT_GE(v, keys[static_cast<std::size_t>(b - 1)]);
      }
      if (b < k - 1) {
        EXPECT_LE(v, keys[static_cast<std::size_t>(b)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, PartitionBuckets,
                         ::testing::Values(2, 3, 4, 7, 8, 16, 31, 64, 100));

TEST(PartitionBuckets, MatchesBruteForceClassification) {
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> input(500);
  for (auto& v : input) v = rng.bounded(100);
  std::vector<std::uint64_t> keys{10, 20, 50, 80};
  auto cls = BucketClassifier<std::uint64_t>(make_splitters(keys));
  for (std::size_t i = 0; i < input.size(); ++i) {
    const int b = cls.classify(input[i], 1, static_cast<std::int64_t>(i));
    // brute force: count splitters tagged-less than (v,1,i)
    const TaggedKey<std::uint64_t> tx{input[i], 1, static_cast<std::int64_t>(i)};
    int expect = 0;
    for (std::size_t s = 0; s < keys.size(); ++s) {
      const TaggedKey<std::uint64_t> ts{keys[s], 0, static_cast<std::int64_t>(s)};
      if (ts < tx) ++expect;
    }
    EXPECT_EQ(b, expect) << "v=" << input[i];
  }
}

TEST(PartitionBuckets, AllEqualKeysSplitByTags) {
  // All elements equal to all splitters: the tagged comparison must spread
  // them across buckets rather than piling into one (Appendix D).
  std::vector<std::uint64_t> input(100, 7);
  // Splitters with the same key but increasing tags.
  std::vector<TaggedKey<std::uint64_t>> sp;
  sp.push_back({7, 0, 25});
  sp.push_back({7, 0, 50});
  sp.push_back({7, 0, 75});
  auto cls = BucketClassifier<std::uint64_t>(sp);
  auto part = partition_into_buckets(
      std::span<const std::uint64_t>(input.data(), input.size()), 0, cls);
  // Elements with index < 25 are tagged-less than splitter (7,0,25) → bucket
  // 0, etc.: exact quarters.
  EXPECT_EQ(part.sizes, (std::vector<std::int64_t>{25, 25, 25, 25}));
}

TEST(PartitionBuckets, StripClassificationMatchesScalar) {
  // The strip descent must agree with the per-element descent everywhere,
  // including duplicate keys that hit the Appendix-D tie-break loop and a
  // final partial strip.
  using Cls = BucketClassifier<std::uint64_t>;
  for (int k : {2, 3, 16, 33, 100}) {
    Xoshiro256 rng(static_cast<std::uint64_t>(k) * 31 + 1);
    std::vector<std::uint64_t> keys;
    for (int i = 1; i < k; ++i) keys.push_back(rng.bounded(64));  // many dups
    std::sort(keys.begin(), keys.end());
    const auto cls = Cls(make_splitters(keys));
    std::vector<std::uint64_t> input(Cls::kStrip * 5 + 3);
    for (auto& v : input) v = rng.bounded(64);

    std::vector<std::int32_t> strip(input.size());
    std::int64_t done = 0;
    const auto n = static_cast<std::int64_t>(input.size());
    for (; done < n; done += Cls::kStrip) {
      const int count = static_cast<int>(std::min<std::int64_t>(
          Cls::kStrip, n - done));
      cls.classify_strip(input.data() + done, count, /*pe=*/3, done,
                         strip.data() + done);
    }
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(strip[static_cast<std::size_t>(i)],
                cls.classify(input[static_cast<std::size_t>(i)], 3, i))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(PartitionBuckets, SingleSplitter) {
  std::vector<std::uint64_t> input{1, 5, 9, 5, 0};
  auto cls = BucketClassifier<std::uint64_t>(make_splitters({5}));
  auto part = partition_into_buckets(
      std::span<const std::uint64_t>(input.data(), input.size()), 1, cls);
  EXPECT_EQ(part.sizes[0] + part.sizes[1], 5);
  // 1 and 0 strictly below; 9 strictly above; the 5s go right of the
  // splitter (their PE tag 1 > splitter PE tag 0).
  EXPECT_EQ(part.sizes[0], 2);
  EXPECT_EQ(part.sizes[1], 3);
}

// ---------------------------------------------------------------------------

TEST(SortingNetwork, ZeroOnePrinciple) {
  // A comparator network sorts all inputs iff it sorts all 0-1 inputs.
  for (std::int64_t n : {2, 4, 8, 16}) {
    const auto net = odd_even_mergesort_network(n);
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      std::vector<int> v(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i)
        v[static_cast<std::size_t>(i)] = (mask >> i) & 1;
      apply_network(std::span<int>(v.data(), v.size()),
                    std::span<const Comparator>(net.data(), net.size()));
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end())) << "n=" << n
                                                      << " mask=" << mask;
    }
  }
}

TEST(SortingNetwork, MergeNetworkMergesHalves) {
  const std::int64_t n = 16;
  const auto net = odd_even_merge_network(n);
  Xoshiro256 rng(13);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = rng.bounded(100);
    std::sort(v.begin(), v.begin() + n / 2);
    std::sort(v.begin() + n / 2, v.end());
    apply_network(std::span<std::uint64_t>(v.data(), v.size()),
                  std::span<const Comparator>(net.data(), net.size()));
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  }
}

class NetworkSortSizes : public ::testing::TestWithParam<int> {};

TEST_P(NetworkSortSizes, SortsArbitrarySizes) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(n));
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.bounded(1000);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  network_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkSortSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 17, 31, 32,
                                           100, 255, 256));

// ---------------------------------------------------------------------------

TEST(SmallSort, InsertionSortMatchesStdSort) {
  Xoshiro256 rng(77);
  for (int n = 0; n <= 64; ++n) {
    std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = rng.bounded(50);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    insertion_sort(std::span<std::uint64_t>(v.data(), v.size()));
    EXPECT_EQ(v, expect) << "n=" << n;
  }
}

TEST(SmallSort, LocalSortLargeInput) {
  Xoshiro256 rng(78);
  std::vector<std::uint64_t> v(10000);
  for (auto& x : v) x = rng();
  local_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

// ---------------------------------------------------------------------------

class RadixSortSizes : public ::testing::TestWithParam<int> {};

TEST_P(RadixSortSizes, MatchesStdSortU64) {
  const int n = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(n) + 5);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSortSizes,
                         ::testing::Values(0, 1, 2, 3, 17, 255, 256, 257,
                                           1000, 65536));

TEST(RadixSort, SmallValueRangeSkipsPasses) {
  // Values fit in one byte: the implementation must still be correct (and
  // internally skips the 7 all-zero digit passes).
  Xoshiro256 rng(6);
  std::vector<std::uint64_t> v(5000);
  for (auto& x : v) x = rng.bounded(200);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, U32AndU16) {
  Xoshiro256 rng(7);
  std::vector<std::uint32_t> a(3000);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng());
  radix_sort(std::span<std::uint32_t>(a.data(), a.size()));
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

  std::vector<std::uint16_t> b(3000);
  for (auto& x : b) x = static_cast<std::uint16_t>(rng());
  radix_sort(std::span<std::uint16_t>(b.data(), b.size()));
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(RadixSort, AlreadySortedAndReverse) {
  std::vector<std::uint64_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i * 7;
  auto expect = v;
  radix_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
  std::reverse(v.begin(), v.end());
  radix_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
}

TEST(SmallSort, LocalSortDispatchesToRadixAboveThreshold) {
  // Behavioural check only: result identical to std::sort either way.
  Xoshiro256 rng(8);
  std::vector<std::uint64_t> v(kRadixSortThreshold * 2);
  for (auto& x : v) x = rng();
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  local_sort(std::span<std::uint64_t>(v.data(), v.size()));
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace pmps::seq
