// Figure 11 (Appendix E): total wall-time and splitter-selection (sampling)
// time of AMS-sort as a function of samples per process a·b, for
// oversampling factors a ∈ {1, 8, 16}.
//
// Expected shape: wall-time first falls (better balance → faster delivery
// and local sorting), then rises once the sampling phase dominates.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;
using net::Phase;

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  // --large-p: paper-scale smoke configuration (see fig10 for the n/p and
  // sweep-granularity rationale).
  const int p = flags.large_p ? 1024 : 64;
  const std::int64_t n_per_pe =
      flags.large_p ? 1000 : (flags.paper_scale ? 100000 : 10000);

  std::printf(
      "Figure 11: AMS-sort wall-time and sampling time vs samples per "
      "process (a*b), 1-level, p=%d, n/p=%lld\n\n",
      p, static_cast<long long>(n_per_pe));

  harness::Table table({"a*b", "total a=1", "total a=8", "total a=16",
                        "sampling a=1", "sampling a=8", "sampling a=16"});
  const int ab_step = flags.large_p ? 8 : 2;  // coarser sweep for smoke rows
  for (int ab = 4; ab <= 2048; ab *= ab_step) {
    std::vector<std::string> total_cols, sampling_cols;
    for (int a : {1, 8, 16}) {
      if (ab < a) {
        total_cols.push_back("-");
        sampling_cols.push_back("-");
        continue;
      }
      const int b = ab / a;
      std::vector<double> total, sampling;
      for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
        harness::RunConfig cfg;
        cfg.p = p;
        cfg.n_per_pe = n_per_pe;
        cfg.algorithm = harness::Algorithm::kAms;
        cfg.ams.levels = 1;
        cfg.ams.oversampling_a = a;
        cfg.ams.overpartition_b = b;
        cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 13;
        const auto res = harness::run_sort_experiment(cfg);
        if (!res.check.ok()) {
          std::fprintf(stderr, "verification FAILED\n");
          return 1;
        }
        total.push_back(res.wall_time());
        sampling.push_back(res.phase(Phase::kSplitterSelection));
      }
      total_cols.push_back(
          harness::format_double(harness::median(total) * 1e3, 3));
      sampling_cols.push_back(
          harness::format_double(harness::median(sampling) * 1e3, 3));
    }
    table.add_row({std::to_string(ab), total_cols[0], total_cols[1],
                   total_cols[2], sampling_cols[0], sampling_cols[1],
                   sampling_cols[2]});
  }
  std::printf("(times in milliseconds)\n");
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape (paper Fig. 11): total time dips at moderate a*b "
      "and rises for large a*b as splitter selection grows.\n");
  return 0;
}
