// Shared helpers for the benchmark binaries: flag parsing and the
// executed-vs-paper-scale convention (see docs/DESIGN.md §1).
//
// Every bench runs out of the box at a reduced, executable scale and prints
// the same rows/series as the paper's table or figure; pass --paper-scale to
// evaluate the calibrated analytic model on the paper's exact grid instead.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace pmps::bench {

struct Flags {
  bool paper_scale = false;
  bool csv = false;
  int reps = 3;
  std::uint64_t seed = 1;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper-scale") == 0) {
        f.paper_scale = true;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        f.csv = true;
      } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        f.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        f.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --paper-scale (analytic model on the paper's grid)\n"
            "       --csv (CSV output)  --reps N  --seed S\n");
        std::exit(0);
      }
    }
    return f;
  }
};

/// Executed-simulation grid (small enough for one host).
inline const std::vector<int>& executed_ps() {
  static const std::vector<int> ps{16, 64, 256};
  return ps;
}
inline const std::vector<std::int64_t>& executed_ns() {
  static const std::vector<std::int64_t> ns{1000, 10000};
  return ns;
}

/// The paper's §7.2 grid.
inline const std::vector<std::int64_t>& paper_ps() {
  static const std::vector<std::int64_t> ps{512, 2048, 8192, 32768};
  return ps;
}
inline const std::vector<std::int64_t>& paper_ns() {
  static const std::vector<std::int64_t> ns{100000, 1000000, 10000000};
  return ns;
}

}  // namespace pmps::bench
