// Shared helpers for the benchmark binaries: flag parsing and the
// executed-vs-paper-scale convention (see docs/DESIGN.md §1).
//
// Every bench runs out of the box at a reduced, executable scale and prints
// the same rows/series as the paper's table or figure; pass --paper-scale to
// evaluate the calibrated analytic model on the paper's exact grid instead.

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "svc/service.hpp"

namespace pmps::bench {

struct Flags {
  bool paper_scale = false;
  bool large_p = false;  ///< append the fiber engine's p ∈ {1024, 4096} rows
  bool huge_p = false;   ///< append the executed p ∈ {8192, 32768} rows
  bool csv = false;
  int reps = 3;
  std::uint64_t seed = 1;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper-scale") == 0) {
        f.paper_scale = true;
      } else if (std::strcmp(argv[i], "--large-p") == 0) {
        f.large_p = true;
      } else if (std::strcmp(argv[i], "--huge-p") == 0) {
        f.large_p = true;
        f.huge_p = true;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        f.csv = true;
      } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        f.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        f.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "flags: --paper-scale (analytic model on the paper's grid)\n"
            "       --large-p (executed smoke rows at p = 1024, 4096)\n"
            "       --huge-p (executed smoke rows up to p = 32768; implies "
            "--large-p)\n"
            "       --csv (CSV output)  --reps N  --seed S\n");
        std::exit(0);
      }
    }
    return f;
  }
};

/// Executed-simulation grid (small enough for one host). With --large-p the
/// fiber engine's paper-scale smoke rows are appended — infeasible under the
/// legacy thread-per-PE backend, routine under the fiber scheduler. With
/// --huge-p the grid reaches the paper's p = 2^15 (stack-pooled fibers,
/// sharded mailbox, idle-phase fast-forward).
inline std::vector<int> executed_ps(const Flags& f) {
  std::vector<int> ps{16, 64, 256};
  if (f.large_p) {
    ps.push_back(1024);
    ps.push_back(4096);
  }
  if (f.huge_p) {
    ps.push_back(8192);
    ps.push_back(32768);
  }
  return ps;
}
inline const std::vector<std::int64_t>& executed_ns() {
  static const std::vector<std::int64_t> ns{1000, 10000};
  return ns;
}

/// Large-p rows are smoke tests, not sweeps: skip (p, n/p, levels)
/// combinations that are infeasible to execute routinely on one host —
/// oversized per-PE inputs, and single-level configurations whose Θ(p²)
/// message count is the very pathology multi-level algorithms remove.
inline bool feasible_row(int p, std::int64_t n_per_pe, int levels = 2) {
  if (p < 1024) return true;
  if (p >= 8192) return n_per_pe <= 100 && levels >= 3;
  return n_per_pe <= 1000 && levels >= 2;
}

/// Lowest level count worth executing at this p (cf. feasible_row).
inline int min_levels_for(int p) {
  if (p >= 8192) return 3;
  return p >= 1024 ? 2 : 1;
}

/// Reps for one grid row: large-p smoke rows are capped at 2, huge-p at 1.
inline int reps_for(const Flags& f, int p) {
  if (p >= 8192) return 1;
  return p >= 1024 ? std::min(f.reps, 2) : f.reps;
}

/// The paper's §7.2 grid (p up to 2^15), extended one step beyond the paper
/// (2^17) now that the executed engine reaches paper scale itself.
inline const std::vector<std::int64_t>& paper_ps() {
  static const std::vector<std::int64_t> ps{512, 2048, 8192, 32768, 131072};
  return ps;
}
inline const std::vector<std::int64_t>& paper_ns() {
  static const std::vector<std::int64_t> ns{100000, 1000000, 10000000};
  return ns;
}

/// Host (not virtual) time in seconds, for the host-time microbenchmarks.
inline double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Outcome of a repetition batch run through the sort service.
struct RepJobsOutcome {
  std::vector<harness::RunResult> results;  ///< per rep, submission order
  double host_seconds = 0;                  ///< submit-to-last-result time
};

/// Runs `reps` repetitions of `base` as overlapping jobs on `service`
/// (seed varied per rep when `vary_seed`, matching the serial convention of
/// re-running with seed + r). Each rep's virtual results are bit-identical
/// to a serial run_sort_experiment of the same config; only host time
/// changes. This is how benches collapse their repetition loops into one
/// warm service batch instead of `reps` cold engine spin-ups.
inline RepJobsOutcome run_reps_as_jobs(svc::SortService& service,
                                       const harness::RunConfig& base,
                                       int reps, bool vary_seed = true) {
  RepJobsOutcome out;
  const double t0 = now_sec();
  std::vector<harness::SortJob> jobs;
  jobs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    harness::RunConfig cfg = base;
    if (vary_seed) cfg.seed = base.seed + static_cast<std::uint64_t>(r);
    jobs.push_back(harness::submit_sort_experiment(service, cfg));
  }
  out.results.reserve(jobs.size());
  for (auto& j : jobs) out.results.push_back(j.result());
  out.host_seconds = now_sec() - t0;
  return out;
}

/// The serial counterpart of run_reps_as_jobs: fresh engine per rep, same
/// seed convention — the baseline the service's host-time delta is taken
/// against.
inline RepJobsOutcome run_reps_serial(const harness::RunConfig& base,
                                      int reps, bool vary_seed = true) {
  RepJobsOutcome out;
  const double t0 = now_sec();
  out.results.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    harness::RunConfig cfg = base;
    if (vary_seed) cfg.seed = base.seed + static_cast<std::uint64_t>(r);
    out.results.push_back(harness::run_sort_experiment(cfg));
  }
  out.host_seconds = now_sec() - t0;
  return out;
}

}  // namespace pmps::bench
