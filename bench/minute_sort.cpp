// MinuteSort-regime bench (§7.3): executed AMS-sort over 100-byte
// sort-benchmark records, through the out-of-core path.
//
// The paper positions AMS-sort against the sortbenchmark.org MinuteSort
// entries (TritonSort, Baidu-Sort), whose regime is 100-byte records far
// larger than RAM. This bench runs that regime end to end on the simulated
// cluster: a (n/p × budget) grid of Record100 AMS sorts — plus the same
// grid over plain u64 keys as an ablation — reporting the MinuteSort
// figure of merit (records sorted per simulated minute) and the spill I/O
// each budget induces. Budgets are fractions of the per-PE payload, so
// every budgeted row actually exercises streaming classification and the
// fan-in-bounded multi-pass merge.
//
// Results land in BENCH_minute_sort.json. With --check the bench is the
// CI acceptance gate for the MinuteSort regime: every row must verify,
// budgeted rows must spill, virtual time and the order-dependent output
// signature must be identical across budgets — and a final run lowers
// RLIMIT_NOFILE to 64 in-process and executes a budgeted Record100 sort at
// p = 1024 (one shared spill file for all 1024 PEs), asserting it verifies
// and is bit-identical to the unbudgeted in-memory run.

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "em/memory_budget.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

namespace {

constexpr int kP = 32;
constexpr std::int64_t kBlockBytes = 2048;

struct Row {
  harness::ElementKind element = harness::ElementKind::kRecord100;
  std::int64_t n_per_pe = 0;
  int divisor = 0;  ///< budget = payload / divisor; 0 = unlimited
  double recs_per_sim_minute = 0;
  double virtual_time = 0;
  double runs_per_sec = 0;
  std::uint64_t signature = 0;
  bool verified = false;
  em::SpillTotals spill;
};

harness::RunConfig base_config(harness::ElementKind element,
                               std::int64_t n_per_pe, int divisor, int p,
                               std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = n_per_pe;
  cfg.element = element;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.ams.levels = 2;
  cfg.seed = seed;
  if (divisor > 0) {
    const std::int64_t elem_bytes =
        element == harness::ElementKind::kRecord100 ? 100 : 8;
    cfg.budget.bytes = std::max<std::int64_t>(1, n_per_pe * elem_bytes / divisor);
    cfg.budget.block_bytes = kBlockBytes;
  }
  return cfg;
}

std::string budget_label(int divisor) {
  if (divisor == 0) return "unlimited";
  return "payload/" + std::to_string(divisor);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) check = true;

  const std::vector<std::int64_t> ns{500, 2000};
  const std::vector<int> divisors{0, 4, 16};

  std::printf(
      "MinuteSort regime: executed AMS-sort, p = %d, Record100 vs u64, "
      "spill blocks of %lld B\n\n",
      kP, static_cast<long long>(kBlockBytes));

  std::vector<Row> rows;
  harness::Table table({"element", "n/p", "budget", "recs/sim-min",
                        "virt time [s]", "runs/s", "spilled [KB]",
                        "merge passes", "verify"});

  for (const auto element :
       {harness::ElementKind::kRecord100, harness::ElementKind::kU64}) {
    for (const auto n_per_pe : ns) {
      for (const int divisor : divisors) {
        Row row;
        row.element = element;
        row.n_per_pe = n_per_pe;
        row.divisor = divisor;
        const int reps = std::max(1, flags.reps);
        double total_sec = 0;
        for (int rep = 0; rep < reps; ++rep) {
          const auto cfg =
              base_config(element, n_per_pe, divisor, kP, flags.seed);
          const double t0 = bench::now_sec();
          const auto res = harness::run_sort_experiment(cfg);
          total_sec += bench::now_sec() - t0;
          row.virtual_time = res.wall_time();
          row.signature = res.check.out_signature;
          row.verified = res.check.ok();
          row.spill = res.spill;
          const double total_recs = static_cast<double>(res.check.total);
          row.recs_per_sim_minute =
              res.wall_time() > 0 ? total_recs * 60.0 / res.wall_time() : 0;
        }
        row.runs_per_sec = total_sec > 0 ? reps / total_sec : 0;
        rows.push_back(row);
        table.add_row({std::string(harness::element_name(element)),
                       std::to_string(n_per_pe), budget_label(divisor),
                       harness::format_double(row.recs_per_sim_minute, 0),
                       harness::format_double(row.virtual_time, 4),
                       harness::format_double(row.runs_per_sec, 2),
                       std::to_string(row.spill.bytes_written / 1024),
                       std::to_string(row.spill.merge_passes),
                       row.verified ? "OK" : "FAIL"});
      }
    }
  }
  flags.csv ? table.print_csv() : table.print();

  if (FILE* f = std::fopen("BENCH_minute_sort.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"minute_sort\",\n  \"p\": %d,\n"
                 "  \"block_bytes\": %lld,\n  \"rows\": [\n",
                 kP, static_cast<long long>(kBlockBytes));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"element\": \"%s\", \"n_per_pe\": %lld, "
          "\"budget_divisor\": %d, \"recs_per_sim_minute\": %.1f, "
          "\"virtual_time\": %.6f, \"runs_per_sec\": %.3f, "
          "\"bytes_spilled\": %lld, \"merge_passes\": %lld, "
          "\"writes_behind\": %lld, \"write_coalesced\": %lld, "
          "\"prefetch_hits\": %lld, \"prefetch_misses\": %lld, "
          "\"io_wait_sec\": %.4f, \"verified\": %s}%s\n",
          std::string(harness::element_name(r.element)).c_str(),
          static_cast<long long>(r.n_per_pe), r.divisor, r.recs_per_sim_minute,
          r.virtual_time, r.runs_per_sec,
          static_cast<long long>(r.spill.bytes_written),
          static_cast<long long>(r.spill.merge_passes),
          static_cast<long long>(r.spill.writes_behind),
          static_cast<long long>(r.spill.write_coalesced),
          static_cast<long long>(r.spill.prefetch_hits),
          static_cast<long long>(r.spill.prefetch_misses),
          r.spill.io_wait_sec,
          r.verified ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_minute_sort.json\n");
  }

  if (!check) return 0;

  bool ok = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const char* elem = r.element == harness::ElementKind::kRecord100
                           ? "record100"
                           : "u64";
    if (!r.verified) {
      std::printf("check: FAIL — %s n/p=%lld %s did not verify\n", elem,
                  static_cast<long long>(r.n_per_pe),
                  budget_label(r.divisor).c_str());
      ok = false;
    }
    if (r.divisor > 0 && !r.spill.spilled()) {
      std::printf("check: FAIL — %s n/p=%lld %s spilled nothing\n", elem,
                  static_cast<long long>(r.n_per_pe),
                  budget_label(r.divisor).c_str());
      ok = false;
    }
    if (r.divisor == 0 && r.spill.spilled()) {
      std::printf("check: FAIL — %s n/p=%lld spilled while unlimited\n", elem,
                  static_cast<long long>(r.n_per_pe));
      ok = false;
    }
    // Regression floor: the simulated cluster must stay in a sane
    // throughput regime (two orders of magnitude below observed values).
    if (r.recs_per_sim_minute < 1e4) {
      std::printf("check: FAIL — %s n/p=%lld %s below the throughput floor "
                  "(%.0f recs/sim-min)\n",
                  elem, static_cast<long long>(r.n_per_pe),
                  budget_label(r.divisor).c_str(), r.recs_per_sim_minute);
      ok = false;
    }
    // Budgeted rows must be bit-identical to the unlimited row of the same
    // (element, n/p) — rows are grouped with divisor 0 first.
    const Row& base = rows[i - i % divisors.size()];
    if (r.signature != base.signature) {
      std::printf("check: FAIL — %s n/p=%lld %s not bit-identical to the "
                  "in-memory run\n",
                  elem, static_cast<long long>(r.n_per_pe),
                  budget_label(r.divisor).c_str());
      ok = false;
    }
    if (r.virtual_time != base.virtual_time) {
      std::printf("check: FAIL — %s n/p=%lld %s changed virtual time "
                  "(%.6f vs %.6f): spilling leaked into the machine model\n",
                  elem, static_cast<long long>(r.n_per_pe),
                  budget_label(r.divisor).c_str(), r.virtual_time,
                  base.virtual_time);
      ok = false;
    }
  }

  // Acceptance run (ISSUE 9): RLIMIT_NOFILE = 64 in-process, then a
  // budgeted Record100 AMS sort at p = 1024 — 1024 spilling PEs sharing
  // one spill file — must execute, verify, engage the multi-pass merge,
  // and match the unbudgeted run bit-for-bit in output and virtual time.
  {
    struct rlimit lim;
    PMPS_CHECK(getrlimit(RLIMIT_NOFILE, &lim) == 0);
    lim.rlim_cur = 64;
    PMPS_CHECK(setrlimit(RLIMIT_NOFILE, &lim) == 0);

    const int p = 1024;
    const std::int64_t n_per_pe = 200;  // 20 KB of records per PE
    auto mem_cfg = base_config(harness::ElementKind::kRecord100, n_per_pe,
                               0, p, flags.seed);
    auto spill_cfg = base_config(harness::ElementKind::kRecord100, n_per_pe,
                                 0, p, flags.seed);
    spill_cfg.budget.bytes = 2048;      // 20 records resident per PE stage
    spill_cfg.budget.block_bytes = 512;
    const auto mem = harness::run_sort_experiment(mem_cfg);
    const auto spill = harness::run_sort_experiment(spill_cfg);
    std::printf(
        "\nacceptance: p=1024 Record100 under RLIMIT_NOFILE=64 — "
        "verify %s/%s, spilled %lld KB, merge passes %lld, "
        "virt %.6f vs %.6f\n",
        mem.check.ok() ? "OK" : "FAIL", spill.check.ok() ? "OK" : "FAIL",
        static_cast<long long>(spill.spill.bytes_written / 1024),
        static_cast<long long>(spill.spill.merge_passes), spill.wall_time(),
        mem.wall_time());
    if (!mem.check.ok() || !spill.check.ok()) ok = false;
    if (!spill.spill.spilled() || spill.spill.merge_passes < 1) {
      std::printf("check: FAIL — acceptance run did not exercise the "
                  "multi-pass spill path\n");
      ok = false;
    }
    if (spill.check.out_signature != mem.check.out_signature ||
        spill.wall_time() != mem.wall_time()) {
      std::printf("check: FAIL — acceptance run not bit-identical to the "
                  "in-memory run\n");
      ok = false;
    }
  }

  if (ok)
    std::printf(
        "check: OK (all rows verified; budgeted rows spilled; outputs "
        "bit-identical and virtual time unchanged across budgets; p=1024 "
        "shared-spill-file acceptance passed under RLIMIT_NOFILE=64)\n");
  return ok ? 0 : 1;
}
