// Collectives-throughput microbench: host-time runs/sec of allgatherv and
// alltoallv at p ∈ {256, 1024, 4096}, flat-buffer API vs the seed's
// nested-vector implementation (kept here, verbatim in structure, as the
// "before" baseline — the library API itself is flat-only now).
//
// What the flat API removes is *allocation*, not communication: the seed
// gatherv re-serialised its accumulator on every combine step and
// allgatherv/alltoallv returned vector<vector<T>> — one heap allocation per
// rank per PE, Θ(p²) per collective across the simulation at p = 4096. Both
// variants exchange byte-identical messages (same virtual time); only the
// host-side bookkeeping differs, which is exactly what this bench measures.
//
// Results land in BENCH_micro_collectives.json, both sets of numbers
// recorded side by side. With --check the bench exits non-zero unless the
// flat allgatherv beats the nested baseline at p = 4096 and every flat row
// completed — the acceptance criteria CI enforces.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "harness/tables.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"

using namespace pmps;

namespace {

using bench::now_sec;

// ---------------------------------------------------------------------------
// The seed's nested-vector collectives (the "before" numbers). Identical
// message structure to the flat versions — only the host-side data shapes
// differ.
// ---------------------------------------------------------------------------
namespace nested {

std::vector<std::vector<std::int64_t>> gatherv(
    net::Comm& comm, std::span<const std::int64_t> local, int root = 0) {
  using T = std::int64_t;
  const int p = comm.size();
  const std::uint64_t tag = comm.next_tag_block();
  const int vrank = (comm.rank() - root + p) % p;

  std::vector<std::pair<int, std::vector<T>>> acc;
  acc.emplace_back(vrank, std::vector<T>(local.begin(), local.end()));

  for (int step = 1; step < p; step <<= 1) {
    if ((vrank & step) != 0) {
      // Re-serialise the whole accumulator and send to the parent.
      std::vector<std::int64_t> header;
      header.push_back(static_cast<std::int64_t>(acc.size()));
      for (auto& [r, v] : acc) {
        header.push_back(r);
        header.push_back(static_cast<std::int64_t>(v.size()));
      }
      std::vector<T> payload;
      for (auto& [r, v] : acc)
        payload.insert(payload.end(), v.begin(), v.end());
      const int vdest = vrank - step;
      comm.send<std::int64_t>(
          (vdest + root) % p, tag + 2 * static_cast<std::uint64_t>(vrank),
          std::span<const std::int64_t>(header));
      comm.send<T>((vdest + root) % p,
                   tag + 2 * static_cast<std::uint64_t>(vrank) + 1,
                   std::span<const T>(payload));
      break;
    }
    const int vsrc = vrank + step;
    if (vsrc < p) {
      auto header = comm.recv<std::int64_t>(
          (vsrc + root) % p, tag + 2 * static_cast<std::uint64_t>(vsrc));
      auto payload = comm.recv<T>(
          (vsrc + root) % p, tag + 2 * static_cast<std::uint64_t>(vsrc) + 1);
      std::size_t off = 0;
      const auto cnt = static_cast<std::size_t>(header[0]);
      for (std::size_t i = 0; i < cnt; ++i) {
        const int r = static_cast<int>(header[1 + 2 * i]);
        const auto sz = static_cast<std::size_t>(header[2 + 2 * i]);
        acc.emplace_back(r, std::vector<T>(payload.begin() + static_cast<std::ptrdiff_t>(off),
                                           payload.begin() + static_cast<std::ptrdiff_t>(off + sz)));
        off += sz;
      }
    }
  }

  std::vector<std::vector<T>> out;
  if (comm.rank() == root) {
    out.resize(static_cast<std::size_t>(p));
    for (auto& [r, v] : acc) out[static_cast<std::size_t>(r)] = std::move(v);
  }
  return out;
}

std::vector<std::vector<std::int64_t>> allgatherv(
    net::Comm& comm, std::span<const std::int64_t> local) {
  using T = std::int64_t;
  const int p = comm.size();
  auto parts = gatherv(comm, local, 0);

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(p));
  std::vector<T> flat;
  if (comm.rank() == 0) {
    for (int i = 0; i < p; ++i) {
      sizes[static_cast<std::size_t>(i)] =
          static_cast<std::int64_t>(parts[static_cast<std::size_t>(i)].size());
      flat.insert(flat.end(), parts[static_cast<std::size_t>(i)].begin(),
                  parts[static_cast<std::size_t>(i)].end());
    }
  }
  coll::bcast(comm, sizes, 0);
  coll::bcast(comm, flat, 0);

  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  std::size_t off = 0;
  for (int i = 0; i < p; ++i) {
    const auto sz = static_cast<std::size_t>(sizes[static_cast<std::size_t>(i)]);
    out[static_cast<std::size_t>(i)].assign(
        flat.begin() + static_cast<std::ptrdiff_t>(off),
        flat.begin() + static_cast<std::ptrdiff_t>(off + sz));
    off += sz;
  }
  return out;
}

std::vector<std::vector<std::int64_t>> alltoallv(
    net::Comm& comm, std::vector<std::vector<std::int64_t>> send) {
  using T = std::int64_t;
  const int p = comm.size();
  std::vector<std::vector<T>> recv(static_cast<std::size_t>(p));
  const int me = comm.rank();
  recv[static_cast<std::size_t>(me)] =
      std::move(send[static_cast<std::size_t>(me)]);
  send[static_cast<std::size_t>(me)].clear();
  comm.charge(comm.machine().copy_cost(
      recv[static_cast<std::size_t>(me)].size() * sizeof(T)));
  if (p == 1) return recv;

  // 1-factor schedule, as the seed default.
  std::vector<std::int64_t> out_counts(static_cast<std::size_t>(p), 0);
  for (int i = 0; i < p; ++i)
    out_counts[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(send[static_cast<std::size_t>(i)].size());
  const auto in_counts = coll::alltoall_counts(comm, out_counts);

  const std::uint64_t tag = comm.next_tag_block();
  const bool even = (p % 2) == 0;
  const int rounds = even ? p - 1 : p;
  for (int r = 0; r < rounds; ++r) {
    int partner;
    if (even) {
      const int m = p - 1;
      if (me == p - 1) {
        partner =
            static_cast<int>((static_cast<std::int64_t>(r) * (p / 2)) % m);
      } else {
        const int q = ((r - me) % m + m) % m;
        partner = (q == me) ? p - 1 : q;
      }
    } else {
      partner = ((r - me) % p + p) % p;
      if (partner == me) continue;
    }
    const auto& out = send[static_cast<std::size_t>(partner)];
    if (!out.empty()) {
      comm.send<T>(partner, tag + static_cast<std::uint64_t>(r),
                   std::span<const T>(out));
    }
    if (in_counts[static_cast<std::size_t>(partner)] > 0) {
      recv[static_cast<std::size_t>(partner)] =
          comm.recv<T>(partner, tag + static_cast<std::uint64_t>(r));
    }
  }
  return recv;
}

}  // namespace nested

// ---------------------------------------------------------------------------
// Measured programs. Each consumes its result so nothing is optimised away.
// ---------------------------------------------------------------------------

/// Sparse destination set for alltoallv: a dense exchange at p = 4096 would
/// be Θ(p²) messages per run — the single-level pathology, not a microbench.
constexpr int kAlltoallFanout = 8;
constexpr std::int64_t kWordsPerPair = 2;

std::int64_t consume(std::span<const std::int64_t> v) {
  std::int64_t acc = 0;
  for (auto x : v) acc += x;
  return acc;
}

void allgatherv_flat(net::Comm& comm) {
  const std::int64_t mine[1] = {comm.rank()};
  auto parts = coll::allgatherv(comm, std::span<const std::int64_t>(mine, 1));
  PMPS_CHECK(parts.parts() == comm.size());
  (void)consume(parts.flat());
}

void allgatherv_nested(net::Comm& comm) {
  const std::int64_t mine[1] = {comm.rank()};
  auto parts = nested::allgatherv(comm, std::span<const std::int64_t>(mine, 1));
  PMPS_CHECK(static_cast<int>(parts.size()) == comm.size());
  std::int64_t acc = 0;
  for (const auto& v : parts) acc += consume({v.data(), v.size()});
  (void)acc;
}

void alltoallv_flat(net::Comm& comm) {
  const int p = comm.size();
  std::vector<std::int64_t> counts(static_cast<std::size_t>(p), 0);
  std::vector<std::int64_t> sendbuf;
  for (int j = 1; j <= kAlltoallFanout && j < p; ++j) {
    const int dest = (comm.rank() + j * 7) % p;
    counts[static_cast<std::size_t>(dest)] = kWordsPerPair;
  }
  for (int i = 0; i < p; ++i)
    sendbuf.insert(sendbuf.end(),
                   static_cast<std::size_t>(counts[static_cast<std::size_t>(i)]),
                   comm.rank());
  auto recv = coll::alltoallv(
      comm, std::span<const std::int64_t>(sendbuf.data(), sendbuf.size()),
      std::span<const std::int64_t>(counts.data(), counts.size()));
  (void)consume(recv.flat());
}

void alltoallv_nested(net::Comm& comm) {
  const int p = comm.size();
  std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(p));
  for (int j = 1; j <= kAlltoallFanout && j < p; ++j) {
    const int dest = (comm.rank() + j * 7) % p;
    send[static_cast<std::size_t>(dest)].assign(
        static_cast<std::size_t>(kWordsPerPair), comm.rank());
  }
  auto recv = nested::alltoallv(comm, std::move(send));
  std::int64_t acc = 0;
  for (const auto& v : recv) acc += consume({v.data(), v.size()});
  (void)acc;
}

struct Measurement {
  int runs = 0;
  double seconds = 0;
  double runs_per_sec = 0;
};

/// Runs the program repeatedly on one engine until ~min_seconds of host time
/// accumulated (at least once, at most max_runs).
Measurement measure(net::Engine& engine, void (*program)(net::Comm&),
                    double min_seconds, int max_runs) {
  engine.run(program);  // warm-up: fiber pool, payload pool, allocator state
  Measurement m;
  const double t0 = now_sec();
  while (m.runs < max_runs) {
    engine.run(program);
    ++m.runs;
    m.seconds = now_sec() - t0;
    if (m.seconds >= min_seconds) break;
  }
  m.runs_per_sec = m.seconds > 0 ? m.runs / m.seconds : 0;
  return m;
}

std::string fmt(double v) { return harness::format_double(v, 1); }

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--check") check = true;

  const std::vector<int> ps{256, 1024, 4096};
  const double min_seconds = 0.25;

  std::printf(
      "Collectives microbench: host-time runs/sec, flat-buffer API vs the "
      "seed nested-vector implementation\n(alltoallv uses a %d-destination "
      "sparse pattern under the 1-factor schedule)\n\n",
      kAlltoallFanout);

  struct Row {
    int p;
    const char* op;
    double nested_rps = 0, flat_rps = 0, speedup = 0;
  };
  std::vector<Row> rows;
  harness::Table table(
      {"p", "op", "seed nested [runs/s]", "flat [runs/s]", "speedup"});

  for (int p : ps) {
    const int max_runs = p >= 4096 ? 3 : (p >= 1024 ? 25 : 100);
    net::Engine engine(p, net::MachineParams::supermuc_like(), flags.seed);
    const std::pair<const char*, std::pair<void (*)(net::Comm&),
                                           void (*)(net::Comm&)>>
        ops[] = {{"allgatherv", {allgatherv_nested, allgatherv_flat}},
                 {"alltoallv", {alltoallv_nested, alltoallv_flat}}};
    for (const auto& [op, programs] : ops) {
      Row row{.p = p, .op = op};
      row.nested_rps =
          measure(engine, programs.first, min_seconds, max_runs).runs_per_sec;
      row.flat_rps =
          measure(engine, programs.second, min_seconds, max_runs).runs_per_sec;
      if (row.nested_rps > 0) row.speedup = row.flat_rps / row.nested_rps;
      rows.push_back(row);
      table.add_row({std::to_string(p), op, fmt(row.nested_rps),
                     fmt(row.flat_rps), fmt(row.speedup) + "x"});
    }
  }
  flags.csv ? table.print_csv() : table.print();

  if (FILE* f = std::fopen("BENCH_micro_collectives.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_collectives\",\n"
                 "  \"alltoall_fanout\": %d,\n  \"rows\": [\n",
                 kAlltoallFanout);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"p\": %d, \"op\": \"%s\", "
                   "\"seed_nested_runs_per_sec\": %.2f, "
                   "\"flat_runs_per_sec\": %.2f, \"speedup\": %.2f}%s\n",
                   r.p, r.op, r.nested_rps, r.flat_rps, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_micro_collectives.json\n");
  }

  if (check) {
    bool ok = true;
    for (const Row& r : rows) {
      if (r.flat_rps <= 0) {
        std::printf("check: FAIL — %s at p=%d did not complete\n", r.op, r.p);
        ok = false;
      }
      if (r.p == 4096 && std::string(r.op) == "allgatherv" &&
          r.flat_rps <= r.nested_rps) {
        std::printf(
            "check: FAIL — flat allgatherv at p=4096 is %.2f runs/s, not "
            "faster than the seed nested implementation (%.2f runs/s)\n",
            r.flat_rps, r.nested_rps);
        ok = false;
      }
    }
    if (ok)
      std::printf(
          "check: OK (all rows completed; flat allgatherv beats nested at "
          "p=4096)\n");
    return ok ? 0 : 1;
  }
  return 0;
}
