// §7.2 prediction check: "we assume the three level version becomes faster
// than the two level version executed at more than four islands. In that
// case, it is more reasonable to set the number of groups in the first
// level equal [to] the amount of islands. This results in inter-island
// communication just within the first level."
//
// The paper could not test this (only 4 islands were available). The
// simulated cluster can: we shrink the hierarchy (4 PEs/node, 4
// nodes/island = 16 PEs/island) so that up to 16 islands fit in an
// executable simulation, and compare
//   * 2-level AMS-sort (generic rule: {p/node, node}) — its first exchange
//     crosses islands with a large r, and
//   * 3-level island-aligned AMS-sort ({#islands, nodes/island, node}) —
//     only the first, small-r exchange crosses islands,
// as the island count grows. Also evaluated at the paper's true scale with
// the analytic model.

#include <cstdio>
#include <string>
#include <vector>

#include "ams/level_config.hpp"
#include "bench_common.hpp"
#include "harness/model.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

namespace {

double executed(const net::MachineParams& machine, int p, std::int64_t n,
                std::vector<int> rs, const bench::Flags& flags) {
  std::vector<double> times;
  for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
    harness::RunConfig cfg;
    cfg.p = p;
    cfg.n_per_pe = n;
    cfg.machine = machine;
    cfg.algorithm = harness::Algorithm::kAms;
    cfg.ams.group_counts = rs;
    cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 53;
    const auto res = harness::run_sort_experiment(cfg);
    if (!res.check.ok()) {
      std::fprintf(stderr, "verification FAILED\n");
      std::exit(1);
    }
    times.push_back(res.wall_time());
  }
  return harness::median(times);
}

std::string join(const std::vector<int>& rs) {
  std::string s;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (i) s += '/';
    s += std::to_string(rs[i]);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);

  if (flags.paper_scale) {
    std::printf(
        "Island prediction (paper scale, analytic model): SuperMUC islands "
        "of 8192 PEs, n/p=1e5\n\n");
    const auto machine = net::MachineParams::supermuc_like();
    harness::Table table({"islands", "p", "2-level (generic)",
                          "3-level (island-aligned)", "3L/2L"});
    for (int islands : {1, 2, 4, 8, 16}) {
      const std::int64_t p = static_cast<std::int64_t>(islands) * 8192;
      const auto two = ams::level_group_counts(p, 2);
      const std::vector<int> three{islands, 512, 16};
      const double t2 = harness::model_ams(machine, p, 100000, two, 8, 16).total;
      const double t3 =
          harness::model_ams(machine, p, 100000,
                             islands == 1 ? std::vector<int>{512, 16} : three,
                             8, 16)
              .total;
      table.add_row({std::to_string(islands), std::to_string(p),
                     harness::format_double(t2, 4),
                     harness::format_double(t3, 4),
                     harness::format_double(t3 / t2, 2)});
    }
    flags.csv ? table.print_csv() : table.print();
    std::printf(
        "\npaper's conjecture: the ratio drops below 1 beyond ~4 islands.\n");
    return 0;
  }

  // Executed: shrunk hierarchy, 16 PEs per island.
  auto machine = net::MachineParams::supermuc_like();
  machine.pes_per_node = 4;
  machine.nodes_per_island = 4;

  std::printf(
      "Island prediction (executed, shrunk hierarchy: 4 PEs/node, 4 "
      "nodes/island): 2-level generic vs 3-level island-aligned AMS-sort, "
      "n/p=2000\n\n");
  harness::Table table({"islands", "p", "2L config", "2L [s]", "3L config",
                        "3L [s]", "3L/2L"});
  // --large-p extends the island sweep to paper-scale PE counts (64 islands
  // of 16 PEs = 1024 PEs), where the island-aligned advantage is clearest.
  std::vector<int> island_counts{1, 2, 4, 8, 16};
  if (flags.large_p) {
    island_counts.push_back(32);
    island_counts.push_back(64);
  }
  for (int islands : island_counts) {
    const int p = islands * 16;
    const auto two = ams::level_group_counts(p, 2, machine.pes_per_node);
    const auto three = ams::level_group_counts_for_machine(p, machine);
    const double t2 = executed(machine, p, 2000, two, flags);
    const double t3 = executed(machine, p, 2000, three, flags);
    table.add_row({std::to_string(islands), std::to_string(p), join(two),
                   harness::format_double(t2, 6), join(three),
                   harness::format_double(t3, 6),
                   harness::format_double(t3 / t2, 2)});
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected: island-aligned 3 levels overtake the generic 2-level "
      "configuration as the island count grows (the paper's §7.2 "
      "conjecture).\n");
  return 0;
}
