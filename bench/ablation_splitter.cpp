// Ablation: splitter selection schemes (§6 vs [13]).
//
// AMS-sort sorts its sample with the fast work-inefficient algorithm (§4.2)
// and uses overpartitioning; the Gerbessiotis–Valiant baseline gathers the
// sample on one PE, sorts sequentially and broadcasts. This bench compares
// (a) the splitter-selection phase time and (b) total time / imbalance, as
// p grows — the reason the paper parallelised sample sorting.

#include <cstdio>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/gv_sample_sort.hpp"
#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"
#include "harness/verify.hpp"
#include "harness/workloads.hpp"
#include "seq/partition.hpp"

using namespace pmps;
using net::Phase;

namespace {

struct Outcome {
  double total, splitter;
  double imbalance;
};

Outcome run_gv(int p, std::int64_t n, std::uint64_t seed) {
  net::Engine engine(p, net::MachineParams::supermuc_like(), seed);
  Outcome out{};
  std::mutex mu;
  engine.run([&](net::Comm& comm) {
    auto data = harness::make_workload(harness::Workload::kUniform,
                                       comm.rank(), p, n, seed);
    const auto h = harness::content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));
    baseline::GvConfig cfg;
    cfg.levels = p >= 64 ? 2 : 1;
    // Matched total sample size: AMS draws a·b·r ≈ 16·16·r samples, so give
    // GV the same budget per splitter (it has r−1 splitters, no buckets).
    cfg.oversampling_a = 256;
    cfg.seed = seed;
    baseline::gv_sample_sort(comm, data, cfg);
    const auto check = harness::verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), h, n);
    PMPS_CHECK_MSG(check.ok(), "GV baseline verification failed");
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      out.imbalance = check.imbalance;
    }
  });
  out.total = engine.report().wall_time;
  out.splitter = engine.report().phase(Phase::kSplitterSelection);
  return out;
}

Outcome run_ams(int p, std::int64_t n, std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = n;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.ams.levels = p >= 64 ? 2 : 1;
  cfg.seed = seed;
  const auto res = harness::run_sort_experiment(cfg);
  PMPS_CHECK_MSG(res.check.ok(), "AMS verification failed");
  return {res.wall_time(), res.phase(Phase::kSplitterSelection),
          res.check.imbalance};
}

/// Host-time ablation of element classification: per-element tree descent
/// (the seed implementation) vs the strip-interleaved descent
/// classify_strip() that partition_into_buckets now uses.
void classification_host_time_ablation() {
  using Cls = seq::BucketClassifier<std::uint64_t>;
  std::printf(
      "\nClassification host-time ablation: per-element descent vs "
      "strip-interleaved descent (super-scalar sample sort)\n\n");
  harness::Table table({"buckets", "elements", "scalar [ns/elem]",
                        "strip [ns/elem]", "speedup"});
  Xoshiro256 rng(12345);
  const std::int64_t n = 1 << 20;
  std::vector<std::uint64_t> input(static_cast<std::size_t>(n));
  for (auto& v : input) v = rng();

  for (int k : {16, 64, 256}) {
    std::vector<TaggedKey<std::uint64_t>> splitters;
    for (int i = 1; i < k; ++i)
      splitters.push_back({rng(), 0, static_cast<std::int64_t>(i)});
    std::sort(splitters.begin(), splitters.end());
    const Cls cls(splitters);

    std::vector<std::int32_t> out(static_cast<std::size_t>(n));

    double t0 = bench::now_sec();
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
          cls.classify(input[static_cast<std::size_t>(i)], 1, i));
    }
    const double scalar_ns = (bench::now_sec() - t0) * 1e9 / static_cast<double>(n);
    const std::int64_t checksum_scalar =
        std::accumulate(out.begin(), out.end(), std::int64_t{0});

    t0 = bench::now_sec();
    for (std::int64_t i = 0; i < n; i += Cls::kStrip) {
      const int count =
          static_cast<int>(std::min<std::int64_t>(Cls::kStrip, n - i));
      cls.classify_strip(input.data() + i, count, 1, i, out.data() + i);
    }
    const double strip_ns = (bench::now_sec() - t0) * 1e9 / static_cast<double>(n);
    const std::int64_t checksum_strip =
        std::accumulate(out.begin(), out.end(), std::int64_t{0});
    PMPS_CHECK_MSG(checksum_scalar == checksum_strip,
                   "strip classification diverged from scalar");

    table.add_row({std::to_string(k), std::to_string(n),
                   harness::format_double(scalar_ns, 1),
                   harness::format_double(strip_ns, 1),
                   harness::format_double(scalar_ns / strip_ns, 2) + "x"});
  }
  table.print();
  std::printf(
      "\nexpected: the strip descent interleaves independent dependent-load "
      "chains, so it wins more the deeper the splitter tree.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  const std::int64_t n = 2000;

  std::printf(
      "Splitter-selection ablation: AMS-sort (fast parallel sample sort + "
      "overpartitioning) vs Gerbessiotis–Valiant style (centralised sample "
      "sort, no overpartitioning), n/p=%lld\n\n",
      static_cast<long long>(n));
  harness::Table table({"p", "AMS: split[s]", "GV: split[s]", "AMS: total",
                        "GV: total", "AMS: imbal", "GV: imbal"});
  for (int p : bench::executed_ps(flags)) {
    const std::int64_t n_p = p >= 1024 ? 1000 : n;  // smoke rows stay light
    const auto ams = run_ams(p, n_p, flags.seed);
    if (p >= 1024) {
      // Gathering the whole sample on one PE is the non-scaling design this
      // ablation demonstrates; executing it at paper scale is not worth the
      // host time. The trend is established by p ≤ 256.
      table.add_row({std::to_string(p),
                     harness::format_double(ams.splitter, 6), "-",
                     harness::format_double(ams.total, 6), "-",
                     harness::format_double(ams.imbalance, 3), "-"});
      continue;
    }
    const auto gv = run_gv(p, n_p, flags.seed);
    table.add_row({std::to_string(p), harness::format_double(ams.splitter, 6),
                   harness::format_double(gv.splitter, 6),
                   harness::format_double(ams.total, 6),
                   harness::format_double(gv.total, 6),
                   harness::format_double(ams.imbalance, 3),
                   harness::format_double(gv.imbalance, 3)});
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected: the centralised splitter phase grows ~linearly with the "
      "sample (∝ p), while the parallel fast sort stays flat; AMS-sort's "
      "overpartitioning also yields lower imbalance.\n");

  classification_host_time_ablation();
  return 0;
}
