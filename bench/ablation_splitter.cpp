// Ablation: splitter selection schemes (§6 vs [13]).
//
// AMS-sort sorts its sample with the fast work-inefficient algorithm (§4.2)
// and uses overpartitioning; the Gerbessiotis–Valiant baseline gathers the
// sample on one PE, sorts sequentially and broadcasts. This bench compares
// (a) the splitter-selection phase time and (b) total time / imbalance, as
// p grows — the reason the paper parallelised sample sorting.

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/gv_sample_sort.hpp"
#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"
#include "harness/verify.hpp"
#include "harness/workloads.hpp"

using namespace pmps;
using net::Phase;

namespace {

struct Outcome {
  double total, splitter;
  double imbalance;
};

Outcome run_gv(int p, std::int64_t n, std::uint64_t seed) {
  net::Engine engine(p, net::MachineParams::supermuc_like(), seed);
  Outcome out{};
  std::mutex mu;
  engine.run([&](net::Comm& comm) {
    auto data = harness::make_workload(harness::Workload::kUniform,
                                       comm.rank(), p, n, seed);
    const auto h = harness::content_hash(
        std::span<const std::uint64_t>(data.data(), data.size()));
    baseline::GvConfig cfg;
    cfg.levels = p >= 64 ? 2 : 1;
    // Matched total sample size: AMS draws a·b·r ≈ 16·16·r samples, so give
    // GV the same budget per splitter (it has r−1 splitters, no buckets).
    cfg.oversampling_a = 256;
    cfg.seed = seed;
    baseline::gv_sample_sort(comm, data, cfg);
    const auto check = harness::verify_sorted_output(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), h, n);
    PMPS_CHECK_MSG(check.ok(), "GV baseline verification failed");
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      out.imbalance = check.imbalance;
    }
  });
  out.total = engine.report().wall_time;
  out.splitter = engine.report().phase(Phase::kSplitterSelection);
  return out;
}

Outcome run_ams(int p, std::int64_t n, std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = n;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.ams.levels = p >= 64 ? 2 : 1;
  cfg.seed = seed;
  const auto res = harness::run_sort_experiment(cfg);
  PMPS_CHECK_MSG(res.check.ok(), "AMS verification failed");
  return {res.wall_time(), res.phase(Phase::kSplitterSelection),
          res.check.imbalance};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  const std::int64_t n = 2000;

  std::printf(
      "Splitter-selection ablation: AMS-sort (fast parallel sample sort + "
      "overpartitioning) vs Gerbessiotis–Valiant style (centralised sample "
      "sort, no overpartitioning), n/p=%lld\n\n",
      static_cast<long long>(n));
  harness::Table table({"p", "AMS: split[s]", "GV: split[s]", "AMS: total",
                        "GV: total", "AMS: imbal", "GV: imbal"});
  for (int p : bench::executed_ps()) {
    const auto ams = run_ams(p, n, flags.seed);
    const auto gv = run_gv(p, n, flags.seed);
    table.add_row({std::to_string(p), harness::format_double(ams.splitter, 6),
                   harness::format_double(gv.splitter, 6),
                   harness::format_double(ams.total, 6),
                   harness::format_double(gv.total, 6),
                   harness::format_double(ams.imbalance, 3),
                   harness::format_double(gv.imbalance, 3)});
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected: the centralised splitter phase grows ~linearly with the "
      "sample (∝ p), while the parallel fast sort stays flat; AMS-sort's "
      "overpartitioning also yields lower imbalance.\n");
  return 0;
}
