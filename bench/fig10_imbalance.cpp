// Figure 10 (Appendix E): maximum imbalance among the sorted output groups
// of AMS-sort as a function of the samples per process a·b, for
// overpartitioning factors b ∈ {1, 8, 16}. The paper ran p = 512,
// n/p = 1e5; we execute p = 64, n/p = 1e4 (same mechanics).
//
// Expected shape: imbalance falls roughly like 1/(a·b) while b > 1 keeps a
// head start over plain oversampling at equal a·b (Lemma 2: imbalance
// ~2/b for the bucket-grouping bound even with a = 1).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  // --large-p: one smoke configuration at paper-scale p (1-level AMS-sort at
  // p = 1024 is Θ(p²) messages, so keep n/p small and skip p = 4096).
  const int p = flags.large_p ? 1024 : 64;
  const std::int64_t n_per_pe =
      flags.large_p ? 1000 : (flags.paper_scale ? 100000 : 10000);

  std::printf(
      "Figure 10: max output imbalance vs samples per process (a*b), "
      "1-level AMS-sort, p=%d, n/p=%lld\n\n",
      p, static_cast<long long>(n_per_pe));

  harness::Table table({"a*b", "b=1", "b=8", "b=16"});
  const int ab_step = flags.large_p ? 8 : 2;  // coarser sweep for smoke rows
  for (int ab = 4; ab <= 1024; ab *= ab_step) {
    std::vector<std::string> row{std::to_string(ab)};
    for (int b : {1, 8, 16}) {
      if (ab < b) {
        row.push_back("-");
        continue;
      }
      std::vector<double> imb;
      for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
        harness::RunConfig cfg;
        cfg.p = p;
        cfg.n_per_pe = n_per_pe;
        cfg.algorithm = harness::Algorithm::kAms;
        cfg.ams.levels = 1;
        cfg.ams.overpartition_b = b;
        // a·b samples per *process* in the paper's plot; our sample size is
        // global a·b·r with r = p, so a·b per PE matches directly.
        cfg.ams.oversampling_a = static_cast<double>(ab) / b;
        cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 101;
        const auto res = harness::run_sort_experiment(cfg);
        if (!res.check.ok()) {
          std::fprintf(stderr, "verification FAILED\n");
          return 1;
        }
        imb.push_back(res.check.imbalance);
      }
      row.push_back(harness::format_double(harness::median(imb), 4));
    }
    table.add_row(std::move(row));
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape (paper Fig. 10): imbalance decreases with a*b; at "
      "equal a*b, larger b starts from bounded imbalance thanks to "
      "overpartitioned bucket grouping.\n");
  return 0;
}
