// Table 2: "AMS-sort median wall-times of weak scaling experiments" — for
// each (p, n/p) the median over `reps` runs of the best level choice.
//
// Default: executed simulation on the reduced grid (p ∈ {16,64,256},
// n/p ∈ {1e3,1e4}). --paper-scale: calibrated analytic model on the paper's
// exact grid (p ∈ {512..32768}, n/p ∈ {1e5..1e7}).
//
// Paper reference (seconds):
//            p=512    p=2048   p=8192   p=32768
//   1e5      0.0228   0.0277   0.0359   0.0707
//   1e6      0.2212   0.2589   0.2687   0.9171
//   1e7      2.6523   2.9797   4.0625   6.0932

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "ams/level_config.hpp"
#include "bench_common.hpp"
#include "harness/model.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

namespace {

int max_levels_for(std::int64_t p) { return p >= 64 ? 3 : 2; }

/// Executed: median wall time over reps, for the best k ∈ {1..3}.
double best_executed(int p, std::int64_t n_per_pe, const bench::Flags& flags,
                     int* best_k) {
  double best = std::numeric_limits<double>::infinity();
  for (int k = bench::min_levels_for(p); k <= max_levels_for(p); ++k) {
    std::vector<double> times;
    for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
      harness::RunConfig cfg;
      cfg.p = p;
      cfg.n_per_pe = n_per_pe;
      cfg.algorithm = harness::Algorithm::kAms;
      cfg.ams.levels = k;
      cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 1000 + 7;
      const auto res = harness::run_sort_experiment(cfg);
      if (!res.check.ok()) {
        std::fprintf(stderr, "verification FAILED at p=%d n/p=%lld k=%d\n", p,
                     static_cast<long long>(n_per_pe), k);
        std::exit(1);
      }
      times.push_back(res.wall_time());
    }
    const double med = harness::median(times);
    if (med < best) {
      best = med;
      *best_k = k;
    }
  }
  return best;
}

double best_model(std::int64_t p, std::int64_t n_per_pe, int* best_k) {
  const auto machine = net::MachineParams::supermuc_like();
  double best = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 3; ++k) {
    const auto t = harness::model_ams(machine, p, n_per_pe,
                                      ams::level_group_counts(p, k), 8, 16);
    if (t.total < best) {
      best = t.total;
      *best_k = k;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);

  if (flags.paper_scale) {
    std::printf(
        "Table 2 (paper scale, analytic model): AMS-sort wall-times [s], "
        "best level choice in ()\n\n");
    std::vector<std::string> pheader{"n/p"};
    for (std::int64_t p : bench::paper_ps())
      pheader.push_back("p=" + std::to_string(p));
    harness::Table table(pheader);
    for (std::int64_t n : bench::paper_ns()) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::int64_t p : bench::paper_ps()) {
        int k = 0;
        const double t = best_model(p, n, &k);
        row.push_back(harness::format_double(t, 4) + " (k=" +
                      std::to_string(k) + ")");
      }
      table.add_row(std::move(row));
    }
    flags.csv ? table.print_csv() : table.print();
    std::printf(
        "\npaper (measured on SuperMUC): 0.0228 0.0277 0.0359 0.0707 / "
        "0.2212 0.2589 0.2687 0.9171 / 2.6523 2.9797 4.0625 6.0932\n");
    return 0;
  }

  std::printf(
      "Table 2 (executed simulation, reduced grid): AMS-sort median "
      "virtual wall-times [s] over %d reps, best level in ()\n\n",
      flags.reps);
  const auto ps = bench::executed_ps(flags);
  std::vector<std::string> header{"n/p"};
  for (int p : ps) header.push_back("p=" + std::to_string(p));
  harness::Table table(header);
  for (std::int64_t n : bench::executed_ns()) {
    std::vector<std::string> row{std::to_string(n)};
    for (int p : ps) {
      if (!bench::feasible_row(p, n)) {
        row.push_back("-");
        continue;
      }
      int k = 0;
      const double t = best_executed(p, n, flags, &k);
      row.push_back(harness::format_double(t, 5) + " (k=" + std::to_string(k) +
                    ")");
    }
    table.add_row(std::move(row));
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape: times grow mildly with p at fixed n/p (weak "
      "scaling); multi-level wins at small n/p and large p.\n");
  return 0;
}
