// §7.3 comparison: AMS-sort vs the single-level algorithms — classic sample
// sort with centralised splitters (TritonSort/Baidu-Sort style), exact
// single-level multiway mergesort, and the MP-sort model (exchange followed
// by sorting from scratch).
//
// The paper's headline: at p = 2^14, n/p = 1e5 MP-sort needs 20.45 s,
// ~289× the AMS-sort time; at larger n the gap shrinks to ~6×. A single
// level algorithm does not scale for small inputs.

#include <cstdio>
#include <string>
#include <vector>

#include "ams/level_config.hpp"
#include "bench_common.hpp"
#include "harness/model.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

namespace {

double executed_time(harness::Algorithm algo, int p, std::int64_t n,
                     const bench::Flags& flags) {
  std::vector<double> times;
  for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
    harness::RunConfig cfg;
    cfg.p = p;
    cfg.n_per_pe = n;
    cfg.algorithm = algo;
    cfg.ams.levels = p >= 64 ? 2 : 1;
    cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 97;
    const auto res = harness::run_sort_experiment(cfg);
    if (!res.check.ok()) {
      std::fprintf(stderr, "verification FAILED (%s)\n",
                   std::string(harness::algorithm_name(algo)).c_str());
      std::exit(1);
    }
    times.push_back(res.wall_time());
  }
  return harness::median(times);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);

  if (flags.paper_scale) {
    std::printf(
        "§7.3 comparison (paper scale, analytic model): slowdown vs "
        "2-level AMS-sort\n\n");
    const auto machine = net::MachineParams::supermuc_like();
    harness::Table table(
        {"p", "n/p", "AMS-2L[s]", "MP-sort-like[s]", "slowdown"});
    for (std::int64_t p : {std::int64_t{16384}, std::int64_t{32768}}) {
      for (std::int64_t n : bench::paper_ns()) {
        const double ams = harness::model_ams(
            machine, p, n, ams::level_group_counts(p, 2), 8, 16).total;
        const double mp =
            harness::model_single_level(machine, p, n, true).total;
        table.add_row({std::to_string(p), std::to_string(n),
                       harness::format_double(ams, 4),
                       harness::format_double(mp, 4),
                       harness::format_double(mp / ams, 1)});
      }
    }
    flags.csv ? table.print_csv() : table.print();
    std::printf(
        "\npaper: MP-sort at p=2^14, n/p=1e5 is ~289x slower than AMS-sort "
        "(p=2^15); ~6x at n/p=1e7.\n");
    return 0;
  }

  std::printf(
      "§7.3 comparison (executed simulation): median virtual wall-times "
      "[s] over %d reps\n\n",
      flags.reps);
  harness::Table table({"p", "n/p", "AMS", "sample-sort-1L", "mergesort-1L",
                        "MP-sort-like", "hypercube-qs", "block-bitonic",
                        "MP/AMS"});
  for (int p : bench::executed_ps(flags)) {
    for (std::int64_t n : bench::executed_ns()) {
      if (!bench::feasible_row(p, n)) continue;
      const double ams = executed_time(harness::Algorithm::kAms, p, n, flags);
      if (!bench::feasible_row(p, n, /*levels=*/1)) {
        // Large-p smoke rows: the single-level baselines ARE the Θ(p)
        // startup / Θ(p²) message pathology the paper escapes — executing
        // them at p ≥ 1024 would take longer than the rest of the bench.
        table.add_row({std::to_string(p), std::to_string(n),
                       harness::format_double(ams, 5), "-", "-", "-", "-",
                       "-", "-"});
        continue;
      }
      const double ss =
          executed_time(harness::Algorithm::kSampleSort1L, p, n, flags);
      const double ms =
          executed_time(harness::Algorithm::kMergesort1L, p, n, flags);
      const double mp =
          executed_time(harness::Algorithm::kMpSortLike, p, n, flags);
      const double hq = executed_time(
          harness::Algorithm::kHypercubeQuicksort, p, n, flags);
      const double bb =
          executed_time(harness::Algorithm::kBlockBitonic, p, n, flags);
      table.add_row({std::to_string(p), std::to_string(n),
                     harness::format_double(ams, 5),
                     harness::format_double(ss, 5),
                     harness::format_double(ms, 5),
                     harness::format_double(mp, 5),
                     harness::format_double(hq, 5),
                     harness::format_double(bb, 5),
                     harness::format_double(mp / ams, 1)});
    }
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape: the single-level algorithms fall behind AMS-sort "
      "as p grows at fixed (small) n/p; MP-sort-like is the slowest.\n");
  return 0;
}
