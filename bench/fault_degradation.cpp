// Fault-degradation bench: how much simulated (virtual) time AMS-sort and
// RLM-sort lose on an unreliable network, as a function of message-loss rate
// and straggler count.
//
// Grid: algo ∈ {AMS, RLM} × loss ∈ {0, 1e-4, 1e-3, 1e-2} × stragglers ∈
// {0, 1, p/16} at p = 64 with 2000 elements per PE on the SuperMUC-like
// machine. Loss routes every network send through the stop-and-wait
// ack/timeout/retransmit layer (net/network_model.hpp); stragglers dilate
// local compute on seeded victim PEs. Each row reports the achieved virtual
// wall time, the inflation ratio against the algorithm's clean (no-model)
// baseline, and the reliability-layer counters.
//
// Results land in BENCH_fault_degradation.json. With --check the bench exits
// non-zero unless (a) the loss=0/stragglers=0 row is bit-identical to a run
// with no network model installed at all, (b) wall time is monotonically
// non-decreasing in loss at stragglers = 0, and (c) every run still produced
// a globally sorted permutation of its input — the acceptance criteria CI
// enforces.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

namespace {

struct Row {
  const char* algo;
  double loss = 0;
  int stragglers = 0;
  double wall = 0;
  double inflation = 1.0;  // wall / clean-baseline wall for the same algo
  net::FaultTotals faults;
  bool sorted = false;
};

harness::RunConfig base_config(harness::Algorithm algo, int p,
                               std::int64_t n_per_pe, std::uint64_t seed) {
  harness::RunConfig cfg;
  cfg.p = p;
  cfg.n_per_pe = n_per_pe;
  cfg.algorithm = algo;
  cfg.seed = seed;
  cfg.ams.levels = 2;
  cfg.rlm.levels = 2;
  return cfg;
}

std::string fmt(double v) { return harness::format_double(v, 3); }

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--check") check = true;

  const int p = 64;
  const std::int64_t n_per_pe = 2000;
  const std::vector<double> losses{0.0, 1e-4, 1e-3, 1e-2};
  const std::vector<int> stragglers{0, 1, p / 16};
  const std::vector<harness::Algorithm> algos{harness::Algorithm::kAms,
                                              harness::Algorithm::kRlm};

  std::printf(
      "Fault degradation: virtual-time inflation of AMS vs RLM under message "
      "loss and stragglers\n(p = %d, n/PE = %lld, seed = %llu)\n\n",
      p, static_cast<long long>(n_per_pe),
      static_cast<unsigned long long>(flags.seed));

  harness::Table table({"algo", "loss", "stragglers", "wall [s]", "inflation",
                        "retransmits", "dup data", "sorted"});
  std::vector<Row> rows;
  bool clean_identical = true;
  double clean_wall[2] = {0, 0};

  for (std::size_t ai = 0; ai < algos.size(); ++ai) {
    const harness::Algorithm algo = algos[ai];
    // Clean baseline: no FaultConfig, hence no network model installed.
    const auto clean =
        harness::run_sort_experiment(base_config(algo, p, n_per_pe, flags.seed));
    clean_wall[ai] = clean.wall_time();

    for (int s : stragglers) {
      for (double loss : losses) {
        auto cfg = base_config(algo, p, n_per_pe, flags.seed);
        cfg.faults.loss = loss;
        cfg.faults.stragglers = s;
        // At 1% loss a p=64 all-to-all sends enough messages that the
        // default 4-retry budget has a nonzero chance of exhaustion; the
        // bench measures degradation, not failure, so widen it.
        cfg.faults.retransmit.max_retries = 8;
        const auto res = harness::run_sort_experiment(cfg);

        Row row;
        row.algo = algo == harness::Algorithm::kAms ? "AMS-sort" : "RLM-sort";
        row.loss = loss;
        row.stragglers = s;
        row.wall = res.wall_time();
        row.inflation = clean_wall[ai] > 0 ? row.wall / clean_wall[ai] : 0;
        row.faults = res.faults();
        row.sorted = res.check.ok();
        rows.push_back(row);

        if (loss == 0.0 && s == 0 && row.wall != clean.wall_time())
          clean_identical = false;

        char loss_s[32];
        std::snprintf(loss_s, sizeof loss_s, "%g", loss);
        table.add_row({row.algo, loss_s, std::to_string(s), fmt(row.wall),
                       fmt(row.inflation),
                       std::to_string(row.faults.retransmits),
                       std::to_string(row.faults.dup_data),
                       row.sorted ? "yes" : "NO"});
      }
    }
  }
  flags.csv ? table.print_csv() : table.print();

  if (FILE* f = std::fopen("BENCH_fault_degradation.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"fault_degradation\",\n"
                 "  \"p\": %d,\n  \"n_per_pe\": %lld,\n  \"seed\": %llu,\n"
                 "  \"clean_wall\": {\"AMS-sort\": %.17g, \"RLM-sort\": "
                 "%.17g},\n  \"rows\": [\n",
                 p, static_cast<long long>(n_per_pe),
                 static_cast<unsigned long long>(flags.seed), clean_wall[0],
                 clean_wall[1]);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"algo\": \"%s\", \"loss\": %g, \"stragglers\": %d, "
          "\"wall_time\": %.17g, \"inflation\": %.6f, \"retransmits\": %lld, "
          "\"data_drops\": %lld, \"ack_drops\": %lld, \"dup_data\": %lld, "
          "\"sorted\": %s}%s\n",
          r.algo, r.loss, r.stragglers, r.wall, r.inflation,
          static_cast<long long>(r.faults.retransmits),
          static_cast<long long>(r.faults.data_drops),
          static_cast<long long>(r.faults.ack_drops),
          static_cast<long long>(r.faults.dup_data),
          r.sorted ? "true" : "false", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_fault_degradation.json\n");
  }

  if (check) {
    bool ok = true;
    if (!clean_identical) {
      std::printf(
          "check: FAIL — loss=0/stragglers=0 row differs from the clean "
          "(no-model) baseline\n");
      ok = false;
    }
    for (const Row& r : rows) {
      if (!r.sorted) {
        std::printf("check: FAIL — %s loss=%g stragglers=%d is not sorted\n",
                    r.algo, r.loss, r.stragglers);
        ok = false;
      }
    }
    // Monotone degradation in loss at stragglers = 0: dropped attempts are
    // coupled across rates (same per-attempt hash, thresholded), so a higher
    // rate drops a superset of attempts and can only add timeout gaps.
    for (const Row& a : rows) {
      for (const Row& b : rows) {
        if (a.algo == b.algo && a.stragglers == 0 && b.stragglers == 0 &&
            a.loss < b.loss && a.wall > b.wall) {
          std::printf(
              "check: FAIL — %s wall time not monotone in loss "
              "(loss=%g: %.6g > loss=%g: %.6g)\n",
              a.algo, a.loss, a.wall, b.loss, b.wall);
          ok = false;
        }
      }
    }
    if (ok)
      std::printf(
          "check: OK (clean row bit-identical, monotone in loss, all runs "
          "sorted)\n");
    return ok ? 0 : 1;
  }
  return 0;
}
