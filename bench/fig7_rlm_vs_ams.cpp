// Figure 7: slowdown of RLM-sort compared to AMS-sort, each with its best
// level choice, as a function of p for n/p ∈ {1e5, 1e6, 1e7} (paper scale)
// or the reduced executed grid. The paper's observation: slowdown > 1
// almost everywhere, and it grows for small n/p and large p (matching the
// log²p isoefficiency gap).

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "ams/level_config.hpp"
#include "bench_common.hpp"
#include "harness/model.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

namespace {

double best_time(harness::Algorithm algo, int p, std::int64_t n_per_pe,
                 const bench::Flags& flags) {
  double best = std::numeric_limits<double>::infinity();
  const int kmax = p >= 64 ? 3 : 2;
  for (int k = bench::min_levels_for(p); k <= kmax; ++k) {
    std::vector<double> times;
    for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
      harness::RunConfig cfg;
      cfg.p = p;
      cfg.n_per_pe = n_per_pe;
      cfg.algorithm = algo;
      cfg.ams.levels = k;
      cfg.rlm.levels = k;
      cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 31 + 3;
      const auto res = harness::run_sort_experiment(cfg);
      if (!res.check.ok()) {
        std::fprintf(stderr, "verification FAILED (%s p=%d k=%d)\n",
                     std::string(harness::algorithm_name(algo)).c_str(), p, k);
        std::exit(1);
      }
      times.push_back(res.wall_time());
    }
    best = std::min(best, harness::median(times));
  }
  return best;
}

double best_model_time(bool rlm, std::int64_t p, std::int64_t n_per_pe) {
  const auto machine = net::MachineParams::supermuc_like();
  double best = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 3; ++k) {
    const auto rs = ams::level_group_counts(p, k);
    const double t = rlm ? harness::model_rlm(machine, p, n_per_pe, rs).total
                         : harness::model_ams(machine, p, n_per_pe, rs, 8, 16)
                               .total;
    best = std::min(best, t);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);

  if (flags.paper_scale) {
    std::printf(
        "Figure 7 (paper scale, analytic model): slowdown of RLM-sort vs "
        "AMS-sort (best level each)\n\n");
    harness::Table table({"p", "n/p=1e5", "n/p=1e6", "n/p=1e7"});
    for (std::int64_t p : bench::paper_ps()) {
      std::vector<std::string> row{std::to_string(p)};
      for (std::int64_t n : bench::paper_ns())
        row.push_back(harness::format_double(
            best_model_time(true, p, n) / best_model_time(false, p, n), 2));
      table.add_row(std::move(row));
    }
    flags.csv ? table.print_csv() : table.print();
    std::printf("\npaper: slowdown ≈1–4, largest for n/p=1e5 at p=2^15.\n");
    return 0;
  }

  std::printf(
      "Figure 7 (executed simulation): slowdown of RLM-sort vs AMS-sort "
      "(best level each, median of %d reps)\n\n",
      flags.reps);
  std::vector<std::string> header{"p"};
  for (auto n : bench::executed_ns())
    header.push_back("n/p=" + std::to_string(n));
  harness::Table table(header);
  for (int p : bench::executed_ps(flags)) {
    std::vector<std::string> row{std::to_string(p)};
    for (std::int64_t n : bench::executed_ns()) {
      if (!bench::feasible_row(p, n)) {
        row.push_back("-");
        continue;
      }
      const double ams = best_time(harness::Algorithm::kAms, p, n, flags);
      const double rlm = best_time(harness::Algorithm::kRlm, p, n, flags);
      row.push_back(harness::format_double(rlm / ams, 2));
    }
    table.add_row(std::move(row));
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape: slowdown ≥ ~1 and increasing towards small n/p "
      "and large p (Figure 7 of the paper).\n");
  return 0;
}
