// Figure 12 (Appendix E): distribution of AMS-sort wall-times over repeated
// runs per configuration (log p, n/p, levels). The paper observes large
// fluctuations at scale, almost exclusively inside the all-to-all exchange
// (network interference); we reproduce the experiment by enabling the
// machine model's multiplicative communication noise and report the
// five-number summary that the paper's box plots show.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  if (flags.reps < 5) flags.reps = 5;  // the paper uses 5 runs

  std::printf(
      "Figure 12: wall-time distribution over %d noisy runs "
      "(per-message noise 15%%, correlated congestion 40%%)\n\n",
      flags.reps);

  harness::Table table({"p", "n/p", "levels", "min[s]", "q1", "median", "q3",
                        "max", "max/min"});
  auto machine = net::MachineParams::supermuc_like();
  machine.comm_noise_frac = 0.15;
  machine.congestion_noise_frac = 0.4;

  for (std::int64_t n : bench::executed_ns()) {
    for (int p : bench::executed_ps(flags)) {
      const int kmax = p >= 64 ? 3 : 2;
      for (int k = bench::min_levels_for(p); k <= kmax; ++k) {
        if (!bench::feasible_row(p, n, k)) continue;
        std::vector<double> times;
        for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
          harness::RunConfig cfg;
          cfg.p = p;
          cfg.n_per_pe = n;
          cfg.algorithm = harness::Algorithm::kAms;
          cfg.ams.levels = k;
          cfg.machine = machine;
          cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 7919 + 1;
          const auto res = harness::run_sort_experiment(cfg);
          if (!res.check.ok()) {
            std::fprintf(stderr, "verification FAILED\n");
            return 1;
          }
          times.push_back(res.wall_time());
        }
        auto f = [&](double q) {
          return harness::format_double(harness::quantile(times, q), 5);
        };
        table.add_row({std::to_string(p), std::to_string(n), std::to_string(k),
                       f(0.0), f(0.25), f(0.5), f(0.75), f(1.0),
                       harness::format_double(harness::quantile(times, 1.0) /
                                                  harness::quantile(times, 0.0),
                                              2)});
      }
    }
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape (paper Fig. 12): noticeable spread (max/min well "
      "above 1), driven by the communication phases.\n");
  return 0;
}
