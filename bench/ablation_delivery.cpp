// Ablation: the four data-delivery algorithms of §4.3 / §4.3.1 / Appendix A
// on benign and adversarial piece distributions. Reports the maximum number
// of payload messages received by any PE (the quantity Theorems 1 and 4
// bound) and the virtual time of the delivery.
//
// This regenerates the design argument of §4.3: the simple prefix-sum
// delivery is fine on random inputs but receives Ω(p) messages on the
// Figure-3 bad case, while the randomized/deterministic/advanced variants
// stay at O(r).

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/random.hpp"
#include "delivery/delivery.hpp"
#include "harness/tables.hpp"
#include "net/engine.hpp"

using namespace pmps;
using delivery::Algo;

namespace {

struct Outcome {
  std::int64_t max_runs = 0;  ///< max payload messages received by any PE
  double time = 0;
};

Outcome run_case(int p, int r, Algo algo, bool adversarial,
                 std::uint64_t seed) {
  net::Engine engine(p, net::MachineParams::supermuc_like(), seed);
  std::mutex mu;
  Outcome out;
  engine.run([&](net::Comm& comm) {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(r), 0);
    const std::int64_t total = 4 * p;
    if (adversarial) {
      // Figure 3 bad case: consecutive PEs send tiny group-0 pieces.
      if (comm.rank() < p - 2) {
        sizes[0] = 1;
        const std::int64_t rest = total - 1;
        for (int g = 1; g < r; ++g)
          sizes[static_cast<std::size_t>(g)] =
              chunk_begin(rest, r - 1, g) - chunk_begin(rest, r - 1, g - 1);
      } else {
        sizes[0] = total;
      }
    } else {
      Xoshiro256 rng(seed, static_cast<std::uint64_t>(comm.rank()));
      std::int64_t left = total;
      for (int g = 0; g < r - 1; ++g) {
        sizes[static_cast<std::size_t>(g)] = static_cast<std::int64_t>(
            rng.bounded(static_cast<std::uint64_t>(2 * total / r)));
        sizes[static_cast<std::size_t>(g)] =
            std::min(sizes[static_cast<std::size_t>(g)], left);
        left -= sizes[static_cast<std::size_t>(g)];
      }
      sizes[static_cast<std::size_t>(r - 1)] = left;
    }
    std::vector<std::uint64_t> data;
    for (int g = 0; g < r; ++g)
      for (std::int64_t i = 0; i < sizes[static_cast<std::size_t>(g)]; ++i)
        data.push_back(static_cast<std::uint64_t>(g));

    auto runs = delivery::deliver(
        comm, std::span<const std::uint64_t>(data.data(), data.size()), sizes,
        algo, seed);
    std::lock_guard lock(mu);
    out.max_runs = std::max(out.max_runs, static_cast<std::int64_t>(runs.parts()));
  });
  out.time = engine.report().wall_time;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  const int p = flags.large_p ? 1024 : (flags.paper_scale ? 256 : 64);
  const int r = 8;

  std::printf(
      "Delivery ablation (p=%d, r=%d): max payload messages received per PE "
      "and delivery virtual time\n\n",
      p, r);
  harness::Table table({"algorithm", "random: max-msgs", "random: time",
                        "adversarial: max-msgs", "adversarial: time"});
  for (Algo algo : {Algo::kSimple, Algo::kRandomized, Algo::kDeterministic,
                    Algo::kAdvancedRandomized}) {
    const auto rnd = run_case(p, r, algo, false, flags.seed);
    const auto adv = run_case(p, r, algo, true, flags.seed);
    table.add_row({delivery::algo_name(algo), std::to_string(rnd.max_runs),
                   harness::format_seconds(rnd.time),
                   std::to_string(adv.max_runs),
                   harness::format_seconds(adv.time)});
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected: 'simple' explodes to ~p messages on the adversarial "
      "input; the other three stay at O(r).\n");
  return 0;
}
