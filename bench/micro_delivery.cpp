// Send-path microbench: host-time runs/sec of a delivery-shaped sparse
// exchange at p ∈ {256, 1024, 4096}, flat SendPlan path vs the PR-4 send
// path (kept here, verbatim in structure, as the "before" baseline — the
// library API itself is SendPlan-only now).
//
// What the SendPlan removes is *allocation*, not communication: the PR-4
// path materialised one heap vector per outgoing piece (OutMessage), two
// fresh Θ(p) count vectors per exchange and per-round receive vectors in
// the Bruck counts exchange and the termination barrier. The flat path
// writes pieces into one contiguous plan buffer, keeps the count/Bruck
// scratch per PE, and receives counts/tokens in place — on top of the slab
// mailbox both variants share. Both variants exchange byte-identical
// messages, which --check asserts the strong way: their virtual times and
// payload checksums must match exactly, and the flat path must be faster
// at every p ≥ 1024.
//
// Results land in BENCH_micro_delivery.json — the send path's entry in the
// perf trajectory next to BENCH_micro_engine / BENCH_micro_collectives.

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "harness/tables.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"

using namespace pmps;

namespace {

using bench::now_sec;

/// Delivery-shaped traffic: many small pieces per PE — the fragment shape
/// the deterministic/advanced planners emit, and the regime where the
/// per-piece heap vector of the PR-4 path costs the most relative to the
/// payload itself.
constexpr int kFanout = 64;
constexpr std::int64_t kWordsPerPiece = 8;

/// Deterministic digest of everything received (summed across PEs; the
/// commutative sum makes it schedule-independent).
std::atomic<std::uint64_t> g_checksum{0};

// ---------------------------------------------------------------------------
// The PR-4 send path (the "before" numbers): one heap vector per piece,
// fresh count vectors and allocating Bruck/barrier rounds per exchange.
// Identical message structure to the flat version — only the host-side
// data shapes differ.
// ---------------------------------------------------------------------------
namespace legacy {

struct OutMessage {
  int dest_rank;
  std::vector<std::int64_t> data;
};

void barrier(net::Comm& comm) {
  const int p = comm.size();
  if (p == 1) return;
  const std::uint64_t tag = comm.next_tag_block();
  const std::byte token{0};
  for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
    const int dest = (comm.rank() + step) % p;
    const int src = (comm.rank() - step % p + p) % p;
    comm.send<std::byte>(dest, tag + static_cast<std::uint64_t>(round),
                         std::span<const std::byte>(&token, 1));
    (void)comm.recv<std::byte>(src, tag + static_cast<std::uint64_t>(round));
  }
}

std::vector<std::int64_t> alltoall_counts(
    net::Comm& comm, const std::vector<std::int64_t>& send) {
  const int p = comm.size();
  if (p == 1) return send;
  const int me = comm.rank();
  const std::uint64_t tag = comm.next_tag_block();

  std::vector<std::int32_t> tmp(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j)
    tmp[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(
        send[static_cast<std::size_t>((me + j) % p)]);

  std::vector<std::int32_t> block;
  for (int k = 0, step = 1; step < p; ++k, step <<= 1) {
    block.clear();
    for (int j = 0; j < p; ++j)
      if ((j & step) != 0) block.push_back(tmp[static_cast<std::size_t>(j)]);
    const int to = (me + step) % p;
    const int from = (me - step + p) % p;
    comm.send<std::int32_t>(to, tag + static_cast<std::uint64_t>(k),
                            std::span<const std::int32_t>(block));
    auto in =
        comm.recv<std::int32_t>(from, tag + static_cast<std::uint64_t>(k));
    std::size_t idx = 0;
    for (int j = 0; j < p; ++j)
      if ((j & step) != 0) tmp[static_cast<std::size_t>(j)] = in[idx++];
  }

  std::vector<std::int64_t> recv(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j)
    recv[static_cast<std::size_t>((me - j + p) % p)] =
        tmp[static_cast<std::size_t>(j)];
  return recv;
}

template <typename Sink>
void sparse_exchange_into(net::Comm& comm,
                          const std::vector<OutMessage>& outgoing,
                          Sink&& sink) {
  using T = std::int64_t;
  const int p = comm.size();
  const std::uint64_t tag = comm.next_tag_block();

  std::vector<std::int64_t> in_count(static_cast<std::size_t>(p), 0);
  {
    net::FreeModeGuard free_guard(comm.ctx());
    std::vector<std::int64_t> out_count(static_cast<std::size_t>(p), 0);
    for (const auto& m : outgoing)
      out_count[static_cast<std::size_t>(m.dest_rank)] += 1;
    in_count = alltoall_counts(comm, out_count);
  }

  std::vector<std::int64_t> seq_per_dest(static_cast<std::size_t>(p), 0);
  for (const auto& m : outgoing) {
    const auto k = static_cast<std::uint64_t>(
        seq_per_dest[static_cast<std::size_t>(m.dest_rank)]++);
    comm.send<T>(m.dest_rank, tag + k, std::span<const T>(m.data));
  }

  for (int src = 0; src < p; ++src) {
    for (std::int64_t k = 0; k < in_count[static_cast<std::size_t>(src)];
         ++k) {
      net::Message m =
          comm.recv_bytes(src, tag + static_cast<std::uint64_t>(k));
      PMPS_CHECK(m.payload.size() % sizeof(T) == 0);
      sink(src,
           std::span<const T>(reinterpret_cast<const T*>(m.payload.data()),
                              m.payload.size() / sizeof(T)));
      comm.release_payload(std::move(m));
    }
  }

  barrier(comm);
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Measured programs. Destinations and payloads are identical between the
// two variants; each consumes its result into g_checksum.
// ---------------------------------------------------------------------------

int piece_dest(int rank, int j, int p) { return (rank + 1 + j * 13) % p; }

std::int64_t piece_word(int rank, int j, std::int64_t w) {
  return rank * 131071 + j * 257 + w;
}

void consume(int src, std::span<const std::int64_t> piece) {
  std::uint64_t acc = static_cast<std::uint64_t>(src);
  for (auto v : piece) acc += static_cast<std::uint64_t>(v);
  g_checksum.fetch_add(acc, std::memory_order_relaxed);
}

void exchange_flat(net::Comm& comm) {
  const int p = comm.size();
  coll::SendPlan<std::int64_t> plan;
  plan.reserve(kFanout * kWordsPerPiece, kFanout);
  for (int j = 0; j < kFanout && j < p - 1; ++j) {
    plan.begin_piece(piece_dest(comm.rank(), j, p));
    for (std::int64_t w = 0; w < kWordsPerPiece; ++w)
      plan.push_back(piece_word(comm.rank(), j, w));
  }
  coll::sparse_exchange_into<std::int64_t>(comm, plan, consume);
}

void exchange_legacy(net::Comm& comm) {
  const int p = comm.size();
  std::vector<legacy::OutMessage> out;
  for (int j = 0; j < kFanout && j < p - 1; ++j) {
    legacy::OutMessage m;
    m.dest_rank = piece_dest(comm.rank(), j, p);
    m.data.reserve(static_cast<std::size_t>(kWordsPerPiece));
    for (std::int64_t w = 0; w < kWordsPerPiece; ++w)
      m.data.push_back(piece_word(comm.rank(), j, w));
    out.push_back(std::move(m));
  }
  legacy::sparse_exchange_into(comm, out, consume);
}

/// Best-of-N: the fastest single run's duration. Scheduling noise on a
/// busy host only ever *slows* a run, so the minimum is the stable
/// estimator — means flapped the A/B comparison on loaded CI runners.
double best_run_seconds(net::Engine& engine, void (*program)(net::Comm&),
                        int runs) {
  double best = -1;
  for (int i = 0; i < runs; ++i) {
    const double t0 = now_sec();
    engine.run(program);
    const double dt = now_sec() - t0;
    if (best < 0 || dt < best) best = dt;
  }
  return best;
}

/// One extra run capturing (virtual wall time, payload checksum) — the
/// message-sequence-equivalence fingerprint --check compares.
std::pair<double, std::uint64_t> fingerprint(net::Engine& engine,
                                             void (*program)(net::Comm&)) {
  g_checksum.store(0, std::memory_order_relaxed);
  engine.run(program);
  return {engine.report().wall_time,
          g_checksum.load(std::memory_order_relaxed)};
}

std::string fmt(double v) { return harness::format_double(v, 1); }

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--check") check = true;

  const std::vector<int> ps{256, 1024, 4096};

  std::printf(
      "Send-path microbench: host-time runs/sec of a sparse exchange "
      "(%d pieces x %lld words per PE),\nflat SendPlan path vs the PR-4 "
      "per-piece-vector path (identical message sequence)\n\n",
      kFanout, static_cast<long long>(kWordsPerPiece));

  struct Row {
    int p;
    double legacy_rps = 0, flat_rps = 0, speedup = 0;
    double legacy_wall = 0, flat_wall = 0;
    std::uint64_t legacy_sum = 0, flat_sum = 0;
  };
  std::vector<Row> rows;
  harness::Table table({"p", "PR-4 send path [runs/s]", "SendPlan [runs/s]",
                        "speedup", "virtual time identical"});

  for (int p : ps) {
    const int runs_per_pass = p >= 4096 ? 3 : (p >= 1024 ? 8 : 20);
    net::Engine engine(p, net::MachineParams::supermuc_like(), flags.seed);
    Row row{.p = p};
    // Warm up both variants once (fiber pool, pools, scratch, allocator),
    // then two interleaved best-of passes per variant so slow drift on the
    // host hits both sides alike.
    engine.run(exchange_legacy);
    engine.run(exchange_flat);
    double legacy_best = -1, flat_best = -1;
    for (int pass = 0; pass < 2; ++pass) {
      const double lb = best_run_seconds(engine, exchange_legacy,
                                         runs_per_pass);
      const double fb = best_run_seconds(engine, exchange_flat,
                                         runs_per_pass);
      if (legacy_best < 0 || lb < legacy_best) legacy_best = lb;
      if (flat_best < 0 || fb < flat_best) flat_best = fb;
    }
    row.legacy_rps = legacy_best > 0 ? 1.0 / legacy_best : 0;
    row.flat_rps = flat_best > 0 ? 1.0 / flat_best : 0;
    if (row.legacy_rps > 0) row.speedup = row.flat_rps / row.legacy_rps;
    std::tie(row.legacy_wall, row.legacy_sum) =
        fingerprint(engine, exchange_legacy);
    std::tie(row.flat_wall, row.flat_sum) = fingerprint(engine, exchange_flat);
    rows.push_back(row);
    const bool same =
        row.legacy_wall == row.flat_wall && row.legacy_sum == row.flat_sum;
    table.add_row({std::to_string(p), fmt(row.legacy_rps), fmt(row.flat_rps),
                   fmt(row.speedup) + "x", same ? "yes" : "NO"});
  }
  flags.csv ? table.print_csv() : table.print();

  if (FILE* f = std::fopen("BENCH_micro_delivery.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_delivery\",\n"
                 "  \"fanout\": %d,\n  \"words_per_piece\": %lld,\n"
                 "  \"rows\": [\n",
                 kFanout, static_cast<long long>(kWordsPerPiece));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"p\": %d, \"pr4_runs_per_sec\": %.2f, "
                   "\"flat_runs_per_sec\": %.2f, \"speedup\": %.2f, "
                   "\"virtual_time_identical\": %s}%s\n",
                   r.p, r.legacy_rps, r.flat_rps, r.speedup,
                   r.legacy_wall == r.flat_wall && r.legacy_sum == r.flat_sum
                       ? "true"
                       : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_micro_delivery.json\n");
  }

  if (check) {
    bool ok = true;
    for (const Row& r : rows) {
      if (r.flat_rps <= 0) {
        std::printf("check: FAIL — flat exchange at p=%d did not complete\n",
                    r.p);
        ok = false;
      }
      if (r.legacy_wall != r.flat_wall || r.legacy_sum != r.flat_sum) {
        std::printf(
            "check: FAIL — p=%d message sequences diverge (virtual time "
            "%.9g vs %.9g, checksum %llu vs %llu)\n",
            r.p, r.legacy_wall, r.flat_wall,
            static_cast<unsigned long long>(r.legacy_sum),
            static_cast<unsigned long long>(r.flat_sum));
        ok = false;
      }
      if (r.p >= 1024 && r.flat_rps <= r.legacy_rps) {
        std::printf(
            "check: FAIL — SendPlan path at p=%d is %.2f runs/s, not faster "
            "than the PR-4 send path (%.2f runs/s)\n",
            r.p, r.flat_rps, r.legacy_rps);
        ok = false;
      }
    }
    if (ok)
      std::printf(
          "check: OK (identical virtual times/checksums; SendPlan path "
          "faster at every p >= 1024)\n");
    return ok ? 0 : 1;
  }
  return 0;
}
