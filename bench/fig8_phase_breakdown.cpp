// Figure 8: weak scaling of AMS-sort with 1, 2 and 3 levels, broken down
// into the four phases (data delivery / bucket processing / splitter
// selection / local sort) accumulated over recursion levels — the stacked
// bars of the paper rendered as table rows.

#include <cstdio>
#include <string>
#include <vector>

#include "ams/level_config.hpp"
#include "bench_common.hpp"
#include "harness/model.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"

using namespace pmps;
using net::Phase;

namespace {

void add_point(harness::Table& table, const std::string& np,
               const std::string& p, int k, double total, double deliver,
               double bucket, double split, double sort) {
  table.add_row({np, p, std::to_string(k), harness::format_double(total, 5),
                 harness::format_double(deliver, 5),
                 harness::format_double(bucket, 5),
                 harness::format_double(split, 5),
                 harness::format_double(sort, 5)});
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  harness::Table table({"n/p", "p", "levels", "total[s]", "delivery",
                        "bucket-proc", "splitter-sel", "local-sort"});

  if (flags.paper_scale) {
    std::printf(
        "Figure 8 (paper scale, analytic model): AMS-sort phase breakdown\n\n");
    const auto machine = net::MachineParams::supermuc_like();
    for (std::int64_t n : bench::paper_ns()) {
      for (std::int64_t p : bench::paper_ps()) {
        for (int k = 1; k <= 3; ++k) {
          const auto t = harness::model_ams(
              machine, p, n, ams::level_group_counts(p, k), 8, 16);
          add_point(table, std::to_string(n), std::to_string(p), k, t.total,
                    t.get(Phase::kDataDelivery), t.get(Phase::kBucketProcessing),
                    t.get(Phase::kSplitterSelection), t.get(Phase::kLocalSort));
        }
      }
    }
    flags.csv ? table.print_csv() : table.print();
    return 0;
  }

  std::printf(
      "Figure 8 (executed simulation): AMS-sort phase breakdown, median of "
      "%d reps\n\n",
      flags.reps);
  for (std::int64_t n : bench::executed_ns()) {
    for (int p : bench::executed_ps(flags)) {
      const int kmax = p >= 64 ? 3 : 2;
      for (int k = bench::min_levels_for(p); k <= kmax; ++k) {
        if (!bench::feasible_row(p, n, k)) continue;
        std::vector<double> total, deliver, bucket, split, sort;
        for (int rep = 0; rep < bench::reps_for(flags, p); ++rep) {
          harness::RunConfig cfg;
          cfg.p = p;
          cfg.n_per_pe = n;
          cfg.algorithm = harness::Algorithm::kAms;
          cfg.ams.levels = k;
          cfg.seed = flags.seed + static_cast<std::uint64_t>(rep) * 17;
          const auto res = harness::run_sort_experiment(cfg);
          if (!res.check.ok()) {
            std::fprintf(stderr, "verification FAILED\n");
            return 1;
          }
          total.push_back(res.wall_time());
          deliver.push_back(res.phase(Phase::kDataDelivery));
          bucket.push_back(res.phase(Phase::kBucketProcessing));
          split.push_back(res.phase(Phase::kSplitterSelection));
          sort.push_back(res.phase(Phase::kLocalSort));
        }
        add_point(table, std::to_string(n), std::to_string(p), k,
                  harness::median(total), harness::median(deliver),
                  harness::median(bucket), harness::median(split),
                  harness::median(sort));
      }
    }
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected shape (paper Fig. 8): delivery dominates at large p for "
      "1 level; extra levels shrink delivery at the cost of more bucket "
      "processing; splitter selection never dominates.\n");
  return 0;
}
