// Micro-benchmarks (google-benchmark) for the sequential substrates: loser
// tree multiway merging, branchless partitioning, Batcher network sorting,
// Feistel permutation evaluation, bucket-grouping search. These measure real
// host time (not virtual time) — they are the constants behind the machine
// model calibration.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "grouping/bucket_grouping.hpp"
#include "prng/feistel.hpp"
#include "seq/multiway_merge.hpp"
#include "seq/partition.hpp"
#include "seq/sorting_network.hpp"

namespace {

using namespace pmps;

void BM_MultiwayMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::int64_t n = 1 << 16;
  Xoshiro256 rng(1);
  std::vector<std::vector<std::uint64_t>> runs(static_cast<std::size_t>(k));
  for (auto& r : runs) {
    r.resize(static_cast<std::size_t>(n / k));
    for (auto& v : r) v = rng();
    std::sort(r.begin(), r.end());
  }
  for (auto _ : state) {
    auto merged = seq::multiway_merge(runs);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultiwayMerge)->Arg(2)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Partition(benchmark::State& state) {
  const int buckets = static_cast<int>(state.range(0));
  const std::int64_t n = 1 << 16;
  Xoshiro256 rng(2);
  std::vector<std::uint64_t> input(static_cast<std::size_t>(n));
  for (auto& v : input) v = rng();
  std::vector<TaggedKey<std::uint64_t>> splitters;
  for (int i = 1; i < buckets; ++i)
    splitters.push_back(TaggedKey<std::uint64_t>{
        static_cast<std::uint64_t>(i) * (~0ull / static_cast<unsigned>(buckets)),
        0, i});
  seq::BucketClassifier<std::uint64_t> cls(splitters);
  for (auto _ : state) {
    auto part = seq::partition_into_buckets(
        std::span<const std::uint64_t>(input.data(), input.size()), 0, cls);
    benchmark::DoNotOptimize(part.elements.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Partition)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_StdSortReference(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> input(static_cast<std::size_t>(n));
  for (auto& v : input) v = rng();
  for (auto _ : state) {
    auto copy = input;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdSortReference)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_NetworkSort(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> input(static_cast<std::size_t>(n));
  for (auto& v : input) v = rng();
  for (auto _ : state) {
    auto copy = input;
    seq::network_sort(std::span<std::uint64_t>(copy.data(), copy.size()));
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkSort)->Arg(64)->Arg(256)->Arg(1024);

void BM_Feistel(benchmark::State& state) {
  prng::FeistelPermutation perm(static_cast<std::uint64_t>(state.range(0)), 7);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm(i));
    i = (i + 1) % perm.size();
  }
}
BENCHMARK(BM_Feistel)->Arg(1024)->Arg(1 << 20);

void BM_BucketGrouping(benchmark::State& state) {
  const int buckets = static_cast<int>(state.range(0));
  Xoshiro256 rng(5);
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(buckets));
  for (auto& s : sizes) s = static_cast<std::int64_t>(rng.bounded(10000)) + 1;
  const int r = buckets / 16;
  for (auto _ : state) {
    auto res = grouping::group_buckets_optimal(sizes, std::max(r, 1));
    benchmark::DoNotOptimize(res.max_load);
  }
}
BENCHMARK(BM_BucketGrouping)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BucketGroupingNaive(benchmark::State& state) {
  const int buckets = static_cast<int>(state.range(0));
  Xoshiro256 rng(5);
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(buckets));
  for (auto& s : sizes) s = static_cast<std::int64_t>(rng.bounded(10000)) + 1;
  const int r = buckets / 16;
  for (auto _ : state) {
    auto res = grouping::group_buckets_naive(sizes, std::max(r, 1));
    benchmark::DoNotOptimize(res.max_load);
  }
}
BENCHMARK(BM_BucketGroupingNaive)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
