// Ablation: dense all-to-all exchange schedules (§7.1) — mpich-style direct
// posting of all p−1 pairs versus the 1-factor algorithm [31] that omits
// empty messages. Sweeps density (fraction of non-empty pairs) and payload
// size; reports virtual exchange time and messages per PE.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "common/random.hpp"
#include "harness/tables.hpp"
#include "net/engine.hpp"

using namespace pmps;

namespace {

struct Outcome {
  double time;
  std::int64_t max_msgs;
};

Outcome run_case(int p, double density, std::int64_t words,
                 coll::Schedule sched, std::uint64_t seed) {
  net::Engine engine(p, net::MachineParams::supermuc_like(), seed);
  engine.run([&](net::Comm& comm) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::uint64_t> sendbuf;
    std::vector<std::int64_t> counts(static_cast<std::size_t>(p), 0);
    for (int i = 0; i < p; ++i) {
      if (rng.uniform() < density) {
        counts[static_cast<std::size_t>(i)] = words;
        sendbuf.insert(sendbuf.end(), static_cast<std::size_t>(words),
                       static_cast<std::uint64_t>(comm.rank()));
      }
    }
    (void)coll::alltoallv(
        comm, std::span<const std::uint64_t>(sendbuf.data(), sendbuf.size()),
        std::span<const std::int64_t>(counts.data(), counts.size()), sched);
  });
  return {engine.report().wall_time, engine.report().max_messages_sent};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::Flags::parse(argc, argv);
  const int p = flags.large_p ? 1024 : (flags.paper_scale ? 256 : 64);

  std::printf(
      "Exchange ablation (p=%d): direct vs 1-factor alltoallv over message "
      "density and size\n\n",
      p);
  harness::Table table({"density", "words/pair", "direct: time",
                        "direct: msgs", "1-factor: time", "1-factor: msgs"});
  for (double density : {1.0, 0.25, 0.05}) {
    for (std::int64_t words : {std::int64_t{16}, std::int64_t{1024}}) {
      const auto direct =
          run_case(p, density, words, coll::Schedule::kDirect, flags.seed);
      const auto onefac =
          run_case(p, density, words, coll::Schedule::kOneFactor, flags.seed);
      table.add_row({harness::format_double(density, 2), std::to_string(words),
                     harness::format_seconds(direct.time),
                     std::to_string(direct.max_msgs),
                     harness::format_seconds(onefac.time),
                     std::to_string(onefac.max_msgs)});
    }
  }
  flags.csv ? table.print_csv() : table.print();
  std::printf(
      "\nexpected: at low density the 1-factor schedule sends far fewer "
      "messages (empty pairs omitted), matching the paper's observation "
      "that their 1-factor implementation is more stable with higher "
      "average throughput.\n");
  return 0;
}
