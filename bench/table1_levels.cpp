// Table 1: "Selection of r for weak scaling experiments" — the per-level
// group counts chosen by the level-configuration rule for k ∈ {1, 2, 3}
// and p ∈ {512, 2048, 8192, 32768}.
//
// The rule reproduces the paper's multi-level rows exactly (last level 16 =
// node-internal, first levels split p/16 into near-equal powers of two).
// For k = 1 a single level must split all the way down, so r = p (the paper
// lists the node size there, which cannot multiply to p; see
// docs/DESIGN.md §4).

#include <cstdio>
#include <string>

#include "ams/level_config.hpp"
#include "bench_common.hpp"
#include "harness/tables.hpp"

int main(int argc, char** argv) {
  using namespace pmps;
  const auto flags = bench::Flags::parse(argc, argv);

  std::printf("Table 1: selection of r (groups per level)\n\n");
  harness::Table table({"k", "level", "p=512", "p=2048", "p=8192", "p=32768"});
  for (int k = 1; k <= 3; ++k) {
    std::vector<std::vector<int>> configs;
    for (std::int64_t p : bench::paper_ps())
      configs.push_back(ams::level_group_counts(p, k));
    std::size_t max_levels = 0;
    for (const auto& c : configs) max_levels = std::max(max_levels, c.size());
    for (std::size_t lvl = 0; lvl < max_levels; ++lvl) {
      std::vector<std::string> row;
      row.push_back(lvl == 0 ? std::to_string(k) : "");
      row.push_back(std::to_string(lvl + 1));
      for (const auto& c : configs)
        row.push_back(lvl < c.size() ? std::to_string(c[lvl]) : "-");
      table.add_row(std::move(row));
    }
  }
  if (flags.csv) {
    table.print_csv();
  } else {
    table.print();
  }
  std::printf(
      "\npaper reference (k=2): 32/16, 128/16, 512/16, 2048/16\n"
      "paper reference (k=3): 8/4/16, 16/8/16, 32/16/16, 64/32/16\n");
  return 0;
}
