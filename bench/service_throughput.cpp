// Sort-as-a-service throughput: jobs/sec for a repetition grid run as
// overlapping jobs on one persistent SortService vs the same jobs run
// serially, each on a fresh one-shot engine (worker spin-up, stack-pool and
// mailbox-pool warm-up paid per job — the pre-service cost model).
//
// This is the ROADMAP's stated payoff for the persistent engine: the
// MinuteSort framing of §7.3 is a sustained-service metric, and repetition
// loops (benches, tuning probes, fault sweeps) are its small-scale
// incarnation. Per-job virtual results are asserted bit-identical between
// the two paths — the speedup is host time only.
//
// Results land in BENCH_service_throughput.json. With --check the bench
// exits non-zero unless the service reaches >= 1.3x the serial jobs/sec at
// every p >= 1024 row and every job's output passed verification — the
// acceptance criterion CI enforces. Overlap needs somewhere to overlap
// *to*: on a host whose fiber pool has a single worker (1 available CPU,
// or PMPS_FIBER_WORKERS=1) concurrent jobs can only time-slice one core
// and the warm-substrate savings (thread spawn, stack mmaps) are noise
// next to a p >= 1024 job's simulation time. There the bench drops
// max_in_flight to 1 and gates what is still falsifiable — bit-identity,
// verification, and the service path not materially regressing serial
// throughput (>= 0.85x) — and says so in the output.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/check.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"
#include "svc/service.hpp"

using namespace pmps;

namespace {

struct Row {
  int p;
  std::int64_t n_per_pe;
  int jobs;
  double serial_s = 0, service_s = 0;
  double serial_jps = 0, service_jps = 0, speedup = 0;
  bool identical = true;
  bool verified = true;
};

Row measure_row(int p, std::int64_t n_per_pe, int jobs, int max_in_flight,
                std::uint64_t seed) {
  Row row{.p = p, .n_per_pe = n_per_pe, .jobs = jobs};
  harness::RunConfig cfg;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.p = p;
  cfg.n_per_pe = n_per_pe;
  cfg.seed = seed;

  // Two passes per path, best-of taken: the speedups here are tens of
  // percent, comparable to scheduler noise on a shared host.
  constexpr int kPasses = 2;
  bench::RepJobsOutcome serial, via_service;
  row.serial_s = row.service_s = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < kPasses; ++pass) {
    // Serial baseline: one fresh engine (and fiber pool) per job.
    bench::RepJobsOutcome s = bench::run_reps_serial(cfg, jobs);
    if (s.host_seconds < row.serial_s) row.serial_s = s.host_seconds;
    serial = std::move(s);

    // Service: one warm substrate for the whole batch. Service
    // construction (worker spin-up) is inside the timed region — paying
    // it once instead of per job is precisely the point.
    svc::ServiceOptions opt;
    opt.max_in_flight = max_in_flight;
    const double t0 = bench::now_sec();
    bench::RepJobsOutcome v = [&] {
      svc::SortService service(opt);
      return bench::run_reps_as_jobs(service, cfg, jobs);
    }();
    const double dt = bench::now_sec() - t0;
    if (dt < row.service_s) row.service_s = dt;
    via_service = std::move(v);
  }

  for (int r = 0; r < jobs; ++r) {
    const auto& a = serial.results[static_cast<std::size_t>(r)];
    const auto& b = via_service.results[static_cast<std::size_t>(r)];
    if (a.wall_time() != b.wall_time() ||
        a.report.total_bytes_sent != b.report.total_bytes_sent ||
        !(a.faults() == b.faults()))
      row.identical = false;
    if (!b.check.ok()) row.verified = false;
  }
  row.serial_jps = row.serial_s > 0 ? jobs / row.serial_s : 0;
  row.service_jps = row.service_s > 0 ? jobs / row.service_s : 0;
  row.speedup = row.serial_jps > 0 ? row.service_jps / row.serial_jps : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  // The service's worker-pool width on this host: number of CPUs the
  // process may use, clamped by PMPS_FIBER_WORKERS.
  const int pool_workers =
      net::engine_fiber_workers(std::numeric_limits<int>::max());
  const bool can_overlap = pool_workers >= 2;
  int max_in_flight = can_overlap ? std::min(6, pool_workers) : 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") check = true;
    if (std::string(argv[i]) == "--max-in-flight" && i + 1 < argc)
      max_in_flight = std::atoi(argv[i + 1]);
  }
  const double floor = can_overlap ? 1.3 : 0.85;

  if (!net::fibers_supported()) {
    std::printf(
        "service_throughput: SKIP (no fiber backend; the service falls back "
        "to serial dispatch, so there is no overlap to measure)\n");
    return 0;
  }

  std::printf(
      "Sort-as-a-service throughput: jobs overlapping (max_in_flight = %d) "
      "on one warm service vs serial one-shot engines\n",
      max_in_flight);
  if (can_overlap) {
    std::printf("host: %d pool workers — gating overlap + warmth (%.2fx "
                "floor at p >= 1024)\n\n",
                pool_workers, floor);
  } else {
    std::printf(
        "host: single pool worker — overlap is impossible, so gating "
        "bit-identity and a no-regression guard only (%.2fx floor)\n\n",
        floor);
  }

  struct Cell {
    int p;
    std::int64_t n_per_pe;
    int jobs;
  };
  std::vector<Cell> grid{{256, 500, 12}, {1024, 200, 8}};
  if (flags.large_p) grid.push_back({4096, 50, 6});

  harness::Table table({"p", "n/p", "jobs", "serial [jobs/s]",
                        "service [jobs/s]", "speedup", "identical"});
  std::vector<Row> rows;
  for (const Cell& c : grid) {
    Row row = measure_row(c.p, c.n_per_pe, c.jobs, max_in_flight, flags.seed);
    rows.push_back(row);
    table.add_row({std::to_string(row.p), std::to_string(row.n_per_pe),
                   std::to_string(row.jobs),
                   harness::format_double(row.serial_jps, 2),
                   harness::format_double(row.service_jps, 2),
                   harness::format_double(row.speedup, 2) + "x",
                   row.identical ? (row.verified ? "yes" : "UNSORTED")
                                 : "NO"});
  }
  flags.csv ? table.print_csv() : table.print();

  if (FILE* f = std::fopen("BENCH_service_throughput.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"service_throughput\",\n"
                 "  \"max_in_flight\": %d,\n  \"pool_workers\": %d,\n"
                 "  \"speedup_floor\": %.2f,\n  \"rows\": [\n",
                 max_in_flight, pool_workers, floor);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"p\": %d, \"n_per_pe\": %lld, \"jobs\": %d, "
                   "\"serial_jobs_per_sec\": %.3f, "
                   "\"service_jobs_per_sec\": %.3f, \"speedup\": %.3f, "
                   "\"identical\": %s, \"verified\": %s}%s\n",
                   r.p, static_cast<long long>(r.n_per_pe), r.jobs,
                   r.serial_jps, r.service_jps, r.speedup,
                   r.identical ? "true" : "false",
                   r.verified ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_service_throughput.json\n");
  }

  if (check) {
    bool ok = true;
    for (const Row& r : rows) {
      if (!r.identical) {
        std::printf(
            "check: FAIL — p=%d service results diverge from serial runs\n",
            r.p);
        ok = false;
      }
      if (!r.verified) {
        std::printf("check: FAIL — p=%d service job output not sorted\n",
                    r.p);
        ok = false;
      }
      if (r.p >= 1024 && r.speedup < floor) {
        std::printf(
            "check: FAIL — p=%d service speedup %.2fx below the %.2fx "
            "floor\n",
            r.p, r.speedup, floor);
        ok = false;
      }
    }
    if (ok)
      std::printf(
          "check: OK (bit-identical to serial, verified, >=%.2fx the "
          "serial jobs/sec at p >= 1024)\n",
          floor);
    return ok ? 0 : 1;
  }
  return 0;
}
