// Engine-throughput microbench: host-time runs/sec of an allgather+barrier
// SPMD program under the fiber scheduler vs the legacy one-OS-thread-per-PE
// backend, at p ∈ {64, 256, 1024, 4096}.
//
// This is the cost the fiber engine was built to remove: the thread backend
// pays p thread creations plus condition-variable wakeup storms per run,
// which capped every bench at p ≤ 256; the fiber engine runs the same
// program on a fixed worker pool. The thread backend is only measured up to
// --threads-max-p (default 256) — beyond that a single run is so slow that
// measuring it is the benchmark equivalent of proving the point twice.
//
// Results land in BENCH_micro_engine.json. With --check the bench exits
// non-zero unless (a) fibers reach ≥ 5× the thread backend's runs/sec at
// p = 256 and (b) the p = 4096 fiber rows completed — the acceptance
// criteria CI enforces.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "harness/tables.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"

using namespace pmps;

namespace {

using bench::now_sec;

/// The measured program: a recursive-doubling allgather (one scalar per PE,
/// flat payloads — ⌈log2 p⌉ rounds of send+recv with doubling sizes) plus a
/// dissemination barrier. That is 2⌈log2 p⌉ blocking recvs per PE — the
/// communication/synchronisation pattern every level of the sorters leans
/// on — while keeping the program's own work (allocs, copies) small enough
/// that engine overhead, not collective bookkeeping, is what gets measured.
void allgather_barrier_program(net::Comm& comm) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::uint64_t tag = comm.next_tag_block();
  std::vector<std::int64_t> acc{rank};
  for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
    const int partner = rank ^ step;
    if (partner < p) {
      comm.send<std::int64_t>(partner,
                              tag + static_cast<std::uint64_t>(round),
                              std::span<const std::int64_t>(acc));
      auto theirs = comm.recv<std::int64_t>(
          partner, tag + static_cast<std::uint64_t>(round));
      acc.insert(acc.end(), theirs.begin(), theirs.end());
    }
  }
  PMPS_CHECK(static_cast<int>(acc.size()) == p);
  coll::barrier(comm);
}

struct Measurement {
  int runs = 0;
  double seconds = 0;
  double runs_per_sec = 0;
};

/// Runs the program repeatedly on one engine until ~min_seconds of host time
/// accumulated (at least once, at most max_runs).
Measurement measure(net::EngineBackend backend, int p, double min_seconds,
                    int max_runs, std::uint64_t seed) {
  net::Engine engine(p, net::MachineParams::supermuc_like(), seed, backend);
  engine.run(allgather_barrier_program);  // warm-up: spin up pool / stacks
  Measurement m;
  const double t0 = now_sec();
  while (m.runs < max_runs) {
    engine.run(allgather_barrier_program);
    ++m.runs;
    m.seconds = now_sec() - t0;
    if (m.seconds >= min_seconds) break;
  }
  m.runs_per_sec = m.seconds > 0 ? m.runs / m.seconds : 0;
  return m;
}

std::string fmt(double v) { return harness::format_double(v, 1); }

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  int threads_max_p = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") check = true;
    if (std::string(argv[i]) == "--threads-max-p" && i + 1 < argc)
      threads_max_p = std::atoi(argv[i + 1]);
  }

  const std::vector<int> ps{64, 256, 1024, 4096};
  const double min_seconds = 0.2;
  const int max_runs = 200;

  std::printf(
      "Engine microbench: runs/sec of allgather+barrier, fiber scheduler vs "
      "legacy thread-per-PE backend\n(thread backend measured up to p = %d; "
      "fibers%s available)\n\n",
      threads_max_p, net::fibers_supported() ? "" : " NOT");

  harness::Table table(
      {"p", "fibers [runs/s]", "threads [runs/s]", "speedup"});
  struct Row {
    int p;
    double fiber_rps = 0, thread_rps = 0, speedup = 0;
    bool thread_measured = false;
  };
  std::vector<Row> rows;

  for (int p : ps) {
    Row row{.p = p};
    if (net::fibers_supported()) {
      row.fiber_rps =
          measure(net::EngineBackend::kFibers, p, min_seconds, max_runs,
                  flags.seed)
              .runs_per_sec;
    }
    if (p <= threads_max_p) {
      row.thread_rps =
          measure(net::EngineBackend::kThreads, p, min_seconds, max_runs,
                  flags.seed)
              .runs_per_sec;
      row.thread_measured = true;
      if (row.thread_rps > 0) row.speedup = row.fiber_rps / row.thread_rps;
    }
    rows.push_back(row);
    table.add_row({std::to_string(p), fmt(row.fiber_rps),
                   row.thread_measured ? fmt(row.thread_rps) : "skipped",
                   row.thread_measured ? fmt(row.speedup) + "x" : "-"});
  }
  flags.csv ? table.print_csv() : table.print();

  if (FILE* f = std::fopen("BENCH_micro_engine.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_engine\",\n"
                 "  \"program\": \"allgather+barrier\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f, "    {\"p\": %d, \"fiber_runs_per_sec\": %.2f, ", r.p,
                   r.fiber_rps);
      if (r.thread_measured) {
        std::fprintf(f, "\"thread_runs_per_sec\": %.2f, \"speedup\": %.2f}",
                     r.thread_rps, r.speedup);
      } else {
        std::fprintf(f, "\"thread_runs_per_sec\": null, \"speedup\": null}");
      }
      std::fprintf(f, "%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_micro_engine.json\n");
  }

  if (check) {
    if (!net::fibers_supported()) {
      std::printf("check: SKIP (no fiber backend on this platform)\n");
      return 0;
    }
    bool ok = true;
    for (const Row& r : rows) {
      if (r.p == 256 && r.thread_measured && r.speedup < 5.0) {
        std::printf("check: FAIL — fiber speedup at p=256 is %.1fx (< 5x)\n",
                    r.speedup);
        ok = false;
      }
      if (r.p == 4096 && r.fiber_rps <= 0) {
        std::printf("check: FAIL — p=4096 fiber runs did not complete\n");
        ok = false;
      }
    }
    if (ok) std::printf("check: OK (>=5x at p=256, p=4096 completes)\n");
    return ok ? 0 : 1;
  }
  return 0;
}
