// Engine-throughput microbench: host-time runs/sec of an allgather+barrier
// SPMD program under the fiber scheduler vs the legacy one-OS-thread-per-PE
// backend, at p ∈ {64, 256, 1024, 4096} (and {8192, 32768} with --huge-p).
//
// This is the cost the fiber engine was built to remove: the thread backend
// pays p thread creations plus condition-variable wakeup storms per run,
// which capped every bench at p ≤ 256; the fiber engine runs the same
// program on a fixed worker pool. The thread backend is only measured up to
// --threads-max-p (default 256) — beyond that a single run is so slow that
// measuring it is the benchmark equivalent of proving the point twice.
//
// Each row also reports the engine's memory counters (peak resident fiber
// stack bytes, mailbox node-pool high-water) — the quantities the stack pool
// and sharded mailbox exist to bound at p = 2^15.
//
// --ams-smoke executes a full 3-level AMS sort at p = 32768 on the fiber
// backend, verifies the output, and asserts the process peak RSS stayed
// under --max-rss-gb. This is the CI gate for "the paper's largest executed
// configuration actually runs on one host".
//
// Results land in BENCH_micro_engine.json. With --check the bench exits
// non-zero unless (a) fibers reach ≥ 5× the thread backend's runs/sec at
// p = 256, (b) every measured fiber row completed, and (c) fiber runs/sec
// at p ≤ 4096 is no worse than the committed baselines — the acceptance
// criteria CI enforces.

#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "coll/collectives.hpp"
#include "common/check.hpp"
#include "harness/runner.hpp"
#include "harness/tables.hpp"
#include "net/comm.hpp"
#include "net/engine.hpp"
#include "net/fiber.hpp"

using namespace pmps;

namespace {

using bench::now_sec;

/// The measured program: a recursive-doubling allgather (one scalar per PE,
/// flat payloads — ⌈log2 p⌉ rounds of send+recv with doubling sizes) plus a
/// dissemination barrier. That is 2⌈log2 p⌉ blocking recvs per PE — the
/// communication/synchronisation pattern every level of the sorters leans
/// on — while keeping the program's own work (allocs, copies) small enough
/// that engine overhead, not collective bookkeeping, is what gets measured.
void allgather_barrier_program(net::Comm& comm) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::uint64_t tag = comm.next_tag_block();
  std::vector<std::int64_t> acc{rank};
  for (int round = 0, step = 1; step < p; ++round, step <<= 1) {
    const int partner = rank ^ step;
    if (partner < p) {
      comm.send<std::int64_t>(partner,
                              tag + static_cast<std::uint64_t>(round),
                              std::span<const std::int64_t>(acc));
      auto theirs = comm.recv<std::int64_t>(
          partner, tag + static_cast<std::uint64_t>(round));
      acc.insert(acc.end(), theirs.begin(), theirs.end());
    }
  }
  PMPS_CHECK(static_cast<int>(acc.size()) == p);
  coll::barrier(comm);
}

struct Measurement {
  int runs = 0;
  double seconds = 0;
  double runs_per_sec = 0;
  net::EngineStats stats;  ///< engine memory/FF counters from the last run
};

/// Runs the program repeatedly on one engine until ~min_seconds of host time
/// accumulated (at least once, at most max_runs). Huge-p smoke rows skip the
/// warm-up run: one execution *is* the measurement.
Measurement measure(net::EngineBackend backend, int p, double min_seconds,
                    int max_runs, std::uint64_t seed, bool warmup = true) {
  net::Engine engine(p, net::MachineParams::supermuc_like(), seed, backend);
  if (warmup)
    engine.run(allgather_barrier_program);  // spin up pool / stacks
  Measurement m;
  const double t0 = now_sec();
  while (m.runs < max_runs) {
    engine.run(allgather_barrier_program);
    ++m.runs;
    m.seconds = now_sec() - t0;
    if (m.seconds >= min_seconds) break;
  }
  m.runs_per_sec = m.seconds > 0 ? m.runs / m.seconds : 0;
  m.stats = engine.report().engine;
  return m;
}

/// Process peak RSS in bytes (0 if the platform has no getrusage).
std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
  }
#endif
  return 0;
}

std::string fmt(double v) { return harness::format_double(v, 1); }

std::string fmt_mib(std::int64_t bytes) {
  return harness::format_double(static_cast<double>(bytes) / (1u << 20), 1);
}

/// Executed 3-level AMS sort at the paper's p = 2^15, with output
/// verification and a peak-RSS ceiling. Returns the process exit code.
int ams_smoke(std::uint64_t seed, double max_rss_gb) {
  if (!net::fibers_supported()) {
    std::printf("ams-smoke: SKIP (no fiber backend on this platform)\n");
    return 0;
  }
  harness::RunConfig cfg;
  cfg.p = 32768;
  cfg.n_per_pe = 32;
  cfg.algorithm = harness::Algorithm::kAms;
  cfg.ams.group_counts = {32, 32, 32};  // 3-level: 32·32·32 = 2^15
  cfg.seed = seed;
  cfg.backend = net::EngineBackend::kFibers;

  std::printf("ams-smoke: 3-level AMS, p = %d, n/p = %lld, fibers...\n", cfg.p,
              static_cast<long long>(cfg.n_per_pe));
  const double t0 = now_sec();
  harness::RunResult r = harness::run_sort_experiment(cfg);
  const double host_s = now_sec() - t0;

  const net::EngineStats& es = r.report.engine;
  const std::size_t rss = peak_rss_bytes();
  std::printf(
      "ams-smoke: host %.1f s, virtual %.4f s, sorted=%s perm=%s "
      "(total %lld keys)\n",
      host_s, r.report.wall_time, r.check.globally_ordered ? "yes" : "NO",
      r.check.permutation_ok ? "yes" : "NO",
      static_cast<long long>(r.check.total));
  std::printf(
      "ams-smoke: peak stack %s MiB resident / %s MiB reserved "
      "(%lld stacks, %lld acquires, %lld reclaims), mailbox hw %lld nodes "
      "across %d shards, %lld barrier FFs, %lld count tallies\n",
      fmt_mib(es.peak_stack_bytes).c_str(),
      fmt_mib(es.stack_bytes_reserved).c_str(),
      static_cast<long long>(es.stacks),
      static_cast<long long>(es.stack_acquires),
      static_cast<long long>(es.stack_reclaims),
      static_cast<long long>(es.mailbox_nodes_total_high_water),
      es.mailbox_shards, static_cast<long long>(es.collective_fast_forwards),
      static_cast<long long>(es.count_tallies));
  if (rss > 0)
    std::printf("ams-smoke: peak RSS %.2f GiB (ceiling %.1f GiB)\n",
                static_cast<double>(rss) / (1u << 30), max_rss_gb);

  if (!r.check.ok()) {
    std::printf("ams-smoke: FAIL — output verification failed\n");
    return 1;
  }
  if (rss > 0 &&
      static_cast<double>(rss) > max_rss_gb * (1u << 30)) {
    std::printf("ams-smoke: FAIL — peak RSS exceeds %.1f GiB ceiling\n",
                max_rss_gb);
    return 1;
  }
  std::printf("ams-smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::Flags::parse(argc, argv);
  bool check = false;
  bool smoke = false;
  int threads_max_p = 256;
  double max_rss_gb = 64.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") check = true;
    if (std::string(argv[i]) == "--ams-smoke") smoke = true;
    if (std::string(argv[i]) == "--threads-max-p" && i + 1 < argc)
      threads_max_p = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--max-rss-gb" && i + 1 < argc)
      max_rss_gb = std::atof(argv[i + 1]);
  }

  if (smoke) return ams_smoke(flags.seed, max_rss_gb);

  std::vector<int> ps{64, 256, 1024, 4096};
  if (flags.huge_p) {
    ps.push_back(8192);
    ps.push_back(32768);
  }
  const double min_seconds = 0.2;
  const int max_runs = 2000;  // high enough that min_seconds governs

  std::printf(
      "Engine microbench: runs/sec of allgather+barrier, fiber scheduler vs "
      "legacy thread-per-PE backend\n(thread backend measured up to p = %d; "
      "fibers%s available)\n\n",
      threads_max_p, net::fibers_supported() ? "" : " NOT");

  harness::Table table({"p", "fibers [runs/s]", "threads [runs/s]", "speedup",
                        "stack peak [MiB]", "mbox hw [nodes]", "shards"});
  struct Row {
    int p;
    double fiber_rps = 0, thread_rps = 0, speedup = 0;
    bool thread_measured = false;
    net::EngineStats stats{};
  };
  std::vector<Row> rows;

  for (int p : ps) {
    Row row{.p = p};
    if (net::fibers_supported()) {
      // Huge-p rows are one-shot smokes: no warm-up, a single run.
      const bool huge = p >= 8192;
      Measurement fm =
          measure(net::EngineBackend::kFibers, p, huge ? 0.0 : min_seconds,
                  huge ? 1 : max_runs, flags.seed, /*warmup=*/!huge);
      row.fiber_rps = fm.runs_per_sec;
      row.stats = fm.stats;
    }
    if (p <= threads_max_p) {
      Measurement tm = measure(net::EngineBackend::kThreads, p, min_seconds,
                               max_runs, flags.seed);
      row.thread_rps = tm.runs_per_sec;
      row.thread_measured = true;
      if (row.thread_rps > 0) row.speedup = row.fiber_rps / row.thread_rps;
    }
    rows.push_back(row);
    table.add_row({std::to_string(p), fmt(row.fiber_rps),
                   row.thread_measured ? fmt(row.thread_rps) : "skipped",
                   row.thread_measured ? fmt(row.speedup) + "x" : "-",
                   fmt_mib(row.stats.peak_stack_bytes),
                   std::to_string(row.stats.mailbox_nodes_total_high_water),
                   std::to_string(row.stats.mailbox_shards)});
  }
  flags.csv ? table.print_csv() : table.print();

  // Repetition rows as service jobs: the same sort config repeated
  // reps times, once as serial fresh-engine spin-ups and once as
  // overlapping jobs on one warm SortService — the host-time delta the
  // persistent engine buys on exactly the repetition loops every bench
  // runs. Virtual results are bit-identical by construction (asserted).
  struct SvcRow {
    int p;
    int reps;
    double serial_s = 0, service_s = 0, speedup = 0;
  };
  std::vector<SvcRow> svc_rows;
  if (net::fibers_supported() && !flags.huge_p) {
    std::printf("\nrepetition rows as overlapping service jobs (AMS, "
                "n/p = 200):\n");
    harness::Table stable(
        {"p", "reps", "serial [s]", "service [s]", "speedup"});
    for (int p : {64, 256}) {
      SvcRow row{.p = p, .reps = 8};
      harness::RunConfig cfg;
      cfg.algorithm = harness::Algorithm::kAms;
      cfg.p = p;
      cfg.n_per_pe = 200;
      cfg.seed = flags.seed;
      bench::RepJobsOutcome serial = bench::run_reps_serial(cfg, row.reps);
      svc::ServiceOptions sopt;
      sopt.max_in_flight = 4;
      svc::SortService service(sopt);
      bench::RepJobsOutcome jobs =
          bench::run_reps_as_jobs(service, cfg, row.reps);
      for (int r = 0; r < row.reps; ++r) {
        PMPS_CHECK(serial.results[static_cast<std::size_t>(r)].wall_time() ==
                   jobs.results[static_cast<std::size_t>(r)].wall_time());
        PMPS_CHECK(jobs.results[static_cast<std::size_t>(r)].check.ok());
      }
      row.serial_s = serial.host_seconds;
      row.service_s = jobs.host_seconds;
      row.speedup =
          row.service_s > 0 ? row.serial_s / row.service_s : 0;
      svc_rows.push_back(row);
      stable.add_row({std::to_string(p), std::to_string(row.reps),
                      harness::format_double(row.serial_s, 3),
                      harness::format_double(row.service_s, 3),
                      fmt(row.speedup) + "x"});
    }
    flags.csv ? stable.print_csv() : stable.print();
  }

  if (FILE* f = std::fopen("BENCH_micro_engine.json", "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_engine\",\n"
                 "  \"program\": \"allgather+barrier\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f, "    {\"p\": %d, \"fiber_runs_per_sec\": %.2f, ", r.p,
                   r.fiber_rps);
      if (r.thread_measured) {
        std::fprintf(f, "\"thread_runs_per_sec\": %.2f, \"speedup\": %.2f, ",
                     r.thread_rps, r.speedup);
      } else {
        std::fprintf(f, "\"thread_runs_per_sec\": null, \"speedup\": null, ");
      }
      std::fprintf(f,
                   "\"peak_stack_bytes\": %lld, "
                   "\"mailbox_node_high_water\": %lld, "
                   "\"mailbox_shards\": %d, "
                   "\"collective_fast_forwards\": %lld}",
                   static_cast<long long>(r.stats.peak_stack_bytes),
                   static_cast<long long>(r.stats.mailbox_nodes_total_high_water),
                   r.stats.mailbox_shards,
                   static_cast<long long>(r.stats.collective_fast_forwards));
      std::fprintf(f, "%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"service_reps\": [\n");
    for (std::size_t i = 0; i < svc_rows.size(); ++i) {
      const SvcRow& r = svc_rows[i];
      std::fprintf(f,
                   "    {\"p\": %d, \"reps\": %d, \"serial_sec\": %.4f, "
                   "\"service_sec\": %.4f, \"speedup\": %.2f}%s\n",
                   r.p, r.reps, r.serial_s, r.service_s, r.speedup,
                   i + 1 < svc_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_micro_engine.json\n");
  }

  if (check) {
    if (!net::fibers_supported()) {
      std::printf("check: SKIP (no fiber backend on this platform)\n");
      return 0;
    }
    // Regression floors: the committed BENCH_micro_engine.json numbers from
    // before the idle-phase fast-forward landed. The p = 4096 floor is the
    // acceptance criterion and holds exactly; smaller ps get a 0.85× noise
    // margin (their measurement windows are a fraction of a second).
    struct Floor {
      int p;
      double fiber_rps;
    };
    const Floor floors[] = {{64, 0.85 * 3708.26}, {256, 0.85 * 614.19},
                            {1024, 0.85 * 58.76}, {4096, 4.47}};
    bool ok = true;
    for (const Row& r : rows) {
      if (r.p == 256 && r.thread_measured && r.speedup < 5.0) {
        std::printf("check: FAIL — fiber speedup at p=256 is %.1fx (< 5x)\n",
                    r.speedup);
        ok = false;
      }
      if (r.fiber_rps <= 0) {
        std::printf("check: FAIL — p=%d fiber runs did not complete\n", r.p);
        ok = false;
      }
      for (const Floor& fl : floors) {
        if (r.p == fl.p && r.fiber_rps < fl.fiber_rps) {
          std::printf(
              "check: FAIL — p=%d fiber runs/s %.2f regressed below the "
              "committed baseline %.2f\n",
              r.p, r.fiber_rps, fl.fiber_rps);
          ok = false;
        }
      }
    }
    if (ok)
      std::printf(
          "check: OK (>=5x at p=256, all rows complete, p<=4096 at or above "
          "committed baselines)\n");
    return ok ? 0 : 1;
  }
  return 0;
}
